# Convenience targets for building, testing and reproducing the evaluation.

GO ?= go

.PHONY: all build test race vet bench bench-smoke bench-compare bench-gate bench-all figures examples serve-smoke cluster-smoke check check-migrate check-cluster fuzz-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Same suite under the race detector — what CI runs. Telemetry is
# scraped over HTTP concurrently with the simulation thread, so the
# race detector is the gate for any Sink/Registry change.
race:
	$(GO) test -race ./...

# Full test log, as recorded in test_output.txt.
test-log:
	$(GO) test ./... 2>&1 | tee test_output.txt

# Perf-regression harness: kernel micro-benchmarks + sharded throughput,
# emitted as a machine-readable BENCH_<label>.json trajectory point.
# Override with BENCH_LABEL=PR4 / BENCHTIME=100ms as needed.
bench:
	sh scripts/bench.sh

# One-iteration smoke of the same harness; CI runs this to catch build
# and metric breakage without paying for a full measurement.
bench-smoke:
	BENCHTIME=1x BENCH_OUT=/tmp/bench_smoke.json sh scripts/bench.sh

# Diff a fresh trajectory point against the committed baseline: exits
# nonzero when any benchmark regressed ns/op by more than 10% or started
# allocating. Override the baseline with BENCH_BASE=BENCH_PR3.json.
# PR10 re-measured the whole suite on the current runner (the PR8 point
# predates a hardware-state change that shifted even untouched kernels
# +25-35%); the hybrid-media interface cost itself measured +4.5% median
# on SystemWriteESD in an interleaved A/B against the PR9 tree. The PR10
# point used BENCHTIME=300ms BENCHCOUNT=5 — on a runner whose clock
# wanders on a minutes scale, compare against it with the same settings
# so both sides' samples cluster in time.
BENCH_BASE ?= BENCH_PR10.json
bench-compare:
	BENCH_LABEL=compare BENCH_OUT=/tmp/bench_compare.json sh scripts/bench.sh
	$(GO) run ./cmd/benchjson compare $(BENCH_BASE) /tmp/bench_compare.json

# Machine-check the batch-throughput claim of the PR8 trajectory point:
# the sharded throughput rows must be at least 3x the PR6 baseline, with
# no other benchmark regressed beyond the usual 10% gate. Compares the
# two committed trajectory points, so it is deterministic in CI.
bench-gate:
	$(GO) run ./cmd/benchjson compare -max-regress 10 \
		-require 'BenchmarkShardedThroughput=3' BENCH_PR6.json BENCH_PR8.json

# Every benchmark in the repo, including the per-figure campaign.
bench-all:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Regenerate every paper figure into results/ (the run recorded in
# EXPERIMENTS.md used exactly this invocation).
figures:
	$(GO) run ./cmd/figures -fig all -requests 150000 -warmup 100000 -o results/

# End-to-end smoke of the serving stack: boot esdserve, drive 1k
# requests through esdload over HTTP and TCP, assert a clean drain.
serve-smoke:
	sh scripts/serve_smoke.sh

# End-to-end smoke of the cluster stack: 3 esdserve nodes + esdrouter
# (R=2), load through the router, SIGTERM one node, assert zero
# client-visible errors and a truthful /statusz ring section.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# Differential checker: every scheme (the canonical four plus esd+caram),
# single + sharded {1,8}, against the map oracle with invariant audits.
# Any violation prints a replay command (esdcheck -seed N -upto M) that
# reproduces it exactly.
check:
	$(GO) run ./cmd/esdcheck -ops 200000 -seed 1 -shards 1,8

# Same matrix under the migration-heavy generator: a phase-shifting hot
# set that churns the hybrid tier's promotion/demotion/writeback paths
# against a deliberately undersized DRAM buffer.
check-migrate:
	$(GO) run ./cmd/esdcheck -ops 200000 -seed 1 -shards 1,8 -gen migrate

# Routed differential checker: oracle vs the consistent-hash router over
# 3 real TCP nodes, with a reshard cutover at 40% and a node kill at 70%
# of the stream. Replay violations with esdcheck -cluster -seed N -upto M.
check-cluster:
	$(GO) run ./cmd/esdcheck -cluster -ops 200000 -seed 1

# 30 seconds per fuzz target — catches crashes, hangs and corpus
# regressions, not deep state-space coverage. FUZZTIME=5s for quick runs.
fuzz-smoke:
	sh scripts/fuzz_smoke.sh

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/endurance
	$(GO) run ./examples/taillatency
	$(GO) run ./examples/kvstore
	$(GO) run ./examples/observability
	$(GO) run ./examples/flightrecorder

clean:
	rm -rf results/ test_output.txt bench_output.txt
