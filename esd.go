// Package esd is the public API of the ESD simulator: a from-scratch Go
// reproduction of "ESD: An ECC-assisted and Selective Deduplication for
// Encrypted Non-Volatile Main Memory" (HPCA 2023).
//
// The package assembles the internal substrates — a PCM device model with
// banked timing and energy accounting, a (72,64) SEC-DED ECC codec,
// counter-mode encryption, SRAM metadata caches, and five write-path
// schemes (Baseline, Dedup_SHA1, DeWrite, ESD, plus the BCD compression
// extension) — into a System that can be driven request by request or
// replayed from traces, plus the experiment harness that regenerates every
// figure of the paper's evaluation.
//
// Quickstart:
//
//	sys, _ := esd.NewSystem(esd.DefaultConfig(), esd.SchemeESD)
//	line := esd.Line{1, 2, 3}
//	sys.Write(100, line)
//	sys.Write(200, line) // duplicate content: deduplicated by ECC fingerprint
//	got, _ := sys.Read(100)
//
// For paper-scale evaluations use Workload streams and System.Run, or the
// experiment registry via RunExperiment.
package esd

import (
	"context"
	"errors"
	"fmt"
	"io"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/core"
	"github.com/esdsim/esd/internal/dedup"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/experiments"
	"github.com/esdsim/esd/internal/media"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/nvm"
	"github.com/esdsim/esd/internal/server"
	"github.com/esdsim/esd/internal/shard"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/stats"
	"github.com/esdsim/esd/internal/telemetry"
	"github.com/esdsim/esd/internal/trace"
	"github.com/esdsim/esd/internal/workload"
)

// Line is a 64-byte cache line, the system's access granularity.
type Line = ecc.Line

// Time is a simulation timestamp/duration in picoseconds.
type Time = sim.Time

// Common duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
)

// Config is the full system configuration (Table I defaults via
// DefaultConfig).
type Config = config.Config

// DefaultConfig returns the paper's Table I configuration.
func DefaultConfig() Config { return config.Default() }

// Scheme names accepted by NewSystem. SchemeBCD is the
// base-and-compressed-difference extension beyond the paper's four.
const (
	SchemeBaseline = experiments.SchemeBaseline
	SchemeSHA1     = experiments.SchemeSHA1
	SchemeDeWrite  = experiments.SchemeDeWrite
	SchemeESD      = experiments.SchemeESD
	SchemeBCD      = experiments.SchemeBCD
	// SchemeESDCaram runs the ESD write path on a content-aware hybrid
	// DRAM/PCM media tier (CARAM): hot and duplicate-heavy lines buffer
	// in DRAM, cold uniques live in PCM, and a rotating write-ahead log
	// in PCM makes every acknowledged write crash-durable.
	SchemeESDCaram = experiments.SchemeESDCaram
)

// SchemeNames lists the four schemes in canonical order.
func SchemeNames() []string { return experiments.Schemes() }

// HybridStats is the hybrid DRAM/PCM tier's activity snapshot (scheme
// ESD+CARAM): DRAM hit/miss split, promotion/demotion traffic, WAL
// appends, and buffer occupancy.
type HybridStats = media.HybridStats

// WriteOutcome reports how the scheme handled one write.
type WriteOutcome = memctrl.WriteOutcome

// ReadOutcome reports one demand read.
type ReadOutcome = memctrl.ReadOutcome

// RunResult aggregates a trace replay's measurements.
type RunResult = memctrl.RunResult

// SchemeStats are the scheme-level event counters.
type SchemeStats = memctrl.SchemeStats

// WearSummary summarizes per-line device wear (endurance).
type WearSummary = nvm.WearSummary

// Device-health types: the always-on O(1) accounting the device keeps
// alongside its wear map — scalar summary, full snapshot with per-bank
// and per-region rows, and the log2 wear histogram buckets. All are safe
// to read while a ShardedSystem's workers are driving the devices.
type (
	DeviceHealthSummary  = nvm.HealthSummary
	DeviceHealthSnapshot = nvm.HealthSnapshot
	BankHealth           = nvm.BankHealth
	RegionHealth         = nvm.RegionHealth
	WearBucket           = nvm.WearBucket
)

// MergeDeviceHealth merges per-shard health snapshots into one
// device-wide view (banks and regions renumbered in shard order).
func MergeDeviceHealth(snaps []DeviceHealthSnapshot) DeviceHealthSnapshot {
	return nvm.MergeHealth(snaps)
}

// Record is one trace event; Stream yields records in time order.
type (
	Record = trace.Record
	Stream = trace.Stream
)

// Trace ops.
const (
	OpRead  = trace.OpRead
	OpWrite = trace.OpWrite
)

// Profile describes one synthetic application workload.
type Profile = workload.Profile

// Profiles returns the 20 SPEC CPU 2017 / PARSEC application profiles.
func Profiles() []Profile { return workload.Profiles() }

// ProfileByName looks up an application profile.
func ProfileByName(name string) (Profile, bool) { return workload.ByName(name) }

// WorkloadStream builds a deterministic synthetic trace of n records for
// the named application.
func WorkloadStream(app string, seed uint64, n int) (Stream, error) {
	p, ok := workload.ByName(app)
	if !ok {
		return nil, fmt.Errorf("esd: unknown application %q (have %v)", app, workload.Names())
	}
	return workload.Stream(p, seed, n), nil
}

// MixStream builds a multi-programmed workload: the named applications
// share the memory controller, merged in time order with disjoint address
// regions.
func MixStream(seed uint64, n int, apps ...string) (Stream, error) {
	s, err := workload.Mix(seed, n, apps...)
	if err != nil {
		return nil, fmt.Errorf("esd: %w", err)
	}
	return s, nil
}

// ExperimentOptions parameterizes RunExperiment campaigns.
type ExperimentOptions = experiments.Options

// DefaultExperimentOptions returns a campaign sized for interactive use.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// Experiments lists the available experiment ids (fig1..fig19, ablations).
func Experiments() []string { return experiments.Names() }

// RunExperiment regenerates one of the paper's figures/tables.
func RunExperiment(name string, opts ExperimentOptions) (*stats.Table, error) {
	return experiments.Run(name, opts)
}

// System is an encrypted, deduplicating NVMM behind one scheme: the
// simulated memory controller plus PCM device, driven either request by
// request (Write/Read) or by trace replay (Run).
//
// A System is not safe for concurrent use.
type System struct {
	cfg    Config
	env    *memctrl.Env
	scheme memctrl.Scheme
	ctl    *memctrl.Controller
	tel    *telemetry.Sink

	now Time
	// IssueGap is the simulated time advanced between self-clocked
	// Write/Read calls.
	IssueGap Time

	// reqSeq numbers Write/Read calls so flight-recorder entries and trace
	// events carry a stable per-request trace id.
	reqSeq uint64

	// lineBuf is the scratch line Write/WriteAt hand to the scheme. The
	// Scheme interface takes *Line, so a pointer to the parameter itself
	// would escape and heap-allocate a 64-byte copy per write; a System is
	// single-threaded by contract, so one buffer serves every call.
	lineBuf Line

	// batchOps is WriteBatch's reusable scratch, so steady-state batched
	// writes allocate nothing.
	batchOps []memctrl.BatchWrite
}

// SystemOption configures optional System features (telemetry) at
// construction. Telemetry must be wired before the scheme exists so that
// scheme-owned caches (the EFIT, fingerprint caches) attach their probes,
// which is why these are NewSystem options rather than setters.
type SystemOption func(*sysOptions)

type sysOptions struct {
	metrics     bool
	traceW      io.Writer
	traceFormat telemetry.Format
	sampleEvery int
	flightSlots int
}

func (o *sysOptions) enabled() bool { return o.metrics || o.traceW != nil || o.flightSlots > 0 }

// WithMetrics enables the telemetry metrics registry: live counters, gauges
// and latency histograms for every layer, exposed via WriteMetrics,
// WriteMetricsJSON and ServeMetrics.
func WithMetrics() SystemOption {
	return func(o *sysOptions) { o.metrics = true }
}

// WithEventTrace streams sampled write-path events to w as JSONL (one JSON
// object per line; decode with ReadTraceEvents). Implies WithMetrics.
func WithEventTrace(w io.Writer) SystemOption {
	return func(o *sysOptions) { o.traceW = w; o.traceFormat = telemetry.FormatJSONL }
}

// WithChromeTrace streams sampled write-path events to w as a Chrome
// trace_event JSON array, loadable in chrome://tracing or Perfetto.
// Implies WithMetrics.
func WithChromeTrace(w io.Writer) SystemOption {
	return func(o *sysOptions) { o.traceW = w; o.traceFormat = telemetry.FormatChrome }
}

// WithTraceSampling emits only every n-th write/read event to the trace
// (rare events — evictions, crashes, run markers — are always emitted).
// n <= 1 traces every request.
func WithTraceSampling(n int) SystemOption {
	return func(o *sysOptions) { o.sampleEvery = n }
}

// WithFlightRecorder enables the always-on flight recorder: a fixed ring
// of the last slots requests (their trace ids, outcomes and per-stage
// latencies), recorded wait-free on the hot path and retrievable at any
// moment via FlightRecords — the black box to read after something went
// wrong. slots is rounded up to a power of two; slots <= 0 picks the
// default (256).
func WithFlightRecorder(slots int) SystemOption {
	return func(o *sysOptions) {
		if slots <= 0 {
			slots = telemetry.DefaultFlightSlots
		}
		o.flightSlots = slots
	}
}

// NewSystem builds a System running the named scheme. The configuration is
// validated. Options enable telemetry; with none, every instrumentation
// hook stays nil and the hot path pays a single predictable branch.
func NewSystem(cfg Config, scheme string, opts ...SystemOption) (*System, error) {
	if msg := cfg.Validate(); msg != "" {
		return nil, fmt.Errorf("esd: %s", msg)
	}
	var o sysOptions
	for _, fn := range opts {
		fn(&o)
	}
	env := memctrl.NewEnv(cfg)
	var tel *telemetry.Sink
	if o.enabled() {
		var tracer *telemetry.Tracer
		if o.traceW != nil {
			tracer = telemetry.NewTracer(o.traceW, o.traceFormat)
		}
		var flight *telemetry.FlightRecorder
		if o.flightSlots > 0 {
			flight = telemetry.NewFlightRecorder(o.flightSlots)
		}
		tel = telemetry.NewSink(telemetry.Options{Tracer: tracer, SampleEvery: o.sampleEvery, Flight: flight})
		env.AttachTelemetry(tel)
	}
	sch, err := experiments.NewScheme(env, scheme)
	if err != nil {
		return nil, fmt.Errorf("esd: %w", err)
	}
	return &System{
		cfg:      cfg,
		env:      env,
		scheme:   sch,
		ctl:      memctrl.NewController(env, sch),
		tel:      tel,
		IssueGap: 10 * Nanosecond,
	}, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// SchemeName returns the active scheme's name.
func (s *System) SchemeName() string { return s.scheme.Name() }

// Now returns the system's self-advanced clock.
func (s *System) Now() Time { return s.now }

func (s *System) tick() Time {
	s.now += s.IssueGap
	return s.now
}

// Write stores a 64-byte line at a logical line address, advancing the
// internal clock. It returns the scheme's outcome (latency, whether the
// line was deduplicated, the backing physical line).
//
// Write is NOT safe for concurrent use: the scheme's metadata caches and
// the device model are single-threaded, mirroring one memory controller
// pipeline. Concurrent callers must use NewShardedSystem, which partitions
// the address space across independently locked shards.
func (s *System) Write(addr uint64, line Line) WriteOutcome {
	at := s.tick()
	s.reqSeq++
	s.tel.BeginRequest(telemetry.TraceCtx{TraceID: s.reqSeq, Span: 1, StartNs: int64(at)})
	s.lineBuf = line
	out := s.scheme.Write(addr, &s.lineBuf, at)
	if out.Done > s.now {
		s.now = out.Done
	}
	return out
}

// WriteBatchOp is one write in a batched write call (System.WriteBatch,
// ShardedSystem.WriteBatch): the caller fills Addr and Line, the system
// fills Out, Lat and (sharded only) Err.
type WriteBatchOp = shard.WriteBatchOp

// WriteBatch stores every op in one call through the scheme's batched
// write path: the per-op dedup decisions are identical to N scalar
// Writes in the same order, but ECC fingerprints are computed in one
// batched pass and the pads of unique stores come from one multi-block
// AES pass, so the amortized cost per line drops. All ops arrive before
// any completes (one arrival group), so per-op latencies can differ from
// the scalar path; decisions, placements, counters and statistics do
// not. The batch shares one trace id. Err is always nil on a System.
//
// Like Write, WriteBatch is NOT safe for concurrent use.
func (s *System) WriteBatch(ops []WriteBatchOp) {
	if len(ops) == 0 {
		return
	}
	if cap(s.batchOps) < len(ops) {
		s.batchOps = make([]memctrl.BatchWrite, len(ops))
	}
	b := s.batchOps[:len(ops)]
	s.reqSeq++
	s.tel.BeginRequest(telemetry.TraceCtx{TraceID: s.reqSeq, Span: 1, StartNs: int64(s.now + s.IssueGap)})
	for i := range ops {
		b[i] = memctrl.BatchWrite{Logical: ops[i].Addr, Data: &ops[i].Line, At: s.tick()}
	}
	memctrl.WriteBatch(s.scheme, b)
	for i := range b {
		if b[i].Out.Done > s.now {
			s.now = b[i].Out.Done
		}
		ops[i].Out = b[i].Out
		ops[i].Lat = b[i].Out.Done - b[i].At
		ops[i].Err = nil
	}
}

// WriteAt is Write with an explicit arrival time (must not precede the
// internal clock, which it advances).
func (s *System) WriteAt(addr uint64, line Line, at Time) WriteOutcome {
	if at > s.now {
		s.now = at
	}
	s.reqSeq++
	s.tel.BeginRequest(telemetry.TraceCtx{TraceID: s.reqSeq, Span: 1, StartNs: int64(s.now)})
	s.lineBuf = line
	out := s.scheme.Write(addr, &s.lineBuf, s.now)
	if out.Done > s.now {
		s.now = out.Done
	}
	return out
}

// Read fetches the plaintext line at a logical address, advancing the
// internal clock. Hit reports whether the address was ever written.
//
// Like Write, Read is NOT safe for concurrent use — see NewShardedSystem
// for a goroutine-safe front.
func (s *System) Read(addr uint64) (Line, ReadOutcome) {
	at := s.tick()
	s.reqSeq++
	s.tel.BeginRequest(telemetry.TraceCtx{TraceID: s.reqSeq, Span: 1, StartNs: int64(at)})
	out := s.scheme.Read(addr, at)
	if out.Done > s.now {
		s.now = out.Done
	}
	return out.Data, out
}

// Run replays a trace stream through the scheme and returns aggregated
// metrics. Run may be called once per System; build a fresh System per
// replay for independent measurements.
func (s *System) Run(stream Stream) (*RunResult, error) {
	return s.ctl.Run(stream)
}

// RunWorkload replays n records of the named application profile.
func (s *System) RunWorkload(app string, seed uint64, n int) (*RunResult, error) {
	stream, err := WorkloadStream(app, seed, n)
	if err != nil {
		return nil, err
	}
	return s.Run(stream)
}

// SetWarmup makes the first n records of a subsequent Run unmeasured
// warm-up traffic.
func (s *System) SetWarmup(n int) { s.ctl.Warmup = n }

// SetVerifyReads enables the read-back oracle: Run fails with an error if
// any read returns data that differs from the latest write to that address
// (i.e. if deduplication ever corrupted data).
func (s *System) SetVerifyReads(v bool) { s.ctl.VerifyReads = v }

// Crash simulates a power failure (§III-E): eADR drains dirty metadata to
// NVMM and all volatile SRAM state — fingerprint caches, ESD's entire
// EFIT, predictors, hot-entry caches — is lost. Data written before the
// crash remains fully readable; deduplication simply restarts cold.
func (s *System) Crash() {
	if c, ok := s.scheme.(memctrl.Crasher); ok {
		c.Crash(s.now)
	}
	s.tel.OnCrash(s.now)
}

// ErrTelemetryDisabled is returned by telemetry accessors on a System built
// without WithMetrics or a trace option.
var ErrTelemetryDisabled = errors.New("esd: telemetry not enabled (pass WithMetrics or a trace option to NewSystem)")

// TelemetryEnabled reports whether the System was built with telemetry.
func (s *System) TelemetryEnabled() bool { return s.tel != nil }

// WriteMetrics renders the current metrics in the Prometheus text
// exposition format (the same payload ServeMetrics serves at /metrics).
func (s *System) WriteMetrics(w io.Writer) error {
	if s.tel == nil {
		return ErrTelemetryDisabled
	}
	return s.tel.Registry().WritePrometheus(w)
}

// WriteMetricsJSON renders the current metrics as a flat expvar-style JSON
// object (the /debug/vars payload).
func (s *System) WriteMetricsJSON(w io.Writer) error {
	if s.tel == nil {
		return ErrTelemetryDisabled
	}
	return s.tel.Registry().WriteJSON(w)
}

// MetricsServer is a live telemetry HTTP endpoint serving /metrics
// (Prometheus text format), /debug/vars (JSON) and, when enabled,
// /debug/pprof.
type MetricsServer struct{ srv *telemetry.Server }

// Addr returns the bound listen address (host:port).
func (m *MetricsServer) Addr() string { return m.srv.Addr() }

// URL returns the server's base URL.
func (m *MetricsServer) URL() string { return m.srv.URL() }

// Close shuts the server down immediately, dropping in-flight scrapes.
func (m *MetricsServer) Close() error { return m.srv.Close() }

// Shutdown gracefully stops the server: it stops accepting new
// connections and waits for in-flight scrapes to finish, up to ctx's
// deadline (after which remaining connections are force-closed and
// ctx.Err() is returned).
func (m *MetricsServer) Shutdown(ctx context.Context) error { return m.srv.Shutdown(ctx) }

// ServeMetrics starts a background HTTP server on addr (":0" picks a free
// port; use Addr to discover it) exposing this System's live metrics.
// enablePprof additionally mounts net/http/pprof under /debug/pprof/.
// With WithFlightRecorder, /debug/flightrecorder serves the current ring.
func (s *System) ServeMetrics(addr string, enablePprof bool) (*MetricsServer, error) {
	if s.tel == nil {
		return nil, ErrTelemetryDisabled
	}
	opts := telemetry.ServerOptions{Addr: addr, Pprof: enablePprof}
	if fl := s.tel.Flight(); fl != nil {
		opts.Flight = fl.Snapshot
	}
	// The wear/energy half of the document reads under the device's health
	// lock (and may trail the sim thread by one staged batch); the dedup
	// counters are sampled without synchronization. On a System scraped
	// while the (single) sim thread is writing, both may trail by a few
	// events.
	opts.Device = func() any {
		resp := server.DeviceFromHealth(s.SchemeName(),
			[]DeviceHealthSnapshot{s.env.Device.HealthSnapshot()}, s.scheme.Stats())
		if h := s.env.Hybrid(); h != nil {
			resp.Hybrid = server.HybridFromStats(h.Snapshot())
		}
		return resp
	}
	srv, err := telemetry.NewServer(s.tel.Registry(), opts)
	if err != nil {
		return nil, fmt.Errorf("esd: %w", err)
	}
	return &MetricsServer{srv: srv}, nil
}

// FlightRecord is one decoded flight-recorder entry: the trace id, request
// kind and outcome, and (for writes) the per-stage latency decomposition.
type FlightRecord = telemetry.FlightRecord

// TraceCtx is the request-scoped trace context threaded through the write
// and read paths; the zero value means "untraced".
type TraceCtx = telemetry.TraceCtx

// FlightRecords snapshots the flight-recorder ring, oldest first. It
// returns nil unless the System was built with WithFlightRecorder. Safe to
// call from any goroutine (the ring is read with atomic snapshots).
func (s *System) FlightRecords() []FlightRecord {
	if s.tel == nil {
		return nil
	}
	return s.tel.Flight().Snapshot()
}

// SetSlowRequestLog enables slow-request logging during Run: every replayed
// request whose simulated latency reaches threshold is printed to w with
// its trace id and stage breakdown. max caps the number of lines (0 =
// unlimited). Pass a nil writer to disable.
func (s *System) SetSlowRequestLog(w io.Writer, threshold Time, max int) {
	s.ctl.SlowLog = w
	s.ctl.SlowThreshold = threshold
	s.ctl.SlowMax = max
}

// TraceEvent is one decoded structured trace event.
type TraceEvent = telemetry.Event

// ReadTraceEvents decodes a JSONL event trace written via WithEventTrace —
// the round-trip counterpart of the tracer's encoder.
func ReadTraceEvents(r io.Reader) ([]TraceEvent, error) {
	return telemetry.ReadEvents(r)
}

// CloseTrace finalizes the event trace (for Chrome format, the closing
// bracket) and flushes it to the underlying writer, returning the first
// error the tracer encountered. It is a no-op without an active trace.
func (s *System) CloseTrace() error {
	if s.tel == nil {
		return nil
	}
	return s.tel.Tracer().Close()
}

// Stats returns the scheme's event counters.
func (s *System) Stats() SchemeStats { return s.scheme.Stats() }

// Wear returns the device's endurance summary. System is single-threaded,
// so the caller is the simulation thread and staged health accounting can
// be published first — the summary is always exact.
func (s *System) Wear() WearSummary {
	s.env.Device.SyncHealth()
	return s.env.Device.Wear()
}

// DeviceHealth returns the device's full health snapshot: totals, wear
// shape (max/p99/histogram), energy split, and per-bank/per-region rows.
// Like Wear, it publishes staged accounting first and is always exact.
func (s *System) DeviceHealth() DeviceHealthSnapshot {
	s.env.Device.SyncHealth()
	return s.env.Device.HealthSnapshot()
}

// Energy returns total energy consumed so far in nJ (scheme + media).
func (s *System) Energy() float64 {
	return s.env.Energy.Total() + s.env.Device.MediaStats().MediaEnergy
}

// MetadataNVMM returns the scheme's NVMM-resident metadata footprint in
// bytes.
func (s *System) MetadataNVMM() int64 { return s.scheme.MetadataNVMM() }

// DeviceWrites returns the number of media writes performed (data and
// metadata).
func (s *System) DeviceWrites() uint64 { return s.env.Device.MediaStats().Writes }

// HybridStats returns the hybrid DRAM/PCM tier's activity snapshot; ok is
// false when the system's media is plain PCM (every scheme except
// ESD+CARAM).
func (s *System) HybridStats() (HybridStats, bool) {
	h := s.env.Hybrid()
	if h == nil {
		return HybridStats{}, false
	}
	return h.Snapshot(), true
}

// Flow-control errors surfaced by ShardedSystem.
var (
	// ErrOverloaded reports a Try* request shed because the target shard's
	// queue was full.
	ErrOverloaded = shard.ErrOverloaded
	// ErrClosed reports a request submitted after ShardedSystem.Close.
	ErrClosed = shard.ErrClosed
)

// ReadResult is a completed sharded read: the plaintext line, whether the
// address was ever written, and the simulated service latency.
type ReadResult = shard.ReadResult

// ShardSnapshot is one shard's view of its counters.
type ShardSnapshot = shard.Snapshot

// ShardSummary merges per-shard snapshots into aggregate counters shaped
// like the single-shard System's reports.
type ShardSummary = shard.Summary

// ShardReplayResult reports a sharded trace replay.
type ShardReplayResult = shard.ReplayResult

// ShardOption configures a ShardedSystem at construction.
type ShardOption func(*shard.Options)

// WithShards sets the number of independent shards (default 1). Logical
// address a routes to shard a mod n; each shard owns 1/n of the device
// capacity as its private bank group.
func WithShards(n int) ShardOption {
	return func(o *shard.Options) { o.Shards = n }
}

// WithShardQueueDepth bounds each shard's request queue (default 128). A
// full queue blocks Write/Read and sheds TryWrite/TryRead with
// ErrOverloaded.
func WithShardQueueDepth(n int) ShardOption {
	return func(o *shard.Options) { o.QueueDepth = n }
}

// WithShardBatching sets how many queued requests a shard worker drains
// per wakeup (default 32).
func WithShardBatching(n int) ShardOption {
	return func(o *shard.Options) { o.Batch = n }
}

// WithWriteCoalescing collapses same-address writes within one drained
// batch (never across an intervening read of that address). Off by
// default because coalescing changes the dedup statistics: absorbed
// writes never reach the scheme.
func WithWriteCoalescing() ShardOption {
	return func(o *shard.Options) { o.Coalesce = true }
}

// WithBatchKernels routes runs of consecutive writes in each drained
// shard batch through the schemes' batched write path: ECC fingerprints
// and AES pads are computed in batched passes instead of per line. Dedup
// decisions, placements, counters and statistics are identical to the
// scalar path; per-op latencies can differ (deferred device writes
// observe different bank-queue states). Off by default.
func WithBatchKernels() ShardOption {
	return func(o *shard.Options) { o.BatchKernels = true }
}

// WithShardMetrics enables per-shard telemetry sinks on one shared
// registry; every metric carries a shard="i" label. See
// ShardedSystem.WriteMetrics.
func WithShardMetrics() ShardOption {
	return func(o *shard.Options) { o.Metrics = true }
}

// WithStageTracing enables per-stage latency histograms on every shard
// (fingerprint, EFIT lookup, NVM read-verify, encrypt, media, AMT, queue
// wait), summarized as p50/p99 by StageLatencies and the serving
// front-end's /statusz. The histograms are worker-private and recorded
// without allocation, so the steady-state write path stays alloc-free.
func WithStageTracing() ShardOption {
	return func(o *shard.Options) { o.Tracing = true }
}

// WithShardFlightSlots sizes each shard's always-on flight-recorder ring
// (default 256 entries, rounded up to a power of two).
func WithShardFlightSlots(n int) ShardOption {
	return func(o *shard.Options) { o.FlightSlots = n }
}

// ShardedSystem is the goroutine-safe counterpart of System: it
// partitions the line-address space across N independent shards (each its
// own scheme instance, metadata caches and PCM bank group) driven by one
// worker goroutine per shard behind bounded queues. Any number of
// goroutines may call its methods concurrently; requests to the same
// shard execute in submission order.
//
// Deduplication happens only within a shard — cross-shard duplicate
// content occupies one physical line per shard. See DESIGN.md §7 for the
// rationale and the determinism contract.
type ShardedSystem struct {
	eng *shard.Engine
}

// NewShardedSystem builds a sharded engine running the named scheme on
// every shard.
func NewShardedSystem(cfg Config, scheme string, opts ...ShardOption) (*ShardedSystem, error) {
	var o shard.Options
	for _, fn := range opts {
		fn(&o)
	}
	eng, err := shard.New(cfg, scheme, o)
	if err != nil {
		return nil, fmt.Errorf("esd: %w", err)
	}
	return &ShardedSystem{eng: eng}, nil
}

// NumShards returns the shard count.
func (s *ShardedSystem) NumShards() int { return s.eng.NumShards() }

// SchemeName returns the scheme every shard runs.
func (s *ShardedSystem) SchemeName() string { return s.eng.SchemeName() }

// Write stores a line, blocking while the owning shard's queue is full
// and until the shard has processed it. Safe for concurrent use.
func (s *ShardedSystem) Write(addr uint64, line Line) (WriteOutcome, error) {
	return s.eng.Write(addr, line)
}

// TryWrite is Write with load shedding (ErrOverloaded on a full queue)
// and a deadline (ctx expiring while queued abandons the wait; the shard
// still executes the write).
func (s *ShardedSystem) TryWrite(ctx context.Context, addr uint64, line Line) (WriteOutcome, error) {
	return s.eng.TryWrite(ctx, addr, line)
}

// WriteBatch stores every op in one call: ops are grouped by owning
// shard, each touched shard receives one queue request (one channel
// round trip per shard instead of per op), and each sub-batch runs
// through the scheme's batched write path. Per-op results land in ops;
// see shard.Engine.WriteBatch for the error contract.
func (s *ShardedSystem) WriteBatch(ops []WriteBatchOp) error {
	return s.eng.WriteBatch(ops)
}

// TryWriteBatch is WriteBatch with load shedding and a deadline: ops on
// a full shard fail individually with ErrOverloaded, and ctx expiring
// mid-flight abandons the wait (the shards still execute the writes).
func (s *ShardedSystem) TryWriteBatch(ctx context.Context, ops []WriteBatchOp) error {
	return s.eng.TryWriteBatch(ctx, ops)
}

// TryWriteBatchTraced is TryWriteBatch carrying an explicit trace
// context shared by every op of the batch.
func (s *ShardedSystem) TryWriteBatchTraced(ctx context.Context, ops []WriteBatchOp, tc TraceCtx) error {
	return s.eng.TryWriteBatchTraced(ctx, ops, tc)
}

// Read fetches the plaintext line at a logical address (blocking).
func (s *ShardedSystem) Read(addr uint64) (ReadResult, error) {
	return s.eng.Read(addr)
}

// TryRead is Read with load shedding and a deadline (see TryWrite).
func (s *ShardedSystem) TryRead(ctx context.Context, addr uint64) (ReadResult, error) {
	return s.eng.TryRead(ctx, addr)
}

// Flush is a full barrier: every request enqueued before the call has
// executed and every shard's device write queue has drained on return.
func (s *ShardedSystem) Flush() error { return s.eng.Flush() }

// Summary snapshots and merges every shard's counters (a barrier like
// Flush).
func (s *ShardedSystem) Summary() (ShardSummary, error) { return s.eng.Summary() }

// Snapshots returns the per-shard views behind Summary.
func (s *ShardedSystem) Snapshots() ([]ShardSnapshot, error) { return s.eng.Snapshots() }

// Run replays a trace stream, routing each record to its owning shard,
// and returns the merged result. Arrival timestamps are ignored (each
// shard self-clocks).
func (s *ShardedSystem) Run(stream Stream) (*ShardReplayResult, error) {
	return s.eng.Replay(stream)
}

// Shed returns the number of Try* requests rejected with ErrOverloaded.
func (s *ShardedSystem) Shed() uint64 { return s.eng.Shed() }

// DeviceHealths returns each shard device's health snapshot, in shard
// order. Unlike Summary this is barrier-free: it never blocks the shard
// workers and is safe to call at any time from any goroutine.
func (s *ShardedSystem) DeviceHealths() []DeviceHealthSnapshot { return s.eng.DeviceHealths() }

// DeviceHealth merges the per-shard snapshots into one device-wide view
// (barrier-free; see DeviceHealths).
func (s *ShardedSystem) DeviceHealth() DeviceHealthSnapshot { return s.eng.DeviceHealth() }

// WearSummaries returns each shard device's exact wear summary
// (barrier-free; each summary is consistent per shard).
func (s *ShardedSystem) WearSummaries() []WearSummary { return s.eng.WearSummaries() }

// HybridStats sums the per-shard hybrid DRAM/PCM tier statistics; ok is
// false when the media is plain PCM. Barrier-free: each shard's snapshot
// is atomics-based and never blocks the workers.
func (s *ShardedSystem) HybridStats() (HybridStats, bool) { return s.eng.HybridStats() }

// LiveStats merges the scheme counter blocks the shard workers republish
// after every drained batch. Unlike Summary it is barrier-free — the
// result trails the live state by at most one batch per shard.
func (s *ShardedSystem) LiveStats() SchemeStats { return s.eng.LiveSchemeStats() }

// NewTrace allocates a fresh request-scoped trace context. Pass it to
// TryWriteTraced/TryReadTraced so the request's flight-recorder entries
// and slow-request log lines share one id.
func (s *ShardedSystem) NewTrace() TraceCtx { return s.eng.NewTrace() }

// TryWriteTraced is TryWrite carrying an explicit trace context.
func (s *ShardedSystem) TryWriteTraced(ctx context.Context, addr uint64, line Line, tc TraceCtx) (WriteOutcome, error) {
	return s.eng.TryWriteTraced(ctx, addr, line, tc)
}

// TryReadTraced is TryRead carrying an explicit trace context.
func (s *ShardedSystem) TryReadTraced(ctx context.Context, addr uint64, tc TraceCtx) (ReadResult, error) {
	return s.eng.TryReadTraced(ctx, addr, tc)
}

// FlightRecords merges every shard's flight-recorder ring into one slice
// (oldest first within each shard). The rings are always on; this is safe
// to call at any time from any goroutine and never blocks the workers.
func (s *ShardedSystem) FlightRecords() []FlightRecord { return s.eng.FlightRecords() }

// StageLatency summarizes one write-path stage's latency distribution.
type StageLatency struct {
	Stage  string  `json:"stage"`
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
	P99Ns  float64 `json:"p99_ns"`
}

// StageLatencies merges the per-shard stage histograms and summarizes each
// stage that has observations. ok is false unless the system was built
// with WithStageTracing.
func (s *ShardedSystem) StageLatencies() (out []StageLatency, ok bool) {
	hists, ok := s.eng.StageSnapshot()
	if !ok {
		return nil, false
	}
	for i := range hists {
		h := &hists[i]
		if h.Count() == 0 {
			continue
		}
		out = append(out, StageLatency{
			Stage:  telemetry.Stage(i).String(),
			Count:  h.Count(),
			MeanNs: h.Mean().Nanoseconds(),
			P50Ns:  h.Percentile(0.5).Nanoseconds(),
			P99Ns:  h.Percentile(0.99).Nanoseconds(),
		})
	}
	return out, true
}

// TelemetryEnabled reports whether the system was built with
// WithShardMetrics.
func (s *ShardedSystem) TelemetryEnabled() bool { return s.eng.Registry() != nil }

// WriteMetrics renders the current per-shard metrics in the Prometheus
// text exposition format.
func (s *ShardedSystem) WriteMetrics(w io.Writer) error {
	reg := s.eng.Registry()
	if reg == nil {
		return ErrTelemetryDisabled
	}
	return reg.WritePrometheus(w)
}

// ServeMetrics starts a background HTTP server exposing the per-shard
// metrics (see System.ServeMetrics), plus /debug/flightrecorder (the
// merged shard rings) and a /statusz with queue depths and stage
// latencies. Requires WithShardMetrics.
func (s *ShardedSystem) ServeMetrics(addr string, enablePprof bool) (*MetricsServer, error) {
	reg := s.eng.Registry()
	if reg == nil {
		return nil, ErrTelemetryDisabled
	}
	srv, err := telemetry.NewServer(reg, telemetry.ServerOptions{
		Addr:   addr,
		Pprof:  enablePprof,
		Flight: s.eng.FlightRecords,
		Device: func() any {
			resp := server.DeviceFromHealth(s.eng.SchemeName(), s.eng.DeviceHealths(), s.eng.LiveSchemeStats())
			if hs, ok := s.eng.HybridStats(); ok {
				resp.Hybrid = server.HybridFromStats(hs)
			}
			return resp
		},
		Status: func() any {
			st := struct {
				Scheme      string         `json:"scheme"`
				Shards      int            `json:"shards"`
				QueueDepths []int          `json:"queue_depths"`
				QueueCap    int            `json:"queue_cap"`
				Shed        uint64         `json:"shed_requests"`
				Coalescing  bool           `json:"coalescing"`
				Coalesced   uint64         `json:"coalesced_writes"`
				Tracing     bool           `json:"tracing"`
				Stages      []StageLatency `json:"stages,omitempty"`
			}{
				Scheme:      s.eng.SchemeName(),
				Shards:      s.eng.NumShards(),
				QueueDepths: s.eng.QueueLens(),
				QueueCap:    s.eng.QueueCap(),
				Shed:        s.eng.Shed(),
				Coalescing:  s.eng.CoalesceEnabled(),
				Coalesced:   s.eng.Coalesced(),
				Tracing:     s.eng.TracingEnabled(),
			}
			st.Stages, _ = s.StageLatencies()
			return st
		},
	})
	if err != nil {
		return nil, fmt.Errorf("esd: %w", err)
	}
	return &MetricsServer{srv: srv}, nil
}

// Close drains every shard queue, flushes the devices and stops the
// workers. Requests submitted after Close fail with ErrClosed; Close is
// idempotent.
func (s *ShardedSystem) Close() error { return s.eng.Close() }

// Compile-time checks that the schemes satisfy the Scheme interface.
var (
	_ memctrl.Scheme = (*dedup.Baseline)(nil)
	_ memctrl.Scheme = (*dedup.SHA1)(nil)
	_ memctrl.Scheme = (*dedup.DeWrite)(nil)
	_ memctrl.Scheme = (*core.ESD)(nil)
)
