package esd

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§IV) as testing.B benchmarks: `go test -bench=Fig` runs the
// whole campaign. Each benchmark reports its figure's headline numbers as
// custom metrics (speedups, reductions, shares), so the paper-vs-measured
// comparison in EXPERIMENTS.md can be regenerated from this output.
//
// Benchmark iterations re-run complete simulation campaigns; expect >1 s
// per iteration. Use -benchtime=1x for a single regeneration.

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"github.com/esdsim/esd/internal/experiments"
	"github.com/esdsim/esd/internal/fingerprint"
	"github.com/esdsim/esd/internal/workload"
)

// benchOpts sizes the per-figure campaigns so the full `-bench=.` sweep
// completes in minutes while the statistics stay stable.
func benchOpts() experiments.Options {
	opts := experiments.DefaultOptions()
	opts.Requests = 20000
	opts.Warmup = 15000
	return opts
}

func reportAverage(b *testing.B, rows []experiments.AppRow, metric string) {
	b.Helper()
	sums := map[string]float64{}
	for _, r := range rows {
		for scheme, v := range r.Values {
			sums[scheme] += v
		}
	}
	n := float64(len(rows))
	if n == 0 {
		return
	}
	for _, scheme := range experiments.DedupSchemes() {
		b.ReportMetric(sums[scheme]/n, scheme+"-"+metric)
	}
}

// BenchmarkFig01DuplicateRate regenerates Fig. 1 (duplicate rate of evicted
// cache lines per application; paper: mean 62.9%).
func BenchmarkFig01DuplicateRate(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig1(opts)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.DupRate
		}
		b.ReportMetric(sum/float64(len(rows))*100, "mean-dup-%")
	}
}

// BenchmarkFig02WorstCase regenerates Fig. 2 (normalized performance of the
// dedup schemes in the worst case, leela and lbm).
func BenchmarkFig02WorstCase(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig2(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.App == "lbm/write" {
				b.ReportMetric(r.Values[experiments.SchemeSHA1], "lbm-sha1-write-perf")
				b.ReportMetric(r.Values[experiments.SchemeESD], "lbm-esd-write-perf")
			}
		}
	}
}

// BenchmarkFig03ContentLocality regenerates Fig. 3 (reference-count
// distribution; paper: tiny hot fraction holds ~42.7% of write volume).
func BenchmarkFig03ContentLocality(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig3(opts)
		if err != nil {
			b.Fatal(err)
		}
		hotU, hotW := 0.0, 0.0
		for _, r := range rows {
			hotU += r.UniqueShares[workload.Num1000Plus]
			hotW += r.WriteShares[workload.Num1000Plus]
		}
		n := float64(len(rows))
		b.ReportMetric(hotU/n*100, "hot-unique-%")
		b.ReportMetric(hotW/n*100, "hot-volume-%")
	}
}

// BenchmarkFig05LookupBottleneck regenerates Fig. 5 (duplicates filtered by
// cached vs NVMM fingerprints under full dedup, and the lookup latency
// share; paper: 51.0% / 13.7% / 49.2%).
func BenchmarkFig05LookupBottleneck(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig5(opts)
		if err != nil {
			b.Fatal(err)
		}
		var cacheShare, nvmmShare, lookupShare float64
		for _, r := range rows {
			cacheShare += r.DupByCacheShare
			nvmmShare += r.DupByNVMMShare
			lookupShare += r.LookupLatencyShare
		}
		n := float64(len(rows))
		b.ReportMetric(cacheShare/n*100, "dup-by-cache-%")
		b.ReportMetric(nvmmShare/n*100, "dup-by-nvmm-%")
		b.ReportMetric(lookupShare/n*100, "lookup-latency-%")
	}
}

// BenchmarkFig08Collisions regenerates Fig. 8 (fingerprint collision
// probability, normalized to CRC).
func BenchmarkFig08Collisions(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig8(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Kind == fingerprint.KindECC {
				b.ReportMetric(r.Normalized, "ecc-vs-crc16")
			}
			if r.Kind == fingerprint.KindCRC32 {
				b.ReportMetric(r.Normalized, "crc32-vs-crc16")
			}
		}
	}
}

// BenchmarkFig11WriteReduction regenerates Fig. 11 (write reduction vs
// Baseline; paper: ESD 47.8% average).
func BenchmarkFig11WriteReduction(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig11(opts)
		if err != nil {
			b.Fatal(err)
		}
		reportAverage(b, rows, "write-reduction-%")
	}
}

// BenchmarkFig12WriteSpeedup regenerates Fig. 12 (write speedup vs
// Baseline; paper: ESD up to 3.4x).
func BenchmarkFig12WriteSpeedup(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig12(opts)
		if err != nil {
			b.Fatal(err)
		}
		reportAverage(b, rows, "write-speedup")
	}
}

// BenchmarkFig13ReadSpeedup regenerates Fig. 13 (read speedup vs Baseline;
// paper: ESD up to 5.3x).
func BenchmarkFig13ReadSpeedup(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig13(opts)
		if err != nil {
			b.Fatal(err)
		}
		reportAverage(b, rows, "read-speedup")
	}
}

// BenchmarkFig14IPC regenerates Fig. 14 (IPC normalized to Baseline; paper:
// ESD up to 2.4x).
func BenchmarkFig14IPC(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig14(opts)
		if err != nil {
			b.Fatal(err)
		}
		reportAverage(b, rows, "ipc-norm")
	}
}

// BenchmarkFig15TailLatency regenerates Fig. 15 (write latency CDF for the
// eight selected applications).
func BenchmarkFig15TailLatency(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig15(opts)
		if err != nil {
			b.Fatal(err)
		}
		var esdP99, shaP99 float64
		var n float64
		for _, r := range rows {
			switch r.Scheme {
			case experiments.SchemeESD:
				esdP99 += r.P99.Nanoseconds()
				n++
			case experiments.SchemeSHA1:
				shaP99 += r.P99.Nanoseconds()
			}
		}
		b.ReportMetric(esdP99/n, "esd-p99-ns")
		b.ReportMetric(shaP99/n, "sha1-p99-ns")
	}
}

// BenchmarkFig16Energy regenerates Fig. 16 (energy normalized to Baseline;
// lower is better).
func BenchmarkFig16Energy(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig16(opts)
		if err != nil {
			b.Fatal(err)
		}
		reportAverage(b, rows, "energy-norm")
	}
}

// BenchmarkFig17WriteProfile regenerates Fig. 17 (write latency profile;
// paper: SHA-1 ~80% fingerprint computation, ESD dominated by media).
func BenchmarkFig17WriteProfile(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig17(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Scheme {
			case experiments.SchemeSHA1:
				b.ReportMetric(r.FPCompute*100, "sha1-fpcompute-%")
			case experiments.SchemeESD:
				b.ReportMetric(r.WriteUnique*100, "esd-write-%")
			}
		}
	}
}

// BenchmarkFig18CacheSweep regenerates Fig. 18 (EFIT/AMT hit rate vs cache
// size, with and without LRCU). The sweep runs 12 simulations per
// application, so it uses a reduced application set.
func BenchmarkFig18CacheSweep(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	opts.Apps = []string{"lbm", "mcf", "x264", "gcc"}
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig18(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.SizeBytes == 512<<10 {
				b.ReportMetric(r.EFITHitLRCU, "efit-hit@512KB")
				b.ReportMetric(r.AMTHit, "amt-hit@512KB")
			}
		}
	}
}

// BenchmarkFig19Metadata regenerates Fig. 19 (NVMM metadata overhead
// normalized to Dedup_SHA1; paper: ESD -81.2%, DeWrite -60.9%).
func BenchmarkFig19Metadata(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig19(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Normalized, r.Scheme+"-metadata-norm")
		}
	}
}

// BenchmarkTableIConfig exercises construction at the paper's full Table I
// scale (16 GB device), validating that capacity-level structures stay
// sparse.
func BenchmarkTableIConfig(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(DefaultConfig(), SchemeESD)
		if err != nil {
			b.Fatal(err)
		}
		var line Line
		line[0] = byte(i)
		sys.Write(uint64(i%1024), line)
	}
}

// BenchmarkSystemWriteESD measures raw simulator throughput on the ESD
// write path (requests simulated per second).
func BenchmarkSystemWriteESD(b *testing.B) {
	b.ReportAllocs()
	cfg := DefaultConfig()
	cfg.PCM.CapacityBytes = 1 << 30
	sys, err := NewSystem(cfg, SchemeESD)
	if err != nil {
		b.Fatal(err)
	}
	var line Line
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line.SetWord(0, uint64(i)%512)
		sys.Write(uint64(i)%65536, line)
	}
}

// BenchmarkSystemWriteSHA1 is the same workload under Dedup_SHA1, showing
// the simulation-throughput cost of cryptographic fingerprinting.
func BenchmarkSystemWriteSHA1(b *testing.B) {
	b.ReportAllocs()
	cfg := DefaultConfig()
	cfg.PCM.CapacityBytes = 1 << 30
	sys, err := NewSystem(cfg, SchemeSHA1)
	if err != nil {
		b.Fatal(err)
	}
	var line Line
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line.SetWord(0, uint64(i)%512)
		sys.Write(uint64(i)%65536, line)
	}
}

// BenchmarkAblationCapacity regenerates the effective-capacity ablation
// (BCD base+delta vs exact dedup on a near-duplicate workload).
func BenchmarkAblationCapacity(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.AblationCapacity(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.EffectiveCapacity, r.Scheme+"-capacity")
		}
	}
}

// BenchmarkAblationRecovery regenerates the crash-recovery transient study.
func BenchmarkAblationRecovery(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	opts.Apps = []string{"x264", "dedup"}
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.AblationRecovery(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheme == experiments.SchemeESD {
				b.ReportMetric(r.PostCrashNs, "esd-postcrash-ns")
				b.ReportMetric(r.RecoveredNs, "esd-recovered-ns")
			}
		}
	}
}

// BenchmarkTelemetryOverhead measures the write-path cost of the
// telemetry hooks in three configurations: telemetry disabled (every
// hook is a nil-receiver no-op), metrics only (atomic counter updates,
// no tracer), and full event tracing to io.Discard at the default
// sampling rate. The off/metrics gap is the regression budget for new
// hooks — keep it under a few percent.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, opts ...SystemOption) {
		b.ReportAllocs()
		cfg := DefaultConfig()
		cfg.PCM.CapacityBytes = 1 << 30
		sys, err := NewSystem(cfg, SchemeESD, opts...)
		if err != nil {
			b.Fatal(err)
		}
		var line Line
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			line.SetWord(0, uint64(i)%512)
			sys.Write(uint64(i)%65536, line)
		}
		b.StopTimer()
		if err := sys.CloseTrace(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("off", func(b *testing.B) { run(b) })
	b.Run("metrics", func(b *testing.B) { run(b, WithMetrics()) })
	b.Run("trace", func(b *testing.B) {
		run(b, WithEventTrace(io.Discard), WithTraceSampling(64))
	})
}

// BenchmarkStageTracingOverhead prices the request-tracing additions on
// the ESD write path. "off" is the telemetry-dark baseline
// (BenchmarkSystemWriteESD's configuration); "metrics" is a live sink,
// which since this PR includes the per-stage latency histograms behind
// /statusz; "metrics+flight" adds the always-on flight-recorder ring.
// The contract: the tracing additions (stage vectors + flight record)
// must stay well under 10% of the metrics baseline — and 0 allocs/op in
// every configuration, because tracing must never put the steady state on
// the heap.
func BenchmarkStageTracingOverhead(b *testing.B) {
	run := func(opts ...SystemOption) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			cfg := DefaultConfig()
			cfg.PCM.CapacityBytes = 1 << 30
			sys, err := NewSystem(cfg, SchemeESD, opts...)
			if err != nil {
				b.Fatal(err)
			}
			var line Line
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				line.SetWord(0, uint64(i)%512)
				sys.Write(uint64(i)%65536, line)
			}
		}
	}
	b.Run("off", run())
	b.Run("metrics", run(WithMetrics()))
	b.Run("metrics+flight", run(WithMetrics(), WithFlightRecorder(256)))
}

// BenchmarkSystemWriteBatch measures the batched single-engine write path
// (System.WriteBatch at 64 ops per call) on the same address/content
// stream as BenchmarkSystemWriteESD. ns/op is per line, so the gap to
// BenchmarkSystemWriteESD is the amortization won by the batch kernels
// (one ECC pass, one multi-block AES pad pass, one arrival group).
// The batch path must stay at 0 allocs/op — alloc_test.go pins the same
// contract as a plain test.
func BenchmarkSystemWriteBatch(b *testing.B) {
	b.ReportAllocs()
	cfg := DefaultConfig()
	cfg.PCM.CapacityBytes = 1 << 30
	sys, err := NewSystem(cfg, SchemeESD)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 64
	ops := make([]WriteBatchOp, batch)
	fill := func(base int) {
		for j := range ops {
			k := base + j
			ops[j].Addr = uint64(k) % 65536
			ops[j].Line.SetWord(0, uint64(k)%512)
		}
	}
	fill(0)
	sys.WriteBatch(ops) // warm the reusable scratch before the clock starts
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		fill(i)
		sys.WriteBatch(ops)
	}
}

// BenchmarkShardedThroughput measures end-to-end write throughput of the
// sharded engine at 1/2/4/8 shards, with a duplicate-heavy stream (most
// content drawn from a small pool, so the dedup fast path dominates) and
// a unique-heavy one (every line distinct, so full write cost dominates).
// A fixed worker count drives each configuration, so the shard sweep
// isolates engine parallelism from client parallelism; speedups track the
// host's core count (a single-core CI runner shows queueing behavior, not
// parallel scaling). Since the batch-kernel pass, each worker submits
// 256-op batches through ShardedSystem.WriteBatch — one shard handoff and
// one batched AES+ECC pass per sub-batch instead of one per line — which
// is where the headline multiple over the scalar PR6 baseline comes from.
// The client batch is sized so that even at 8 shards the router's per-shard
// sub-batches stay deep enough (~32 ops) to amortize the handoff.
func BenchmarkShardedThroughput(b *testing.B) {
	const workers = 8
	const batch = 256
	run := func(b *testing.B, shards int, dupHeavy bool) {
		b.ReportAllocs()
		cfg := DefaultConfig()
		cfg.PCM.CapacityBytes = 1 << 30
		sys, err := NewShardedSystem(cfg, SchemeESD, WithShards(shards))
		if err != nil {
			b.Fatal(err)
		}
		defer sys.Close()
		b.ResetTimer()
		var wg sync.WaitGroup
		per := b.N / workers
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// The op buffer is reused across batches and filled in
				// place — a steady-state batching client keeps one request
				// buffer, it does not rebuild 64-byte lines per op.
				ops := make([]WriteBatchOp, batch)
				n := 0
				flush := func() bool {
					if n == 0 {
						return true
					}
					if err := sys.WriteBatch(ops[:n]); err != nil {
						b.Error(err)
						return false
					}
					for j := 0; j < n; j++ {
						if ops[j].Err != nil {
							b.Error(ops[j].Err)
							return false
						}
					}
					n = 0
					return true
				}
				for i := 0; i < per; i++ {
					op := &ops[n]
					op.Addr = uint64(w*1_000_000 + i%65536)
					if dupHeavy {
						op.Line.SetWord(0, uint64(i)%16)
					} else {
						op.Line.SetWord(0, uint64(w)<<32|uint64(i))
						op.Line.SetWord(1, ^uint64(i))
					}
					n++
					if n == batch && !flush() {
						return
					}
				}
				flush()
			}(w)
		}
		wg.Wait()
		b.StopTimer()
		elapsed := b.Elapsed().Seconds()
		if elapsed > 0 {
			b.ReportMetric(float64(per*workers)/elapsed, "writes/s")
		}
	}
	for _, mix := range []struct {
		name string
		dup  bool
	}{{"dup-heavy", true}, {"unique-heavy", false}} {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards=%d", mix.name, shards), func(b *testing.B) {
				run(b, shards, mix.dup)
			})
		}
	}
}
