#!/usr/bin/env sh
# Smoke test for the cluster stack: boot three esdserve nodes and an
# esdrouter fronting them with R=2 replication, drive load through the
# router, SIGTERM one node mid-fleet, drive load again (zero
# client-visible errors — the retry/failover budget must absorb the
# loss), and validate the /statusz ring section. CI runs this
# (make cluster-smoke); it needs nothing beyond the go toolchain.
set -eu

BASE_PORT="${BASE_PORT:-18180}"
ROUTER_TCP="${ROUTER_TCP:-18190}"
ROUTER_HTTP="${ROUTER_HTTP:-18191}"
BIN="$(mktemp -d)"
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; rm -rf "$BIN"' EXIT INT TERM

go build -o "$BIN/esdserve" ./cmd/esdserve
go build -o "$BIN/esdrouter" ./cmd/esdrouter
go build -o "$BIN/esdload" ./cmd/esdload
go build -o "$BIN/esdtop" ./cmd/esdtop

# Three backend nodes: TCP data path + HTTP for /readyz probing. node2
# runs with -legacy-frames (a protocol-version-0 binary): the router must
# detect it via the hello probe and fall back to untraced frames for it
# while still tracing the rest of the fleet.
NODES=""
i=0
while [ "$i" -lt 3 ]; do
  HTTP=$((BASE_PORT + i * 2))
  TCP=$((BASE_PORT + i * 2 + 1))
  LEGACY=""
  if [ "$i" -eq 2 ]; then
    LEGACY="-legacy-frames"
  fi
  "$BIN/esdserve" -addr "127.0.0.1:$HTTP" -tcp-addr "127.0.0.1:$TCP" \
    -scheme esd -shards 2 $LEGACY >"$BIN/node$i.log" 2>&1 &
  eval "NODE${i}_PID=$!"
  PIDS="$PIDS $!"
  NODES="${NODES}${NODES:+,}127.0.0.1:$TCP@127.0.0.1:$HTTP=node$i"
  i=$((i + 1))
done

"$BIN/esdrouter" -tcp-addr "127.0.0.1:$ROUTER_TCP" -addr "127.0.0.1:$ROUTER_HTTP" \
  -nodes "$NODES" -replication 2 -probe 250ms >"$BIN/router.log" 2>&1 &
ROUTER_PID=$!
PIDS="$PIDS $ROUTER_PID"

# Wait for the router data path (which implies at least one ready node).
i=0
until "$BIN/esdload" -addr "127.0.0.1:$ROUTER_TCP" -proto tcp -n 1 -workers 1 \
  -stats=false -flush=false >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 100 ]; then
    echo "cluster-smoke: router never came up" >&2
    cat "$BIN/router.log" >&2
    for n in 0 1 2; do cat "$BIN/node$n.log" >&2; done
    exit 1
  fi
  sleep 0.1
done

echo "cluster-smoke: routed load, full fleet"
"$BIN/esdload" -addr "127.0.0.1:$ROUTER_TCP" -proto tcp -n 2000 -workers 4 \
  -writes 0.6 -dup 0.4 -space 4096

# Protocol backward-compat: a new (tracing) router in front of an old-
# frame node must detect the v0 peer exactly once and keep serving it.
if ! grep -q "node2 speaks protocol v0" "$BIN/router.log"; then
  echo "cluster-smoke: router never detected the legacy-frame node:" >&2
  cat "$BIN/router.log" >&2
  exit 1
fi
echo "cluster-smoke: legacy-frame node detected, traffic flowing"

# The fleet-aggregated status view and the fleet dashboard.
if command -v curl >/dev/null 2>&1 && command -v python3 >/dev/null 2>&1; then
  echo "cluster-smoke: /statusz/cluster fleet aggregation"
  code=$(curl -s -o "$BIN/cluster.out" -w '%{http_code}' "http://127.0.0.1:$ROUTER_HTTP/statusz/cluster")
  if [ "$code" != 200 ]; then
    echo "cluster-smoke: GET /statusz/cluster returned $code" >&2
    cat "$BIN/cluster.out" >&2
    exit 1
  fi
  python3 - "$BIN/cluster.out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    cs = json.load(f)
assert len(cs["members"]) == 3, cs
assert cs["reachable_members"] == 3, cs
assert cs["shards"] == 6, "fleet shard sum wrong: %r" % cs["shards"]
for m in cs["members"]:
    assert m["reachable"] and m["status"]["ready"], m
dev = cs["device"]
assert dev and dev["media_writes"] > 0, dev
print("cluster-smoke: fleet view OK — %d/%d members, %d shards, %d media writes"
      % (cs["reachable_members"], len(cs["members"]), cs["shards"], dev["media_writes"]))
EOF
else
  echo "cluster-smoke: curl/python3 not found, skipping /statusz/cluster check"
fi

echo "cluster-smoke: esdtop -router -once"
"$BIN/esdtop" -router -once -addr "http://127.0.0.1:$ROUTER_HTTP" >"$BIN/esdtop.out"
if ! grep -q "members reachable" "$BIN/esdtop.out"; then
  echo "cluster-smoke: esdtop -router rendered no fleet section:" >&2
  cat "$BIN/esdtop.out" >&2
  exit 1
fi

echo "cluster-smoke: killing node1"
kill -TERM "$NODE1_PID"
wait "$NODE1_PID" || true

# With R=2, losing one node must be invisible: esdload exits nonzero on
# any client-visible error, so this run IS the assertion.
echo "cluster-smoke: routed load, one node down"
"$BIN/esdload" -addr "127.0.0.1:$ROUTER_TCP" -proto tcp -n 2000 -workers 4 \
  -writes 0.6 -dup 0.4 -space 4096

# The router's /statusz ring section must reflect the loss.
if command -v curl >/dev/null 2>&1; then
  echo "cluster-smoke: /statusz ring section"
  code=$(curl -s -o "$BIN/statusz.out" -w '%{http_code}' "http://127.0.0.1:$ROUTER_HTTP/statusz")
  if [ "$code" != 200 ]; then
    echo "cluster-smoke: GET /statusz returned $code" >&2
    cat "$BIN/statusz.out" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$BIN/statusz.out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    st = json.load(f)
assert st["epoch"] == 1, st
assert st["replication"] == 2, st
assert len(st["nodes"]) == 3, st
assert st["healthy_nodes"] == 2, "killed node still counted healthy: %r" % st
by_name = {n["name"]: n for n in st["nodes"]}
assert not by_name["node1"]["healthy"], by_name
assert by_name["node0"]["healthy"] and by_name["node2"]["healthy"], by_name
assert by_name["node0"]["writes"] > 0 and by_name["node2"]["writes"] > 0, by_name
print("cluster-smoke: ring section OK — epoch %d, %d/%d healthy, failovers=%d"
      % (st["epoch"], st["healthy_nodes"], len(st["nodes"]), st["failovers"]))
EOF
  else
    echo "cluster-smoke: python3 not found, skipping ring validation"
  fi
else
  echo "cluster-smoke: curl not found, skipping /statusz check"
fi

# Graceful drain of the router and remaining nodes.
kill -TERM "$ROUTER_PID"
wait "$ROUTER_PID"
STATUS=$?
if [ "$STATUS" -ne 0 ]; then
  echo "cluster-smoke: esdrouter exited $STATUS" >&2
  cat "$BIN/router.log" >&2
  exit 1
fi
if ! grep -q "drained clean" "$BIN/router.log"; then
  echo "cluster-smoke: no clean-drain marker in router log:" >&2
  cat "$BIN/router.log" >&2
  exit 1
fi
echo "cluster-smoke: OK"
