#!/usr/bin/env sh
# Fuzz smoke: run every fuzz target in the repo for a bounded slice of
# wall-clock time. This is not a soak — it catches targets that crash,
# hang or reject their own seed corpus within seconds, which is the
# failure mode a code change actually introduces. CI runs this on every
# push; leave FUZZTIME at the default locally for the same coverage.
#
# Usage:
#   sh scripts/fuzz_smoke.sh               # 30s per target
#   FUZZTIME=5s sh scripts/fuzz_smoke.sh   # quicker local iteration
set -eu

FUZZTIME="${FUZZTIME:-30s}"

run() {
  pkg="$1"
  target="$2"
  echo "fuzz-smoke: $target ($pkg, $FUZZTIME)"
  go test -run '^$' -fuzz "^${target}\$" -fuzztime "$FUZZTIME" "$pkg"
}

run ./internal/dedup   FuzzSchemeWrite
run ./internal/memctrl FuzzAMTRemap
run ./internal/server  FuzzTCPFrame
run ./internal/server  FuzzTCPFrameBatch
run ./internal/check   FuzzDifferential

echo "fuzz-smoke: all targets clean"
