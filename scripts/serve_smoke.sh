#!/usr/bin/env sh
# Smoke test for the serving stack: boot esdserve, fire 1k requests at it
# with esdload over both protocols, and assert a clean graceful drain.
# CI runs this (make serve-smoke); it needs nothing beyond the go toolchain.
set -eu

HTTP_PORT="${HTTP_PORT:-18080}"
TCP_PORT="${TCP_PORT:-18081}"
BIN="$(mktemp -d)"
LOG="$BIN/esdserve.log"
trap 'kill "$SERVE_PID" 2>/dev/null || true; kill "$CARAM_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT INT TERM
SERVE_PID=""
CARAM_PID=""

go build -o "$BIN/esdserve" ./cmd/esdserve
go build -o "$BIN/esdload" ./cmd/esdload
go build -o "$BIN/esdtop" ./cmd/esdtop

"$BIN/esdserve" -addr "127.0.0.1:$HTTP_PORT" -tcp-addr "127.0.0.1:$TCP_PORT" \
  -scheme esd -shards 4 -metrics -trace -slow 500ms >"$LOG" 2>&1 &
SERVE_PID=$!

# Wait for the listener (up to ~10 s).
i=0
until "$BIN/esdload" -addr "http://127.0.0.1:$HTTP_PORT" -n 1 -workers 1 -stats=false -flush=false >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 100 ]; then
    echo "serve-smoke: server never came up" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep 0.1
done

echo "serve-smoke: HTTP load"
"$BIN/esdload" -addr "http://127.0.0.1:$HTTP_PORT" -n 1000 -workers 4 -writes 0.6 -dup 0.4

echo "serve-smoke: TCP load"
"$BIN/esdload" -addr "127.0.0.1:$TCP_PORT" -proto tcp -n 1000 -workers 4 -writes 0.6 -dup 0.4

# Introspection surface: every endpoint must answer 200 and the JSON ones
# must parse and reflect the traffic just driven. curl/python3 are present
# on the CI runners; skip politely on dev boxes without them.
if command -v curl >/dev/null 2>&1; then
  echo "serve-smoke: introspection endpoints"
  for ep in healthz readyz statusz debug/flightrecorder debug/device metrics; do
    code=$(curl -s -o "$BIN/$(basename "$ep").out" -w '%{http_code}' "http://127.0.0.1:$HTTP_PORT/$ep")
    if [ "$code" != 200 ]; then
      echo "serve-smoke: GET /$ep returned $code" >&2
      cat "$BIN/$(basename "$ep").out" >&2
      exit 1
    fi
  done
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$BIN/statusz.out" "$BIN/flightrecorder.out" "$BIN/device.out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    st = json.load(f)
assert st["ready"] is True, st
assert st["shards"] == 4, st
assert st["tracing"] is True, st
assert st["stages"], "statusz has no per-stage latencies: %r" % st
for name, s in st["stages"].items():
    assert s["count"] > 0 and s["p99_ns"] >= s["p50_ns"], (name, s)
assert st["device"]["media_writes"] > 0, st.get("device")
assert st["device"]["max_wear"] >= 1, st["device"]
assert st["rates"]["window_s"] > 0, st.get("rates")
with open(sys.argv[2]) as f:
    recs = json.load(f)
assert isinstance(recs, list) and recs, "flight recorder empty after load"
assert all(r["kind"] in ("write", "read") for r in recs), recs[:3]
with open(sys.argv[3]) as f:
    dev = json.load(f)
assert dev["shards"] == 4 and dev["media_writes"] > 0, dev
assert dev["banks"], "device document has no bank rows"
for b in dev["banks"]:
    assert {"shard", "bank", "writes", "max_wear"} <= set(b), b
assert dev["wear"]["max"] >= 1 and dev["wear"]["mean"] > 0, dev["wear"]
assert dev["dedup"]["writes"] > 0, dev["dedup"]
assert dev["wear_hist"], "wear histogram empty after load"
assert dev["media_writes"] == sum(b["writes"] for b in dev["banks"]), \
    "bank rows do not sum to media writes"
print("serve-smoke: statusz has %d stages, flight recorder holds %d records, "
      "device doc has %d bank rows (max wear %d)"
      % (len(st["stages"]), len(recs), len(dev["banks"]), dev["wear"]["max"]))
EOF
  else
    echo "serve-smoke: python3 not found, skipping JSON validation"
  fi

  echo "serve-smoke: esdtop one-frame render"
  if ! "$BIN/esdtop" -once -addr "http://127.0.0.1:$HTTP_PORT" >"$BIN/esdtop.out" 2>&1; then
    echo "serve-smoke: esdtop -once failed:" >&2
    cat "$BIN/esdtop.out" >&2
    exit 1
  fi
  if ! grep -q "wear heatmap" "$BIN/esdtop.out"; then
    echo "serve-smoke: esdtop frame missing wear heatmap:" >&2
    cat "$BIN/esdtop.out" >&2
    exit 1
  fi
else
  echo "serve-smoke: curl not found, skipping endpoint checks"
fi

# Graceful drain: SIGTERM, then the process must exit 0 and report a
# clean drain with traffic accounted for.
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
STATUS=$?
if [ "$STATUS" -ne 0 ]; then
  echo "serve-smoke: esdserve exited $STATUS" >&2
  cat "$LOG" >&2
  exit 1
fi
if ! grep -q "drained clean" "$LOG"; then
  echo "serve-smoke: no clean-drain marker in server log:" >&2
  cat "$LOG" >&2
  exit 1
fi
grep "drained clean" "$LOG"

# Second pass on the hybrid DRAM/PCM tier (scheme esd+caram): same load,
# then the device document must carry the hybrid section with WAL and
# absorption activity, esdtop must render the hybrid row, and the drain
# must stay clean — the serving-level "kill mid-load loses nothing" check
# (every acknowledged write was WAL-persisted to PCM before install).
CARAM_PORT=$((HTTP_PORT + 2))
CARAM_LOG="$BIN/esdserve-caram.log"
"$BIN/esdserve" -addr "127.0.0.1:$CARAM_PORT" \
  -scheme esd+caram -shards 2 -metrics -trace >"$CARAM_LOG" 2>&1 &
CARAM_PID=$!
i=0
until "$BIN/esdload" -addr "http://127.0.0.1:$CARAM_PORT" -n 1 -workers 1 -stats=false -flush=false >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 100 ]; then
    echo "serve-smoke: esd+caram server never came up" >&2
    cat "$CARAM_LOG" >&2
    exit 1
  fi
  sleep 0.1
done

echo "serve-smoke: esd+caram HTTP load"
# Tight address space so lines get rewritten: repeat writes build heat,
# promote into DRAM, and exercise the WAL-then-install path.
"$BIN/esdload" -addr "http://127.0.0.1:$CARAM_PORT" -n 1000 -workers 4 -writes 0.6 -dup 0.4 -space 256

if command -v curl >/dev/null 2>&1; then
  code=$(curl -s -o "$BIN/caram-device.out" -w '%{http_code}' "http://127.0.0.1:$CARAM_PORT/debug/device")
  if [ "$code" != 200 ]; then
    echo "serve-smoke: esd+caram GET /debug/device returned $code" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$BIN/caram-device.out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    dev = json.load(f)
assert dev["scheme"] == "esd+caram", dev["scheme"]
h = dev.get("hybrid")
assert h, "esd+caram device document has no hybrid section: %r" % dev
assert h["capacity_lines"] > 0, h
assert h["wal_appends"] > 0, "no write-ahead activity after a write-heavy load: %r" % h
assert h["promotions"] > 0, h
assert h["absorbed_writes"] > 0, h
print("serve-smoke: esd+caram hybrid section: wal=%d absorbed=%d promo=%d resident=%d/%d"
      % (h["wal_appends"], h["absorbed_writes"], h["promotions"],
         h["resident_lines"], h["capacity_lines"]))
EOF
  fi
  "$BIN/esdtop" -once -addr "http://127.0.0.1:$CARAM_PORT" >"$BIN/esdtop-caram.out" 2>&1
  if ! grep -q "hybrid " "$BIN/esdtop-caram.out"; then
    echo "serve-smoke: esdtop frame missing hybrid row on esd+caram:" >&2
    cat "$BIN/esdtop-caram.out" >&2
    exit 1
  fi
fi

kill -TERM "$CARAM_PID"
wait "$CARAM_PID" || { echo "serve-smoke: esd+caram exited non-zero" >&2; cat "$CARAM_LOG" >&2; exit 1; }
CARAM_PID=""
if ! grep -q "drained clean" "$CARAM_LOG"; then
  echo "serve-smoke: no clean-drain marker in esd+caram log:" >&2
  cat "$CARAM_LOG" >&2
  exit 1
fi
grep "drained clean" "$CARAM_LOG"
echo "serve-smoke: OK"
