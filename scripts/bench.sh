#!/usr/bin/env sh
# Perf-regression harness: run the hot-path kernel micro-benchmarks and the
# sharded throughput benchmark, then convert the output into the
# machine-readable BENCH_<label>.json trajectory point via cmd/benchjson.
#
# Usage:
#   sh scripts/bench.sh                 # full run, writes BENCH_PR3.json
#   BENCH_LABEL=PR4 sh scripts/bench.sh # next trajectory point
#   BENCHTIME=1x sh scripts/bench.sh    # CI smoke: one iteration per benchmark
#   BENCHCOUNT=5 sh scripts/bench.sh    # 5 runs per benchmark; benchjson
#                                       # records the median (use for the
#                                       # committed trajectory points — a
#                                       # single run on a shared machine is
#                                       # noise-dominated)
set -eu

LABEL="${BENCH_LABEL:-PR3}"
BENCHTIME="${BENCHTIME:-1s}"
BENCHCOUNT="${BENCHCOUNT:-1}"
OUT="${BENCH_OUT:-BENCH_${LABEL}.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT INT TERM

# Kernel micro-benchmarks: the ECC codec, the CME engine, and the
# per-line fingerprinters that sit on both.
go test -run '^$' -bench '.' -benchmem -benchtime "$BENCHTIME" -count "$BENCHCOUNT" \
  ./internal/ecc ./internal/crypto ./internal/fingerprint | tee "$TMP"

# System-level: single-threaded write path and the sharded engine's
# concurrent throughput (writes/s is the headline lines/sec metric).
go test -run '^$' -bench 'BenchmarkSystemWrite|BenchmarkShardedThroughput|BenchmarkStageTracingOverhead' \
  -benchmem -benchtime "$BENCHTIME" -count "$BENCHCOUNT" . | tee -a "$TMP"

# Cluster-level: a routed write through a real TCP backend with
# distributed tracing off vs on — the "on" rows must hold the same
# allocs/op as "off" (hop recording is allocation-free by design).
go test -run '^$' -bench 'BenchmarkRouterTracingOverhead' \
  -benchmem -benchtime "$BENCHTIME" -count "$BENCHCOUNT" ./internal/cluster | tee -a "$TMP"

go run ./cmd/benchjson -label "$LABEL" -o "$OUT" "$TMP"
echo "bench: wrote $OUT"
