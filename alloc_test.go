package esd

import (
	"testing"

	"github.com/esdsim/esd/internal/crypto"
	"github.com/esdsim/esd/internal/ecc"
)

// Steady-state allocation gates. The write path is the simulator's inner
// loop — every figure campaign and throughput benchmark lives on it — so
// the hot-path kernels (table-driven ECC, in-place counter-mode crypto,
// ring-buffered bank queues, scratch line buffers) are required to keep it
// allocation-free once the working set is warm. These tests fail the build
// the moment a change reintroduces a per-write or per-read heap allocation.

// allocSystem builds a System, warms a bounded working set until the
// scheme's maps and caches reach steady state, and returns closures that
// advance through it one request at a time.
func allocSystem(t *testing.T, scheme string, opts ...SystemOption) (write, read func()) {
	t.Helper()
	sys, err := NewSystem(DefaultConfig(), scheme, opts...)
	if err != nil {
		t.Fatal(err)
	}
	const addrs = 512
	var lines [8]Line
	for i := range lines {
		for j := range lines[i] {
			lines[i][j] = byte(i*31 + j + 1)
		}
	}
	n := 0
	write = func() {
		sys.Write(uint64(n%addrs), lines[n%len(lines)])
		n++
	}
	m := 0
	read = func() {
		sys.Read(uint64(m % addrs))
		m++
	}
	// Warm-up: touch every address several times so the AMT, counter store
	// and device maps stop growing before the measurement window.
	for i := 0; i < addrs*8; i++ {
		write()
	}
	for i := 0; i < addrs; i++ {
		read()
	}
	return write, read
}

func TestSteadyStateWriteAllocs(t *testing.T) {
	for _, scheme := range []string{SchemeBaseline, SchemeSHA1, SchemeDeWrite, SchemeESD} {
		t.Run(scheme, func(t *testing.T) {
			write, _ := allocSystem(t, scheme)
			if avg := testing.AllocsPerRun(2000, write); avg != 0 {
				t.Errorf("%s steady-state write: %v allocs/op, want 0", scheme, avg)
			}
		})
	}
}

func TestSteadyStateReadAllocs(t *testing.T) {
	for _, scheme := range []string{SchemeBaseline, SchemeSHA1, SchemeDeWrite, SchemeESD} {
		t.Run(scheme, func(t *testing.T) {
			_, read := allocSystem(t, scheme)
			if avg := testing.AllocsPerRun(2000, read); avg != 0 {
				t.Errorf("%s steady-state read: %v allocs/op, want 0", scheme, avg)
			}
		})
	}
}

// TestSteadyStateBatchWriteAllocs pins the batched write path: once warm,
// System.WriteBatch must stay off the heap for every scheme — both the
// schemes with native batch kernels (esd, sha1, baseline) and the ones
// the memctrl fallback drives through their scalar path (dewrite). The
// per-call scratch is reused inside System, so a steady stream of 16-op
// batches is required to allocate nothing at all.
func TestSteadyStateBatchWriteAllocs(t *testing.T) {
	for _, scheme := range []string{SchemeBaseline, SchemeSHA1, SchemeDeWrite, SchemeESD} {
		t.Run(scheme, func(t *testing.T) {
			sys, err := NewSystem(DefaultConfig(), scheme)
			if err != nil {
				t.Fatal(err)
			}
			const addrs = 512
			ops := make([]WriteBatchOp, 16)
			n := 0
			batchWrite := func() {
				for j := range ops {
					ops[j].Addr = uint64(n % addrs)
					ops[j].Line.SetWord(0, uint64(n%8)*0x9E3779B9+1)
					n++
				}
				sys.WriteBatch(ops)
			}
			// Warm-up: cycle the working set until the AMT, counter store
			// and batch scratch stop growing.
			for i := 0; i < addrs; i++ {
				batchWrite()
			}
			if avg := testing.AllocsPerRun(500, batchWrite); avg != 0 {
				t.Errorf("%s steady-state batched write: %v allocs/op, want 0", scheme, avg)
			}
		})
	}
}

// TestSteadyStateWriteAllocsWithMetrics re-runs the write gate with the
// full telemetry sink attached: the metric counters, the dedup
// effectiveness gauges and the always-on device-health accounting must
// all stay off the heap on the hot path. (Health accounting itself has no
// off switch, so the plain gates above already cover it; this variant
// proves the observable stack adds no allocation either.)
func TestSteadyStateWriteAllocsWithMetrics(t *testing.T) {
	for _, scheme := range []string{SchemeBaseline, SchemeSHA1, SchemeDeWrite, SchemeESD} {
		t.Run(scheme, func(t *testing.T) {
			write, _ := allocSystem(t, scheme, WithMetrics())
			if avg := testing.AllocsPerRun(2000, write); avg != 0 {
				t.Errorf("%s steady-state write with metrics: %v allocs/op, want 0", scheme, avg)
			}
		})
	}
}

// TestHealthSummaryAllocs pins the scrape-side path the telemetry gauges
// use: Device.HealthSummary must not allocate.
func TestHealthSummaryAllocs(t *testing.T) {
	sys, err := NewSystem(DefaultConfig(), SchemeESD)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		sys.Write(uint64(i), Line{byte(i)})
	}
	if avg := testing.AllocsPerRun(1000, func() { _ = sys.env.Device.HealthSummary() }); avg != 0 {
		t.Errorf("HealthSummary: %v allocs/op, want 0", avg)
	}
}

// TestKernelAllocs pins the two per-line kernels themselves: ECC
// fingerprinting and in-place counter-mode encrypt/decrypt must never
// allocate, independent of any scheme plumbing around them.
func TestKernelAllocs(t *testing.T) {
	var line ecc.Line
	for i := range line {
		line[i] = byte(i * 7)
	}
	var sink ecc.Fingerprint
	if avg := testing.AllocsPerRun(1000, func() { sink = ecc.EncodeLine(&line) }); avg != 0 {
		t.Errorf("ecc.EncodeLine: %v allocs/op, want 0", avg)
	}
	_ = sink

	eng := crypto.NewEngineFromSeed(42)
	eng.EncryptInPlace(7, &line) // warm the counter map
	if avg := testing.AllocsPerRun(1000, func() {
		eng.EncryptInPlace(7, &line)
		eng.DecryptInPlace(7, &line)
	}); avg != 0 {
		t.Errorf("crypto in-place encrypt/decrypt: %v allocs/op, want 0", avg)
	}
}
