module github.com/esdsim/esd

go 1.22
