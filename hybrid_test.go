package esd

import (
	"sync"
	"testing"

	"github.com/esdsim/esd/internal/xrand"
)

// hybridConfig shrinks the DRAM tier far below the test working sets so
// promotion, LRU demotion and dirty writeback all engage.
func hybridConfig() Config {
	cfg := smallConfig()
	cfg.Media.DRAM.CapacityBytes = 64 << 10 // 1024 lines before sharding
	cfg.Media.PromoteThreshold = 2
	return cfg
}

// TestHybridSystemEndToEnd drives the esd+caram scheme through the public
// System API: the tier must actually migrate lines, stats must surface
// through HybridStats, and every write must read back — including across
// a crash.
func TestHybridSystemEndToEnd(t *testing.T) {
	sys, err := NewSystem(hybridConfig(), SchemeESDCaram)
	if err != nil {
		t.Fatal(err)
	}
	if sys.SchemeName() != SchemeESDCaram {
		t.Fatalf("scheme name = %q", sys.SchemeName())
	}
	r := xrand.New(1)
	oracle := map[uint64]Line{}
	var pool [8]Line
	for i := range pool {
		pool[i].SetWord(0, r.Uint64())
	}
	for i := 0; i < 4000; i++ {
		addr := r.Uint64n(2048)
		line := pool[r.Intn(len(pool))]
		if r.Bool(0.5) {
			// Unique content: dedup misses write the media, which is what
			// exercises the WAL-then-DRAM protocol on hot lines.
			line.SetWord(1, r.Uint64())
		}
		sys.Write(addr, line)
		oracle[addr] = line
		if r.Bool(0.3) {
			sys.Read(r.Uint64n(2048))
		}
	}
	st, ok := sys.HybridStats()
	if !ok {
		t.Fatal("HybridStats reports no hybrid tier under esd+caram")
	}
	if st.Promotions == 0 || st.WALAppends == 0 || st.AbsorbedWrites == 0 {
		t.Fatalf("hybrid tier never engaged: %+v", st)
	}
	verify := func(stage string) {
		for addr, want := range oracle {
			if got, ro := sys.Read(addr); !ro.Hit || got != want {
				t.Fatalf("%s: line %d lost or corrupted", stage, addr)
			}
		}
	}
	verify("pre-crash")
	sys.Crash()
	verify("post-crash")

	// A plain-PCM scheme must report no tier.
	plain, err := NewSystem(smallConfig(), SchemeESD)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plain.HybridStats(); ok {
		t.Fatal("plain ESD reports a hybrid tier")
	}
}

// TestHybridShardedRace hammers concurrent promotion/demotion against
// reads and writes on the same hot lines, with scrape goroutines pulling
// HybridStats and DeviceHealth the whole time — the -race probe for the
// hybrid tier's telemetry surface.
func TestHybridShardedRace(t *testing.T) {
	cfg := hybridConfig()
	cfg.Media.DRAM.CapacityBytes = 16 << 10 // 64 lines per shard after the 4-way split
	sys, err := NewShardedSystem(cfg, SchemeESDCaram, WithShards(4), WithWriteCoalescing())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	const workers, opsPerWorker = 4, 800
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, ok := sys.HybridStats(); !ok {
				t.Error("hybrid tier vanished mid-run")
				return
			}
			sys.DeviceHealth()
			sys.LiveStats()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := xrand.New(100 + uint64(w))
			var line Line
			for i := 0; i < opsPerWorker; i++ {
				// A tight hot set shared by all workers: every address
				// crosses the promotion threshold fast and the 256-line
				// per-shard buffer keeps demoting.
				addr := r.Uint64n(4096)
				if r.Bool(0.6) {
					line.SetWord(0, r.Uint64())
					if _, err := sys.Write(addr, line); err != nil {
						t.Errorf("write: %v", err)
						return
					}
				} else {
					if _, err := sys.Read(addr); err != nil {
						t.Errorf("read: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scraper.Wait()

	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	st, ok := sys.HybridStats()
	if !ok {
		t.Fatal("no hybrid stats after run")
	}
	if st.Promotions == 0 || st.Demotions == 0 {
		t.Fatalf("race hammer produced no migration churn: %+v", st)
	}
}
