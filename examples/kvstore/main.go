// KV-store example: a fixed-slot key-value store built directly on the
// simulated encrypted NVMM, the kind of latency-sensitive service the
// paper's introduction motivates. Values are 64-byte slots; many services
// store highly redundant values (default configs, zeroed structs, session
// templates), which ESD deduplicates transparently below the store.
package main

import (
	"fmt"
	"log"

	esd "github.com/esdsim/esd"
	"github.com/esdsim/esd/internal/xrand"
)

// Store is a toy KV store: key -> logical NVMM line.
type Store struct {
	sys   *esd.System
	slots map[string]uint64
	next  uint64
}

// NewStore creates a store on top of sys.
func NewStore(sys *esd.System) *Store {
	return &Store{sys: sys, slots: make(map[string]uint64)}
}

// Put stores a value (at most 64 bytes) under key.
func (s *Store) Put(key string, value []byte) esd.WriteOutcome {
	if len(value) > 64 {
		panic("kvstore: value larger than one line")
	}
	addr, ok := s.slots[key]
	if !ok {
		addr = s.next
		s.next++
		s.slots[key] = addr
	}
	var line esd.Line
	copy(line[:], value)
	return s.sys.Write(addr, line)
}

// Get fetches the value stored under key.
func (s *Store) Get(key string) ([]byte, bool) {
	addr, ok := s.slots[key]
	if !ok {
		return nil, false
	}
	line, ro := s.sys.Read(addr)
	if !ro.Hit {
		return nil, false
	}
	return line[:], true
}

// Len returns the number of keys.
func (s *Store) Len() int { return len(s.slots) }

func main() {
	cfg := esd.DefaultConfig()
	cfg.PCM.CapacityBytes = 1 << 30
	sys, err := esd.NewSystem(cfg, esd.SchemeESD)
	if err != nil {
		log.Fatal(err)
	}
	store := NewStore(sys)

	// A session store: 10k users, but only a handful of distinct session
	// templates (real stores are full of near-identical records).
	templates := [][]byte{
		[]byte(`{"plan":"free","region":"eu","flags":0}`),
		[]byte(`{"plan":"free","region":"us","flags":0}`),
		[]byte(`{"plan":"pro","region":"eu","flags":3}`),
		[]byte(`{"plan":"pro","region":"us","flags":3}`),
		[]byte(`{"plan":"enterprise","region":"eu","flags":7}`),
	}
	rng := xrand.New(1)
	const users = 10000
	for i := 0; i < users; i++ {
		key := fmt.Sprintf("session:%06d", i)
		store.Put(key, templates[rng.Intn(len(templates))])
	}

	// Verify a few reads.
	for _, key := range []string{"session:000000", "session:004242", "session:009999"} {
		v, ok := store.Get(key)
		if !ok {
			log.Fatalf("lost key %s", key)
		}
		fmt.Printf("%s -> %s\n", key, v[:24])
	}

	st := sys.Stats()
	fmt.Printf("\n%d keys stored, %d media writes (%.1f%% eliminated by dedup)\n",
		store.Len(), st.UniqueWrites, st.DedupRate()*100)
	fmt.Printf("NVMM footprint: %d distinct lines for %d sessions\n",
		st.UniqueWrites, users)
	fmt.Printf("energy: %.1f uJ; simulated time: %v\n", sys.Energy()/1000, sys.Now())
	fmt.Println("\nBelow the store, ESD collapsed every identical session blob onto")
	fmt.Println("one physical line — no hashing on the write path, and the store")
	fmt.Println("itself never changed a line of code.")
}
