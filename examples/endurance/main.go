// Endurance study: PCM cells survive a limited number of writes
// (10-100 million, §I), so eliminating duplicate writes directly extends
// device lifetime. This example replays a write-heavy application under
// all four schemes and reports media-write reduction and per-line wear —
// the data behind the paper's Fig. 11 endurance argument.
package main

import (
	"fmt"
	"log"

	esd "github.com/esdsim/esd"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/nvm"
)

const (
	app     = "lbm" // write-heavy, 86% duplicate rate
	seed    = 42
	warmup  = 20000
	measure = 80000
	// pcmEnduranceWrites is a representative per-cell write budget.
	pcmEnduranceWrites = 10_000_000.0
)

func main() {
	fmt.Printf("Endurance study on %q (%d measured requests)\n\n", app, measure)
	fmt.Printf("%-12s %12s %12s %10s %10s %14s\n",
		"scheme", "media-writes", "data-writes", "max-wear", "p99-wear", "lifetime-gain")

	var baselineWrites float64
	for _, scheme := range esd.SchemeNames() {
		cfg := esd.DefaultConfig()
		cfg.PCM.CapacityBytes = 1 << 30
		sys, err := esd.NewSystem(cfg, scheme)
		if err != nil {
			log.Fatal(err)
		}
		sys.SetWarmup(warmup)
		res, err := sys.RunWorkload(app, seed, warmup+measure)
		if err != nil {
			log.Fatal(err)
		}
		wear := sys.Wear()
		if scheme == esd.SchemeBaseline {
			baselineWrites = float64(res.DataWrites)
		}
		gain := "1.00x"
		if res.DataWrites > 0 && baselineWrites > 0 {
			gain = fmt.Sprintf("%.2fx", baselineWrites/float64(res.DataWrites))
		}
		fmt.Printf("%-12s %12d %12d %10d %10d %14s\n",
			scheme, res.DeviceWrites, res.DataWrites, wear.MaxWear, wear.P99Wear, gain)
	}

	fmt.Printf("\nInterpretation: with a %.0e-write cell budget, a scheme that\n", pcmEnduranceWrites)
	fmt.Println("halves data writes roughly doubles time-to-first-cell-failure for")
	fmt.Println("the same traffic, before wear-leveling is even considered. ESD")
	fmt.Println("approaches full-dedup write reduction without the fingerprint")
	fmt.Println("store's own NVMM metadata writes (compare media-writes columns).")

	wearLevelingDemo()
}

// wearLevelingDemo shows the orthogonal endurance layer: Start-Gap wear
// leveling spreading a pathological hot spot across the device. Dedup
// reduces how many writes happen; Start-Gap spreads the survivors.
func wearLevelingDemo() {
	fmt.Println("\n--- Start-Gap wear leveling (orthogonal to dedup) ---")
	const lines, psi, writes = 256, 4, 200000
	cfg := esd.DefaultConfig().PCM
	cfg.CapacityBytes = 64 << 20

	// Without leveling: one hot line takes every write.
	raw := nvm.New(cfg)
	var l ecc.Line
	now := esd.Time(0)
	for i := 0; i < writes; i++ {
		l.SetWord(0, uint64(i))
		raw.Write(7, &l, now)
		now += 200 * esd.Nanosecond
	}
	rawWear := raw.Wear()

	// With Start-Gap: the same hot spot sweeps across the device.
	dev := nvm.New(cfg)
	ld := nvm.NewLeveledDevice(dev, lines, psi)
	now = 0
	for i := 0; i < writes; i++ {
		l.SetWord(0, uint64(i))
		ld.Write(7, &l, now)
		now += 200 * esd.Nanosecond
	}
	lvlWear := dev.Wear()

	fmt.Printf("%-22s %12s %12s %14s\n", "config", "max-wear", "slots-used", "gap-moves")
	fmt.Printf("%-22s %12d %12d %14s\n", "hot spot, no leveling", rawWear.MaxWear, rawWear.LinesTouched, "-")
	fmt.Printf("%-22s %12d %12d %14d\n", "hot spot, Start-Gap", lvlWear.MaxWear, lvlWear.LinesTouched, ld.Leveler().Moves)
	fmt.Printf("\nmax-wear improvement: %.0fx — endurance composes: dedup removes\n",
		float64(rawWear.MaxWear)/float64(lvlWear.MaxWear))
	fmt.Println("writes, Start-Gap levels what remains.")
}
