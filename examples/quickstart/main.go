// Quickstart: build an encrypted, deduplicating NVMM with the ESD scheme,
// write some cache lines, watch duplicates get eliminated by the ECC
// fingerprint + byte comparison, and read everything back.
package main

import (
	"fmt"
	"log"

	esd "github.com/esdsim/esd"
)

func main() {
	cfg := esd.DefaultConfig()
	cfg.PCM.CapacityBytes = 1 << 30 // 1 GiB is plenty for a demo

	sys, err := esd.NewSystem(cfg, esd.SchemeESD)
	if err != nil {
		log.Fatal(err)
	}

	// Three logical lines, two of them with identical content.
	var hot esd.Line
	copy(hot[:], "the same 64-byte payload written to two different addresses....")
	var unique esd.Line
	copy(unique[:], "a one-off payload that nothing else matches................")

	out1 := sys.Write(100, hot)
	out2 := sys.Write(200, hot) // duplicate content
	out3 := sys.Write(300, unique)

	fmt.Println("ESD write path:")
	fmt.Printf("  write #1 (new content):  dedup=%-5v latency=%v\n", out1.Deduplicated, out1.Done)
	fmt.Printf("  write #2 (same content): dedup=%-5v backing line shared with #1: %v\n",
		out2.Deduplicated, out2.PhysAddr == out1.PhysAddr)
	fmt.Printf("  write #3 (unique):       dedup=%-5v\n", out3.Deduplicated)

	for _, addr := range []uint64{100, 200, 300} {
		before := sys.Now()
		data, ro := sys.Read(addr)
		fmt.Printf("  read %d: hit=%v latency=%v content=%q...\n",
			addr, ro.Hit, ro.Done-before, string(data[:12]))
	}

	st := sys.Stats()
	fmt.Printf("\nscheme stats: writes=%d eliminated=%d unique=%d compare-reads=%d\n",
		st.Writes, st.DedupWrites, st.UniqueWrites, st.CompareReads)
	fmt.Printf("NVMM media writes: %d (one line stored once despite two writers)\n", sys.DeviceWrites())
	fmt.Printf("energy so far: %.1f nJ\n", sys.Energy())

	// The same workload under the no-dedup baseline writes every line.
	base, err := esd.NewSystem(cfg, esd.SchemeBaseline)
	if err != nil {
		log.Fatal(err)
	}
	base.Write(100, hot)
	base.Write(200, hot)
	base.Write(300, unique)
	fmt.Printf("\nbaseline comparison: media writes=%d energy=%.1f nJ\n",
		base.DeviceWrites(), base.Energy())
}
