// Tail-latency (QoS) study: large-scale services care about P99/P99.9
// latency, not means (§IV-D). This example reproduces the Fig. 15 analysis
// interactively: it replays the paper's eight selected applications under
// the three deduplicating schemes and prints the write-latency tail.
package main

import (
	"fmt"
	"log"

	esd "github.com/esdsim/esd"
)

var apps = []string{"gcc", "leela", "bodytrack", "dedup", "facesim", "fluidanimate", "wrf", "x264"}

var schemes = []string{esd.SchemeSHA1, esd.SchemeDeWrite, esd.SchemeESD}

func main() {
	const (
		seed    = 7
		warmup  = 15000
		measure = 30000
	)
	fmt.Println("Write-latency tails (ns) across the paper's Fig. 15 applications")
	fmt.Printf("%-14s %-11s %8s %8s %8s %8s\n", "app", "scheme", "p50", "p90", "p99", "p99.9")
	for _, app := range apps {
		for _, scheme := range schemes {
			cfg := esd.DefaultConfig()
			cfg.PCM.CapacityBytes = 1 << 30
			sys, err := esd.NewSystem(cfg, scheme)
			if err != nil {
				log.Fatal(err)
			}
			sys.SetWarmup(warmup)
			res, err := sys.RunWorkload(app, seed, warmup+measure)
			if err != nil {
				log.Fatal(err)
			}
			h := &res.WriteHist
			fmt.Printf("%-14s %-11s %8.0f %8.0f %8.0f %8.0f\n", app, scheme,
				h.Percentile(0.5).Nanoseconds(), h.Percentile(0.9).Nanoseconds(),
				h.Percentile(0.99).Nanoseconds(), h.Percentile(0.999).Nanoseconds())
		}
		fmt.Println()
	}
	fmt.Println("ESD's tail stays short because the write path never waits for a")
	fmt.Println("hash unit or a fingerprint fetch from NVMM: its worst case is one")
	fmt.Println("candidate read plus one media write.")
}
