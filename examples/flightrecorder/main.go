// Flight recorder: diagnose a degraded NVM bank from the always-on
// flight recorder alone — no profiler, no event trace, no server.
//
// The config injects a fault into one PCM bank (every media access it
// services takes an extra 2 µs). The workload has no idea; it just sees
// a heavy write-latency tail. The flight recorder holds the per-stage
// latency decomposition of the last N requests, so grouping its records
// by bank turns "some writes are slow" into "bank 5 is slow, and the
// time is in the media stage" — the same procedure README's "Debugging
// a slow request" walks through against a live esdserve via
// /debug/flightrecorder.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"

	esd "github.com/esdsim/esd"
)

func main() {
	cfg := esd.DefaultConfig()
	cfg.PCM.CapacityBytes = 1 << 28
	// Fault injection: bank 5 pays +2 µs on every media read and write
	// (a stuck-at-slow bank, e.g. one wearing out or thermally throttled).
	cfg.PCM.FaultBank = 5
	cfg.PCM.FaultExtraLatency = 2 * esd.Microsecond

	sys, err := esd.NewSystem(cfg, esd.SchemeESD,
		esd.WithMetrics(),
		esd.WithFlightRecorder(4096),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Unique-content writes over a small working set: every write misses
	// the fingerprint index and pays the full media path.
	rng := rand.New(rand.NewSource(42))
	var line esd.Line
	const requests = 4096
	for i := 0; i < requests; i++ {
		rng.Read(line[:])
		sys.Write(uint64(rng.Intn(1<<14)), line)
	}

	recs := sys.FlightRecords()
	fmt.Printf("ran %d writes; flight recorder holds the last %d\n", requests, len(recs))

	// The diagnosis: bucket the recorded media-stage latency by bank. The
	// record's Phys field is the physical line the write landed on — banks
	// interleave by physical address (phys mod banks), and the logical
	// address says nothing about the bank once the allocator has remapped.
	banks := cfg.PCM.Banks
	cnt := make([]int, banks)
	media := make([]float64, banks)
	total := make([]float64, banks)
	for _, r := range recs {
		if r.Kind != "write" {
			continue
		}
		b := int(r.Phys % uint64(banks))
		cnt[b]++
		media[b] += r.StagesNs["media"]
		total[b] += r.LatNs
	}
	fmt.Printf("\n%-6s %8s %14s %14s\n", "bank", "writes", "mean media", "mean total")
	worst, worstMedia := 0, 0.0
	for b := 0; b < banks; b++ {
		if cnt[b] == 0 {
			continue
		}
		m := media[b] / float64(cnt[b])
		fmt.Printf("%-6d %8d %12.0fns %12.0fns\n", b, cnt[b], m, total[b]/float64(cnt[b]))
		if m > worstMedia {
			worst, worstMedia = b, m
		}
	}
	fmt.Printf("\ndiagnosis: bank %d is the outlier (injected fault was bank %d)\n",
		worst, cfg.PCM.FaultBank)
	if worst != cfg.PCM.FaultBank {
		log.Fatal("flightrecorder example: diagnosis missed the injected fault")
	}

	// One slow record in full, as /debug/flightrecorder would serve it:
	// the media stage carries the injected delay, the other stages are
	// unremarkable — the smoking gun for a device-side problem.
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		if r.Kind == "write" && int(r.Phys%uint64(banks)) == worst {
			fmt.Println("\na slow request, as the dump shows it:")
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(r); err != nil {
				log.Fatal(err)
			}
			break
		}
	}
}
