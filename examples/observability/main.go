// Observability: run a mixed workload on the ESD scheme with telemetry
// turned on, then look at the run from three angles — the sampled event
// trace, the Prometheus exposition, and a live scrape of the metrics
// endpoint. This is the programmatic mirror of
//
//	esdsim -scheme esd -app leela -metrics-addr :9090 -trace-out events.jsonl
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"

	esd "github.com/esdsim/esd"
)

func main() {
	cfg := esd.DefaultConfig()
	cfg.PCM.CapacityBytes = 1 << 28

	// Telemetry is opt-in per System: WithEventTrace adds a JSONL event
	// tracer (and implies the metrics registry), WithTraceSampling keeps
	// the hot-path events to 1-in-8.
	var traceBuf bytes.Buffer
	sys, err := esd.NewSystem(cfg, esd.SchemeESD,
		esd.WithEventTrace(&traceBuf),
		esd.WithTraceSampling(8),
	)
	if err != nil {
		log.Fatal(err)
	}

	sys.SetWarmup(2000)
	stream, err := esd.MixStream(1, 12000, "leela", "dedup", "x264")
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(stream)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.CloseTrace(); err != nil {
		log.Fatal(err)
	}
	st := res.Scheme
	fmt.Printf("ran %d requests on %s: %d/%d writes deduplicated\n",
		res.Requests, sys.SchemeName(), st.DedupWrites, st.Writes)

	// 1. The event trace: every rare event (EFIT evictions, counter
	// overflows, run markers) plus a 1-in-8 sample of writes and reads.
	events, err := esd.ReadTraceEvents(&traceBuf)
	if err != nil {
		log.Fatal(err)
	}
	byKind := map[string]int{}
	for _, ev := range events {
		byKind[ev.Kind]++
	}
	fmt.Printf("\nevent trace: %d events\n", len(events))
	for kind, n := range byKind {
		fmt.Printf("  %-12s %d\n", kind, n)
	}
	for _, ev := range events {
		if ev.Kind == "write" {
			fmt.Printf("first sampled write: decision=%s logical=%#x lat=%dps\n",
				ev.Decision, ev.Logical, ev.Lat)
			break
		}
	}

	// 2. The Prometheus exposition, rendered directly without a server.
	var prom strings.Builder
	if err := sys.WriteMetrics(&prom); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nselected metrics:")
	for _, line := range strings.Split(prom.String(), "\n") {
		if strings.HasPrefix(line, "esd_writes_total") ||
			strings.HasPrefix(line, "esd_dedup_writes_total") ||
			strings.HasPrefix(line, "esd_write_decision_total") ||
			strings.HasPrefix(line, "esd_device_writes_total") {
			fmt.Println("  " + line)
		}
	}

	// 3. The live endpoint: the same registry served over HTTP, as a
	// Prometheus scraper (or a human with curl) would see it.
	srv, err := sys.ServeMetrics("127.0.0.1:0", false)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlive scrape of %s/metrics: %d bytes, status %s\n",
		srv.URL(), len(body), resp.Status)
}
