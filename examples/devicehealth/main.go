// Device health: diagnose a hot-line workload from the always-on health
// accounting alone — no profiler, no trace, no exact wear-map walk.
//
// A background workload spreads writes evenly across a sharded system
// while one misbehaving writer hammers a single address with changing
// content. Nothing in the throughput numbers gives it away; the device
// health snapshot does: the wear skew (max/mean) blows past the 10x
// hot-line threshold, the per-bank heatmap lights up exactly one cell,
// and the region rows name the address neighbourhood to go look at.
//
// This is the same data /debug/device serves and esdtop renders live;
// here it is read through the public API while the workers are still
// running (every accessor below is barrier-free).
package main

import (
	"fmt"
	"log"

	esd "github.com/esdsim/esd"
)

const (
	shards     = 4
	background = 40000 // evenly spread writes
	hammer     = 4000  // writes to the one hot address
	hotAddr    = 12345
	space      = 8192 // background address space (lines)
)

func main() {
	sys, err := esd.NewShardedSystem(esd.DefaultConfig(), esd.SchemeESD,
		esd.WithShards(shards))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Background traffic: unique content, even spread — a healthy workload.
	var line esd.Line
	for i := 0; i < background; i++ {
		line[0], line[1], line[2] = byte(i), byte(i>>8), byte(i>>16)
		if _, err := sys.Write(uint64(i%space), line); err != nil {
			log.Fatal(err)
		}
	}
	// The misbehaving writer: same address, always-fresh content, so every
	// write really rewrites the media line (dedup cannot absorb it).
	for i := 0; i < hammer; i++ {
		line[0], line[1], line[3] = byte(i), byte(i>>8), 0xAA
		if _, err := sys.Write(hotAddr, line); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Flush(); err != nil {
		log.Fatal(err)
	}

	// Everything below reads the barrier-free health surface — the same
	// calls work mid-run, while the workers are busy.
	h := sys.DeviceHealth()
	fmt.Printf("device: %d media writes on %d lines   mean wear %.2f\n",
		h.Writes, h.LinesTouched, h.MeanWear())
	fmt.Printf("wear:   max=%d p99=%d skew=%.1fx", h.MaxWear, h.P99Wear, h.WearSkew())
	if h.WearSkew() > 10 {
		fmt.Printf("   <-- hot line: one address is eating the endurance budget")
	}
	fmt.Println()

	// The per-bank heatmap pinpoints where. A couple of banks' max wear
	// towers over the neighbours — the hot data line and its metadata line
	// (counters/AMT), which the scheme rewrites alongside it.
	fmt.Println("\nper-bank max wear (the esdtop heatmap, as numbers):")
	var hot esd.BankHealth
	hotShard := -1
	for sh, snap := range sys.DeviceHealths() {
		fmt.Printf("  shard %d:", sh)
		for _, b := range snap.Banks {
			fmt.Printf(" %4d", b.MaxWear)
			if b.MaxWear > hot.MaxWear {
				hot, hotShard = b, sh
			}
		}
		fmt.Println()
	}
	fmt.Printf("hottest: shard %d bank %d (max wear %d, bank mean %.2f)\n",
		hotShard, hot.Bank, hot.MaxWear, hot.MeanWear())

	// The region rows narrow it to an address neighbourhood.
	for _, r := range sys.DeviceHealths()[hotShard].Regions {
		if r.MaxWear == hot.MaxWear {
			fmt.Printf("region:  shard-local lines [%d, %d) hold the hot line\n",
				r.FirstLine, r.FirstLine+r.Lines)
		}
	}

	// And the wear histogram shows the shape: a big healthy low-wear mass
	// plus a tiny high-wear tail — the hammered line.
	fmt.Println("\nwear histogram (writes-per-line buckets):")
	for _, b := range h.WearHist {
		fmt.Printf("  [%6d, %6d]  %7d lines\n", b.Lo, b.Hi, b.Lines)
	}
}
