// Security example: the threat model of encrypted NVMM (§I, §III-E) —
// a stolen DIMM or a bus attacker must learn nothing, and replayed or
// modified counters must be detected. This example demonstrates all three
// properties on the simulator's actual datapath:
//
//  1. ciphertext stored in the device shares nothing with the plaintext
//     (and identical plaintext at two addresses encrypts differently, the
//     reason dedup must run before encryption);
//  2. ESD's deduplication never weakens this: the single stored copy is
//     still ciphertext under the physical line's counter;
//  3. the Merkle counter tree catches counter tampering/replay.
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/crypto"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/integrity"
	"github.com/esdsim/esd/internal/sim"
)

func main() {
	fmt.Println("--- 1. Counter-mode encryption diffusion ---")
	engine := crypto.NewEngineFromSeed(2026)
	var secret ecc.Line
	copy(secret[:], "TOP-SECRET payload that must never appear on the memory bus")

	p1, p2 := secret, secret
	ct1, _ := engine.Encrypt(100, &p1)
	ct2, _ := engine.Encrypt(200, &p2)

	fmt.Printf("plaintext prefix:        %q\n", secret[:24])
	fmt.Printf("ciphertext @100 prefix:  %x\n", ct1[:24])
	fmt.Printf("ciphertext @200 prefix:  %x\n", ct2[:24])
	fmt.Printf("ciphertexts share bytes with plaintext: %v\n",
		bytes.Contains(ct1[:], secret[:16]))
	fmt.Printf("same plaintext, different addresses, equal ciphertext: %v\n", ct1 == ct2)
	fmt.Println("=> deduplication AFTER encryption is impossible (DaE fails);")
	fmt.Println("   ESD deduplicates plaintext inside the trusted chip, then encrypts.")

	fmt.Println("\n--- 2. Successive writes never reuse a pad ---")
	p3 := secret
	ct1b, _ := engine.Encrypt(100, &p3)
	fmt.Printf("rewrite of the same data at the same address changes ciphertext: %v\n", ct1b != ct1)

	fmt.Println("\n--- 3. Counter integrity (Merkle counter tree) ---")
	lines := uint64(config.Default().PCM.Lines())
	tree := integrity.New(integrity.DefaultConfig(lines / 4))
	fmt.Printf("tree depth for %d lines: %d levels, root on chip\n", lines/4, tree.Depth())

	// Honest operation.
	tree.Update(4242, 1, 0)
	tree.DropCache() // power cycle: all trust must be re-established
	if _, err := tree.Verify(4242, sim.Microsecond); err != nil {
		log.Fatalf("honest verify failed: %v", err)
	}
	fmt.Println("honest counter path verifies after a power cycle: ok")

	// Replay attack: an attacker rolls the stored counter back to force
	// pad reuse. The digest chain catches it.
	tree.DropCache()
	tree.TamperCounter(4242, 0)
	if _, err := tree.Verify(4242, 2*sim.Microsecond); err != nil {
		fmt.Printf("counter rollback detected: %v\n", err)
	} else {
		log.Fatal("ATTACK MISSED — replay went undetected")
	}
	fmt.Printf("tree stats: %d verifies, %d node fetches, %d tampers caught\n",
		tree.Stats.Verifies, tree.Stats.NodeFetches, tree.Stats.TamperCaught)
	fmt.Println("\nRun the overhead study: go run ./cmd/figures -fig ablation-integrity")
}
