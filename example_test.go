package esd_test

import (
	"fmt"
	"log"

	esd "github.com/esdsim/esd"
)

// The simplest use: build a system, write identical content to two
// addresses, and observe deduplication.
func Example() {
	sys, err := esd.NewSystem(esd.DefaultConfig(), esd.SchemeESD)
	if err != nil {
		log.Fatal(err)
	}
	line := esd.Line{1, 2, 3}
	first := sys.Write(100, line)
	second := sys.Write(200, line)
	fmt.Println(first.Deduplicated, second.Deduplicated)
	fmt.Println(second.PhysAddr == first.PhysAddr)
	// Output:
	// false true
	// true
}

// Reads always return the plaintext that was last written, whatever the
// scheme did underneath.
func ExampleSystem_Read() {
	sys, err := esd.NewSystem(esd.DefaultConfig(), esd.SchemeESD)
	if err != nil {
		log.Fatal(err)
	}
	var line esd.Line
	copy(line[:], "hello, nvmm")
	sys.Write(7, line)
	got, outcome := sys.Read(7)
	fmt.Println(outcome.Hit, string(got[:11]))
	// Output:
	// true hello, nvmm
}

// Trace replay with a built-in application profile and the read-back
// oracle enabled.
func ExampleSystem_RunWorkload() {
	sys, err := esd.NewSystem(esd.DefaultConfig(), esd.SchemeESD)
	if err != nil {
		log.Fatal(err)
	}
	sys.SetVerifyReads(true)
	res, err := sys.RunWorkload("deepsjeng", 1, 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Requests == 2000, res.Scheme.DedupRate() > 0.9)
	// Output:
	// true true
}

// A power failure (§III-E) loses every volatile structure but no data.
func ExampleSystem_Crash() {
	sys, err := esd.NewSystem(esd.DefaultConfig(), esd.SchemeESD)
	if err != nil {
		log.Fatal(err)
	}
	line := esd.Line{42}
	sys.Write(1, line)
	sys.Crash()
	got, outcome := sys.Read(1)
	fmt.Println(outcome.Hit, got == line)
	// Output:
	// true true
}
