package esd

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/esdsim/esd/internal/check"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/xrand"
	"github.com/esdsim/esd/internal/xrand/quicktest"
)

// TestCrashLosesNoData is the §III-E consistency property: after a power
// failure that wipes every volatile structure, all previously written data
// remains readable under every scheme.
func TestCrashLosesNoData(t *testing.T) {
	for _, scheme := range append(SchemeNames(), SchemeESDCaram) {
		sys, err := NewSystem(smallConfig(), scheme)
		if err != nil {
			t.Fatal(err)
		}
		r := xrand.New(77)
		written := map[uint64]Line{}
		contents := make([]Line, 8)
		for i := range contents {
			contents[i].SetWord(0, r.Uint64())
		}
		for i := 0; i < 500; i++ {
			addr := r.Uint64n(64)
			line := contents[r.Intn(len(contents))]
			sys.Write(addr, line)
			written[addr] = line
		}

		sys.Crash()

		for addr, want := range written {
			got, ro := sys.Read(addr)
			if !ro.Hit || got != want {
				t.Fatalf("%s: line %d lost or corrupted after crash", scheme, addr)
			}
		}
	}
}

// TestCrashThenDedupContinues checks that ESD keeps working after losing
// the EFIT: dedup restarts cold but correctness and eventual dedup return.
func TestCrashThenDedupContinues(t *testing.T) {
	sys, err := NewSystem(smallConfig(), SchemeESD)
	if err != nil {
		t.Fatal(err)
	}
	hot := Line{42}
	sys.Write(1, hot)
	if out := sys.Write(2, hot); !out.Deduplicated {
		t.Fatal("no dedup before crash")
	}

	sys.Crash()

	// First post-crash duplicate write misses the (empty) EFIT and is
	// written as unique — selective dedup by design, no recovery pass.
	out := sys.Write(3, hot)
	if out.Deduplicated {
		t.Fatal("dedup hit immediately after EFIT loss")
	}
	// The fingerprint is back in the EFIT now; dedup resumes.
	if out := sys.Write(4, hot); !out.Deduplicated {
		t.Fatal("dedup did not resume after crash")
	}
	for _, addr := range []uint64{1, 2, 3, 4} {
		if got, ro := sys.Read(addr); !ro.Hit || got != hot {
			t.Fatalf("line %d wrong after crash/recovery", addr)
		}
	}
}

// TestCrashMidWorkloadProperty runs random write/crash/read interleavings
// under every scheme and verifies the read-back oracle.
func TestCrashMidWorkloadProperty(t *testing.T) {
	for _, scheme := range append(SchemeNames(), SchemeESDCaram) {
		scheme := scheme
		check := func(seed uint64) bool {
			sys, err := NewSystem(smallConfig(), scheme)
			if err != nil {
				return false
			}
			r := xrand.New(seed)
			oracle := map[uint64]Line{}
			var pool [4]Line
			for i := range pool {
				pool[i].SetWord(0, r.Uint64())
			}
			for step := 0; step < 300; step++ {
				switch {
				case r.Bool(0.02):
					sys.Crash()
				case r.Bool(0.5):
					addr := r.Uint64n(32)
					line := pool[r.Intn(len(pool))]
					sys.Write(addr, line)
					oracle[addr] = line
				default:
					addr := r.Uint64n(32)
					got, ro := sys.Read(addr)
					want, ok := oracle[addr]
					if ok && (!ro.Hit || got != want) {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(check, quicktest.Config(t, 15)); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
	}
}

// TestCrashAtStepPoints is the crash-point table: for every scheme and
// every architecturally meaningful intermediate point in the write path —
// after the AMT mapping is installed but before refcounts are adjusted,
// after the encryption counter is bumped but before the ciphertext
// reaches the media queue, and (on the hybrid media tier) after the
// write-ahead log persist but before the DRAM install, and after the DRAM
// install but before the write returns — a power failure is injected
// exactly there (via memctrl.Env.StepHook), the in-flight write completes
// under eADR semantics (§III-E), and the recovered state must both read
// back exactly and satisfy every checker invariant.
func TestCrashAtStepPoints(t *testing.T) {
	points := []memctrl.StepPoint{memctrl.StepAMTUpdated, memctrl.StepCounterBumped}
	hybridPoints := []memctrl.StepPoint{memctrl.StepWALPersisted, memctrl.StepDRAMInstalled}
	for _, scheme := range append(SchemeNames(), SchemeESDCaram) {
		schemePoints := points
		if scheme == SchemeESDCaram {
			schemePoints = append(append([]memctrl.StepPoint(nil), points...), hybridPoints...)
		}
		for _, point := range schemePoints {
			if scheme == SchemeBaseline && point == memctrl.StepAMTUpdated {
				continue // the baseline has no AMT
			}
			t.Run(fmt.Sprintf("%s/%v", scheme, point), func(t *testing.T) {
				for trigger := 1; trigger <= 5; trigger++ {
					sys, err := NewSystem(smallConfig(), scheme)
					if err != nil {
						t.Fatal(err)
					}
					r := xrand.New(900 + uint64(trigger))
					var pool [4]Line
					for i := range pool {
						pool[i].SetWord(0, r.Uint64())
					}

					// Arm the crash at the trigger-th occurrence of the
					// point. The hook runs inside the scheme's Write; the
					// write it interrupts still completes (eADR drains
					// in-flight operations), so the oracle keeps its line.
					fired := false
					remaining := trigger
					sys.env.StepHook = func(p memctrl.StepPoint) {
						if fired || p != point {
							return
						}
						remaining--
						if remaining == 0 {
							fired = true
							sys.Crash()
						}
					}

					oracle := map[uint64]Line{}
					write := func(n int) {
						for i := 0; i < n; i++ {
							addr := r.Uint64n(48)
							line := pool[r.Intn(len(pool))]
							if r.Bool(0.3) {
								line.SetWord(1, r.Uint64()) // unique content
							}
							sys.Write(addr, line)
							oracle[addr] = line
						}
					}
					write(200)
					if !fired {
						t.Fatalf("trigger %d: %v never fired in 200 writes", trigger, point)
					}
					sys.env.StepHook = nil

					verify := func(stage string) {
						for addr, want := range oracle {
							got, ro := sys.Read(addr)
							if !ro.Hit || got != want {
								t.Fatalf("trigger %d (%s): line %d lost or corrupted", trigger, stage, addr)
							}
						}
						bad := check.AuditScheme(sys.scheme)
						if h := sys.env.Hybrid(); h != nil {
							bad = append(bad, h.Audit()...)
						}
						if len(bad) != 0 {
							t.Fatalf("trigger %d (%s): invariants violated after crash: %v", trigger, stage, bad)
						}
					}
					verify("post-crash")

					// The system must keep absorbing writes correctly after
					// the mid-write crash, not just preserve old data.
					write(100)
					verify("post-recovery")
				}
			})
		}
	}
}
