package esd

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.PCM.CapacityBytes = 1 << 28
	return cfg
}

func TestNewSystemValidatesConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PCM.Banks = 0
	if _, err := NewSystem(cfg, SchemeESD); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewSystem(DefaultConfig(), "nope"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestSystemWriteReadRoundTrip(t *testing.T) {
	for _, scheme := range SchemeNames() {
		sys, err := NewSystem(smallConfig(), scheme)
		if err != nil {
			t.Fatal(err)
		}
		if sys.SchemeName() != scheme {
			t.Errorf("SchemeName = %q, want %q", sys.SchemeName(), scheme)
		}
		line := Line{1, 2, 3, 4}
		out := sys.Write(100, line)
		if out.Done <= 0 {
			t.Errorf("%s: non-positive completion", scheme)
		}
		got, ro := sys.Read(100)
		if !ro.Hit || got != line {
			t.Errorf("%s: read-back failed", scheme)
		}
		if _, ro := sys.Read(999); ro.Hit {
			t.Errorf("%s: cold read hit", scheme)
		}
	}
}

func TestSystemDeduplicates(t *testing.T) {
	sys, err := NewSystem(smallConfig(), SchemeESD)
	if err != nil {
		t.Fatal(err)
	}
	line := Line{7}
	sys.Write(1, line)
	out := sys.Write(2, line)
	if !out.Deduplicated {
		t.Fatal("duplicate content not eliminated")
	}
	if sys.Stats().DedupWrites != 1 {
		t.Fatalf("stats: %+v", sys.Stats())
	}
	if sys.Energy() <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestSystemClockAdvances(t *testing.T) {
	sys, _ := NewSystem(smallConfig(), SchemeBaseline)
	t0 := sys.Now()
	sys.Write(1, Line{})
	if sys.Now() <= t0 {
		t.Fatal("clock did not advance")
	}
	// WriteAt moves the clock forward to the given time.
	sys.WriteAt(2, Line{}, sys.Now()+Millisecond)
	if sys.Now() < Millisecond {
		t.Fatal("WriteAt did not advance the clock")
	}
}

func TestSystemRunWorkloadWithVerification(t *testing.T) {
	sys, err := NewSystem(smallConfig(), SchemeESD)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetVerifyReads(true)
	sys.SetWarmup(1000)
	res, err := sys.RunWorkload("gcc", 7, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 4000 {
		t.Fatalf("measured %d requests, want 4000 after warm-up", res.Requests)
	}
	if res.Scheme.DedupWrites == 0 {
		t.Fatal("no deduplication on gcc")
	}
	if sys.Wear().TotalWrites == 0 || sys.DeviceWrites() == 0 {
		t.Fatal("device activity not visible")
	}
	if sys.MetadataNVMM() <= 0 {
		t.Fatal("no NVMM metadata reported")
	}
}

func TestWorkloadStreamUnknownApp(t *testing.T) {
	if _, err := WorkloadStream("nosuch", 1, 10); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestProfilesExposed(t *testing.T) {
	if len(Profiles()) != 20 {
		t.Fatalf("%d profiles", len(Profiles()))
	}
	if _, ok := ProfileByName("lbm"); !ok {
		t.Fatal("lbm missing")
	}
}

func TestExperimentRegistryExposed(t *testing.T) {
	names := Experiments()
	if len(names) < 14 {
		t.Fatalf("only %d experiments", len(names))
	}
	opts := DefaultExperimentOptions()
	opts.Requests = 3000
	opts.Warmup = 1000
	opts.Apps = []string{"leela"}
	tb, err := RunExperiment("fig1", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "leela") {
		t.Fatal("fig1 output missing app")
	}
}

func TestMixStreamFacade(t *testing.T) {
	sys, err := NewSystem(smallConfig(), SchemeESD)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetVerifyReads(true)
	stream, err := MixStream(3, 4000, "lbm", "leela")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Scheme.DedupWrites == 0 {
		t.Fatalf("mix run: %+v", res.Scheme)
	}
	if _, err := MixStream(1, 10, "nosuch"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestBCDSchemeViaFacade(t *testing.T) {
	sys, err := NewSystem(smallConfig(), SchemeBCD)
	if err != nil {
		t.Fatal(err)
	}
	base := Line{1, 2, 3}
	sys.Write(1, base)
	variant := base
	variant.SetWord(7, 99) // near-duplicate
	out := sys.Write(2, variant)
	if !out.Deduplicated {
		t.Fatal("BCD did not compress a near-duplicate")
	}
	got, ro := sys.Read(2)
	if !ro.Hit || got != variant {
		t.Fatal("delta reconstruction through facade failed")
	}
}

// TestDeviceHealthPublicAPI covers the device-health surface end to end:
// the single-System snapshot, the sharded barrier-free accessors, the
// merge helper, and the /debug/device endpoint on ServeMetrics.
func TestDeviceHealthPublicAPI(t *testing.T) {
	sys, err := NewSystem(smallConfig(), SchemeESD, WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		sys.Write(uint64(i%8), Line{byte(i)})
	}
	h := sys.DeviceHealth()
	if h.Writes == 0 || h.LinesTouched == 0 || h.MaxWear == 0 {
		t.Fatalf("empty health after 64 writes: %+v", h.HealthSummary)
	}
	if w := sys.Wear(); h.MaxWear != w.MaxWear {
		t.Errorf("health max wear %d != exact %d", h.MaxWear, w.MaxWear)
	}
	if len(h.Banks) == 0 || len(h.WearHist) == 0 {
		t.Errorf("snapshot missing banks/hist: %d/%d", len(h.Banks), len(h.WearHist))
	}

	ss, err := NewShardedSystem(smallConfig(), SchemeESD, WithShards(2), WithShardMetrics())
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	for i := 0; i < 64; i++ {
		if _, err := ss.Write(uint64(i), Line{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ss.Flush(); err != nil {
		t.Fatal(err)
	}
	snaps := ss.DeviceHealths()
	if len(snaps) != 2 {
		t.Fatalf("DeviceHealths len = %d, want 2", len(snaps))
	}
	merged := ss.DeviceHealth()
	if again := MergeDeviceHealth(snaps); again.Writes != merged.Writes {
		t.Errorf("MergeDeviceHealth writes %d != DeviceHealth %d", again.Writes, merged.Writes)
	}
	if st := ss.LiveStats(); st.Writes != 64 {
		t.Errorf("LiveStats writes = %d, want 64", st.Writes)
	}

	srv, err := ss.ServeMetrics("127.0.0.1:0", false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(srv.URL() + "/debug/device")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/device = %d", resp.StatusCode)
	}
	var doc struct {
		Shards      int    `json:"shards"`
		MediaWrites uint64 `json:"media_writes"`
		Banks       []any  `json:"banks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Shards != 2 || doc.MediaWrites == 0 || len(doc.Banks) == 0 {
		t.Errorf("device doc = %+v", doc)
	}
}
