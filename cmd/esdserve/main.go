// Command esdserve runs the sharded ESD engine as a network service: an
// HTTP/JSON API (and optionally the raw-TCP binary protocol) over N
// concurrent shards, with per-request timeouts, load shedding on full
// shard queues, and graceful drain on SIGINT/SIGTERM.
//
// Examples:
//
//	esdserve -addr :8080 -scheme esd -shards 4
//	esdserve -addr :8080 -tcp-addr :8081 -metrics -pprof
//	esdload -addr http://localhost:8080 -n 100000 -workers 8
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/server"
	"github.com/esdsim/esd/internal/shard"
	"github.com/esdsim/esd/internal/sim"
)

func main() {
	if err := cliMain(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "esdserve:", err)
		os.Exit(1)
	}
}

// cliMain is the testable body: parse flags, boot the engine and server,
// then block until a signal (or the ready hook's returned channel closes,
// in tests) and drain. ready, when non-nil, receives the running server
// and returns a channel whose close triggers shutdown.
func cliMain(args []string, stdout io.Writer, ready func(*server.Server) <-chan struct{}) error {
	fs := flag.NewFlagSet("esdserve", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		addr      = fs.String("addr", ":8080", "HTTP listen address")
		tcpAddr   = fs.String("tcp-addr", "", "also serve the binary protocol on this address")
		scheme    = fs.String("scheme", "esd", "scheme: baseline, dedup-sha1, dewrite, esd, bcd, esd+caram")
		shards    = fs.Int("shards", 4, "number of independent shards")
		queue     = fs.Int("queue-depth", 128, "per-shard request queue bound")
		batch     = fs.Int("batch", 32, "max requests a shard drains per wakeup")
		coalesce  = fs.Bool("coalesce", false, "coalesce same-address writes within a batch")
		timeout   = fs.Duration("timeout", 2*time.Second, "per-request service budget")
		drain     = fs.Duration("drain", 10*time.Second, "graceful-shutdown budget before force-closing connections")
		metrics   = fs.Bool("metrics", false, "expose per-shard metrics at /metrics")
		pprofFlag = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (needs -metrics)")
		gapNs     = fs.Int("issue-gap-ns", 10, "simulated time between requests on one shard, in ns")
		seed      = fs.Uint64("seed", 1, "configuration seed")
		tracing   = fs.Bool("trace", true, "record per-stage latency histograms (served at /statusz)")
		slow      = fs.Duration("slow", 0, "log requests slower than this wall-clock duration (0 disables)")
		flightSz  = fs.Int("flight-size", 0, "per-shard flight-recorder ring size (0 = default 256)")
		legacy    = fs.Bool("legacy-frames", false, "emulate a protocol version-0 binary (reject traced TCP frames); for backward-compat testing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pprofFlag && !*metrics {
		return fmt.Errorf("-pprof needs -metrics")
	}

	cfg := config.Default()
	cfg.Seed = *seed
	eng, err := shard.New(cfg, *scheme, shard.Options{
		Shards:      *shards,
		QueueDepth:  *queue,
		Batch:       *batch,
		Coalesce:    *coalesce,
		IssueGap:    sim.Time(*gapNs) * sim.Nanosecond,
		Metrics:     *metrics,
		Tracing:     *tracing,
		FlightSlots: *flightSz,
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	srv, err := server.New(eng, server.Config{
		Addr:                 *addr,
		TCPAddr:              *tcpAddr,
		RequestTimeout:       *timeout,
		Pprof:                *pprofFlag,
		SlowRequestThreshold: *slow,
		DisableTracedFrames:  *legacy,
	})
	if err != nil {
		return err
	}

	// SIGQUIT (or kill -QUIT) dumps the flight recorder to stderr without
	// stopping the server — the classic "what was it just doing?" probe.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	defer signal.Stop(quit)
	go func() {
		for range quit {
			srv.DumpFlightRecorder(os.Stderr)
		}
	}()
	fmt.Fprintf(stdout, "esdserve: scheme=%s shards=%d http=%s", *scheme, eng.NumShards(), srv.Addr())
	if srv.TCPAddr() != "" {
		fmt.Fprintf(stdout, " tcp=%s", srv.TCPAddr())
	}
	fmt.Fprintln(stdout)

	var stop <-chan struct{}
	if ready != nil {
		stop = ready(srv)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		ch := make(chan struct{})
		go func() { <-sig; close(ch) }()
		stop = ch
	}
	<-stop

	fmt.Fprintln(stdout, "esdserve: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	sum, err := eng.Summary()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "esdserve: drained clean  writes=%d reads=%d dedup=%.1f%% shed=%d\n",
		sum.Scheme.Writes, sum.Scheme.Reads, sum.Scheme.DedupRate()*100, sum.Shed)
	return nil
}
