package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenTextTraces locks down the generator's determinism: for a
// fixed profile and seed, the text-format trace must be byte-identical
// across runs and machines. Regenerate with `go test ./cmd/tracegen
// -update` after an intentional workload-model change.
func TestGoldenTextTraces(t *testing.T) {
	for _, app := range []string{"lbm", "gcc"} {
		t.Run(app, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run([]string{"-app", app, "-n", "40", "-seed", "7", "-format", "text"}, &stdout, &stderr)
			if err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", app+"_n40_seed7.txt")
			if *update {
				if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run `go test ./cmd/tracegen -update` to create goldens)", err)
			}
			if !bytes.Equal(stdout.Bytes(), want) {
				t.Errorf("output diverged from %s:\ngot:\n%s\nwant:\n%s", golden, stdout.Bytes(), want)
			}
		})
	}
}

// TestGoldenStats locks the -stats report (Fig.1/Fig.3 inputs) the same
// way.
func TestGoldenStats(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-stats", "-app", "mcf", "-n", "5000", "-seed", "7"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "mcf_stats_n5000_seed7.txt")
	if *update {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/tracegen -update` to create goldens)", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("stats output diverged from %s:\ngot:\n%s\nwant:\n%s", golden, stdout.Bytes(), want)
	}
}

// TestBinaryRoundTrip generates a binary trace to a file and checks
// -inspect reads back the same record counts.
func TestBinaryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.esdt")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-app", "lbm", "-n", "100", "-o", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "wrote 100 records") {
		t.Fatalf("generate note = %q, want 'wrote 100 records'", stderr.String())
	}
	stdout.Reset()
	if err := run([]string{"-inspect", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "100 records") {
		t.Fatalf("inspect output = %q, want it to mention 100 records", stdout.String())
	}
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"no mode", nil, "need -app, -stats or -inspect"},
		{"unknown app", []string{"-app", "nosuchapp", "-n", "10"}, "unknown application"},
		{"bad format", []string{"-app", "lbm", "-n", "10", "-format", "xml"}, "unknown format"},
		{"negative n", []string{"-app", "lbm", "-n", "-5"}, "-n must be positive"},
		{"cores without cpu", []string{"-app", "lbm", "-n", "10", "-cores", "4"}, "-cores needs -cpu"},
		{"zero cores", []string{"-app", "lbm", "-n", "10", "-cpu", "-cores", "0"}, "-cores must be at least 1"},
		{"unknown flag", []string{"-nope"}, "flag provided but not defined"},
		{"missing inspect file", []string{"-inspect", "/nonexistent/t.esdt"}, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(tc.args, &stdout, &stderr)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}
