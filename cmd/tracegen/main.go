// Command tracegen generates, converts and inspects memory traces in the
// simulator's formats.
//
// Examples:
//
//	tracegen -app lbm -n 100000 -o lbm.esdt        # binary trace
//	tracegen -app gcc -n 1000 -format text -o -    # text trace to stdout
//	tracegen -stats -app mcf -n 50000              # Fig.1/Fig.3-style stats
//	tracegen -inspect lbm.esdt                     # summarize a trace file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	esd "github.com/esdsim/esd"
	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/cpucache"
	"github.com/esdsim/esd/internal/trace"
	"github.com/esdsim/esd/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// run is the testable body of the command: trace data goes to stdout (or
// -o), progress notes to stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		app     = fs.String("app", "", "application profile to generate")
		n       = fs.Int("n", 100000, "number of records")
		seed    = fs.Uint64("seed", 1, "generator seed")
		out     = fs.String("o", "-", "output path ('-' = stdout)")
		format  = fs.String("format", "bin", "output format: bin or text")
		stats   = fs.Bool("stats", false, "print duplicate statistics instead of a trace")
		inspect = fs.String("inspect", "", "summarize an existing binary trace file")
		cpu     = fs.Bool("cpu", false, "derive the trace by driving the Table I L1/L2/L3 hierarchy with -n CPU accesses (gem5-style)")
		cores   = fs.Int("cores", 1, "with -cpu: use this many cores with private L1/L2 over a shared L3")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", *n)
	}
	if *cores < 1 {
		return fmt.Errorf("-cores must be at least 1, got %d", *cores)
	}
	if *cores > 1 && !*cpu {
		return fmt.Errorf("-cores needs -cpu")
	}

	switch {
	case *inspect != "":
		return inspectTrace(stdout, *inspect)
	case *stats:
		return printStats(stdout, *app, *seed, *n)
	case *app != "":
		return generate(stdout, stderr, *app, *seed, *n, *out, *format, *cpu, *cores)
	default:
		return fmt.Errorf("need -app, -stats or -inspect")
	}
}

func generate(stdout, stderr io.Writer, app string, seed uint64, n int, out, format string, cpu bool, cores int) error {
	var stream trace.Stream
	if cpu {
		p, ok := workload.ByName(app)
		if !ok {
			return fmt.Errorf("unknown application %q", app)
		}
		cfg := config.Default()
		if cores > 1 {
			records, st, migrations := cpucache.MultiCoreTrace(p, cores, cfg.L1, cfg.L2, cfg.L3, seed, n)
			fmt.Fprintf(stderr, "cpu mode (%d cores): %d accesses -> %d LLC events (miss rate %.1f%%, %d write-backs, %d migrations)\n",
				cores, st.Accesses, len(records), st.MissRate()*100, st.WriteBacks, migrations)
			stream = trace.NewSliceStream(records)
		} else {
			records, st := cpucache.CPUTrace(p, cfg.L1, cfg.L2, cfg.L3, seed, n)
			fmt.Fprintf(stderr, "cpu mode: %d accesses -> %d LLC events (miss rate %.1f%%, %d write-backs)\n",
				st.Accesses, len(records), st.MissRate()*100, st.WriteBacks)
			stream = trace.NewSliceStream(records)
		}
	} else {
		var err error
		stream, err = esd.WorkloadStream(app, seed, n)
		if err != nil {
			return err
		}
	}
	w := stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "bin":
		tw := trace.NewWriter(w)
		for {
			rec, err := stream.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if err := tw.Write(rec); err != nil {
				return err
			}
		}
		if err := tw.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %d records\n", tw.Count())
	case "text":
		records, err := trace.Collect(stream)
		if err != nil {
			return err
		}
		if err := trace.WriteText(w, records); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q (bin or text)", format)
	}
	return nil
}

func printStats(w io.Writer, app string, seed uint64, n int) error {
	stream, err := esd.WorkloadStream(app, seed, n)
	if err != nil {
		return err
	}
	st, err := workload.MeasureDup(stream)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "app=%s records=%d writes=%d unique=%d\n", app, n, st.Writes, st.UniqueLines)
	fmt.Fprintf(w, "duplicate rate: %.1f%%   zero-line writes: %.1f%%\n",
		st.DupRate*100, 100*float64(st.ZeroWrites)/float64(st.Writes))
	fmt.Fprintln(w, "reference-count classes (unique-share / write-volume-share):")
	for c := workload.Num1; c < workload.NumClasses; c++ {
		fmt.Fprintf(w, "  %-9s %6.2f%% / %6.2f%%\n", c, st.UniqueShare(c)*100, st.WriteShare(c)*100)
	}
	return nil
}

func inspectTrace(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := trace.NewReader(f)
	var reads, writes uint64
	var first, last esd.Record
	n := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if n == 0 {
			first = rec
		}
		last = rec
		n++
		if rec.Op == trace.OpWrite {
			writes++
		} else {
			reads++
		}
	}
	fmt.Fprintf(w, "%s: %d records (%d reads, %d writes)\n", path, n, reads, writes)
	if n > 0 {
		fmt.Fprintf(w, "time span: %v .. %v\n", first.At, last.At)
	}
	return nil
}
