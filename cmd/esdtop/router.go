package main

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"github.com/esdsim/esd/internal/cluster"
)

// Router mode: instead of one node's /statusz, esdtop -router polls a
// cluster router's /statusz (ring + hop latencies) and /statusz/cluster
// (the fleet-aggregated member scrape) and renders the whole fleet on
// one screen — per-member serving rows plus the merged device view.

// fetchRouter pulls both router documents. /statusz is required;
// /statusz/cluster degrades to nil on older routers.
func fetchRouter(client *http.Client, base string) (*cluster.Status, *cluster.ClusterStatus, error) {
	var st cluster.Status
	if err := getJSON(client, base+"/statusz", &st); err != nil {
		return nil, nil, err
	}
	var cs cluster.ClusterStatus
	if err := getJSON(client, base+"/statusz/cluster", &cs); err != nil {
		return &st, nil, nil
	}
	return &st, &cs, nil
}

// renderRouter draws one fleet dashboard frame.
func renderRouter(w io.Writer, st *cluster.Status, cs *cluster.ClusterStatus) {
	tracing := "tracing off"
	if st.Tracing {
		tracing = fmt.Sprintf("tracing on · %d flight records", st.FlightRecords)
	}
	fmt.Fprintf(w, "esd cluster · epoch %d · %d nodes (%d healthy) · replication %d · %s · up %s\n",
		st.Epoch, len(st.Nodes), st.Healthy, st.Replication, tracing,
		(time.Duration(st.UptimeS * float64(time.Second))).Round(time.Second))
	fmt.Fprintf(w, "routing     retries=%d failovers=%d hedges=%d read-repairs=%d",
		st.Retries, st.Failovers, st.Hedges, st.ReadRepairs)
	if st.Resharding {
		fmt.Fprint(w, "  ⟳ RESHARDING")
	}
	fmt.Fprintln(w)

	// Per-hop latency section, the router-side sibling of a node's stages.
	if len(st.Hops) > 0 {
		names := make([]string, 0, len(st.Hops))
		for name := range st.Hops {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "hops (p50/p99 ns)\n")
		for i, name := range names {
			hop := st.Hops[name]
			fmt.Fprintf(w, "  %-11s %7.0f/%-9.0f", name, hop.P50Ns, hop.P99Ns)
			if i%3 == 2 || i == len(names)-1 {
				fmt.Fprintln(w)
			}
		}
	}

	if cs == nil {
		fmt.Fprintf(w, "fleet       (no /statusz/cluster endpoint)\n")
		return
	}

	fmt.Fprintf(w, "fleet       %d/%d members reachable · %d shards · %8.0f wr/s %8.0f rd/s · slow=%d shed=%d\n",
		cs.Reachable, len(cs.Members), cs.Shards, cs.WritesPerS, cs.ReadsPerS, cs.SlowRequests, cs.Shed)

	// Member table: the router's health view next to each member's own
	// serving counters.
	fmt.Fprintf(w, "members     %-12s %-9s %6s %9s %9s %6s %6s\n",
		"NAME", "STATE", "SHARDS", "WR/S", "RD/S", "SLOW", "SHED")
	for _, m := range cs.Members {
		state := "up"
		if !m.Healthy {
			state = "DOWN"
		}
		if !m.Reachable {
			fmt.Fprintf(w, "            %-12s %-9s %s\n", m.Name, state+"?", m.Error)
			continue
		}
		ms := m.Status
		var wps, rps float64
		if ms.Rates != nil {
			wps, rps = ms.Rates.WritesPerS, ms.Rates.ReadsPerS
		}
		fmt.Fprintf(w, "            %-12s %-9s %6d %9.0f %9.0f %6d %6d\n",
			m.Name, state, ms.Shards, wps, rps, ms.SlowRequests, ms.Shed)
	}

	if cs.Device == nil {
		return
	}
	d := cs.Device
	fmt.Fprintf(w, "dedup       hit %5.1f%%  saved %s   (fleet-merged)\n", d.DedupHitRate*100, bytesHuman(d.BytesSaved))
	hot := ""
	if d.WearSkew > 10 {
		hot = "  ⚠ HOT LINE (skew >10x)"
	}
	fmt.Fprintf(w, "wear        max %d  p99 %d  mean %.2f  skew %.1fx%s\n",
		d.MaxWear, d.P99Wear, d.MeanWear, d.WearSkew, hot)
	fmt.Fprintf(w, "energy      read %.2f uJ · write %.2f uJ   media %d wr / %d rd\n",
		d.EnergyReadNJ/1000, d.EnergyWriteNJ/1000, d.MediaWrites, d.MediaReads)

	// Fleet wear histogram as a sparkline: merged buckets across every
	// member's shards.
	if len(cs.WearHist) > 0 {
		var maxCount uint64
		for _, b := range cs.WearHist {
			if b.Lines > maxCount {
				maxCount = b.Lines
			}
		}
		var spark strings.Builder
		for _, b := range cs.WearHist {
			spark.WriteRune(heatCell(b.Lines, maxCount))
		}
		fmt.Fprintf(w, "wear hist   %s  (%d buckets, peak %d lines)\n", spark.String(), len(cs.WearHist), maxCount)
	}
}
