package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/esdsim/esd/internal/cluster"
	"github.com/esdsim/esd/internal/nvm"
	"github.com/esdsim/esd/internal/server"
)

// cannedRouter serves fixed /statusz and /statusz/cluster documents: a
// three-member fleet with one unreachable node and a merged device view.
func cannedRouter(t *testing.T) *httptest.Server {
	t.Helper()
	st := cluster.Status{
		Epoch:       3,
		Replication: 2,
		Healthy:     2,
		Nodes: []cluster.NodeStatus{
			{Name: "node0", Healthy: true}, {Name: "node1", Healthy: true}, {Name: "node2"},
		},
		Retries:       4,
		Failovers:     1,
		Hedges:        12,
		UptimeS:       300,
		Tracing:       true,
		FlightRecords: 812,
		Hops: map[string]server.StageStatus{
			"route":   {Count: 100, P50Ns: 250000, P99Ns: 900000},
			"attempt": {Count: 120, P50Ns: 200000, P99Ns: 800000},
		},
	}
	memberOK := server.StatuszResponse{
		Shards: 4, Ready: true,
		Rates:        &server.RateStatus{WritesPerS: 1200, ReadsPerS: 300},
		SlowRequests: 2,
	}
	cs := cluster.ClusterStatus{
		Members: []cluster.MemberStatus{
			{Name: "node0", Healthy: true, Reachable: true, Status: &memberOK},
			{Name: "node1", Healthy: true, Reachable: true, Status: &memberOK},
			{Name: "node2", Healthy: false, Error: "connection refused"},
		},
		Reachable: 2, Shards: 8,
		SlowRequests: 4, WritesPerS: 2400, ReadsPerS: 600,
		Device: &server.DeviceStatus{
			MediaWrites: 10000, MediaReads: 2000,
			MaxWear: 40, P99Wear: 2, MeanWear: 1.2, WearSkew: 33.3,
			EnergyReadNJ: 1230, EnergyWriteNJ: 4560,
			DedupHitRate: 0.25, BytesSaved: 128000,
		},
		WearHist: []nvm.WearBucket{{Lo: 0, Hi: 1, Lines: 900}, {Lo: 2, Hi: 3, Lines: 10}},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("/statusz/cluster", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(cs)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestRouterOnceRendersFleet runs the full -router -once CLI path
// against a canned router and checks every fleet section appears.
func TestRouterOnceRendersFleet(t *testing.T) {
	srv := cannedRouter(t)
	var buf bytes.Buffer
	if err := cliMain([]string{"-router", "-once", "-addr", srv.URL}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"epoch 3", "3 nodes (2 healthy)", "replication 2",
		"tracing on · 812 flight records",
		"retries=4 failovers=1 hedges=12",
		"hops (p50/p99 ns)", "route", "attempt",
		"2/3 members reachable", "8 shards",
		"node0", "node2", "connection refused",
		"hit  25.0%", "skew 33.3x", "⚠ HOT LINE",
		"wear hist",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet dashboard missing %q:\n%s", want, out)
		}
	}
}

// Without /statusz/cluster (older router) the fleet section degrades
// but the frame still renders.
func TestRouterOnceDegradesWithoutClusterEndpoint(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(cluster.Status{Epoch: 1, Healthy: 1,
			Nodes: []cluster.NodeStatus{{Name: "n0", Healthy: true}}})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	var buf bytes.Buffer
	if err := cliMain([]string{"-router", "-once", "-addr", srv.URL}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no /statusz/cluster endpoint") {
		t.Errorf("missing degradation notice:\n%s", buf.String())
	}
}
