package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/esdsim/esd/internal/server"
)

// canned builds an httptest server serving fixed /statusz and
// /debug/device documents shaped like a hot-line workload: one bank with
// 40x the wear of its neighbours.
func canned(t *testing.T) *httptest.Server {
	t.Helper()
	st := server.StatuszResponse{
		Scheme:      "esd",
		Shards:      2,
		Ready:       true,
		UptimeS:     63,
		QueueDepths: []int{3, 0},
		QueueCap:    128,
		Rates:       &server.RateStatus{WindowS: 15, WritesPerS: 1200, ReadsPerS: 300},
		Stages: map[string]server.StageStatus{
			"efit":  {Count: 10, P50Ns: 420, P99Ns: 980},
			"media": {Count: 10, P50Ns: 60000, P99Ns: 120000},
		},
	}
	dev := server.DeviceResponse{
		Scheme:      "esd",
		Shards:      2,
		MediaWrites: 5000,
		Wear:        server.WearStatus{Max: 40, P99: 2, Mean: 1.2, Skew: 33.3},
		Energy:      server.EnergyStatus{ReadNJ: 1230, WriteNJ: 4560},
		Dedup:       server.DedupStatus{Writes: 6000, Reads: 1000, DedupWrites: 1000, HitRate: 0.1667, BytesSaved: 64000},
		Banks: []server.BankRow{
			{Shard: 0, Bank: 0, MaxWear: 1}, {Shard: 0, Bank: 1, MaxWear: 40},
			{Shard: 1, Bank: 0, MaxWear: 1}, {Shard: 1, Bank: 1, MaxWear: 1},
		},
		Hybrid: &server.HybridStatus{
			DRAMHits: 900, DRAMMisses: 100, HitRate: 0.9,
			Promotions: 50, Demotions: 20, Writebacks: 8,
			WALAppends: 700, AbsorbedWrites: 700,
			CapacityLines: 1024, ResidentLines: 30, DirtyLines: 5,
		},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("/debug/device", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(dev)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestOnceRendersDashboard runs the full CLI path (-once) against a
// canned server and checks every dashboard section appears — including
// the hot-line warning and the single bright heatmap cell that diagnose
// a hammered address.
func TestOnceRendersDashboard(t *testing.T) {
	srv := canned(t)
	var buf bytes.Buffer
	if err := cliMain([]string{"-once", "-addr", srv.URL}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"scheme=esd", "2 shards", "ready",
		"1200 wr/s", "server 15s window",
		"efit", "420/980",
		"hit  16.7%", "saved 62.5 KiB",
		"max 40", "skew 33.3x", "⚠ HOT LINE",
		"wear heatmap",
		"shard 0   ▁█",
		"shard 1   ▁▁",
		"hybrid      dram hit  90.0%", "promo 50 / demo 20 (wb 8)", "resident 30/1024 (5 dirty)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[2J") {
		t.Error("-once must not clear the screen")
	}
}

// TestClientSideRates checks the frame-to-frame delta path preferred
// over server rates once two samples exist.
func TestClientSideRates(t *testing.T) {
	t0 := time.Unix(1700000000, 0)
	prev := newSample(t0, &server.DeviceResponse{Dedup: server.DedupStatus{Writes: 1000, Reads: 100}})
	cur := newSample(t0.Add(2*time.Second), &server.DeviceResponse{Dedup: server.DedupStatus{Writes: 1400, Reads: 200}})
	if v, ok := rate(prev, cur, prev.writes, cur.writes); !ok || v != 200 {
		t.Errorf("write rate = %v/%v, want 200 ops/s", v, ok)
	}
	if v, ok := rate(prev, cur, prev.reads, cur.reads); !ok || v != 50 {
		t.Errorf("read rate = %v/%v, want 50 ops/s", v, ok)
	}
	// First frame and counter resets fall back to server rates.
	if _, ok := rate(sample{}, cur, 0, cur.writes); ok {
		t.Error("rate with no previous frame must not be ok")
	}
	if _, ok := rate(prev, cur, 500, 400); ok {
		t.Error("rate across a counter reset must not be ok")
	}
}

// TestHeatCell pins the glyph scaling: zero stays the coldest block,
// max hits the hottest, and scaling is monotonic.
func TestHeatCell(t *testing.T) {
	if got := heatCell(0, 100); got != '▁' {
		t.Errorf("heatCell(0) = %c", got)
	}
	if got := heatCell(100, 100); got != '█' {
		t.Errorf("heatCell(max) = %c", got)
	}
	if got := heatCell(5, 0); got != '▁' {
		t.Errorf("heatCell with zero max = %c", got)
	}
	last := 0
	for v := uint64(0); v <= 100; v += 10 {
		idx := strings.IndexRune(string(heatBlocks), heatCell(v, 100))
		if idx < last {
			t.Fatalf("heatCell not monotonic at %d", v)
		}
		last = idx
	}
}

// TestRenderWithoutDevice covers older servers lacking /debug/device:
// the dashboard must still render the serving sections.
func TestRenderWithoutDevice(t *testing.T) {
	var buf bytes.Buffer
	render(&buf, &server.StatuszResponse{Scheme: "esd", Shards: 1, Ready: true}, nil, sample{}, sample{at: time.Now()})
	if !strings.Contains(buf.String(), "no /debug/device") {
		t.Errorf("missing fallback note:\n%s", buf.String())
	}
}
