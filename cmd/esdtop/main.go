// Command esdtop is a live terminal dashboard for a serving esd engine:
// it polls /statusz and /debug/device and renders throughput, per-stage
// latencies, queue depths, dedup effectiveness and a per-bank wear
// heatmap — the view to keep open while hunting a hot line or a dedup
// regression.
//
// Examples:
//
//	esdtop -addr http://127.0.0.1:8080
//	esdtop -addr http://127.0.0.1:8080 -interval 500ms
//	esdtop -addr http://127.0.0.1:8080 -once
//
// Router mode points at a cluster router instead of a node and renders
// the fleet: per-member serving rows, router hop latencies, and the
// fleet-merged device health from /statusz/cluster:
//
//	esdtop -router -addr http://127.0.0.1:9001
//
// The wear heatmap draws one row per shard and one cell per bank, scaled
// to the hottest bank's max wear. A healthy, wear-leveled device shows a
// flat row of low blocks; a hammered line lights up a single cell and
// pushes the skew ratio (max/mean) past the 10x hot-line warning.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/esdsim/esd/internal/server"
)

func main() {
	if err := cliMain(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "esdtop:", err)
		os.Exit(1)
	}
}

func cliMain(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("esdtop", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8080", "base URL of the serving esd engine (or router with -router)")
		interval = fs.Duration("interval", time.Second, "refresh interval")
		once     = fs.Bool("once", false, "render one frame and exit (no screen clearing)")
		router   = fs.Bool("router", false, "fleet mode: -addr is a cluster router; render /statusz/cluster")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := strings.TrimRight(*addr, "/")
	client := &http.Client{Timeout: 5 * time.Second}

	if *router {
		for {
			st, cs, err := fetchRouter(client, base)
			if err != nil {
				return err
			}
			if !*once {
				fmt.Fprint(stdout, "\x1b[H\x1b[2J")
			}
			renderRouter(stdout, st, cs)
			if *once {
				return nil
			}
			time.Sleep(*interval)
		}
	}

	var prev sample
	for {
		st, dev, err := fetch(client, base)
		if err != nil {
			return err
		}
		cur := newSample(time.Now(), dev)
		if !*once {
			fmt.Fprint(stdout, "\x1b[H\x1b[2J") // cursor home + clear screen
		}
		render(stdout, st, dev, prev, cur)
		if *once {
			return nil
		}
		prev = cur
		time.Sleep(*interval)
	}
}

// fetch pulls both introspection documents. /statusz is required;
// /debug/device is optional (older servers), leaving dev nil.
func fetch(client *http.Client, base string) (*server.StatuszResponse, *server.DeviceResponse, error) {
	var st server.StatuszResponse
	if err := getJSON(client, base+"/statusz", &st); err != nil {
		return nil, nil, err
	}
	var dev server.DeviceResponse
	if err := getJSON(client, base+"/debug/device", &dev); err != nil {
		return &st, nil, nil
	}
	return &st, &dev, nil
}

func getJSON(client *http.Client, url string, into any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// sample is one poll's cumulative op counters, for client-side rate
// deltas between frames.
type sample struct {
	at            time.Time
	writes, reads uint64
}

func newSample(at time.Time, dev *server.DeviceResponse) sample {
	s := sample{at: at}
	if dev != nil {
		s.writes = dev.Dedup.Writes
		s.reads = dev.Dedup.Reads
	}
	return s
}

// rate computes ops/s between two samples; ok is false without a usable
// previous frame (first poll, counter reset, or no device document).
func rate(prev, cur sample, prevV, curV uint64) (float64, bool) {
	if prev.at.IsZero() || !cur.at.After(prev.at) || curV < prevV {
		return 0, false
	}
	return float64(curV-prevV) / cur.at.Sub(prev.at).Seconds(), true
}

// heatBlocks are the cell glyphs, coldest to hottest.
var heatBlocks = []rune("▁▂▃▄▅▆▇█")

// heatCell maps v on [0, max] to a block glyph.
func heatCell(v, max uint64) rune {
	if max == 0 || v == 0 {
		return heatBlocks[0]
	}
	i := int(uint64(len(heatBlocks)-1) * v / max)
	return heatBlocks[i]
}

// render draws one dashboard frame.
func render(w io.Writer, st *server.StatuszResponse, dev *server.DeviceResponse, prev, cur sample) {
	ready := "ready"
	if !st.Ready {
		ready = "NOT READY"
	}
	fmt.Fprintf(w, "esd · scheme=%s · %d shards · %s · up %s\n",
		st.Scheme, st.Shards, ready, (time.Duration(st.UptimeS * float64(time.Second))).Round(time.Second))

	// Throughput: client-side deltas between frames when available,
	// otherwise the server's rolling-window rates.
	wps, wok := rate(prev, cur, prev.writes, cur.writes)
	rps, rok := rate(prev, cur, prev.reads, cur.reads)
	src := "client delta"
	if (!wok || !rok) && st.Rates != nil {
		wps, rps = st.Rates.WritesPerS, st.Rates.ReadsPerS
		src = fmt.Sprintf("server %gs window", st.Rates.WindowS)
	}
	shedPerS := 0.0
	if st.Rates != nil {
		shedPerS = st.Rates.ShedPerS
	}
	fmt.Fprintf(w, "throughput  %8.0f wr/s  %8.0f rd/s  %6.0f shed/s   (%s)\n", wps, rps, shedPerS, src)

	// Queues: a block per shard scaled to capacity, plus the raw depths.
	var q strings.Builder
	maxDepth := 0
	for _, d := range st.QueueDepths {
		q.WriteRune(heatCell(uint64(d), uint64(st.QueueCap)))
		if d > maxDepth {
			maxDepth = d
		}
	}
	fmt.Fprintf(w, "queues      %s  depth %d/%d  shed=%d coalesced=%d slow=%d flight=%d\n",
		q.String(), maxDepth, st.QueueCap, st.Shed, st.Coalesced, st.SlowRequests, st.FlightRecords)

	if len(st.Stages) > 0 {
		names := make([]string, 0, len(st.Stages))
		for name := range st.Stages {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "stages (p50/p99 ns)\n")
		for i, name := range names {
			sg := st.Stages[name]
			fmt.Fprintf(w, "  %-10s %6.0f/%-8.0f", name, sg.P50Ns, sg.P99Ns)
			if i%3 == 2 || i == len(names)-1 {
				fmt.Fprintln(w)
			}
		}
	}

	if dev == nil {
		fmt.Fprintf(w, "device      (no /debug/device endpoint)\n")
		return
	}

	d := dev.Dedup
	fmt.Fprintf(w, "dedup       hit %5.1f%%  saved %s  verify %d (%.2f%% mismatch)  referH-ovf %d\n",
		d.HitRate*100, bytesHuman(d.BytesSaved), d.CompareReads, d.CollisionRate*100, d.ReferHOverflows)
	hot := ""
	if dev.Wear.Skew > 10 {
		hot = "  ⚠ HOT LINE (skew >10x)"
	}
	fmt.Fprintf(w, "wear        max %d  p99 %d  mean %.2f  skew %.1fx%s\n",
		dev.Wear.Max, dev.Wear.P99, dev.Wear.Mean, dev.Wear.Skew, hot)
	fmt.Fprintf(w, "energy      read %.2f uJ · write %.2f uJ   media %d wr / %d rd on %d lines\n",
		dev.Energy.ReadNJ/1000, dev.Energy.WriteNJ/1000, dev.MediaWrites, dev.MediaReads, dev.LinesTouched)

	// Hybrid DRAM/PCM tier (scheme esd+caram): hit split, migration
	// churn, and buffer occupancy. Absent on plain-PCM media.
	if h := dev.Hybrid; h != nil {
		fmt.Fprintf(w, "hybrid      dram hit %5.1f%%  promo %d / demo %d (wb %d)  wal %d  absorbed %d  resident %d/%d (%d dirty)\n",
			h.HitRate*100, h.Promotions, h.Demotions, h.Writebacks,
			h.WALAppends, h.AbsorbedWrites, h.ResidentLines, h.CapacityLines, h.DirtyLines)
	}

	// Wear heatmap: one row per shard, one cell per bank, scaled to the
	// hottest bank. A single bright cell in a flat row is the hot-line
	// signature.
	var maxBank uint64
	for _, b := range dev.Banks {
		if b.MaxWear > maxBank {
			maxBank = b.MaxWear
		}
	}
	fmt.Fprintf(w, "wear heatmap (cell = bank max wear, %c = %d)\n", heatBlocks[len(heatBlocks)-1], maxBank)
	rows := make(map[int][]rune)
	shards := make([]int, 0)
	for _, b := range dev.Banks {
		if _, ok := rows[b.Shard]; !ok {
			shards = append(shards, b.Shard)
		}
		rows[b.Shard] = append(rows[b.Shard], heatCell(b.MaxWear, maxBank))
	}
	sort.Ints(shards)
	for _, sh := range shards {
		fmt.Fprintf(w, "  shard %-3d %s\n", sh, string(rows[sh]))
	}
}

// bytesHuman renders a byte count with a binary-unit suffix.
func bytesHuman(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
