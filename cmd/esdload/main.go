// Command esdload is a concurrent load generator for esdserve: it drives
// the HTTP/JSON or raw-TCP API from N workers with a configurable
// read/write mix and duplicate rate, then reports throughput, latency
// percentiles and flow-control counts (shed / timeout).
//
// Examples:
//
//	esdload -addr http://localhost:8080 -n 100000 -workers 8
//	esdload -addr localhost:8081 -proto tcp -writes 0.7 -dup 0.5
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/server"
)

func main() {
	if err := cliMain(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "esdload:", err)
		os.Exit(1)
	}
}

// workerStats accumulates one worker's measurements (merged after the
// run; no cross-worker sharing on the hot path).
type workerStats struct {
	latencies []time.Duration // wire round-trip per successful request
	ok        uint64
	shed      uint64
	timeout   uint64
	errs      uint64
	lastErr   error
	target    string
}

func cliMain(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("esdload", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		addr     = fs.String("addr", "http://localhost:8080", "server base URL (http) or host:port (tcp)")
		targets  = fs.String("targets", "", "comma-separated endpoints; workers round-robin across them (overrides -addr)")
		proto    = fs.String("proto", "http", "protocol: http or tcp")
		n        = fs.Int("n", 10000, "total requests across all workers")
		workers  = fs.Int("workers", 4, "concurrent workers (one connection each)")
		writes   = fs.Float64("writes", 0.5, "fraction of requests that are writes")
		dup      = fs.Float64("dup", 0.3, "fraction of written lines drawn from a small duplicate pool")
		space    = fs.Uint64("space", 1<<20, "logical address space (lines)")
		seed     = fs.Int64("seed", 1, "workload seed")
		batch    = fs.Int("batch", 1, "ops per batched TCP frame (1 = scalar frames; tcp only)")
		flush    = fs.Bool("flush", true, "flush the engine after the run")
		statsOut = fs.Bool("stats", true, "fetch and print server-side /v1/stats after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers <= 0 || *n <= 0 {
		return fmt.Errorf("-n and -workers must be positive")
	}
	if *writes < 0 || *writes > 1 || *dup < 0 || *dup > 1 {
		return fmt.Errorf("-writes and -dup must be in [0,1]")
	}
	if *batch < 1 || *batch > server.MaxBatchOps {
		return fmt.Errorf("-batch must be in [1,%d]", server.MaxBatchOps)
	}
	if *batch > 1 && *proto != "tcp" {
		return fmt.Errorf("-batch requires -proto tcp (the HTTP API has no batch frames)")
	}

	// Workers pin to targets round-robin, so a multi-target run (e.g. the
	// nodes of a cluster, or N routers) gets an even worker split and
	// per-target latency attribution.
	targetList := []string{*addr}
	if *targets != "" {
		targetList = targetList[:0]
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				targetList = append(targetList, t)
			}
		}
		if len(targetList) == 0 {
			return fmt.Errorf("-targets is empty after trimming")
		}
	}

	newClient := func(target string) (server.Client, error) {
		switch *proto {
		case "http":
			if !strings.Contains(target, "://") {
				target = "http://" + target
			}
			return server.NewHTTPClient(target), nil
		case "tcp":
			return server.DialTCP(target)
		default:
			return nil, fmt.Errorf("unknown -proto %q (want http or tcp)", *proto)
		}
	}

	perWorker := *n / *workers
	stats := make([]workerStats, *workers)
	var wg sync.WaitGroup
	var aborted atomic.Bool
	start := time.Now()
	for wi := 0; wi < *workers; wi++ {
		target := targetList[wi%len(targetList)]
		c, err := newClient(target)
		if err != nil {
			return err
		}
		stats[wi].target = target
		wg.Add(1)
		go func(wi int, c server.Client) {
			defer wg.Done()
			defer c.Close()
			st := &stats[wi]
			st.latencies = make([]time.Duration, 0, perWorker)
			rng := rand.New(rand.NewSource(*seed + int64(wi)))
			if *batch > 1 {
				runBatched(c.(*server.TCPClient), st, rng, perWorker, *batch, *writes, *dup, *space, &aborted)
				return
			}
			for i := 0; i < perWorker && !aborted.Load(); i++ {
				addr := rng.Uint64() % *space
				reqStart := time.Now()
				var err error
				if rng.Float64() < *writes {
					var line ecc.Line
					if rng.Float64() < *dup {
						line.SetWord(0, uint64(rng.Intn(16))) // 16-line duplicate pool
					} else {
						line.SetWord(0, rng.Uint64())
						line.SetWord(1, rng.Uint64())
					}
					_, err = c.Write(addr, line)
				} else {
					_, err = c.Read(addr)
				}
				switch {
				case err == nil:
					st.latencies = append(st.latencies, time.Since(reqStart))
					st.ok++
				case err == server.ErrOverloaded:
					st.shed++
				case err == server.ErrTimeout:
					st.timeout++
				default:
					st.errs++
					st.lastErr = err
					if st.errs > 100 { // broken server/connection: stop hammering
						aborted.Store(true)
						return
					}
				}
			}
		}(wi, c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	var ok, shed, timeouts, errs uint64
	var lastErr error
	for i := range stats {
		all = append(all, stats[i].latencies...)
		ok += stats[i].ok
		shed += stats[i].shed
		timeouts += stats[i].timeout
		errs += stats[i].errs
		if stats[i].lastErr != nil {
			lastErr = stats[i].lastErr
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	mode := *proto
	if *batch > 1 {
		mode = fmt.Sprintf("%s batch=%d", *proto, *batch)
	}
	fmt.Fprintf(stdout, "esdload: %d ok, %d shed, %d timeout, %d errors in %v (%s, %d workers)\n",
		ok, shed, timeouts, errs, elapsed.Round(time.Millisecond), mode, *workers)
	if ok > 0 {
		fmt.Fprintf(stdout, "throughput: %.0f req/s\n", float64(ok)/elapsed.Seconds())
		fmt.Fprintf(stdout, "latency: p50=%v p90=%v p99=%v max=%v\n",
			pctOf(all, 0.50).Round(time.Microsecond), pctOf(all, 0.90).Round(time.Microsecond),
			pctOf(all, 0.99).Round(time.Microsecond), all[len(all)-1].Round(time.Microsecond))
	}
	if len(targetList) > 1 {
		perTarget := make(map[string][]time.Duration, len(targetList))
		perOK := make(map[string]uint64, len(targetList))
		for i := range stats {
			perTarget[stats[i].target] = append(perTarget[stats[i].target], stats[i].latencies...)
			perOK[stats[i].target] += stats[i].ok
		}
		for _, t := range targetList {
			lat := perTarget[t]
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			if len(lat) == 0 {
				fmt.Fprintf(stdout, "target %s: %d ok\n", t, perOK[t])
				continue
			}
			fmt.Fprintf(stdout, "target %s: %d ok  p50=%v p90=%v p99=%v\n", t, perOK[t],
				pctOf(lat, 0.50).Round(time.Microsecond), pctOf(lat, 0.90).Round(time.Microsecond),
				pctOf(lat, 0.99).Round(time.Microsecond))
		}
	}
	if lastErr != nil {
		fmt.Fprintf(stdout, "last error: %v\n", lastErr)
	}

	if *flush || *statsOut {
		c, err := newClient(targetList[0])
		if err != nil {
			return err
		}
		defer c.Close()
		if *flush {
			if err := c.Flush(); err != nil {
				return fmt.Errorf("flush: %w", err)
			}
		}
		if *statsOut {
			st, err := c.Stats()
			if err != nil {
				return fmt.Errorf("stats: %w", err)
			}
			fmt.Fprintf(stdout, "server: scheme=%s shards=%d writes=%d reads=%d dedup=%.1f%% coalesced=%d shed=%d\n",
				st.Scheme, st.Shards, st.Writes, st.Reads, st.DedupRate*100, st.Coalesced, st.Shed)
		}
	}
	if errs > 0 {
		return fmt.Errorf("%d requests failed (last: %v)", errs, lastErr)
	}
	return nil
}

// runBatched drives one worker's request share through the batched TCP
// frames: ops accumulate into homogeneous write/read batches that flush
// when full (and at the end), one round trip per batch. Per-op latency
// is the batch round trip divided evenly across its ops, so the
// percentiles report amortized per-op cost — the quantity batching
// optimizes. The op stream (addresses, mix, duplicate pool) is
// generated identically to the scalar path.
func runBatched(c *server.TCPClient, st *workerStats, rng *rand.Rand, total, batch int,
	writes, dup float64, space uint64, aborted *atomic.Bool) {

	wops := make([]server.BatchWriteOp, 0, batch)
	wres := make([]server.BatchWriteResult, batch)
	raddrs := make([]uint64, 0, batch)
	rres := make([]server.BatchReadResult, batch)

	perOp := func(err error) {
		switch err {
		case nil:
			st.ok++
		case server.ErrOverloaded:
			st.shed++
		case server.ErrTimeout:
			st.timeout++
		default:
			st.errs++
			st.lastErr = err
			if st.errs > 100 {
				aborted.Store(true)
			}
		}
	}
	flushWrites := func() {
		if len(wops) == 0 {
			return
		}
		reqStart := time.Now()
		if err := c.WriteBatch(wops, wres[:len(wops)]); err != nil {
			// Frame-level failure: the whole batch died with the connection.
			st.errs += uint64(len(wops))
			st.lastErr = err
			aborted.Store(true)
			wops = wops[:0]
			return
		}
		per := time.Since(reqStart) / time.Duration(len(wops))
		for i := range wops {
			perOp(wres[i].Err)
			if wres[i].Err == nil {
				st.latencies = append(st.latencies, per)
			}
		}
		wops = wops[:0]
	}
	flushReads := func() {
		if len(raddrs) == 0 {
			return
		}
		reqStart := time.Now()
		if err := c.ReadBatch(raddrs, rres[:len(raddrs)]); err != nil {
			st.errs += uint64(len(raddrs))
			st.lastErr = err
			aborted.Store(true)
			raddrs = raddrs[:0]
			return
		}
		per := time.Since(reqStart) / time.Duration(len(raddrs))
		for i := range raddrs {
			perOp(rres[i].Err)
			if rres[i].Err == nil {
				st.latencies = append(st.latencies, per)
			}
		}
		raddrs = raddrs[:0]
	}

	for i := 0; i < total && !aborted.Load(); i++ {
		addr := rng.Uint64() % space
		if rng.Float64() < writes {
			var line ecc.Line
			if rng.Float64() < dup {
				line.SetWord(0, uint64(rng.Intn(16))) // 16-line duplicate pool
			} else {
				line.SetWord(0, rng.Uint64())
				line.SetWord(1, rng.Uint64())
			}
			wops = append(wops, server.BatchWriteOp{Addr: addr, Line: line})
			if len(wops) == batch {
				flushWrites()
			}
		} else {
			raddrs = append(raddrs, addr)
			if len(raddrs) == batch {
				flushReads()
			}
		}
	}
	flushWrites()
	flushReads()
}

// pctOf indexes a sorted latency slice at quantile p.
func pctOf(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(p*float64(len(sorted)-1))]
}
