package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/server"
	"github.com/esdsim/esd/internal/shard"
)

func startServer(t *testing.T) *server.Server {
	t.Helper()
	cfg := config.Default()
	cfg.PCM.CapacityBytes = 1 << 26
	cfg.Meta.EFITCacheBytes = 16 << 10
	cfg.Meta.AMTCacheBytes = 16 << 10
	eng, err := shard.New(cfg, "esd", shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(eng, server.Config{Addr: "127.0.0.1:0", TCPAddr: "127.0.0.1:0"})
	if err != nil {
		_ = eng.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		_ = eng.Close()
	})
	return srv
}

func TestLoadSingleTarget(t *testing.T) {
	srv := startServer(t)
	var out strings.Builder
	err := cliMain([]string{"-addr", srv.TCPAddr(), "-proto", "tcp", "-n", "400", "-workers", "2", "-space", "1024"}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "throughput:") {
		t.Fatalf("no throughput line:\n%s", out.String())
	}
	// Single target: no per-target breakdown.
	if strings.Contains(out.String(), "target ") {
		t.Fatalf("unexpected per-target lines with one target:\n%s", out.String())
	}
}

func TestLoadMultipleTargets(t *testing.T) {
	a, b := startServer(t), startServer(t)
	var out strings.Builder
	args := []string{
		"-targets", a.TCPAddr() + "," + b.TCPAddr(),
		"-proto", "tcp", "-n", "400", "-workers", "4", "-space", "1024",
	}
	if err := cliMain(args, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	// Both targets must appear with their own latency percentiles.
	for _, addr := range []string{a.TCPAddr(), b.TCPAddr()} {
		if !strings.Contains(out.String(), "target "+addr+":") {
			t.Fatalf("missing per-target line for %s:\n%s", addr, out.String())
		}
	}
	if !strings.Contains(out.String(), "p99=") {
		t.Fatalf("no percentile output:\n%s", out.String())
	}
}

func TestLoadBadFlags(t *testing.T) {
	var out strings.Builder
	if err := cliMain([]string{"-n", "0"}, &out); err == nil {
		t.Fatal("-n 0 accepted")
	}
	if err := cliMain([]string{"-targets", " , "}, &out); err == nil {
		t.Fatal("blank -targets accepted")
	}
	if err := cliMain([]string{"-proto", "carrier-pigeon", "-n", "10", "-workers", "1"}, &out); err == nil {
		t.Fatal("unknown -proto accepted")
	}
	if err := cliMain([]string{"-batch", "8", "-proto", "http", "-n", "10", "-workers", "1"}, &out); err == nil {
		t.Fatal("-batch with -proto http accepted")
	}
	if err := cliMain([]string{"-batch", "0", "-n", "10", "-workers", "1"}, &out); err == nil {
		t.Fatal("-batch 0 accepted")
	}
	if err := cliMain([]string{"-batch", "100000", "-n", "10", "-workers", "1"}, &out); err == nil {
		t.Fatal("-batch over MaxBatchOps accepted")
	}
}

// TestLoadBatched drives the batched TCP frames end to end: every op
// must complete (no shed/timeout/errors against an idle local server),
// the server must count exactly the generated writes+reads, and the
// output must carry the batch mode and amortized latency percentiles.
func TestLoadBatched(t *testing.T) {
	srv := startServer(t)
	var out strings.Builder
	args := []string{
		"-addr", srv.TCPAddr(), "-proto", "tcp", "-batch", "16",
		"-n", "600", "-workers", "2", "-space", "1024", "-dup", "0.5",
	}
	if err := cliMain(args, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "600 ok, 0 shed, 0 timeout, 0 errors") {
		t.Fatalf("not every op completed:\n%s", s)
	}
	if !strings.Contains(s, "tcp batch=16") {
		t.Fatalf("batch mode missing from summary:\n%s", s)
	}
	if !strings.Contains(s, "latency: p50=") {
		t.Fatalf("no latency percentiles:\n%s", s)
	}
	// The server-side op count proves the batches actually carried every
	// op (writes + reads together are the -n total).
	if !strings.Contains(s, "server: scheme=esd") {
		t.Fatalf("no server stats line:\n%s", s)
	}
}
