// Command figures regenerates the tables and figures of the ESD paper's
// evaluation (§IV) from fresh simulations.
//
// Examples:
//
//	figures -fig fig11                        # one figure to stdout
//	figures -fig all -requests 200000 -o out/ # full campaign into files
//	figures -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	esd "github.com/esdsim/esd"
	"github.com/esdsim/esd/internal/experiments"
	"github.com/esdsim/esd/internal/stats"
)

func main() {
	var (
		fig      = flag.String("fig", "", "experiment id (figN, ablation-*) or 'all'")
		requests = flag.Int("requests", 30000, "measured requests per application")
		warmup   = flag.Int("warmup", 20000, "warm-up requests per application")
		seed     = flag.Uint64("seed", 1, "generator seed")
		apps     = flag.String("apps", "", "comma-separated application subset (default: all 20)")
		fpScale  = flag.Int("fpcachescale", 1, "shrink fingerprint caches by this factor (scaled-down simulation; see DESIGN.md)")
		outDir   = flag.String("o", "", "write each table to <dir>/<id>.txt instead of stdout")
		chart    = flag.Bool("chart", false, "render a terminal chart instead of a table (fig11-16)")
		report   = flag.String("report", "", "write the full paper-vs-measured markdown report to this file")
		seeds    = flag.Int("seeds", 1, "run per-app figures over N seeds and report mean±stddev (fig11-14, fig16)")
		format   = flag.String("format", "table", "output format: table or csv")
		list     = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range esd.Experiments() {
			fmt.Println(name)
		}
		return
	}
	if *fig == "" && *report == "" {
		fatal(fmt.Errorf("need -fig <id>, -fig all, or -report <file> (see -list)"))
	}

	opts := esd.DefaultExperimentOptions()
	opts.Requests = *requests
	opts.Warmup = *warmup
	opts.Seed = *seed
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	}
	opts.FPCacheScale = *fpScale

	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		if err := experiments.WriteReport(opts, f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("report -> %s (%.1fs)\n", *report, time.Since(start).Seconds())
		return
	}

	if *chart {
		if err := experiments.RenderChart(*fig, opts, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	if *seeds > 1 {
		_, tb, err := experiments.MultiSeed(*fig, opts, *seeds)
		if err != nil {
			fatal(err)
		}
		if err := render(tb, *format, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = esd.Experiments()
	}
	for _, id := range ids {
		start := time.Now()
		tb, err := esd.RunExperiment(id, opts)
		if err != nil {
			fatal(err)
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*outDir, id+".txt")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := tb.Render(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("%-20s -> %s (%.1fs)\n", id, path, time.Since(start).Seconds())
		} else {
			if err := render(tb, *format, os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	}
}

// render writes tb in the chosen format.
func render(tb *stats.Table, format string, w io.Writer) error {
	switch format {
	case "csv":
		return tb.RenderCSV(w)
	case "table", "":
		return tb.Render(w)
	default:
		return fmt.Errorf("unknown format %q (table or csv)", format)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
