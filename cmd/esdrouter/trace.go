package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/esdsim/esd/internal/cluster"
	"github.com/esdsim/esd/internal/server"
	"github.com/esdsim/esd/internal/telemetry"
)

// esdtrace: the cross-node timeline stitcher. One fleet trace ID appears
// in the router's hop recorder (wall-clock attempt events) and in each
// touched node's per-shard flight recorder (simulated-time engine
// records). This subcommand pulls every recorder the router knows about,
// filters for one ID, and prints the request's full path:
//
//	esdrouter esdtrace -router http://localhost:9001 -trace 0x5f3a9c01
//
// The trace ID comes from a traced client response, a router or node
// slow-request log line, or a /debug/flightrecorder dump. Flight
// recorders are bounded rings: a trace older than the last ~1k routed
// requests may already be overwritten.
func runTrace(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("esdtrace", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		routerURL = fs.String("router", "http://localhost:9001", "running router's HTTP address")
		traceFlag = fs.String("trace", "", "trace ID to stitch (decimal or 0x hex)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceFlag == "" {
		return fmt.Errorf("esdtrace needs -trace <id> (from a traced response or a slow-request log line)")
	}
	trace, err := strconv.ParseUint(strings.TrimSpace(*traceFlag), 0, 64)
	if err != nil {
		return fmt.Errorf("bad -trace %q: %w", *traceFlag, err)
	}
	if trace == 0 {
		return fmt.Errorf("trace 0 is the untraced marker; nothing to stitch")
	}

	base := strings.TrimRight(*routerURL, "/")
	hc := &http.Client{Timeout: 5 * time.Second}

	// The router's own recorder: wall-clock hop events.
	var hops []telemetry.HopRecord
	if err := traceGet(hc, base+"/debug/flightrecorder", &hops); err != nil {
		return fmt.Errorf("router flight recorder: %w", err)
	}
	var mine []telemetry.HopRecord
	for _, h := range hops {
		if h.Trace == trace {
			mine = append(mine, h)
		}
	}
	sort.Slice(mine, func(i, j int) bool { return mine[i].AtUnixNs < mine[j].AtUnixNs })

	// The member list, from the ring section.
	var st cluster.Status
	if err := traceGet(hc, base+"/statusz", &st); err != nil {
		return fmt.Errorf("router statusz: %w", err)
	}

	fmt.Fprintf(stdout, "esdtrace: trace %#x via %s\n", trace, base)
	if len(mine) == 0 {
		fmt.Fprintf(stdout, "router: no hop events (trace unknown, untraced, or already overwritten in the ring)\n")
	} else {
		t0 := mine[0].AtUnixNs
		fmt.Fprintf(stdout, "router: %d hop events (wall clock, t0 = %s)\n",
			len(mine), time.Unix(0, t0).Format("15:04:05.000000"))
		for _, h := range mine {
			loc := ""
			if h.Node != "" {
				loc = " node=" + h.Node
			}
			att := ""
			if h.Attempt > 0 {
				att = fmt.Sprintf(" attempt=%d", h.Attempt)
			}
			fmt.Fprintf(stdout, "  %+10.3fms  %-11s %-11s addr=%-8d%s%s  lat=%.3fms  %s\n",
				float64(h.AtUnixNs-t0)/1e6, h.Hop, h.Op, h.Addr, loc, att,
				h.LatNs/1e6, server.StatusText(byte(h.Status)))
		}
	}

	// Every member's per-shard flight recorder: the node half of the path.
	touched, reachable := 0, 0
	for _, n := range st.Nodes {
		if n.HTTPAddr == "" {
			fmt.Fprintf(stdout, "node %s: no HTTP address; cannot scrape\n", n.Name)
			continue
		}
		var recs []telemetry.FlightRecord
		if err := traceGet(hc, "http://"+n.HTTPAddr+"/debug/flightrecorder", &recs); err != nil {
			fmt.Fprintf(stdout, "node %s: %v\n", n.Name, err)
			continue
		}
		reachable++
		var hit []telemetry.FlightRecord
		for _, rec := range recs {
			if rec.Trace == trace {
				hit = append(hit, rec)
			}
		}
		if len(hit) == 0 {
			continue
		}
		touched++
		fmt.Fprintf(stdout, "node %s: %d engine records (simulated time)\n", n.Name, len(hit))
		for _, rec := range hit {
			outcome := ""
			switch {
			case rec.Kind == "write" && rec.Dedup:
				outcome = "  dedup"
			case rec.Kind == "write":
				outcome = fmt.Sprintf("  phys=%d", rec.Phys)
			case rec.Hit:
				outcome = "  hit"
			default:
				outcome = "  miss"
			}
			fmt.Fprintf(stdout, "  seq=%-8d %-6s shard=%d addr=%-8d%s  lat=%.0fns%s\n",
				rec.Seq, rec.Kind, rec.Shard, rec.Addr, outcome, rec.LatNs, stageSummary(rec.StagesNs))
		}
	}
	fmt.Fprintf(stdout, "esdtrace: %d router hops, trace seen on %d of %d reachable nodes\n",
		len(mine), touched, reachable)
	return nil
}

// stageSummary renders a write's per-stage decomposition inline, sorted
// by stage name for stable output.
func stageSummary(stages map[string]float64) string {
	if len(stages) == 0 {
		return ""
	}
	names := make([]string, 0, len(stages))
	for name := range stages {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("  stages:")
	for _, name := range names {
		fmt.Fprintf(&b, " %s=%.0fns", name, stages[name])
	}
	return b.String()
}

// traceGet fetches url and decodes the JSON body into out.
func traceGet(hc *http.Client, url string, out interface{}) error {
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
