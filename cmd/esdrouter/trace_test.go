package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/esdsim/esd/internal/cluster"
	"github.com/esdsim/esd/internal/telemetry"
)

// TestEsdtraceStitchesTimeline drives the esdtrace subcommand against
// canned router and node recorders and checks the stitched output: the
// router's hop timeline, the node sections, and the cross-node summary.
func TestEsdtraceStitchesTimeline(t *testing.T) {
	const trace = 0x5f3a9c01

	// One node's engine records: the traced write plus unrelated noise.
	nodeMux := http.NewServeMux()
	nodeMux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode([]telemetry.FlightRecord{
			{Seq: 7, Trace: 999, Kind: "read", Shard: 0, Addr: 5},
			{Seq: 8, Trace: trace, Kind: "write", Shard: 1, Addr: 42, Dedup: true,
				LatNs: 180, StagesNs: map[string]float64{"efit": 90, "media": 60}},
		})
	})
	node := httptest.NewServer(nodeMux)
	t.Cleanup(node.Close)
	nodeAddr := strings.TrimPrefix(node.URL, "http://")

	routerMux := http.NewServeMux()
	routerMux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode([]telemetry.HopRecord{
			{Seq: 1, Trace: trace, Hop: "checkout", Op: "write", Node: "alpha", Addr: 42, AtUnixNs: 1000, LatNs: 2000},
			{Seq: 2, Trace: trace, Hop: "attempt", Op: "write", Node: "alpha", Addr: 42, AtUnixNs: 4000, LatNs: 250000, OK: true},
			{Seq: 3, Trace: 999, Hop: "route", Op: "read", Addr: 5, AtUnixNs: 9000},
			{Seq: 4, Trace: trace, Hop: "route", Op: "write", Addr: 42, AtUnixNs: 500, LatNs: 260000, OK: true},
		})
	})
	routerMux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(cluster.Status{
			Nodes: []cluster.NodeStatus{
				{Name: "alpha", HTTPAddr: nodeAddr, Healthy: true},
				{Name: "beta", Healthy: true}, // no HTTP address
			},
		})
	})
	router := httptest.NewServer(routerMux)
	t.Cleanup(router.Close)

	var buf bytes.Buffer
	if err := cliMain([]string{"esdtrace", "-router", router.URL, "-trace", "0x5f3a9c01"}, &buf, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"trace 0x5f3a9c01",
		"router: 3 hop events",
		"route", "checkout", "attempt", "node=alpha",
		"node alpha: 1 engine records",
		"seq=8", "write", "shard=1", "dedup", "stages: efit=90ns media=60ns",
		"node beta: no HTTP address",
		"3 router hops, trace seen on 1 of 1 reachable nodes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stitched timeline missing %q:\n%s", want, out)
		}
	}
	// Events are wall-clock ordered: route (t=500) before checkout (t=1000).
	if ri, ci := strings.Index(out, "route"), strings.Index(out, "checkout"); ri > ci {
		t.Errorf("timeline not sorted by wall clock:\n%s", out)
	}
	if strings.Contains(out, "seq=7") {
		t.Errorf("unrelated trace leaked into output:\n%s", out)
	}
}

func TestEsdtraceRejectsBadTrace(t *testing.T) {
	var sink discard
	if err := cliMain([]string{"esdtrace"}, &sink, nil); err == nil {
		t.Fatal("missing -trace accepted")
	}
	if err := cliMain([]string{"esdtrace", "-trace", "zzz"}, &sink, nil); err == nil {
		t.Fatal("unparseable -trace accepted")
	}
	if err := cliMain([]string{"esdtrace", "-trace", "0"}, &sink, nil); err == nil {
		t.Fatal("trace 0 accepted")
	}
}
