package main

import (
	"testing"
)

func TestParseNodes(t *testing.T) {
	nodes, err := parseNodes("127.0.0.1:8081@127.0.0.1:8080=alpha, 127.0.0.1:8181@127.0.0.1:8180, 127.0.0.1:8281")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("parsed %d nodes, want 3", len(nodes))
	}
	if nodes[0].TCPAddr != "127.0.0.1:8081" || nodes[0].HTTPAddr != "127.0.0.1:8080" || nodes[0].Name != "alpha" {
		t.Fatalf("node 0 = %+v", nodes[0])
	}
	if nodes[1].TCPAddr != "127.0.0.1:8181" || nodes[1].HTTPAddr != "127.0.0.1:8180" || nodes[1].Name != "" {
		t.Fatalf("node 1 = %+v", nodes[1])
	}
	if nodes[2].TCPAddr != "127.0.0.1:8281" || nodes[2].HTTPAddr != "" {
		t.Fatalf("node 2 = %+v", nodes[2])
	}
}

func TestParseNodesEmpty(t *testing.T) {
	nodes, err := parseNodes("  ")
	if err != nil || nodes != nil {
		t.Fatalf("blank spec: nodes=%v err=%v", nodes, err)
	}
	if _, err := parseNodes("@127.0.0.1:8080"); err == nil {
		t.Fatal("entry without a TCP address accepted")
	}
}

func TestCliMainRejectsBadFlags(t *testing.T) {
	var sink discard
	if err := cliMain([]string{"-tcp-addr", ":0", "-addr", ""}, &sink, nil); err == nil {
		t.Fatal("missing -nodes accepted")
	}
	if err := cliMain([]string{"-reshard", "-space", "100"}, &sink, nil); err == nil {
		t.Fatal("reshard with no delta accepted")
	}
	if err := cliMain([]string{"-reshard", "-add", "127.0.0.1:1"}, &sink, nil); err == nil {
		t.Fatal("reshard without -space accepted")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
