// Command esdrouter fronts N esdserve nodes with a consistent-hash
// router: it speaks the same binary TCP protocol as esdserve, hashes
// each line address onto a virtual-node ring, probes node health, fails
// over between replicas, and supports live resharding through an admin
// endpoint.
//
// Serve mode:
//
//	esdrouter -tcp-addr :9000 -addr :9001 \
//	    -nodes 127.0.0.1:8081@127.0.0.1:8080,127.0.0.1:8181@127.0.0.1:8180 \
//	    -replication 2
//
// Each -nodes entry is tcpaddr[@httpaddr][=name]: the TCP address is the
// data path, the optional HTTP address enables /readyz probing (TCP dial
// probes otherwise), and the optional name pins the node's ring identity
// (defaults to the TCP address — keep names stable across restarts or
// the ring reshuffles).
//
// Admin mode (talks to a running router):
//
//	esdrouter -reshard -router http://localhost:9001 \
//	    -add 127.0.0.1:8281@127.0.0.1:8280 -space 1000000
//	esdrouter -reshard -router http://localhost:9001 -remove 127.0.0.1:8081 -space 1000000
//
// Trace mode (stitch one request's cross-node timeline from the router's
// and every member's flight recorder):
//
//	esdrouter esdtrace -router http://localhost:9001 -trace 0x5f3a9c01
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/esdsim/esd/internal/cluster"
)

func main() {
	if err := cliMain(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "esdrouter:", err)
		os.Exit(1)
	}
}

// cliMain is the testable body. ready, when non-nil, receives the running
// front-end and returns a channel whose close triggers shutdown.
func cliMain(args []string, stdout io.Writer, ready func(*cluster.Server) <-chan struct{}) error {
	if len(args) > 0 && args[0] == "esdtrace" {
		return runTrace(args[1:], stdout)
	}
	fs := flag.NewFlagSet("esdrouter", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		tcpAddr     = fs.String("tcp-addr", ":9000", "binary-protocol listen address")
		addr        = fs.String("addr", ":9001", "HTTP introspection/admin listen address (empty disables)")
		nodesFlag   = fs.String("nodes", "", "comma-separated backends, each tcpaddr[@httpaddr][=name]")
		vnodes      = fs.Int("vnodes", cluster.DefaultVNodes, "virtual ring points per node")
		replication = fs.Int("replication", 1, "replicas per address (2 = primary + follower)")
		retries     = fs.Int("retries", 1, "extra attempts per node before failing over")
		timeout     = fs.Duration("timeout", 2*time.Second, "per-backend request deadline")
		hedge       = fs.Duration("hedge", 0, "hedge reads at the follower after this delay (0 disables)")
		readRepair  = fs.Int("read-repair", 64, "sample every Nth read for replica divergence (0 disables)")
		probe       = fs.Duration("probe", time.Second, "health-probe interval")
		poolCap     = fs.Int("pool-cap", 8, "idle connections kept per backend")
		drain       = fs.Duration("drain", 10*time.Second, "graceful-shutdown budget")

		// Admin mode.
		reshard   = fs.Bool("reshard", false, "admin mode: POST a reshard to a running router and exit")
		routerURL = fs.String("router", "http://localhost:9001", "running router's HTTP address (admin mode)")
		addFlag   = fs.String("add", "", "nodes to add, same syntax as -nodes (admin mode)")
		remove    = fs.String("remove", "", "comma-separated node names to remove (admin mode)")
		space     = fs.Uint64("space", 0, "logical address-space bound to scan (admin mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *reshard {
		return runReshard(stdout, *routerURL, *addFlag, *remove, *space)
	}

	nodes, err := parseNodes(*nodesFlag)
	if err != nil {
		return err
	}
	if len(nodes) == 0 {
		return fmt.Errorf("-nodes is required (comma-separated tcpaddr[@httpaddr][=name])")
	}

	r, err := cluster.NewRouter(cluster.Config{
		Nodes:           nodes,
		VNodes:          *vnodes,
		Replication:     *replication,
		RetriesPerNode:  *retries,
		RequestTimeout:  *timeout,
		HedgeAfter:      *hedge,
		ReadRepairEvery: *readRepair,
		ProbeInterval:   *probe,
		PoolMaxIdle:     *poolCap,
		Log:             os.Stderr,
	})
	if err != nil {
		return err
	}
	defer r.Close()

	srv, err := cluster.NewServer(r, cluster.ServeConfig{TCPAddr: *tcpAddr, HTTPAddr: *addr})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "esdrouter: nodes=%d replication=%d tcp=%s", len(nodes), *replication, srv.TCPAddr())
	if srv.HTTPAddr() != "" {
		fmt.Fprintf(stdout, " http=%s", srv.HTTPAddr())
	}
	fmt.Fprintln(stdout)

	var stop <-chan struct{}
	if ready != nil {
		stop = ready(srv)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		ch := make(chan struct{})
		go func() { <-sig; close(ch) }()
		stop = ch
	}
	<-stop

	fmt.Fprintln(stdout, "esdrouter: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(stdout, "esdrouter: drained clean")
	return nil
}

// parseNodes parses the -nodes syntax: comma-separated entries of
// tcpaddr[@httpaddr][=name].
func parseNodes(s string) ([]cluster.Node, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []cluster.Node
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		var n cluster.Node
		if at := strings.LastIndex(entry, "="); at >= 0 {
			n.Name = entry[at+1:]
			entry = entry[:at]
		}
		if at := strings.LastIndex(entry, "@"); at >= 0 {
			n.HTTPAddr = entry[at+1:]
			entry = entry[:at]
		}
		n.TCPAddr = entry
		if n.TCPAddr == "" {
			return nil, fmt.Errorf("node entry %q has no TCP address", s)
		}
		out = append(out, n)
	}
	return out, nil
}

// runReshard POSTs a membership delta to a running router's
// /admin/reshard and prints the migration report.
func runReshard(stdout io.Writer, routerURL, addSpec, removeSpec string, space uint64) error {
	if space == 0 {
		return fmt.Errorf("-reshard needs -space (the logical address bound the workload uses)")
	}
	add, err := parseNodes(addSpec)
	if err != nil {
		return err
	}
	var remove []string
	for _, name := range strings.Split(removeSpec, ",") {
		if name = strings.TrimSpace(name); name != "" {
			remove = append(remove, name)
		}
	}
	if len(add) == 0 && len(remove) == 0 {
		return fmt.Errorf("-reshard needs -add and/or -remove")
	}
	body, err := json.Marshal(cluster.ReshardRequest{Add: add, Remove: remove, Space: space})
	if err != nil {
		return err
	}
	url := strings.TrimRight(routerURL, "/") + "/admin/reshard"
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("reshard failed: %s: %s", resp.Status, bytes.TrimSpace(payload))
	}
	var rep cluster.ReshardReport
	if err := json.Unmarshal(payload, &rep); err != nil {
		return fmt.Errorf("bad reshard report: %w", err)
	}
	fmt.Fprintf(stdout, "esdrouter: resharded epoch %d -> %d: moved=%d skipped_dirty=%d unreadable=%d in %.1fms\n",
		rep.FromEpoch, rep.ToEpoch, rep.Moved, rep.SkippedDirty, rep.Unreadable, rep.DurationMs)
	for node, n := range rep.PerNode {
		fmt.Fprintf(stdout, "esdrouter:   %s += %d records\n", node, n)
	}
	return nil
}
