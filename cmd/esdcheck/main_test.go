package main

import (
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-ops", "1500", "-seed", "1", "-shards", "1", "-coalesce", "on", "-every", "500"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Fatalf("no OK line in output: %s", out.String())
	}
}

func TestRunMultipleSeeds(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-ops", "800", "-seeds", "2", "-shards", "", "-schemes", "esd,baseline"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errOut.String())
	}
	if got := strings.Count(out.String(), "OK"); got != 2 {
		t.Fatalf("want 2 OK lines, got %d: %s", got, out.String())
	}
}

func TestRunClusterSmoke(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-cluster", "-ops", "3000", "-seed", "1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "cluster seed 1: OK") {
		t.Fatalf("no cluster OK line in output: %s", out.String())
	}
}

func TestRunClusterRejectsUnreplicatedKill(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-cluster", "-ops", "100", "-replication", "1"}, &out, &errOut); code != 2 {
		t.Fatalf("replication=1 with kill enabled: exit %d, want 2", code)
	}
}

func TestBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-coalesce", "sideways"}, &out, &errOut); code != 2 {
		t.Fatalf("bad -coalesce: exit %d", code)
	}
	if code := run([]string{"-shards", "0"}, &out, &errOut); code != 2 {
		t.Fatalf("bad -shards: exit %d", code)
	}
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown flag: exit %d", code)
	}
}

func TestUnknownSchemeFails(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-ops", "100", "-schemes", "nonesuch"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown scheme: exit %d\nstdout: %s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "nonesuch") {
		t.Fatalf("error does not name the scheme: %s", errOut.String())
	}
}
