// Command esdcheck runs the model-based differential and invariant checker
// (internal/check) against all schemes: one deterministic workload applied
// to a map-based oracle and every scheme variant (single-threaded plus
// sharded with and without coalescing), failing loudly on any divergence.
//
// Every failure prints the seed and op index; replay the exact failing
// prefix with:
//
//	esdcheck -seed N -upto M+1
//
// Exit status is 0 when every seed passes, 1 on violations, 2 on usage
// errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/esdsim/esd/internal/check"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("esdcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ops        = fs.Int("ops", 200_000, "operations per seed")
		seed       = fs.Uint64("seed", 1, "first workload seed")
		seeds      = fs.Int("seeds", 1, "number of consecutive seeds to run")
		upto       = fs.Int("upto", 0, "stop after N ops (replay a failing prefix; 0 = all)")
		every      = fs.Int("every", 2000, "run invariant audits every K ops (<0 disables)")
		genName    = fs.String("gen", "default", "workload profile: default, or migrate (phase-shifting hot set)")
		schemes    = fs.String("schemes", "", "comma-separated schemes (default: the canonical four plus esd+caram)")
		shards     = fs.String("shards", "1,2,8", "comma-separated shard counts for the sharded variants ('' disables)")
		coalesce   = fs.String("coalesce", "both", "coalescing for sharded variants: off, on or both")
		concurrent = fs.Bool("concurrent", false, "also run the adversarial concurrent schedules")
		batchFrac  = fs.Float64("batch", 0, "fraction of consecutive-write runs issued through the batch APIs (0 disables, 1 = all)")
		verbose    = fs.Bool("v", false, "progress output")

		// Cluster mode: differential-check a consistent-hash router over
		// real in-process nodes instead of the engine matrix.
		clusterMode  = fs.Bool("cluster", false, "check the cluster router over N in-process nodes (TCP data path)")
		clusterNodes = fs.Int("cluster-nodes", 3, "initial backend count (cluster mode)")
		replication  = fs.Int("replication", 2, "router replica factor (cluster mode)")
		killAt       = fs.Int("kill-at", 0, "kill one node after this op index (0 = 70% of ops, <0 disables; cluster mode)")
		reshardAt    = fs.Int("reshard-at", 0, "grow the ring by one node after this op index (0 = 40% of ops, <0 disables; cluster mode)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *batchFrac < 0 || *batchFrac > 1 {
		fmt.Fprintf(stderr, "esdcheck: -batch must be in [0,1]\n")
		return 2
	}

	if *clusterMode {
		return runCluster(stdout, stderr, clusterArgs{
			ops: *ops, seed: *seed, seeds: *seeds, upto: *upto,
			nodes: *clusterNodes, replication: *replication,
			killAt: *killAt, reshardAt: *reshardAt,
			batchFrac: *batchFrac, verbose: *verbose,
		})
	}

	gen := check.DefaultGen()
	switch *genName {
	case "default":
	case "migrate":
		gen = check.MigrateGen()
	default:
		fmt.Fprintf(stderr, "esdcheck: bad -gen %q (want default or migrate)\n", *genName)
		return 2
	}
	cfg := check.Config{
		Gen:           gen,
		Upto:          *upto,
		AuditEvery:    *every,
		BatchFraction: *batchFrac,
	}
	cfg.Gen.Ops = *ops
	if *genName == "migrate" {
		// PhaseEvery tracks the actual op count, not MigrateGen's default.
		cfg.Gen.PhaseEvery = max(*ops/8, 1)
	}
	if *schemes != "" {
		cfg.Schemes = splitList(*schemes)
	}
	var err error
	if cfg.Shards, err = parseInts(*shards); err != nil {
		fmt.Fprintf(stderr, "esdcheck: bad -shards: %v\n", err)
		return 2
	}
	switch *coalesce {
	case "off":
		cfg.Coalesce = []bool{false}
	case "on":
		cfg.Coalesce = []bool{true}
	case "both":
		cfg.Coalesce = []bool{false, true}
	default:
		fmt.Fprintf(stderr, "esdcheck: bad -coalesce %q (want off, on or both)\n", *coalesce)
		return 2
	}

	failed := false
	for s := *seed; s < *seed+uint64(*seeds); s++ {
		runCfg := cfg
		runCfg.Seed = s
		if *verbose {
			runCfg.Progress = func(done, total int) {
				fmt.Fprintf(stdout, "seed %d: %d/%d ops\n", s, done, total)
			}
		}
		start := time.Now()
		res, err := check.Run(runCfg)
		if err != nil {
			fmt.Fprintf(stderr, "esdcheck: seed %d: %v\n", s, err)
			return 2
		}
		if res.Ok() {
			fmt.Fprintf(stdout, "seed %d: OK — %d ops (%d writes, %d reads, %d crashes) across %d engines in %v\n",
				s, res.Ops, res.Writes, res.Reads, res.Crashes, len(res.Engines), time.Since(start).Round(time.Millisecond))
		} else {
			failed = true
			fmt.Fprintf(stdout, "seed %d: FAIL — %d violation(s):\n", s, len(res.Violations))
			for _, v := range res.Violations {
				fmt.Fprintf(stdout, "  %v\n", v)
				fmt.Fprintf(stdout, "    replay: esdcheck -seed %d -upto %d\n", s, v.Op+1)
			}
		}
		if *concurrent {
			schemeSet := cfg.Schemes
			if len(schemeSet) == 0 {
				schemeSet = check.DefaultSchemes()
			}
			for _, scheme := range schemeSet {
				ccfg := check.DefaultConcurrent(scheme)
				ccfg.Seed = s
				ccfg.FaultBank = 2
				vios, err := check.RunConcurrent(ccfg)
				if err != nil {
					fmt.Fprintf(stderr, "esdcheck: concurrent %s: %v\n", scheme, err)
					return 2
				}
				if len(vios) == 0 {
					fmt.Fprintf(stdout, "seed %d: concurrent %s OK (%d workers x %d ops)\n",
						s, scheme, ccfg.Workers, ccfg.OpsPerWorker)
					continue
				}
				failed = true
				fmt.Fprintf(stdout, "seed %d: concurrent %s FAIL — %d violation(s):\n", s, scheme, len(vios))
				for _, v := range vios {
					fmt.Fprintf(stdout, "  %v\n", v)
				}
			}
		}
	}
	if failed {
		return 1
	}
	return 0
}

type clusterArgs struct {
	ops, seeds, upto   int
	seed               uint64
	nodes, replication int
	killAt, reshardAt  int
	batchFrac          float64
	verbose            bool
}

// runCluster drives the routed differential checker: oracle vs a
// consistent-hash router over real TCP backends, with a node kill and a
// reshard cutover injected mid-stream at deterministic op indices.
func runCluster(stdout, stderr io.Writer, a clusterArgs) int {
	failed := false
	for s := a.seed; s < a.seed+uint64(a.seeds); s++ {
		cfg := check.ClusterConfig{
			Gen:           check.DefaultGen(),
			Seed:          s,
			Nodes:         a.nodes,
			Replication:   a.replication,
			KillAt:        a.killAt,
			ReshardAt:     a.reshardAt,
			Upto:          a.upto,
			BatchFraction: a.batchFrac,
		}
		cfg.Gen.Ops = a.ops
		if a.verbose {
			cfg.Progress = func(done, total int) {
				fmt.Fprintf(stdout, "cluster seed %d: %d/%d ops\n", s, done, total)
			}
		}
		start := time.Now()
		res, err := check.RunCluster(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "esdcheck: cluster seed %d: %v\n", s, err)
			return 2
		}
		if res.Ok() {
			fmt.Fprintf(stdout, "cluster seed %d: OK — %d ops (%d writes, %d reads) routed over %d nodes r=%d in %v\n",
				s, res.Ops, res.Writes, res.Reads, a.nodes, a.replication, time.Since(start).Round(time.Millisecond))
			continue
		}
		failed = true
		fmt.Fprintf(stdout, "cluster seed %d: FAIL — %d violation(s):\n", s, len(res.Violations))
		for _, v := range res.Violations {
			fmt.Fprintf(stdout, "  %v\n", v)
			fmt.Fprintf(stdout, "    replay: esdcheck -cluster -seed %d -upto %d\n", s, v.Op+1)
		}
	}
	if failed {
		return 1
	}
	return 0
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	out := []int{}
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("shard count %d out of range", n)
		}
		out = append(out, n)
	}
	return out, nil
}
