package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	esd "github.com/esdsim/esd"
)

func TestResolveScheme(t *testing.T) {
	cases := map[string]string{
		"0": esd.SchemeBaseline, "1": esd.SchemeSHA1,
		"2": esd.SchemeDeWrite, "3": esd.SchemeESD,
		"esd": esd.SchemeESD, "bcd": esd.SchemeBCD,
		"dewrite": esd.SchemeDeWrite,
	}
	for in, want := range cases {
		got, err := resolveScheme(in)
		if err != nil || got != want {
			t.Errorf("resolveScheme(%q) = %q, %v", in, got, err)
		}
	}
	if _, err := resolveScheme("nope"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestPrintJSON(t *testing.T) {
	sys, err := esd.NewSystem(esd.DefaultConfig(), esd.SchemeESD)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetWarmup(500)
	res, err := sys.RunWorkload("leela", 1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := printJSON(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"scheme": "esd"`, `"dedup_rate"`, `"write_mean_ns"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s:\n%s", want, out)
		}
	}
}

func TestCompareSchemesRuns(t *testing.T) {
	cfg := esd.DefaultConfig()
	cfg.PCM.CapacityBytes = 1 << 28
	var sb strings.Builder
	if err := compareSchemes(&sb, cfg, "leela", 1, 500, 1500); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "esd") {
		t.Fatalf("comparison output missing esd row:\n%s", sb.String())
	}
	if err := compareSchemes(io.Discard, cfg, "nosuch", 1, 10, 10); err == nil {
		t.Fatal("unknown app accepted")
	}
}

// TestCLIMetricsEndpoint runs the CLI with -metrics-addr and scrapes the
// live Prometheus endpoint through the test hook while the server is up.
func TestCLIMetricsEndpoint(t *testing.T) {
	var scraped, vars string
	metricsServerHook = func(url string) {
		scraped = httpGet(t, url+"/metrics")
		vars = httpGet(t, url+"/debug/vars")
	}
	defer func() { metricsServerHook = nil }()

	var sb strings.Builder
	err := cliMain([]string{
		"-scheme", "esd", "-app", "leela", "-warmup", "200", "-n", "1000",
		"-metrics-addr", "127.0.0.1:0", "-pprof",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "metrics: http://") {
		t.Errorf("stdout missing metrics URL:\n%s", sb.String())
	}
	for _, want := range []string{
		"# TYPE esd_writes_total counter",
		"# TYPE esd_write_latency_ns histogram",
		`esd_write_decision_total{decision="unique-fp-miss"}`,
		"esd_write_latency_ns_bucket{le=\"+Inf\"}",
		"esd_amt_cache_hits_total",
		"esd_device_writes_total",
	} {
		if !strings.Contains(scraped, want) {
			t.Errorf("/metrics missing %q:\n%.2000s", want, scraped)
		}
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(vars), &parsed); err != nil {
		t.Fatalf("/debug/vars not valid JSON: %v\n%s", err, vars)
	}
	if _, ok := parsed["esd_writes_total"]; !ok {
		t.Errorf("/debug/vars missing esd_writes_total:\n%s", vars)
	}
	// The writes counter must be a positive number: the run really reported.
	if v, ok := parsed["esd_writes_total"].(float64); !ok || v <= 0 {
		t.Errorf("esd_writes_total = %v, want > 0", parsed["esd_writes_total"])
	}
}

// TestCLITraceJSONLRoundTrip checks that -trace-out produces a JSONL trace
// the public decoder round-trips.
func TestCLITraceJSONLRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "events.jsonl")
	err := cliMain([]string{
		"-scheme", "esd", "-app", "leela", "-warmup", "100", "-n", "500",
		"-trace-out", out, "-trace-sample", "4",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := esd.ReadTraceEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty event trace")
	}
	var hasWrite, hasRunEnd bool
	var lastSeq uint64
	for _, ev := range events {
		if ev.Seq <= lastSeq {
			t.Fatalf("sequence numbers not increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Kind {
		case "write":
			hasWrite = true
			if ev.Scheme != "esd" || ev.Decision == "" {
				t.Errorf("write event missing scheme/decision: %+v", ev)
			}
		case "run-end":
			hasRunEnd = true
		}
	}
	if !hasWrite || !hasRunEnd {
		t.Errorf("trace missing expected kinds (write=%v run-end=%v)", hasWrite, hasRunEnd)
	}
}

// TestCLITraceChromeShape checks the Chrome trace_event export: a JSON
// array of objects with ph/ts/name and args.
func TestCLITraceChromeShape(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	err := cliMain([]string{
		"-scheme", "esd", "-app", "leela", "-warmup", "100", "-n", "500",
		"-trace-out", out, "-trace-format", "chrome", "-trace-sample", "8",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var evs []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal(raw, &evs); err != nil {
		t.Fatalf("chrome trace not a JSON array: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("empty chrome trace")
	}
	var sawComplete bool
	for _, ev := range evs {
		if ev.Name == "" || ev.Ph == "" {
			t.Fatalf("event missing name/ph: %+v", ev)
		}
		if ev.Ph == "X" {
			sawComplete = true
			if ev.Dur <= 0 {
				t.Errorf("complete event with non-positive dur: %+v", ev)
			}
		}
	}
	if !sawComplete {
		t.Error("no complete (ph=X) slices in chrome trace")
	}
}

// TestCLIFlagValidation covers the telemetry flag error paths.
func TestCLIFlagValidation(t *testing.T) {
	if err := cliMain([]string{"-pprof", "-app", "leela"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-metrics-addr") {
		t.Errorf("-pprof without -metrics-addr accepted: %v", err)
	}
	out := filepath.Join(t.TempDir(), "x")
	if err := cliMain([]string{"-trace-out", out, "-trace-format", "bogus", "-app", "leela"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "trace-format") {
		t.Errorf("bogus -trace-format accepted: %v", err)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
