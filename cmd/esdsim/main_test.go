package main

import (
	"strings"
	"testing"

	esd "github.com/esdsim/esd"
)

func TestResolveScheme(t *testing.T) {
	cases := map[string]string{
		"0": esd.SchemeBaseline, "1": esd.SchemeSHA1,
		"2": esd.SchemeDeWrite, "3": esd.SchemeESD,
		"esd": esd.SchemeESD, "bcd": esd.SchemeBCD,
		"dewrite": esd.SchemeDeWrite,
	}
	for in, want := range cases {
		got, err := resolveScheme(in)
		if err != nil || got != want {
			t.Errorf("resolveScheme(%q) = %q, %v", in, got, err)
		}
	}
	if _, err := resolveScheme("nope"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestPrintJSON(t *testing.T) {
	sys, err := esd.NewSystem(esd.DefaultConfig(), esd.SchemeESD)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetWarmup(500)
	res, err := sys.RunWorkload("leela", 1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := printJSON(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"scheme": "esd"`, `"dedup_rate"`, `"write_mean_ns"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s:\n%s", want, out)
		}
	}
}

func TestCompareSchemesRuns(t *testing.T) {
	cfg := esd.DefaultConfig()
	cfg.PCM.CapacityBytes = 1 << 28
	if err := compareSchemes(cfg, "leela", 1, 500, 1500); err != nil {
		t.Fatal(err)
	}
	if err := compareSchemes(cfg, "nosuch", 1, 10, 10); err == nil {
		t.Fatal("unknown app accepted")
	}
}
