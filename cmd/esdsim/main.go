// Command esdsim is the trace-driven NVMM simulator CLI, mirroring the
// paper artifact's nvmain.fast front end: pick a scheme (0: Baseline,
// 1: Dedup_SHA1, 2: DeWrite, 3: ESD), a workload (a built-in application
// profile or a trace file), and get read/write/energy/latency statistics.
//
// Examples:
//
//	esdsim -scheme 3 -app lbm -n 200000
//	esdsim -scheme esd -trace lbm.esdt -latency lbm_lat.txt
//	esdsim -scheme esd -app lbm -metrics-addr :9090 -pprof
//	esdsim -scheme esd -app lbm -trace-out events.jsonl -trace-sample 64
//	esdsim -list
//	esdsim -config
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	esd "github.com/esdsim/esd"
	"github.com/esdsim/esd/internal/server"
	"github.com/esdsim/esd/internal/trace"
)

var schemeByIndex = map[string]string{
	"0": esd.SchemeBaseline,
	"1": esd.SchemeSHA1,
	"2": esd.SchemeDeWrite,
	"3": esd.SchemeESD,
	"4": esd.SchemeESDCaram,
}

func resolveScheme(s string) (string, error) {
	if name, ok := schemeByIndex[s]; ok {
		return name, nil
	}
	valid := append(esd.SchemeNames(), esd.SchemeBCD, esd.SchemeESDCaram)
	for _, name := range valid {
		if name == s {
			return name, nil
		}
	}
	return "", fmt.Errorf("unknown scheme %q (use 0-4 or %s)", s, strings.Join(valid, ", "))
}

// metricsServerHook, when set (by tests), is invoked after a run completes
// while the -metrics-addr server is still up, with the server's base URL.
var metricsServerHook func(url string)

func main() {
	if err := cliMain(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "esdsim:", err)
		os.Exit(1)
	}
}

// cliMain is the testable body of the command: it parses args, runs the
// requested simulation and writes human-readable output to stdout.
func cliMain(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("esdsim", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		schemeFlag  = fs.String("scheme", "3", "scheme: 0/baseline, 1/dedup-sha1, 2/dewrite, 3/esd, 4/esd+caram")
		app         = fs.String("app", "", "built-in application profile (see -list)")
		mix         = fs.String("mix", "", "comma-separated applications run as a multi-programmed mix")
		traceFile   = fs.String("trace", "", "binary trace file (overrides -app)")
		n           = fs.Int("n", 100000, "measured requests")
		warmup      = fs.Int("warmup", 50000, "unmeasured warm-up requests (profiles only)")
		seed        = fs.Uint64("seed", 1, "generator seed")
		verify      = fs.Bool("verify", false, "verify every read against the last written content")
		latency     = fs.String("latency", "", "write the write-latency CDF to this file")
		list        = fs.Bool("list", false, "list application profiles and exit")
		showConfig  = fs.Bool("config", false, "print the system configuration and exit")
		compare     = fs.Bool("compare", false, "run all four schemes on the workload and print a comparison")
		withTree    = fs.Bool("integrity", false, "enable the Merkle counter tree (replay protection for encryption counters)")
		jsonOut     = fs.Bool("json", false, "emit the result as JSON instead of text")
		metricsAddr = fs.String("metrics-addr", "", "serve live metrics over HTTP on this address (/metrics, /debug/vars)")
		pprofFlag   = fs.Bool("pprof", false, "also mount net/http/pprof on the metrics server (needs -metrics-addr)")
		traceOut    = fs.String("trace-out", "", "write sampled write-path events to this file")
		traceFormat = fs.String("trace-format", "jsonl", "event trace encoding: jsonl or chrome")
		traceSample = fs.Int("trace-sample", 1, "trace every Nth write/read event (rare events always traced)")
		shards      = fs.Int("shards", 1, "partition the address space across N concurrent shards (sharded replay; ignores -warmup)")
		coalesce    = fs.Bool("coalesce", false, "with -shards: coalesce same-address writes within a batch")
		slow        = fs.Duration("slow", 0, "log requests whose simulated latency reaches this threshold (0 disables)")
		slowMax     = fs.Int("slow-max", 100, "cap on slow-request log lines (0 = unlimited)")
		deviceStats = fs.Bool("device-stats", false, "after the run, dump the device-health document (wear shape, per-bank rows, energy split, dedup effectiveness) as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprintln(stdout, "Available application profiles:")
		for _, p := range esd.Profiles() {
			fmt.Fprintf(stdout, "  %-14s %-13s dup=%5.1f%%  zero=%5.1f%%  writes=%4.0f%%  footprint=%6d lines\n",
				p.Name, p.Suite, p.DupRate*100, p.ZeroFrac*100, p.WriteRatio*100, p.FootprintLines)
		}
		return nil
	}

	cfg := esd.DefaultConfig()
	cfg.Seed = *seed
	cfg.Crypto.IntegrityEnabled = *withTree
	if *showConfig {
		fmt.Fprintf(stdout, "Table I configuration:\n")
		fmt.Fprintf(stdout, "  CPU:    %d cores @ %.0f GHz, %d outstanding requests\n",
			cfg.CPU.Cores, cfg.CPU.ClockHz/1e9, cfg.CPU.MaxOutstanding)
		fmt.Fprintf(stdout, "  L1/L2/L3: %dKB / %dKB / %dMB, all %d-way, 64 B lines\n",
			cfg.L1.Size>>10, cfg.L2.Size>>10, cfg.L3.Size>>20, cfg.L3.Ways)
		fmt.Fprintf(stdout, "  PCM:    %d GB, %d banks, read %v / write %v, %.2f/%.2f nJ\n",
			cfg.PCM.CapacityBytes>>30, cfg.PCM.Banks, cfg.PCM.ReadLatency,
			cfg.PCM.WriteLatency, cfg.PCM.ReadEnergy, cfg.PCM.WriteEnergy)
		fmt.Fprintf(stdout, "  Meta:   EFIT cache %d KB, AMT cache %d KB\n",
			cfg.Meta.EFITCacheBytes>>10, cfg.Meta.AMTCacheBytes>>10)
		fmt.Fprintf(stdout, "  Hashes: SHA-1 %v, MD5 %v, CRC %v; AES %v\n",
			cfg.FP.SHA1Latency, cfg.FP.MD5Latency, cfg.FP.CRCLatency, cfg.Crypto.EncryptLatency)
		return nil
	}

	if *compare {
		if *app == "" {
			return fmt.Errorf("-compare needs -app")
		}
		return compareSchemes(stdout, cfg, *app, *seed, *warmup, *n)
	}

	scheme, err := resolveScheme(*schemeFlag)
	if err != nil {
		return err
	}
	if *pprofFlag && *metricsAddr == "" {
		return fmt.Errorf("-pprof needs -metrics-addr")
	}

	if *shards > 1 {
		if *verify || *traceOut != "" {
			return fmt.Errorf("-shards does not support -verify or -trace-out (per-request oracle and event traces are single-shard features)")
		}
		stream, err := pickStream(*traceFile, *mix, *app, *seed, *n)
		if err != nil {
			return err
		}
		return runSharded(stdout, cfg, scheme, stream, shardRun{
			shards:      *shards,
			coalesce:    *coalesce,
			metricsAddr: *metricsAddr,
			pprof:       *pprofFlag,
			jsonOut:     *jsonOut,
			latency:     *latency,
			deviceStats: *deviceStats,
		})
	}

	// Telemetry options: any observability flag switches the Sink on.
	var sysOpts []esd.SystemOption
	if *metricsAddr != "" {
		sysOpts = append(sysOpts, esd.WithMetrics())
	}
	var traceW *os.File
	if *traceOut != "" {
		traceW, err = os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer traceW.Close()
		switch *traceFormat {
		case "jsonl":
			sysOpts = append(sysOpts, esd.WithEventTrace(traceW))
		case "chrome":
			sysOpts = append(sysOpts, esd.WithChromeTrace(traceW))
		default:
			return fmt.Errorf("unknown -trace-format %q (want jsonl or chrome)", *traceFormat)
		}
		if *traceSample > 1 {
			sysOpts = append(sysOpts, esd.WithTraceSampling(*traceSample))
		}
	}

	sys, err := esd.NewSystem(cfg, scheme, sysOpts...)
	if err != nil {
		return err
	}
	sys.SetVerifyReads(*verify)
	if *slow > 0 {
		sys.SetSlowRequestLog(os.Stderr, esd.Time(slow.Nanoseconds())*esd.Nanosecond, *slowMax)
	}

	var srv *esd.MetricsServer
	if *metricsAddr != "" {
		srv, err = sys.ServeMetrics(*metricsAddr, *pprofFlag)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "metrics: %s/metrics\n", srv.URL())
		if *pprofFlag {
			fmt.Fprintf(stdout, "pprof:   %s/debug/pprof/\n", srv.URL())
		}
	}

	var stream esd.Stream
	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		stream = trace.NewReader(f)
	case *mix != "":
		sys.SetWarmup(*warmup)
		stream, err = esd.MixStream(*seed, *warmup+*n, strings.Split(*mix, ",")...)
		if err != nil {
			return err
		}
	case *app != "":
		sys.SetWarmup(*warmup)
		stream, err = esd.WorkloadStream(*app, *seed, *warmup+*n)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -app, -mix or -trace (see -list)")
	}

	res, err := sys.Run(stream)
	if err != nil {
		return err
	}
	if *traceOut != "" {
		if err := sys.CloseTrace(); err != nil {
			return fmt.Errorf("event trace: %w", err)
		}
		fmt.Fprintf(stdout, "event trace (%s) written to %s\n", *traceFormat, *traceOut)
	}
	if srv != nil && metricsServerHook != nil {
		metricsServerHook(srv.URL())
	}
	if *jsonOut {
		if err := printJSON(stdout, res); err != nil {
			return err
		}
	} else {
		printResult(stdout, res)
	}
	if *deviceStats {
		if err := printDeviceStats(stdout, scheme, []esd.DeviceHealthSnapshot{sys.DeviceHealth()}, sys.Stats()); err != nil {
			return err
		}
	}

	if *latency != "" {
		f, err := os.Create(*latency)
		if err != nil {
			return err
		}
		defer f.Close()
		fmt.Fprintf(f, "# write-latency CDF, scheme=%s\n# latency_ns cumulative_fraction\n", scheme)
		for _, p := range res.WriteHist.CDF() {
			fmt.Fprintf(f, "%.1f %.6f\n", p.Latency.Nanoseconds(), p.Frac)
		}
		fmt.Fprintf(stdout, "write-latency CDF written to %s\n", *latency)
	}
	return nil
}

// pickStream resolves the workload source for a sharded replay: a binary
// trace file, a multi-programmed mix, or a built-in application profile.
// The caller replays every record (no warm-up split).
func pickStream(traceFile, mix, app string, seed uint64, n int) (esd.Stream, error) {
	switch {
	case traceFile != "":
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		// The process exits right after the replay; the descriptor rides
		// along until then.
		return trace.NewReader(f), nil
	case mix != "":
		return esd.MixStream(seed, n, strings.Split(mix, ",")...)
	case app != "":
		return esd.WorkloadStream(app, seed, n)
	default:
		return nil, fmt.Errorf("need -app, -mix or -trace (see -list)")
	}
}

// shardRun bundles the sharded-replay knobs.
type shardRun struct {
	shards      int
	coalesce    bool
	metricsAddr string
	pprof       bool
	jsonOut     bool
	latency     string
	deviceStats bool
}

// printDeviceStats dumps the same device-health document /debug/device
// serves, so offline runs and live serving share one JSON shape.
func printDeviceStats(w io.Writer, scheme string, snaps []esd.DeviceHealthSnapshot, st esd.SchemeStats) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(server.DeviceFromHealth(scheme, snaps, st))
}

// runSharded replays the stream through a ShardedSystem and prints the
// merged summary.
func runSharded(w io.Writer, cfg esd.Config, scheme string, stream esd.Stream, opts shardRun) error {
	sysOpts := []esd.ShardOption{esd.WithShards(opts.shards)}
	if opts.coalesce {
		sysOpts = append(sysOpts, esd.WithWriteCoalescing())
	}
	if opts.metricsAddr != "" {
		sysOpts = append(sysOpts, esd.WithShardMetrics())
	}
	sys, err := esd.NewShardedSystem(cfg, scheme, sysOpts...)
	if err != nil {
		return err
	}
	defer sys.Close()
	if opts.metricsAddr != "" {
		srv, err := sys.ServeMetrics(opts.metricsAddr, opts.pprof)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(w, "metrics: %s/metrics (per-shard labels)\n", srv.URL())
	}
	res, err := sys.Run(stream)
	if err != nil {
		return err
	}
	if opts.jsonOut {
		if err := printShardedJSON(w, scheme, res); err != nil {
			return err
		}
	} else {
		printShardedResult(w, scheme, res)
	}
	if opts.deviceStats {
		if err := printDeviceStats(w, scheme, sys.DeviceHealths(), sys.LiveStats()); err != nil {
			return err
		}
	}
	if opts.latency != "" {
		f, err := os.Create(opts.latency)
		if err != nil {
			return err
		}
		defer f.Close()
		fmt.Fprintf(f, "# write-latency CDF, scheme=%s shards=%d\n# latency_ns cumulative_fraction\n", scheme, res.Shards)
		for _, p := range res.WriteHist.CDF() {
			fmt.Fprintf(f, "%.1f %.6f\n", p.Latency.Nanoseconds(), p.Frac)
		}
		fmt.Fprintf(w, "write-latency CDF written to %s\n", opts.latency)
	}
	return nil
}

// shardedJSON is the machine-readable shape of a sharded replay.
type shardedJSON struct {
	Scheme       string  `json:"scheme"`
	Shards       int     `json:"shards"`
	Requests     uint64  `json:"requests"`
	Reads        uint64  `json:"reads"`
	Writes       uint64  `json:"writes"`
	WriteMeanNs  float64 `json:"write_mean_ns"`
	WriteP99Ns   float64 `json:"write_p99_ns"`
	ReadMeanNs   float64 `json:"read_mean_ns"`
	ReadP99Ns    float64 `json:"read_p99_ns"`
	DedupRate    float64 `json:"dedup_rate"`
	UniqueWrites uint64  `json:"unique_writes"`
	EnergyNJ     float64 `json:"energy_nj"`
	MediaWrites  uint64  `json:"media_writes"`
	MetadataNVMM int64   `json:"metadata_nvmm_bytes"`
	MaxWear      uint64  `json:"max_wear"`
	Coalesced    uint64  `json:"coalesced_writes"`
	ElapsedNs    float64 `json:"simulated_ns"`
}

func printShardedJSON(w io.Writer, scheme string, res *esd.ShardReplayResult) error {
	out := shardedJSON{
		Scheme:       scheme,
		Shards:       res.Shards,
		Requests:     res.Requests,
		Reads:        res.Reads,
		Writes:       res.Writes,
		WriteMeanNs:  res.WriteHist.Mean().Nanoseconds(),
		WriteP99Ns:   res.WriteHist.Percentile(0.99).Nanoseconds(),
		ReadMeanNs:   res.ReadHist.Mean().Nanoseconds(),
		ReadP99Ns:    res.ReadHist.Percentile(0.99).Nanoseconds(),
		DedupRate:    res.Scheme.DedupRate(),
		UniqueWrites: res.Scheme.UniqueWrites,
		EnergyNJ:     res.Energy.Total(),
		MediaWrites:  res.DeviceWrites,
		MetadataNVMM: res.MetadataNVMM,
		MaxWear:      res.MaxWear,
		Coalesced:    res.Coalesced,
		ElapsedNs:    res.Now.Nanoseconds(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func printShardedResult(w io.Writer, scheme string, res *esd.ShardReplayResult) {
	fmt.Fprintf(w, "scheme=%s shards=%d requests=%d (reads=%d writes=%d) simulated=%v\n",
		scheme, res.Shards, res.Requests, res.Reads, res.Writes, res.Now)
	fmt.Fprintf(w, "writes:  mean=%v p50=%v p99=%v max=%v\n",
		res.WriteHist.Mean(), res.WriteHist.Percentile(0.5), res.WriteHist.Percentile(0.99), res.WriteHist.Max())
	fmt.Fprintf(w, "reads:   mean=%v p50=%v p99=%v max=%v\n",
		res.ReadHist.Mean(), res.ReadHist.Percentile(0.5), res.ReadHist.Percentile(0.99), res.ReadHist.Max())
	st := res.Scheme
	fmt.Fprintf(w, "dedup:   eliminated=%d/%d (%.1f%%)  unique-writes=%d  coalesced=%d\n",
		st.DedupWrites, st.Writes, st.DedupRate()*100, st.UniqueWrites, res.Coalesced)
	fmt.Fprintf(w, "energy:  total=%.1f uJ   device: media-writes=%d  metadata-nvmm=%d B  wear(max=%d mean=%.2f)\n",
		res.Energy.Total()/1000, res.DeviceWrites, res.MetadataNVMM, res.MaxWear, res.MeanWear)
}

// jsonResult is the machine-readable shape of a run.
type jsonResult struct {
	Scheme       string  `json:"scheme"`
	Requests     uint64  `json:"requests"`
	Reads        uint64  `json:"reads"`
	Writes       uint64  `json:"writes"`
	WriteMeanNs  float64 `json:"write_mean_ns"`
	WriteP99Ns   float64 `json:"write_p99_ns"`
	ReadMeanNs   float64 `json:"read_mean_ns"`
	ReadP99Ns    float64 `json:"read_p99_ns"`
	DedupRate    float64 `json:"dedup_rate"`
	UniqueWrites uint64  `json:"unique_writes"`
	NVMMLookups  uint64  `json:"fp_nvmm_lookups"`
	EnergyNJ     float64 `json:"energy_nj"`
	MediaWrites  uint64  `json:"media_writes"`
	MetadataNVMM int64   `json:"metadata_nvmm_bytes"`
	MaxWear      uint64  `json:"max_wear"`
	ElapsedNs    float64 `json:"simulated_ns"`
}

func printJSON(w io.Writer, res *esd.RunResult) error {
	out := jsonResult{
		Scheme:       res.SchemeName,
		Requests:     res.Requests,
		Reads:        res.Reads,
		Writes:       res.Writes,
		WriteMeanNs:  res.WriteHist.Mean().Nanoseconds(),
		WriteP99Ns:   res.WriteHist.Percentile(0.99).Nanoseconds(),
		ReadMeanNs:   res.ReadHist.Mean().Nanoseconds(),
		ReadP99Ns:    res.ReadHist.Percentile(0.99).Nanoseconds(),
		DedupRate:    res.Scheme.DedupRate(),
		UniqueWrites: res.Scheme.UniqueWrites,
		NVMMLookups:  res.Scheme.FPNVMMLookups,
		EnergyNJ:     res.Energy.Total(),
		MediaWrites:  res.DeviceWrites,
		MetadataNVMM: res.MetadataNVMM,
		MaxWear:      res.Wear.MaxWear,
		ElapsedNs:    res.Elapsed.Nanoseconds(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func printResult(w io.Writer, res *esd.RunResult) {
	fmt.Fprintf(w, "scheme=%s requests=%d (reads=%d writes=%d) simulated=%v\n",
		res.SchemeName, res.Requests, res.Reads, res.Writes, res.Elapsed)
	fmt.Fprintf(w, "writes:  mean=%v p50=%v p99=%v p99.9=%v max=%v\n",
		res.WriteHist.Mean(), res.WriteHist.Percentile(0.5), res.WriteHist.Percentile(0.99),
		res.WriteHist.Percentile(0.999), res.WriteHist.Max())
	fmt.Fprintf(w, "reads:   mean=%v p50=%v p99=%v p99.9=%v max=%v\n",
		res.ReadHist.Mean(), res.ReadHist.Percentile(0.5), res.ReadHist.Percentile(0.99),
		res.ReadHist.Percentile(0.999), res.ReadHist.Max())
	st := res.Scheme
	fmt.Fprintf(w, "dedup:   eliminated=%d/%d (%.1f%%)  unique-writes=%d  fp-nvmm-lookups=%d\n",
		st.DedupWrites, st.Writes, st.DedupRate()*100, st.UniqueWrites, st.FPNVMMLookups)
	fmt.Fprintf(w, "energy:  total=%.1f uJ (media=%.1f fp=%.1f crypto=%.1f sram=%.2f)\n",
		res.Energy.Total()/1000, res.Energy.Media/1000, res.Energy.Fingerprint/1000,
		res.Energy.Crypto/1000, res.Energy.SRAM/1000)
	fmt.Fprintf(w, "device:  media-writes=%d  metadata-nvmm=%d B  wear(max=%d mean=%.2f)\n",
		res.DeviceWrites, res.MetadataNVMM, res.Wear.MaxWear, res.Wear.MeanWear)
	b := res.Breakdown
	if total := b.Total(); total > 0 {
		fmt.Fprintf(w, "write-path profile: fp-compute=%.1f%% fp-nvmm=%.1f%% read-compare=%.1f%% write=%.1f%%\n",
			pct(b.FPCompute+b.FPLookupSRAM, total), pct(b.FPLookupNVMM, total),
			pct(b.ReadCompare, total), pct(b.Encrypt+b.Queue+b.Media+b.Metadata, total))
	}
}

func pct(part, total esd.Time) float64 { return 100 * float64(part) / float64(total) }

// compareSchemes replays the same workload under every scheme and prints a
// side-by-side summary with baseline-normalized columns.
func compareSchemes(w io.Writer, cfg esd.Config, app string, seed uint64, warmup, n int) error {
	type row struct {
		name string
		res  *esd.RunResult
	}
	var rows []row
	for _, name := range esd.SchemeNames() {
		sys, err := esd.NewSystem(cfg, name)
		if err != nil {
			return err
		}
		sys.SetWarmup(warmup)
		res, err := sys.RunWorkload(app, seed, warmup+n)
		if err != nil {
			return err
		}
		rows = append(rows, row{name, res})
	}
	base := rows[0].res
	fmt.Fprintf(w, "workload=%s requests=%d (after %d warm-up)\n\n", app, n, warmup)
	fmt.Fprintf(w, "%-12s %10s %10s %9s %9s %9s %10s %11s\n",
		"scheme", "wMean", "rMean", "wSpeedup", "rSpeedup", "dedup-%", "energy-rel", "data-writes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %9.0fns %9.0fns %8.2fx %8.2fx %9.1f %10.2f %11d\n",
			r.name,
			r.res.WriteHist.Mean().Nanoseconds(), r.res.ReadHist.Mean().Nanoseconds(),
			ratioOf(base.WriteHist.Mean(), r.res.WriteHist.Mean()),
			ratioOf(base.ReadHist.Mean(), r.res.ReadHist.Mean()),
			r.res.Scheme.DedupRate()*100,
			r.res.Energy.Total()/base.Energy.Total(),
			r.res.DataWrites)
	}
	return nil
}

func ratioOf(a, b esd.Time) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}
