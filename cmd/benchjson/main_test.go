package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/esdsim/esd/internal/fingerprint
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFingerprintECC-4   	 2303514	       517.9 ns/op	 123.57 MB/s	       0 B/op	       0 allocs/op
PASS
ok  	github.com/esdsim/esd/internal/fingerprint	1.709s
pkg: github.com/esdsim/esd
BenchmarkShardedThroughput/dup-heavy/shards=4-4         	  131062	      9097 ns/op	    439914 writes/s	     310 B/op	       3 allocs/op
PASS
`

func TestParse(t *testing.T) {
	var doc Doc
	if err := parse(strings.NewReader(sample), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	if doc.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", doc.CPU)
	}

	fp := doc.Benchmarks[0]
	if fp.Name != "BenchmarkFingerprintECC-4" || fp.Package != "github.com/esdsim/esd/internal/fingerprint" {
		t.Errorf("first entry = %q in %q", fp.Name, fp.Package)
	}
	if fp.Iterations != 2303514 || fp.NsPerOp != 517.9 {
		t.Errorf("iterations/ns = %d / %v", fp.Iterations, fp.NsPerOp)
	}
	if fp.MBPerS == nil || *fp.MBPerS != 123.57 {
		t.Errorf("MB/s = %v", fp.MBPerS)
	}
	if fp.AllocsPerOp == nil || *fp.AllocsPerOp != 0 {
		t.Errorf("allocs/op = %v", fp.AllocsPerOp)
	}

	sh := doc.Benchmarks[1]
	if sh.Package != "github.com/esdsim/esd" {
		t.Errorf("second entry package = %q", sh.Package)
	}
	if sh.Metrics["writes/s"] != 439914 {
		t.Errorf("writes/s = %v", sh.Metrics["writes/s"])
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken",                  // too few fields
		"BenchmarkBroken notanint 1 ns/op", // bad iteration count
		"BenchmarkBroken 10 x ns/op",       // bad value
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}
