package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/esdsim/esd/internal/fingerprint
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFingerprintECC-4   	 2303514	       517.9 ns/op	 123.57 MB/s	       0 B/op	       0 allocs/op
PASS
ok  	github.com/esdsim/esd/internal/fingerprint	1.709s
pkg: github.com/esdsim/esd
BenchmarkShardedThroughput/dup-heavy/shards=4-4         	  131062	      9097 ns/op	    439914 writes/s	     310 B/op	       3 allocs/op
PASS
`

func TestParse(t *testing.T) {
	var doc Doc
	if err := parse(strings.NewReader(sample), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	if doc.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", doc.CPU)
	}

	fp := doc.Benchmarks[0]
	if fp.Name != "BenchmarkFingerprintECC-4" || fp.Package != "github.com/esdsim/esd/internal/fingerprint" {
		t.Errorf("first entry = %q in %q", fp.Name, fp.Package)
	}
	if fp.Iterations != 2303514 || fp.NsPerOp != 517.9 {
		t.Errorf("iterations/ns = %d / %v", fp.Iterations, fp.NsPerOp)
	}
	if fp.MBPerS == nil || *fp.MBPerS != 123.57 {
		t.Errorf("MB/s = %v", fp.MBPerS)
	}
	if fp.AllocsPerOp == nil || *fp.AllocsPerOp != 0 {
		t.Errorf("allocs/op = %v", fp.AllocsPerOp)
	}

	sh := doc.Benchmarks[1]
	if sh.Package != "github.com/esdsim/esd" {
		t.Errorf("second entry package = %q", sh.Package)
	}
	if sh.Metrics["writes/s"] != 439914 {
		t.Errorf("writes/s = %v", sh.Metrics["writes/s"])
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken",                  // too few fields
		"BenchmarkBroken notanint 1 ns/op", // bad iteration count
		"BenchmarkBroken 10 x ns/op",       // bad value
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}

// TestMergeRepeats pins the -count=N collapse: medians for timings and
// custom metrics, max for allocs, order preserved, Samples recorded.
func TestMergeRepeats(t *testing.T) {
	const repeated = `pkg: github.com/esdsim/esd
BenchmarkSystemWriteESD-4   	 1000000	      1600 ns/op	      75 B/op	       0 allocs/op
BenchmarkSystemWriteESD-4   	 1000000	      1500 ns/op	      70 B/op	       0 allocs/op
BenchmarkSystemWriteESD-4   	  900000	      1900 ns/op	      80 B/op	       1 allocs/op
BenchmarkSystemWriteSHA1-4  	 2000000	       800 ns/op	    500000 writes/s	      34 B/op	       0 allocs/op
BenchmarkSystemWriteSHA1-4  	 2000000	       900 ns/op	    400000 writes/s	      34 B/op	       0 allocs/op
`
	var doc Doc
	if err := parse(strings.NewReader(repeated), &doc); err != nil {
		t.Fatal(err)
	}
	mergeRepeats(&doc)
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("merged to %d entries, want 2", len(doc.Benchmarks))
	}
	esd := doc.Benchmarks[0]
	if esd.Name != "BenchmarkSystemWriteESD-4" || esd.Samples != 3 {
		t.Errorf("first entry %q samples=%d, want ESD/3", esd.Name, esd.Samples)
	}
	if esd.NsPerOp != 1600 {
		t.Errorf("median ns/op = %v, want 1600", esd.NsPerOp)
	}
	if esd.BPerOp == nil || *esd.BPerOp != 75 {
		t.Errorf("median B/op = %v, want 75", esd.BPerOp)
	}
	// One allocating run must survive the merge (max, not median).
	if esd.AllocsPerOp == nil || *esd.AllocsPerOp != 1 {
		t.Errorf("max allocs/op = %v, want 1", esd.AllocsPerOp)
	}
	sha := doc.Benchmarks[1]
	if sha.Samples != 2 || sha.NsPerOp != 850 {
		t.Errorf("even-count median: samples=%d ns/op=%v, want 2/850", sha.Samples, sha.NsPerOp)
	}
	if sha.Metrics["writes/s"] != 450000 {
		t.Errorf("metric median = %v, want 450000", sha.Metrics["writes/s"])
	}

	// A doc without repeats is untouched (no Samples stamped).
	var single Doc
	if err := parse(strings.NewReader(sample), &single); err != nil {
		t.Fatal(err)
	}
	mergeRepeats(&single)
	if len(single.Benchmarks) != 2 || single.Benchmarks[0].Samples != 0 {
		t.Errorf("no-repeat doc altered: %+v", single.Benchmarks)
	}
}
