package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, dir, name string, doc Doc) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func bench(name string, ns float64, allocs float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1000, NsPerOp: ns, AllocsPerOp: ptr(allocs)}
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "base.json", Doc{Label: "PR3", Benchmarks: []Benchmark{
		bench("BenchmarkWrite-8", 1000, 0),
		bench("BenchmarkRead-8", 500, 0),
		bench("BenchmarkGone-8", 200, 0),
	}})

	cases := []struct {
		name     string
		cur      []Benchmark
		args     []string
		wantExit int
		wantOut  []string
	}{
		{
			name: "within threshold passes",
			cur: []Benchmark{
				bench("BenchmarkWrite-8", 1080, 0), // +8%
				bench("BenchmarkRead-8", 490, 0),
			},
			wantExit: 0,
			wantOut:  []string{"PASS", "+8.0%", "gone"},
		},
		{
			name: "regression beyond threshold fails",
			cur: []Benchmark{
				bench("BenchmarkWrite-8", 1200, 0), // +20%
				bench("BenchmarkRead-8", 490, 0),
			},
			wantExit: 1,
			wantOut:  []string{"REGRESSED", "FAIL"},
		},
		{
			name: "custom threshold admits larger delta",
			cur: []Benchmark{
				bench("BenchmarkWrite-8", 1200, 0),
				bench("BenchmarkRead-8", 490, 0),
			},
			args:     []string{"-max-regress", "25"},
			wantExit: 0,
			wantOut:  []string{"PASS"},
		},
		{
			name: "new allocations on a zero-alloc benchmark fail",
			cur: []Benchmark{
				bench("BenchmarkWrite-8", 1000, 2),
				bench("BenchmarkRead-8", 500, 0),
			},
			wantExit: 1,
			wantOut:  []string{"ALLOCS 0 -> 2", "FAIL"},
		},
		{
			name: "new benchmarks are informational",
			cur: []Benchmark{
				bench("BenchmarkWrite-8", 1000, 0),
				bench("BenchmarkRead-8", 500, 0),
				bench("BenchmarkFresh-8", 999, 0),
			},
			wantExit: 0,
			wantOut:  []string{"new", "PASS"},
		},
		{
			name: "require met passes",
			cur: []Benchmark{
				bench("BenchmarkWrite-8", 250, 0), // 4x
				bench("BenchmarkRead-8", 490, 0),
			},
			args:     []string{"-require", "BenchmarkWrite=3"},
			wantExit: 0,
			wantOut:  []string{"x4.00", "PASS"},
		},
		{
			name: "require missed fails",
			cur: []Benchmark{
				bench("BenchmarkWrite-8", 500, 0), // only 2x
				bench("BenchmarkRead-8", 490, 0),
			},
			args:     []string{"-require", "BenchmarkWrite=3"},
			wantExit: 1,
			wantOut:  []string{"BELOW x3 (x2.00)", "FAIL"},
		},
		{
			name: "require matching nothing fails",
			cur: []Benchmark{
				bench("BenchmarkWrite-8", 250, 0),
				bench("BenchmarkRead-8", 490, 0),
			},
			args:     []string{"-require", "BenchmarkRenamed=3"},
			wantExit: 1,
			wantOut:  []string{`"BenchmarkRenamed" matched no benchmark`, "FAIL"},
		},
		{
			name: "require applies per matching benchmark",
			cur: []Benchmark{
				bench("BenchmarkWrite-8", 250, 0), // 4x
				bench("BenchmarkRead-8", 400, 0),  // 1.25x, matched by Bench
			},
			args:     []string{"-require", "Bench=1.2"},
			wantExit: 0,
			wantOut:  []string{"PASS"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := writeDoc(t, dir, "cur.json", Doc{Label: "PR4", Benchmarks: tc.cur})
			var out, errOut strings.Builder
			args := append(append([]string{}, tc.args...), base, cur)
			exit := runCompare(args, &out, &errOut)
			if exit != tc.wantExit {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", exit, tc.wantExit, out.String(), errOut.String())
			}
			for _, want := range tc.wantOut {
				if !strings.Contains(out.String(), want) {
					t.Errorf("output missing %q:\n%s", want, out.String())
				}
			}
		})
	}
}

func TestCompareUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if exit := runCompare(nil, &out, &errOut); exit != 2 {
		t.Errorf("no args: exit = %d, want 2", exit)
	}
	if exit := runCompare([]string{"missing.json", "alsomissing.json"}, &out, &errOut); exit != 2 {
		t.Errorf("missing files: exit = %d, want 2", exit)
	}
}
