// Command benchjson converts `go test -bench` text output into the
// machine-readable JSON document the repo's perf-regression trajectory
// stores (BENCH_*.json): one entry per benchmark with ns/op, B/op,
// allocs/op, MB/s and any custom metrics (e.g. the sharded engine's
// writes/s), plus enough environment metadata to interpret the numbers.
//
// It reads benchmark output from stdin (or the files given as arguments)
// and writes JSON to stdout or -o. scripts/bench.sh is the canonical
// driver:
//
//	go test -bench=... -benchmem ./... | benchjson -label PR3 -o BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and
	// GOMAXPROCS suffix (e.g. "BenchmarkFingerprintECC-8").
	Name string `json:"name"`
	// Package is the import path from the preceding "pkg:" line.
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// MBPerS and the allocation pair are present only when the benchmark
	// reported them (-benchmem, b.SetBytes).
	MBPerS      *float64 `json:"mb_per_s,omitempty"`
	BPerOp      *float64 `json:"b_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "writes/s").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted document: a labeled, environment-stamped point of
// the perf trajectory.
type Doc struct {
	Label      string      `json:"label"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Generated  string      `json:"generated"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:], os.Stdout, os.Stderr))
	}
	label := flag.String("label", "dev", "trajectory label stamped into the document (e.g. PR3)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchjson [-label NAME] [-o FILE] [bench-output files...]\n\nReads `go test -bench` output (stdin when no files) and emits BENCH_*.json.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	doc := Doc{
		Label:     *label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Generated: time.Now().UTC().Format(time.RFC3339),
	}

	readers := []io.Reader{}
	if flag.NArg() == 0 {
		readers = append(readers, os.Stdin)
	}
	for _, name := range flag.Args() {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		readers = append(readers, f)
	}
	for _, r := range readers {
		if err := parse(r, &doc); err != nil {
			fatal(err)
		}
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse scans one `go test -bench` output stream, tracking the current
// "pkg:" context and collecting every Benchmark* result line into doc.
func parse(r io.Reader, doc *Doc) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:") && doc.CPU == "":
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		b.Package = pkg
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	return sc.Err()
}

// parseLine decodes one result line: name, iteration count, then
// (value, unit) pairs such as "517.9 ns/op" or "439914 writes/s".
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "MB/s":
			b.MBPerS = ptr(v)
		case "B/op":
			b.BPerOp = ptr(v)
		case "allocs/op":
			b.AllocsPerOp = ptr(v)
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

func ptr(v float64) *float64 { return &v }
