// Command benchjson converts `go test -bench` text output into the
// machine-readable JSON document the repo's perf-regression trajectory
// stores (BENCH_*.json): one entry per benchmark with ns/op, B/op,
// allocs/op, MB/s and any custom metrics (e.g. the sharded engine's
// writes/s), plus enough environment metadata to interpret the numbers.
//
// It reads benchmark output from stdin (or the files given as arguments)
// and writes JSON to stdout or -o. scripts/bench.sh is the canonical
// driver:
//
//	go test -bench=... -benchmem ./... | benchjson -label PR3 -o BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and
	// GOMAXPROCS suffix (e.g. "BenchmarkFingerprintECC-8").
	Name string `json:"name"`
	// Package is the import path from the preceding "pkg:" line.
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// MBPerS and the allocation pair are present only when the benchmark
	// reported them (-benchmem, b.SetBytes).
	MBPerS      *float64 `json:"mb_per_s,omitempty"`
	BPerOp      *float64 `json:"b_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "writes/s").
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Samples is how many runs (go test -count=N) were merged into this
	// entry; absent for a single run.
	Samples int `json:"samples,omitempty"`
}

// Doc is the emitted document: a labeled, environment-stamped point of
// the perf trajectory.
type Doc struct {
	Label      string      `json:"label"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Generated  string      `json:"generated"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:], os.Stdout, os.Stderr))
	}
	label := flag.String("label", "dev", "trajectory label stamped into the document (e.g. PR3)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchjson [-label NAME] [-o FILE] [bench-output files...]\n\nReads `go test -bench` output (stdin when no files) and emits BENCH_*.json.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	doc := Doc{
		Label:     *label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Generated: time.Now().UTC().Format(time.RFC3339),
	}

	readers := []io.Reader{}
	if flag.NArg() == 0 {
		readers = append(readers, os.Stdin)
	}
	for _, name := range flag.Args() {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		readers = append(readers, f)
	}
	for _, r := range readers {
		if err := parse(r, &doc); err != nil {
			fatal(err)
		}
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}
	mergeRepeats(&doc)

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse scans one `go test -bench` output stream, tracking the current
// "pkg:" context and collecting every Benchmark* result line into doc.
func parse(r io.Reader, doc *Doc) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:") && doc.CPU == "":
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		b.Package = pkg
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	return sc.Err()
}

// parseLine decodes one result line: name, iteration count, then
// (value, unit) pairs such as "517.9 ns/op" or "439914 writes/s".
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "MB/s":
			b.MBPerS = ptr(v)
		case "B/op":
			b.BPerOp = ptr(v)
		case "allocs/op":
			b.AllocsPerOp = ptr(v)
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

func ptr(v float64) *float64 { return &v }

// mergeRepeats collapses repeated runs of one benchmark (go test -count=N)
// into a single entry per (package, name). Timings (ns/op, MB/s, B/op,
// custom metrics) take the median across runs — a single system-level run
// on a shared machine is noise-dominated — while allocs/op takes the
// maximum so one allocating run still trips the regression gate.
// Iterations report the median run's scale. First-appearance order is kept.
func mergeRepeats(doc *Doc) {
	type group struct {
		runs []Benchmark
	}
	order := make([]string, 0, len(doc.Benchmarks))
	groups := make(map[string]*group, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		key := b.Package + "\x00" + b.Name
		g, ok := groups[key]
		if !ok {
			g = &group{}
			groups[key] = g
			order = append(order, key)
		}
		g.runs = append(g.runs, b)
	}
	if len(order) == len(doc.Benchmarks) {
		return // no repeats
	}
	merged := make([]Benchmark, 0, len(order))
	for _, key := range order {
		runs := groups[key].runs
		out := runs[0]
		if n := len(runs); n > 1 {
			out.Samples = n
			out.NsPerOp = medianOf(runs, func(b Benchmark) (float64, bool) { return b.NsPerOp, true })
			out.Iterations = int64(medianOf(runs, func(b Benchmark) (float64, bool) { return float64(b.Iterations), true }))
			if v, ok := maybeMedian(runs, func(b Benchmark) *float64 { return b.MBPerS }); ok {
				out.MBPerS = ptr(v)
			}
			if v, ok := maybeMedian(runs, func(b Benchmark) *float64 { return b.BPerOp }); ok {
				out.BPerOp = ptr(v)
			}
			if v, ok := maybeMax(runs, func(b Benchmark) *float64 { return b.AllocsPerOp }); ok {
				out.AllocsPerOp = ptr(v)
			}
			if len(out.Metrics) > 0 {
				m := make(map[string]float64, len(out.Metrics))
				for unit := range out.Metrics {
					m[unit] = medianOf(runs, func(b Benchmark) (float64, bool) {
						v, ok := b.Metrics[unit]
						return v, ok
					})
				}
				out.Metrics = m
			}
		}
		merged = append(merged, out)
	}
	doc.Benchmarks = merged
}

// medianOf returns the median of get over the runs where it reports ok.
func medianOf(runs []Benchmark, get func(Benchmark) (float64, bool)) float64 {
	vals := make([]float64, 0, len(runs))
	for _, b := range runs {
		if v, ok := get(b); ok {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	if n := len(vals); n%2 == 1 {
		return vals[n/2]
	} else {
		return (vals[n/2-1] + vals[n/2]) / 2
	}
}

// maybeMedian is medianOf over an optional field, reporting whether any
// run carried it.
func maybeMedian(runs []Benchmark, get func(Benchmark) *float64) (float64, bool) {
	any := false
	v := medianOf(runs, func(b Benchmark) (float64, bool) {
		p := get(b)
		if p == nil {
			return 0, false
		}
		any = true
		return *p, true
	})
	return v, any
}

// maybeMax is the maximum of an optional field across runs.
func maybeMax(runs []Benchmark, get func(Benchmark) *float64) (float64, bool) {
	max, any := 0.0, false
	for _, b := range runs {
		if p := get(b); p != nil {
			if !any || *p > max {
				max = *p
			}
			any = true
		}
	}
	return max, any
}
