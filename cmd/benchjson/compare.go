package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// runCompare implements `benchjson compare [-max-regress PCT] BASE.json
// NEW.json`: it diffs two trajectory documents benchmark by benchmark and
// exits nonzero when any benchmark present in both regressed its ns/op by
// more than the threshold, or grew allocations from zero. Benchmarks that
// appear in only one document are reported but never fail the run (the
// suite is allowed to grow).
func runCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	maxRegress := fs.Float64("max-regress", 10, "fail when ns/op regresses by more than this percentage")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchjson compare [-max-regress PCT] BASE.json NEW.json\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	base, err := loadDoc(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	cur, err := loadDoc(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}

	baseByName := make(map[string]*Benchmark, len(base.Benchmarks))
	for i := range base.Benchmarks {
		baseByName[base.Benchmarks[i].Name] = &base.Benchmarks[i]
	}

	fmt.Fprintf(stdout, "comparing %s (base) -> %s, max ns/op regression %.1f%%\n",
		base.Label, cur.Label, *maxRegress)
	fmt.Fprintf(stdout, "%-52s %14s %14s %9s\n", "benchmark", "base ns/op", "new ns/op", "delta")

	failed := 0
	seen := make(map[string]bool, len(cur.Benchmarks))
	for i := range cur.Benchmarks {
		nb := &cur.Benchmarks[i]
		seen[nb.Name] = true
		ob, ok := baseByName[nb.Name]
		if !ok {
			fmt.Fprintf(stdout, "%-52s %14s %14.1f %9s\n", nb.Name, "-", nb.NsPerOp, "new")
			continue
		}
		delta := 0.0
		if ob.NsPerOp > 0 {
			delta = (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
		}
		verdict := ""
		if delta > *maxRegress {
			verdict = "  REGRESSED"
			failed++
		}
		if allocRegressed(ob, nb) {
			verdict += "  ALLOCS " + fmt.Sprintf("%.0f -> %.0f", *ob.AllocsPerOp, *nb.AllocsPerOp)
			failed++
		}
		fmt.Fprintf(stdout, "%-52s %14.1f %14.1f %+8.1f%%%s\n", nb.Name, ob.NsPerOp, nb.NsPerOp, delta, verdict)
	}
	var gone []string
	for name := range baseByName {
		if !seen[name] {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(stdout, "%-52s %14.1f %14s %9s\n", name, baseByName[name].NsPerOp, "-", "gone")
	}
	if failed > 0 {
		fmt.Fprintf(stdout, "FAIL: %d benchmark(s) regressed beyond %.1f%%\n", failed, *maxRegress)
		return 1
	}
	fmt.Fprintln(stdout, "PASS: no regression beyond threshold")
	return 0
}

// allocRegressed reports a zero-alloc benchmark that started allocating —
// the one alloc change a percentage threshold cannot express.
func allocRegressed(base, cur *Benchmark) bool {
	return base.AllocsPerOp != nil && cur.AllocsPerOp != nil &&
		*base.AllocsPerOp == 0 && *cur.AllocsPerOp > 0
}

func loadDoc(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in document", path)
	}
	return &doc, nil
}
