package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// requirement is one parsed -require clause: every benchmark whose name
// contains the substring must have sped up by at least the given factor
// (base ns/op / new ns/op >= factor).
type requirement struct {
	substr  string
	factor  float64
	matched int
}

// parseRequirements parses a comma-separated "substr=FACTOR,..." spec.
func parseRequirements(spec string) ([]requirement, error) {
	if spec == "" {
		return nil, nil
	}
	var reqs []requirement
	for _, part := range strings.Split(spec, ",") {
		sub, factorStr, ok := strings.Cut(part, "=")
		if !ok || sub == "" {
			return nil, fmt.Errorf("bad -require clause %q (want substr=FACTOR)", part)
		}
		f, err := strconv.ParseFloat(factorStr, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad -require factor in %q", part)
		}
		reqs = append(reqs, requirement{substr: sub, factor: f})
	}
	return reqs, nil
}

// runCompare implements `benchjson compare [-max-regress PCT] [-require
// SPEC] BASE.json NEW.json`: it diffs two trajectory documents benchmark
// by benchmark and exits nonzero when any benchmark present in both
// regressed its ns/op by more than the threshold, or grew allocations from
// zero. -require additionally demands minimum speedup factors: every
// benchmark whose name contains the clause's substring must have base/new
// ns/op at or above the factor, and a clause matching no benchmark fails
// the run (a renamed benchmark must not silently void the gate).
// Benchmarks that appear in only one document are reported but never fail
// the run (the suite is allowed to grow).
func runCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	maxRegress := fs.Float64("max-regress", 10, "fail when ns/op regresses by more than this percentage")
	requireSpec := fs.String("require", "", "comma-separated substr=FACTOR clauses: matching benchmarks must be at least FACTOR times faster than base")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchjson compare [-max-regress PCT] [-require SPEC] BASE.json NEW.json\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	reqs, err := parseRequirements(*requireSpec)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	base, err := loadDoc(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	cur, err := loadDoc(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}

	baseByName := make(map[string]*Benchmark, len(base.Benchmarks))
	for i := range base.Benchmarks {
		baseByName[base.Benchmarks[i].Name] = &base.Benchmarks[i]
	}

	fmt.Fprintf(stdout, "comparing %s (base) -> %s, max ns/op regression %.1f%%\n",
		base.Label, cur.Label, *maxRegress)
	fmt.Fprintf(stdout, "%-52s %14s %14s %9s\n", "benchmark", "base ns/op", "new ns/op", "delta")

	failed := 0
	seen := make(map[string]bool, len(cur.Benchmarks))
	for i := range cur.Benchmarks {
		nb := &cur.Benchmarks[i]
		seen[nb.Name] = true
		ob, ok := baseByName[nb.Name]
		if !ok {
			fmt.Fprintf(stdout, "%-52s %14s %14.1f %9s\n", nb.Name, "-", nb.NsPerOp, "new")
			continue
		}
		delta := 0.0
		if ob.NsPerOp > 0 {
			delta = (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
		}
		verdict := ""
		if delta > *maxRegress {
			verdict = "  REGRESSED"
			failed++
		}
		for r := range reqs {
			if !strings.Contains(nb.Name, reqs[r].substr) {
				continue
			}
			reqs[r].matched++
			factor := 0.0
			if nb.NsPerOp > 0 {
				factor = ob.NsPerOp / nb.NsPerOp
			}
			if factor < reqs[r].factor {
				verdict += fmt.Sprintf("  BELOW x%.2g (x%.2f)", reqs[r].factor, factor)
				failed++
			} else {
				verdict += fmt.Sprintf("  x%.2f", factor)
			}
		}
		if allocRegressed(ob, nb) {
			verdict += "  ALLOCS " + fmt.Sprintf("%.0f -> %.0f", *ob.AllocsPerOp, *nb.AllocsPerOp)
			failed++
		}
		fmt.Fprintf(stdout, "%-52s %14.1f %14.1f %+8.1f%%%s\n", nb.Name, ob.NsPerOp, nb.NsPerOp, delta, verdict)
	}
	var gone []string
	for name := range baseByName {
		if !seen[name] {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(stdout, "%-52s %14.1f %14s %9s\n", name, baseByName[name].NsPerOp, "-", "gone")
	}
	for r := range reqs {
		if reqs[r].matched == 0 {
			fmt.Fprintf(stdout, "FAIL: -require clause %q matched no benchmark present in both documents\n", reqs[r].substr)
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(stdout, "FAIL: %d benchmark(s) regressed beyond %.1f%% or missed a -require factor\n", failed, *maxRegress)
		return 1
	}
	fmt.Fprintln(stdout, "PASS: no regression beyond threshold; all -require factors met")
	return 0
}

// allocRegressed reports a zero-alloc benchmark that started allocating —
// the one alloc change a percentage threshold cannot express.
func allocRegressed(base, cur *Benchmark) bool {
	return base.AllocsPerOp != nil && cur.AllocsPerOp != nil &&
		*base.AllocsPerOp == 0 && *cur.AllocsPerOp > 0
}

func loadDoc(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in document", path)
	}
	return &doc, nil
}
