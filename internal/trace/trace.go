// Package trace defines the memory-trace format consumed by the simulator:
// a time-ordered sequence of last-level-cache events — demand reads and
// dirty evictions (writes) — each carrying a logical line address and, for
// writes, the 64-byte line content.
//
// The paper's artifact runs on traces generated jointly by gem5 and the
// SPEC CPU 2017 / PARSEC applications; this package provides the same role
// with two interchangeable encodings:
//
//   - a compact binary format ("ESDT") for bulk simulation input, and
//   - a line-oriented text format ("R <addr> <ns>" / "W <addr> <ns> <hex>")
//     for hand-written fixtures and inspection.
package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/sim"
)

// Op is the request type.
type Op uint8

// Request types.
const (
	OpRead Op = iota
	OpWrite
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "R"
	case OpWrite:
		return "W"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Record is one trace event.
type Record struct {
	Op   Op
	Addr uint64   // logical line address (line index, not byte address)
	At   sim.Time // arrival time at the memory controller
	Data ecc.Line // line content; meaningful only for OpWrite
}

// Stream yields trace records in time order. Next returns io.EOF when the
// stream is exhausted.
type Stream interface {
	Next() (Record, error)
}

// SliceStream adapts an in-memory record slice to a Stream.
type SliceStream struct {
	records []Record
	pos     int
}

// NewSliceStream wraps records (not copied) as a Stream.
func NewSliceStream(records []Record) *SliceStream {
	return &SliceStream{records: records}
}

// Next implements Stream.
func (s *SliceStream) Next() (Record, error) {
	if s.pos >= len(s.records) {
		return Record{}, io.EOF
	}
	r := s.records[s.pos]
	s.pos++
	return r, nil
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// Len returns the total record count.
func (s *SliceStream) Len() int { return len(s.records) }

// Collect drains a stream into a slice (primarily for tests and tools).
func Collect(s Stream) ([]Record, error) {
	var out []Record
	for {
		r, err := s.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}

// Limit returns a stream that yields at most n records from s.
func Limit(s Stream, n int) Stream { return &limitStream{s: s, left: n} }

type limitStream struct {
	s    Stream
	left int
}

func (l *limitStream) Next() (Record, error) {
	if l.left <= 0 {
		return Record{}, io.EOF
	}
	l.left--
	return l.s.Next()
}

// --- binary encoding ---

var magic = [4]byte{'E', 'S', 'D', 'T'}

const formatVersion = 1

// recordSize is the fixed on-disk record size: op(1) + pad(3) + addr(8) +
// time(8) + data(64).
const recordSize = 1 + 3 + 8 + 8 + 64

// Writer encodes records to the binary format.
type Writer struct {
	w     *bufio.Writer
	count uint64
	begun bool
}

// NewWriter returns a binary trace writer on w. The header is emitted
// lazily on the first record (or on Close for an empty trace).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (tw *Writer) writeHeader() error {
	if tw.begun {
		return nil
	}
	tw.begun = true
	if _, err := tw.w.Write(magic[:]); err != nil {
		return err
	}
	return tw.w.WriteByte(formatVersion)
}

// Write appends one record.
func (tw *Writer) Write(r Record) error {
	if err := tw.writeHeader(); err != nil {
		return err
	}
	var buf [recordSize]byte
	buf[0] = byte(r.Op)
	binary.LittleEndian.PutUint64(buf[4:12], r.Addr)
	binary.LittleEndian.PutUint64(buf[12:20], uint64(r.At))
	copy(buf[20:], r.Data[:])
	if _, err := tw.w.Write(buf[:]); err != nil {
		return err
	}
	tw.count++
	return nil
}

// Count reports how many records have been written.
func (tw *Writer) Count() uint64 { return tw.count }

// Close flushes buffered output. It does not close the underlying writer.
func (tw *Writer) Close() error {
	if err := tw.writeHeader(); err != nil {
		return err
	}
	return tw.w.Flush()
}

// Reader decodes the binary format as a Stream.
type Reader struct {
	r      *bufio.Reader
	header bool
}

// NewReader returns a binary trace reader on r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (tr *Reader) readHeader() error {
	if tr.header {
		return nil
	}
	var hdr [5]byte
	if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("trace: truncated header: %w", io.ErrUnexpectedEOF)
		}
		return err
	}
	if [4]byte(hdr[:4]) != magic {
		return fmt.Errorf("trace: bad magic %q", hdr[:4])
	}
	if hdr[4] != formatVersion {
		return fmt.Errorf("trace: unsupported version %d", hdr[4])
	}
	tr.header = true
	return nil
}

// Next implements Stream.
func (tr *Reader) Next() (Record, error) {
	if err := tr.readHeader(); err != nil {
		return Record{}, err
	}
	var buf [recordSize]byte
	if _, err := io.ReadFull(tr.r, buf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	var r Record
	r.Op = Op(buf[0])
	if r.Op != OpRead && r.Op != OpWrite {
		return Record{}, fmt.Errorf("trace: invalid op %d", buf[0])
	}
	r.Addr = binary.LittleEndian.Uint64(buf[4:12])
	r.At = sim.Time(binary.LittleEndian.Uint64(buf[12:20]))
	copy(r.Data[:], buf[20:])
	return r, nil
}

// --- text encoding ---

// WriteText encodes records in the line-oriented text format:
//
//	R <addr> <time-ps>
//	W <addr> <time-ps> <128 hex digits>
func WriteText(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range records {
		var err error
		switch r.Op {
		case OpRead:
			_, err = fmt.Fprintf(bw, "R %d %d\n", r.Addr, int64(r.At))
		case OpWrite:
			_, err = fmt.Fprintf(bw, "W %d %d %s\n", r.Addr, int64(r.At),
				hex.EncodeToString(r.Data[:]))
		default:
			err = fmt.Errorf("trace: invalid op %v", r.Op)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseText decodes the text format. Blank lines and lines starting with
// '#' are ignored.
func ParseText(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("trace: line %d: want at least 3 fields, got %d", lineNo, len(fields))
		}
		var rec Record
		switch fields[0] {
		case "R":
			rec.Op = OpRead
		case "W":
			rec.Op = OpWrite
		default:
			return nil, fmt.Errorf("trace: line %d: unknown op %q", lineNo, fields[0])
		}
		addr, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address: %w", lineNo, err)
		}
		rec.Addr = addr
		at, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time: %w", lineNo, err)
		}
		rec.At = sim.Time(at)
		if rec.Op == OpWrite {
			if len(fields) != 4 {
				return nil, fmt.Errorf("trace: line %d: write needs hex payload", lineNo)
			}
			raw, err := hex.DecodeString(fields[3])
			if err != nil || len(raw) != ecc.LineSize {
				return nil, fmt.Errorf("trace: line %d: bad payload", lineNo)
			}
			copy(rec.Data[:], raw)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Merge interleaves multiple streams into one time-ordered stream (k-way
// merge by arrival time; ties resolve by stream order). It models
// multi-programmed workloads sharing one memory controller. The inputs
// must each be time-ordered; addresses are NOT remapped — use disjoint
// address regions per input (see workload.Mix).
func Merge(streams ...Stream) Stream {
	m := &mergeStream{streams: streams, heads: make([]*Record, len(streams))}
	return m
}

type mergeStream struct {
	streams []Stream
	heads   []*Record
	primed  bool
}

func (m *mergeStream) prime() error {
	for i, s := range m.streams {
		rec, err := s.Next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			return err
		}
		r := rec
		m.heads[i] = &r
	}
	m.primed = true
	return nil
}

// Next implements Stream.
func (m *mergeStream) Next() (Record, error) {
	if !m.primed {
		if err := m.prime(); err != nil {
			return Record{}, err
		}
	}
	best := -1
	for i, h := range m.heads {
		if h == nil {
			continue
		}
		if best == -1 || h.At < m.heads[best].At {
			best = i
		}
	}
	if best == -1 {
		return Record{}, io.EOF
	}
	out := *m.heads[best]
	rec, err := m.streams[best].Next()
	switch {
	case err == io.EOF:
		m.heads[best] = nil
	case err != nil:
		return Record{}, err
	default:
		r := rec
		m.heads[best] = &r
	}
	return out, nil
}
