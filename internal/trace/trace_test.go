package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/xrand"
	"github.com/esdsim/esd/internal/xrand/quicktest"
)

func randRecords(seed uint64, n int) []Record {
	r := xrand.New(seed)
	out := make([]Record, n)
	at := sim.Time(0)
	for i := range out {
		at += sim.Time(r.Intn(1000)) * sim.Nanosecond
		rec := Record{Addr: r.Uint64n(1 << 30), At: at}
		if r.Bool(0.6) {
			rec.Op = OpWrite
			for j := range rec.Data {
				rec.Data[j] = byte(r.Uint64())
			}
		} else {
			rec.Op = OpRead
		}
		out[i] = rec
	}
	return out
}

func TestBinaryRoundTrip(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		records := randRecords(seed, int(nRaw%50)+1)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range records {
			if err := w.Write(r); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		got, err := Collect(NewReader(&buf))
		if err != nil || len(got) != len(records) {
			return false
		}
		for i := range got {
			if got[i] != records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, quicktest.Config(t, 50)); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(NewReader(&buf))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty trace: %d records, err=%v", len(got), err)
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	r := NewReader(strings.NewReader("NOPE\x01"))
	if _, err := r.Next(); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBinaryRejectsBadVersion(t *testing.T) {
	r := NewReader(strings.NewReader("ESDT\x7f"))
	if _, err := r.Next(); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestBinaryRejectsTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Record{Op: OpWrite, Addr: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	r := NewReader(bytes.NewReader(trunc))
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestBinaryRejectsInvalidOp(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Record{Op: OpRead}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[5] = 99 // first record's op byte, right after the 5-byte header
	r := NewReader(bytes.NewReader(raw))
	if _, err := r.Next(); err == nil {
		t.Fatal("invalid op accepted")
	}
}

func TestTextRoundTrip(t *testing.T) {
	records := randRecords(3, 20)
	var buf bytes.Buffer
	if err := WriteText(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("parsed %d records, want %d", len(got), len(records))
	}
	for i := range got {
		if got[i] != records[i] {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], records[i])
		}
	}
}

func TestTextSkipsCommentsAndBlanks(t *testing.T) {
	in := `
# a comment
R 5 1000

W 6 2000 ` + strings.Repeat("ab", ecc.LineSize) + `
`
	got, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Op != OpRead || got[1].Op != OpWrite {
		t.Fatalf("parsed %+v", got)
	}
	if got[1].Data[0] != 0xab {
		t.Fatal("payload not decoded")
	}
}

func TestTextRejectsMalformedLines(t *testing.T) {
	bad := []string{
		"X 1 2",
		"R 1",
		"R notanumber 5",
		"R 1 notatime",
		"W 1 2",      // missing payload
		"W 1 2 zz",   // bad hex
		"W 1 2 abcd", // wrong length
	}
	for _, line := range bad {
		if _, err := ParseText(strings.NewReader(line)); err == nil {
			t.Errorf("malformed line %q accepted", line)
		}
	}
}

func TestSliceStream(t *testing.T) {
	records := randRecords(9, 5)
	s := NewSliceStream(records)
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	got, err := Collect(s)
	if err != nil || len(got) != 5 {
		t.Fatalf("collect: %d records, err=%v", len(got), err)
	}
	if _, err := s.Next(); !errors.Is(err, io.EOF) {
		t.Fatal("exhausted stream did not return EOF")
	}
	s.Reset()
	if r, err := s.Next(); err != nil || r != records[0] {
		t.Fatal("Reset did not rewind")
	}
}

func TestLimit(t *testing.T) {
	records := randRecords(10, 10)
	got, err := Collect(Limit(NewSliceStream(records), 3))
	if err != nil || len(got) != 3 {
		t.Fatalf("Limit(3): %d records, err=%v", len(got), err)
	}
	got, err = Collect(Limit(NewSliceStream(records), 0))
	if err != nil || len(got) != 0 {
		t.Fatalf("Limit(0): %d records", len(got))
	}
	got, err = Collect(Limit(NewSliceStream(records), 100))
	if err != nil || len(got) != 10 {
		t.Fatalf("Limit(100): %d records", len(got))
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "R" || OpWrite.String() != "W" {
		t.Fatal("unexpected op strings")
	}
	if Op(7).String() != "Op(7)" {
		t.Fatal("unknown op string")
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 7; i++ {
		if err := w.Write(Record{Op: OpRead, Addr: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 7 {
		t.Fatalf("Count = %d, want 7", w.Count())
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	b.ReportAllocs()
	records := randRecords(1, 1000)
	b.SetBytes(int64(len(records)) * recordSize)
	for i := 0; i < b.N; i++ {
		w := NewWriter(io.Discard)
		for _, r := range records {
			if err := w.Write(r); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryRead(b *testing.B) {
	b.ReportAllocs()
	records := randRecords(1, 1000)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range records {
		if err := w.Write(r); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Collect(NewReader(bytes.NewReader(raw))); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMergeOrdersByTime(t *testing.T) {
	a := []Record{
		{Op: OpRead, Addr: 1, At: 10},
		{Op: OpRead, Addr: 2, At: 30},
	}
	b := []Record{
		{Op: OpWrite, Addr: 3, At: 20},
		{Op: OpWrite, Addr: 4, At: 40},
	}
	got, err := Collect(Merge(NewSliceStream(a), NewSliceStream(b)))
	if err != nil {
		t.Fatal(err)
	}
	wantAddrs := []uint64{1, 3, 2, 4}
	if len(got) != len(wantAddrs) {
		t.Fatalf("%d records", len(got))
	}
	for i, w := range wantAddrs {
		if got[i].Addr != w {
			t.Fatalf("order %v", got)
		}
	}
}

func TestMergeHandlesEmptyAndSingle(t *testing.T) {
	got, err := Collect(Merge(NewSliceStream(nil), NewSliceStream([]Record{{At: 5}})))
	if err != nil || len(got) != 1 {
		t.Fatalf("%d records, err=%v", len(got), err)
	}
	got, err = Collect(Merge())
	if err != nil || len(got) != 0 {
		t.Fatalf("empty merge: %d records", len(got))
	}
}

func TestMergePropertyMonotone(t *testing.T) {
	check := func(seed uint64) bool {
		r := xrand.New(seed)
		mk := func() Stream {
			var recs []Record
			at := sim.Time(0)
			for i := 0; i < r.Intn(50); i++ {
				at += sim.Time(r.Intn(100)) * sim.Nanosecond
				recs = append(recs, Record{Op: OpRead, Addr: r.Uint64(), At: at})
			}
			return NewSliceStream(recs)
		}
		merged, err := Collect(Merge(mk(), mk(), mk()))
		if err != nil {
			return false
		}
		for i := 1; i < len(merged); i++ {
			if merged[i].At < merged[i-1].At {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, quicktest.Config(t, 50)); err != nil {
		t.Fatal(err)
	}
}
