package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseText checks that arbitrary text input never panics the parser
// and that anything it accepts round-trips through WriteText.
func FuzzParseText(f *testing.F) {
	f.Add("R 5 1000\n")
	f.Add("W 6 2000 " + strings.Repeat("ab", 64) + "\n")
	f.Add("# comment\n\nR 1 2\n")
	f.Add("X bogus line\n")
	f.Add("R 99999999999999999999 5\n")
	f.Fuzz(func(t *testing.T, input string) {
		records, err := ParseText(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, records); err != nil {
			t.Fatalf("accepted records failed to serialize: %v", err)
		}
		again, err := ParseText(&buf)
		if err != nil {
			t.Fatalf("serialized records failed to re-parse: %v", err)
		}
		if len(again) != len(records) {
			t.Fatalf("round trip changed record count: %d -> %d", len(records), len(again))
		}
		for i := range again {
			if again[i] != records[i] {
				t.Fatalf("record %d changed in round trip", i)
			}
		}
	})
}

// FuzzBinaryReader checks that arbitrary bytes never panic the binary
// decoder.
func FuzzBinaryReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(Record{Op: OpWrite, Addr: 42, At: 7})
	_ = w.Close()
	f.Add(buf.Bytes())
	f.Add([]byte("ESDT\x01"))
	f.Add([]byte("JUNK"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, input []byte) {
		r := NewReader(bytes.NewReader(input))
		for i := 0; i < 100; i++ {
			if _, err := r.Next(); err != nil {
				return
			}
		}
	})
}
