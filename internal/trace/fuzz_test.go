package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseText checks that arbitrary text input never panics the parser
// and that anything it accepts round-trips through WriteText.
func FuzzParseText(f *testing.F) {
	f.Add("R 5 1000\n")
	f.Add("W 6 2000 " + strings.Repeat("ab", 64) + "\n")
	f.Add("# comment\n\nR 1 2\n")
	f.Add("X bogus line\n")
	f.Add("R 99999999999999999999 5\n")
	f.Fuzz(func(t *testing.T, input string) {
		records, err := ParseText(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, records); err != nil {
			t.Fatalf("accepted records failed to serialize: %v", err)
		}
		again, err := ParseText(&buf)
		if err != nil {
			t.Fatalf("serialized records failed to re-parse: %v", err)
		}
		if len(again) != len(records) {
			t.Fatalf("round trip changed record count: %d -> %d", len(records), len(again))
		}
		for i := range again {
			if again[i] != records[i] {
				t.Fatalf("record %d changed in round trip", i)
			}
		}
	})
}

// validTrace encodes n records and returns the raw bytes.
func validTrace(n int) []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < n; i++ {
		_ = w.Write(Record{Op: Op(i % 2), Addr: uint64(i) * 64, At: 7})
	}
	_ = w.Close()
	return buf.Bytes()
}

// FuzzBinaryReader checks that arbitrary bytes never panic the binary
// decoder, and that any prefix of records it does accept survives a
// re-encode/re-decode round trip.
func FuzzBinaryReader(f *testing.F) {
	full := validTrace(3)
	f.Add(full)
	f.Add(full[:len(full)-1])          // truncated mid-record
	f.Add(full[:len(full)-recordSize]) // clean truncation at a record boundary
	f.Add([]byte("ESDT\x01"))          // header only
	f.Add([]byte("ESDT\x02"))          // bogus version
	f.Add([]byte("ESDT"))              // truncated header
	f.Add([]byte("JUNK\x01"))          // bad magic
	f.Add([]byte{})
	f.Add(append([]byte("ESDT\x01"), bytes.Repeat([]byte{0xff}, recordSize)...)) // invalid op
	f.Fuzz(func(t *testing.T, input []byte) {
		r := NewReader(bytes.NewReader(input))
		var accepted []Record
		for i := 0; i < 1000; i++ {
			rec, err := r.Next()
			if err != nil {
				break
			}
			accepted = append(accepted, rec)
		}
		if len(accepted) == 0 {
			return
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, rec := range accepted {
			if err := w.Write(rec); err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		again, err := Collect(NewReader(&buf))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(accepted) {
			t.Fatalf("round trip changed record count: %d -> %d", len(accepted), len(again))
		}
		for i := range again {
			if again[i] != accepted[i] {
				t.Fatalf("record %d changed in round trip", i)
			}
		}
	})
}

// TestBinaryReaderMalformed pins the decoder's behaviour on specific
// malformed inputs: every case must error without panicking, and the
// error text must identify the failure.
func TestBinaryReaderMalformed(t *testing.T) {
	full := validTrace(2)
	cases := []struct {
		name    string
		input   []byte
		wantErr string
	}{
		{"empty", nil, "truncated header"},
		{"short magic", []byte("ES"), "truncated header"},
		{"bad magic", []byte("XXXX\x01"), "bad magic"},
		{"bad version", []byte("ESDT\x7f"), "unsupported version"},
		{"truncated record", full[:len(full)-5], "truncated record"},
		{"invalid op", append([]byte("ESDT\x01"), bytes.Repeat([]byte{0x09}, recordSize)...), "invalid op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(bytes.NewReader(tc.input))
			var err error
			for i := 0; i < 10; i++ {
				if _, err = r.Next(); err != nil {
					break
				}
			}
			if err == nil {
				t.Fatal("malformed input decoded without error")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
