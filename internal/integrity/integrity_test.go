package integrity

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/xrand"
	"github.com/esdsim/esd/internal/xrand/quicktest"
)

func testTree(lines uint64) *Tree {
	cfg := DefaultConfig(lines)
	cfg.NodeCacheBytes = 1 << 12 // small cache: walks actually happen
	return New(cfg)
}

func TestDepthScalesWithLines(t *testing.T) {
	cases := map[uint64]int{
		1:         1,
		8:         1,
		64:        1,
		65:        2,
		512:       2,
		1 << 20:   6, // 2^20 lines -> 2^17 blocks -> ceil(17/3)=6
		256 << 20: 9, // 16 GB of lines
	}
	for lines, want := range cases {
		if got := New(DefaultConfig(lines)).Depth(); got != want {
			t.Errorf("Depth(%d lines) = %d, want %d", lines, got, want)
		}
	}
}

func TestUpdateThenVerify(t *testing.T) {
	tr := testTree(1 << 16)
	lat := tr.Update(100, 1, 0)
	if lat <= 0 {
		t.Fatal("update charged nothing")
	}
	// Force an uncached verification.
	tr.DropCache()
	vlat, err := tr.Verify(100, sim.Microsecond)
	if err != nil {
		t.Fatalf("verify failed on honest state: %v", err)
	}
	if vlat <= 0 {
		t.Fatal("cold verify charged nothing")
	}
	// A second verify is a cache hit: trusted, free.
	vlat2, err := tr.Verify(100, 2*sim.Microsecond)
	if err != nil || vlat2 != 0 {
		t.Fatalf("warm verify: lat=%v err=%v", vlat2, err)
	}
}

func TestTamperedCounterDetected(t *testing.T) {
	tr := testTree(1 << 16)
	tr.Update(7, 3, 0)
	tr.DropCache()
	tr.TamperCounter(7, 99)
	_, err := tr.Verify(7, sim.Microsecond)
	if !errors.Is(err, ErrTampered) {
		t.Fatalf("tampering not detected: %v", err)
	}
	if tr.Stats.TamperCaught == 0 {
		t.Fatal("tamper stat not counted")
	}
}

func TestTamperNeighborLineDetected(t *testing.T) {
	// Tampering one line's counter must not be masked by a sibling's
	// legitimate update.
	tr := testTree(1 << 16)
	tr.Update(8, 1, 0)
	tr.Update(9, 1, 0) // same counter block as 8
	tr.DropCache()
	tr.TamperCounter(8, 1234)
	if _, err := tr.Verify(9, sim.Microsecond); !errors.Is(err, ErrTampered) {
		t.Fatalf("sibling tampering not detected: %v", err)
	}
}

func TestRootChangesWithUpdates(t *testing.T) {
	tr := testTree(1 << 12)
	r0 := tr.Root()
	tr.Update(5, 1, 0)
	r1 := tr.Root()
	if r0 == r1 {
		t.Fatal("root unchanged by update")
	}
	tr.Update(5, 2, 0)
	if tr.Root() == r1 {
		t.Fatal("root unchanged by counter bump")
	}
}

func TestHonestStateAlwaysVerifies(t *testing.T) {
	check := func(seed uint64) bool {
		tr := testTree(1 << 14)
		r := xrand.New(seed)
		lines := make([]uint64, 0, 50)
		counters := map[uint64]uint64{}
		for i := 0; i < 200; i++ {
			line := r.Uint64n(1 << 14)
			counters[line]++
			tr.Update(line, counters[line], sim.Time(i)*sim.Microsecond)
			lines = append(lines, line)
		}
		tr.DropCache()
		for _, line := range lines {
			if _, err := tr.Verify(line, sim.Second); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, quicktest.Config(t, 20)); err != nil {
		t.Fatal(err)
	}
}

func TestCacheShortensWalks(t *testing.T) {
	cfg := DefaultConfig(1 << 20)
	cfg.NodeCacheBytes = 1 << 20 // large cache
	tr := New(cfg)
	tr.Update(1000, 1, 0)
	fetchesAfterUpdate := tr.Stats.NodeFetches
	// Verifying a line sharing ancestry should stop at a cached node
	// quickly instead of walking to the root.
	tr.Update(1001, 1, sim.Microsecond) // same block: all nodes cached
	if tr.Stats.NodeFetches != fetchesAfterUpdate {
		t.Fatalf("sibling update re-fetched nodes: %d -> %d",
			fetchesAfterUpdate, tr.Stats.NodeFetches)
	}
	if _, err := tr.Verify(1000, 2*sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if tr.Stats.CacheHits == 0 {
		t.Fatal("no cache hits recorded")
	}
}

func TestVerifyColdWalkCostsPerLevel(t *testing.T) {
	cfg := DefaultConfig(1 << 20) // depth 6
	cfg.NodeCacheBytes = 64       // effectively no cache
	tr := New(cfg)
	tr.Update(0, 1, 0)
	tr.DropCache()
	lat, err := tr.Verify(0, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Cold walk: counter block + up to depth nodes, each a fetch + hash.
	min := cfg.NVMMReadLatency + cfg.HashLatency
	if lat < min {
		t.Fatalf("cold verify lat %v below one level's cost", lat)
	}
}

func BenchmarkTreeUpdate(b *testing.B) {
	b.ReportAllocs()
	tr := New(DefaultConfig(1 << 20))
	for i := 0; i < b.N; i++ {
		tr.Update(uint64(i)&0xFFFF, uint64(i), sim.Time(i))
	}
}
