// Package integrity implements the Merkle counter tree that
// integrity-protected encrypted NVMM systems maintain over their
// encryption counters (in the style of the paper's citations: Synergy
// (HPCA'18), Triad-NVM (ISCA'19), Anubis (ISCA'19)). Counter-mode
// encryption is only secure against replay if the counters themselves are
// authenticated; the tree hashes 64-byte counter blocks up to an on-chip
// root that an attacker can never touch.
//
// Geometry: level 0 packs 8 per-line counters (8 B each) into one 64 B
// block; every upper level packs the 8 child digests (8 B each) into one
// 64 B node; the root digest lives in the memory controller. A node cache
// holds recently verified/updated nodes on chip, so tree walks usually
// terminate after one or two levels.
//
// The tree is real, not symbolic: digests are computed with SHA-1 over
// the serialized blocks, verification actually recomputes them, and a
// tampered counter or node makes Verify fail — exercised by the tests.
package integrity

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"

	"github.com/esdsim/esd/internal/cache"
	"github.com/esdsim/esd/internal/sim"
)

// Fanout is the tree arity: 8 counters or 8 child digests per 64 B node.
const Fanout = 8

// digest is a truncated SHA-1 over one 64-byte block.
type digest [8]byte

// node is one 64-byte tree node: 8 child digests.
type node [Fanout]digest

// counterBlock packs 8 per-line counters.
type counterBlock [Fanout]uint64

// Config parameterizes the tree's cost model.
type Config struct {
	// Lines is the number of protected data lines.
	Lines uint64
	// NodeCacheBytes is the on-chip node cache capacity.
	NodeCacheBytes int
	// HashLatency is the per-node digest computation time.
	HashLatency sim.Time
	// HashEnergy is per-digest energy (nJ).
	HashEnergy float64
	// NVMMReadLatency approximates fetching one uncached node from NVMM
	// (the device model is not threaded through the tree; the controller
	// charges this as metadata latency).
	NVMMReadLatency sim.Time
}

// DefaultConfig sizes the tree for lines data lines.
func DefaultConfig(lines uint64) Config {
	return Config{
		Lines:           lines,
		NodeCacheBytes:  128 << 10,
		HashLatency:     40 * sim.Nanosecond, // pipelined SHA engine
		HashEnergy:      0.9,
		NVMMReadLatency: 75 * sim.Nanosecond,
	}
}

// Stats counts tree activity.
type Stats struct {
	Verifies     uint64
	Updates      uint64
	NodeFetches  uint64 // uncached nodes pulled from NVMM
	CacheHits    uint64
	HashOps      uint64
	TamperCaught uint64
}

// Tree is the Merkle counter tree. It is not safe for concurrent use.
type Tree struct {
	cfg    Config
	depth  int // number of levels above the counter blocks
	counts map[uint64]*counterBlock
	nodes  []map[uint64]*node // nodes[l][idx], l = 0 is just above leaves
	root   digest
	// nodeCache tracks which (level, idx) nodes are currently on chip and
	// therefore trusted without re-verification.
	nodeCache *cache.Cache[struct{}]

	Stats Stats
}

// New builds an empty tree for cfg.
func New(cfg Config) *Tree {
	if cfg.Lines == 0 {
		cfg.Lines = 1
	}
	leaves := (cfg.Lines + Fanout - 1) / Fanout
	depth := 0
	for n := leaves; n > 1; n = (n + Fanout - 1) / Fanout {
		depth++
	}
	if depth == 0 {
		depth = 1
	}
	entries := cfg.NodeCacheBytes / 64
	if entries < 1 {
		entries = 1
	}
	t := &Tree{
		cfg:       cfg,
		depth:     depth,
		counts:    make(map[uint64]*counterBlock),
		nodes:     make([]map[uint64]*node, depth),
		nodeCache: cache.New[struct{}](entries, 8, cache.LRU),
	}
	for l := range t.nodes {
		t.nodes[l] = make(map[uint64]*node)
	}
	return t
}

// Depth returns the number of digest levels above the counter blocks.
func (t *Tree) Depth() int { return t.depth }

func hashBlock(b []byte) digest {
	sum := sha1.Sum(b)
	var d digest
	copy(d[:], sum[:8])
	return d
}

func (t *Tree) counterBlockOf(line uint64) (*counterBlock, uint64, int) {
	blk := line / Fanout
	cb, ok := t.counts[blk]
	if !ok {
		cb = &counterBlock{}
		t.counts[blk] = cb
	}
	return cb, blk, int(line % Fanout)
}

func (cb *counterBlock) bytes() []byte {
	var raw [64]byte
	for i, c := range cb {
		binary.LittleEndian.PutUint64(raw[i*8:], c)
	}
	return raw[:]
}

func (n *node) bytes() []byte {
	var raw [64]byte
	for i, d := range n {
		copy(raw[i*8:], d[:])
	}
	return raw[:]
}

func (t *Tree) nodeAt(level int, idx uint64) *node {
	nd, ok := t.nodes[level][idx]
	if !ok {
		nd = &node{}
		t.nodes[level][idx] = nd
	}
	return nd
}

// cacheKey packs (level, idx) into the node cache key space; level -1 is
// the counter-block level.
func cacheKey(level int, idx uint64) uint64 {
	return uint64(level+1)<<56 | idx&0x00FF_FFFF_FFFF_FFFF
}

// Update records a counter increment for line and refreshes the digest
// path to the root. The returned latency covers hash recomputation plus
// fetching any path nodes not already on chip; the write-backs of dirty
// nodes are posted off the critical path (and not modeled further).
func (t *Tree) Update(line, counter uint64, at sim.Time) (lat sim.Time) {
	t.Stats.Updates++
	cb, blk, off := t.counterBlockOf(line)
	cb[off] = counter

	lat += t.chargeNode(-1, blk)
	d := hashBlock(cb.bytes())
	t.Stats.HashOps++
	lat += t.cfg.HashLatency

	idx := blk
	for l := 0; l < t.depth; l++ {
		parent := idx / Fanout
		nd := t.nodeAt(l, parent)
		lat += t.chargeNode(l, parent)
		nd[idx%Fanout] = d
		d = hashBlock(nd.bytes())
		t.Stats.HashOps++
		lat += t.cfg.HashLatency
		idx = parent
	}
	t.root = d
	return lat
}

// chargeNode accounts for bringing a node on chip: a cache hit is free, a
// miss costs one NVMM fetch. The node becomes trusted (cached) either way.
func (t *Tree) chargeNode(level int, idx uint64) sim.Time {
	key := cacheKey(level, idx)
	if _, ok := t.nodeCache.Get(key); ok {
		t.Stats.CacheHits++
		return 0
	}
	t.Stats.NodeFetches++
	t.nodeCache.Put(key, struct{}{})
	return t.cfg.NVMMReadLatency
}

// ErrTampered is returned by Verify when a digest mismatch proves the
// counter path was modified outside the trusted chip.
var ErrTampered = fmt.Errorf("integrity: counter tree digest mismatch")

// Verify authenticates the counter of line by walking the digest path
// upward until a trusted (on-chip) node or the root is reached. It returns
// the verification latency, and ErrTampered if any digest fails.
func (t *Tree) Verify(line uint64, at sim.Time) (lat sim.Time, err error) {
	t.Stats.Verifies++
	cb, blk, _ := t.counterBlockOf(line)

	// If the counter block itself is on chip it is already trusted.
	if _, ok := t.nodeCache.Get(cacheKey(-1, blk)); ok {
		t.Stats.CacheHits++
		return 0, nil
	}
	t.Stats.NodeFetches++
	t.nodeCache.Put(cacheKey(-1, blk), struct{}{})
	lat += t.cfg.NVMMReadLatency

	d := hashBlock(cb.bytes())
	t.Stats.HashOps++
	lat += t.cfg.HashLatency

	idx := blk
	for l := 0; l < t.depth; l++ {
		parent := idx / Fanout
		nd := t.nodeAt(l, parent)
		if nd[idx%Fanout] != d {
			t.Stats.TamperCaught++
			return lat, ErrTampered
		}
		// Trusted ancestor already on chip: chain verified.
		if _, ok := t.nodeCache.Get(cacheKey(l, parent)); ok {
			t.Stats.CacheHits++
			return lat, nil
		}
		t.Stats.NodeFetches++
		t.nodeCache.Put(cacheKey(l, parent), struct{}{})
		lat += t.cfg.NVMMReadLatency
		d = hashBlock(nd.bytes())
		t.Stats.HashOps++
		lat += t.cfg.HashLatency
		idx = parent
	}
	if d != t.root {
		t.Stats.TamperCaught++
		return lat, ErrTampered
	}
	return lat, nil
}

// TamperCounter simulates an attacker flipping a stored counter outside
// the chip (for tests): the next uncached Verify of that line must fail.
func (t *Tree) TamperCounter(line uint64, newValue uint64) {
	cb, blk, off := t.counterBlockOf(line)
	cb[off] = newValue
	// The attacker cannot touch the on-chip cache, but our model marks
	// blocks trusted once fetched; evict so the next Verify re-fetches.
	t.nodeCache.Delete(cacheKey(-1, blk))
}

// DropCache models a crash/power event: all on-chip trust state is lost
// and must be rebuilt by verification walks.
func (t *Tree) DropCache() { t.nodeCache.Clear() }

// Root returns the current on-chip root digest.
func (t *Tree) Root() [8]byte { return t.root }
