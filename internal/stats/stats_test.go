package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/xrand"
	"github.com/esdsim/esd/internal/xrand/quicktest"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	h.Record(100 * sim.Nanosecond)
	h.Record(200 * sim.Nanosecond)
	h.Record(300 * sim.Nanosecond)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 100*sim.Nanosecond || h.Max() != 300*sim.Nanosecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Mean(); got != 200*sim.Nanosecond {
		t.Fatalf("Mean = %v, want 200ns", got)
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	var h Histogram
	r := xrand.New(1)
	values := make([]float64, 0, 50000)
	for i := 0; i < 50000; i++ {
		// Log-normal-ish latencies between ~50ns and ~5us.
		v := 50 * math.Exp(r.Float64()*4.6)
		values = append(values, v)
		h.Record(sim.Time(v * float64(sim.Nanosecond)))
	}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		exact := Percentile(values, p)
		approx := h.Percentile(p).Nanoseconds()
		if math.Abs(approx-exact)/exact > 0.10 {
			t.Errorf("P%.0f: histogram %.1fns vs exact %.1fns", p*100, approx, exact)
		}
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	check := func(seed uint64) bool {
		var h Histogram
		r := xrand.New(seed)
		for i := 0; i < 200; i++ {
			h.Record(sim.Time(r.Intn(1000000)) * sim.Nanosecond / 100)
		}
		last := sim.Time(-1)
		for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(check, quicktest.Config(t, 50)); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramExtremePercentiles(t *testing.T) {
	var h Histogram
	h.Record(10 * sim.Nanosecond)
	h.Record(1000 * sim.Nanosecond)
	if h.Percentile(0) != 10*sim.Nanosecond {
		t.Fatalf("P0 = %v", h.Percentile(0))
	}
	if h.Percentile(1) != 1000*sim.Nanosecond {
		t.Fatalf("P100 = %v", h.Percentile(1))
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5 * sim.Nanosecond)
	if h.Min() != 0 || h.Count() != 1 {
		t.Fatal("negative observation not clamped to zero")
	}
}

func TestHistogramCDF(t *testing.T) {
	var h Histogram
	if h.CDF() != nil {
		t.Fatal("empty CDF not nil")
	}
	for i := 1; i <= 100; i++ {
		h.Record(sim.Time(i) * 10 * sim.Nanosecond)
	}
	cdf := h.CDF()
	if len(cdf) == 0 {
		t.Fatal("empty CDF for non-empty histogram")
	}
	last := 0.0
	for _, p := range cdf {
		if p.Frac < last || p.Frac > 1 {
			t.Fatalf("CDF not monotone: %+v", cdf)
		}
		last = p.Frac
	}
	if cdf[len(cdf)-1].Frac != 1 {
		t.Fatalf("CDF does not end at 1: %v", cdf[len(cdf)-1].Frac)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(100 * sim.Nanosecond)
	b.Record(300 * sim.Nanosecond)
	b.Record(500 * sim.Nanosecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 100*sim.Nanosecond || a.Max() != 500*sim.Nanosecond {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	if a.Mean() != 300*sim.Nanosecond {
		t.Fatalf("merged mean = %v", a.Mean())
	}
	var empty Histogram
	a.Merge(&empty)
	if a.Count() != 3 {
		t.Fatal("merging empty changed count")
	}
}

func TestEnergyLedger(t *testing.T) {
	e := EnergyLedger{Media: 10, Fingerprint: 5, Crypto: 3, SRAM: 1, Compare: 1}
	if e.Total() != 20 {
		t.Fatalf("Total = %v", e.Total())
	}
	e.Add(EnergyLedger{Media: 5, Crypto: 2})
	if e.Media != 15 || e.Crypto != 5 || e.Total() != 27 {
		t.Fatalf("after Add: %+v", e)
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{FPCompute: 10, Media: 20, Queue: 5}
	b.Add(Breakdown{FPCompute: 10, ReadCompare: 7})
	if b.FPCompute != 20 || b.ReadCompare != 7 {
		t.Fatalf("after Add: %+v", b)
	}
	if b.Total() != 20+20+5+7 {
		t.Fatalf("Total = %v", b.Total())
	}
	comps := b.Components()
	if len(comps) != 8 {
		t.Fatalf("%d components", len(comps))
	}
	var sum sim.Time
	for _, c := range comps {
		sum += c.Value
	}
	if sum != b.Total() {
		t.Fatal("components do not sum to total")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig. X", "app", "speedup", "note")
	tb.AddRow("lbm", 3.4, "best")
	tb.AddRow("gcc", 1.25, "mid")
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	out := tb.String()
	for _, want := range []string{"Fig. X", "app", "speedup", "lbm", "3.400", "1.250", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4+1 { // title + header + separator + 2 rows
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(3.0)
	tb.AddRow(123.456)
	tb.AddRow(0.5)
	out := tb.String()
	for _, want := range []string{"3\n", "123.5", "0.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %v", g)
	}
	if g := GeoMean([]float64{1, 0, -5, 1}); g != 1 {
		t.Fatalf("GeoMean skipping non-positive = %v", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
}

func TestMeanMaxPercentile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if Mean(vals) != 3 {
		t.Fatalf("Mean = %v", Mean(vals))
	}
	if MaxOf(vals) != 5 {
		t.Fatalf("Max = %v", MaxOf(vals))
	}
	if Percentile(vals, 0.5) != 3 {
		t.Fatalf("P50 = %v", Percentile(vals, 0.5))
	}
	if Percentile(vals, 0) != 1 || Percentile(vals, 1) != 5 {
		t.Fatal("extreme percentiles wrong")
	}
	if Mean(nil) != 0 || MaxOf(nil) != 0 || Percentile(nil, 0.5) != 0 {
		t.Fatal("empty inputs not handled")
	}
	// Input must not be mutated.
	if vals[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	b.ReportAllocs()
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Record(sim.Time(i%100000) * sim.Nanosecond)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}) < 2.13 || StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}) > 2.15 {
		t.Fatalf("StdDev = %v", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
	if StdDev([]float64{5}) != 0 || StdDev(nil) != 0 {
		t.Fatal("degenerate StdDev != 0")
	}
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("ignored title", "app", "value", "note")
	tb.AddRow("lbm", 3.5, "plain")
	tb.AddRow("odd,app", 1.0, `says "hi"`)
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d CSV lines:\n%s", len(lines), out)
	}
	if lines[0] != "app,value,note" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(out, `"odd,app"`) || !strings.Contains(out, `"says ""hi"""`) {
		t.Fatalf("quoting wrong:\n%s", out)
	}
	if strings.Contains(out, "ignored title") {
		t.Fatal("CSV contains the display title")
	}
}
