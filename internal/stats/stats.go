// Package stats provides the measurement machinery shared by the
// simulator: log-bucketed latency histograms with percentile and CDF
// queries (tail-latency analysis, Fig. 15), an energy ledger broken down by
// component (Fig. 16), the per-request write-latency breakdown (Fig. 17),
// and a plain-text table renderer used by the figure harness.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"github.com/esdsim/esd/internal/sim"
)

// histBucketsPerDecade controls histogram resolution: 32 log-spaced
// buckets per decade keeps percentile error under ~4%.
const histBucketsPerDecade = 32

// histDecades covers 1 ns .. 10^7 ns (10 ms) which bounds any sane
// memory-request latency.
const histDecades = 7

const histBuckets = histBucketsPerDecade*histDecades + 2 // underflow+overflow

// Histogram is a log-bucketed latency histogram. The zero value is ready
// to use.
type Histogram struct {
	counts [histBuckets]uint64
	n      uint64
	sum    float64
	min    sim.Time
	max    sim.Time
}

func bucketOf(t sim.Time) int {
	ns := t.Nanoseconds()
	if ns < 1 {
		return 0
	}
	b := 1 + int(math.Log10(ns)*histBucketsPerDecade)
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketUpper returns the upper latency bound of bucket b.
func bucketUpper(b int) sim.Time {
	if b <= 0 {
		return 1 * sim.Nanosecond
	}
	ns := math.Pow(10, float64(b)/histBucketsPerDecade)
	return sim.Time(ns * float64(sim.Nanosecond))
}

// Record adds one latency observation.
func (h *Histogram) Record(t sim.Time) {
	if t < 0 {
		t = 0
	}
	h.counts[bucketOf(t)]++
	if h.n == 0 || t < h.min {
		h.min = t
	}
	if t > h.max {
		h.max = t
	}
	h.n++
	h.sum += float64(t)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the summed latency of all observations in picoseconds.
func (h *Histogram) Sum() float64 { return h.sum }

// EachBucket calls fn for every non-empty bucket in latency order with the
// bucket's upper latency bound and its (non-cumulative) count, stopping
// early if fn returns false. Exposition formats (e.g. Prometheus histogram
// text) are built on this without touching the internal layout.
func (h *Histogram) EachBucket(fn func(upper sim.Time, count uint64) bool) {
	for b := 0; b < histBuckets; b++ {
		if h.counts[b] == 0 {
			continue
		}
		if !fn(bucketUpper(b), h.counts[b]) {
			return
		}
	}
}

// Mean returns the mean latency (0 if empty).
func (h *Histogram) Mean() sim.Time {
	if h.n == 0 {
		return 0
	}
	return sim.Time(h.sum / float64(h.n))
}

// Min and Max return the exact extremes (0 if empty).
func (h *Histogram) Min() sim.Time { return h.min }

// Max returns the largest observation (0 if empty).
func (h *Histogram) Max() sim.Time { return h.max }

// Percentile returns the latency at quantile p in [0, 1], approximated by
// the bucket upper bound. The exact min/max are used at the extremes.
func (h *Histogram) Percentile(p float64) sim.Time {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 1 {
		return h.max
	}
	target := uint64(math.Ceil(p * float64(h.n)))
	var cum uint64
	for b := 0; b < histBuckets; b++ {
		cum += h.counts[b]
		if cum >= target {
			u := bucketUpper(b)
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return u
		}
	}
	return h.max
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Latency sim.Time
	Frac    float64
}

// CDF returns the non-empty cumulative distribution points in latency
// order; the final point has Frac == 1.
func (h *Histogram) CDF() []CDFPoint {
	if h.n == 0 {
		return nil
	}
	var out []CDFPoint
	var cum uint64
	for b := 0; b < histBuckets; b++ {
		if h.counts[b] == 0 {
			continue
		}
		cum += h.counts[b]
		u := bucketUpper(b)
		if u > h.max {
			u = h.max
		}
		out = append(out, CDFPoint{Latency: u, Frac: float64(cum) / float64(h.n)})
	}
	return out
}

// Merge adds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.n == 0 {
		return
	}
	for b := range h.counts {
		h.counts[b] += other.counts[b]
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
}

// EnergyLedger accumulates energy (nJ) by component, mirroring the paper's
// Fig. 16 decomposition: media reads/writes, fingerprint computation,
// encryption, and metadata (SRAM + comparison) overhead.
type EnergyLedger struct {
	Media       float64
	Fingerprint float64
	Crypto      float64
	SRAM        float64
	Compare     float64
}

// Total returns the summed energy in nJ.
func (e EnergyLedger) Total() float64 {
	return e.Media + e.Fingerprint + e.Crypto + e.SRAM + e.Compare
}

// Sub returns e minus other, component-wise; used to discard warm-up
// energy.
func (e EnergyLedger) Sub(other EnergyLedger) EnergyLedger {
	return EnergyLedger{
		Media:       e.Media - other.Media,
		Fingerprint: e.Fingerprint - other.Fingerprint,
		Crypto:      e.Crypto - other.Crypto,
		SRAM:        e.SRAM - other.SRAM,
		Compare:     e.Compare - other.Compare,
	}
}

// Add accumulates other into e.
func (e *EnergyLedger) Add(other EnergyLedger) {
	e.Media += other.Media
	e.Fingerprint += other.Fingerprint
	e.Crypto += other.Crypto
	e.SRAM += other.SRAM
	e.Compare += other.Compare
}

// Breakdown decomposes write-path latency into the paper's Fig. 17
// components. Every field is a total across requests; divide by the
// request count for means.
type Breakdown struct {
	FPCompute    sim.Time // fingerprint computation
	FPLookupSRAM sim.Time // fingerprint cache probes
	FPLookupNVMM sim.Time // fingerprint fetches from NVMM (full dedup only)
	ReadCompare  sim.Time // reading candidate lines for byte comparison
	Encrypt      sim.Time // non-overlapped encryption time
	Queue        sim.Time // bank queueing and write-buffer stalls
	Media        sim.Time // NVM media write time
	Metadata     sim.Time // AMT and metadata maintenance
}

// Add accumulates other into b.
func (b *Breakdown) Add(other Breakdown) {
	b.FPCompute += other.FPCompute
	b.FPLookupSRAM += other.FPLookupSRAM
	b.FPLookupNVMM += other.FPLookupNVMM
	b.ReadCompare += other.ReadCompare
	b.Encrypt += other.Encrypt
	b.Queue += other.Queue
	b.Media += other.Media
	b.Metadata += other.Metadata
}

// Total returns the summed latency.
func (b Breakdown) Total() sim.Time {
	return b.FPCompute + b.FPLookupSRAM + b.FPLookupNVMM + b.ReadCompare +
		b.Encrypt + b.Queue + b.Media + b.Metadata
}

// Components returns the breakdown as ordered (name, value) pairs for
// rendering.
func (b Breakdown) Components() []struct {
	Name  string
	Value sim.Time
} {
	return []struct {
		Name  string
		Value sim.Time
	}{
		{"fp-compute", b.FPCompute},
		{"fp-lookup-sram", b.FPLookupSRAM},
		{"fp-lookup-nvmm", b.FPLookupNVMM},
		{"read-compare", b.ReadCompare},
		{"encrypt", b.Encrypt},
		{"queue", b.Queue},
		{"media", b.Media},
		{"metadata", b.Metadata},
	}
}

// Table is a minimal plain-text table builder used by the figure harness.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 100 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w as aligned plain text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Render(&sb)
	return sb.String()
}

// GeoMean returns the geometric mean of positive values; zero or negative
// entries are skipped. It returns 0 for an empty input.
func GeoMean(values []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range values {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// MaxOf returns the maximum value (0 for empty input).
func MaxOf(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	max := values[0]
	for _, v := range values[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Percentile returns the p-quantile (p in [0,1]) of values by
// nearest-rank on a sorted copy. It returns 0 for empty input.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// StdDev returns the sample standard deviation (0 for fewer than two
// values).
func StdDev(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	m := Mean(values)
	sum := 0.0
	for _, v := range values {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(values)-1))
}

// RenderCSV writes the table as RFC-4180-ish CSV (header row first).
func (t *Table) RenderCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
