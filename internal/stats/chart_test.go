package stats

import (
	"strings"
	"testing"

	"github.com/esdsim/esd/internal/sim"
)

func TestBarChartRendering(t *testing.T) {
	c := NewBarChart("Fig. X — speedup", "x", "esd", "dewrite")
	c.Set("esd", "lbm", 2.0)
	c.Set("dewrite", "lbm", 1.0)
	c.Set("esd", "gcc", 1.5)
	c.Set("dewrite", "gcc", 0.75)
	out := c.String()
	for _, want := range []string{"Fig. X", "esd", "dewrite", "lbm", "gcc", "2x", "0.75x"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The max value (2.0) gets the full-width bar; 1.0 gets half.
	lines := strings.Split(out, "\n")
	var fullBar, halfBar int
	for _, l := range lines {
		n := strings.Count(l, "█")
		if strings.Contains(l, "2x") {
			fullBar = n
		}
		if strings.Contains(l, " 1x") {
			halfBar = strings.Count(l, "▓")
		}
	}
	if fullBar == 0 || halfBar == 0 {
		t.Fatalf("bars missing:\n%s", out)
	}
	if halfBar < fullBar/2-1 || halfBar > fullBar/2+1 {
		t.Errorf("bar scaling wrong: full=%d half=%d", fullBar, halfBar)
	}
}

func TestBarChartEmptyAndZero(t *testing.T) {
	c := NewBarChart("empty", "", "s")
	if out := c.String(); !strings.Contains(out, "empty") {
		t.Fatal("empty chart lost its title")
	}
	c.Set("s", "a", 0)
	if out := c.String(); !strings.Contains(out, "a") {
		t.Fatal("zero-value label missing")
	}
}

func TestBarChartLabelOrderPreserved(t *testing.T) {
	c := NewBarChart("", "", "s")
	for _, l := range []string{"z", "a", "m"} {
		c.Set("s", l, 1)
	}
	out := c.String()
	if strings.Index(out, "z") > strings.Index(out, "a") ||
		strings.Index(out, "a") > strings.Index(out, "m") {
		t.Fatalf("labels reordered:\n%s", out)
	}
}

func TestRenderCDF(t *testing.T) {
	var h1, h2 Histogram
	for i := 1; i <= 1000; i++ {
		h1.Record(sim.Time(i) * sim.Nanosecond)
		h2.Record(sim.Time(i*10) * sim.Nanosecond)
	}
	var sb strings.Builder
	err := RenderCDF(&sb, "Fig. 15 — CDF", map[string][]CDFPoint{
		"esd":  h1.CDF(),
		"sha1": h2.CDF(),
	}, 60, 12)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig. 15", "esd", "sha1", "log scale", "1.00 |", "0.00 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("CDF chart missing %q:\n%s", want, out)
		}
	}
	// The faster series' glyphs must appear left of the slower series' at
	// the top row region; cheap sanity: both glyphs present.
	if !strings.ContainsRune(out, '█') || !strings.ContainsRune(out, '▓') {
		t.Error("series glyphs missing")
	}
}

func TestRenderCDFEmpty(t *testing.T) {
	var sb strings.Builder
	if err := RenderCDF(&sb, "none", map[string][]CDFPoint{}, 40, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Fatal("empty CDF not reported")
	}
}
