package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// BarChart renders grouped horizontal bars as plain text — the terminal
// equivalent of the paper's per-application bar figures. Series are drawn
// per label in the given series order, scaled to a shared maximum.
type BarChart struct {
	Title  string
	Unit   string
	Width  int // bar width in characters (default 40)
	labels []string
	series []string
	values map[string]map[string]float64 // series -> label -> value
}

// NewBarChart creates an empty chart with the given series names (legend
// order is preserved).
func NewBarChart(title, unit string, series ...string) *BarChart {
	return &BarChart{
		Title:  title,
		Unit:   unit,
		Width:  40,
		series: series,
		values: make(map[string]map[string]float64),
	}
}

// Set records one value. Labels appear in first-Set order.
func (c *BarChart) Set(series, label string, value float64) {
	if c.values[series] == nil {
		c.values[series] = make(map[string]float64)
	}
	if _, known := c.values[series][label]; !known {
		seen := false
		for _, l := range c.labels {
			if l == label {
				seen = true
				break
			}
		}
		if !seen {
			c.labels = append(c.labels, label)
		}
	}
	c.values[series][label] = value
}

// markers are the per-series bar glyphs.
var markers = []rune{'█', '▓', '▒', '░', '◆', '○'}

// Render writes the chart.
func (c *BarChart) Render(w io.Writer) error {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	max := 0.0
	for _, byLabel := range c.values {
		for _, v := range byLabel {
			if v > max {
				max = v
			}
		}
	}
	if max <= 0 {
		max = 1
	}
	labelW := 0
	for _, l := range c.labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	seriesW := 0
	for _, s := range c.series {
		if len(s) > seriesW {
			seriesW = len(s)
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	for i, s := range c.series {
		fmt.Fprintf(&sb, "  %c %s\n", markers[i%len(markers)], s)
	}
	for _, label := range c.labels {
		for i, s := range c.series {
			v, ok := c.values[s][label]
			if !ok {
				continue
			}
			n := int(math.Round(v / max * float64(width)))
			if n < 0 {
				n = 0
			}
			name := ""
			if i == 0 {
				name = label
			}
			fmt.Fprintf(&sb, "%-*s %-*s %s %.3g%s\n",
				labelW, name, seriesW, s,
				strings.Repeat(string(markers[i%len(markers)]), n), v, c.Unit)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders to a string.
func (c *BarChart) String() string {
	var sb strings.Builder
	_ = c.Render(&sb)
	return sb.String()
}

// RenderCDF draws a set of CDFs as a plain-text scatter grid (latency on
// the x axis, cumulative fraction on the y axis), one glyph per series —
// the terminal analogue of the paper's Fig. 15.
func RenderCDF(w io.Writer, title string, series map[string][]CDFPoint, width, height int) error {
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)

	// Log-scale x over the pooled latency range.
	minX, maxX := math.Inf(1), math.Inf(-1)
	for _, pts := range series {
		for _, p := range pts {
			ns := p.Latency.Nanoseconds()
			if ns <= 0 {
				ns = 0.5
			}
			minX = math.Min(minX, ns)
			maxX = math.Max(maxX, ns)
		}
	}
	if math.IsInf(minX, 1) || maxX <= minX {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", title)
		return err
	}
	logMin, logMax := math.Log10(minX), math.Log10(maxX)

	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	for si, name := range names {
		glyph := markers[si%len(markers)]
		for _, p := range series[name] {
			ns := p.Latency.Nanoseconds()
			if ns <= 0 {
				ns = 0.5
			}
			x := int((math.Log10(ns) - logMin) / (logMax - logMin) * float64(width-1))
			y := int((1 - p.Frac) * float64(height-1))
			if x < 0 {
				x = 0
			}
			if x >= width {
				x = width - 1
			}
			if y < 0 {
				y = 0
			}
			if y >= height {
				y = height - 1
			}
			grid[y][x] = glyph
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for si, name := range names {
		fmt.Fprintf(&sb, "  %c %s\n", markers[si%len(markers)], name)
	}
	for i, row := range grid {
		frac := 1 - float64(i)/float64(height-1)
		fmt.Fprintf(&sb, "%5.2f |%s|\n", frac, string(row))
	}
	fmt.Fprintf(&sb, "      %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(&sb, "      %-*.3g%*.3g ns (log scale)\n", width/2, minX, width/2, maxX)
	_, err := io.WriteString(w, sb.String())
	return err
}
