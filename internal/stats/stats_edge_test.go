package stats

import (
	"strings"
	"testing"

	"github.com/esdsim/esd/internal/sim"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 0 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Min() != 0 || h.Max() != 0 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if h.Sum() != 0 {
		t.Errorf("Sum = %v", h.Sum())
	}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Percentile(p); got != 0 {
			t.Errorf("Percentile(%v) = %v on empty histogram", p, got)
		}
	}
	if pts := h.CDF(); len(pts) != 0 {
		t.Errorf("CDF on empty histogram returned %d points", len(pts))
	}
	called := false
	h.EachBucket(func(sim.Time, uint64) bool { called = true; return true })
	if called {
		t.Error("EachBucket visited a bucket of an empty histogram")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Record(250 * sim.Nanosecond)
	if h.Count() != 1 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 250*sim.Nanosecond {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Min() != 250*sim.Nanosecond || h.Max() != 250*sim.Nanosecond {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	// Every percentile of a single sample is that sample.
	for _, p := range []float64{0, 0.001, 0.5, 0.999, 1} {
		if got := h.Percentile(p); got != 250*sim.Nanosecond {
			t.Errorf("Percentile(%v) = %v, want 250ns", p, got)
		}
	}
	pts := h.CDF()
	if len(pts) != 1 || pts[0].Frac != 1 {
		t.Errorf("CDF = %v, want single point at Frac=1", pts)
	}
}

func TestHistogramEachBucketEarlyStop(t *testing.T) {
	var h Histogram
	for i := 1; i <= 10; i++ {
		h.Record(sim.Time(i) * sim.Microsecond)
	}
	visits := 0
	h.EachBucket(func(sim.Time, uint64) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Errorf("EachBucket ignored stop: %d visits", visits)
	}
	var total uint64
	h.EachBucket(func(_ sim.Time, n uint64) bool {
		total += n
		return true
	})
	if total != 10 {
		t.Errorf("bucket counts sum to %d, want 10", total)
	}
}

// TestBarChartManySeries exercises the marker wrap-around: with more
// series than glyphs, markers repeat rather than index out of range.
func TestBarChartManySeries(t *testing.T) {
	names := []string{"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7"}
	c := NewBarChart("many", "x", names...)
	for i, name := range names {
		c.Set(name, "only", float64(i+1))
	}
	out := c.String()
	for _, name := range names {
		if !strings.Contains(out, name) {
			t.Errorf("series %s missing from chart:\n%s", name, out)
		}
	}
	// Series 0 and 6 (and 1 and 7) share a glyph after wrap-around.
	lines := strings.Split(out, "\n")
	legend := map[string]rune{}
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) == 2 && strings.HasPrefix(fields[1], "s") {
			legend[fields[1]] = []rune(fields[0])[0]
		}
	}
	if len(legend) != len(names) {
		t.Fatalf("legend has %d entries, want %d:\n%s", len(legend), len(names), out)
	}
	if legend["s0"] != legend["s6"] || legend["s1"] != legend["s7"] {
		t.Errorf("glyphs did not wrap around after 6 series: %v", legend)
	}
}

// TestRenderCDFManySeries checks the CDF plot handles more series than
// marker glyphs without panicking and lists every series in its legend.
func TestRenderCDFManySeries(t *testing.T) {
	series := map[string][]CDFPoint{}
	for i := 0; i < 9; i++ {
		name := string(rune('a' + i))
		series[name] = []CDFPoint{
			{Latency: sim.Time(100+10*i) * sim.Nanosecond, Frac: 0.5},
			{Latency: sim.Time(500+50*i) * sim.Nanosecond, Frac: 1},
		}
	}
	var sb strings.Builder
	if err := RenderCDF(&sb, "wrap", series, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for name := range series {
		if !strings.Contains(out, " "+name+"\n") {
			t.Errorf("series %q missing from legend:\n%s", name, out)
		}
	}
}
