package workload

import (
	"math"
	"testing"

	"github.com/esdsim/esd/internal/trace"
)

func TestTwentyProfiles(t *testing.T) {
	ps := Profiles()
	if len(ps) != 20 {
		t.Fatalf("got %d profiles, want 20", len(ps))
	}
	spec, parsec := 0, 0
	for _, p := range ps {
		switch p.Suite {
		case SPEC:
			spec++
		case PARSEC:
			parsec++
		default:
			t.Errorf("%s: unknown suite %q", p.Name, p.Suite)
		}
	}
	if spec != 12 || parsec != 8 {
		t.Fatalf("suite split = %d SPEC / %d PARSEC, want 12/8", spec, parsec)
	}
}

func TestProfilesMatchFig1Statistics(t *testing.T) {
	ps := Profiles()
	sum, lo, hi := 0.0, 1.0, 0.0
	for _, p := range ps {
		sum += p.DupRate
		lo = math.Min(lo, p.DupRate)
		hi = math.Max(hi, p.DupRate)
	}
	avg := sum / float64(len(ps))
	if math.Abs(avg-0.629) > 0.005 {
		t.Errorf("mean dup rate = %.3f, want 0.629 (Fig. 1)", avg)
	}
	if math.Abs(lo-0.331) > 0.001 {
		t.Errorf("min dup rate = %.3f, want 0.331", lo)
	}
	if math.Abs(hi-0.999) > 0.001 {
		t.Errorf("max dup rate = %.3f, want 0.999", hi)
	}
	// deepsjeng and roms are dominated by zero lines (paper §II-A).
	for _, name := range []string{"deepsjeng", "roms"} {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("missing profile %s", name)
		}
		if p.DupRate < 0.99 || p.ZeroFrac < 0.9 {
			t.Errorf("%s: dup=%.3f zero=%.3f, want zero-dominated", name, p.DupRate, p.ZeroFrac)
		}
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("lbm")
	if !ok || p.Name != "lbm" || p.Suite != SPEC {
		t.Fatalf("ByName(lbm) = %+v, %v", p, ok)
	}
	if _, ok := ByName("nosuchapp"); ok {
		t.Fatal("ByName accepted unknown app")
	}
}

func TestProfileValidity(t *testing.T) {
	for _, p := range Profiles() {
		if p.DupRate < 0 || p.DupRate > 1 {
			t.Errorf("%s: dup rate %v out of range", p.Name, p.DupRate)
		}
		if p.ZeroFrac < 0 || p.ZeroFrac > p.DupRate {
			t.Errorf("%s: zero frac %v exceeds dup rate %v", p.Name, p.ZeroFrac, p.DupRate)
		}
		if p.WriteRatio <= 0 || p.WriteRatio >= 1 {
			t.Errorf("%s: write ratio %v out of range", p.Name, p.WriteRatio)
		}
		if p.FootprintLines <= 0 || p.MeanInterarrival <= 0 {
			t.Errorf("%s: non-positive footprint or interarrival", p.Name)
		}
		if p.AlphabetBits < 1 || p.AlphabetBits > 8 {
			t.Errorf("%s: alphabet bits %d", p.Name, p.AlphabetBits)
		}
		if p.MissesPerKiloInstr <= 0 {
			t.Errorf("%s: MPKI must be positive", p.Name)
		}
	}
}

func TestClassOf(t *testing.T) {
	cases := map[uint64]RefClass{
		0: Num1, 1: Num1, 2: Num10, 10: Num10, 11: Num100,
		100: Num100, 101: Num1000, 1000: Num1000, 1001: Num1000Plus, 50000: Num1000Plus,
	}
	for n, want := range cases {
		if got := ClassOf(n); got != want {
			t.Errorf("ClassOf(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestRefClassString(t *testing.T) {
	want := []string{"num1", "num10", "num100", "num1000", "num1000+"}
	for c := Num1; c < NumClasses; c++ {
		if c.String() != want[c] {
			t.Errorf("class %d = %q, want %q", c, c.String(), want[c])
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ByName("gcc")
	a := NewGenerator(p, 7, 1000).Records(200)
	b := NewGenerator(p, 7, 1000).Records(200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed generators diverged at record %d", i)
		}
	}
	c := NewGenerator(p, 8, 1000).Records(200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGeneratedDupRateMatchesTarget(t *testing.T) {
	const n = 60000
	for _, name := range []string{"blackscholes", "gcc", "lbm", "deepsjeng", "mcf"} {
		p, _ := ByName(name)
		st, err := MeasureDup(Stream(p, 11, n))
		if err != nil {
			t.Fatal(err)
		}
		if st.Writes == 0 {
			t.Fatalf("%s: no writes generated", name)
		}
		if math.Abs(st.DupRate-p.DupRate) > 0.04 {
			t.Errorf("%s: measured dup rate %.3f, target %.3f", name, st.DupRate, p.DupRate)
		}
	}
}

func TestGeneratedZeroLineShare(t *testing.T) {
	p, _ := ByName("deepsjeng")
	st, err := MeasureDup(Stream(p, 3, 40000))
	if err != nil {
		t.Fatal(err)
	}
	zeroShare := float64(st.ZeroWrites) / float64(st.Writes)
	if math.Abs(zeroShare-p.ZeroFrac) > 0.02 {
		t.Errorf("zero-line share %.3f, want %.3f", zeroShare, p.ZeroFrac)
	}
}

func TestContentLocalitySkewMatchesFig3(t *testing.T) {
	// Fig. 3: high-reference uniques are a tiny fraction of unique lines
	// but a large fraction of pre-dedup volume. Use a dup-heavy non-zero
	// profile where the effect is strongest.
	p, _ := ByName("lbm")
	st, err := MeasureDup(Stream(p, 5, 120000))
	if err != nil {
		t.Fatal(err)
	}
	hotUniques := st.UniqueShare(Num1000) + st.UniqueShare(Num1000Plus)
	hotWrites := st.WriteShare(Num1000) + st.WriteShare(Num1000Plus)
	if hotUniques > 0.02 {
		t.Errorf("hot uniques share %.4f, want < 2%%", hotUniques)
	}
	if hotWrites < 0.25 {
		t.Errorf("hot write share %.3f, want > 25%% (content locality)", hotWrites)
	}
	// num1 class must dominate the unique count.
	if st.UniqueShare(Num1) < 0.5 {
		t.Errorf("num1 unique share %.3f, want > 50%%", st.UniqueShare(Num1))
	}
}

func TestContentDistinctness(t *testing.T) {
	p, _ := ByName("wrf")
	g := NewGenerator(p, 9, 10000)
	seen := map[[64]byte]uint64{}
	for id := uint64(0); id < 5000; id++ {
		c := g.Content(id)
		if prev, dup := seen[c]; dup {
			t.Fatalf("contents %d and %d identical", prev, id)
		}
		seen[c] = id
	}
}

func TestContentZeroID(t *testing.T) {
	p, _ := ByName("roms")
	g := NewGenerator(p, 1, 100)
	if c := g.Content(0); !c.IsZero() {
		t.Fatal("content id 0 is not the zero line")
	}
}

func TestContentIsDeterministicAcrossGenerators(t *testing.T) {
	p, _ := ByName("nab")
	a := NewGenerator(p, 77, 100)
	b := NewGenerator(p, 77, 100)
	for id := uint64(0); id < 100; id++ {
		if a.Content(id) != b.Content(id) {
			t.Fatalf("content %d differs between same-seed generators", id)
		}
	}
}

func TestStreamLengthAndOrdering(t *testing.T) {
	p, _ := ByName("x264")
	recs, err := trace.Collect(Stream(p, 2, 5000))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5000 {
		t.Fatalf("stream yielded %d records, want 5000", len(recs))
	}
	writes := 0
	for i, r := range recs {
		if i > 0 && r.At < recs[i-1].At {
			t.Fatal("timestamps regressed")
		}
		if int(r.Addr) >= p.FootprintLines {
			t.Fatalf("address %d beyond footprint %d", r.Addr, p.FootprintLines)
		}
		if r.Op == trace.OpWrite {
			writes++
		}
	}
	ratio := float64(writes) / float64(len(recs))
	if math.Abs(ratio-p.WriteRatio) > 0.03 {
		t.Errorf("write ratio %.3f, want %.3f", ratio, p.WriteRatio)
	}
}

func TestAddressesAreSkewed(t *testing.T) {
	p, _ := ByName("xalancbmk") // theta = 1.0
	recs, err := trace.Collect(Stream(p, 4, 20000))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]int{}
	for _, r := range recs {
		counts[r.Addr]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// With theta=1 over 128k lines, the hottest address should absorb far
	// more than a uniform share (20000/131072 < 1).
	if max < 100 {
		t.Errorf("hottest address got %d accesses, expected strong skew", max)
	}
}

func TestMeasureDupEmptyStream(t *testing.T) {
	st, err := MeasureDup(trace.NewSliceStream(nil))
	if err != nil || st.Writes != 0 || st.DupRate != 0 {
		t.Fatalf("empty stream stats %+v, err=%v", st, err)
	}
	if st.UniqueShare(Num1) != 0 || st.WriteShare(Num1) != 0 {
		t.Fatal("empty stream shares non-zero")
	}
}

func TestSortedProfileNames(t *testing.T) {
	names := SortedProfileNames()
	if len(names) != 20 {
		t.Fatalf("%d names", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names not sorted")
		}
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	b.ReportAllocs()
	p, _ := ByName("gcc")
	g := NewGenerator(p, 1, b.N+1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNearDupStream(t *testing.T) {
	recs, err := trace.Collect(NearDupStream(7, 5000, 1024, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5000 {
		t.Fatalf("%d records", len(recs))
	}
	st, err := MeasureDup(trace.NewSliceStream(recs))
	if err != nil {
		t.Fatal(err)
	}
	// Exact duplicates exist (the 30% repeat class) but most writes are
	// unique-or-near-dup, which exact measurement counts as unique.
	if st.DupRate < 0.1 || st.DupRate > 0.6 {
		t.Errorf("exact dup rate %.2f out of expected band", st.DupRate)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].At < recs[i-1].At {
			t.Fatal("timestamps regressed")
		}
	}
}

func TestNearDupStreamDeterministic(t *testing.T) {
	a, _ := trace.Collect(NearDupStream(3, 1000, 512, 2))
	b, _ := trace.Collect(NearDupStream(3, 1000, 512, 2))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed near-dup streams diverged")
		}
	}
}

func TestMixMergesDisjointAddressSpaces(t *testing.T) {
	stream, err := Mix(5, 6000, "lbm", "leela")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := trace.Collect(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 5000 {
		t.Fatalf("%d records", len(recs))
	}
	regions := map[uint64]int{}
	for i, r := range recs {
		if i > 0 && r.At < recs[i-1].At {
			t.Fatal("mix not time-ordered")
		}
		regions[r.Addr>>32]++
	}
	if len(regions) != 2 || regions[0] == 0 || regions[1] == 0 {
		t.Fatalf("address regions: %v", regions)
	}
	if _, err := Mix(1, 10, "nosuch"); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := Mix(1, 10); err == nil {
		t.Fatal("empty mix accepted")
	}
}
