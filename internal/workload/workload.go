// Package workload synthesizes LLC-eviction traces that statistically match
// the 20 applications (12 from SPEC CPU 2017, 8 from PARSEC) the ESD paper
// evaluates. The paper's artifact replays gem5-generated traces of the real
// benchmarks; those are unavailable here, so each application is modelled by
// a Profile fitted to the paper's published workload statistics:
//
//   - the duplicate-cache-line rate of Fig. 1 (33.1%–99.9%, mean 62.9%),
//     including the zero-line-dominated behaviour of deepsjeng and roms;
//   - the content locality of Fig. 3: a tiny fraction of unique lines
//     (≈0.08%) receives >1000 references and accounts for a large share
//     (≈42.7%) of the pre-deduplication write volume;
//   - per-application memory intensity, read/write mix, footprint and
//     address locality (plausible values; these shape queueing pressure).
//
// The generator is exact about the skew construction: unique contents are
// partitioned into the paper's reference-count classes (num1, num10,
// num100, num1000, num1000+) and duplicate writes are drawn from an alias
// table weighted by each unique's target reference count, so the measured
// distribution downstream is an output, not an assumption.
package workload

import (
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/trace"
	"github.com/esdsim/esd/internal/xrand"
)

// Suite identifies the benchmark suite an application belongs to.
type Suite string

// Benchmark suites.
const (
	SPEC   Suite = "SPEC CPU 2017"
	PARSEC Suite = "PARSEC 2.1"
)

// Profile describes one application's memory behaviour.
type Profile struct {
	// Name is the benchmark name (e.g. "lbm").
	Name string
	// Suite is the benchmark suite.
	Suite Suite
	// DupRate is the target duplicate rate of written cache lines
	// (Fig. 1): the fraction of writes whose content was written before.
	DupRate float64
	// ZeroFrac is the fraction of writes carrying the all-zero line.
	ZeroFrac float64
	// WriteRatio is the fraction of memory-controller requests that are
	// writes (dirty LLC evictions); the rest are demand reads.
	WriteRatio float64
	// FootprintLines is the logical address-space size in cache lines.
	FootprintLines int
	// AddrTheta is the Zipf exponent of the address stream (0 = uniform).
	AddrTheta float64
	// MeanInterarrival is the mean request inter-arrival time at the
	// memory controller, aggregated over all cores.
	MeanInterarrival sim.Time
	// BurstLen is the mean burst length: LLC evictions and misses arrive
	// in back-to-back clumps (geometric length) separated by idle gaps,
	// while the overall mean rate stays 1/MeanInterarrival. Zero means
	// smooth Poisson arrivals.
	BurstLen float64
	// AlphabetBits controls content entropy: non-zero line bytes are drawn
	// from a 2^AlphabetBits-symbol alphabet with runs.
	AlphabetBits int
	// RunBreakProb is the probability a content byte starts a new run.
	RunBreakProb float64
	// MissesPerKiloInstr calibrates the IPC model: how many NVMM requests
	// the application issues per thousand instructions.
	MissesPerKiloInstr float64
}

// String implements fmt.Stringer.
func (p Profile) String() string {
	return fmt.Sprintf("%s (%s, dup=%.1f%%)", p.Name, p.Suite, p.DupRate*100)
}

// profiles is fitted so the Fig. 1 duplicate rates average 62.9% with a
// 33.1%–99.9% range and zero-line-dominated deepsjeng/roms.
var profiles = []Profile{
	// SPEC CPU 2017 (12 applications).
	{Name: "cactuBSSN", Suite: SPEC, DupRate: 0.450, ZeroFrac: 0.08, WriteRatio: 0.45, FootprintLines: 1 << 15, AddrTheta: 0.70, MeanInterarrival: 120 * sim.Nanosecond, BurstLen: 8, AlphabetBits: 5, RunBreakProb: 0.30, MissesPerKiloInstr: 18},
	{Name: "deepsjeng", Suite: SPEC, DupRate: 0.999, ZeroFrac: 0.985, WriteRatio: 0.40, FootprintLines: 1 << 15, AddrTheta: 0.80, MeanInterarrival: 160 * sim.Nanosecond, BurstLen: 8, AlphabetBits: 4, RunBreakProb: 0.25, MissesPerKiloInstr: 10},
	{Name: "gcc", Suite: SPEC, DupRate: 0.640, ZeroFrac: 0.22, WriteRatio: 0.40, FootprintLines: 1 << 15, AddrTheta: 0.90, MeanInterarrival: 140 * sim.Nanosecond, BurstLen: 8, AlphabetBits: 6, RunBreakProb: 0.35, MissesPerKiloInstr: 12},
	{Name: "imagick", Suite: SPEC, DupRate: 0.560, ZeroFrac: 0.10, WriteRatio: 0.50, FootprintLines: 1 << 15, AddrTheta: 0.60, MeanInterarrival: 200 * sim.Nanosecond, BurstLen: 8, AlphabetBits: 4, RunBreakProb: 0.20, MissesPerKiloInstr: 8},
	{Name: "lbm", Suite: SPEC, DupRate: 0.860, ZeroFrac: 0.05, WriteRatio: 0.60, FootprintLines: 1 << 15, AddrTheta: 0.60, MeanInterarrival: 48 * sim.Nanosecond, BurstLen: 8, AlphabetBits: 4, RunBreakProb: 0.15, MissesPerKiloInstr: 32},
	{Name: "leela", Suite: SPEC, DupRate: 0.680, ZeroFrac: 0.30, WriteRatio: 0.35, FootprintLines: 1 << 14, AddrTheta: 0.95, MeanInterarrival: 180 * sim.Nanosecond, BurstLen: 8, AlphabetBits: 5, RunBreakProb: 0.30, MissesPerKiloInstr: 7},
	{Name: "mcf", Suite: SPEC, DupRate: 0.830, ZeroFrac: 0.30, WriteRatio: 0.45, FootprintLines: 1 << 15, AddrTheta: 0.75, MeanInterarrival: 56 * sim.Nanosecond, BurstLen: 8, AlphabetBits: 5, RunBreakProb: 0.25, MissesPerKiloInstr: 28},
	{Name: "nab", Suite: SPEC, DupRate: 0.480, ZeroFrac: 0.06, WriteRatio: 0.40, FootprintLines: 1 << 15, AddrTheta: 0.65, MeanInterarrival: 240 * sim.Nanosecond, BurstLen: 8, AlphabetBits: 6, RunBreakProb: 0.40, MissesPerKiloInstr: 6},
	{Name: "namd", Suite: SPEC, DupRate: 0.410, ZeroFrac: 0.04, WriteRatio: 0.45, FootprintLines: 1 << 15, AddrTheta: 0.60, MeanInterarrival: 220 * sim.Nanosecond, BurstLen: 8, AlphabetBits: 6, RunBreakProb: 0.45, MissesPerKiloInstr: 6},
	{Name: "roms", Suite: SPEC, DupRate: 0.999, ZeroFrac: 0.985, WriteRatio: 0.55, FootprintLines: 1 << 15, AddrTheta: 0.60, MeanInterarrival: 72 * sim.Nanosecond, BurstLen: 8, AlphabetBits: 4, RunBreakProb: 0.20, MissesPerKiloInstr: 22},
	{Name: "wrf", Suite: SPEC, DupRate: 0.610, ZeroFrac: 0.12, WriteRatio: 0.50, FootprintLines: 1 << 15, AddrTheta: 0.70, MeanInterarrival: 112 * sim.Nanosecond, BurstLen: 8, AlphabetBits: 5, RunBreakProb: 0.30, MissesPerKiloInstr: 15},
	{Name: "xalancbmk", Suite: SPEC, DupRate: 0.600, ZeroFrac: 0.18, WriteRatio: 0.35, FootprintLines: 1 << 15, AddrTheta: 1.00, MeanInterarrival: 150 * sim.Nanosecond, BurstLen: 8, AlphabetBits: 6, RunBreakProb: 0.35, MissesPerKiloInstr: 11},
	// PARSEC (8 applications).
	{Name: "blackscholes", Suite: PARSEC, DupRate: 0.331, ZeroFrac: 0.03, WriteRatio: 0.40, FootprintLines: 1 << 14, AddrTheta: 0.60, MeanInterarrival: 320 * sim.Nanosecond, BurstLen: 8, AlphabetBits: 6, RunBreakProb: 0.50, MissesPerKiloInstr: 4},
	{Name: "bodytrack", Suite: PARSEC, DupRate: 0.570, ZeroFrac: 0.15, WriteRatio: 0.40, FootprintLines: 1 << 15, AddrTheta: 0.80, MeanInterarrival: 190 * sim.Nanosecond, BurstLen: 8, AlphabetBits: 5, RunBreakProb: 0.30, MissesPerKiloInstr: 8},
	{Name: "dedup", Suite: PARSEC, DupRate: 0.780, ZeroFrac: 0.25, WriteRatio: 0.55, FootprintLines: 1 << 15, AddrTheta: 0.70, MeanInterarrival: 128 * sim.Nanosecond, BurstLen: 8, AlphabetBits: 4, RunBreakProb: 0.20, MissesPerKiloInstr: 14},
	{Name: "facesim", Suite: PARSEC, DupRate: 0.530, ZeroFrac: 0.10, WriteRatio: 0.50, FootprintLines: 1 << 15, AddrTheta: 0.65, MeanInterarrival: 145 * sim.Nanosecond, BurstLen: 8, AlphabetBits: 5, RunBreakProb: 0.35, MissesPerKiloInstr: 12},
	{Name: "fluidanimate", Suite: PARSEC, DupRate: 0.700, ZeroFrac: 0.20, WriteRatio: 0.55, FootprintLines: 1 << 15, AddrTheta: 0.60, MeanInterarrival: 120 * sim.Nanosecond, BurstLen: 8, AlphabetBits: 4, RunBreakProb: 0.25, MissesPerKiloInstr: 13},
	{Name: "rtview", Suite: PARSEC, DupRate: 0.440, ZeroFrac: 0.06, WriteRatio: 0.35, FootprintLines: 1 << 15, AddrTheta: 0.85, MeanInterarrival: 280 * sim.Nanosecond, BurstLen: 8, AlphabetBits: 6, RunBreakProb: 0.40, MissesPerKiloInstr: 5},
	{Name: "swaptions", Suite: PARSEC, DupRate: 0.380, ZeroFrac: 0.04, WriteRatio: 0.40, FootprintLines: 1 << 14, AddrTheta: 0.70, MeanInterarrival: 360 * sim.Nanosecond, BurstLen: 8, AlphabetBits: 6, RunBreakProb: 0.50, MissesPerKiloInstr: 3},
	{Name: "x264", Suite: PARSEC, DupRate: 0.740, ZeroFrac: 0.18, WriteRatio: 0.50, FootprintLines: 1 << 15, AddrTheta: 0.75, MeanInterarrival: 130 * sim.Nanosecond, BurstLen: 8, AlphabetBits: 5, RunBreakProb: 0.25, MissesPerKiloInstr: 13},
}

// Profiles returns the 20 application profiles in suite order. The returned
// slice is a copy; callers may mutate it.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// Names returns the application names in suite order.
func Names() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}

// ByName looks up a profile by benchmark name.
func ByName(name string) (Profile, bool) {
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// RefClass is a reference-count bucket matching Fig. 3's x axis.
type RefClass int

// Reference-count classes: Num1 is written exactly once; Num10 between 2
// and 10 times; and so on. Num1000Plus is written more than 1000 times.
const (
	Num1 RefClass = iota
	Num10
	Num100
	Num1000
	Num1000Plus
	NumClasses
)

// String implements fmt.Stringer.
func (c RefClass) String() string {
	switch c {
	case Num1:
		return "num1"
	case Num10:
		return "num10"
	case Num100:
		return "num100"
	case Num1000:
		return "num1000"
	case Num1000Plus:
		return "num1000+"
	default:
		return fmt.Sprintf("RefClass(%d)", int(c))
	}
}

// ClassOf buckets a reference count into its class.
func ClassOf(refCount uint64) RefClass {
	switch {
	case refCount <= 1:
		return Num1
	case refCount <= 10:
		return Num10
	case refCount <= 100:
		return Num100
	case refCount <= 1000:
		return Num1000
	default:
		return Num1000Plus
	}
}

// Duplicate-class write-share template (classes Num10..Num1000Plus) and the
// geometric-mean reference count used to convert write shares to unique
// counts. The heavy tail share makes ≈40% of pre-dedup volume land on the
// >1000-reference uniques, matching Fig. 3.
var (
	classShare = [NumClasses]float64{0, 0.15, 0.13, 0.12, 0.60}
	classLo    = [NumClasses]float64{1, 2, 11, 101, 1001}
	classHi    = [NumClasses]float64{1, 10, 100, 1000, 16000}
)

// Generator produces a deterministic synthetic trace for one profile.
type Generator struct {
	p    Profile
	rng  *xrand.Rand
	seed uint64

	pool     []poolEntry // non-zero unique contents
	schedule []uint64    // shuffled multiset of content ids for writes
	pos      int
	addrZipf *xrand.Zipf

	now       sim.Time
	burstLeft int
}

type poolEntry struct {
	index uint64 // content id, embedded into the line for uniqueness
	count int    // planned number of writes carrying this content
	class RefClass
}

// NewGenerator plans a content pool sized for about plannedWrites write
// records and returns a generator. The same (profile, seed, plannedWrites)
// triple always yields the identical trace.
func NewGenerator(p Profile, seed uint64, plannedWrites int) *Generator {
	if plannedWrites < 1 {
		plannedWrites = 1
	}
	g := &Generator{p: p, rng: xrand.New(seed ^ 0xE5D0_0001), seed: seed}

	// Split the duplicate-rate target between the zero line and the
	// content-locality classes (see package comment for the algebra).
	z := p.ZeroFrac
	dPrime := 0.0
	if z < 1 {
		dPrime = (p.DupRate - z) / (1 - z)
	}
	if dPrime < 0 {
		dPrime = 0
	}
	if dPrime > 0.95 {
		dPrime = 0.95 // keep the num1 share non-negative
	}

	// lambda scales the duplicate-class template so the overall duplicate
	// rate of non-zero writes is dPrime: d' = lambda * (T - sum t_c/m_c)
	// with T = sum t_c = 1.
	sumTm := 0.0
	for c := Num10; c <= Num1000Plus; c++ {
		sumTm += classShare[c] / logUniformMean(classLo[c], classHi[c])
	}
	lambda := dPrime / (1 - sumTm)
	share1 := 1 - lambda // write share of the num1 (never-duplicated) class

	nonZeroWrites := float64(plannedWrites) * (1 - z)
	// num1 uniques: one write each.
	n1 := int(math.Round(share1 * nonZeroWrites))
	if n1 < 1 {
		n1 = 1
	}
	for i := 0; i < n1; i++ {
		g.pool = append(g.pool, poolEntry{index: uint64(len(g.pool) + 1), count: 1, class: Num1})
	}
	// Duplicate classes: log-uniform reference counts within each range,
	// drawn until the class's write budget is spent. Capping each draw at
	// the remaining budget keeps the realized write volume equal to the
	// plan even when a heavy-tailed class holds only a fraction of one
	// "average" unique (small traces, zero-dominated applications).
	for c := Num10; c <= Num1000Plus; c++ {
		remaining := lambda * classShare[c] * nonZeroWrites
		for remaining >= classLo[c] {
			hi := classHi[c]
			if remaining < hi {
				hi = remaining
			}
			ref := int(math.Round(logUniform(g.rng, classLo[c], hi)))
			if ref < int(classLo[c]) {
				ref = int(classLo[c])
			}
			g.pool = append(g.pool, poolEntry{index: uint64(len(g.pool) + 1), count: ref, class: c})
			remaining -= float64(ref)
		}
	}

	// Build the exact write schedule: each unique appears exactly `count`
	// times, the zero line fills its share, and the whole multiset is
	// shuffled. This makes the duplicate rate and reference-count classes
	// exact by construction rather than approximate under resampling.
	zeroWrites := int(math.Round(z * float64(plannedWrites)))
	total := zeroWrites
	for _, e := range g.pool {
		total += e.count
	}
	g.schedule = make([]uint64, 0, total)
	for i := 0; i < zeroWrites; i++ {
		g.schedule = append(g.schedule, 0)
	}
	for _, e := range g.pool {
		for i := 0; i < e.count; i++ {
			g.schedule = append(g.schedule, e.index)
		}
	}
	g.rng.Shuffle(len(g.schedule), func(i, j int) {
		g.schedule[i], g.schedule[j] = g.schedule[j], g.schedule[i]
	})
	g.addrZipf = xrand.NewZipf(g.rng, p.AddrTheta, p.FootprintLines)
	return g
}

// logUniformMean is the arithmetic mean of a log-uniform distribution on
// [lo, hi]: (hi-lo)/ln(hi/lo).
func logUniformMean(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return (hi - lo) / math.Log(hi/lo)
}

func logUniform(r *xrand.Rand, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return math.Exp(math.Log(lo) + r.Float64()*(math.Log(hi)-math.Log(lo)))
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

// PoolSize returns the number of distinct non-zero contents in the pool.
func (g *Generator) PoolSize() int { return len(g.pool) }

// Content materializes the unique content with the given pool id. Id 0 is
// the all-zero line; ids >= 1 are pool entries. Each content embeds its id
// so distinct ids are guaranteed to yield distinct lines, while the rest of
// the bytes are low-entropy runs matching real-data compressibility.
func (g *Generator) Content(id uint64) ecc.Line {
	var l ecc.Line
	if id == 0 {
		return l
	}
	cr := xrand.New(g.seed ^ 0xC0_47E47 ^ id*0x9E3779B97F4A7C15)
	mask := byte(1<<uint(g.p.AlphabetBits) - 1)
	v := byte(cr.Uint64()) & mask
	for i := 8; i < len(l); i++ {
		if cr.Bool(g.p.RunBreakProb) {
			v = byte(cr.Uint64()) & mask
		}
		l[i] = v
	}
	// Embed the id in word 0 (scrambled) to guarantee distinctness.
	l.SetWord(0, (id*0x9E3779B97F4A7C15)^g.seed)
	return l
}

// nextWriteContent pops the next content id from the shuffled schedule.
// If a stream overruns its planned write count, the schedule is reshuffled
// and replayed, which keeps the content statistics stationary.
func (g *Generator) nextWriteContent() uint64 {
	if len(g.schedule) == 0 {
		return 0
	}
	if g.pos >= len(g.schedule) {
		g.pos = 0
		g.rng.Shuffle(len(g.schedule), func(i, j int) {
			g.schedule[i], g.schedule[j] = g.schedule[j], g.schedule[i]
		})
	}
	id := g.schedule[g.pos]
	g.pos++
	return id
}

// burstGap is the back-to-back spacing of requests inside a burst.
const burstGap = 4 * sim.Nanosecond

// advanceClock moves simulated time to the next arrival. With BurstLen
// enabled, requests clump into geometric-length bursts at bus rate,
// separated by exponential gaps sized to preserve the mean rate.
func (g *Generator) advanceClock() {
	if g.p.BurstLen <= 1 {
		g.now += sim.Time(g.rng.ExpFloat64() * float64(g.p.MeanInterarrival))
		return
	}
	if g.burstLeft > 0 {
		g.burstLeft--
		g.now += burstGap
		return
	}
	// Start a new burst: geometric length with the configured mean.
	length := 1
	for g.rng.Float64() >= 1/g.p.BurstLen {
		length++
	}
	g.burstLeft = length - 1
	gapMean := g.p.BurstLen*float64(g.p.MeanInterarrival) - (g.p.BurstLen-1)*float64(burstGap)
	if gapMean < float64(burstGap) {
		gapMean = float64(burstGap)
	}
	g.now += sim.Time(g.rng.ExpFloat64() * gapMean)
}

// SampleWriteContent draws the content id of the next written line from
// the schedule; exported for drivers (e.g. the CPU-cache front end) that
// assemble their own access streams but want this profile's content
// statistics.
func (g *Generator) SampleWriteContent() uint64 { return g.nextWriteContent() }

// SampleAddr draws the next line address from the profile's Zipf stream.
func (g *Generator) SampleAddr() uint64 { return uint64(g.addrZipf.Next()) }

// Next produces the next trace record.
func (g *Generator) Next() (trace.Record, error) {
	g.advanceClock()
	addr := uint64(g.addrZipf.Next())
	if g.rng.Bool(g.p.WriteRatio) {
		id := g.nextWriteContent()
		return trace.Record{Op: trace.OpWrite, Addr: addr, At: g.now, Data: g.Content(id)}, nil
	}
	return trace.Record{Op: trace.OpRead, Addr: addr, At: g.now}, nil
}

// Records generates the next n records eagerly.
func (g *Generator) Records(n int) []trace.Record {
	out := make([]trace.Record, n)
	for i := range out {
		out[i], _ = g.Next()
	}
	return out
}

// Stream returns a trace.Stream yielding exactly n records. The profile's
// planned write count should roughly match n*WriteRatio for the duplicate
// statistics to hit their targets.
func Stream(p Profile, seed uint64, n int) trace.Stream {
	g := NewGenerator(p, seed, int(float64(n)*p.WriteRatio)+1)
	return &genStream{g: g, left: n}
}

type genStream struct {
	g    *Generator
	left int
}

func (s *genStream) Next() (trace.Record, error) {
	if s.left <= 0 {
		return trace.Record{}, io.EOF
	}
	s.left--
	return s.g.Next()
}

// DupStats summarizes the content statistics of a write stream; it is the
// measurement behind Fig. 1 and Fig. 3.
type DupStats struct {
	Writes      uint64
	UniqueLines uint64
	ZeroWrites  uint64
	DupRate     float64
	// ClassUniques[c] counts unique contents whose total write count falls
	// in class c; ClassWrites[c] counts the pre-dedup write volume they
	// account for.
	ClassUniques [NumClasses]uint64
	ClassWrites  [NumClasses]uint64
}

// UniqueShare returns the fraction of unique lines in class c.
func (s DupStats) UniqueShare(c RefClass) float64 {
	if s.UniqueLines == 0 {
		return 0
	}
	return float64(s.ClassUniques[c]) / float64(s.UniqueLines)
}

// WriteShare returns the fraction of pre-dedup write volume in class c.
func (s DupStats) WriteShare(c RefClass) float64 {
	if s.Writes == 0 {
		return 0
	}
	return float64(s.ClassWrites[c]) / float64(s.Writes)
}

// MeasureDup replays a stream and computes its exact duplicate statistics
// by full-content indexing (an offline oracle, not a scheme).
func MeasureDup(s trace.Stream) (DupStats, error) {
	var st DupStats
	counts := map[ecc.Line]uint64{}
	for {
		r, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, err
		}
		if r.Op != trace.OpWrite {
			continue
		}
		st.Writes++
		counts[r.Data]++
		if r.Data.IsZero() {
			st.ZeroWrites++
		}
	}
	st.UniqueLines = uint64(len(counts))
	if st.Writes > 0 {
		st.DupRate = 1 - float64(st.UniqueLines)/float64(st.Writes)
	}
	for _, n := range counts {
		c := ClassOf(n)
		st.ClassUniques[c]++
		st.ClassWrites[c] += n
	}
	return st, nil
}

// SortedProfileNames returns all profile names sorted alphabetically;
// useful for deterministic CLI listings.
func SortedProfileNames() []string {
	names := Names()
	sort.Strings(names)
	return names
}

// NearDupStream generates a write-dominated trace containing *partial*
// duplicates: a population of base contents plus variants that differ from
// their base in one to maxDeltaWords 8-byte words. Exact-dedup schemes see
// only the exact repeats; delta-compression designs (the BCD extension)
// can also compress the variants. The mix is 30% exact repeats, 40%
// near-duplicates, 30% unique lines, at a 70% write ratio.
func NearDupStream(seed uint64, n, footprintLines, maxDeltaWords int) trace.Stream {
	if footprintLines < 1 {
		footprintLines = 1
	}
	if maxDeltaWords < 1 {
		maxDeltaWords = 1
	}
	rng := xrand.New(seed ^ 0xBCD)
	var bases []ecc.Line
	now := sim.Time(0)
	records := make([]trace.Record, 0, n)
	for i := 0; i < n; i++ {
		now += sim.Time(rng.ExpFloat64() * float64(120*sim.Nanosecond))
		addr := rng.Uint64n(uint64(footprintLines))
		if !rng.Bool(0.7) {
			records = append(records, trace.Record{Op: trace.OpRead, Addr: addr, At: now})
			continue
		}
		var data ecc.Line
		switch {
		case len(bases) > 0 && rng.Bool(0.3):
			// Exact repeat of an existing base.
			data = bases[rng.Intn(len(bases))]
		case len(bases) > 0 && rng.Bool(0.4/0.7):
			// Near-duplicate: patch 1..maxDeltaWords words of a base.
			data = bases[rng.Intn(len(bases))]
			k := 1 + rng.Intn(maxDeltaWords)
			for j := 0; j < k; j++ {
				data.SetWord(7-j, rng.Uint64())
			}
		default:
			// Fresh unique content; becomes a new base.
			for w := 0; w < 8; w++ {
				data.SetWord(w, rng.Uint64())
			}
			bases = append(bases, data)
		}
		records = append(records, trace.Record{Op: trace.OpWrite, Addr: addr, At: now, Data: data})
	}
	return trace.NewSliceStream(records)
}

// Mix builds a multi-programmed workload: the named applications run
// concurrently against one memory controller, their streams merged in
// time order with each application's logical addresses relocated to a
// disjoint region (app index in the top address bits). n is the total
// record budget, split evenly.
func Mix(seed uint64, n int, apps ...string) (trace.Stream, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("workload: Mix needs at least one application")
	}
	per := n / len(apps)
	if per < 1 {
		per = 1
	}
	streams := make([]trace.Stream, 0, len(apps))
	for i, name := range apps {
		p, ok := ByName(name)
		if !ok {
			return nil, fmt.Errorf("workload: unknown application %q", name)
		}
		offset := uint64(i) << 32
		inner := Stream(p, seed+uint64(i)*0x9E37, per)
		streams = append(streams, relocate(inner, offset))
	}
	return trace.Merge(streams...), nil
}

// relocate shifts every record's address by offset.
func relocate(s trace.Stream, offset uint64) trace.Stream {
	return relocStream{s: s, offset: offset}
}

type relocStream struct {
	s      trace.Stream
	offset uint64
}

func (r relocStream) Next() (trace.Record, error) {
	rec, err := r.s.Next()
	if err != nil {
		return rec, err
	}
	rec.Addr += r.offset
	return rec, nil
}
