package config

import (
	"testing"

	"github.com/esdsim/esd/internal/sim"
)

func TestDefaultMatchesTableI(t *testing.T) {
	c := Default()
	if c.CPU.Cores != 8 || c.CPU.ClockHz != 2e9 {
		t.Errorf("CPU = %+v, want 8 cores at 2 GHz", c.CPU)
	}
	if c.L1.Size != 32<<10 || c.L2.Size != 256<<10 || c.L3.Size != 16<<20 {
		t.Errorf("cache sizes = %d/%d/%d", c.L1.Size, c.L2.Size, c.L3.Size)
	}
	if c.L1.Ways != 8 || c.L2.Ways != 8 || c.L3.Ways != 8 {
		t.Error("all cache levels must be 8-way")
	}
	if c.PCM.CapacityBytes != 16<<30 {
		t.Errorf("PCM capacity = %d, want 16 GiB", c.PCM.CapacityBytes)
	}
	if c.PCM.ReadLatency != 75*sim.Nanosecond || c.PCM.WriteLatency != 150*sim.Nanosecond {
		t.Errorf("PCM latencies = %v/%v, want 75ns/150ns", c.PCM.ReadLatency, c.PCM.WriteLatency)
	}
	if c.PCM.ReadEnergy != 1.49 || c.PCM.WriteEnergy != 6.75 {
		t.Errorf("PCM energies = %v/%v, want 1.49/6.75 nJ", c.PCM.ReadEnergy, c.PCM.WriteEnergy)
	}
	if c.Meta.EFITCacheBytes != 512<<10 || c.Meta.AMTCacheBytes != 512<<10 {
		t.Error("metadata caches must default to 512 KB each")
	}
	if c.FP.SHA1Latency != 321*sim.Nanosecond || c.FP.MD5Latency != 312*sim.Nanosecond {
		t.Errorf("hash latencies = %v/%v", c.FP.SHA1Latency, c.FP.MD5Latency)
	}
}

func TestDefaultValidates(t *testing.T) {
	if msg := Default().Validate(); msg != "" {
		t.Fatalf("default config invalid: %s", msg)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := map[string]func(*Config){
		"cores":      func(c *Config) { c.CPU.Cores = 0 },
		"clock":      func(c *Config) { c.CPU.ClockHz = 0 },
		"banks":      func(c *Config) { c.PCM.Banks = 0 },
		"capacity":   func(c *Config) { c.PCM.CapacityBytes = 1 },
		"readLat":    func(c *Config) { c.PCM.ReadLatency = 0 },
		"writeQ":     func(c *Config) { c.PCM.WriteQueueDepth = 0 },
		"efitCache":  func(c *Config) { c.Meta.EFITCacheBytes = 0 },
		"referHHigh": func(c *Config) { c.ESD.ReferHMax = 300 },
		"referHZero": func(c *Config) { c.ESD.ReferHMax = 0 },
		"refresh":    func(c *Config) { c.ESD.RefreshInterval = 0 },
	}
	for name, mutate := range mutations {
		c := Default()
		mutate(&c)
		if c.Validate() == "" {
			t.Errorf("%s: invalid config passed validation", name)
		}
	}
}

func TestEntrySizesMatchPaper(t *testing.T) {
	c := Default()
	// §III-B: EFIT entry = ECC(8) + Addr_base(4) + Addr_offsets(1) + referH(1).
	if c.Meta.EFITEntryBytes != 14 {
		t.Errorf("EFIT entry = %d B, want 14", c.Meta.EFITEntryBytes)
	}
	// AMT entry = InitAddr(5) + Addr_base(4) + Addr_offsets(1).
	if c.Meta.AMTEntryBytes != 10 {
		t.Errorf("AMT entry = %d B, want 10", c.Meta.AMTEntryBytes)
	}
	// §IV-G: DeWrite maintains 16 B + 3 bits per line; we round to 17 B.
	if c.DeWrite.FPEntryBytes != 17 {
		t.Errorf("DeWrite entry = %d B, want 17", c.DeWrite.FPEntryBytes)
	}
	// SHA-1 entry: 160-bit digest + address + refcount = 26 B.
	if c.SHA1.FPEntryBytes != 26 {
		t.Errorf("SHA1 entry = %d B, want 26", c.SHA1.FPEntryBytes)
	}
}

func TestCycleTime(t *testing.T) {
	c := Default()
	if ct := c.CPU.CycleTime(); ct != 500*sim.Picosecond {
		t.Errorf("2 GHz cycle = %v, want 500ps", ct)
	}
}

func TestPCMLines(t *testing.T) {
	c := Default()
	if lines := c.PCM.Lines(); lines != (16<<30)/64 {
		t.Errorf("PCM lines = %d", lines)
	}
}
