// Package config centralizes every tunable parameter of the simulated
// system. Defaults reproduce Table I of the ESD paper (HPCA 2023) plus the
// cost-model constants discussed in its evaluation section.
//
// All latencies are sim.Time (picoseconds); all energies are nanojoules per
// operation. Keeping the constants in one place makes the substitutions
// documented in DESIGN.md auditable: anything not taken verbatim from the
// paper is flagged in a comment.
package config

import "github.com/esdsim/esd/internal/sim"

// CacheLineSize is the cache-line granularity in bytes, fixed at 64
// throughout the paper and this implementation.
const CacheLineSize = 64

// CPU describes the processor model used to convert memory latencies into
// IPC figures.
type CPU struct {
	// Cores is the number of cores generating traffic.
	Cores int
	// ClockHz is the core clock (Table I: 2 GHz).
	ClockHz float64
	// BaseCPI is the cycles-per-instruction of the core if memory were
	// free. 1.0 models the in-order 8-wide-ish cores gem5 defaults to.
	BaseCPI float64
	// ReadMLP is the average number of outstanding demand reads the core
	// sustains; measured read latency is divided by this factor when
	// charging stall cycles.
	ReadMLP float64
	// WriteBufferStallPenalty scales how much full write buffers stall the
	// core (writes are normally posted and invisible).
	WriteBufferStallPenalty float64
	// MaxOutstanding bounds the number of in-flight memory requests: the
	// core stalls (arrivals are pushed back) once this many requests are
	// incomplete, modelling MSHR/write-buffer back-pressure. Without this
	// closed loop, a scheme slower than the arrival rate would build an
	// unbounded queue instead of slowing the application down.
	MaxOutstanding int
}

// CacheLevel describes one level of the on-chip SRAM hierarchy.
type CacheLevel struct {
	Size    int      // bytes
	Ways    int      // associativity
	Latency sim.Time // access latency
}

// PCM describes the NVMM device (Table I plus bank-level parameters taken
// from NVMain's default PCM model — a documented substitution).
type PCM struct {
	// CapacityBytes is the device capacity (Table I: 16 GB).
	CapacityBytes int64
	// Banks is the number of independent banks; requests interleave across
	// banks by line address. (NVMain-style; 8 by default).
	Banks int
	// ReadLatency and WriteLatency are per-line media latencies
	// (Table I: 75 ns / 150 ns).
	ReadLatency  sim.Time
	WriteLatency sim.Time
	// RowHitLatency is the latency of re-reading the line currently held
	// in a bank's row buffer (NVMain-style open-row policy).
	RowHitLatency sim.Time
	// ReadEnergy and WriteEnergy are per-line media energies in nJ
	// (Table I: 1.49 / 6.75).
	ReadEnergy  float64
	WriteEnergy float64
	// WriteQueueDepth is the per-bank posted-write buffer depth. Reads
	// bypass queued writes (read priority); a full buffer stalls writers.
	WriteQueueDepth int
	// DrainHigh / DrainLow are the write-queue watermarks: when a bank's
	// queue reaches DrainHigh, the bank drains writes down to DrainLow
	// before serving further reads (standard write-drain policy). This is
	// the mechanism through which write traffic delays reads.
	DrainHigh int
	DrainLow  int
	// BusLatency is the channel/bus transfer time per 64B line.
	BusLatency sim.Time
	// FaultBank and FaultExtraLatency inject a degraded bank: every media
	// read and write serviced by bank FaultBank takes FaultExtraLatency
	// longer (<= 0 disables injection). A debugging aid, not part of the
	// paper's model — examples/flightrecorder uses it to demonstrate
	// diagnosing a slow bank from a flight-recorder dump.
	FaultBank         int
	FaultExtraLatency sim.Time
}

// DRAM describes the volatile buffer of the hybrid DRAM/PCM tier (scheme
// ESD+CARAM). Latencies follow DDR4-class timing; energies are per-line
// nJ an order of magnitude below PCM's (documented substitution — CARAM,
// arxiv 2007.13661, Table 1 ballpark).
type DRAM struct {
	// CapacityBytes is the DRAM buffer capacity. CARAM evaluates a buffer
	// a small fraction of the PCM size; the default is 1/16th of Table I's
	// 16 GB device.
	CapacityBytes int64
	// Banks is the number of independent DRAM banks.
	Banks int
	// ReadLatency / WriteLatency are per-line media latencies.
	ReadLatency  sim.Time
	WriteLatency sim.Time
	// BusLatency is the channel transfer time per 64B line.
	BusLatency sim.Time
	// ReadEnergy / WriteEnergy are per-line energies in nJ.
	ReadEnergy  float64
	WriteEnergy float64
}

// Lines reports how many cache lines the DRAM buffer holds.
func (d DRAM) Lines() int64 { return d.CapacityBytes / CacheLineSize }

// Media describes the hybrid-tier placement and crash-consistency policy
// layered over DRAM+PCM (scheme ESD+CARAM). All fields have working
// defaults; the hybrid backend fills zero values at enable time so a
// hand-built Config that never selects ESD+CARAM needs none of them.
type Media struct {
	// DRAM is the volatile buffer device.
	DRAM DRAM
	// PromoteThreshold is the heat a line must accumulate before it is
	// promoted into DRAM. Heat grows by 1 per access and by RefBoost per
	// duplicate-reference hit, and decays by halving every DecayEvery
	// accesses, so the threshold expresses "hot or duplicate-heavy
	// recently", not "ever touched twice".
	PromoteThreshold int
	// RefBoost is the heat added when the dedup engine reports a line
	// gained a duplicate reference (the EFIT/refcount signal CARAM keys
	// placement on).
	RefBoost int
	// DecayEvery is the number of hybrid-tier accesses per heat epoch;
	// each epoch boundary halves every line's effective heat (lazily, on
	// next touch), so stale heat cannot pin yesterday's hot set in DRAM.
	DecayEvery int
	// WALLines is the number of PCM lines the rotating write-ahead log
	// spreads its persists over. The log carries the crash-consistency
	// guarantee for DRAM-resident writes: every acknowledged write hits
	// one of these lines before it is installed volatile-side.
	WALLines int64
}

// Normalized fills zero Media fields with defaults scaled to the PCM
// device p and clamps the DRAM buffer to a meaningful fraction of it, so
// a hybrid scheme can be enabled on any Config — including hand-built
// ones that never mention Media. Zero policy fields mean "default", not
// "off"; the hybrid tier is enabled by scheme selection, not by these
// values.
func (m Media) Normalized(p PCM) Media {
	if m.DRAM.CapacityBytes <= 0 {
		m.DRAM.CapacityBytes = p.CapacityBytes / 16
	}
	if m.DRAM.CapacityBytes > p.CapacityBytes/2 {
		m.DRAM.CapacityBytes = p.CapacityBytes / 2
	}
	if m.DRAM.CapacityBytes < CacheLineSize {
		m.DRAM.CapacityBytes = CacheLineSize
	}
	if m.DRAM.Banks <= 0 {
		m.DRAM.Banks = 8
	}
	if m.DRAM.ReadLatency <= 0 {
		m.DRAM.ReadLatency = 15 * sim.Nanosecond
	}
	if m.DRAM.WriteLatency <= 0 {
		m.DRAM.WriteLatency = 15 * sim.Nanosecond
	}
	if m.DRAM.BusLatency <= 0 {
		m.DRAM.BusLatency = 4 * sim.Nanosecond
	}
	if m.DRAM.ReadEnergy <= 0 {
		m.DRAM.ReadEnergy = 0.17
	}
	if m.DRAM.WriteEnergy <= 0 {
		m.DRAM.WriteEnergy = 0.39
	}
	if m.PromoteThreshold <= 0 {
		m.PromoteThreshold = 3
	}
	if m.RefBoost <= 0 {
		m.RefBoost = 2
	}
	if m.DecayEvery <= 0 {
		m.DecayEvery = 4096
	}
	if m.WALLines <= 0 {
		m.WALLines = 4096
	}
	return m
}

// Metadata describes the memory-controller SRAM metadata caches.
type Metadata struct {
	// EFITCacheBytes is the ECC-fingerprint index table cache capacity
	// (Table I: 512 KB).
	EFITCacheBytes int
	// AMTCacheBytes is the address-mapping-table cache capacity
	// (Table I: 512 KB).
	AMTCacheBytes int
	// SRAMLatency is the probe latency of either SRAM structure.
	SRAMLatency sim.Time
	// SRAMEnergy is the per-probe energy in nJ. (Substitution: typical
	// 512 KB SRAM read energy, CACTI-style.)
	SRAMEnergy float64
	// EFITEntryBytes / AMTEntryBytes are per-entry sizes from §III-B:
	// EFIT <ECC 8B, Addr_base 4B, Addr_offsets 1B, referH 1B> = 14 B,
	// AMT <InitAddr 5B, Addr_base 4B, Addr_offsets 1B> = 10 B.
	EFITEntryBytes int
	AMTEntryBytes  int
}

// Crypto describes the counter-mode encryption engine.
type Crypto struct {
	// EncryptLatency is the serial latency of producing/consuming the
	// one-time pad for one line. (Substitution: AES pipeline ~40 ns,
	// consistent with DEUCE/DeWrite assumptions.)
	EncryptLatency sim.Time
	// EncryptEnergy is per-line AES energy in nJ.
	EncryptEnergy float64
	// CounterCacheBytes is the per-line counter cache capacity.
	CounterCacheBytes int
	// IntegrityEnabled attaches a Merkle counter tree (internal/integrity)
	// that authenticates encryption counters against replay: reads verify
	// the counter path, writes refresh it. Off by default, matching the
	// paper's evaluation; the ablation-integrity experiment quantifies it.
	IntegrityEnabled bool
}

// FingerprintCosts carries the latency/energy model of the hash units used
// by the comparison schemes (§III-C: 312 ns MD5, 321 ns SHA-1; CRC is
// lightweight; energies follow the Westermann et al. style model cited by
// the paper — a documented substitution for absolute values).
type FingerprintCosts struct {
	SHA1Latency  sim.Time
	SHA1Energy   float64
	MD5Latency   sim.Time
	MD5Energy    float64
	CRCLatency   sim.Time
	CRCEnergy    float64
	CompareTime  sim.Time // byte-by-byte comparison of two on-chip lines
	CompareEnery float64
}

// DeWrite describes the DeWrite-specific duplication predictor.
type DeWrite struct {
	// PredictorEntries is the size of the per-line-address 2-bit
	// saturating-counter prediction table.
	PredictorEntries int
	// FPCacheBytes is the on-chip fingerprint cache; the full fingerprint
	// store lives in NVMM (full deduplication).
	FPCacheBytes int
	// FPEntryBytes: DeWrite keeps 16 B + 3 bits per physical line (§IV-G);
	// we round the NVMM-resident entry to 17 B.
	FPEntryBytes int
}

// ESD describes the ESD-specific parameters.
type ESD struct {
	// ReferHMax is the saturating reference-count limit (1 byte => 255;
	// §III-B: when exceeded the line is treated as new and rewritten).
	ReferHMax int
	// RefreshInterval is the period of the LRCU regular refresh that
	// subtracts RefreshDecay from every cached reference count (§III-D).
	RefreshInterval sim.Time
	// RefreshDecay is the fixed value subtracted at each refresh.
	RefreshDecay int
}

// SHA1Dedup describes the Dedup_SHA1 comparison scheme.
type SHA1Dedup struct {
	// FPCacheBytes is the on-chip fingerprint cache capacity.
	FPCacheBytes int
	// FPEntryBytes is the NVMM-resident entry: 20 B digest + 5 B physical
	// address + 1 B refcount = 26 B.
	FPEntryBytes int
}

// Config aggregates the whole system configuration.
type Config struct {
	Seed uint64

	CPU  CPU
	L1   CacheLevel
	L2   CacheLevel
	L3   CacheLevel
	PCM  PCM
	Meta Metadata
	// Media configures the hybrid DRAM/PCM tier; it is inert unless a
	// hybrid scheme (ESD+CARAM) is selected.
	Media Media

	Crypto Crypto
	FP     FingerprintCosts

	DeWrite DeWrite
	ESD     ESD
	SHA1    SHA1Dedup
}

// Default returns the paper's Table I configuration with the documented
// cost-model substitutions.
func Default() Config {
	return Config{
		Seed: 1,
		CPU: CPU{
			Cores:                   8,
			ClockHz:                 2e9,
			BaseCPI:                 1.0,
			ReadMLP:                 4,
			WriteBufferStallPenalty: 1,
			MaxOutstanding:          16,
		},
		L1: CacheLevel{Size: 32 << 10, Ways: 8, Latency: 2 * cycle2GHz},
		L2: CacheLevel{Size: 256 << 10, Ways: 8, Latency: 8 * cycle2GHz},
		L3: CacheLevel{Size: 16 << 20, Ways: 8, Latency: 25 * cycle2GHz},
		PCM: PCM{
			CapacityBytes:   16 << 30,
			Banks:           8,
			ReadLatency:     75 * sim.Nanosecond,
			WriteLatency:    150 * sim.Nanosecond,
			RowHitLatency:   20 * sim.Nanosecond,
			ReadEnergy:      1.49,
			WriteEnergy:     6.75,
			WriteQueueDepth: 8,
			DrainHigh:       4,
			DrainLow:        1,
			BusLatency:      4 * sim.Nanosecond,
		},
		Media: Media{
			DRAM: DRAM{
				CapacityBytes: 1 << 30,
				Banks:         8,
				ReadLatency:   15 * sim.Nanosecond,
				WriteLatency:  15 * sim.Nanosecond,
				BusLatency:    4 * sim.Nanosecond,
				ReadEnergy:    0.17,
				WriteEnergy:   0.39,
			},
			PromoteThreshold: 3,
			RefBoost:         2,
			DecayEvery:       4096,
			WALLines:         4096,
		},
		Meta: Metadata{
			EFITCacheBytes: 512 << 10,
			AMTCacheBytes:  512 << 10,
			SRAMLatency:    2 * sim.Nanosecond,
			SRAMEnergy:     0.01,
			EFITEntryBytes: 14,
			AMTEntryBytes:  10,
		},
		Crypto: Crypto{
			EncryptLatency:    40 * sim.Nanosecond,
			EncryptEnergy:     1.2,
			CounterCacheBytes: 128 << 10,
		},
		FP: FingerprintCosts{
			SHA1Latency:  321 * sim.Nanosecond,
			SHA1Energy:   5.1,
			MD5Latency:   312 * sim.Nanosecond,
			MD5Energy:    4.8,
			CRCLatency:   30 * sim.Nanosecond,
			CRCEnergy:    0.9,
			CompareTime:  4 * sim.Nanosecond,
			CompareEnery: 0.05,
		},
		DeWrite: DeWrite{
			PredictorEntries: 16 << 10,
			FPCacheBytes:     512 << 10,
			FPEntryBytes:     17,
		},
		ESD: ESD{
			ReferHMax:       255,
			RefreshInterval: 100 * sim.Microsecond,
			RefreshDecay:    1,
		},
		SHA1: SHA1Dedup{
			FPCacheBytes: 512 << 10,
			FPEntryBytes: 26,
		},
	}
}

// cycle2GHz is one 2 GHz core cycle.
const cycle2GHz = sim.Time(500) * sim.Picosecond

// CycleTime returns the duration of one CPU clock cycle.
func (c CPU) CycleTime() sim.Time {
	return sim.Time(1e12 / c.ClockHz)
}

// Lines reports how many cache lines the PCM device holds.
func (p PCM) Lines() int64 { return p.CapacityBytes / CacheLineSize }

// Validate checks internal consistency and returns a descriptive error
// string ("" when valid).
func (c Config) Validate() string {
	switch {
	case c.CPU.Cores <= 0:
		return "config: CPU.Cores must be positive"
	case c.CPU.ClockHz <= 0:
		return "config: CPU.ClockHz must be positive"
	case c.PCM.Banks <= 0:
		return "config: PCM.Banks must be positive"
	case c.PCM.CapacityBytes < CacheLineSize:
		return "config: PCM capacity smaller than one line"
	case c.PCM.ReadLatency <= 0 || c.PCM.WriteLatency <= 0:
		return "config: PCM latencies must be positive"
	case c.PCM.RowHitLatency < 0 || c.PCM.RowHitLatency > c.PCM.ReadLatency:
		return "config: PCM.RowHitLatency must be in [0, ReadLatency]"
	case c.CPU.MaxOutstanding <= 0:
		return "config: CPU.MaxOutstanding must be positive"
	case c.PCM.WriteQueueDepth <= 0:
		return "config: PCM.WriteQueueDepth must be positive"
	case c.PCM.DrainHigh < 0 || c.PCM.DrainLow < 0 || c.PCM.DrainLow > c.PCM.DrainHigh ||
		c.PCM.DrainHigh > c.PCM.WriteQueueDepth:
		return "config: PCM drain watermarks must satisfy 0 <= low <= high <= depth"
	case c.PCM.FaultExtraLatency > 0 && (c.PCM.FaultBank < 0 || c.PCM.FaultBank >= c.PCM.Banks):
		return "config: PCM.FaultBank must name an existing bank"
	case c.Meta.EFITCacheBytes <= 0 || c.Meta.AMTCacheBytes <= 0:
		return "config: metadata caches must be non-empty"
	case c.ESD.ReferHMax <= 0 || c.ESD.ReferHMax > 255:
		return "config: ESD.ReferHMax must be in [1, 255]"
	case c.ESD.RefreshInterval <= 0:
		return "config: ESD.RefreshInterval must be positive"
	}
	// Media is optional (zero = "fill defaults at enable time"), but a
	// partially specified DRAM device must be self-consistent.
	if c.Media.DRAM.CapacityBytes > 0 {
		switch {
		case c.Media.DRAM.CapacityBytes < CacheLineSize:
			return "config: Media.DRAM capacity smaller than one line"
		case c.Media.DRAM.Banks <= 0:
			return "config: Media.DRAM.Banks must be positive"
		case c.Media.DRAM.ReadLatency <= 0 || c.Media.DRAM.WriteLatency <= 0:
			return "config: Media.DRAM latencies must be positive"
		case c.Media.PromoteThreshold < 0 || c.Media.RefBoost < 0 ||
			c.Media.DecayEvery < 0 || c.Media.WALLines < 0:
			return "config: Media policy parameters must be non-negative"
		}
	}
	return ""
}
