// Package core implements ESD, the paper's contribution: an ECC-assisted,
// selective deduplication scheme for encrypted non-volatile main memory.
//
// The write path (§III):
//
//  1. The ECC word the memory controller computes anyway for each evicted
//     64-byte line doubles as a zero-cost fingerprint. Different ECC =>
//     definitively different content, with no hash latency or energy.
//  2. The EFIT (ECC-based Fingerprint Index Table) lives *only* in the
//     memory-controller SRAM cache — never in NVMM — and is managed by the
//     LRCU (Least-Reference-Count-Used) policy so fingerprints with high
//     reference counts survive. An EFIT miss means "treat as unique and
//     write": selective deduplication never performs a fingerprint lookup
//     in NVMM, eliminating the NVMM_lookup bottleneck of full dedup.
//  3. On an EFIT hit, the candidate line is read from NVMM (cheap relative
//     to a write, by NVM read/write asymmetry) and compared byte by byte,
//     so an ECC collision can never deduplicate different data.
//  4. The AMT maps logical to physical lines; it is NVMM-resident with a
//     hot-entry SRAM cache (shared plumbing in package memctrl).
//
// referH saturates at one byte; a duplicate whose entry exceeds the limit
// is rewritten as new content, exactly as §III-D prescribes, and the EFIT
// undergoes a periodic refresh that decays every reference count.
package core

import (
	"github.com/esdsim/esd/internal/cache"
	"github.com/esdsim/esd/internal/dedup"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/stats"
	"github.com/esdsim/esd/internal/telemetry"
)

// ESD is the ECC-assisted selective deduplication scheme.
type ESD struct {
	dedup.Base
	efit   *cache.Cache[uint64] // ECC fingerprint -> physical line
	physFP map[uint64]uint64    // physical line -> fingerprint (for purge)

	// DisableLRCU switches the EFIT cache to plain LRU; used by the
	// Fig. 18 "w/o LRCU" ablation.
	DisableLRCU bool
	// DisableCompare skips the byte-by-byte verification (UNSAFE: an
	// ablation quantifying what the comparison read costs and why it is
	// required for correctness).
	DisableCompare bool
}

// Option configures an ESD instance at construction.
type Option func(*options)

type options struct {
	efitBytes int
	policy    cache.Policy
	compare   bool
}

// WithEFITCacheBytes overrides the EFIT cache capacity (Fig. 18 sweep).
func WithEFITCacheBytes(n int) Option {
	return func(o *options) { o.efitBytes = n }
}

// WithLRU replaces LRCU with plain LRU (Fig. 18 "w/o LRCU").
func WithLRU() Option {
	return func(o *options) { o.policy = cache.LRU }
}

// WithoutCompare disables byte-by-byte verification (unsafe ablation).
func WithoutCompare() Option {
	return func(o *options) { o.compare = false }
}

// New constructs ESD on env.
func New(env *memctrl.Env, opts ...Option) *ESD {
	o := options{
		efitBytes: env.Cfg.Meta.EFITCacheBytes,
		policy:    cache.LRCU,
		compare:   true,
	}
	for _, fn := range opts {
		fn(&o)
	}
	entries := o.efitBytes / env.Cfg.Meta.EFITEntryBytes
	if entries < 1 {
		entries = 1
	}
	s := &ESD{
		Base:           dedup.NewBase(env),
		efit:           cache.New[uint64](entries, 8, o.policy),
		physFP:         make(map[uint64]uint64),
		DisableLRCU:    o.policy != cache.LRCU,
		DisableCompare: !o.compare,
	}
	if env.Tel != nil {
		s.efit.SetProbe(env.Tel.CacheProbe("efit"))
	}
	s.OnFree = s.purge
	return s
}

// purge drops the EFIT entry pointing at a recycled physical line so stale
// fingerprints can never deduplicate onto freed storage.
func (s *ESD) purge(phys uint64) {
	fp, ok := s.physFP[phys]
	if !ok {
		return
	}
	delete(s.physFP, phys)
	if cur, hit := s.efit.Peek(fp); hit && cur == phys {
		s.efit.Delete(fp)
	}
}

// Name implements memctrl.Scheme.
func (s *ESD) Name() string { return "esd" }

// Write implements memctrl.Scheme: the ESD write path of Fig. 9.
func (s *ESD) Write(logical uint64, data *ecc.Line, at sim.Time) memctrl.WriteOutcome {
	s.St.Writes++
	cfg := s.Env.Cfg

	// The ECC fingerprint is a by-product of the controller's ECC logic:
	// zero marginal latency and energy (§III-C).
	fp := uint64(ecc.EncodeLine(data))

	// The only serial front-end work is the EFIT SRAM probe.
	s.Env.ChargeSRAM()
	feStart, feEnd := s.Env.Frontend.Reserve(at, cfg.Meta.SRAMLatency)
	bd := stats.Breakdown{
		Queue:        feStart - at,
		FPLookupSRAM: cfg.Meta.SRAMLatency,
	}
	t := feEnd

	if candidate, hit := s.efit.Get(fp); hit {
		s.St.FPCacheHits++
		equal := true
		if !s.DisableCompare {
			// Similar, not yet identical: fetch the candidate and compare
			// byte by byte (§III-D), exploiting cheap NVM reads.
			ct, ok, rr := s.Env.Device.Read(candidate, t)
			s.St.CompareReads++
			s.Env.ChargeCompare()
			tv := rr.Done + cfg.FP.CompareTime
			bd.ReadCompare = tv - t
			t = tv
			if ok {
				s.Env.Crypto.DecryptInPlace(candidate, &ct)
				equal = ct == *data
			} else {
				equal = false
			}
			s.Env.Tel.OnCompare(!equal)
		}
		if equal {
			// Duplicate confirmed. Saturating referH: beyond the limit the
			// line is treated as brand-new content (§III-D).
			if s.efit.Ref(fp) >= cfg.ESD.ReferHMax {
				s.St.ReferHOverflows++
				return s.writeUnique(logical, data, fp, at, t, bd, true, telemetry.DecUniqueReferH)
			}
			s.efit.Touch(fp, cfg.ESD.ReferHMax)
			s.St.DupByCache++
			mapLat := s.DedupHit(logical, candidate, t)
			bd.Metadata = mapLat
			s.Env.Tel.OnWrite(s.Name(), telemetry.DecDupFPCache, logical, candidate, true, at, t+mapLat, &bd)
			return memctrl.WriteOutcome{Done: t + mapLat, Breakdown: bd, Deduplicated: true, PhysAddr: candidate}
		}
		// ECC collision: genuinely different content behind the same
		// fingerprint. The line is unique; the existing entry stays.
		s.St.CompareMismatches++
		return s.writeUnique(logical, data, fp, at, t, bd, false, telemetry.DecUniqueCollision)
	}

	// EFIT miss: selective deduplication treats the line as non-duplicate
	// immediately — no fingerprint store in NVMM, no NVMM lookup, ever.
	s.St.FPCacheMisses++
	return s.writeUnique(logical, data, fp, at, t, bd, true, telemetry.DecUniqueFPMiss)
}

// writeUnique encrypts and stores a unique line, optionally (re)pointing
// the EFIT entry for fp at the new physical line. at is the write's arrival
// time, t the current pipeline time, dec the telemetry decision to report.
func (s *ESD) writeUnique(logical uint64, data *ecc.Line, fp uint64, at, t sim.Time, bd stats.Breakdown, installFP bool, dec telemetry.Decision) memctrl.WriteOutcome {
	cfg := s.Env.Cfg
	// The dedicated AES engine adds latency without occupying the
	// controller pipeline.
	bd.Encrypt = cfg.Crypto.EncryptLatency
	phys, wr, mapLat := s.StoreUnique(logical, data, t+cfg.Crypto.EncryptLatency)
	if installFP {
		// Re-pointing an existing entry (e.g. after a referH overflow)
		// starts a fresh reference count, so delete-then-insert.
		if old, had := s.efit.Peek(fp); had {
			delete(s.physFP, old)
			s.efit.Delete(fp)
		}
		if ev, evicted := s.efit.PutWithRef(fp, phys, 1); evicted {
			// LRCU victim: the fingerprint simply leaves the controller;
			// there is no NVMM copy to maintain (selective dedup).
			if v, ok := s.physFP[ev.Value]; ok && v == ev.Key {
				delete(s.physFP, ev.Value)
			}
			s.Env.Tel.OnEFITEvict(ev.Key, ev.Ref, t)
		}
		s.physFP[phys] = fp
		s.Env.Tel.OnEFITInsert(s.efit.Len())
	}
	bd.Queue += wr.Stall
	bd.Media = wr.ServiceLatency
	bd.Metadata = mapLat
	done := wr.AcceptedAt + wr.ServiceLatency
	s.Env.Tel.OnWrite(s.Name(), dec, logical, phys, false, at, done, &bd)
	return memctrl.WriteOutcome{
		Done:      done,
		Breakdown: bd,
		PhysAddr:  phys,
	}
}

// Read implements memctrl.Scheme.
func (s *ESD) Read(logical uint64, at sim.Time) memctrl.ReadOutcome {
	out := s.ReadPath(logical, at)
	s.Env.Tel.OnRead(s.Name(), logical, out.Hit, at, out.Done)
	return out
}

// Tick implements memctrl.Scheme: the periodic LRCU refresh that subtracts
// a fixed value from every cached reference count (§III-D).
func (s *ESD) Tick(sim.Time) {
	if !s.DisableLRCU {
		s.efit.DecayAll(s.Env.Cfg.ESD.RefreshDecay)
	}
}

// TickInterval implements memctrl.Scheme.
func (s *ESD) TickInterval() sim.Time {
	if s.DisableLRCU {
		return 0
	}
	return s.Env.Cfg.ESD.RefreshInterval
}

// MetadataNVMM implements memctrl.Scheme: only the AMT lives in NVMM; the
// EFIT has no NVMM-resident copy at all — the headline space saving of
// Fig. 19.
func (s *ESD) MetadataNVMM() int64 { return s.AMT.NVMMBytes() }

// MetadataSRAM implements memctrl.Scheme.
func (s *ESD) MetadataSRAM() int64 {
	return int64(s.efit.Capacity())*int64(s.Env.Cfg.Meta.EFITEntryBytes) + s.MetadataSRAMBase()
}

// EFITStats exposes EFIT cache statistics (Fig. 18).
func (s *ESD) EFITStats() cache.Stats { return s.efit.Stats }

// EFITLen reports the number of live EFIT entries.
func (s *ESD) EFITLen() int { return s.efit.Len() }

// Crash implements memctrl.Crasher. ESD's entire fingerprint state — the
// EFIT — is volatile by design and simply vanishes: there is no NVMM copy
// to recover or keep consistent (§III-E), deduplication restarts cold, and
// every logical line remains readable through the (eADR-drained) AMT.
func (s *ESD) Crash(now sim.Time) {
	s.CrashBase(now)
	s.efit.Clear()
	s.physFP = make(map[uint64]uint64)
}
