// Package core implements ESD, the paper's contribution: an ECC-assisted,
// selective deduplication scheme for encrypted non-volatile main memory.
//
// The write path (§III):
//
//  1. The ECC word the memory controller computes anyway for each evicted
//     64-byte line doubles as a zero-cost fingerprint. Different ECC =>
//     definitively different content, with no hash latency or energy.
//  2. The EFIT (ECC-based Fingerprint Index Table) lives *only* in the
//     memory-controller SRAM cache — never in NVMM — and is managed by the
//     LRCU (Least-Reference-Count-Used) policy so fingerprints with high
//     reference counts survive. An EFIT miss means "treat as unique and
//     write": selective deduplication never performs a fingerprint lookup
//     in NVMM, eliminating the NVMM_lookup bottleneck of full dedup.
//  3. On an EFIT hit, the candidate line is read from NVMM (cheap relative
//     to a write, by NVM read/write asymmetry) and compared byte by byte,
//     so an ECC collision can never deduplicate different data.
//  4. The AMT maps logical to physical lines; it is NVMM-resident with a
//     hot-entry SRAM cache (shared plumbing in package memctrl).
//
// referH saturates at one byte; a duplicate whose entry exceeds the limit
// is rewritten as new content, exactly as §III-D prescribes, and the EFIT
// undergoes a periodic refresh that decays every reference count.
package core

import (
	"github.com/esdsim/esd/internal/cache"
	"github.com/esdsim/esd/internal/dedup"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/nvm"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/sparse"
	"github.com/esdsim/esd/internal/stats"
	"github.com/esdsim/esd/internal/telemetry"
)

// ESD is the ECC-assisted selective deduplication scheme.
type ESD struct {
	dedup.Base
	name   string               // scheme name ("esd", or "esd+caram" on hybrid media)
	efit   *cache.Cache[uint64] // ECC fingerprint -> physical line
	physFP sparse.Map[uint64]   // physical line -> fingerprint (for purge)

	// DisableLRCU switches the EFIT cache to plain LRU; used by the
	// Fig. 18 "w/o LRCU" ablation.
	DisableLRCU bool
	// DisableCompare skips the byte-by-byte verification (UNSAFE: an
	// ablation quantifying what the comparison read costs and why it is
	// required for correctness).
	DisableCompare bool

	// Batch write scratch: deferred unique stores plus the fingerprint and
	// line-pointer buffers EncodeLines works over. Reused across batches so
	// the batched write path stays allocation-free.
	def      dedup.Deferred
	fpBuf    []ecc.Fingerprint
	linePtrs []*ecc.Line
}

// Option configures an ESD instance at construction.
type Option func(*options)

type options struct {
	efitBytes int
	policy    cache.Policy
	compare   bool
	name      string
}

// WithEFITCacheBytes overrides the EFIT cache capacity (Fig. 18 sweep).
func WithEFITCacheBytes(n int) Option {
	return func(o *options) { o.efitBytes = n }
}

// WithLRU replaces LRCU with plain LRU (Fig. 18 "w/o LRCU").
func WithLRU() Option {
	return func(o *options) { o.policy = cache.LRU }
}

// WithoutCompare disables byte-by-byte verification (unsafe ablation).
func WithoutCompare() Option {
	return func(o *options) { o.compare = false }
}

// WithName overrides the reported scheme name. The ESD write path is
// identical on plain and hybrid media; the hybrid configuration
// (ESD+CARAM) differs only in the Env's media backend, so it reuses this
// implementation under its own name.
func WithName(name string) Option {
	return func(o *options) { o.name = name }
}

// New constructs ESD on env.
func New(env *memctrl.Env, opts ...Option) *ESD {
	o := options{
		efitBytes: env.Cfg.Meta.EFITCacheBytes,
		policy:    cache.LRCU,
		compare:   true,
		name:      "esd",
	}
	for _, fn := range opts {
		fn(&o)
	}
	entries := o.efitBytes / env.Cfg.Meta.EFITEntryBytes
	if entries < 1 {
		entries = 1
	}
	s := &ESD{
		Base:           dedup.NewBase(env),
		name:           o.name,
		efit:           cache.New[uint64](entries, 8, o.policy),
		DisableLRCU:    o.policy != cache.LRCU,
		DisableCompare: !o.compare,
	}
	if env.Tel != nil {
		s.efit.SetProbe(env.Tel.CacheProbe("efit"))
	}
	s.OnFree = s.purge
	return s
}

// purge drops the EFIT entry pointing at a recycled physical line so stale
// fingerprints can never deduplicate onto freed storage.
func (s *ESD) purge(phys uint64) {
	fp, ok := s.physFP.Get(phys)
	if !ok {
		return
	}
	s.physFP.Delete(phys)
	if cur, hit := s.efit.Peek(fp); hit && cur == phys {
		s.efit.Delete(fp)
	}
}

// Name implements memctrl.Scheme.
func (s *ESD) Name() string { return s.name }

// Write implements memctrl.Scheme: the ESD write path of Fig. 9.
func (s *ESD) Write(logical uint64, data *ecc.Line, at sim.Time) memctrl.WriteOutcome {
	// The ECC fingerprint is a by-product of the controller's ECC logic:
	// zero marginal latency and energy (§III-C).
	fp := uint64(ecc.EncodeLine(data))
	return s.writeFP(logical, data, fp, at, nil, 0)
}

// WriteBatch implements memctrl.BatchWriter: the same per-op decision
// sequence as Write, in op order, with the fixed kernel costs amortized —
// all fingerprints through one ecc.EncodeLines pass, all unique-store pads
// through one batched AES pass at flush time. Counters are still committed
// per op at decision time (StoreUniqueDeferred), so counter state and the
// pad-uniqueness invariant are identical to the scalar path.
func (s *ESD) WriteBatch(ops []memctrl.BatchWrite) {
	n := len(ops)
	if cap(s.fpBuf) < n {
		s.fpBuf = make([]ecc.Fingerprint, n)
		s.linePtrs = make([]*ecc.Line, n)
	}
	fps, lines := s.fpBuf[:n], s.linePtrs[:n]
	for i := range ops {
		lines[i] = ops[i].Data
	}
	ecc.EncodeLines(lines, fps)
	for i := range ops {
		ops[i].Out = s.writeFP(ops[i].Logical, ops[i].Data, uint64(fps[i]), ops[i].At, ops, i)
	}
	s.flushBatch(ops)
}

// writeFP runs the ESD write decision for one op. In scalar mode (batch ==
// nil) unique stores go straight to the device; in batch mode they are
// deferred into s.def and the media-side outcome fields are finalized by
// flushBatch. slot is the op's index within batch.
func (s *ESD) writeFP(logical uint64, data *ecc.Line, fp uint64, at sim.Time, batch []memctrl.BatchWrite, slot int) memctrl.WriteOutcome {
	s.St.Writes++
	cfg := s.Env.Cfg

	// The only serial front-end work is the EFIT SRAM probe.
	s.Env.ChargeSRAM()
	feStart, feEnd := s.Env.Frontend.Reserve(at, cfg.Meta.SRAMLatency)
	bd := stats.Breakdown{
		Queue:        feStart - at,
		FPLookupSRAM: cfg.Meta.SRAMLatency,
	}
	t := feEnd

	if candidate, refCount, hit := s.efit.GetRef(fp); hit {
		s.St.FPCacheHits++
		equal := true
		if !s.DisableCompare {
			// Similar, not yet identical: fetch the candidate and compare
			// byte by byte (§III-D), exploiting cheap NVM reads.
			if batch != nil && s.def.Has(candidate) {
				// The candidate's ciphertext is still pending from an
				// earlier op of this batch: flush so the compare read
				// observes it, exactly as the scalar order would.
				s.flushBatch(batch)
			}
			ct, ok, rr := s.Env.Device.Read(candidate, t)
			s.St.CompareReads++
			s.Env.ChargeCompare()
			tv := rr.Done + cfg.FP.CompareTime
			bd.ReadCompare = tv - t
			t = tv
			if ok {
				s.Env.Crypto.DecryptInPlace(candidate, &ct)
				equal = ct == *data
			} else {
				equal = false
			}
			s.Env.Tel.OnCompare(!equal)
		}
		if equal {
			// Duplicate confirmed. Saturating referH: beyond the limit the
			// line is treated as brand-new content (§III-D).
			if refCount >= cfg.ESD.ReferHMax {
				s.St.ReferHOverflows++
				return s.writeUnique(logical, data, fp, at, t, bd, true, telemetry.DecUniqueReferH, batch, slot)
			}
			s.efit.Touch(fp, cfg.ESD.ReferHMax)
			s.St.DupByCache++
			mapLat := s.DedupHit(logical, candidate, t)
			bd.Metadata = mapLat
			s.Env.Tel.OnWrite(s.Name(), telemetry.DecDupFPCache, logical, candidate, true, at, t+mapLat, &bd)
			return memctrl.WriteOutcome{Done: t + mapLat, Breakdown: bd, Deduplicated: true, PhysAddr: candidate}
		}
		// ECC collision: genuinely different content behind the same
		// fingerprint. The line is unique; the existing entry stays.
		s.St.CompareMismatches++
		return s.writeUnique(logical, data, fp, at, t, bd, false, telemetry.DecUniqueCollision, batch, slot)
	}

	// EFIT miss: selective deduplication treats the line as non-duplicate
	// immediately — no fingerprint store in NVMM, no NVMM lookup, ever.
	s.St.FPCacheMisses++
	return s.writeUnique(logical, data, fp, at, t, bd, true, telemetry.DecUniqueFPMiss, batch, slot)
}

// writeUnique encrypts and stores a unique line, optionally (re)pointing
// the EFIT entry for fp at the new physical line. at is the write's arrival
// time, t the current pipeline time, dec the telemetry decision to report.
// In batch mode the store is deferred: Done, Queue and Media arrive when
// flushBatch fills them from the batched device writes.
func (s *ESD) writeUnique(logical uint64, data *ecc.Line, fp uint64, at, t sim.Time, bd stats.Breakdown, installFP bool, dec telemetry.Decision, batch []memctrl.BatchWrite, slot int) memctrl.WriteOutcome {
	cfg := s.Env.Cfg
	// The dedicated AES engine adds latency without occupying the
	// controller pipeline.
	bd.Encrypt = cfg.Crypto.EncryptLatency
	var phys uint64
	var mapLat sim.Time
	var wr nvm.WriteResult
	if batch != nil {
		phys, mapLat = s.StoreUniqueDeferred(&s.def, logical, data, t+cfg.Crypto.EncryptLatency, slot, uint8(dec), 0)
	} else {
		phys, wr, mapLat = s.StoreUnique(logical, data, t+cfg.Crypto.EncryptLatency)
	}
	if installFP {
		// Re-pointing an existing entry (e.g. after a referH overflow)
		// starts a fresh reference count, so delete-then-insert.
		if old, had := s.efit.Pop(fp); had {
			s.physFP.Delete(old)
		}
		if ev, evicted := s.efit.PutWithRef(fp, phys, 1); evicted {
			// LRCU victim: the fingerprint simply leaves the controller;
			// there is no NVMM copy to maintain (selective dedup).
			if v, ok := s.physFP.Get(ev.Value); ok && v == ev.Key {
				s.physFP.Delete(ev.Value)
			}
			s.Env.Tel.OnEFITEvict(ev.Key, ev.Ref, t)
		}
		s.physFP.Set(phys, fp)
		s.Env.Tel.OnEFITInsert(s.efit.Len())
	}
	bd.Metadata = mapLat
	if batch != nil {
		return memctrl.WriteOutcome{Breakdown: bd, PhysAddr: phys}
	}
	bd.Queue += wr.Stall
	bd.Media = wr.ServiceLatency
	done := wr.AcceptedAt + wr.ServiceLatency
	s.Env.Tel.OnWrite(s.Name(), dec, logical, phys, false, at, done, &bd)
	return memctrl.WriteOutcome{
		Done:      done,
		Breakdown: bd,
		PhysAddr:  phys,
	}
}

// flushBatch drains the deferred stores — one batched pad pass, device
// writes in op order — and finalizes the outcomes of the ops they belong
// to. Called at batch end and mid-batch when a compare read targets a
// still-pending physical line.
func (s *ESD) flushBatch(ops []memctrl.BatchWrite) {
	if s.def.Len() == 0 {
		return
	}
	s.def.Flush(s.Env)
	entries := s.def.Entries()
	for i := range entries {
		p := &entries[i]
		op := &ops[p.Slot]
		out := &op.Out
		out.Breakdown.Queue += p.Wr.Stall
		out.Breakdown.Media = p.Wr.ServiceLatency
		out.Done = p.Wr.AcceptedAt + p.Wr.ServiceLatency
		s.Env.Tel.OnWrite(s.Name(), telemetry.Decision(p.Tag), p.Logical, p.Phys, false, op.At, out.Done, &out.Breakdown)
	}
	s.def.Reset()
}

// Read implements memctrl.Scheme.
func (s *ESD) Read(logical uint64, at sim.Time) memctrl.ReadOutcome {
	out := s.ReadPath(logical, at)
	s.Env.Tel.OnRead(s.Name(), logical, out.Hit, at, out.Done)
	return out
}

// Tick implements memctrl.Scheme: the periodic LRCU refresh that subtracts
// a fixed value from every cached reference count (§III-D).
func (s *ESD) Tick(sim.Time) {
	if !s.DisableLRCU {
		s.efit.DecayAll(s.Env.Cfg.ESD.RefreshDecay)
	}
}

// TickInterval implements memctrl.Scheme.
func (s *ESD) TickInterval() sim.Time {
	if s.DisableLRCU {
		return 0
	}
	return s.Env.Cfg.ESD.RefreshInterval
}

// MetadataNVMM implements memctrl.Scheme: only the AMT lives in NVMM; the
// EFIT has no NVMM-resident copy at all — the headline space saving of
// Fig. 19.
func (s *ESD) MetadataNVMM() int64 { return s.AMT.NVMMBytes() }

// MetadataSRAM implements memctrl.Scheme.
func (s *ESD) MetadataSRAM() int64 {
	return int64(s.efit.Capacity())*int64(s.Env.Cfg.Meta.EFITEntryBytes) + s.MetadataSRAMBase()
}

// EFITStats exposes EFIT cache statistics (Fig. 18).
func (s *ESD) EFITStats() cache.Stats { return s.efit.Stats }

// EFITLen reports the number of live EFIT entries.
func (s *ESD) EFITLen() int { return s.efit.Len() }

// Crash implements memctrl.Crasher. ESD's entire fingerprint state — the
// EFIT — is volatile by design and simply vanishes: there is no NVMM copy
// to recover or keep consistent (§III-E), deduplication restarts cold, and
// every logical line remains readable through the (eADR-drained) AMT.
func (s *ESD) Crash(now sim.Time) {
	s.CrashBase(now)
	s.efit.Clear()
	s.physFP = sparse.Map[uint64]{}
}
