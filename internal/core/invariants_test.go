package core

import (
	"testing"
	"testing/quick"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/trace"
	"github.com/esdsim/esd/internal/workload"
	"github.com/esdsim/esd/internal/xrand"
	"github.com/esdsim/esd/internal/xrand/quicktest"
)

// checkInternalInvariants validates ESD's metadata cross-references:
// every EFIT entry's physical line is reverse-mapped and still referenced,
// and every reverse-map entry matches a live EFIT entry.
func checkInternalInvariants(t *testing.T, s *ESD) {
	t.Helper()
	s.efit.Range(func(fp uint64, phys uint64, _ int) bool {
		if got, ok := s.physFP.Get(phys); !ok || got != fp {
			t.Fatalf("EFIT entry %#x -> %d has no matching reverse map", fp, phys)
		}
		if s.Refs.Count(phys) == 0 {
			t.Fatalf("EFIT points at unreferenced physical line %d", phys)
		}
		return true
	})
	s.physFP.Range(func(phys, fp uint64) bool {
		if cur, ok := s.efit.Peek(fp); !ok || cur != phys {
			t.Fatalf("reverse map %d -> %#x has no matching EFIT entry", phys, fp)
		}
		return true
	})
}

func TestESDInvariantsUnderChurn(t *testing.T) {
	cfg := testCfg()
	cfg.Meta.EFITCacheBytes = 8 * cfg.Meta.EFITEntryBytes // force evictions
	cfg.ESD.ReferHMax = 5                                 // force overflows
	check := func(seed uint64) bool {
		env := memctrl.NewEnv(cfg)
		s := New(env)
		r := xrand.New(seed)
		var pool [6]ecc.Line
		for i := range pool {
			pool[i].SetWord(0, r.Uint64())
		}
		now := sim.Time(0)
		for i := 0; i < 400; i++ {
			now += 10 * sim.Microsecond
			addr := r.Uint64n(40)
			if r.Bool(0.7) {
				line := pool[r.Intn(len(pool))]
				s.Write(addr, &line, now)
			} else {
				s.Read(addr, now)
			}
			if i%50 == 0 {
				s.Tick(now)
			}
		}
		checkInternalInvariants(t, s)
		return true
	}
	if err := quick.Check(check, quicktest.Config(t, 25)); err != nil {
		t.Fatal(err)
	}
}

func TestESDInvariantsAfterCrash(t *testing.T) {
	env := newEnv(t)
	s := New(env)
	line := ecc.Line{1}
	s.Write(1, &line, 0)
	s.Crash(10 * sim.Microsecond)
	if s.EFITLen() != 0 || s.physFP.Len() != 0 {
		t.Fatal("crash left volatile state")
	}
	// Post-crash writes rebuild consistent state.
	s.Write(2, &line, 20*sim.Microsecond)
	checkInternalInvariants(t, s)
}

func TestESDTinyEFITStillCorrect(t *testing.T) {
	// A one-entry EFIT is the most hostile configuration: constant
	// evictions, constant re-installs. Correctness must be unaffected.
	cfg := testCfg()
	cfg.Meta.EFITCacheBytes = 1
	env := memctrl.NewEnv(cfg)
	s := New(env)
	ctl := memctrl.NewController(env, s)
	ctl.VerifyReads = true
	if _, err := ctl.Run(streamFor(t, "fluidanimate", 4000)); err != nil {
		t.Fatal(err)
	}
}

// streamFor builds a workload stream or fails the test.
func streamFor(t *testing.T, app string, n int) trace.Stream {
	t.Helper()
	p, ok := workload.ByName(app)
	if !ok {
		t.Fatalf("unknown app %s", app)
	}
	return workload.Stream(p, 3, n)
}
