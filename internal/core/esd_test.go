package core

import (
	"testing"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/dedup"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/workload"
	"github.com/esdsim/esd/internal/xrand"
)

func testCfg() config.Config {
	cfg := config.Default()
	cfg.PCM.CapacityBytes = 1 << 28
	return cfg
}

func newEnv(t *testing.T) *memctrl.Env {
	t.Helper()
	cfg := testCfg()
	if msg := cfg.Validate(); msg != "" {
		t.Fatal(msg)
	}
	return memctrl.NewEnv(cfg)
}

func line(b byte) ecc.Line {
	var l ecc.Line
	for i := range l {
		l[i] = b
	}
	return l
}

func TestESDWriteReadRoundTrip(t *testing.T) {
	env := newEnv(t)
	s := New(env)
	data := line(7)
	out := s.Write(1, &data, 0)
	if out.Deduplicated {
		t.Fatal("first write deduplicated")
	}
	r := s.Read(1, 10*sim.Microsecond)
	if !r.Hit || r.Data != data {
		t.Fatal("read-back failed")
	}
}

func TestESDDeduplicatesViaEFIT(t *testing.T) {
	env := newEnv(t)
	s := New(env)
	data := line(3)
	d1 := data
	out1 := s.Write(1, &d1, 0)
	d2 := data
	out2 := s.Write(2, &d2, 10*sim.Microsecond)
	if !out2.Deduplicated || out2.PhysAddr != out1.PhysAddr {
		t.Fatalf("duplicate not eliminated: %+v vs %+v", out2, out1)
	}
	// Byte comparison must have run before deduplicating.
	if s.Stats().CompareReads == 0 {
		t.Fatal("ESD deduplicated without the byte-by-byte comparison")
	}
	for _, addr := range []uint64{1, 2} {
		if r := s.Read(addr, 20*sim.Microsecond); r.Data != data {
			t.Fatalf("read-back of %d failed", addr)
		}
	}
}

func TestESDZeroFingerprintCostOnWritePath(t *testing.T) {
	env := newEnv(t)
	s := New(env)
	data := line(5)
	out := s.Write(1, &data, 0)
	if out.Breakdown.FPCompute != 0 {
		t.Fatalf("ESD charged %v fingerprint latency; the ECC is free", out.Breakdown.FPCompute)
	}
	if env.Energy.Fingerprint != 0 {
		t.Fatalf("ESD charged %v nJ fingerprint energy", env.Energy.Fingerprint)
	}
	// Compare with the 321 ns a SHA-1 write pays: ESD's unique-write path
	// is probe + encrypt + media.
	cfg := env.Cfg
	minimum := cfg.Meta.SRAMLatency + cfg.Crypto.EncryptLatency + cfg.PCM.WriteLatency
	if out.Done < minimum || out.Done > minimum+cfg.PCM.BusLatency {
		t.Fatalf("unique write done at %v, want about %v", out.Done, minimum)
	}
}

func TestESDNeverLooksUpFingerprintsInNVMM(t *testing.T) {
	env := newEnv(t)
	s := New(env)
	r := xrand.New(1)
	// A mix of unique and duplicate writes.
	var contents []ecc.Line
	for i := 0; i < 10; i++ {
		var d ecc.Line
		d.SetWord(0, r.Uint64())
		contents = append(contents, d)
	}
	for i := 0; i < 200; i++ {
		d := contents[r.Intn(len(contents))]
		s.Write(r.Uint64n(1000), &d, sim.Time(i)*sim.Microsecond)
	}
	if st := s.Stats(); st.FPNVMMLookups != 0 || st.DupByNVMM != 0 {
		t.Fatalf("selective dedup performed NVMM fingerprint lookups: %+v", st)
	}
}

func TestESDCollisionSafety(t *testing.T) {
	// Find two different 8-byte words with identical ECC bytes, build two
	// lines differing only in that word: identical ECC fingerprints,
	// different content. ESD must NOT deduplicate them.
	seen := map[uint8]uint64{}
	var w1, w2 uint64
	found := false
	for w := uint64(0); w < 1<<16 && !found; w++ {
		e := ecc.EncodeWord(w)
		if prev, ok := seen[e]; ok {
			w1, w2, found = prev, w, true
		} else {
			seen[e] = w
		}
	}
	if !found {
		t.Fatal("could not construct an ECC word collision")
	}
	var a, b ecc.Line
	a.SetWord(0, w1)
	b.SetWord(0, w2)
	if ecc.EncodeLine(&a) != ecc.EncodeLine(&b) {
		t.Fatal("constructed lines do not collide")
	}

	env := newEnv(t)
	s := New(env)
	da := a
	s.Write(1, &da, 0)
	db := b
	out := s.Write(2, &db, 10*sim.Microsecond)
	if out.Deduplicated {
		t.Fatal("ECC collision deduplicated different content — data loss")
	}
	if s.Stats().CompareMismatches != 1 {
		t.Fatalf("collision not detected: %+v", s.Stats())
	}
	if r := s.Read(1, 20*sim.Microsecond); r.Data != a {
		t.Fatal("line A corrupted")
	}
	if r := s.Read(2, 30*sim.Microsecond); r.Data != b {
		t.Fatal("line B corrupted")
	}
}

func TestESDWithoutCompareIsUnsafe(t *testing.T) {
	// The ablation documents WHY the comparison is mandatory: with it
	// disabled, the same collision corrupts data (and the controller's
	// oracle would catch it).
	seen := map[uint8]uint64{}
	var w1, w2 uint64
	for w := uint64(0); w < 1<<16; w++ {
		e := ecc.EncodeWord(w)
		if prev, ok := seen[e]; ok {
			w1, w2 = prev, w
			break
		}
		seen[e] = w
	}
	var a, b ecc.Line
	a.SetWord(0, w1)
	b.SetWord(0, w2)
	env := newEnv(t)
	s := New(env, WithoutCompare())
	da := a
	s.Write(1, &da, 0)
	db := b
	out := s.Write(2, &db, 10*sim.Microsecond)
	if !out.Deduplicated {
		t.Fatal("compare-disabled ESD did not trust the fingerprint")
	}
	if r := s.Read(2, 20*sim.Microsecond); r.Data == b {
		t.Fatal("expected corruption with comparison disabled, but data survived")
	}
}

func TestESDReferHOverflowRewrites(t *testing.T) {
	cfg := testCfg()
	cfg.ESD.ReferHMax = 3
	env := memctrl.NewEnv(cfg)
	s := New(env)
	data := line(9)
	unique := 0
	for i := 0; i < 12; i++ {
		d := data
		out := s.Write(uint64(i), &d, sim.Time(i)*10*sim.Microsecond)
		if !out.Deduplicated {
			unique++
		}
	}
	st := s.Stats()
	if st.ReferHOverflows == 0 {
		t.Fatalf("referH never overflowed with max=3 over 12 dup writes: %+v", st)
	}
	if unique < 3 {
		t.Fatalf("overflow should force periodic rewrites; unique=%d", unique)
	}
	// All 12 logical addresses must still read back correctly.
	for i := 0; i < 12; i++ {
		if r := s.Read(uint64(i), sim.Millisecond); r.Data != data {
			t.Fatalf("read-back of %d failed after overflow rewrites", i)
		}
	}
}

func TestESDLRCUKeepsHotFingerprints(t *testing.T) {
	// Tiny EFIT: 2 entries. One hot content (many refs) and a stream of
	// cold uniques. The hot fingerprint must survive the cold churn.
	cfg := testCfg()
	cfg.Meta.EFITCacheBytes = 2 * cfg.Meta.EFITEntryBytes
	env := memctrl.NewEnv(cfg)
	s := New(env)
	hot := line(1)
	now := sim.Time(0)
	write := func(addr uint64, d ecc.Line) memctrl.WriteOutcome {
		now += 10 * sim.Microsecond
		dd := d
		return s.Write(addr, &dd, now)
	}
	write(0, hot)
	for i := 0; i < 5; i++ {
		write(uint64(100+i), hot) // heat it up
	}
	r := xrand.New(7)
	for i := 0; i < 50; i++ {
		var d ecc.Line
		d.SetWord(0, r.Uint64())
		d.SetWord(1, 0xABCD)
		write(uint64(1000+i), d)
	}
	out := write(999, hot)
	if !out.Deduplicated {
		t.Fatal("LRCU evicted the hot fingerprint under cold churn")
	}
}

func TestESDLRUAblationLosesHotFingerprint(t *testing.T) {
	// Same scenario with plain LRU: the cold churn evicts the hot entry.
	cfg := testCfg()
	cfg.Meta.EFITCacheBytes = 2 * cfg.Meta.EFITEntryBytes
	env := memctrl.NewEnv(cfg)
	s := New(env, WithLRU())
	hot := line(1)
	now := sim.Time(0)
	write := func(addr uint64, d ecc.Line) memctrl.WriteOutcome {
		now += 10 * sim.Microsecond
		dd := d
		return s.Write(addr, &dd, now)
	}
	write(0, hot)
	for i := 0; i < 5; i++ {
		write(uint64(100+i), hot)
	}
	r := xrand.New(7)
	for i := 0; i < 50; i++ {
		var d ecc.Line
		d.SetWord(0, r.Uint64())
		d.SetWord(1, 0xABCD)
		write(uint64(1000+i), d)
	}
	out := write(999, hot)
	if out.Deduplicated {
		t.Skip("LRU happened to keep the hot entry (set mapping luck); not a failure")
	}
}

func TestESDDecayTick(t *testing.T) {
	env := newEnv(t)
	s := New(env)
	if s.TickInterval() != env.Cfg.ESD.RefreshInterval {
		t.Fatalf("tick interval %v", s.TickInterval())
	}
	data := line(2)
	d := data
	s.Write(1, &d, 0)
	for i := 0; i < 5; i++ {
		d = data
		s.Write(uint64(2+i), &d, sim.Time(i+1)*10*sim.Microsecond)
	}
	// Decay many times: reference counts drop to the floor, but
	// correctness is unaffected.
	for i := 0; i < 300; i++ {
		s.Tick(sim.Time(i) * env.Cfg.ESD.RefreshInterval)
	}
	d = data
	out := s.Write(100, &d, sim.Second)
	if !out.Deduplicated {
		t.Fatal("entry vanished after decay (decay must floor at 0, not delete)")
	}
}

func TestESDPurgeOnFreePreventsStaleDedup(t *testing.T) {
	env := newEnv(t)
	s := New(env)
	a, b := line(1), line(2)
	d := a
	out1 := s.Write(1, &d, 0)
	// Overwrite logical 1: content A's physical line is freed.
	d = b
	s.Write(1, &d, 10*sim.Microsecond)
	// Writing A again must not dedup onto the freed line.
	d = a
	out3 := s.Write(2, &d, 20*sim.Microsecond)
	if out3.Deduplicated && out3.PhysAddr == out1.PhysAddr {
		t.Fatal("stale EFIT entry deduplicated onto freed storage")
	}
	if r := s.Read(2, 30*sim.Microsecond); r.Data != a {
		t.Fatal("content corrupted")
	}
}

func TestESDMetadataNVMMIsAMTOnly(t *testing.T) {
	env := newEnv(t)
	s := New(env)
	r := xrand.New(3)
	for i := 0; i < 20; i++ {
		var d ecc.Line
		d.SetWord(0, r.Uint64())
		s.Write(uint64(i), &d, sim.Time(i)*sim.Microsecond)
	}
	want := int64(20 * env.Cfg.Meta.AMTEntryBytes)
	if got := s.MetadataNVMM(); got != want {
		t.Fatalf("MetadataNVMM = %d, want %d (AMT only, no fingerprint store)", got, want)
	}
}

func TestESDEndToEndOnWorkloadsWithVerification(t *testing.T) {
	for _, name := range []string{"gcc", "deepsjeng", "lbm", "blackscholes"} {
		profile, _ := workload.ByName(name)
		env := newEnv(t)
		ctl := memctrl.NewController(env, New(env))
		ctl.VerifyReads = true
		res, err := ctl.Run(workload.Stream(profile, 31, 8000))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Scheme.DedupWrites == 0 {
			t.Errorf("%s: ESD eliminated nothing", name)
		}
	}
}

func TestESDSelectiveDedupMissesSomeButAvoidsLookups(t *testing.T) {
	// The paper's core trade-off (Fig. 11): ESD removes fewer duplicates
	// than full dedup but never touches NVMM for fingerprints.
	profile, _ := workload.ByName("x264")
	const n = 12000

	envF := memctrl.NewEnv(testCfg())
	full := dedup.NewSHA1(envF)
	ctlF := memctrl.NewController(envF, full)
	resF, err := ctlF.Run(workload.Stream(profile, 8, n))
	if err != nil {
		t.Fatal(err)
	}

	envE := memctrl.NewEnv(testCfg())
	esd := New(envE)
	ctlE := memctrl.NewController(envE, esd)
	resE, err := ctlE.Run(workload.Stream(profile, 8, n))
	if err != nil {
		t.Fatal(err)
	}

	if resE.Scheme.DedupWrites == 0 {
		t.Fatal("ESD eliminated nothing")
	}
	if resE.Scheme.DedupWrites > resF.Scheme.DedupWrites {
		t.Fatalf("selective dedup (%d) eliminated more than full dedup (%d)",
			resE.Scheme.DedupWrites, resF.Scheme.DedupWrites)
	}
	if resE.Scheme.FPNVMMLookups != 0 {
		t.Fatal("ESD performed fingerprint NVMM lookups")
	}
	if resF.Scheme.FPNVMMLookups == 0 {
		t.Fatal("full dedup performed no NVMM lookups (model broken)")
	}
	// And the headline: ESD's mean write latency beats full dedup's.
	if resE.WriteHist.Mean() >= resF.WriteHist.Mean() {
		t.Errorf("ESD mean write %v not faster than Dedup_SHA1 %v",
			resE.WriteHist.Mean(), resF.WriteHist.Mean())
	}
}

func TestESDEFITSizeSweepImprovesHitRate(t *testing.T) {
	profile, _ := workload.ByName("mcf")
	hitRates := make([]float64, 0, 3)
	for _, kb := range []int{4, 64, 512} {
		cfg := testCfg()
		env := memctrl.NewEnv(cfg)
		s := New(env, WithEFITCacheBytes(kb<<10))
		ctl := memctrl.NewController(env, s)
		if _, err := ctl.Run(workload.Stream(profile, 17, 10000)); err != nil {
			t.Fatal(err)
		}
		hitRates = append(hitRates, s.EFITStats().HitRate())
	}
	if !(hitRates[0] <= hitRates[1]+0.02 && hitRates[1] <= hitRates[2]+0.02) {
		t.Errorf("EFIT hit rate not improving with size: %v", hitRates)
	}
}
