package core

import (
	"fmt"

	"github.com/esdsim/esd/internal/ecc"
)

// AuditEFIT checks the invariants that make ESD's volatile fingerprint
// index safe (the EFIT lives only in SRAM, so nothing in NVMM can catch a
// stale entry — the structure itself must never lie):
//
//   - EFIT <-> physFP bijection: every entry fp -> phys has a reverse map
//     entry and vice versa, so purge-on-free can always find and remove
//     the entry of a recycled line;
//   - no entry points at an unreferenced physical line (a stale entry
//     would deduplicate new data onto freed storage);
//   - fingerprint truth: decrypting the stored ciphertext of every entry's
//     physical line reproduces a plaintext whose ECC fingerprint equals
//     the entry's key — the property the byte-by-byte compare relies on to
//     only ever confirm, never manufacture, a duplicate;
//   - LRCU consistency: every reference count is within [0, ReferHMax]
//     (the saturating one-byte referH of §III-D).
//
// It returns human-readable violations; empty means consistent. The audit
// uses the device's functional Load and counter-explicit decryption, so it
// perturbs no timing, wear or cache state.
func (s *ESD) AuditEFIT() []string {
	var bad []string
	s.efit.Range(func(fp uint64, phys uint64, ref int) bool {
		if rev, ok := s.physFP.Get(phys); !ok || rev != fp {
			bad = append(bad, fmt.Sprintf("efit: entry %#x -> phys %d has no matching reverse map", fp, phys))
		}
		if s.Refs.Count(phys) == 0 {
			bad = append(bad, fmt.Sprintf("efit: entry %#x points at unreferenced phys %d", fp, phys))
		}
		if ref < 0 || ref > s.Env.Cfg.ESD.ReferHMax {
			bad = append(bad, fmt.Sprintf("efit: entry %#x referH %d outside [0, %d]", fp, ref, s.Env.Cfg.ESD.ReferHMax))
		}
		ct, ok := s.Env.Device.Load(phys)
		if !ok {
			bad = append(bad, fmt.Sprintf("efit: entry %#x points at phys %d with no stored line", fp, phys))
			return true
		}
		pt := s.Env.Crypto.DecryptAt(phys, s.Env.Crypto.Counter(phys), &ct)
		if got := uint64(ecc.EncodeLine(&pt)); got != fp {
			bad = append(bad, fmt.Sprintf("efit: entry %#x stored content fingerprints to %#x (index lies about phys %d)", fp, got, phys))
		}
		return true
	})
	s.physFP.Range(func(phys, fp uint64) bool {
		if cur, ok := s.efit.Peek(fp); !ok || cur != phys {
			bad = append(bad, fmt.Sprintf("efit: reverse map phys %d -> %#x not present in the EFIT", phys, fp))
		}
		return true
	})
	if n, m := s.efit.Len(), s.physFP.Len(); n != m {
		bad = append(bad, fmt.Sprintf("efit: %d entries but %d reverse-map entries", n, m))
	}
	return bad
}
