package crypto

import (
	"testing"
	"testing/quick"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/xrand"
	"github.com/esdsim/esd/internal/xrand/quicktest"
)

func randLine(r *xrand.Rand) ecc.Line {
	var l ecc.Line
	for i := range l {
		l[i] = byte(r.Uint64())
	}
	return l
}

func TestNewEngineRejectsBadKey(t *testing.T) {
	if _, err := NewEngine(make([]byte, 7)); err == nil {
		t.Fatal("7-byte key accepted")
	}
	for _, n := range []int{16, 24, 32} {
		if _, err := NewEngine(make([]byte, n)); err != nil {
			t.Fatalf("%d-byte key rejected: %v", n, err)
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	e := NewEngineFromSeed(1)
	r := xrand.New(2)
	check := func(addrRaw uint32) bool {
		addr := uint64(addrRaw)
		plain := randLine(r)
		ct, _ := e.Encrypt(addr, &plain)
		got := e.Decrypt(addr, &ct)
		return got == plain
	}
	if err := quick.Check(check, quicktest.Config(t, 300)); err != nil {
		t.Fatal(err)
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	e := NewEngineFromSeed(3)
	r := xrand.New(4)
	for i := 0; i < 100; i++ {
		plain := randLine(r)
		ct, _ := e.Encrypt(uint64(i), &plain)
		if ct == plain {
			t.Fatalf("ciphertext equals plaintext at addr %d", i)
		}
	}
}

func TestDiffusionSameDataDifferentAddresses(t *testing.T) {
	// The DaE approach fails because encryption destroys equality: equal
	// plaintext at different addresses (or different counters) must produce
	// different ciphertext. This is the property that forces dedup to run
	// before encryption.
	e := NewEngineFromSeed(5)
	plain := ecc.Line{1, 2, 3, 4}
	p2 := plain
	ctA, _ := e.Encrypt(100, &plain)
	ctB, _ := e.Encrypt(200, &p2)
	if ctA == ctB {
		t.Fatal("equal plaintext at different addresses encrypted identically")
	}
	// Same address, successive writes (counter bump) must also differ.
	p3 := plain
	ctA2, _ := e.Encrypt(100, &p3)
	if ctA2 == ctA {
		t.Fatal("counter did not change ciphertext across writes")
	}
}

func TestCounterIncrementsPerWrite(t *testing.T) {
	e := NewEngineFromSeed(6)
	plain := ecc.Line{9}
	if e.Counter(7) != 0 {
		t.Fatal("fresh line has non-zero counter")
	}
	for i := uint64(1); i <= 5; i++ {
		p := plain
		_, ctr := e.Encrypt(7, &p)
		if ctr != i {
			t.Fatalf("write %d: counter = %d", i, ctr)
		}
	}
	if e.Counter(7) != 5 {
		t.Fatalf("final counter = %d, want 5", e.Counter(7))
	}
}

func TestSpeculativeEncryptDoesNotCommit(t *testing.T) {
	e := NewEngineFromSeed(7)
	plain := ecc.Line{42}
	p := plain
	ct, ctr := e.EncryptSpeculative(33, &p)
	if ctr != 1 {
		t.Fatalf("speculative counter = %d, want 1", ctr)
	}
	if e.Counter(33) != 0 {
		t.Fatal("speculation committed the counter")
	}
	// A discarded speculation leaves the line unreadable via the committed
	// counter path, which is correct: the line was never written.
	e.Commit(33, ctr)
	if e.Counter(33) != 1 {
		t.Fatal("Commit did not store the counter")
	}
	got := e.Decrypt(33, &ct)
	if got != plain {
		t.Fatal("committed speculative ciphertext failed to decrypt")
	}
}

func TestDecryptAtOldCounterRecoversOldData(t *testing.T) {
	e := NewEngineFromSeed(8)
	v1 := ecc.Line{1}
	v2 := ecc.Line{2}
	p := v1
	ct1, c1 := e.Encrypt(55, &p)
	p = v2
	ct2, c2 := e.Encrypt(55, &p)
	if got := e.DecryptAt(55, c1, &ct1); got != v1 {
		t.Fatal("old counter failed to decrypt old ciphertext")
	}
	if got := e.DecryptAt(55, c2, &ct2); got != v2 {
		t.Fatal("new counter failed to decrypt new ciphertext")
	}
	// Cross-decryption yields garbage, not the plaintext.
	if got := e.DecryptAt(55, c2, &ct1); got == v1 {
		t.Fatal("wrong counter decrypted old ciphertext")
	}
}

func TestDeterministicAcrossEngines(t *testing.T) {
	a := NewEngineFromSeed(99)
	b := NewEngineFromSeed(99)
	plain := ecc.Line{7, 7, 7}
	pa, pb := plain, plain
	ctA, _ := a.Encrypt(1, &pa)
	ctB, _ := b.Encrypt(1, &pb)
	if ctA != ctB {
		t.Fatal("same-seed engines produced different ciphertext")
	}
	c := NewEngineFromSeed(100)
	pc := plain
	ctC, _ := c.Encrypt(1, &pc)
	if ctC == ctA {
		t.Fatal("different-seed engines produced identical ciphertext")
	}
}

func TestStatsAndCounterEntries(t *testing.T) {
	e := NewEngineFromSeed(11)
	p := ecc.Line{}
	for i := 0; i < 10; i++ {
		l := p
		ct, _ := e.Encrypt(uint64(i%3), &l)
		e.Decrypt(uint64(i%3), &ct)
	}
	if e.Encryptions != 10 || e.Decryptions != 10 {
		t.Fatalf("stats = %d/%d, want 10/10", e.Encryptions, e.Decryptions)
	}
	if e.CounterEntries() != 3 {
		t.Fatalf("counter entries = %d, want 3", e.CounterEntries())
	}
}

func BenchmarkEncryptLine(b *testing.B) {
	b.ReportAllocs()
	e := NewEngineFromSeed(1)
	l := randLine(xrand.New(1))
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		p := l
		e.Encrypt(uint64(i&1023), &p)
	}
}
