package crypto

import (
	"testing"
	"testing/quick"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/xrand"
	"github.com/esdsim/esd/internal/xrand/quicktest"
)

// EncryptBatch must be observably identical to N EncryptInPlace calls:
// same ciphertexts, same committed counters, same Encryptions count — for
// every batch size the coalescer forms (1..9) and for address collisions
// within one batch (the same address written twice in a batch must burn
// two distinct counters, never reuse a pad).
func TestEncryptBatchMatchesScalar(t *testing.T) {
	for size := 1; size <= 9; size++ {
		prop := func(seed uint64) bool {
			r := xrand.New(seed)
			scalar := NewEngineFromSeed(seed)
			batch := NewEngineFromSeed(seed)

			addrs := make([]uint64, size)
			sLines := make([]ecc.Line, size)
			bLines := make([]ecc.Line, size)
			ops := make([]BatchOp, size)
			for i := 0; i < size; i++ {
				// Small address space forces intra-batch collisions.
				addrs[i] = r.Uint64n(4)
				for w := 0; w < ecc.WordsPerLine; w++ {
					sLines[i].SetWord(w, r.Uint64())
				}
				bLines[i] = sLines[i]
				ops[i] = BatchOp{Addr: addrs[i], Line: &bLines[i]}
			}

			sCounters := make([]uint64, size)
			for i := 0; i < size; i++ {
				sCounters[i] = scalar.EncryptInPlace(addrs[i], &sLines[i])
			}
			batch.EncryptBatch(ops)

			for i := 0; i < size; i++ {
				if bLines[i] != sLines[i] || ops[i].Counter != sCounters[i] {
					return false
				}
			}
			if batch.Encryptions != scalar.Encryptions {
				return false
			}
			for a := uint64(0); a < 4; a++ {
				if batch.Counter(a) != scalar.Counter(a) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, quicktest.Config(t, 40)); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

// DecryptBatch under the current counters must invert EncryptBatch and
// match per-line DecryptInPlace.
func TestDecryptBatchMatchesScalar(t *testing.T) {
	prop := func(seed uint64) bool {
		r := xrand.New(seed)
		e := NewEngineFromSeed(seed)
		d := NewEngineFromSeed(seed)

		const n = 6
		plain := make([]ecc.Line, n)
		ct := make([]ecc.Line, n)
		ops := make([]BatchOp, n)
		for i := 0; i < n; i++ {
			for w := 0; w < ecc.WordsPerLine; w++ {
				plain[i].SetWord(w, r.Uint64())
			}
			ct[i] = plain[i]
			// Distinct addresses: DecryptBatch reads the *current* counter,
			// so a repeated address would decrypt an old ciphertext under a
			// newer counter — exactly like scalar DecryptInPlace.
			e.EncryptInPlace(uint64(i), &ct[i])
			d.Commit(uint64(i), e.Counter(uint64(i)))
			ops[i] = BatchOp{Addr: uint64(i), Line: &ct[i]}
		}
		d.DecryptBatch(ops)
		for i := 0; i < n; i++ {
			if ct[i] != plain[i] || ops[i].Counter != e.Counter(uint64(i)) {
				return false
			}
		}
		return d.Decryptions == n
	}
	if err := quick.Check(prop, quicktest.Config(t, 60)); err != nil {
		t.Fatal(err)
	}
}

// ReserveCounter + a later XorPadBatch must equal an immediate
// EncryptInPlace — the deferred-store write path depends on the counter
// committed at reservation time keying the same pad the scalar path uses.
func TestReserveThenPadMatchesEncryptInPlace(t *testing.T) {
	prop := func(seed uint64, addr uint64) bool {
		r := xrand.New(seed)
		a := NewEngineFromSeed(seed)
		b := NewEngineFromSeed(seed)

		var la, lb ecc.Line
		for w := 0; w < ecc.WordsPerLine; w++ {
			la.SetWord(w, r.Uint64())
		}
		lb = la

		ca := a.EncryptInPlace(addr, &la)
		cb := b.ReserveCounter(addr)
		// An unrelated reservation happens between reserve and pad — the
		// deferred flush must still key on the reserved counter.
		b.ReserveCounter(addr + 1)
		a.EncryptInPlace(addr+1, &ecc.Line{})
		b.XorPadBatch([]BatchOp{{Addr: addr, Counter: cb, Line: &lb}})

		return la == lb && ca == cb && a.Encryptions == b.Encryptions &&
			a.Counter(addr) == b.Counter(addr)
	}
	if err := quick.Check(prop, quicktest.Config(t, 60)); err != nil {
		t.Fatal(err)
	}
}

func TestXorPadBatchEmpty(t *testing.T) {
	e := NewEngineFromSeed(1)
	e.XorPadBatch(nil) // must not panic
	e.EncryptBatch(nil)
	e.DecryptBatch(nil)
}

// The batch kernels must be allocation-free in steady state (after the
// scratch buffer has grown to the working batch size).
func TestBatchKernelAllocs(t *testing.T) {
	e := NewEngineFromSeed(1)
	lines := make([]ecc.Line, 8)
	ops := make([]BatchOp, 8)
	for i := range ops {
		ops[i] = BatchOp{Addr: uint64(i), Line: &lines[i]}
	}
	e.EncryptBatch(ops) // warm the scratch
	if avg := testing.AllocsPerRun(200, func() { e.EncryptBatch(ops) }); avg != 0 {
		t.Fatalf("EncryptBatch allocates %.1f per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { e.XorPadBatch(ops) }); avg != 0 {
		t.Fatalf("XorPadBatch allocates %.1f per run, want 0", avg)
	}
}

func BenchmarkEncryptBatch8(b *testing.B) {
	b.ReportAllocs()
	e := NewEngineFromSeed(1)
	lines := make([]ecc.Line, 8)
	ops := make([]BatchOp, 8)
	for i := range ops {
		l := randLine(xrand.New(uint64(i)))
		lines[i] = l
		ops[i] = BatchOp{Addr: uint64(i & 1023), Line: &lines[i]}
	}
	e.EncryptBatch(ops)
	b.SetBytes(8 * ecc.LineSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EncryptBatch(ops)
	}
}
