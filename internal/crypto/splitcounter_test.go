package crypto

import (
	"testing"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/xrand"
)

// splitStore is a toy ciphertext store implementing the re-encryption
// callbacks: it remembers plaintexts (as the NVMM data path would via
// decrypt-then-re-encrypt) and ciphertexts.
type splitStore struct {
	plain  map[uint64]ecc.Line
	cipher map[uint64]ecc.Line
}

func newSplitStore() *splitStore {
	return &splitStore{plain: map[uint64]ecc.Line{}, cipher: map[uint64]ecc.Line{}}
}

func (s *splitStore) getPlain(addr uint64) (ecc.Line, bool) {
	p, ok := s.plain[addr]
	return p, ok
}

func (s *splitStore) storeCipher(addr uint64, ct ecc.Line) { s.cipher[addr] = ct }

func (s *splitStore) write(e *SplitCounterEngine, addr uint64, pt ecc.Line) {
	s.plain[addr] = pt
	ct, _ := e.Encrypt(addr, &pt, s.getPlain, s.storeCipher)
	s.cipher[addr] = ct
}

func (s *splitStore) read(e *SplitCounterEngine, addr uint64) ecc.Line {
	ct := s.cipher[addr]
	return e.Decrypt(addr, &ct)
}

func TestSplitCounterRoundTrip(t *testing.T) {
	e := NewSplitCounterEngine(1, 7)
	st := newSplitStore()
	var pt ecc.Line
	pt.SetWord(0, 0xABCD)
	st.write(e, 10, pt)
	if got := st.read(e, 10); got != pt {
		t.Fatal("round trip failed")
	}
}

func TestSplitCounterMinorOverflowRekeysPage(t *testing.T) {
	e := NewSplitCounterEngine(2, 3) // minor saturates at 7
	st := newSplitStore()
	// Two lines in the same page.
	a, b := uint64(LinesPerPage*5), uint64(LinesPerPage*5+1)
	var ptA, ptB ecc.Line
	ptA.SetWord(0, 0xA)
	ptB.SetWord(0, 0xB)
	st.write(e, b, ptB)
	// Hammer line a past its 3-bit minor.
	for i := 0; i < 20; i++ {
		ptA.SetWord(1, uint64(i))
		st.write(e, a, ptA)
	}
	if e.MinorOverflows == 0 || e.PagesReencrypted == 0 {
		t.Fatalf("no overflow after 20 writes with 3-bit minors: %+v", e)
	}
	if e.LinesReencrypted == 0 {
		t.Fatal("sibling line was not re-encrypted on page rekey")
	}
	// Both lines still decrypt correctly after the storms.
	if got := st.read(e, a); got != ptA {
		t.Fatal("hammered line corrupted")
	}
	if got := st.read(e, b); got != ptB {
		t.Fatal("sibling line corrupted by page re-encryption")
	}
}

func TestSplitCounterPadFreshness(t *testing.T) {
	// The same plaintext written repeatedly must never repeat ciphertext,
	// across minor bumps AND across page rekeys.
	e := NewSplitCounterEngine(3, 2) // overflow every 3 writes
	st := newSplitStore()
	var pt ecc.Line
	pt.SetWord(0, 42)
	seen := map[ecc.Line]int{}
	for i := 0; i < 30; i++ {
		st.write(e, 7, pt)
		ct := st.cipher[7]
		if prev, dup := seen[ct]; dup {
			t.Fatalf("ciphertext repeated at writes %d and %d (pad reuse!)", prev, i)
		}
		seen[ct] = i
	}
}

func TestSplitCounterManyLinesProperty(t *testing.T) {
	e := NewSplitCounterEngine(4, 4)
	st := newSplitStore()
	r := xrand.New(9)
	latest := map[uint64]ecc.Line{}
	for i := 0; i < 3000; i++ {
		addr := r.Uint64n(4 * LinesPerPage)
		var pt ecc.Line
		pt.SetWord(0, r.Uint64())
		pt.SetWord(1, addr)
		st.write(e, addr, pt)
		latest[addr] = pt
	}
	for addr, want := range latest {
		if got := st.read(e, addr); got != want {
			t.Fatalf("line %d corrupted (overflows=%d reencrypted=%d)",
				addr, e.MinorOverflows, e.LinesReencrypted)
		}
	}
	if e.MinorOverflows == 0 {
		t.Fatal("4-bit minors never overflowed under 3000 writes")
	}
}

func TestSplitCounterMetadataSavings(t *testing.T) {
	e := NewSplitCounterEngine(5, 7)
	bits := e.MetadataBitsPerLine()
	if bits >= FlatMetadataBitsPerLine/4 {
		t.Fatalf("split counters cost %.2f bits/line, want far below the flat 64", bits)
	}
	// DEUCE-style 7-bit minors: 64/64 + 7 = 8 bits/line.
	if bits != 8 {
		t.Fatalf("bits/line = %v, want 8", bits)
	}
}

func TestSplitCounterBadMinorBitsPanics(t *testing.T) {
	for _, bits := range []uint{0, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("minorBits=%d accepted", bits)
				}
			}()
			NewSplitCounterEngine(1, bits)
		}()
	}
}

func TestSplitCounterNilCallbacksSafe(t *testing.T) {
	e := NewSplitCounterEngine(6, 1)
	var pt ecc.Line
	for i := 0; i < 10; i++ {
		if ct, _ := e.Encrypt(3, &pt, nil, nil); ct == pt {
			t.Fatal("ciphertext equals plaintext")
		}
	}
	if e.MinorOverflows == 0 {
		t.Fatal("1-bit minor never overflowed")
	}
}
