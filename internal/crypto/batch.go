// Batch pad generation: the per-line cost of counter-mode encryption is
// four independent cipher.Block.Encrypt calls plus the XOR fold. When the
// shard coalescer (or a batched client frame) hands the write path N lines
// at once, the counter blocks of all N lines are laid out back to back in
// one engine-held scratch buffer and encrypted in a single tight pass, so
// the AES round-key loads and call overhead amortize across 4×N blocks
// instead of being paid per block. The pad for each 16-byte block is the
// same AES(key, addr || counter || blockIndex) the scalar path computes —
// batch and scalar ciphertexts are bit-identical by construction, which the
// equivalence tests in batch_test.go pin.
package crypto

import (
	"crypto/aes"
	"encoding/binary"

	"github.com/esdsim/esd/internal/ecc"
)

// BatchOp is one line of a batch pad operation. For EncryptBatch, Counter
// is an output (the committed write counter); for DecryptBatch and
// XorPadBatch it is an input.
type BatchOp struct {
	// Addr is the physical line address the pad is keyed on.
	Addr uint64
	// Counter is the write counter the pad is keyed on.
	Counter uint64
	// Line is transformed in place (plaintext XOR pad, or the reverse).
	Line *ecc.Line
}

// ReserveCounter commits the next write counter for addr and returns it,
// with exactly the statistics side effects of EncryptInPlace. Batch write
// paths that defer pad generation (to coalesce device writes) call this at
// decision time so counter semantics — and the pad-uniqueness invariant
// the checker audits — are identical to the scalar path: the counter is
// burned the moment the write is accepted, never reused even if the
// physical line is freed and reallocated later in the same batch.
func (e *Engine) ReserveCounter(addr uint64) uint64 {
	counter := e.counters.Load(addr) + 1
	e.counters.Set(addr, counter)
	e.Encryptions++
	if e.Probe != nil {
		e.Probe.CryptoEncrypt()
	}
	return counter
}

// XorPadBatch XORs the one-time pad for each (Addr, Counter) pair into its
// line in place, generating all pads through one multi-block AES pass over
// the concatenated counter blocks. It performs no counter bookkeeping and
// records no statistics: callers either reserved the counters already
// (ReserveCounter) or are decrypting under known counters.
func (e *Engine) XorPadBatch(ops []BatchOp) {
	if len(ops) == 0 {
		return
	}
	need := len(ops) * ecc.LineSize
	if cap(e.batchBuf) < need {
		e.batchBuf = make([]byte, need)
	}
	buf := e.batchBuf[:need]

	// Lay out the 4×N counter blocks contiguously…
	off := 0
	for i := range ops {
		addr, counter := ops[i].Addr, ops[i].Counter
		for blk := 0; blk < ecc.LineSize/aes.BlockSize; blk++ {
			binary.LittleEndian.PutUint64(buf[off:off+8], addr)
			binary.LittleEndian.PutUint64(buf[off+8:off+16], counter)
			buf[off+15] ^= byte(blk) // distinguish the four 16-byte blocks
			off += aes.BlockSize
		}
	}
	// …encrypt them all in one tight pass (keystream generation)…
	for off = 0; off < need; off += aes.BlockSize {
		e.block.Encrypt(buf[off:off+aes.BlockSize], buf[off:off+aes.BlockSize])
	}
	// …and fold each pad into its line, eight uint64 XORs per line.
	for i := range ops {
		line := ops[i].Line
		pad := buf[i*ecc.LineSize : i*ecc.LineSize+ecc.LineSize]
		for w := 0; w < ecc.LineSize; w += 8 {
			v := binary.LittleEndian.Uint64(line[w:w+8]) ^
				binary.LittleEndian.Uint64(pad[w:w+8])
			binary.LittleEndian.PutUint64(line[w:w+8], v)
		}
	}
}

// EncryptBatch commits a new write counter for every op (stored into
// op.Counter) and replaces each op's plaintext with its ciphertext, the
// batch equivalent of N EncryptInPlace calls.
func (e *Engine) EncryptBatch(ops []BatchOp) {
	for i := range ops {
		ops[i].Counter = e.ReserveCounter(ops[i].Addr)
	}
	e.XorPadBatch(ops)
}

// DecryptBatch decrypts every op's ciphertext under the current counter of
// its address (stored into op.Counter), the batch equivalent of N
// DecryptInPlace calls.
func (e *Engine) DecryptBatch(ops []BatchOp) {
	for i := range ops {
		ops[i].Counter = e.counters.Load(ops[i].Addr)
		e.Decryptions++
		if e.Probe != nil {
			e.Probe.CryptoDecrypt()
		}
	}
	e.XorPadBatch(ops)
}
