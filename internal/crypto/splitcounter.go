package crypto

import (
	"github.com/esdsim/esd/internal/ecc"
)

// SplitCounterEngine implements the split-counter organization real
// secure-memory designs use (DEUCE, cited as [66] in the paper; also the
// organization assumed by Synergy/Triad-NVM): each 64-line page shares one
// large major counter, and every line keeps only a small per-line minor
// counter. The pad for a line is derived from (page major || line minor).
//
// Small minors overflow: when a line's minor saturates, the page's major
// counter increments and *every* line in the page must be re-encrypted
// under the new major — the classic write-amplification trade-off that
// shrinking counter metadata buys. The engine tracks that cost explicitly.
//
// Compared to the flat Engine (one 64-bit counter per line, 8 B/line of
// counter metadata), the split organization stores 64-bit major per page
// plus MinorBits per line (e.g. 1 B + 7 bit/line ≈ 8x less), at the price
// of periodic page re-encryption storms.
type SplitCounterEngine struct {
	inner     *Engine
	minorBits uint
	minorMax  uint64

	majors map[uint64]uint64 // page -> major counter
	minors map[uint64]uint64 // line -> minor counter

	// Stats.
	Encryptions      uint64
	MinorOverflows   uint64
	LinesReencrypted uint64
	PagesReencrypted uint64

	// Probe, when non-nil, observes encryptions, decryptions and minor
	// counter overflows (with the page-rekey line count).
	Probe Probe
}

// LinesPerPage is the split-counter page granularity in cache lines.
const LinesPerPage = 64

// NewSplitCounterEngine builds a split-counter engine with minorBits-wide
// per-line counters (DEUCE-style: 7).
func NewSplitCounterEngine(seed uint64, minorBits uint) *SplitCounterEngine {
	if minorBits < 1 || minorBits > 32 {
		panic("crypto: minorBits must be in [1, 32]")
	}
	return &SplitCounterEngine{
		inner:     NewEngineFromSeed(seed),
		minorBits: minorBits,
		minorMax:  1<<minorBits - 1,
		majors:    make(map[uint64]uint64),
		minors:    make(map[uint64]uint64),
	}
}

func pageOf(addr uint64) uint64 { return addr / LinesPerPage }

// counterFor combines the page major and line minor into the effective
// pad counter. Majors are shifted clear of minors so (major, minor) pairs
// never alias.
func (e *SplitCounterEngine) counterFor(addr uint64) uint64 {
	return e.majors[pageOf(addr)]<<e.minorBits | e.minors[addr]
}

// Encrypt encrypts plain for addr, bumping the line's minor counter. When
// the minor overflows, the page major increments, all minors reset, and
// the reencrypt callback is invoked for every *other* live line of the
// page so the caller can rewrite their ciphertexts (the engine reports
// which lines and their fresh ciphertexts via the callback).
//
// The callback receives each line's address; the caller must supply that
// line's current plaintext via getPlain and store the returned ciphertext.
func (e *SplitCounterEngine) Encrypt(addr uint64, plain *ecc.Line,
	getPlain func(addr uint64) (ecc.Line, bool),
	storeCipher func(addr uint64, ct ecc.Line)) (ct ecc.Line, counter uint64) {
	e.Encryptions++
	if e.Probe != nil {
		e.Probe.CryptoEncrypt()
	}
	if e.minors[addr] >= e.minorMax {
		// Overflow: re-key the whole page.
		e.MinorOverflows++
		e.PagesReencrypted++
		page := pageOf(addr)
		e.majors[page]++
		base := page * LinesPerPage
		rekeyed := 0
		for i := uint64(0); i < LinesPerPage; i++ {
			other := base + i
			if other == addr {
				e.minors[other] = 0
				continue
			}
			if _, ok := e.minors[other]; !ok {
				continue // never written; nothing to re-encrypt
			}
			e.minors[other] = 0
			if getPlain == nil || storeCipher == nil {
				continue
			}
			if pt, ok := getPlain(other); ok {
				e.LinesReencrypted++
				rekeyed++
				c := e.padEncrypt(other, &pt)
				storeCipher(other, c)
			}
		}
		if e.Probe != nil {
			e.Probe.CounterOverflow(rekeyed)
		}
	}
	e.minors[addr]++
	return e.padEncrypt(addr, plain), e.counterFor(addr)
}

// padEncrypt XORs plain with the pad for addr's *current* counters; the
// caller must have already settled the minor (bumped on a fresh write,
// reset on a page rekey).
func (e *SplitCounterEngine) padEncrypt(addr uint64, plain *ecc.Line) ecc.Line {
	ct := *plain
	e.inner.xorPad(addr, e.counterFor(addr), &ct)
	return ct
}

// Decrypt decrypts ct stored at addr under the line's current counters.
func (e *SplitCounterEngine) Decrypt(addr uint64, ct *ecc.Line) ecc.Line {
	pt := *ct
	e.inner.xorPad(addr, e.counterFor(addr), &pt)
	if e.Probe != nil {
		e.Probe.CryptoDecrypt()
	}
	return pt
}

// MetadataBitsPerLine reports the counter-metadata cost of this
// organization in bits per line (major amortized over the page + minor).
func (e *SplitCounterEngine) MetadataBitsPerLine() float64 {
	return 64.0/LinesPerPage + float64(e.minorBits)
}

// FlatMetadataBitsPerLine is the flat Engine's cost for comparison.
const FlatMetadataBitsPerLine = 64.0
