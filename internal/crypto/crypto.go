// Package crypto implements the counter-mode encryption (CME) engine that
// protects every cache line leaving the trusted CPU chip for the NVMM,
// as required by the threat model in §II/§III-E of the ESD paper.
//
// Counter-mode encryption keeps a per-physical-line write counter; the
// one-time pad for a line is AES(key, lineAddr || counter || blockIndex)
// and the ciphertext is plaintext XOR pad. Because the pad depends only on
// (address, counter), it can be generated while the data is still in
// flight, which is what lets the schemes overlap encryption with other
// write-path work. Deduplication runs *before* encryption (DbE), so
// counters are tracked per physical line.
package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/sparse"
)

// Probe receives crypto events as they happen, mirroring the Stats fields
// for a concurrently scraped telemetry layer (telemetry's Sink satisfies it
// structurally; this package stays dependency-free).
type Probe interface {
	CryptoEncrypt()
	CryptoDecrypt()
	CounterOverflow(linesRekeyed int)
}

// Engine is a counter-mode encryption engine with per-line counters.
// It is not safe for concurrent use; the simulator is single-threaded.
type Engine struct {
	block cipher.Block
	// counters maps physical line -> write counter. Counter lookups sit
	// on every encrypt, decrypt and batch reservation, so the store is a
	// paged sparse array instead of a map.
	counters sparse.Map[uint64]

	// padIn/padOut are the AES block scratch buffers. They live on the
	// (heap-resident) engine rather than the stack because slices of a
	// stack array passed to the cipher.Block interface escape, costing two
	// heap allocations per pad; engine-held scratch makes every
	// encrypt/decrypt allocation-free.
	padIn  [aes.BlockSize]byte
	padOut [aes.BlockSize]byte

	// batchBuf holds the concatenated counter blocks of a batch pad pass
	// (XorPadBatch); grown on demand and reused so steady-state batch
	// encryption is allocation-free.
	batchBuf []byte

	// Stats.
	Encryptions uint64
	Decryptions uint64

	// Probe, when non-nil, observes every encryption and decryption.
	Probe Probe
}

// NewEngine creates an engine from a 16-, 24- or 32-byte AES key.
func NewEngine(key []byte) (*Engine, error) {
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("crypto: %w", err)
	}
	return &Engine{block: b}, nil
}

// NewEngineFromSeed derives a deterministic 32-byte key from a seed; used
// by the simulator so runs are reproducible.
func NewEngineFromSeed(seed uint64) *Engine {
	var key [32]byte
	s := seed
	for i := 0; i < 4; i++ {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		binary.LittleEndian.PutUint64(key[i*8:], z^(z>>31))
	}
	e, err := NewEngine(key[:])
	if err != nil {
		panic(err) // unreachable: key length is fixed at 32
	}
	return e
}

// xorPad XORs the one-time pad for (addr, counter) into line in place,
// turning plaintext into ciphertext and vice versa without materializing
// the pad as a separate 64-byte copy.
func (e *Engine) xorPad(addr, counter uint64, line *ecc.Line) {
	in, out := e.padIn[:], e.padOut[:]
	for blk := 0; blk < ecc.LineSize/aes.BlockSize; blk++ {
		binary.LittleEndian.PutUint64(in[0:8], addr)
		binary.LittleEndian.PutUint64(in[8:16], counter)
		in[15] ^= byte(blk) // distinguish the four 16-byte blocks
		e.block.Encrypt(out, in)
		off := blk * aes.BlockSize
		lo := binary.LittleEndian.Uint64(line[off : off+8])
		hi := binary.LittleEndian.Uint64(line[off+8 : off+16])
		lo ^= binary.LittleEndian.Uint64(out[0:8])
		hi ^= binary.LittleEndian.Uint64(out[8:16])
		binary.LittleEndian.PutUint64(line[off:off+8], lo)
		binary.LittleEndian.PutUint64(line[off+8:off+16], hi)
	}
}

// Counter returns the current write counter of a physical line (0 if the
// line has never been written).
func (e *Engine) Counter(addr uint64) uint64 { return e.counters.Load(addr) }

// EncryptInPlace increments the write counter of addr and replaces line's
// plaintext with the ciphertext under the new counter, returning that
// counter value. The counter increment on every write is what guarantees
// pad uniqueness. This is the steady-state write path: no line copies, no
// allocations.
func (e *Engine) EncryptInPlace(addr uint64, line *ecc.Line) (counter uint64) {
	counter = e.counters.Load(addr) + 1
	e.counters.Set(addr, counter)
	e.xorPad(addr, counter, line)
	e.Encryptions++
	if e.Probe != nil {
		e.Probe.CryptoEncrypt()
	}
	return counter
}

// Encrypt increments the write counter of addr and returns the ciphertext
// of plain under the new counter, together with that counter value. Hot
// paths that can overwrite the buffer should use EncryptInPlace.
func (e *Engine) Encrypt(addr uint64, plain *ecc.Line) (ct ecc.Line, counter uint64) {
	ct = *plain
	counter = e.EncryptInPlace(addr, &ct)
	return ct, counter
}

// EncryptSpeculativeInPlace produces ciphertext in place for the *next*
// counter value of addr without committing the increment. DeWrite encrypts
// in parallel with fingerprinting and discards the work when the line
// turns out to be a duplicate; Commit makes the speculation durable.
func (e *Engine) EncryptSpeculativeInPlace(addr uint64, line *ecc.Line) (counter uint64) {
	counter = e.counters.Load(addr) + 1
	e.xorPad(addr, counter, line)
	e.Encryptions++
	if e.Probe != nil {
		e.Probe.CryptoEncrypt()
	}
	return counter
}

// EncryptSpeculative is EncryptSpeculativeInPlace on a copy of plain.
func (e *Engine) EncryptSpeculative(addr uint64, plain *ecc.Line) (ct ecc.Line, counter uint64) {
	ct = *plain
	counter = e.EncryptSpeculativeInPlace(addr, &ct)
	return ct, counter
}

// Commit makes a speculative encryption durable by storing its counter.
func (e *Engine) Commit(addr, counter uint64) { e.counters.Set(addr, counter) }

// DecryptInPlace replaces ct's ciphertext with the plaintext stored at
// addr under the line's current counter.
func (e *Engine) DecryptInPlace(addr uint64, ct *ecc.Line) {
	e.DecryptAtInPlace(addr, e.counters.Load(addr), ct)
}

// DecryptAtInPlace decrypts in place under an explicit counter value.
func (e *Engine) DecryptAtInPlace(addr, counter uint64, ct *ecc.Line) {
	e.xorPad(addr, counter, ct)
	e.Decryptions++
	if e.Probe != nil {
		e.Probe.CryptoDecrypt()
	}
}

// Decrypt returns the plaintext of ct stored at addr under the line's
// current counter.
func (e *Engine) Decrypt(addr uint64, ct *ecc.Line) ecc.Line {
	return e.DecryptAt(addr, e.counters.Load(addr), ct)
}

// DecryptAt decrypts under an explicit counter value.
func (e *Engine) DecryptAt(addr, counter uint64, ct *ecc.Line) ecc.Line {
	pt := *ct
	e.DecryptAtInPlace(addr, counter, &pt)
	return pt
}

// CounterEntries reports how many per-line counters are live; used for
// metadata-overhead accounting.
func (e *Engine) CounterEntries() int { return e.counters.Len() }

// RangeCounters calls fn for every (line address, write counter) pair
// until fn returns false. Iteration order is unspecified. The checker's
// pad-uniqueness audit snapshots the counters between ops and verifies
// they only ever grow: a counter that repeats would reuse a one-time pad.
func (e *Engine) RangeCounters(fn func(addr, counter uint64) bool) {
	e.counters.Range(fn)
}
