// Package crypto implements the counter-mode encryption (CME) engine that
// protects every cache line leaving the trusted CPU chip for the NVMM,
// as required by the threat model in §II/§III-E of the ESD paper.
//
// Counter-mode encryption keeps a per-physical-line write counter; the
// one-time pad for a line is AES(key, lineAddr || counter || blockIndex)
// and the ciphertext is plaintext XOR pad. Because the pad depends only on
// (address, counter), it can be generated while the data is still in
// flight, which is what lets the schemes overlap encryption with other
// write-path work. Deduplication runs *before* encryption (DbE), so
// counters are tracked per physical line.
package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"

	"github.com/esdsim/esd/internal/ecc"
)

// Probe receives crypto events as they happen, mirroring the Stats fields
// for a concurrently scraped telemetry layer (telemetry's Sink satisfies it
// structurally; this package stays dependency-free).
type Probe interface {
	CryptoEncrypt()
	CryptoDecrypt()
	CounterOverflow(linesRekeyed int)
}

// Engine is a counter-mode encryption engine with per-line counters.
// It is not safe for concurrent use; the simulator is single-threaded.
type Engine struct {
	block    cipher.Block
	counters map[uint64]uint64

	// Stats.
	Encryptions uint64
	Decryptions uint64

	// Probe, when non-nil, observes every encryption and decryption.
	Probe Probe
}

// NewEngine creates an engine from a 16-, 24- or 32-byte AES key.
func NewEngine(key []byte) (*Engine, error) {
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("crypto: %w", err)
	}
	return &Engine{block: b, counters: make(map[uint64]uint64)}, nil
}

// NewEngineFromSeed derives a deterministic 32-byte key from a seed; used
// by the simulator so runs are reproducible.
func NewEngineFromSeed(seed uint64) *Engine {
	var key [32]byte
	s := seed
	for i := 0; i < 4; i++ {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		binary.LittleEndian.PutUint64(key[i*8:], z^(z>>31))
	}
	e, err := NewEngine(key[:])
	if err != nil {
		panic(err) // unreachable: key length is fixed at 32
	}
	return e
}

// pad fills dst with the one-time pad for (addr, counter).
func (e *Engine) pad(addr, counter uint64, dst *ecc.Line) {
	var in, out [aes.BlockSize]byte
	for blk := 0; blk < ecc.LineSize/aes.BlockSize; blk++ {
		binary.LittleEndian.PutUint64(in[0:8], addr)
		binary.LittleEndian.PutUint64(in[8:16], counter)
		in[15] ^= byte(blk) // distinguish the four 16-byte blocks
		e.block.Encrypt(out[:], in[:])
		copy(dst[blk*aes.BlockSize:], out[:])
	}
}

// Counter returns the current write counter of a physical line (0 if the
// line has never been written).
func (e *Engine) Counter(addr uint64) uint64 { return e.counters[addr] }

// Encrypt increments the write counter of addr and returns the ciphertext
// of plain under the new counter, together with that counter value.
// The counter increment on every write is what guarantees pad uniqueness.
func (e *Engine) Encrypt(addr uint64, plain *ecc.Line) (ct ecc.Line, counter uint64) {
	counter = e.counters[addr] + 1
	e.counters[addr] = counter
	var p ecc.Line
	e.pad(addr, counter, &p)
	for i := range ct {
		ct[i] = plain[i] ^ p[i]
	}
	e.Encryptions++
	if e.Probe != nil {
		e.Probe.CryptoEncrypt()
	}
	return ct, counter
}

// EncryptSpeculative produces ciphertext for the *next* counter value of
// addr without committing the increment. DeWrite encrypts in parallel with
// fingerprinting and discards the work when the line turns out to be a
// duplicate; Commit makes the speculation durable.
func (e *Engine) EncryptSpeculative(addr uint64, plain *ecc.Line) (ct ecc.Line, counter uint64) {
	counter = e.counters[addr] + 1
	var p ecc.Line
	e.pad(addr, counter, &p)
	for i := range ct {
		ct[i] = plain[i] ^ p[i]
	}
	e.Encryptions++
	if e.Probe != nil {
		e.Probe.CryptoEncrypt()
	}
	return ct, counter
}

// Commit makes a speculative encryption durable by storing its counter.
func (e *Engine) Commit(addr, counter uint64) { e.counters[addr] = counter }

// Decrypt returns the plaintext of ct stored at addr under the line's
// current counter.
func (e *Engine) Decrypt(addr uint64, ct *ecc.Line) ecc.Line {
	return e.DecryptAt(addr, e.counters[addr], ct)
}

// DecryptAt decrypts under an explicit counter value.
func (e *Engine) DecryptAt(addr, counter uint64, ct *ecc.Line) ecc.Line {
	var p ecc.Line
	e.pad(addr, counter, &p)
	var pt ecc.Line
	for i := range pt {
		pt[i] = ct[i] ^ p[i]
	}
	e.Decryptions++
	if e.Probe != nil {
		e.Probe.CryptoDecrypt()
	}
	return pt
}

// CounterEntries reports how many per-line counters are live; used for
// metadata-overhead accounting.
func (e *Engine) CounterEntries() int { return len(e.counters) }
