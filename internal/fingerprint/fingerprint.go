// Package fingerprint provides the data fingerprints used by the
// deduplication schemes the paper compares:
//
//   - SHA-1 and MD5 cryptographic digests (Dedup_SHA1 and classic inline
//     dedup), computed with the standard library;
//   - CRC-16/32/64 lightweight fingerprints (DeWrite), implemented from
//     scratch with table-driven generators;
//   - the ECC fingerprint (ESD) lives in package ecc, since it is a
//     by-product of the error-correction substrate.
//
// Each fingerprinter also reports the latency/energy cost charged by the
// timing model, so schemes stay honest about what their fingerprints cost.
package fingerprint

import (
	"crypto/md5"
	"crypto/sha1"
	"encoding/binary"
	"fmt"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/sim"
)

// Kind identifies a fingerprint algorithm.
type Kind int

// Supported fingerprint kinds.
const (
	KindSHA1 Kind = iota
	KindMD5
	KindCRC16
	KindCRC32
	KindCRC64
	KindECC
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSHA1:
		return "sha1"
	case KindMD5:
		return "md5"
	case KindCRC16:
		return "crc16"
	case KindCRC32:
		return "crc32"
	case KindCRC64:
		return "crc64"
	case KindECC:
		return "ecc"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Bits returns the fingerprint width in bits.
func (k Kind) Bits() int {
	switch k {
	case KindSHA1:
		return 160
	case KindMD5:
		return 128
	case KindCRC16:
		return 16
	case KindCRC32:
		return 32
	case KindCRC64, KindECC:
		return 64
	default:
		return 0
	}
}

// Digest is a fingerprint value. Key carries a collision-safe map key for
// full-width digests; Short is a 64-bit summary used for cheap indexing.
type Digest struct {
	Kind  Kind
	Key   [20]byte // full digest, zero-padded (SHA-1 needs all 20 bytes)
	Short uint64
}

// Fingerprinter computes fingerprints of cache lines and reports their
// modelled hardware cost.
type Fingerprinter interface {
	Kind() Kind
	Fingerprint(l *ecc.Line) Digest
	// Latency is the serial computation latency per line.
	Latency() sim.Time
	// Energy is the energy per line in nJ.
	Energy() float64
}

// New returns the fingerprinter for kind using the cost model in costs.
func New(kind Kind, costs config.FingerprintCosts) Fingerprinter {
	switch kind {
	case KindSHA1:
		return sha1FP{costs}
	case KindMD5:
		return md5FP{costs}
	case KindCRC16:
		return crcFP{kind: KindCRC16, costs: costs}
	case KindCRC32:
		return crcFP{kind: KindCRC32, costs: costs}
	case KindCRC64:
		return crcFP{kind: KindCRC64, costs: costs}
	case KindECC:
		return eccFP{}
	default:
		panic(fmt.Sprintf("fingerprint: unknown kind %v", kind))
	}
}

type sha1FP struct{ costs config.FingerprintCosts }

func (sha1FP) Kind() Kind { return KindSHA1 }
func (f sha1FP) Fingerprint(l *ecc.Line) Digest {
	sum := sha1.Sum(l[:])
	var d Digest
	d.Kind = KindSHA1
	copy(d.Key[:], sum[:])
	d.Short = binary.LittleEndian.Uint64(sum[:8])
	return d
}
func (f sha1FP) Latency() sim.Time { return f.costs.SHA1Latency }
func (f sha1FP) Energy() float64   { return f.costs.SHA1Energy }

type md5FP struct{ costs config.FingerprintCosts }

func (md5FP) Kind() Kind { return KindMD5 }
func (f md5FP) Fingerprint(l *ecc.Line) Digest {
	sum := md5.Sum(l[:])
	var d Digest
	d.Kind = KindMD5
	copy(d.Key[:16], sum[:])
	d.Short = binary.LittleEndian.Uint64(sum[:8])
	return d
}
func (f md5FP) Latency() sim.Time { return f.costs.MD5Latency }
func (f md5FP) Energy() float64   { return f.costs.MD5Energy }

type crcFP struct {
	kind  Kind
	costs config.FingerprintCosts
}

func (f crcFP) Kind() Kind { return f.kind }
func (f crcFP) Fingerprint(l *ecc.Line) Digest {
	var v uint64
	switch f.kind {
	case KindCRC16:
		v = uint64(CRC16(l[:]))
	case KindCRC32:
		v = uint64(CRC32(l[:]))
	default:
		v = CRC64(l[:])
	}
	var d Digest
	d.Kind = f.kind
	binary.LittleEndian.PutUint64(d.Key[:8], v)
	d.Short = v
	return d
}
func (f crcFP) Latency() sim.Time { return f.costs.CRCLatency }
func (f crcFP) Energy() float64   { return f.costs.CRCEnergy }

type eccFP struct{}

func (eccFP) Kind() Kind { return KindECC }
func (eccFP) Fingerprint(l *ecc.Line) Digest {
	fp := uint64(ecc.EncodeLine(l))
	var d Digest
	d.Kind = KindECC
	binary.LittleEndian.PutUint64(d.Key[:8], fp)
	d.Short = fp
	return d
}

// Latency is zero: the memory controller computes the ECC anyway, so the
// fingerprint is free on the write path (§III-C).
func (eccFP) Latency() sim.Time { return 0 }

// Energy is zero marginal cost for the same reason.
func (eccFP) Energy() float64 { return 0 }

// --- CRC generators (from scratch; table-driven) ---

// crc16Poly is the CCITT polynomial x^16 + x^12 + x^5 + 1, reflected.
const crc16Poly = 0x8408

// crc32Poly is the IEEE 802.3 polynomial, reflected (same as hash/crc32).
const crc32Poly = 0xEDB88320

// crc64Poly is the ECMA-182 polynomial, reflected.
const crc64Poly = 0xC96C5795D7870F42

var (
	crc16Table [256]uint16
	crc32Table [256]uint32
	crc64Table [256]uint64
)

func init() {
	for i := 0; i < 256; i++ {
		c16 := uint16(i)
		c32 := uint32(i)
		c64 := uint64(i)
		for k := 0; k < 8; k++ {
			if c16&1 == 1 {
				c16 = c16>>1 ^ crc16Poly
			} else {
				c16 >>= 1
			}
			if c32&1 == 1 {
				c32 = c32>>1 ^ crc32Poly
			} else {
				c32 >>= 1
			}
			if c64&1 == 1 {
				c64 = c64>>1 ^ crc64Poly
			} else {
				c64 >>= 1
			}
		}
		crc16Table[i] = c16
		crc32Table[i] = c32
		crc64Table[i] = c64
	}
}

// CRC16 computes the reflected CRC-16/CCITT of p.
func CRC16(p []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range p {
		crc = crc>>8 ^ crc16Table[byte(crc)^b]
	}
	return ^crc
}

// CRC32 computes the IEEE CRC-32 of p (bit-compatible with hash/crc32).
func CRC32(p []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range p {
		crc = crc>>8 ^ crc32Table[byte(crc)^b]
	}
	return ^crc
}

// CRC64 computes the ECMA CRC-64 of p (bit-compatible with hash/crc64's
// ECMA table).
func CRC64(p []byte) uint64 {
	crc := ^uint64(0)
	for _, b := range p {
		crc = crc>>8 ^ crc64Table[byte(crc)^b]
	}
	return ^crc
}
