package fingerprint

import (
	"hash/crc32"
	"hash/crc64"
	"testing"
	"testing/quick"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/xrand"
	"github.com/esdsim/esd/internal/xrand/quicktest"
)

func costs() config.FingerprintCosts { return config.Default().FP }

func randLine(r *xrand.Rand) *ecc.Line {
	var l ecc.Line
	for i := range l {
		l[i] = byte(r.Uint64())
	}
	return &l
}

func TestCRC32MatchesStdlib(t *testing.T) {
	check := func(p []byte) bool {
		return CRC32(p) == crc32.ChecksumIEEE(p)
	}
	if err := quick.Check(check, quicktest.Config(t, 500)); err != nil {
		t.Fatal(err)
	}
	if CRC32(nil) != crc32.ChecksumIEEE(nil) {
		t.Fatal("empty-input CRC32 mismatch")
	}
}

func TestCRC64MatchesStdlib(t *testing.T) {
	table := crc64.MakeTable(crc64.ECMA)
	check := func(p []byte) bool {
		return CRC64(p) == crc64.Checksum(p, table)
	}
	if err := quick.Check(check, quicktest.Config(t, 500)); err != nil {
		t.Fatal(err)
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/X-25 ("123456789") = 0x906E.
	if got := CRC16([]byte("123456789")); got != 0x906E {
		t.Fatalf("CRC16 check value = %#x, want 0x906E", got)
	}
}

func TestCRCsDetectSingleBitChanges(t *testing.T) {
	r := xrand.New(1)
	for trial := 0; trial < 50; trial++ {
		l := randLine(r)
		c16, c32, c64 := CRC16(l[:]), CRC32(l[:]), CRC64(l[:])
		bit := r.Intn(512)
		ecc.FlipBit(l, bit)
		if CRC16(l[:]) == c16 {
			t.Errorf("CRC16 missed single-bit change at %d", bit)
		}
		if CRC32(l[:]) == c32 {
			t.Errorf("CRC32 missed single-bit change at %d", bit)
		}
		if CRC64(l[:]) == c64 {
			t.Errorf("CRC64 missed single-bit change at %d", bit)
		}
	}
}

func TestKindProperties(t *testing.T) {
	cases := []struct {
		kind Kind
		name string
		bits int
	}{
		{KindSHA1, "sha1", 160},
		{KindMD5, "md5", 128},
		{KindCRC16, "crc16", 16},
		{KindCRC32, "crc32", 32},
		{KindCRC64, "crc64", 64},
		{KindECC, "ecc", 64},
	}
	for _, c := range cases {
		if c.kind.String() != c.name {
			t.Errorf("%v.String() = %q, want %q", c.kind, c.kind.String(), c.name)
		}
		if c.kind.Bits() != c.bits {
			t.Errorf("%v.Bits() = %d, want %d", c.kind, c.kind.Bits(), c.bits)
		}
	}
	if Kind(99).Bits() != 0 {
		t.Error("unknown kind should report 0 bits")
	}
}

func TestFingerprintersAreDeterministicAndDiscriminating(t *testing.T) {
	r := xrand.New(2)
	for _, kind := range []Kind{KindSHA1, KindMD5, KindCRC16, KindCRC32, KindCRC64, KindECC} {
		fp := New(kind, costs())
		if fp.Kind() != kind {
			t.Errorf("New(%v).Kind() = %v", kind, fp.Kind())
		}
		a := randLine(r)
		dup := *a
		d1 := fp.Fingerprint(a)
		d2 := fp.Fingerprint(&dup)
		if d1 != d2 {
			t.Errorf("%v: equal lines produced different digests", kind)
		}
		b := randLine(r)
		if db := fp.Fingerprint(b); db == d1 {
			t.Errorf("%v: two random lines produced the same digest", kind)
		}
	}
}

func TestCostModel(t *testing.T) {
	c := costs()
	sha := New(KindSHA1, c)
	if sha.Latency() != 321*sim.Nanosecond {
		t.Errorf("SHA-1 latency = %v, want 321ns (paper §III-C)", sha.Latency())
	}
	md := New(KindMD5, c)
	if md.Latency() != 312*sim.Nanosecond {
		t.Errorf("MD5 latency = %v, want 312ns (paper §III-C)", md.Latency())
	}
	crc := New(KindCRC32, c)
	if crc.Latency() >= sha.Latency() {
		t.Error("CRC must be cheaper than SHA-1")
	}
	eccFP := New(KindECC, c)
	if eccFP.Latency() != 0 || eccFP.Energy() != 0 {
		t.Error("ECC fingerprint must have zero marginal cost (paper's core claim)")
	}
	if sha.Energy() <= crc.Energy() {
		t.Error("SHA-1 energy must exceed CRC energy")
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(unknown) did not panic")
		}
	}()
	New(Kind(42), costs())
}

func TestShortSummaryConsistentWithKey(t *testing.T) {
	r := xrand.New(3)
	fp := New(KindSHA1, costs())
	seen := map[uint64][20]byte{}
	for i := 0; i < 1000; i++ {
		d := fp.Fingerprint(randLine(r))
		if prev, ok := seen[d.Short]; ok && prev != d.Key {
			// Short is only 64 bits, collisions possible but vanishingly
			// unlikely over 1000 random lines — treat as failure.
			t.Fatal("Short summary collided with different full keys")
		}
		seen[d.Short] = d.Key
	}
}

func TestCollisionRatesOrderAcrossWidths(t *testing.T) {
	// Fig. 8 intuition: narrower fingerprints collide more. Generate a pool
	// of similar lines (low-entropy words) and count pairwise collisions of
	// distinct contents sharing a fingerprint, per kind.
	r := xrand.New(4)
	const n = 20000
	lines := make([]*ecc.Line, n)
	for i := range lines {
		var l ecc.Line
		// Low-entropy content: few distinct byte values, zero runs.
		v := byte(r.Intn(8))
		for j := range l {
			if r.Bool(0.2) {
				v = byte(r.Intn(8))
			}
			l[j] = v
		}
		lines[i] = &l
	}
	collide := func(kind Kind) int {
		fp := New(kind, costs())
		byDigest := map[Digest]*ecc.Line{}
		collisions := 0
		for _, l := range lines {
			d := fp.Fingerprint(l)
			if prev, ok := byDigest[d]; ok {
				if *prev != *l {
					collisions++
				}
			} else {
				byDigest[d] = l
			}
		}
		return collisions
	}
	c16 := collide(KindCRC16)
	c32 := collide(KindCRC32)
	cECC := collide(KindECC)
	cSHA := collide(KindSHA1)
	if c16 == 0 {
		t.Skip("pool too small to collide CRC16; unexpected but not a correctness bug")
	}
	if !(c16 >= c32 && c32 >= cSHA) {
		t.Errorf("collision ordering broken: crc16=%d crc32=%d sha1=%d", c16, c32, cSHA)
	}
	if cSHA != 0 {
		t.Errorf("SHA-1 collided %d times on 20k lines", cSHA)
	}
	if cECC > c16 {
		t.Errorf("64-bit ECC fingerprint collided more than CRC16: %d > %d", cECC, c16)
	}
}

func BenchmarkFingerprintSHA1(b *testing.B) {
	b.ReportAllocs()
	fp := New(KindSHA1, costs())
	l := randLine(xrand.New(9))
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		fp.Fingerprint(l)
	}
}

func BenchmarkFingerprintCRC32(b *testing.B) {
	b.ReportAllocs()
	fp := New(KindCRC32, costs())
	l := randLine(xrand.New(9))
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		fp.Fingerprint(l)
	}
}

func BenchmarkFingerprintECC(b *testing.B) {
	b.ReportAllocs()
	fp := New(KindECC, costs())
	l := randLine(xrand.New(9))
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		fp.Fingerprint(l)
	}
}
