package nvm

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/sim"
)

func TestHealthAccounting(t *testing.T) {
	cfg := testCfg()
	d := New(cfg)
	now := sim.Time(0)
	var line ecc.Line
	// One hammered line plus nine cold ones.
	for i := 0; i < 10; i++ {
		d.Write(0, &line, now)
		now += sim.Microsecond
	}
	for a := uint64(1); a < 10; a++ {
		d.Write(a, &line, now)
		now += sim.Microsecond
	}
	for a := uint64(0); a < 5; a++ {
		d.Read(a, now)
		now += sim.Microsecond
	}

	d.SyncHealth() // publish staged accounting before exact assertions
	s := d.HealthSummary()
	if s.Writes != 19 || s.Reads != 5 {
		t.Fatalf("writes=%d reads=%d, want 19/5", s.Writes, s.Reads)
	}
	if s.LinesTouched != 10 || s.MaxWear != 10 {
		t.Fatalf("linesTouched=%d maxWear=%d, want 10/10", s.LinesTouched, s.MaxWear)
	}
	if got, want := s.MeanWear(), 1.9; got != want {
		t.Fatalf("MeanWear=%g, want %g", got, want)
	}
	if s.WearSkew() <= 1 {
		t.Fatalf("WearSkew=%g, want > 1 for hammered line", s.WearSkew())
	}
	// Wear 10 lives in log2 bucket [8,15] and is the top 1-of-10 line; the
	// bucket upper bound (15) is clamped to the true max wear.
	if s.P99Wear != 10 {
		t.Fatalf("P99Wear=%d, want 10 (bucket bound clamped to max wear)", s.P99Wear)
	}
	if want := float64(s.Writes) * cfg.WriteEnergy; s.WriteEnergyNJ != want {
		t.Fatalf("WriteEnergyNJ=%g, want %g", s.WriteEnergyNJ, want)
	}
	if want := float64(s.Reads) * cfg.ReadEnergy; s.ReadEnergyNJ != want {
		t.Fatalf("ReadEnergyNJ=%g, want %g", s.ReadEnergyNJ, want)
	}

	snap := d.HealthSnapshot()
	if len(snap.Banks) != cfg.Banks {
		t.Fatalf("got %d bank rows, want %d", len(snap.Banks), cfg.Banks)
	}
	var bw, br, blines uint64
	for _, b := range snap.Banks {
		bw += b.Writes
		br += b.Reads
		blines += b.LinesTouched
	}
	if bw != s.Writes || br != s.Reads || blines != s.LinesTouched {
		t.Fatalf("bank sums writes=%d reads=%d lines=%d, want %d/%d/%d",
			bw, br, blines, s.Writes, s.Reads, s.LinesTouched)
	}
	// addr 0 maps to bank 0: the hammered line must show there.
	if snap.Banks[0].MaxWear != 10 {
		t.Fatalf("bank0 maxWear=%d, want 10", snap.Banks[0].MaxWear)
	}
	var rw, rlines uint64
	for _, r := range snap.Regions {
		rw += r.Writes
		rlines += r.LinesTouched
	}
	if rw != s.Writes || rlines != s.LinesTouched {
		t.Fatalf("region sums writes=%d lines=%d, want %d/%d", rw, rlines, s.Writes, s.LinesTouched)
	}
	var histLines uint64
	for _, wb := range snap.WearHist {
		if wb.Lo > wb.Hi {
			t.Fatalf("bad bucket bounds [%d,%d]", wb.Lo, wb.Hi)
		}
		histLines += wb.Lines
	}
	if histLines != s.LinesTouched {
		t.Fatalf("hist lines=%d, want %d", histLines, s.LinesTouched)
	}
}

// TestHealthMatchesWear cross-checks the incremental health aggregates
// against the exact per-line wear map under a random workload.
func TestHealthMatchesWear(t *testing.T) {
	d := New(testCfg())
	rng := rand.New(rand.NewSource(7))
	var line ecc.Line
	now := sim.Time(0)
	for i := 0; i < 5000; i++ {
		// Zipf-ish: low addresses much hotter.
		addr := uint64(rng.Intn(1 + rng.Intn(256)))
		d.Write(addr, &line, now)
		now += 200 * sim.Nanosecond
	}
	d.SyncHealth()
	exact := d.Wear()
	s := d.HealthSummary()
	if s.Writes != exact.TotalWrites {
		t.Fatalf("health writes=%d, exact=%d", s.Writes, exact.TotalWrites)
	}
	if int(s.LinesTouched) != exact.LinesTouched {
		t.Fatalf("health lines=%d, exact=%d", s.LinesTouched, exact.LinesTouched)
	}
	if s.MaxWear != exact.MaxWear {
		t.Fatalf("health max=%d, exact=%d", s.MaxWear, exact.MaxWear)
	}
	// The approximate P99 is the log2-bucket upper bound of the exact one.
	if s.P99Wear < exact.P99Wear || (exact.P99Wear > 1 && s.P99Wear > 2*exact.P99Wear) {
		t.Fatalf("approx P99=%d out of range for exact %d", s.P99Wear, exact.P99Wear)
	}
}

func TestWearSummaryEdgeCases(t *testing.T) {
	d := New(testCfg())
	// Empty device: all zeros, no division by zero.
	if s := d.Wear(); s != (WearSummary{}) {
		t.Fatalf("empty device wear = %+v, want zero", s)
	}
	if s := d.HealthSummary(); s.MeanWear() != 0 || s.WearSkew() != 0 || s.P99Wear != 0 {
		t.Fatalf("empty device health = %+v", s)
	}
	// Single line, single write.
	var line ecc.Line
	d.Write(3, &line, 0)
	d.SyncHealth()
	s := d.Wear()
	if s.TotalWrites != 1 || s.LinesTouched != 1 || s.MaxWear != 1 || s.MeanWear != 1 || s.P99Wear != 1 {
		t.Fatalf("single-write wear = %+v", s)
	}
	// Single line, several writes: every percentile is that line.
	for i := 0; i < 4; i++ {
		d.Write(3, &line, 0)
	}
	d.SyncHealth()
	s = d.Wear()
	if s.TotalWrites != 5 || s.LinesTouched != 1 || s.MaxWear != 5 || s.P99Wear != 5 {
		t.Fatalf("hammered single-line wear = %+v", s)
	}
	if s.MeanWear != 5 {
		t.Fatalf("MeanWear=%g, want 5", s.MeanWear)
	}
}

// TestWearReadsRaceWithWrites drives the device from one goroutine while
// another polls every concurrent-safe wear/health accessor. Run under
// -race this is the device-level half of the wear-concurrency guarantee
// (the engine-level half lives in internal/shard).
func TestWearReadsRaceWithWrites(t *testing.T) {
	d := New(testCfg())
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = d.Wear()
			_ = d.WearOf(7)
			_ = d.HealthSummary()
			_ = d.HealthSnapshot()
		}
	}()
	var line ecc.Line
	now := sim.Time(0)
	for i := 0; i < 20000; i++ {
		d.Write(uint64(i%512), &line, now)
		if i%3 == 0 {
			d.Read(uint64(i%512), now)
		}
		now += 100 * sim.Nanosecond
	}
	close(done)
	wg.Wait()
	d.SyncHealth()
	if s := d.Wear(); s.TotalWrites != 20000 {
		t.Fatalf("TotalWrites=%d, want 20000", s.TotalWrites)
	}
}

func TestMergeHealth(t *testing.T) {
	var snaps []HealthSnapshot
	var line ecc.Line
	for sh := 0; sh < 2; sh++ {
		d := New(testCfg())
		for i := 0; i < 100*(sh+1); i++ {
			d.Write(uint64(i%(10*(sh+1))), &line, 0)
		}
		d.SyncHealth()
		snaps = append(snaps, d.HealthSnapshot())
	}
	m := MergeHealth(snaps)
	if m.Writes != 300 {
		t.Fatalf("merged writes=%d, want 300", m.Writes)
	}
	if m.LinesTouched != 30 {
		t.Fatalf("merged lines=%d, want 30", m.LinesTouched)
	}
	if want := snaps[1].MaxWear; m.MaxWear != want {
		t.Fatalf("merged max=%d, want %d", m.MaxWear, want)
	}
	if len(m.Banks) != len(snaps[0].Banks)+len(snaps[1].Banks) {
		t.Fatalf("merged banks=%d", len(m.Banks))
	}
	for i, b := range m.Banks {
		if b.Bank != i {
			t.Fatalf("bank %d renumbered as %d", i, b.Bank)
		}
	}
	var histLines uint64
	for _, wb := range m.WearHist {
		histLines += wb.Lines
	}
	if histLines != m.LinesTouched {
		t.Fatalf("merged hist lines=%d, want %d", histLines, m.LinesTouched)
	}
	if m.P99Wear == 0 || m.P99Wear < m.MaxWear/2 {
		t.Fatalf("merged P99=%d implausible vs max %d", m.P99Wear, m.MaxWear)
	}
}
