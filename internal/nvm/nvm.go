// Package nvm models the PCM-based non-volatile main memory device: the
// functional backing store (what every line currently holds), the timing
// behaviour of its banks (75 ns reads, 150 ns writes, per-bank queues with
// read priority over posted writes), per-line wear counters for endurance
// studies, and a media energy meter.
//
// The model follows the structure of NVMain's PCM backend at the level the
// paper's evaluation depends on: requests interleave over independent
// banks, writes are posted into a bounded per-bank write queue that drains
// when the bank is idle, and demand reads bypass queued writes. Reduced
// write traffic therefore directly shortens read queueing delay — the
// effect behind the paper's read speedups (§IV-C).
package nvm

import (
	"fmt"
	"sort"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/sparse"
)

// pendingWrite is a posted write waiting for its bank.
type pendingWrite struct {
	enq sim.Time
}

// bank tracks the timing state of one PCM bank.
type bank struct {
	busyUntil sim.Time
	busy      sim.Time // accumulated service time
	// tRead/tWrite are this bank's media latencies — the configured device
	// latencies, plus FaultExtraLatency on the fault-injected bank.
	tRead  sim.Time
	tWrite sim.Time
	// writeQ is a fixed-capacity ring of posted writes, allocated once in
	// New with capacity WriteQueueDepth. Write force-drains whenever the
	// ring is full before enqueueing, so it can never overflow, and the
	// steady state does no slice append/shift churn.
	writeQ []pendingWrite
	wqHead int
	wqLen  int
	// openLine is the line currently latched in the row buffer; repeated
	// reads of it are row hits and bypass the full media read.
	openLine uint64
	hasOpen  bool
}

// wqFront returns the oldest queued write without removing it.
func (b *bank) wqFront() pendingWrite { return b.writeQ[b.wqHead] }

// wqPop removes and returns the oldest queued write.
func (b *bank) wqPop() pendingWrite {
	w := b.writeQ[b.wqHead]
	b.wqHead = (b.wqHead + 1) % len(b.writeQ)
	b.wqLen--
	return w
}

// wqPush appends a posted write; the caller guarantees a free slot.
func (b *bank) wqPush(w pendingWrite) {
	b.writeQ[(b.wqHead+b.wqLen)%len(b.writeQ)] = w
	b.wqLen++
}

// drainTo opportunistically services queued writes during idle time before
// now, stopping as soon as the bank is busy at or past now.
func (b *bank) drainTo(now sim.Time, tWrite sim.Time) int {
	served := 0
	for b.wqLen > 0 && b.busyUntil < now {
		w := b.wqFront()
		start := b.busyUntil
		if w.enq > start {
			start = w.enq
		}
		if start >= now {
			break
		}
		b.wqPop()
		b.busyUntil = start + tWrite
		b.busy += tWrite
		served++
	}
	return served
}

// ReadResult reports the timing of a demand read.
type ReadResult struct {
	// Start is when the bank began servicing the read.
	Start sim.Time
	// Done is when the data is available at the controller (media + bus).
	Done sim.Time
	// QueueDelay is Start minus submission time.
	QueueDelay sim.Time
}

// WriteResult reports the timing of a posted write.
type WriteResult struct {
	// AcceptedAt is when the write entered the bank's write queue; it
	// equals the submission time unless the queue was full.
	AcceptedAt sim.Time
	// Stall is AcceptedAt minus submission time (back-pressure).
	Stall sim.Time
	// ServiceLatency is this write's media service time on its bank — the
	// configured write latency, plus the fault penalty on a degraded bank.
	// Schemes charge the media stage with it instead of the device-wide
	// constant, so a per-bank fault is visible in latency breakdowns.
	ServiceLatency sim.Time
}

// Stats aggregates device activity.
type Stats struct {
	Reads          uint64
	Writes         uint64
	RowHits        uint64
	ReadQueueTime  sim.Time
	WriteStallTime sim.Time
	MediaEnergy    float64 // nJ
}

// Probe receives media-level events as they happen. The Stats struct is
// read by the single simulation thread only; a telemetry layer that must be
// scraped concurrently mirrors activity through this interface instead
// (telemetry's Sink satisfies it structurally).
type Probe interface {
	DeviceRead(rowHit bool)
	DeviceWrite()
	GapMove(from, to uint64, at sim.Time)
}

// Device is the PCM device. The timing model and functional store are not
// safe for concurrent use (one simulation thread drives them), but the wear
// and health accessors — Wear, WearOf, HealthSummary, HealthSnapshot — are
// safe to call from other goroutines while that thread runs: all shared
// wear and health state is guarded by an internal mutex (see health.go).
// The simulation thread stages its accounting in a private buffer, so those
// accessors may lag the simulation by up to healthBatch media ops; Flush or
// SyncHealth (simulation-thread calls) publish everything staged.
type Device struct {
	cfg   config.PCM
	banks []bank
	// data is the functional store. Line addresses are dense, so a paged
	// sparse array beats a map on the per-write hot path by a wide margin
	// (no hashing, no rehash churn as the device fills).
	data sparse.Map[ecc.Line]
	// health holds all wear and health accounting, including the per-line
	// wear pages (guarded by health.mu; read counters are atomics).
	health health

	Stats Stats
	// Probe, when non-nil, observes every media read/write (and StartGap
	// line move, fired by LeveledDevice).
	Probe Probe
}

// New constructs a device from cfg. It panics on an invalid configuration;
// validation belongs to config.Config.Validate.
func New(cfg config.PCM) *Device {
	if cfg.Banks <= 0 {
		panic("nvm: need at least one bank")
	}
	depth := cfg.WriteQueueDepth
	if depth < 1 {
		depth = 1
	}
	banks := make([]bank, cfg.Banks)
	for i := range banks {
		banks[i].writeQ = make([]pendingWrite, depth)
		banks[i].tRead = cfg.ReadLatency
		banks[i].tWrite = cfg.WriteLatency
		if cfg.FaultExtraLatency > 0 && i == cfg.FaultBank {
			banks[i].tRead += cfg.FaultExtraLatency
			banks[i].tWrite += cfg.FaultExtraLatency
		}
	}
	d := &Device{
		cfg:   cfg,
		banks: banks,
	}
	d.health.init(cfg.Banks, cfg.Lines())
	return d
}

// Lines returns the device capacity in cache lines.
func (d *Device) Lines() int64 { return d.cfg.Lines() }

func (d *Device) checkAddr(addr uint64) {
	if int64(addr) >= d.cfg.Lines() {
		panic(fmt.Sprintf("nvm: line address %d beyond capacity (%d lines)", addr, d.cfg.Lines()))
	}
}

// Read performs a timed demand read of line addr. The returned line is the
// current content (zero line if never written; ok reports which).
func (d *Device) Read(addr uint64, now sim.Time) (ecc.Line, bool, ReadResult) {
	res := d.readTimed(addr, now)
	line, ok := d.data.Get(addr)
	return line, ok, res
}

// ReadMeta performs a timed read of a metadata line: identical bank timing,
// stats, energy and health accounting to Read, but without fetching
// functional content. Every metadata structure in the simulator keeps its
// authoritative state SRAM-side (the AMT backing table, the fingerprint
// indexes); the NVMM-resident copy exists to charge realistic media traffic,
// and nothing ever reads its bytes back. Skipping the functional store keeps
// the hash-scattered metadata region out of the data working set entirely.
func (d *Device) ReadMeta(addr uint64, now sim.Time) ReadResult {
	return d.readTimed(addr, now)
}

func (d *Device) readTimed(addr uint64, now sim.Time) ReadResult {
	d.checkAddr(addr)
	bi := addr % uint64(len(d.banks))
	b := &d.banks[bi]
	b.drainTo(now, b.tWrite)
	// Write-drain policy: a queue at or above the high watermark forces
	// the bank to retire writes down to the low watermark before this
	// read is served.
	if d.cfg.DrainHigh > 0 && b.wqLen >= d.cfg.DrainHigh {
		for b.wqLen > d.cfg.DrainLow {
			w := b.wqPop()
			start := b.busyUntil
			if w.enq > start {
				start = w.enq
			}
			if now > start {
				start = now
			}
			b.busyUntil = start + b.tWrite
			b.busy += b.tWrite
		}
	}
	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	lat := b.tRead
	rowHit := b.hasOpen && b.openLine == addr && d.cfg.RowHitLatency > 0
	if rowHit {
		lat = d.cfg.RowHitLatency
		d.Stats.RowHits++
	}
	if d.Probe != nil {
		d.Probe.DeviceRead(rowHit)
	}
	b.openLine, b.hasOpen = addr, true
	b.busyUntil = start + lat
	b.busy += lat
	res := ReadResult{
		Start:      start,
		Done:       b.busyUntil + d.cfg.BusLatency,
		QueueDelay: start - now,
	}
	d.Stats.Reads++
	d.Stats.ReadQueueTime += res.QueueDelay
	d.Stats.MediaEnergy += d.cfg.ReadEnergy
	d.health.noteRead(int(bi), rowHit)
	return res
}

// Write performs a timed posted write of line to addr. The functional state
// updates immediately; the media operation drains from the bank's write
// queue in the background. If the queue is full the writer stalls until the
// bank frees a slot.
func (d *Device) Write(addr uint64, line *ecc.Line, now sim.Time) WriteResult {
	res := d.writeTimed(addr, now)
	d.data.Set(addr, *line)
	return res
}

// WriteMeta performs a timed posted write of a metadata line: identical
// queueing, wear and energy accounting to Write, but without storing
// functional content (see ReadMeta for why none is needed).
func (d *Device) WriteMeta(addr uint64, now sim.Time) WriteResult {
	return d.writeTimed(addr, now)
}

func (d *Device) writeTimed(addr uint64, now sim.Time) WriteResult {
	d.checkAddr(addr)
	bi := addr % uint64(len(d.banks))
	b := &d.banks[bi]
	b.drainTo(now, b.tWrite)
	ack := now
	// Full queue: force-drain the oldest writes until a slot frees; the
	// writer observes the completion time of the last forced drain.
	for b.wqLen >= d.cfg.WriteQueueDepth {
		w := b.wqPop()
		start := b.busyUntil
		if w.enq > start {
			start = w.enq
		}
		if ack > start {
			start = ack
		}
		b.busyUntil = start + b.tWrite
		b.busy += b.tWrite
		ack = b.busyUntil
	}
	b.wqPush(pendingWrite{enq: ack})
	// A write to the open line invalidates the row buffer (the queued
	// media write will re-open its own row later).
	if b.hasOpen && b.openLine == addr {
		b.hasOpen = false
	}
	d.health.noteWrite(addr, int(bi))
	d.Stats.Writes++
	d.Stats.MediaEnergy += d.cfg.WriteEnergy
	if d.Probe != nil {
		d.Probe.DeviceWrite()
	}
	res := WriteResult{AcceptedAt: ack, Stall: ack - now, ServiceLatency: b.tWrite}
	d.Stats.WriteStallTime += res.Stall
	return res
}

// SyncHealth publishes all staged health accounting to the concurrent
// wear/health accessors. It must be called from the simulation thread (the
// one calling Read/Write); Flush does it implicitly.
func (d *Device) SyncHealth() { d.health.sync() }

// Flush drains every queued write, returning the time the device goes idle
// (at least now). It also publishes staged health accounting, so wear and
// health accessors are exact after a flush.
func (d *Device) Flush(now sim.Time) sim.Time {
	d.health.sync()
	idle := now
	for i := range d.banks {
		b := &d.banks[i]
		for b.wqLen > 0 {
			w := b.wqPop()
			start := b.busyUntil
			if w.enq > start {
				start = w.enq
			}
			if now > start {
				start = now
			}
			b.busyUntil = start + b.tWrite
			b.busy += b.tWrite
		}
		if b.busyUntil > idle {
			idle = b.busyUntil
		}
	}
	return idle
}

// Load returns the functional content of addr without timing side effects.
func (d *Device) Load(addr uint64) (ecc.Line, bool) {
	d.checkAddr(addr)
	return d.data.Get(addr)
}

// Store updates the functional content of addr without timing side effects
// (used to pre-populate state during warm-up).
func (d *Device) Store(addr uint64, line ecc.Line) {
	d.checkAddr(addr)
	d.data.Set(addr, line)
}

// LinesWritten reports how many distinct lines hold data.
func (d *Device) LinesWritten() int { return d.data.Len() }

// WearOf returns the write count of addr. Safe to call concurrently with
// the simulation; may lag it by up to healthBatch media ops (exact after
// Flush/SyncHealth).
func (d *Device) WearOf(addr uint64) uint64 {
	d.health.mu.Lock()
	w := d.health.wearOf(addr)
	d.health.mu.Unlock()
	return w
}

// WearSummary summarizes per-line wear for endurance analysis.
type WearSummary struct {
	TotalWrites  uint64
	LinesTouched int
	MaxWear      uint64
	MeanWear     float64
	// P99Wear is the 99th-percentile per-line write count.
	P99Wear uint64
}

// Wear computes the exact device wear summary by walking the per-line wear
// pages. Safe to call concurrently with the simulation (it snapshots under
// the device health lock) but may lag it by up to healthBatch media ops
// (exact after Flush/SyncHealth); prefer HealthSummary for cheap polling.
func (d *Device) Wear() WearSummary {
	var s WearSummary
	d.health.mu.Lock()
	defer d.health.mu.Unlock()
	if d.health.linesTouched == 0 {
		return s
	}
	counts := make([]uint64, 0, d.health.linesTouched)
	for _, pg := range d.health.pages {
		if pg == nil {
			continue
		}
		for _, c := range pg {
			if c == 0 {
				continue
			}
			counts = append(counts, c)
			s.TotalWrites += c
			if c > s.MaxWear {
				s.MaxWear = c
			}
		}
	}
	s.LinesTouched = len(counts)
	s.MeanWear = float64(s.TotalWrites) / float64(len(counts))
	sort.Slice(counts, func(i, j int) bool { return counts[i] < counts[j] })
	s.P99Wear = counts[len(counts)*99/100]
	return s
}

// Utilization reports mean bank utilization over [0, horizon].
func (d *Device) Utilization(horizon sim.Time) float64 {
	if horizon <= 0 || len(d.banks) == 0 {
		return 0
	}
	var busy sim.Time
	for i := range d.banks {
		busy += d.banks[i].busy
	}
	u := float64(busy) / float64(int64(horizon)*int64(len(d.banks)))
	if u > 1 {
		u = 1
	}
	return u
}

// QueuedWrites reports the total number of writes currently queued.
func (d *Device) QueuedWrites() int {
	n := 0
	for i := range d.banks {
		n += d.banks[i].wqLen
	}
	return n
}

// MediaStats returns the device activity counters. It exists so Device can
// satisfy the media.Backend interface (Stats is a plain field here, but a
// composed backend has to assemble the struct on demand).
func (d *Device) MediaStats() Stats { return d.Stats }

// SetProbe installs (or clears) the media event probe.
func (d *Device) SetProbe(p Probe) { d.Probe = p }
