package nvm

import (
	"fmt"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/sim"
)

// StartGap implements the Start-Gap wear-leveling scheme (Qureshi et al.,
// MICRO'09), the standard endurance layer for PCM main memory: N logical
// lines live in N+1 physical slots, one of which (the gap) is unused.
// Every psi writes the gap moves one slot backwards, shifting one line of
// data; after N moves every line has rotated one position, so hot logical
// lines slowly sweep across the whole device instead of burning one cell.
//
// Deduplication (this repo's topic) and wear-leveling are orthogonal and
// compose: dedup reduces how many writes happen, Start-Gap spreads the
// survivors. The endurance example and ablation quantify both.
type StartGap struct {
	n     uint64 // logical lines
	start uint64
	gap   uint64
	psi   int
	count int

	// Moves counts gap movements (each one costs a media read + write).
	Moves uint64
}

// NewStartGap creates a wear-leveler over n logical lines that moves the
// gap every psi writes. It panics on a non-positive geometry.
func NewStartGap(n uint64, psi int) *StartGap {
	if n < 1 {
		panic("nvm: StartGap needs at least one line")
	}
	if psi < 1 {
		panic("nvm: StartGap needs psi >= 1")
	}
	return &StartGap{n: n, gap: n, psi: psi}
}

// Slots returns the physical slot count (logical lines + 1).
func (sg *StartGap) Slots() uint64 { return sg.n + 1 }

// Map translates a logical line to its current physical slot.
func (sg *StartGap) Map(logical uint64) uint64 {
	if logical >= sg.n {
		panic(fmt.Sprintf("nvm: logical line %d out of range (%d lines)", logical, sg.n))
	}
	pa := logical + sg.start
	if pa >= sg.n {
		pa -= sg.n
	}
	if pa >= sg.gap {
		pa++
	}
	return pa
}

// GapSlot returns the currently unused physical slot.
func (sg *StartGap) GapSlot() uint64 { return sg.gap }

// move describes one required data movement: the content of From must be
// copied to To before the new mapping is valid.
type move struct {
	From, To uint64
}

// OnWrite records one write and returns whether a gap move is due plus the
// data movement it requires. The caller performs the copy (a media read
// and write), then the new mapping returned by Map is in effect.
func (sg *StartGap) OnWrite() (move, bool) {
	sg.count++
	if sg.count < sg.psi {
		return move{}, false
	}
	sg.count = 0
	sg.Moves++
	if sg.gap == 0 {
		// Wrap: with the hole at slot 0, advancing Start shifts every
		// line's slot by zero except the line at slot n, which now belongs
		// at slot 0 (the old hole). Slot n becomes the new hole.
		sg.start++
		if sg.start == sg.n {
			sg.start = 0
		}
		sg.gap = sg.n
		return move{From: sg.n, To: 0}, true
	}
	m := move{From: sg.gap - 1, To: sg.gap}
	sg.gap--
	return m, true
}

// LeveledDevice composes a Device with Start-Gap wear leveling over its
// data region. Reads and writes take logical line addresses in [0, Lines).
type LeveledDevice struct {
	dev *Device
	sg  *StartGap
}

// NewLeveledDevice wraps dev with a Start-Gap layer over lines logical
// lines (must leave one spare slot within the device's data capacity).
func NewLeveledDevice(dev *Device, lines uint64, psi int) *LeveledDevice {
	if int64(lines)+1 > dev.Lines() {
		panic("nvm: device too small for Start-Gap spare slot")
	}
	return &LeveledDevice{dev: dev, sg: NewStartGap(lines, psi)}
}

// Device exposes the underlying device (for stats and wear summaries).
func (ld *LeveledDevice) Device() *Device { return ld.dev }

// Leveler exposes the Start-Gap state.
func (ld *LeveledDevice) Leveler() *StartGap { return ld.sg }

// Read performs a timed read of the logical line.
func (ld *LeveledDevice) Read(logical uint64, now sim.Time) (ecc.Line, bool, ReadResult) {
	return ld.dev.Read(ld.sg.Map(logical), now)
}

// Write performs a timed write of the logical line, executing any due gap
// move (one extra media read + write) first so the mapping stays correct.
func (ld *LeveledDevice) Write(logical uint64, line *ecc.Line, now sim.Time) WriteResult {
	if m, due := ld.sg.OnWrite(); due {
		// The gap move copies one line: read the source slot, write it to
		// the destination slot. These are real media operations and show
		// up in wear and energy accounting.
		if ld.dev.Probe != nil {
			ld.dev.Probe.GapMove(m.From, m.To, now)
		}
		data, ok, rr := ld.dev.Read(m.From, now)
		if ok {
			ld.dev.Write(m.To, &data, rr.Done)
		}
	}
	return ld.dev.Write(ld.sg.Map(logical), line, now)
}
