// Device-health accounting: cheap, always-on incremental aggregation of
// media activity that serving endpoints can snapshot while the simulation
// runs. The Device itself stays single-writer (one shard worker drives it),
// but wear and health state are guarded by a dedicated mutex so concurrent
// readers (metrics scrapes, /debug/device, esdtop) see a consistent view.
//
// Everything here is O(1) per media operation: per-bank and per-region
// counters are direct array bumps, and the wear distribution is maintained
// as a bounded log2-bucketed histogram updated incrementally as lines move
// between buckets. Snapshots never walk the per-line wear map (that remains
// the job of the exact, now also lock-protected, Wear()).
package nvm

import (
	"math/bits"
	"sync"
)

// healthRegions is the maximum number of equal-sized address regions the
// device is carved into for spatial write-locality accounting. Small test
// devices get one region per line instead.
const healthRegions = 64

// wearHistBuckets bounds the log2 wear histogram: bucket i counts lines
// whose wear w satisfies 2^i <= w < 2^(i+1), which covers all of uint64.
const wearHistBuckets = 64

// Wear counters live in demand-allocated fixed pages indexed by a flat
// pointer table (device capacity is known at construction), so the
// per-write wear bump is two array stores — cheaper than the single map
// operation the pre-health code paid. 4096 lines/page = 32 KiB,
// allocated only for touched neighbourhoods.
const (
	wearPageShift = 12
	wearPageSize  = 1 << wearPageShift
	wearPageMask  = wearPageSize - 1
)

type wearPage [wearPageSize]uint64

// bankHealth is the per-bank slice of the health counters (guarded by
// health.mu).
type bankHealth struct {
	reads   uint64
	writes  uint64
	rowHits uint64
	maxWear uint64
	lines   uint64 // distinct lines of this bank ever written
}

// regionHealth is the per-region slice (write/wear only: regions exist for
// spatial endurance analysis, not timing).
type regionHealth struct {
	writes  uint64
	maxWear uint64
	lines   uint64
}

// healthBatch is how many media ops the simulation thread stages privately
// before folding them into the shared state under the mutex. Staging keeps
// the hot path free of locked/atomic operations entirely — in a cache-busy
// workload even an uncontended mutex CAS is a serializing miss — while the
// fold replays the batch over health lines that then stay hot.
const healthBatch = 64

// pendKind tags one staged media op.
const (
	pendWrite = iota
	pendRead
	pendReadHit // read that hit the open row
)

// pendOp is one staged media op: a write's line address, or a read's
// row-hit flag, plus the op's bank.
type pendOp struct {
	addr uint64
	bank int32
	kind int8
}

// health is the always-on accounting state. Everything below mu is shared
// with concurrent snapshot readers and guarded by it; the pend buffer is
// private to the single simulation thread and never locked. Accessors may
// therefore lag the simulation by up to healthBatch media ops; sync (via
// Device.SyncHealth or Device.Flush, writer-side) publishes everything.
type health struct {
	mu          sync.Mutex
	banks       []bankHealth
	regions     []regionHealth
	regionShift uint // log2 lines per region
	hist        [wearHistBuckets]uint64

	// Per-line wear: pages[addr>>wearPageShift][addr&wearPageMask],
	// pages allocated on first touch.
	pages []*wearPage

	reads        uint64
	rowHits      uint64
	writes       uint64
	linesTouched uint64
	maxWear      uint64

	// Staged ops, simulation-thread private (not guarded by mu).
	pend  [healthBatch]pendOp
	pendN int
}

func (h *health) init(banks int, lines int64) {
	h.banks = make([]bankHealth, banks)
	h.pages = make([]*wearPage, (lines+wearPageSize-1)>>wearPageShift)
	n := int64(healthRegions)
	if lines < n {
		n = lines
	}
	if n < 1 {
		n = 1
	}
	per := uint64((lines + n - 1) / n)
	if per < 1 {
		per = 1
	}
	// Round lines-per-region up to a power of two so the per-write region
	// index is a shift, not a 64-bit division.
	h.regionShift = uint(bits.Len64(per - 1))
	nr := (uint64(lines) + (uint64(1) << h.regionShift) - 1) >> h.regionShift
	if nr < 1 {
		nr = 1
	}
	h.regions = make([]regionHealth, nr)
}

// wearBucket returns the log2 bucket index of wear w (w >= 1).
func wearBucket(w uint64) int { return bits.Len64(w) - 1 }

// page returns the wear page holding addr, allocating it on first touch.
// Caller holds h.mu.
func (h *health) page(addr uint64) *wearPage {
	pg := h.pages[addr>>wearPageShift]
	if pg == nil {
		pg = new(wearPage)
		h.pages[addr>>wearPageShift] = pg
	}
	return pg
}

// wearOf returns addr's write count. Caller holds h.mu.
func (h *health) wearOf(addr uint64) uint64 {
	if pg := h.pages[addr>>wearPageShift]; pg != nil {
		return pg[addr&wearPageMask]
	}
	return 0
}

// noteWrite stages one media write of addr. Simulation thread only; no
// locking unless the batch fills.
func (h *health) noteWrite(addr uint64, bank int) {
	h.pend[h.pendN] = pendOp{addr: addr, bank: int32(bank), kind: pendWrite}
	h.pendN++
	if h.pendN == healthBatch {
		h.sync()
	}
}

// noteRead stages one media read against bank. Simulation thread only.
func (h *health) noteRead(bank int, rowHit bool) {
	kind := int8(pendRead)
	if rowHit {
		kind = pendReadHit
	}
	h.pend[h.pendN] = pendOp{bank: int32(bank), kind: kind}
	h.pendN++
	if h.pendN == healthBatch {
		h.sync()
	}
}

// sync folds the staged ops into the shared state. Simulation thread only
// (it reads the private pend buffer); readers block only for the replay.
func (h *health) sync() {
	if h.pendN == 0 {
		return
	}
	h.mu.Lock()
	for i := 0; i < h.pendN; i++ {
		op := &h.pend[i]
		if op.kind == pendWrite {
			h.applyWrite(op.addr, int(op.bank))
		} else {
			h.applyRead(int(op.bank), op.kind == pendReadHit)
		}
	}
	h.pendN = 0
	h.mu.Unlock()
}

// applyWrite bumps addr's wear counter and every write-side aggregate for
// one media write. Caller holds h.mu.
func (h *health) applyWrite(addr uint64, bank int) {
	pg := h.page(addr)
	w := pg[addr&wearPageMask] + 1
	pg[addr&wearPageMask] = w

	h.writes++
	b := &h.banks[bank]
	b.writes++
	r := &h.regions[addr>>h.regionShift]
	r.writes++
	if w == 1 {
		h.linesTouched++
		b.lines++
		r.lines++
		h.hist[0]++
	} else if b0, b1 := wearBucket(w-1), wearBucket(w); b0 != b1 {
		h.hist[b0]--
		h.hist[b1]++
	}
	if w > h.maxWear {
		h.maxWear = w
	}
	if w > b.maxWear {
		b.maxWear = w
	}
	if w > r.maxWear {
		r.maxWear = w
	}
}

// applyRead records one media read against bank. Caller holds h.mu.
func (h *health) applyRead(bank int, rowHit bool) {
	h.reads++
	h.banks[bank].reads++
	if rowHit {
		h.rowHits++
		h.banks[bank].rowHits++
	}
}

// approxP99 derives the ~99th-percentile per-line wear from the log2
// histogram: the answer is the upper bound of the bucket holding the 1%
// most-worn line. Caller holds h.mu.
func (h *health) approxP99() uint64 {
	if h.linesTouched == 0 {
		return 0
	}
	need := h.linesTouched - h.linesTouched*99/100
	if need < 1 {
		need = 1
	}
	var cum uint64
	for i := wearHistBuckets - 1; i >= 0; i-- {
		cum += h.hist[i]
		if cum >= need {
			p := ^uint64(0)
			if i < 63 {
				p = uint64(1)<<(uint(i)+1) - 1
			}
			// The bucket's upper bound can exceed the most-worn line; the
			// true p99 never does.
			if p > h.maxWear {
				p = h.maxWear
			}
			return p
		}
	}
	return 0
}

// HealthSummary is the scalar device-health view: totals, wear shape and
// the media energy split. It contains no slices so the telemetry gauge
// path can fetch it allocation-free at scrape time.
type HealthSummary struct {
	Reads         uint64  `json:"reads"`
	Writes        uint64  `json:"writes"`
	RowHits       uint64  `json:"row_hits"`
	LinesTouched  uint64  `json:"lines_touched"`
	MaxWear       uint64  `json:"max_wear"`
	P99Wear       uint64  `json:"p99_wear"` // approximate (log2 bucket upper bound)
	ReadEnergyNJ  float64 `json:"read_energy_nj"`
	WriteEnergyNJ float64 `json:"write_energy_nj"`
}

// MeanWear is the average write count over lines ever written.
func (h HealthSummary) MeanWear() float64 {
	if h.LinesTouched == 0 {
		return 0
	}
	return float64(h.Writes) / float64(h.LinesTouched)
}

// WearSkew is MaxWear over MeanWear — the wear-leveling early-warning
// signal (1.0 is perfectly level; a hammered line drives it up).
func (h HealthSummary) WearSkew() float64 {
	m := h.MeanWear()
	if m == 0 {
		return 0
	}
	return float64(h.MaxWear) / m
}

// BankHealth is one bank's activity counters in a HealthSnapshot.
type BankHealth struct {
	Bank         int     `json:"bank"`
	Reads        uint64  `json:"reads"`
	Writes       uint64  `json:"writes"`
	RowHits      uint64  `json:"row_hits"`
	MaxWear      uint64  `json:"max_wear"`
	LinesTouched uint64  `json:"lines_touched"`
	EnergyNJ     float64 `json:"energy_nj"`
}

// MeanWear is the bank's average per-line write count.
func (b BankHealth) MeanWear() float64 {
	if b.LinesTouched == 0 {
		return 0
	}
	return float64(b.Writes) / float64(b.LinesTouched)
}

// RegionHealth is one address region's write/wear counters.
type RegionHealth struct {
	Region       int    `json:"region"`
	FirstLine    uint64 `json:"first_line"`
	Lines        uint64 `json:"lines"`
	Writes       uint64 `json:"writes"`
	MaxWear      uint64 `json:"max_wear"`
	LinesTouched uint64 `json:"lines_touched"`
}

// WearBucket is one non-empty log2 bucket of the wear histogram: Lines
// lines have a per-line write count in [Lo, Hi].
type WearBucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Lines uint64 `json:"lines"`
}

// HealthSnapshot is the full device-health view: the scalar summary plus
// per-bank rows (the wear heatmap), per-region rows and the bounded wear
// histogram.
type HealthSnapshot struct {
	HealthSummary
	Banks    []BankHealth   `json:"banks"`
	Regions  []RegionHealth `json:"regions"`
	WearHist []WearBucket   `json:"wear_hist"`
}

// HealthSummary returns the scalar health view. Safe to call concurrently
// with the simulation; does not allocate.
func (d *Device) HealthSummary() HealthSummary {
	h := &d.health
	h.mu.Lock()
	s := HealthSummary{
		Reads:         h.reads,
		Writes:        h.writes,
		RowHits:       h.rowHits,
		LinesTouched:  h.linesTouched,
		MaxWear:       h.maxWear,
		P99Wear:       h.approxP99(),
		ReadEnergyNJ:  float64(h.reads) * d.cfg.ReadEnergy,
		WriteEnergyNJ: float64(h.writes) * d.cfg.WriteEnergy,
	}
	h.mu.Unlock()
	return s
}

// HealthSnapshot returns the full health view (summary + banks + regions +
// wear histogram). Safe to call concurrently with the simulation; intended
// for serving endpoints, so it allocates its result.
func (d *Device) HealthSnapshot() HealthSnapshot {
	h := &d.health
	h.mu.Lock()
	snap := HealthSnapshot{
		HealthSummary: HealthSummary{
			Reads:         h.reads,
			Writes:        h.writes,
			RowHits:       h.rowHits,
			LinesTouched:  h.linesTouched,
			MaxWear:       h.maxWear,
			P99Wear:       h.approxP99(),
			ReadEnergyNJ:  float64(h.reads) * d.cfg.ReadEnergy,
			WriteEnergyNJ: float64(h.writes) * d.cfg.WriteEnergy,
		},
		Banks: make([]BankHealth, len(h.banks)),
	}
	for i := range h.banks {
		b := &h.banks[i]
		snap.Banks[i] = BankHealth{
			Bank:         i,
			Reads:        b.reads,
			Writes:       b.writes,
			RowHits:      b.rowHits,
			MaxWear:      b.maxWear,
			LinesTouched: b.lines,
			EnergyNJ:     float64(b.reads)*d.cfg.ReadEnergy + float64(b.writes)*d.cfg.WriteEnergy,
		}
	}
	regionLines := uint64(1) << h.regionShift
	for i := range h.regions {
		r := &h.regions[i]
		if r.writes == 0 {
			continue
		}
		snap.Regions = append(snap.Regions, RegionHealth{
			Region:       i,
			FirstLine:    uint64(i) * regionLines,
			Lines:        regionLines,
			Writes:       r.writes,
			MaxWear:      r.maxWear,
			LinesTouched: r.lines,
		})
	}
	for i := 0; i < wearHistBuckets; i++ {
		if h.hist[i] == 0 {
			continue
		}
		hi := ^uint64(0)
		if i < 63 {
			hi = uint64(1)<<(uint(i)+1) - 1
		}
		snap.WearHist = append(snap.WearHist, WearBucket{
			Lo:    uint64(1) << uint(i),
			Hi:    hi,
			Lines: h.hist[i],
		})
	}
	h.mu.Unlock()
	return snap
}

// MergeHealth combines per-shard snapshots into one device-wide view: totals
// sum, banks and regions concatenate (renumbered in shard order), histogram
// buckets merge, and P99 is re-derived from the merged histogram.
func MergeHealth(snaps []HealthSnapshot) HealthSnapshot {
	var out HealthSnapshot
	var hist [wearHistBuckets]uint64
	for _, s := range snaps {
		out.Reads += s.Reads
		out.Writes += s.Writes
		out.RowHits += s.RowHits
		out.LinesTouched += s.LinesTouched
		out.ReadEnergyNJ += s.ReadEnergyNJ
		out.WriteEnergyNJ += s.WriteEnergyNJ
		if s.MaxWear > out.MaxWear {
			out.MaxWear = s.MaxWear
		}
		for _, b := range s.Banks {
			b.Bank = len(out.Banks)
			out.Banks = append(out.Banks, b)
		}
		for _, r := range s.Regions {
			r.Region = len(out.Regions)
			out.Regions = append(out.Regions, r)
		}
		for _, wb := range s.WearHist {
			hist[wearBucket(wb.Lo)] += wb.Lines
		}
	}
	var cum, need uint64
	if out.LinesTouched > 0 {
		need = out.LinesTouched - out.LinesTouched*99/100
		if need < 1 {
			need = 1
		}
	}
	for i := wearHistBuckets - 1; i >= 0 && need > 0; i-- {
		cum += hist[i]
		if cum >= need {
			if i == 63 {
				out.P99Wear = ^uint64(0)
			} else {
				out.P99Wear = uint64(1)<<(uint(i)+1) - 1
			}
			if out.P99Wear > out.MaxWear {
				out.P99Wear = out.MaxWear
			}
			break
		}
	}
	for i := 0; i < wearHistBuckets; i++ {
		if hist[i] == 0 {
			continue
		}
		hi := ^uint64(0)
		if i < 63 {
			hi = uint64(1)<<(uint(i)+1) - 1
		}
		out.WearHist = append(out.WearHist, WearBucket{Lo: uint64(1) << uint(i), Hi: hi, Lines: hist[i]})
	}
	return out
}
