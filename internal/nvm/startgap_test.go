package nvm

import (
	"testing"
	"testing/quick"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/xrand"
	"github.com/esdsim/esd/internal/xrand/quicktest"
)

func TestStartGapMappingIsBijective(t *testing.T) {
	check := func(seed uint64, nRaw uint8, moves uint8) bool {
		n := uint64(nRaw%60) + 2
		sg := NewStartGap(n, 1)
		// Apply a random number of gap moves.
		for i := 0; i < int(moves); i++ {
			sg.OnWrite()
		}
		seen := map[uint64]bool{}
		for la := uint64(0); la < n; la++ {
			pa := sg.Map(la)
			if pa >= sg.Slots() {
				return false
			}
			if pa == sg.GapSlot() {
				return false // mapped onto the hole
			}
			if seen[pa] {
				return false // collision
			}
			seen[pa] = true
		}
		return true
	}
	if err := quick.Check(check, quicktest.Config(t, 200)); err != nil {
		t.Fatal(err)
	}
}

func TestStartGapMoveSequencePreservesData(t *testing.T) {
	// Simulate the data movements literally on a slot array and verify
	// every logical line's content survives arbitrary numbers of moves.
	const n = 16
	sg := NewStartGap(n, 1)
	slots := make([]uint64, sg.Slots())
	const hole = ^uint64(0)
	for i := range slots {
		slots[i] = hole
	}
	// Fill: logical line la holds value 1000+la.
	for la := uint64(0); la < n; la++ {
		slots[sg.Map(la)] = 1000 + la
	}
	for step := 0; step < 5*n*(n+1); step++ {
		if m, due := sg.OnWrite(); due {
			if slots[m.To] != hole {
				t.Fatalf("step %d: move target %d not the hole", step, m.To)
			}
			slots[m.To] = slots[m.From]
			slots[m.From] = hole
		}
		for la := uint64(0); la < n; la++ {
			if got := slots[sg.Map(la)]; got != 1000+la {
				t.Fatalf("step %d: line %d reads %d", step, la, got)
			}
		}
	}
	if sg.Moves == 0 {
		t.Fatal("no gap moves happened")
	}
}

func TestStartGapPsiThrottlesMoves(t *testing.T) {
	sg := NewStartGap(8, 10)
	moves := 0
	for i := 0; i < 100; i++ {
		if _, due := sg.OnWrite(); due {
			moves++
		}
	}
	if moves != 10 {
		t.Fatalf("100 writes at psi=10 produced %d moves, want 10", moves)
	}
}

func TestStartGapPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zeroLines": func() { NewStartGap(0, 1) },
		"zeroPsi":   func() { NewStartGap(4, 0) },
		"mapRange":  func() { NewStartGap(4, 1).Map(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLeveledDeviceRoundTrip(t *testing.T) {
	cfg := testCfg()
	dev := New(cfg)
	ld := NewLeveledDevice(dev, 1024, 4)
	r := xrand.New(5)
	want := map[uint64]ecc.Line{}
	now := sim.Time(0)
	for i := 0; i < 3000; i++ {
		la := r.Uint64n(1024)
		var l ecc.Line
		l.SetWord(0, r.Uint64())
		l.SetWord(1, la)
		ld.Write(la, &l, now)
		want[la] = l
		now += 200 * sim.Nanosecond
	}
	for la, w := range want {
		got, ok, _ := ld.Read(la, now)
		if !ok || got != w {
			t.Fatalf("line %d lost through wear leveling", la)
		}
	}
	if ld.Leveler().Moves == 0 {
		t.Fatal("no gap moves during 3000 writes at psi=4")
	}
}

func TestLeveledDeviceSpreadsWear(t *testing.T) {
	// One pathological workload: hammer a single logical line. Without
	// leveling the one physical cell takes all writes; with Start-Gap the
	// writes sweep across slots as the mapping rotates.
	cfg := testCfg()
	dev := New(cfg)
	const lines, psi, writes = 64, 2, 20000
	ld := NewLeveledDevice(dev, lines, psi)
	var l ecc.Line
	now := sim.Time(0)
	for i := 0; i < writes; i++ {
		l.SetWord(0, uint64(i))
		ld.Write(7, &l, now)
		now += 200 * sim.Nanosecond
	}
	w := dev.Wear()
	// writes + move traffic all land on the device; max wear must be far
	// below the total (the hot line visited many slots).
	if w.MaxWear >= writes/2 {
		t.Fatalf("max wear %d of %d writes: wear not levelled", w.MaxWear, writes)
	}
	if w.LinesTouched < lines/2 {
		t.Fatalf("only %d slots touched", w.LinesTouched)
	}
}

func TestLeveledDeviceNeedsSpareSlot(t *testing.T) {
	cfg := testCfg()
	dev := New(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized Start-Gap accepted")
		}
	}()
	NewLeveledDevice(dev, uint64(dev.Lines()), 4)
}
