package nvm

import (
	"testing"
	"testing/quick"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/xrand"
	"github.com/esdsim/esd/internal/xrand/quicktest"
)

func testCfg() config.PCM {
	cfg := config.Default().PCM
	cfg.CapacityBytes = 1 << 26 // 64 MiB keeps test address math small
	return cfg
}

func TestReadWriteFunctionalRoundTrip(t *testing.T) {
	d := New(testCfg())
	line := ecc.Line{1, 2, 3}
	d.Write(10, &line, 0)
	got, ok, _ := d.Read(10, 1000*sim.Nanosecond)
	if !ok || got != line {
		t.Fatalf("Read(10) = %v, ok=%v", got[:4], ok)
	}
	if _, ok, _ := d.Read(11, 2000*sim.Nanosecond); ok {
		t.Fatal("never-written line reported ok")
	}
}

func TestReadTimingIdleBank(t *testing.T) {
	cfg := testCfg()
	d := New(cfg)
	_, _, res := d.Read(0, 0)
	if res.Start != 0 {
		t.Fatalf("idle read started at %v", res.Start)
	}
	if want := cfg.ReadLatency + cfg.BusLatency; res.Done != want {
		t.Fatalf("idle read done at %v, want %v", res.Done, want)
	}
	if res.QueueDelay != 0 {
		t.Fatalf("idle read queue delay %v", res.QueueDelay)
	}
}

func TestBackToBackReadsOnSameBankQueue(t *testing.T) {
	cfg := testCfg()
	d := New(cfg)
	nBanks := uint64(cfg.Banks)
	_, _, r1 := d.Read(0, 0)
	_, _, r2 := d.Read(nBanks, 0) // same bank as addr 0
	if r2.Start != r1.Start+cfg.ReadLatency {
		t.Fatalf("second read started %v, want %v", r2.Start, r1.Start+cfg.ReadLatency)
	}
	if r2.QueueDelay != cfg.ReadLatency {
		t.Fatalf("second read queue delay = %v", r2.QueueDelay)
	}
}

func TestReadsOnDifferentBanksDoNotInterfere(t *testing.T) {
	cfg := testCfg()
	d := New(cfg)
	_, _, r1 := d.Read(0, 0)
	_, _, r2 := d.Read(1, 0) // different bank
	if r1.QueueDelay != 0 || r2.QueueDelay != 0 {
		t.Fatal("parallel banks queued")
	}
}

func TestPostedWriteIsInstantWhenQueueHasRoom(t *testing.T) {
	d := New(testCfg())
	res := d.Write(0, &ecc.Line{}, 500)
	if res.Stall != 0 || res.AcceptedAt != 500 {
		t.Fatalf("posted write result %+v", res)
	}
}

func TestFullWriteQueueStallsWriter(t *testing.T) {
	cfg := testCfg()
	cfg.WriteQueueDepth = 2
	d := New(cfg)
	// Three rapid writes to the same bank: first two fill the queue, the
	// third must stall for one media write time (the bank starts draining
	// the oldest entry when forced).
	bankStride := uint64(cfg.Banks)
	d.Write(0, &ecc.Line{}, 0)
	d.Write(bankStride, &ecc.Line{}, 0)
	res := d.Write(2*bankStride, &ecc.Line{}, 0)
	if res.Stall != cfg.WriteLatency {
		t.Fatalf("third write stall = %v, want %v", res.Stall, cfg.WriteLatency)
	}
}

func TestReadPriorityBypassesQueuedWrites(t *testing.T) {
	cfg := testCfg()
	d := New(cfg)
	bankStride := uint64(cfg.Banks)
	// Post several writes at t=0; none have started (they drain lazily).
	for i := uint64(0); i < 4; i++ {
		d.Write(i*bankStride, &ecc.Line{}, 0)
	}
	// A read arriving immediately must not wait behind all four writes;
	// at most the one write that already started occupies the bank.
	_, _, res := d.Read(0, 1*sim.Nanosecond)
	if res.QueueDelay > cfg.WriteLatency {
		t.Fatalf("read waited %v behind posted writes, want <= one write (%v)",
			res.QueueDelay, cfg.WriteLatency)
	}
}

func TestIdleGapsDrainWrites(t *testing.T) {
	cfg := testCfg()
	d := New(cfg)
	d.Write(0, &ecc.Line{}, 0)
	d.Write(uint64(cfg.Banks), &ecc.Line{}, 0)
	// After a long idle period both writes have drained; a read sees an
	// idle bank.
	_, _, res := d.Read(0, 10*cfg.WriteLatency)
	if res.QueueDelay != 0 {
		t.Fatalf("read after idle gap queued %v", res.QueueDelay)
	}
	if d.QueuedWrites() != 0 {
		t.Fatalf("%d writes still queued after drain", d.QueuedWrites())
	}
}

func TestFlushDrainsEverything(t *testing.T) {
	cfg := testCfg()
	d := New(cfg)
	for i := uint64(0); i < 10; i++ {
		d.Write(i*uint64(cfg.Banks), &ecc.Line{}, 0)
	}
	idle := d.Flush(0)
	if d.QueuedWrites() != 0 {
		t.Fatal("Flush left queued writes")
	}
	if idle < 10*cfg.WriteLatency {
		t.Fatalf("flush idle time %v too small for 10 serialized writes", idle)
	}
}

func TestEnergyAccounting(t *testing.T) {
	cfg := testCfg()
	d := New(cfg)
	d.Write(0, &ecc.Line{}, 0)
	d.Read(0, 0)
	d.Read(0, 0)
	want := cfg.WriteEnergy + 2*cfg.ReadEnergy
	if d.Stats.MediaEnergy != want {
		t.Fatalf("media energy = %v, want %v", d.Stats.MediaEnergy, want)
	}
}

func TestWearTracking(t *testing.T) {
	d := New(testCfg())
	for i := 0; i < 5; i++ {
		d.Write(7, &ecc.Line{byte(i)}, sim.Time(i)*sim.Microsecond)
	}
	d.Write(8, &ecc.Line{}, 0)
	d.SyncHealth() // publish staged accounting before exact assertions
	if d.WearOf(7) != 5 || d.WearOf(8) != 1 {
		t.Fatalf("wear = %d/%d, want 5/1", d.WearOf(7), d.WearOf(8))
	}
	w := d.Wear()
	if w.TotalWrites != 6 || w.LinesTouched != 2 || w.MaxWear != 5 || w.MeanWear != 3 {
		t.Fatalf("wear summary %+v", w)
	}
}

func TestWearEmptyDevice(t *testing.T) {
	d := New(testCfg())
	if w := d.Wear(); w.TotalWrites != 0 || w.LinesTouched != 0 {
		t.Fatalf("empty wear summary %+v", w)
	}
}

func TestAddressBeyondCapacityPanics(t *testing.T) {
	d := New(testCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range address did not panic")
		}
	}()
	d.Write(uint64(d.Lines()), &ecc.Line{}, 0)
}

func TestLoadStoreBypassTiming(t *testing.T) {
	d := New(testCfg())
	d.Store(3, ecc.Line{9})
	if d.Stats.Writes != 0 {
		t.Fatal("Store counted as a timed write")
	}
	l, ok := d.Load(3)
	if !ok || l[0] != 9 {
		t.Fatal("Load did not see Store")
	}
	if d.Stats.Reads != 0 {
		t.Fatal("Load counted as a timed read")
	}
}

func TestUtilizationBounds(t *testing.T) {
	cfg := testCfg()
	d := New(cfg)
	if d.Utilization(0) != 0 {
		t.Fatal("zero-horizon utilization != 0")
	}
	d.Read(0, 0)
	u := d.Utilization(cfg.ReadLatency * sim.Time(cfg.Banks))
	if u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestLatestWriteWins(t *testing.T) {
	check := func(seed uint64) bool {
		d := New(testCfg())
		r := xrand.New(seed)
		want := map[uint64]ecc.Line{}
		now := sim.Time(0)
		for i := 0; i < 300; i++ {
			addr := r.Uint64n(1024)
			var l ecc.Line
			l.SetWord(0, r.Uint64())
			d.Write(addr, &l, now)
			want[addr] = l
			now += sim.Time(r.Intn(200)) * sim.Nanosecond
		}
		for addr, w := range want {
			got, ok, _ := d.Read(addr, now)
			if !ok || got != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, quicktest.Config(t, 20)); err != nil {
		t.Fatal(err)
	}
}

func TestTimeNeverRegresses(t *testing.T) {
	// Completion times returned by the device must be >= submission times
	// under arbitrary interleavings.
	check := func(seed uint64) bool {
		d := New(testCfg())
		r := xrand.New(seed)
		now := sim.Time(0)
		for i := 0; i < 500; i++ {
			addr := r.Uint64n(256)
			if r.Bool(0.5) {
				_, _, res := d.Read(addr, now)
				if res.Start < now || res.Done < res.Start {
					return false
				}
			} else {
				res := d.Write(addr, &ecc.Line{}, now)
				if res.AcceptedAt < now || res.Stall < 0 {
					return false
				}
			}
			now += sim.Time(r.Intn(100)) * sim.Nanosecond
		}
		return true
	}
	if err := quick.Check(check, quicktest.Config(t, 20)); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDeviceWrite(b *testing.B) {
	b.ReportAllocs()
	d := New(testCfg())
	r := xrand.New(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = r.Uint64n(1 << 18)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Write(addrs[i%len(addrs)], &ecc.Line{}, sim.Time(i)*100*sim.Nanosecond)
	}
}
