// Package xrand provides small, fast, deterministic pseudo-random number
// generators and samplers used throughout the simulator.
//
// The simulator must be bit-reproducible across runs and platforms, so it
// does not use math/rand's global state. Every component that needs
// randomness owns an explicitly seeded generator. The core generator is
// xoshiro256** (Blackman & Vigna) seeded via SplitMix64, which is the
// recommended seeding procedure for the xoshiro family.
package xrand

import "math"

// SplitMix64 is a tiny 64-bit PRNG mainly used to expand a single seed word
// into the larger state of other generators. It is also a perfectly fine
// standalone generator for non-critical uses.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the sequence.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. The zero value is not usable; construct
// with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator deterministically seeded from seed.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	r := &Rand{}
	for i := range r.s {
		r.s[i] = sm.Uint64()
	}
	// xoshiro must not be seeded with an all-zero state; SplitMix64 cannot
	// produce four consecutive zeros, so this is already guaranteed, but we
	// keep a defensive fix-up so a future seeding change cannot break it.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Lemire rejection sampling on the high 64 bits of a 128-bit product.
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	w0 := t & mask32
	t = aHi*bLo + t>>32
	w1 := t & mask32
	w2 := t >> 32
	t = aLo*bHi + w1
	hi = aHi*bHi + w2 + t>>32
	lo = t<<32 | w0
	return hi, lo
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the elements addressed by swap using the Fisher-Yates
// algorithm, matching the contract of math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// ExpFloat64 returns an exponentially distributed value with rate 1,
// computed by inversion. Multiply by a mean to rescale.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal value using the Marsaglia polar
// method. It is not the fastest method but needs no tables and is exact.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Zipf samples from a bounded Zipf distribution over {0, 1, ..., n-1} with
// exponent s > 0 (probability of rank k proportional to 1/(k+1)^s).
// It uses an explicit cumulative table with binary search, which keeps the
// sampler exact for any s (including s <= 1, which rejection inversion
// cannot handle) at the cost of O(n) memory.
type Zipf struct {
	cdf []float64
	rng *Rand
}

// NewZipf constructs a bounded Zipf sampler. It panics if n <= 0 or s < 0.
func NewZipf(rng *Rand, s float64, n int) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf requires n > 0")
	}
	if s < 0 {
		panic("xrand: NewZipf requires s >= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, rng: rng}
}

// N returns the support size of the sampler.
func (z *Zipf) N() int { return len(z.cdf) }

// Next returns the next sample in [0, N()).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Weighted samples an index in [0, len(weights)) with probability
// proportional to weights[i], using Walker's alias method: O(n) setup and
// O(1) per sample.
type Weighted struct {
	prob  []float64
	alias []int
	rng   *Rand
}

// NewWeighted builds an alias table for weights. Negative weights panic;
// all-zero weights panic.
func NewWeighted(rng *Rand, weights []float64) *Weighted {
	n := len(weights)
	if n == 0 {
		panic("xrand: NewWeighted requires at least one weight")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("xrand: NewWeighted weight must be non-negative")
		}
		total += w
	}
	if total == 0 {
		panic("xrand: NewWeighted requires a positive total weight")
	}
	prob := make([]float64, n)
	alias := make([]int, n)
	scaled := make([]float64, n)
	var small, large []int
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		prob[i] = 1
		alias[i] = i
	}
	for _, i := range small {
		prob[i] = 1
		alias[i] = i
	}
	return &Weighted{prob: prob, alias: alias, rng: rng}
}

// Next returns the next weighted sample.
func (w *Weighted) Next() int {
	i := w.rng.Intn(len(w.prob))
	if w.rng.Float64() < w.prob[i] {
		return i
	}
	return w.alias[i]
}
