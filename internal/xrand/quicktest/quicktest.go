// Package quicktest builds deterministic testing/quick configurations.
//
// testing/quick's default Config seeds its generator from the wall clock,
// which makes property-test failures unreproducible: the failing input is
// printed, but the shrunken search path that found it is lost forever.
// Every property test in this repository routes through Config instead, so
// one seed (logged, overridable) replays the exact same value sequence.
package quicktest

import (
	"os"
	"strconv"
	"testing"
	"testing/quick"

	"github.com/esdsim/esd/internal/xrand"
)

// SeedEnv is the environment variable that overrides the default seed.
const SeedEnv = "ESD_QUICK_SEED"

// Config returns a quick.Config running max iterations from the
// simulator's deterministic generator. The seed defaults to 1, is always
// logged, and can be overridden with ESD_QUICK_SEED to replay a failure
// observed under a different seed.
func Config(t testing.TB, max int) *quick.Config {
	seed := uint64(1)
	if s := os.Getenv(SeedEnv); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("bad %s=%q: %v", SeedEnv, s, err)
		}
		seed = v
	}
	t.Logf("testing/quick seed %d (override with %s)", seed, SeedEnv)
	return &quick.Config{MaxCount: max, Rand: xrand.Quick(seed)}
}
