package xrand

import mathrand "math/rand"

// Source adapts Rand to math/rand.Source64 so standard-library consumers
// (testing/quick above all) can be driven from the simulator's deterministic
// generator instead of a time seed.
type Source struct {
	r *Rand
}

// NewSource returns a math/rand.Source64 backed by a fresh Rand seeded with
// seed.
func NewSource(seed uint64) *Source { return &Source{r: New(seed)} }

// Uint64 implements math/rand.Source64.
func (s *Source) Uint64() uint64 { return s.r.Uint64() }

// Int63 implements math/rand.Source.
func (s *Source) Int63() int64 { return int64(s.r.Uint64() >> 1) }

// Seed implements math/rand.Source by reseeding in place.
func (s *Source) Seed(seed int64) { s.r = New(uint64(seed)) }

// Quick returns a *math/rand.Rand for use as testing/quick's Config.Rand.
// quick.Config's default Rand is seeded from the wall clock, which makes
// property-test failures unreproducible; tests pass Quick(seed) and log the
// seed instead.
func Quick(seed uint64) *mathrand.Rand { return mathrand.New(NewSource(seed)) }
