package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownSequence(t *testing.T) {
	// Reference values for seed 0 from the public-domain splitmix64.c.
	want := []uint64{
		0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F,
		0xF88BB8A8724C81EC, 0x1B39896A51A8749B,
	}
	s := NewSplitMix64(0)
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("SplitMix64 value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := New(54321)
	same := 0
	a = New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical outputs", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(7)
	for _, n := range []uint64{1, 2, 3, 7, 64, 1000, 1 << 40} {
		for i := 0; i < 2000; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := trials / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d: got %d, want about %d", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(5)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) hit rate = %v", p)
	}
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	check := func(n uint8) bool {
		size := int(n%64) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	// In-package test: using xrand/quicktest here would be an import
	// cycle, so seed the quick.Config inline with the same generator.
	if err := quick.Check(check, &quick.Config{MaxCount: 100, Rand: Quick(1)}); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(17)
	sum := 0.0
	const trials = 200000
	for i := 0; i < trials; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / trials; math.Abs(mean-1) > 0.02 {
		t.Errorf("ExpFloat64 mean = %v, want about 1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(19)
	const trials = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("NormFloat64 mean = %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("NormFloat64 variance = %v, want about 1", variance)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(23)
	z := NewZipf(r, 1.2, 1000)
	const trials = 200000
	counts := make([]int, 1000)
	for i := 0; i < trials; i++ {
		k := z.Next()
		if k < 0 || k >= 1000 {
			t.Fatalf("Zipf sample %d out of range", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[10] || counts[10] <= counts[100] {
		t.Errorf("Zipf counts not monotonically skewed: c0=%d c1=%d c10=%d c100=%d",
			counts[0], counts[1], counts[10], counts[100])
	}
	// Rank 0 should dominate: with s=1.2 and n=1000 its mass is roughly 17%.
	p0 := float64(counts[0]) / trials
	if p0 < 0.12 || p0 > 0.25 {
		t.Errorf("Zipf p(0) = %v, want roughly 0.17", p0)
	}
}

func TestZipfZeroExponentIsUniform(t *testing.T) {
	r := New(29)
	z := NewZipf(r, 0, 10)
	const trials = 100000
	counts := make([]int, 10)
	for i := 0; i < trials; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if c < trials/10*9/10 || c > trials/10*11/10 {
			t.Errorf("Zipf(s=0) bucket %d = %d, want about %d", i, c, trials/10)
		}
	}
}

func TestWeightedMatchesWeights(t *testing.T) {
	r := New(31)
	weights := []float64{1, 2, 3, 4}
	w := NewWeighted(r, weights)
	const trials = 400000
	counts := make([]int, len(weights))
	for i := 0; i < trials; i++ {
		counts[w.Next()]++
	}
	for i, wt := range weights {
		want := wt / 10 * trials
		got := float64(counts[i])
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("weight %d: got %v samples, want about %v", i, got, want)
		}
	}
}

func TestWeightedZeroWeightNeverSampled(t *testing.T) {
	r := New(37)
	w := NewWeighted(r, []float64{0, 1, 0, 1})
	for i := 0; i < 10000; i++ {
		if k := w.Next(); k == 0 || k == 2 {
			t.Fatalf("sampled zero-weight index %d", k)
		}
	}
}

func TestWeightedPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    {},
		"negative": {1, -1},
		"allZero":  {0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWeighted(%s) did not panic", name)
				}
			}()
			NewWeighted(New(1), weights)
		}()
	}
}

func BenchmarkRandUint64(b *testing.B) {
	b.ReportAllocs()
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkWeightedNext(b *testing.B) {
	b.ReportAllocs()
	r := New(1)
	w := NewWeighted(r, []float64{5, 1, 3, 2, 9, 4})
	var sink int
	for i := 0; i < b.N; i++ {
		sink = w.Next()
	}
	_ = sink
}
