package cache

import (
	"testing"
	"testing/quick"

	"github.com/esdsim/esd/internal/xrand"
	"github.com/esdsim/esd/internal/xrand/quicktest"
)

func TestPutGetRoundTrip(t *testing.T) {
	c := New[string](16, 4, LRU)
	c.Put(1, "one")
	c.Put(2, "two")
	if v, ok := c.Get(1); !ok || v != "one" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	if v, ok := c.Get(2); !ok || v != "two" {
		t.Fatalf("Get(2) = %q, %v", v, ok)
	}
	if _, ok := c.Get(3); ok {
		t.Fatal("Get(3) hit on absent key")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestUpdateInPlace(t *testing.T) {
	c := New[int](8, 8, LRU)
	c.Put(5, 50)
	c.Put(5, 55)
	if c.Len() != 1 {
		t.Fatalf("Len = %d after double Put of same key", c.Len())
	}
	if v, _ := c.Get(5); v != 55 {
		t.Fatalf("updated value = %d, want 55", v)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Fully associative, capacity 3: fill, touch 1, insert 4 => 2 evicted.
	c := New[int](3, 3, LRU)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3)
	c.Get(1)
	ev, evicted := c.Put(4, 4)
	if !evicted || ev.Key != 2 {
		t.Fatalf("evicted %+v (evicted=%v), want key 2", ev, evicted)
	}
	if !c.Contains(1) || !c.Contains(3) || !c.Contains(4) {
		t.Fatal("wrong survivors after LRU eviction")
	}
}

func TestFIFOEvictionIgnoresRecency(t *testing.T) {
	c := New[int](3, 3, FIFO)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3)
	c.Get(1) // should not save key 1 under FIFO
	ev, evicted := c.Put(4, 4)
	if !evicted || ev.Key != 1 {
		t.Fatalf("FIFO evicted key %d, want 1", ev.Key)
	}
}

func TestLRCUEvictsLowestRefCount(t *testing.T) {
	c := New[int](3, 3, LRCU)
	c.Put(10, 0) // ref 1
	c.Put(20, 0) // ref 1
	c.Put(30, 0) // ref 1
	// Key 20 becomes hot (three duplicate writes).
	c.Touch(20, 0)
	c.Touch(20, 0)
	c.Touch(20, 0)
	// Key 30 mildly hot.
	c.Touch(30, 0)
	// Keys 10 has ref 1 and must be the victim even though it is not LRU.
	c.Get(10) // make 10 most-recently-used
	ev, evicted := c.Put(40, 0)
	if !evicted || ev.Key != 10 {
		t.Fatalf("LRCU evicted key %d (ref=%d), want key 10", ev.Key, ev.Ref)
	}
	if !c.Contains(20) || !c.Contains(30) {
		t.Fatal("LRCU evicted a hot entry")
	}
}

func TestLRCUTieBreaksByRecency(t *testing.T) {
	c := New[int](2, 2, LRCU)
	c.Put(1, 0)
	c.Put(2, 0)
	c.Get(1) // 2 is now least recently used, both ref 1
	ev, _ := c.Put(3, 0)
	if ev.Key != 2 {
		t.Fatalf("tie-break evicted %d, want 2", ev.Key)
	}
}

func TestTouchSaturatesAtRefMax(t *testing.T) {
	c := New[int](4, 4, LRCU)
	c.Put(1, 0)
	for i := 0; i < 300; i++ {
		c.Touch(1, 255)
	}
	if ref := c.Ref(1); ref != 255 {
		t.Fatalf("ref = %d, want saturation at 255", ref)
	}
	if c.Touch(99, 255) {
		t.Fatal("Touch on absent key returned true")
	}
}

func TestDecayAllFloorsAtZero(t *testing.T) {
	c := New[int](4, 4, LRCU)
	c.Put(1, 0)
	c.Put(2, 0)
	c.Touch(2, 0)
	c.Touch(2, 0) // ref(2) = 3
	c.DecayAll(2)
	if r := c.Ref(1); r != 0 {
		t.Fatalf("ref(1) after decay = %d, want 0", r)
	}
	if r := c.Ref(2); r != 1 {
		t.Fatalf("ref(2) after decay = %d, want 1", r)
	}
	c.DecayAll(5)
	if r := c.Ref(2); r != 0 {
		t.Fatalf("ref(2) after second decay = %d, want floor 0", r)
	}
}

func TestDeleteAndClear(t *testing.T) {
	c := New[int](8, 4, LRU)
	c.Put(1, 1)
	c.Put(2, 2)
	if !c.Delete(1) {
		t.Fatal("Delete(1) = false")
	}
	if c.Delete(1) {
		t.Fatal("double Delete(1) = true")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after delete", c.Len())
	}
	c.Clear()
	if c.Len() != 0 || c.Stats.Hits != 0 {
		t.Fatal("Clear did not reset state")
	}
}

func TestPeekHasNoSideEffects(t *testing.T) {
	c := New[int](4, 4, LRU)
	c.Put(1, 10)
	before := c.Stats
	if v, ok := c.Peek(1); !ok || v != 10 {
		t.Fatal("Peek missed present key")
	}
	if _, ok := c.Peek(2); ok {
		t.Fatal("Peek hit absent key")
	}
	if c.Stats != before {
		t.Fatal("Peek changed statistics")
	}
}

func TestStatsAndHitRate(t *testing.T) {
	c := New[int](4, 4, LRU)
	c.Put(1, 1)
	c.Get(1)
	c.Get(1)
	c.Get(2)
	if c.Stats.Hits != 2 || c.Stats.Misses != 1 || c.Stats.Inserts != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
	if hr := c.Stats.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Fatalf("hit rate = %v, want 2/3", hr)
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty stats hit rate != 0")
	}
}

func TestSetAssociativityConfinesEvictions(t *testing.T) {
	// 2 sets x 2 ways. Keys mapping to different sets must not evict each
	// other even when the cache as a whole is full.
	c := New[int](4, 2, LRU)
	// Find four keys: two per set.
	var setA, setB []uint64
	for k := uint64(0); len(setA) < 2 || len(setB) < 2; k++ {
		if mix(k)%2 == 0 {
			if len(setA) < 2 {
				setA = append(setA, k)
			}
		} else if len(setB) < 2 {
			setB = append(setB, k)
		}
	}
	c.Put(setA[0], 1)
	c.Put(setA[1], 2)
	c.Put(setB[0], 3)
	c.Put(setB[1], 4)
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	// Inserting another set-A key evicts from set A only.
	var extra uint64
	for k := uint64(100); ; k++ {
		if mix(k)%2 == 0 {
			extra = k
			break
		}
	}
	ev, evicted := c.Put(extra, 5)
	if !evicted {
		t.Fatal("full set did not evict")
	}
	if ev.Key != setA[0] && ev.Key != setA[1] {
		t.Fatalf("evicted key %d from wrong set", ev.Key)
	}
	if !c.Contains(setB[0]) || !c.Contains(setB[1]) {
		t.Fatal("eviction crossed set boundary")
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	check := func(seed uint64, capRaw, waysRaw uint8) bool {
		capacity := int(capRaw%64) + 1
		ways := int(waysRaw%8) + 1
		c := New[uint64](capacity, ways, LRU)
		r := xrand.New(seed)
		for i := 0; i < 500; i++ {
			k := r.Uint64n(128)
			c.Put(k, k)
			if c.Len() > c.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, quicktest.Config(t, 100)); err != nil {
		t.Fatal(err)
	}
}

func TestGetAfterPutAlwaysHitsUntilEvicted(t *testing.T) {
	check := func(seed uint64) bool {
		c := New[uint64](32, 4, LRCU)
		r := xrand.New(seed)
		live := map[uint64]uint64{}
		for i := 0; i < 1000; i++ {
			k := r.Uint64n(256)
			v := r.Uint64()
			ev, evicted := c.Put(k, v)
			live[k] = v
			if evicted {
				delete(live, ev.Key)
			}
			// Every key believed live must be retrievable with its value.
			probe := r.Uint64n(256)
			if want, ok := live[probe]; ok {
				got, hit := c.Peek(probe)
				if !hit || got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, quicktest.Config(t, 30)); err != nil {
		t.Fatal(err)
	}
}

func TestRangeVisitsAllEntries(t *testing.T) {
	c := New[int](16, 4, LRU)
	for k := uint64(0); k < 10; k++ {
		c.Put(k, int(k*10))
	}
	seen := map[uint64]int{}
	c.Range(func(k uint64, v int, ref int) bool {
		seen[k] = v
		return true
	})
	if len(seen) != c.Len() {
		t.Fatalf("Range visited %d entries, Len = %d", len(seen), c.Len())
	}
	// Early termination.
	visits := 0
	c.Range(func(uint64, int, int) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("Range ignored early stop: %d visits", visits)
	}
}

func TestNewPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[int](0, 1, LRU)
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || FIFO.String() != "fifo" || LRCU.String() != "lrcu" {
		t.Fatal("unexpected policy names")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Fatal("unknown policy string")
	}
}

func BenchmarkCachePutGet(b *testing.B) {
	b.ReportAllocs()
	c := New[uint64](4096, 8, LRU)
	r := xrand.New(1)
	keys := make([]uint64, 8192)
	for i := range keys {
		keys[i] = r.Uint64n(16384)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		if _, ok := c.Get(k); !ok {
			c.Put(k, k)
		}
	}
}

func BenchmarkCacheLRCUVictimScan(b *testing.B) {
	b.ReportAllocs()
	c := New[uint64](4096, 16, LRCU)
	r := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(r.Uint64(), 0)
	}
}
