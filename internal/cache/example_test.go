package cache_test

import (
	"fmt"

	"github.com/esdsim/esd/internal/cache"
)

// LRCU keeps high-reference-count entries alive through churn that would
// flush an LRU cache — the property ESD's EFIT depends on (§III-D).
func ExampleNew_lrcu() {
	c := cache.New[string](2, 2, cache.LRCU)

	c.Put(1, "hot fingerprint")
	c.Touch(1, 255) // duplicate writes bump the reference count
	c.Touch(1, 255)

	c.Put(2, "cold fingerprint") // ref 1
	c.Put(3, "new fingerprint")  // set full: LRCU evicts the lowest ref

	_, hotSurvives := c.Peek(1)
	_, coldSurvives := c.Peek(2)
	fmt.Println(hotSurvives, coldSurvives)
	// Output:
	// true false
}
