package cache

import "testing"

// FuzzCacheOperations drives arbitrary operation sequences against the
// cache and checks the structural invariants: Len never exceeds capacity,
// a just-inserted key is always retrievable, and Delete leaves no trace.
func FuzzCacheOperations(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, uint8(8), uint8(2), uint8(0))
	f.Add([]byte{9, 9, 9, 1, 1}, uint8(4), uint8(4), uint8(2))
	f.Fuzz(func(t *testing.T, ops []byte, capRaw, waysRaw, policyRaw uint8) {
		capacity := int(capRaw%32) + 1
		ways := int(waysRaw%8) + 1
		policy := Policy(policyRaw % 3)
		c := New[uint64](capacity, ways, policy)
		for i := 0; i+1 < len(ops); i += 2 {
			key := uint64(ops[i])
			switch ops[i+1] % 5 {
			case 0:
				c.Put(key, key*10)
				if v, ok := c.Peek(key); !ok || v != key*10 {
					t.Fatalf("just-inserted key %d not retrievable", key)
				}
			case 1:
				c.Get(key)
			case 2:
				c.Touch(key, 255)
			case 3:
				c.Delete(key)
				if c.Contains(key) {
					t.Fatalf("deleted key %d still present", key)
				}
			case 4:
				c.DecayAll(int(ops[i+1]) % 3)
			}
			if c.Len() > c.Capacity() {
				t.Fatalf("Len %d exceeds capacity %d", c.Len(), c.Capacity())
			}
		}
	})
}
