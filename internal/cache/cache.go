// Package cache implements the set-associative SRAM cache model used for
// every on-chip lookup structure in the simulator: the CPU cache hierarchy
// (L1/L2/L3), the fingerprint caches of the dedup schemes, ESD's EFIT
// cache, the AMT hot-entry cache, and the encryption-counter cache.
//
// The cache is generic over its value type and supports three replacement
// policies:
//
//   - LRU: least-recently-used, for ordinary caches;
//   - FIFO: insertion order, as a cheap baseline for ablations;
//   - LRCU: the paper's Least-Reference-Count-Used policy (§III-D), which
//     evicts the entry with the lowest reference count (ties broken by
//     recency) so that hot fingerprints survive, plus a periodic DecayAll
//     "regular refresh" that subtracts a fixed value from every count.
package cache

import "fmt"

// Policy selects the replacement policy.
type Policy int

// Supported replacement policies.
const (
	LRU Policy = iota
	FIFO
	LRCU
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case LRCU:
		return "lrcu"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Stats counts cache events.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Inserts   uint64
	Evictions uint64
}

// HitRate returns hits / (hits + misses), or 0 with no accesses.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Probe receives cache events as they happen, in addition to the Stats
// counters. It exists so an external telemetry layer can observe live
// hit/miss/eviction rates without polling; telemetry's CacheProbe satisfies
// it structurally, keeping this package dependency-free.
type Probe interface {
	Hit()
	Miss()
	Evict()
}

type entry[V any] struct {
	key   uint64
	value V
	valid bool
	last  uint64 // tick of last touch (LRU ordering)
	born  uint64 // tick of insertion (FIFO ordering)
	ref   int    // reference count (LRCU ordering)
}

// Cache is a set-associative cache mapping uint64 keys to values of type V.
// It is not safe for concurrent use.
type Cache[V any] struct {
	sets   [][]entry[V]
	ways   int
	policy Policy
	tick   uint64
	len    int
	probe  Probe

	Stats Stats
}

// New creates a cache with the given total entry capacity, associativity
// and policy. ways <= 0 or ways >= capacity yields a fully-associative
// cache. Capacity is rounded down to a multiple of the way count and must
// be at least 1.
func New[V any](capacity, ways int, policy Policy) *Cache[V] {
	if capacity < 1 {
		panic("cache: capacity must be >= 1")
	}
	if ways <= 0 || ways >= capacity {
		ways = capacity
	}
	numSets := capacity / ways
	if numSets < 1 {
		numSets = 1
	}
	sets := make([][]entry[V], numSets)
	for i := range sets {
		sets[i] = make([]entry[V], ways)
	}
	return &Cache[V]{sets: sets, ways: ways, policy: policy}
}

// Capacity returns the total number of entries the cache can hold.
func (c *Cache[V]) Capacity() int { return len(c.sets) * c.ways }

// Len returns the number of valid entries.
func (c *Cache[V]) Len() int { return c.len }

// Policy returns the replacement policy.
func (c *Cache[V]) Policy() Policy { return c.policy }

// SetProbe attaches an event probe (nil detaches). Callers holding only a
// possibly-nil concrete pointer must guard the call themselves: storing a
// typed nil here would make the probe checks non-nil.
func (c *Cache[V]) SetProbe(p Probe) { c.probe = p }

// mix is a splitmix64-style finalizer, decorrelating set indices from
// low-order key bits (fingerprints and line addresses both need this).
func mix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (c *Cache[V]) set(key uint64) []entry[V] {
	return c.sets[mix(key)%uint64(len(c.sets))]
}

// Get looks up key, counting a hit or miss and refreshing recency (and,
// under LRCU, the reference count is NOT bumped by Get — only Touch and
// Put bump it, mirroring the paper where the count tracks duplicate
// writes, not probes).
func (c *Cache[V]) Get(key uint64) (V, bool) {
	set := c.set(key)
	for i := range set {
		if set[i].valid && set[i].key == key {
			c.tick++
			set[i].last = c.tick
			c.Stats.Hits++
			if c.probe != nil {
				c.probe.Hit()
			}
			return set[i].value, true
		}
	}
	c.Stats.Misses++
	if c.probe != nil {
		c.probe.Miss()
	}
	var zero V
	return zero, false
}

// Peek looks up key without updating recency or statistics.
func (c *Cache[V]) Peek(key uint64) (V, bool) {
	set := c.set(key)
	for i := range set {
		if set[i].valid && set[i].key == key {
			return set[i].value, true
		}
	}
	var zero V
	return zero, false
}

// Contains reports whether key is cached, without side effects.
func (c *Cache[V]) Contains(key uint64) bool {
	_, ok := c.Peek(key)
	return ok
}

// Touch bumps the reference count (saturating at refMax if refMax > 0)
// and recency of key. It reports whether the key was present.
func (c *Cache[V]) Touch(key uint64, refMax int) bool {
	set := c.set(key)
	for i := range set {
		if set[i].valid && set[i].key == key {
			c.tick++
			set[i].last = c.tick
			if refMax <= 0 || set[i].ref < refMax {
				set[i].ref++
			}
			return true
		}
	}
	return false
}

// Ref returns the reference count of key (0 if absent).
func (c *Cache[V]) Ref(key uint64) int {
	set := c.set(key)
	for i := range set {
		if set[i].valid && set[i].key == key {
			return set[i].ref
		}
	}
	return 0
}

// Evicted describes an entry displaced by Put.
type Evicted[V any] struct {
	Key   uint64
	Value V
	Ref   int
}

// Put inserts or updates key. If an existing entry is updated, its value is
// replaced and recency refreshed (reference count unchanged). On insertion
// into a full set, the policy victim is evicted and returned.
func (c *Cache[V]) Put(key uint64, value V) (ev Evicted[V], evicted bool) {
	return c.PutWithRef(key, value, 1)
}

// PutWithRef inserts key with an explicit initial reference count, which
// matters for LRCU: a fingerprint re-inserted after tracking in NVMM may
// re-enter hot.
func (c *Cache[V]) PutWithRef(key uint64, value V, ref int) (ev Evicted[V], evicted bool) {
	set := c.set(key)
	c.tick++
	// Update in place.
	for i := range set {
		if set[i].valid && set[i].key == key {
			set[i].value = value
			set[i].last = c.tick
			return ev, false
		}
	}
	c.Stats.Inserts++
	// Free slot.
	for i := range set {
		if !set[i].valid {
			set[i] = entry[V]{key: key, value: value, valid: true, last: c.tick, born: c.tick, ref: ref}
			c.len++
			return ev, false
		}
	}
	// Evict the policy victim.
	v := c.victim(set)
	ev = Evicted[V]{Key: set[v].key, Value: set[v].value, Ref: set[v].ref}
	set[v] = entry[V]{key: key, value: value, valid: true, last: c.tick, born: c.tick, ref: ref}
	c.Stats.Evictions++
	if c.probe != nil {
		c.probe.Evict()
	}
	return ev, true
}

func (c *Cache[V]) victim(set []entry[V]) int {
	v := 0
	switch c.policy {
	case FIFO:
		for i := 1; i < len(set); i++ {
			if set[i].born < set[v].born {
				v = i
			}
		}
	case LRCU:
		// Lowest reference count first — the paper prioritizes evicting
		// refcount-1 fingerprints so hot ones stay — recency breaks ties.
		for i := 1; i < len(set); i++ {
			if set[i].ref < set[v].ref ||
				(set[i].ref == set[v].ref && set[i].last < set[v].last) {
				v = i
			}
		}
	default: // LRU
		for i := 1; i < len(set); i++ {
			if set[i].last < set[v].last {
				v = i
			}
		}
	}
	return v
}

// Delete removes key, reporting whether it was present.
func (c *Cache[V]) Delete(key uint64) bool {
	set := c.set(key)
	for i := range set {
		if set[i].valid && set[i].key == key {
			var zero entry[V]
			set[i] = zero
			c.len--
			return true
		}
	}
	return false
}

// DecayAll subtracts delta from every entry's reference count (floor 0).
// This is the paper's "regular refresh" (§III-D) that keeps LRCU counts
// from staleness; entries decayed to 0 become prime eviction victims.
func (c *Cache[V]) DecayAll(delta int) {
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				set[i].ref -= delta
				if set[i].ref < 0 {
					set[i].ref = 0
				}
			}
		}
	}
}

// Range calls fn for every valid entry until fn returns false. Iteration
// order is unspecified but deterministic.
func (c *Cache[V]) Range(fn func(key uint64, value V, ref int) bool) {
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				if !fn(set[i].key, set[i].value, set[i].ref) {
					return
				}
			}
		}
	}
}

// Clear removes all entries and resets statistics.
func (c *Cache[V]) Clear() {
	for _, set := range c.sets {
		for i := range set {
			var zero entry[V]
			set[i] = zero
		}
	}
	c.len = 0
	c.tick = 0
	c.Stats = Stats{}
}
