// Package cache implements the set-associative SRAM cache model used for
// every on-chip lookup structure in the simulator: the CPU cache hierarchy
// (L1/L2/L3), the fingerprint caches of the dedup schemes, ESD's EFIT
// cache, the AMT hot-entry cache, and the encryption-counter cache.
//
// The cache is generic over its value type and supports three replacement
// policies:
//
//   - LRU: least-recently-used, for ordinary caches;
//   - FIFO: insertion order, as a cheap baseline for ablations;
//   - LRCU: the paper's Least-Reference-Count-Used policy (§III-D), which
//     evicts the entry with the lowest reference count (ties broken by
//     recency) so that hot fingerprints survive, plus a periodic DecayAll
//     "regular refresh" that subtracts a fixed value from every count.
//
// Storage is struct-of-arrays: the keys of one set are contiguous (64
// bytes for the standard 8-way geometry — one cache line), with values
// and replacement metadata in parallel flat arrays. The simulator probes
// these caches several times per simulated line, and the caches are large
// enough to live in DRAM, so the tag scan touching one line instead of a
// 450-byte entry block is a measurable share of write-path throughput.
package cache

import (
	"fmt"
	"math/bits"
)

// Policy selects the replacement policy.
type Policy int

// Supported replacement policies.
const (
	LRU Policy = iota
	FIFO
	LRCU
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case LRCU:
		return "lrcu"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Stats counts cache events.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Inserts   uint64
	Evictions uint64
}

// HitRate returns hits / (hits + misses), or 0 with no accesses.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Probe receives cache events as they happen, in addition to the Stats
// counters. It exists so an external telemetry layer can observe live
// hit/miss/eviction rates without polling; telemetry's CacheProbe satisfies
// it structurally, keeping this package dependency-free.
type Probe interface {
	Hit()
	Miss()
	Evict()
}

// Cache is a set-associative cache mapping uint64 keys to values of type V.
// It is not safe for concurrent use.
//
// Way i of set s lives at flat index s*ways+i across the parallel arrays.
type Cache[V any] struct {
	keys   []uint64
	vals   []V
	valid  []bool
	last   []uint64 // tick of last touch (LRU ordering)
	born   []uint64 // tick of insertion (FIFO ordering)
	ref    []int32  // reference count (LRCU ordering)
	ways   int
	nsets  uint64
	policy Policy
	tick   uint64
	len    int
	probe  Probe

	Stats Stats
}

// New creates a cache with the given total entry capacity, associativity
// and policy. ways <= 0 or ways >= capacity yields a fully-associative
// cache. Capacity is rounded down to a multiple of the way count and must
// be at least 1.
func New[V any](capacity, ways int, policy Policy) *Cache[V] {
	if capacity < 1 {
		panic("cache: capacity must be >= 1")
	}
	if ways <= 0 || ways >= capacity {
		ways = capacity
	}
	numSets := capacity / ways
	if numSets < 1 {
		numSets = 1
	}
	n := numSets * ways
	return &Cache[V]{
		keys:   make([]uint64, n),
		vals:   make([]V, n),
		valid:  make([]bool, n),
		last:   make([]uint64, n),
		born:   make([]uint64, n),
		ref:    make([]int32, n),
		ways:   ways,
		nsets:  uint64(numSets),
		policy: policy,
	}
}

// Capacity returns the total number of entries the cache can hold.
func (c *Cache[V]) Capacity() int { return len(c.keys) }

// Len returns the number of valid entries.
func (c *Cache[V]) Len() int { return c.len }

// Policy returns the replacement policy.
func (c *Cache[V]) Policy() Policy { return c.policy }

// SetProbe attaches an event probe (nil detaches). Callers holding only a
// possibly-nil concrete pointer must guard the call themselves: storing a
// typed nil here would make the probe checks non-nil.
func (c *Cache[V]) SetProbe(p Probe) { c.probe = p }

// mix is a splitmix64-style finalizer, decorrelating set indices from
// low-order key bits (fingerprints and line addresses both need this).
func mix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// setBase returns the flat index of the first way of key's set.
// Multiply-shift range reduction (Lemire) maps the mixed key uniformly
// onto [0, nsets) with one multiply: the set count comes from
// capacity/ways and is rarely a power of two, so the obvious `%` would
// cost a 64-bit hardware division on every probe of every cache.
func (c *Cache[V]) setBase(key uint64) int {
	hi, _ := bits.Mul64(mix(key), c.nsets)
	return int(hi) * c.ways
}

// find returns the flat index of key within its set, or -1.
func (c *Cache[V]) find(key uint64) int {
	base := c.setBase(key)
	for i := base; i < base+c.ways; i++ {
		if c.keys[i] == key && c.valid[i] {
			return i
		}
	}
	return -1
}

// Get looks up key, counting a hit or miss and refreshing recency (and,
// under LRCU, the reference count is NOT bumped by Get — only Touch and
// Put bump it, mirroring the paper where the count tracks duplicate
// writes, not probes).
func (c *Cache[V]) Get(key uint64) (V, bool) {
	if i := c.find(key); i >= 0 {
		c.tick++
		c.last[i] = c.tick
		c.Stats.Hits++
		if c.probe != nil {
			c.probe.Hit()
		}
		return c.vals[i], true
	}
	c.Stats.Misses++
	if c.probe != nil {
		c.probe.Miss()
	}
	var zero V
	return zero, false
}

// GetRef is Get plus the entry's current reference count, in one tag scan.
// The ESD dup path needs both the mapped value and the referH saturation
// check; fusing them avoids a second probe for every duplicate write.
func (c *Cache[V]) GetRef(key uint64) (V, int, bool) {
	if i := c.find(key); i >= 0 {
		c.tick++
		c.last[i] = c.tick
		c.Stats.Hits++
		if c.probe != nil {
			c.probe.Hit()
		}
		return c.vals[i], int(c.ref[i]), true
	}
	c.Stats.Misses++
	if c.probe != nil {
		c.probe.Miss()
	}
	var zero V
	return zero, 0, false
}

// Peek looks up key without updating recency or statistics.
func (c *Cache[V]) Peek(key uint64) (V, bool) {
	if i := c.find(key); i >= 0 {
		return c.vals[i], true
	}
	var zero V
	return zero, false
}

// Contains reports whether key is cached, without side effects.
func (c *Cache[V]) Contains(key uint64) bool {
	return c.find(key) >= 0
}

// Touch bumps the reference count (saturating at refMax if refMax > 0)
// and recency of key. It reports whether the key was present.
func (c *Cache[V]) Touch(key uint64, refMax int) bool {
	if i := c.find(key); i >= 0 {
		c.tick++
		c.last[i] = c.tick
		if refMax <= 0 || c.ref[i] < int32(refMax) {
			c.ref[i]++
		}
		return true
	}
	return false
}

// Ref returns the reference count of key (0 if absent).
func (c *Cache[V]) Ref(key uint64) int {
	if i := c.find(key); i >= 0 {
		return int(c.ref[i])
	}
	return 0
}

// Evicted describes an entry displaced by Put.
type Evicted[V any] struct {
	Key   uint64
	Value V
	Ref   int
}

// Put inserts or updates key. If an existing entry is updated, its value is
// replaced and recency refreshed (reference count unchanged). On insertion
// into a full set, the policy victim is evicted and returned.
func (c *Cache[V]) Put(key uint64, value V) (ev Evicted[V], evicted bool) {
	return c.PutWithRef(key, value, 1)
}

// PutWithRef inserts key with an explicit initial reference count, which
// matters for LRCU: a fingerprint re-inserted after tracking in NVMM may
// re-enter hot.
func (c *Cache[V]) PutWithRef(key uint64, value V, ref int) (ev Evicted[V], evicted bool) {
	base := c.setBase(key)
	c.tick++
	// One pass finds the existing entry, the first free way, and — under
	// LRU, the policy of the per-write AMT cache — the eviction victim, so
	// a full-set insert does not rescan the set's recency line.
	free := -1
	lru := base
	for i := base; i < base+c.ways; i++ {
		if !c.valid[i] {
			if free < 0 {
				free = i
			}
			continue
		}
		if c.keys[i] == key {
			c.vals[i] = value
			c.last[i] = c.tick
			return ev, false
		}
		if c.last[i] < c.last[lru] || !c.valid[lru] {
			lru = i
		}
	}
	c.Stats.Inserts++
	i := free
	if i < 0 {
		// Evict the policy victim.
		i = lru
		if c.policy != LRU {
			i = c.victim(base)
		}
		ev = Evicted[V]{Key: c.keys[i], Value: c.vals[i], Ref: int(c.ref[i])}
		evicted = true
		c.Stats.Evictions++
		if c.probe != nil {
			c.probe.Evict()
		}
	} else {
		c.len++
	}
	c.keys[i] = key
	c.vals[i] = value
	c.valid[i] = true
	c.last[i] = c.tick
	// born orders FIFO replacement and ref orders LRCU replacement; under
	// the other policies neither is ever read, and skipping the stores
	// keeps two cold arrays out of the insert path's cache footprint.
	// (Reference counts are therefore only meaningful under LRCU.)
	if c.policy == FIFO {
		c.born[i] = c.tick
	}
	if c.policy == LRCU {
		c.ref[i] = int32(ref)
	}
	return ev, evicted
}

// victim returns the flat index of the replacement victim in the full set
// starting at base.
func (c *Cache[V]) victim(base int) int {
	v := base
	switch c.policy {
	case FIFO:
		for i := base + 1; i < base+c.ways; i++ {
			if c.born[i] < c.born[v] {
				v = i
			}
		}
	case LRCU:
		// Lowest reference count first — the paper prioritizes evicting
		// refcount-1 fingerprints so hot ones stay — recency breaks ties.
		for i := base + 1; i < base+c.ways; i++ {
			if c.ref[i] < c.ref[v] ||
				(c.ref[i] == c.ref[v] && c.last[i] < c.last[v]) {
				v = i
			}
		}
	default: // LRU
		for i := base + 1; i < base+c.ways; i++ {
			if c.last[i] < c.last[v] {
				v = i
			}
		}
	}
	return v
}

// Delete removes key, reporting whether it was present.
func (c *Cache[V]) Delete(key uint64) bool {
	_, ok := c.Pop(key)
	return ok
}

// Pop removes key and returns the value it held, in one tag scan — the
// delete-then-reinsert idiom (ESD re-pointing an EFIT entry) otherwise
// probes the set twice just to learn what it evicted.
func (c *Cache[V]) Pop(key uint64) (V, bool) {
	if i := c.find(key); i >= 0 {
		v := c.vals[i]
		c.clearSlot(i)
		c.len--
		return v, true
	}
	var zero V
	return zero, false
}

func (c *Cache[V]) clearSlot(i int) {
	var zero V
	c.keys[i] = 0
	c.vals[i] = zero
	c.valid[i] = false
	c.last[i] = 0
	c.born[i] = 0
	c.ref[i] = 0
}

// DecayAll subtracts delta from every entry's reference count (floor 0).
// This is the paper's "regular refresh" (§III-D) that keeps LRCU counts
// from staleness; entries decayed to 0 become prime eviction victims.
func (c *Cache[V]) DecayAll(delta int) {
	d := int32(delta)
	// Only slots with a positive count change; skipping the rest keeps the
	// sweep read-mostly (no stores re-dirtying lines full of zero counts,
	// no touch of the validity array — cleared slots hold ref 0).
	for i := range c.ref {
		if r := c.ref[i]; r > 0 {
			r -= d
			if r < 0 {
				r = 0
			}
			c.ref[i] = r
		}
	}
}

// Range calls fn for every valid entry until fn returns false. Iteration
// order is unspecified but deterministic.
func (c *Cache[V]) Range(fn func(key uint64, value V, ref int) bool) {
	for i := range c.keys {
		if c.valid[i] {
			if !fn(c.keys[i], c.vals[i], int(c.ref[i])) {
				return
			}
		}
	}
}

// Clear removes all entries and resets statistics.
func (c *Cache[V]) Clear() {
	for i := range c.keys {
		if c.valid[i] {
			c.clearSlot(i)
		}
	}
	c.len = 0
	c.tick = 0
	c.Stats = Stats{}
}
