package ecc

import "testing"

// FuzzDecodeWord checks the SEC-DED decoder against arbitrary (data, ecc)
// pairs: it must never panic, and whatever it returns must be
// self-consistent — re-encoding a word it calls clean or corrected must
// reproduce the returned check byte.
func FuzzDecodeWord(f *testing.F) {
	f.Add(uint64(0), uint8(0))
	f.Add(uint64(0xDEADBEEF), EncodeWord(0xDEADBEEF))
	f.Add(^uint64(0), uint8(0x7F))
	f.Fuzz(func(t *testing.T, data uint64, eccByte uint8) {
		got, gotECC, st := DecodeWord(data, eccByte)
		switch st {
		case OK, CorrectedData, CorrectedCheck:
			if EncodeWord(got) != gotECC {
				t.Fatalf("decoder returned inconsistent pair: data=%#x ecc=%#x status=%v",
					got, gotECC, st)
			}
		case Uncorrectable:
			// Nothing to check beyond not panicking.
		default:
			t.Fatalf("unknown status %v", st)
		}
	})
}

// FuzzDecodeLine does the same at line granularity.
func FuzzDecodeLine(f *testing.F) {
	var l Line
	l.SetWord(0, 0x123456789ABCDEF0)
	fp := EncodeLine(&l)
	f.Add(l[:], uint64(fp))
	f.Add(make([]byte, 64), uint64(0))
	f.Fuzz(func(t *testing.T, raw []byte, fpRaw uint64) {
		if len(raw) < LineSize {
			return
		}
		var line Line
		copy(line[:], raw)
		gotFP, st := DecodeLine(&line, Fingerprint(fpRaw))
		if st != Uncorrectable {
			if EncodeLine(&line) != gotFP {
				t.Fatalf("line decoder inconsistent: status %v", st)
			}
		}
	})
}
