package ecc_test

import (
	"fmt"

	"github.com/esdsim/esd/internal/ecc"
)

// Encoding a word and repairing a single-bit fault.
func ExampleDecodeWord() {
	data := uint64(0xDEADBEEF)
	check := ecc.EncodeWord(data)

	corrupted := data ^ (1 << 17) // cosmic ray
	repaired, _, status := ecc.DecodeWord(corrupted, check)

	fmt.Println(status, repaired == data)
	// Output:
	// corrected-data true
}

// The line fingerprint is the concatenation of the eight per-word ECC
// bytes: equal lines always share it, different lines almost always don't.
func ExampleEncodeLine() {
	var a, b ecc.Line
	copy(a[:], "identical content")
	copy(b[:], "identical content")

	var c ecc.Line
	copy(c[:], "different content")

	fmt.Println(ecc.EncodeLine(&a) == ecc.EncodeLine(&b))
	fmt.Println(ecc.EncodeLine(&a) == ecc.EncodeLine(&c))
	// Output:
	// true
	// false
}
