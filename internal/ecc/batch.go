// Batch codec entry points. Encoding a line is eight table-driven word
// encodes; encoding a coalesced batch of 4–8 lines through one call keeps
// the 2 KiB lane tables hot in L1 across all of them and gives the write
// path one call site per batch instead of per line.
package ecc

// EncodeLines computes the ECC fingerprint of each line into fps, the
// batch equivalent of calling EncodeLine on every line. fps must be at
// least as long as lines; extra entries are left untouched.
func EncodeLines(lines []*Line, fps []Fingerprint) {
	_ = fps[:len(lines)] // bounds check once, not per line
	for j, l := range lines {
		var fp uint64
		for i := 0; i < WordsPerLine; i++ {
			fp |= uint64(EncodeWord(l.Word(i))) << uint(8*i)
		}
		fps[j] = Fingerprint(fp)
	}
}

// DecodeLines validates and repairs each line in place given its stored
// fingerprint, the batch equivalent of calling DecodeLine on every line.
// fps is updated to the corrected fingerprints; statuses (which must be at
// least as long as lines) receives the worst per-word status of each line.
func DecodeLines(lines []*Line, fps []Fingerprint, statuses []Status) {
	_ = statuses[:len(lines)]
	_ = fps[:len(lines)]
	for j, l := range lines {
		fps[j], statuses[j] = DecodeLine(l, fps[j])
	}
}
