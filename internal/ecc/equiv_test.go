package ecc

import (
	"testing"
	"testing/quick"

	"github.com/esdsim/esd/internal/xrand"
	"github.com/esdsim/esd/internal/xrand/quicktest"
)

// These tests pin the table-driven kernels to the retained reference
// implementations (hammingChecksRef, encodeWordRef). The check function is
// linear over GF(2), so exhaustive per-lane agreement plus random
// multi-lane agreement proves the tables compute the same code.

func TestLaneTablesMatchReferenceExhaustively(t *testing.T) {
	for lane := 0; lane < 8; lane++ {
		for v := 0; v < 256; v++ {
			word := uint64(v) << uint(8*lane)
			if got, want := laneChecks[lane][v], hammingChecksRef(word); got != want {
				t.Fatalf("laneChecks[%d][%#x] = %#x, want %#x", lane, v, got, want)
			}
			if got, want := hammingChecks(word), hammingChecksRef(word); got != want {
				t.Fatalf("hammingChecks(%#x) = %#x, want %#x", word, got, want)
			}
		}
	}
}

func TestHammingChecksMatchReferenceOnSingleBits(t *testing.T) {
	for bit := 0; bit < 64; bit++ {
		w := uint64(1) << uint(bit)
		if hammingChecks(w) != hammingChecksRef(w) {
			t.Fatalf("bit %d: table/reference mismatch", bit)
		}
	}
	for _, w := range []uint64{0, ^uint64(0), 0xDEADBEEFCAFEBABE, 0x0123456789ABCDEF} {
		if hammingChecks(w) != hammingChecksRef(w) {
			t.Fatalf("%#x: table/reference mismatch", w)
		}
	}
}

func TestEncodeWordMatchesReferenceProperty(t *testing.T) {
	check := func(data uint64) bool {
		return EncodeWord(data) == encodeWordRef(data)
	}
	if err := quick.Check(check, quicktest.Config(t, 5000)); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeWordSyndromeMatchesReference(t *testing.T) {
	// The decoder's syndrome is hammingChecks(data) ^ storedECC; drive it
	// with reference-encoded words under random corruption and require the
	// same verdicts the reference check function would produce.
	r := xrand.New(7)
	for trial := 0; trial < 2000; trial++ {
		data := r.Uint64()
		eccByte := encodeWordRef(data)
		// Corrupt 0, 1 or 2 codeword bits.
		flips := r.Intn(3)
		cd, ce := data, eccByte
		for f := 0; f < flips; f++ {
			bit := r.Intn(72)
			if bit < 64 {
				cd ^= 1 << uint(bit)
			} else {
				ce ^= 1 << uint(bit-64)
			}
		}
		tableSyn := (hammingChecks(cd) ^ ce) & 0x7F
		refSyn := (hammingChecksRef(cd) ^ ce) & 0x7F
		if tableSyn != refSyn {
			t.Fatalf("syndrome mismatch: data=%#x flips=%d table=%#x ref=%#x",
				data, flips, tableSyn, refSyn)
		}
	}
}

func TestEncodeLineMatchesPerWordReference(t *testing.T) {
	r := xrand.New(8)
	for trial := 0; trial < 200; trial++ {
		var l Line
		for i := range l {
			l[i] = byte(r.Uint64())
		}
		var want uint64
		for i := 0; i < WordsPerLine; i++ {
			want |= uint64(encodeWordRef(l.Word(i))) << uint(8*i)
		}
		if got := uint64(EncodeLine(&l)); got != want {
			t.Fatalf("EncodeLine = %#x, reference = %#x", got, want)
		}
	}
}

// FuzzEncodeWordEquivalence pins the table-driven encoder to the reference
// encoder for arbitrary words, and requires the decoder to accept every
// clean (data, EncodeWord(data)) pair.
func FuzzEncodeWordEquivalence(f *testing.F) {
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(uint64(0xDEADBEEFCAFEBABE))
	f.Add(uint64(1))
	f.Fuzz(func(t *testing.T, data uint64) {
		got, want := EncodeWord(data), encodeWordRef(data)
		if got != want {
			t.Fatalf("EncodeWord(%#x) = %#x, reference = %#x", data, got, want)
		}
		d, e, st := DecodeWord(data, got)
		if st != OK || d != data || e != got {
			t.Fatalf("clean decode of %#x failed: status=%v", data, st)
		}
	})
}
