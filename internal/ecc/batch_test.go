package ecc

import (
	"testing"
	"testing/quick"

	"github.com/esdsim/esd/internal/xrand"
	"github.com/esdsim/esd/internal/xrand/quicktest"
)

func randLines(rng *xrand.Rand, n int) []*Line {
	lines := make([]*Line, n)
	for i := range lines {
		l := &Line{}
		for w := 0; w < WordsPerLine; w++ {
			l.SetWord(w, rng.Uint64())
		}
		lines[i] = l
	}
	return lines
}

// EncodeLines must agree with per-line EncodeLine for every batch size the
// write path forms (1..9 covers singletons, the coalescer's 4–8 sweet spot
// and one past it).
func TestEncodeLinesMatchesScalar(t *testing.T) {
	for size := 1; size <= 9; size++ {
		prop := func(seed uint64) bool {
			r := xrand.New(seed)
			lines := randLines(r, size)
			fps := make([]Fingerprint, size)
			EncodeLines(lines, fps)
			for i, l := range lines {
				if fps[i] != EncodeLine(l) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, quicktest.Config(t, 50)); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

// DecodeLines must agree with per-line DecodeLine, including on corrupted
// lines: corrected data, corrected fingerprint and status all match.
func TestDecodeLinesMatchesScalar(t *testing.T) {
	for size := 1; size <= 9; size++ {
		prop := func(seed uint64) bool {
			r := xrand.New(seed)
			lines := randLines(r, size)
			fps := make([]Fingerprint, size)
			EncodeLines(lines, fps)
			// Corrupt a strided subset: no error, single-bit, double-bit.
			for i, l := range lines {
				switch i % 3 {
				case 1:
					FlipBit(l, r.Intn(512))
				case 2:
					FlipBit(l, 0)
					FlipBit(l, 1)
				}
			}
			scalarLines := make([]*Line, size)
			scalarFPs := make([]Fingerprint, size)
			scalarSts := make([]Status, size)
			for i, l := range lines {
				cp := *l
				scalarLines[i] = &cp
				scalarFPs[i], scalarSts[i] = DecodeLine(&cp, fps[i])
			}
			statuses := make([]Status, size)
			DecodeLines(lines, fps, statuses)
			for i := range lines {
				if *lines[i] != *scalarLines[i] || fps[i] != scalarFPs[i] || statuses[i] != scalarSts[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, quicktest.Config(t, 30)); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

func TestEncodeLinesEmpty(t *testing.T) {
	EncodeLines(nil, nil) // must not panic
	DecodeLines(nil, nil, nil)
}

func BenchmarkEncodeLines8(b *testing.B) {
	b.ReportAllocs()
	lines := randLines(xrand.New(3), 8)
	fps := make([]Fingerprint, 8)
	b.SetBytes(8 * LineSize)
	for i := 0; i < b.N; i++ {
		EncodeLines(lines, fps)
	}
}
