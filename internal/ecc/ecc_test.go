package ecc

import (
	"testing"
	"testing/quick"

	"github.com/esdsim/esd/internal/xrand"
	"github.com/esdsim/esd/internal/xrand/quicktest"
)

func TestEncodeDecodeCleanWord(t *testing.T) {
	for _, data := range []uint64{0, 1, 0xFFFFFFFFFFFFFFFF, 0xDEADBEEFCAFEBABE, 1 << 63} {
		ecc := EncodeWord(data)
		got, gotECC, st := DecodeWord(data, ecc)
		if st != OK || got != data || gotECC != ecc {
			t.Errorf("clean decode of %#x: status=%v data=%#x ecc=%#x", data, st, got, gotECC)
		}
	}
}

func TestSingleDataBitErrorsAreCorrectedExhaustively(t *testing.T) {
	r := xrand.New(42)
	for trial := 0; trial < 50; trial++ {
		data := r.Uint64()
		ecc := EncodeWord(data)
		for bit := 0; bit < 64; bit++ {
			corrupted := data ^ 1<<uint(bit)
			got, gotECC, st := DecodeWord(corrupted, ecc)
			if st != CorrectedData {
				t.Fatalf("data=%#x bit %d: status %v, want corrected-data", data, bit, st)
			}
			if got != data {
				t.Fatalf("data=%#x bit %d: corrected to %#x", data, bit, got)
			}
			if gotECC != ecc {
				t.Fatalf("data=%#x bit %d: ECC altered to %#x", data, bit, gotECC)
			}
		}
	}
}

func TestSingleCheckBitErrorsAreCorrectedExhaustively(t *testing.T) {
	r := xrand.New(43)
	for trial := 0; trial < 50; trial++ {
		data := r.Uint64()
		ecc := EncodeWord(data)
		for bit := 0; bit < 8; bit++ {
			corrupted := ecc ^ 1<<uint(bit)
			got, gotECC, st := DecodeWord(data, corrupted)
			if st != CorrectedCheck {
				t.Fatalf("data=%#x ecc bit %d: status %v, want corrected-check", data, bit, st)
			}
			if got != data {
				t.Fatalf("data=%#x ecc bit %d: data altered to %#x", data, bit, got)
			}
			if gotECC != ecc {
				t.Fatalf("data=%#x ecc bit %d: ECC repaired to %#x, want %#x", data, bit, gotECC, ecc)
			}
		}
	}
}

func TestDoubleBitErrorsAreDetected(t *testing.T) {
	r := xrand.New(44)
	for trial := 0; trial < 200; trial++ {
		data := r.Uint64()
		ecc := EncodeWord(data)
		// Flip two distinct bits anywhere in the 72-bit codeword.
		a := r.Intn(72)
		b := r.Intn(72)
		for b == a {
			b = r.Intn(72)
		}
		cd, ce := data, ecc
		for _, bit := range []int{a, b} {
			if bit < 64 {
				cd ^= 1 << uint(bit)
			} else {
				ce ^= 1 << uint(bit-64)
			}
		}
		_, _, st := DecodeWord(cd, ce)
		if st != Uncorrectable {
			t.Fatalf("data=%#x bits %d,%d: status %v, want uncorrectable", data, a, b, st)
		}
	}
}

func TestDecodeWordPropertySingleFlipRoundTrips(t *testing.T) {
	check := func(data uint64, bitRaw uint8) bool {
		bit := int(bitRaw) % 72
		ecc := EncodeWord(data)
		cd, ce := data, ecc
		if bit < 64 {
			cd ^= 1 << uint(bit)
		} else {
			ce ^= 1 << uint(bit-64)
		}
		got, gotECC, st := DecodeWord(cd, ce)
		return got == data && gotECC == ecc && (st == CorrectedData || st == CorrectedCheck)
	}
	if err := quick.Check(check, quicktest.Config(t, 2000)); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintEqualLinesEqualFingerprints(t *testing.T) {
	check := func(seed uint64) bool {
		r := xrand.New(seed)
		var l Line
		for i := range l {
			l[i] = byte(r.Uint64())
		}
		l2 := l
		return EncodeLine(&l) == EncodeLine(&l2)
	}
	if err := quick.Check(check, quicktest.Config(t, 200)); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintDetectsChangedLines(t *testing.T) {
	// A single flipped bit must always change the fingerprint, because each
	// Hamming code detects (indeed corrects) any single-bit change.
	r := xrand.New(45)
	for trial := 0; trial < 100; trial++ {
		var l Line
		for i := range l {
			l[i] = byte(r.Uint64())
		}
		fp := EncodeLine(&l)
		bit := r.Intn(LineSize * 8)
		FlipBit(&l, bit)
		if EncodeLine(&l) == fp {
			t.Fatalf("single-bit change (bit %d) did not change fingerprint", bit)
		}
	}
}

func TestFingerprintCollisionsExist(t *testing.T) {
	// The fingerprint is 64 bits over 512-bit lines, so collisions must
	// exist; the paper's design depends on detecting them via byte compare.
	// Construct one directly: each word's code is linear, so XORing a
	// codeword of the code (data diff whose ECC diff is zero) would be
	// needed; easier and still meaningful: find two different lines with
	// equal per-word ECC by brute-forcing a small word population.
	seen := map[uint8]uint64{}
	var collisionFound bool
	for w := uint64(0); w < 4096; w++ {
		e := EncodeWord(w)
		if prev, ok := seen[e]; ok && prev != w {
			// Build two lines differing only in word 0.
			var a, b Line
			a.SetWord(0, prev)
			b.SetWord(0, w)
			if EncodeLine(&a) == EncodeLine(&b) && a != b {
				collisionFound = true
				break
			}
		}
		seen[e] = w
	}
	if !collisionFound {
		t.Fatal("expected to construct an ECC fingerprint collision from small words")
	}
}

func TestDecodeLineCorrectsOneFlipPerWord(t *testing.T) {
	r := xrand.New(46)
	for trial := 0; trial < 50; trial++ {
		var l Line
		for i := range l {
			l[i] = byte(r.Uint64())
		}
		orig := l
		fp := EncodeLine(&l)
		// Flip exactly one bit in each of the eight words.
		for w := 0; w < WordsPerLine; w++ {
			FlipBit(&l, w*64+r.Intn(64))
		}
		gotFP, st := DecodeLine(&l, fp)
		if st != CorrectedData {
			t.Fatalf("status %v, want corrected-data", st)
		}
		if l != orig {
			t.Fatal("line not fully repaired")
		}
		if gotFP != fp {
			t.Fatalf("fingerprint changed by repair: %#x != %#x", gotFP, fp)
		}
	}
}

func TestDecodeLineDetectsDoubleError(t *testing.T) {
	var l Line
	l.SetWord(3, 0x123456789ABCDEF0)
	fp := EncodeLine(&l)
	FlipBit(&l, 3*64+5)
	FlipBit(&l, 3*64+9)
	_, st := DecodeLine(&l, fp)
	if st != Uncorrectable {
		t.Fatalf("status %v, want uncorrectable", st)
	}
}

func TestWordAccessorsRoundTrip(t *testing.T) {
	check := func(vals [8]uint64) bool {
		var l Line
		for i, v := range vals {
			l.SetWord(i, v)
		}
		for i, v := range vals {
			if l.Word(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, quicktest.Config(t, 200)); err != nil {
		t.Fatal(err)
	}
}

func TestIsZero(t *testing.T) {
	var l Line
	if !l.IsZero() {
		t.Fatal("zero line reported non-zero")
	}
	l[63] = 1
	if l.IsZero() {
		t.Fatal("non-zero line reported zero")
	}
}

func TestZeroLineFingerprintIsZero(t *testing.T) {
	// EncodeWord(0) = 0, so the all-zero line has fingerprint 0. Several
	// workloads are dominated by zero lines; this property makes them all
	// collide onto one EFIT entry, exactly as in the paper.
	var l Line
	if fp := EncodeLine(&l); fp != 0 {
		t.Fatalf("zero line fingerprint = %#x, want 0", fp)
	}
}

func TestStatusString(t *testing.T) {
	if OK.String() != "ok" || Uncorrectable.String() != "uncorrectable" {
		t.Fatal("unexpected Status strings")
	}
	if Status(99).String() != "Status(99)" {
		t.Fatal("unknown status string")
	}
}

func BenchmarkEncodeWord(b *testing.B) {
	b.ReportAllocs()
	var sink uint8
	for i := 0; i < b.N; i++ {
		sink = EncodeWord(uint64(i) * 0x9E3779B97F4A7C15)
	}
	_ = sink
}

func BenchmarkEncodeLine(b *testing.B) {
	b.ReportAllocs()
	var l Line
	for i := range l {
		l[i] = byte(i * 37)
	}
	b.SetBytes(LineSize)
	var sink Fingerprint
	for i := 0; i < b.N; i++ {
		sink = EncodeLine(&l)
	}
	_ = sink
}

func BenchmarkDecodeLineClean(b *testing.B) {
	b.ReportAllocs()
	var l Line
	for i := range l {
		l[i] = byte(i * 31)
	}
	fp := EncodeLine(&l)
	b.SetBytes(LineSize)
	for i := 0; i < b.N; i++ {
		DecodeLine(&l, fp)
	}
}
