// Package ecc implements the (72,64) Hamming SEC-DED error-correcting code
// that the ESD paper piggybacks on for deduplication fingerprints.
//
// Commodity ECC memory protects each 8-byte word with 8 check bits: seven
// Hamming parity bits (single-error correction) plus one overall parity bit
// (double-error detection). A 64-byte cache line therefore carries
// 8 x 8 = 64 bits of ECC. ESD reuses those 64 bits — which the memory
// controller computes anyway on every LLC eviction — as a zero-cost
// fingerprint: if two lines have different ECC words they are definitively
// different; if the ECC words match the lines are *probably* equal and a
// byte-by-byte comparison resolves the collision.
//
// This is a complete, functional codec: it corrects any single-bit error
// and detects any double-bit error in a 72-bit codeword, and those
// guarantees are exercised by exhaustive and property-based tests.
package ecc

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// LineSize is the cache-line size in bytes; fixed at 64 throughout the
// system, matching the paper's configuration.
const LineSize = 64

// WordSize is the protected word size in bytes.
const WordSize = 8

// WordsPerLine is the number of ECC words per cache line.
const WordsPerLine = LineSize / WordSize

// Status reports the outcome of decoding one word.
type Status int

const (
	// OK means the word and its check bits were consistent.
	OK Status = iota
	// CorrectedData means a single flipped data bit was repaired.
	CorrectedData
	// CorrectedCheck means a single flipped check bit was repaired; the
	// data itself was intact.
	CorrectedCheck
	// Uncorrectable means a double-bit (or detectable multi-bit) error was
	// found and could not be repaired.
	Uncorrectable
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case CorrectedData:
		return "corrected-data"
	case CorrectedCheck:
		return "corrected-check"
	case Uncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Codeword geometry. Positions 1..71 hold the Hamming code: check bits at
// the seven power-of-two positions (1, 2, 4, 8, 16, 32, 64) and the 64 data
// bits at the remaining positions. The overall (DED) parity bit sits
// conceptually at position 0 and covers every other bit.
var (
	// dataPos[i] is the codeword position of data bit i.
	dataPos [64]int
	// posData[p] is the data bit stored at codeword position p, or -1.
	posData [72]int
	// laneChecks[k][v] is the XOR of the check contributions of every set
	// bit of byte value v placed in byte lane k (data bits 8k..8k+7). The
	// check function is linear over GF(2), so the checks of a word are the
	// XOR of its eight per-lane table entries — one load per byte instead
	// of the 64-iteration bit loop retained as hammingChecksRef.
	laneChecks [8][256]uint8
)

func init() {
	for i := range posData {
		posData[i] = -1
	}
	bit := 0
	for pos := 1; pos <= 71 && bit < 64; pos++ {
		if pos&(pos-1) == 0 { // power of two: check-bit slot
			continue
		}
		dataPos[bit] = pos
		posData[pos] = bit
		bit++
	}
	if bit != 64 {
		panic("ecc: internal geometry error")
	}
	for lane := 0; lane < 8; lane++ {
		for v := 0; v < 256; v++ {
			laneChecks[lane][v] = hammingChecksRef(uint64(v) << uint(8*lane))
		}
	}
}

func parity64(x uint64) uint8 {
	return uint8(bits.OnesCount64(x) & 1)
}

// hammingChecksRef is the per-bit reference implementation of the check
// function: check bit j (j in 0..6) is the XOR of all data bits whose
// codeword position has bit j set. It seeds the lane tables and anchors the
// exhaustive/fuzz equivalence tests that pin hammingChecks to it; the hot
// path never calls it.
func hammingChecksRef(data uint64) uint8 {
	var checks uint8
	for i := 0; i < 64; i++ {
		if data>>uint(i)&1 == 1 {
			checks ^= uint8(dataPos[i] & 0x7F)
		}
	}
	return checks
}

// hammingChecks computes the seven Hamming check bits over the 64 data bits
// as eight table lookups, one per byte lane.
func hammingChecks(data uint64) uint8 {
	return laneChecks[0][byte(data)] ^
		laneChecks[1][byte(data>>8)] ^
		laneChecks[2][byte(data>>16)] ^
		laneChecks[3][byte(data>>24)] ^
		laneChecks[4][byte(data>>32)] ^
		laneChecks[5][byte(data>>40)] ^
		laneChecks[6][byte(data>>48)] ^
		laneChecks[7][byte(data>>56)]
}

// EncodeWord returns the 8-bit ECC for an 8-byte word: seven Hamming check
// bits in bits 0..6 and the overall parity bit in bit 7.
func EncodeWord(data uint64) uint8 {
	checks := hammingChecks(data)
	// Overall parity covers data bits and the seven check bits.
	overall := parity64(data) ^ parity8(checks)
	return checks | overall<<7
}

func parity8(x uint8) uint8 {
	return uint8(bits.OnesCount8(x) & 1)
}

// encodeWordRef composes the retained reference kernels (bit-loop checks,
// shift-chain parity) into a full reference encoder for equivalence tests.
func encodeWordRef(data uint64) uint8 {
	checks := hammingChecksRef(data)
	p := data ^ uint64(checks)
	p ^= p >> 32
	p ^= p >> 16
	p ^= p >> 8
	p ^= p >> 4
	p ^= p >> 2
	p ^= p >> 1
	return checks | uint8(p&1)<<7
}

// DecodeWord validates and, when possible, repairs a word given its stored
// ECC byte. It returns the (possibly corrected) data, the (possibly
// corrected) ECC byte, and the decode status.
func DecodeWord(data uint64, storedECC uint8) (uint64, uint8, Status) {
	checks := hammingChecks(data)
	syndrome := (checks ^ storedECC) & 0x7F
	// Recompute the overall parity across everything received, including
	// the stored overall bit; zero means overall parity holds.
	overallErr := parity64(data) ^ parity8(storedECC)

	switch {
	case syndrome == 0 && overallErr == 0:
		return data, storedECC, OK
	case syndrome == 0 && overallErr == 1:
		// Only the overall parity bit itself flipped.
		return data, storedECC ^ 0x80, CorrectedCheck
	case overallErr == 1:
		// Single-bit error at codeword position == syndrome.
		pos := int(syndrome)
		if pos > 71 {
			return data, storedECC, Uncorrectable
		}
		if pos&(pos-1) == 0 {
			// A Hamming check bit flipped; data is intact.
			var j uint
			for 1<<j != pos {
				j++
			}
			return data, storedECC ^ 1<<j, CorrectedCheck
		}
		bit := posData[pos]
		return data ^ 1<<uint(bit), storedECC, CorrectedData
	default:
		// syndrome != 0 with intact overall parity: double-bit error.
		return data, storedECC, Uncorrectable
	}
}

// Line is a 64-byte cache line.
type Line [LineSize]byte

// IsZero reports whether the line is all zero bytes.
func (l *Line) IsZero() bool {
	for _, b := range l {
		if b != 0 {
			return false
		}
	}
	return true
}

// Word extracts the i-th 8-byte word (little-endian), i in [0, 8).
func (l *Line) Word(i int) uint64 {
	off := i * WordSize
	return binary.LittleEndian.Uint64(l[off : off+WordSize])
}

// SetWord stores w into the i-th 8-byte word (little-endian).
func (l *Line) SetWord(i int, w uint64) {
	off := i * WordSize
	binary.LittleEndian.PutUint64(l[off:off+WordSize], w)
}

// Fingerprint is the 64-bit ECC word of a cache line: the concatenation of
// the eight per-word ECC bytes. Equal lines always have equal fingerprints;
// unequal lines usually, but not always, have unequal fingerprints.
type Fingerprint uint64

// EncodeLine computes the ECC fingerprint of a line.
func EncodeLine(l *Line) Fingerprint {
	var fp uint64
	for i := 0; i < WordsPerLine; i++ {
		fp |= uint64(EncodeWord(l.Word(i))) << uint(8*i)
	}
	return Fingerprint(fp)
}

// ECCByte returns the ECC byte protecting word i of the fingerprinted line.
func (f Fingerprint) ECCByte(i int) uint8 { return uint8(f >> uint(8*i)) }

// DecodeLine validates and repairs a line in place given its stored
// fingerprint. It returns the possibly corrected fingerprint and the worst
// per-word status encountered (Uncorrectable > CorrectedData >
// CorrectedCheck > OK).
func DecodeLine(l *Line, stored Fingerprint) (Fingerprint, Status) {
	var out uint64
	worst := OK
	for i := 0; i < WordsPerLine; i++ {
		data, eccByte, st := DecodeWord(l.Word(i), stored.ECCByte(i))
		l.SetWord(i, data)
		out |= uint64(eccByte) << uint(8*i)
		if st > worst {
			worst = st
		}
	}
	return Fingerprint(out), worst
}

// FlipBit flips bit (0..511) of the line; a test and fault-injection helper.
func FlipBit(l *Line, bit int) {
	l[bit/8] ^= 1 << uint(bit%8)
}
