// Package media abstracts what the memory controller writes lines to.
// The ESD paper evaluates against a single PCM device (package nvm); the
// roadmap's hybrid-tier (CARAM) and compression (L2C2) directions both
// need to interpose on the media path without the schemes noticing, so
// the controller talks to this Backend interface and nvm.Device becomes
// one implementation of it. The other implementation here is Hybrid: a
// volatile DRAM buffer in front of PCM with content-aware placement and
// a write-ahead crash-consistency protocol (hybrid.go).
package media

import (
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/nvm"
	"github.com/esdsim/esd/internal/sim"
)

// Backend is the media layer a scheme's Env writes through: timed data
// and metadata accesses, the functional store, and the wear/health/stats
// surface the observability stack scrapes. nvm.Device satisfies it
// directly; composed backends (Hybrid) forward the health surface to the
// durable device they wrap.
//
// Method contracts follow nvm.Device: the timed and functional accessors
// are single-simulation-thread only, while Wear, WearOf, HealthSummary
// and HealthSnapshot are safe to call concurrently with that thread.
type Backend interface {
	// Read performs a timed demand read of line addr, returning the current
	// content (ok reports whether the line was ever written).
	Read(addr uint64, now sim.Time) (ecc.Line, bool, nvm.ReadResult)
	// ReadMeta performs a timed metadata read: full timing/energy/wear
	// accounting, no functional content (see nvm.Device.ReadMeta).
	ReadMeta(addr uint64, now sim.Time) nvm.ReadResult
	// Write performs a timed posted write of line to addr. When the write
	// returns, the content is durable: a crash at any later point must not
	// lose it (nvm writes into the persistent device directly; Hybrid
	// write-ahead-persists before installing volatile-side).
	Write(addr uint64, line *ecc.Line, now sim.Time) nvm.WriteResult
	// WriteMeta performs a timed metadata write (no functional content).
	WriteMeta(addr uint64, now sim.Time) nvm.WriteResult

	// Load returns the functional content of addr without timing effects.
	Load(addr uint64) (ecc.Line, bool)
	// Store updates the functional content of addr without timing effects.
	Store(addr uint64, line ecc.Line)

	// Flush drains all queued media work and returns the idle time.
	Flush(now sim.Time) sim.Time
	// SyncHealth publishes staged health accounting (simulation thread).
	SyncHealth()

	// Lines returns the addressable capacity in cache lines.
	Lines() int64
	// LinesWritten reports how many distinct lines hold data.
	LinesWritten() int
	// QueuedWrites reports the writes currently queued in the media.
	QueuedWrites() int
	// Utilization reports mean bank utilization over [0, horizon].
	Utilization(horizon sim.Time) float64

	// Wear, WearOf, HealthSummary and HealthSnapshot expose the endurance
	// and health surface of the durable device (concurrency-safe).
	Wear() nvm.WearSummary
	WearOf(addr uint64) uint64
	HealthSummary() nvm.HealthSummary
	HealthSnapshot() nvm.HealthSnapshot

	// MediaStats returns the activity counters (simulation thread).
	MediaStats() nvm.Stats
	// SetProbe installs the media event probe used by telemetry.
	SetProbe(p nvm.Probe)
}

// nvm.Device is the canonical Backend.
var _ Backend = (*nvm.Device)(nil)
