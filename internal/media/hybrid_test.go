package media

import (
	"strings"
	"testing"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/dram"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/nvm"
	"github.com/esdsim/esd/internal/sim"
)

// testHybrid builds a tiny tier: a 1 MiB PCM device behind a DRAM buffer
// of dramLines lines, WAL at the top of the PCM address space.
func testHybrid(t *testing.T, dramLines int64) *Hybrid {
	t.Helper()
	pcfg := config.Default().PCM
	pcfg.CapacityBytes = 1 << 20
	pcm := nvm.New(pcfg)
	mcfg := config.Media{
		DRAM: config.DRAM{
			CapacityBytes: dramLines * config.CacheLineSize,
			Banks:         2,
			ReadLatency:   15 * sim.Nanosecond,
			WriteLatency:  15 * sim.Nanosecond,
			BusLatency:    4 * sim.Nanosecond,
			ReadEnergy:    0.17,
			WriteEnergy:   0.39,
		},
		PromoteThreshold: 2,
		RefBoost:         2,
		DecayEvery:       1 << 10,
		WALLines:         8,
	}
	walBase := uint64(pcm.Lines()) - 8
	return NewHybrid(pcm, dram.New(mcfg.DRAM), mcfg, walBase, 8)
}

func line(w uint64) ecc.Line {
	var l ecc.Line
	l.SetWord(0, w)
	return l
}

// TestColdWriteGoesToPCM: a first-touch write is below the promotion
// threshold and must land on its PCM home, not in DRAM.
func TestColdWriteGoesToPCM(t *testing.T) {
	h := testHybrid(t, 8)
	l := line(0xA)
	h.Write(7, &l, 0)
	if got, ok := h.PCM().Load(7); !ok || got != l {
		t.Fatal("cold write did not reach the PCM home")
	}
	st := h.Snapshot()
	if st.ResidentLines != 0 || st.WALAppends != 0 {
		t.Fatalf("cold write touched the DRAM tier: %+v", st)
	}
}

// TestHotWritePromotesViaWAL: once a line crosses the promotion threshold
// its writes WAL-persist and install in DRAM, absorbing the PCM home
// write; Load must still return the newest content.
func TestHotWritePromotesViaWAL(t *testing.T) {
	h := testHybrid(t, 8)
	l1, l2 := line(1), line(2)
	h.Write(3, &l1, 0)   // heat 1 -> PCM
	h.Write(3, &l2, 100) // heat 2 >= threshold -> WAL + DRAM
	st := h.Snapshot()
	if st.WALAppends != 1 || st.AbsorbedWrites != 1 || st.ResidentLines != 1 || st.DirtyLines != 1 {
		t.Fatalf("hot write did not take the WAL+DRAM path: %+v", st)
	}
	if got, ok := h.Load(3); !ok || got != l2 {
		t.Fatal("Load does not see the DRAM-resident content")
	}
	// The PCM home still holds the stale first write — durability of the
	// newer content is carried by the WAL until demotion or crash replay.
	if got, _ := h.PCM().Load(3); got != l1 {
		t.Fatal("PCM home unexpectedly rewritten by an absorbed write")
	}
	if bad := h.Audit(); len(bad) != 0 {
		t.Fatalf("audit after promotion: %v", bad)
	}
}

// TestReadPromotesClean: repeated reads of a PCM line promote it with a
// clean fill; a clean resident must match its home byte for byte.
func TestReadPromotesClean(t *testing.T) {
	h := testHybrid(t, 8)
	h.Store(5, line(0xBEEF))
	h.Read(5, 0)
	h.Read(5, 100)
	st := h.Snapshot()
	if st.ResidentLines != 1 || st.DirtyLines != 0 {
		t.Fatalf("read heat did not promote cleanly: %+v", st)
	}
	if _, hit, _ := h.Read(5, 200); !hit {
		t.Fatal("promoted line not readable")
	}
	if h.Snapshot().DRAMHits == 0 {
		t.Fatal("resident read not served from DRAM")
	}
	if bad := h.Audit(); len(bad) != 0 {
		t.Fatalf("audit after clean promotion: %v", bad)
	}
}

// TestDemotionWritesBackDirty: overflowing the buffer demotes LRU victims;
// dirty victims must be written back to their PCM homes, not dropped.
func TestDemotionWritesBackDirty(t *testing.T) {
	h := testHybrid(t, 2)
	want := map[uint64]ecc.Line{}
	now := sim.Time(0)
	for addr := uint64(0); addr < 6; addr++ {
		l := line(0x100 + addr)
		h.Write(addr, &l, now)
		now += 100
		l2 := line(0x200 + addr)
		h.Write(addr, &l2, now) // crosses threshold -> resident dirty
		now += 100
		want[addr] = l2
	}
	st := h.Snapshot()
	if st.Demotions == 0 || st.Writebacks == 0 {
		t.Fatalf("buffer overflow produced no demotions: %+v", st)
	}
	for addr, w := range want {
		if got, ok := h.Load(addr); !ok || got != w {
			t.Fatalf("line %d lost across demotion", addr)
		}
	}
	if bad := h.Audit(); len(bad) != 0 {
		t.Fatalf("audit after demotion churn: %v", bad)
	}
}

// TestCrashReplaysDirtyResidents: a crash must replay every dirty resident
// into its PCM home before dropping the buffer — no acknowledged write is
// lost.
func TestCrashReplaysDirtyResidents(t *testing.T) {
	h := testHybrid(t, 8)
	l1, l2 := line(7), line(8)
	h.Write(1, &l1, 0)
	h.Write(1, &l2, 100) // resident dirty, home still holds l1
	h.Crash()
	if got, ok := h.PCM().Load(1); !ok || got != l2 {
		t.Fatal("crash lost the acknowledged (WAL-persisted) write")
	}
	st := h.Snapshot()
	if st.ResidentLines != 0 || st.DirtyLines != 0 {
		t.Fatalf("crash left volatile state behind: %+v", st)
	}
	if got, ok := h.Load(1); !ok || got != l2 {
		t.Fatal("post-crash read lost the write")
	}
}

// TestCrashAtWALPersisted injects the crash between the WAL persist and
// the DRAM install: the content exists only as the WAL tail, and recovery
// must still deliver it.
func TestCrashAtWALPersisted(t *testing.T) {
	h := testHybrid(t, 8)
	l1, l2 := line(0xAA), line(0xBB)
	h.Write(9, &l1, 0)
	crashed := false
	h.OnStep = func(s Step) {
		if s == StepWALPersisted && !crashed {
			crashed = true
			h.Crash()
		}
	}
	h.Write(9, &l2, 100)
	if !crashed {
		t.Fatal("StepWALPersisted never fired")
	}
	if got, ok := h.PCM().Load(9); !ok || got != l2 {
		t.Fatal("WAL tail not replayed: acknowledged write lost")
	}
	if bad := h.Audit(); len(bad) != 0 {
		t.Fatalf("audit after mid-protocol crash: %v", bad)
	}
}

// TestRefHintPromotes: the dedup reference signal alone must promote a
// line (clean fill from its home) once it crosses the threshold.
func TestRefHintPromotes(t *testing.T) {
	h := testHybrid(t, 8)
	h.Store(4, line(0xF00))
	h.RefHint(4, 0)
	st := h.Snapshot()
	if st.ResidentLines != 1 || st.DirtyLines != 0 {
		t.Fatalf("RefBoost=2 >= threshold=2 did not promote: %+v", st)
	}
	if bad := h.Audit(); len(bad) != 0 {
		t.Fatalf("audit after hint promotion: %v", bad)
	}
}

// TestAuditCatchesDivergence is the audit's own acceptance test: corrupt a
// clean resident's DRAM copy behind the tier's back and the audit must
// flag the divergence from the PCM home.
func TestAuditCatchesDivergence(t *testing.T) {
	h := testHybrid(t, 8)
	h.Store(2, line(1))
	h.Read(2, 0)
	h.Read(2, 100) // clean resident
	h.DRAM().Store(2, line(0xBAD))
	bad := h.Audit()
	if len(bad) == 0 {
		t.Fatal("corrupted clean resident went undetected")
	}
	if !strings.Contains(strings.Join(bad, "\n"), "diverges") {
		t.Fatalf("audit caught something else: %v", bad)
	}
}

// TestStepString pins the step names used in crash-table failure reports.
func TestStepString(t *testing.T) {
	if StepWALPersisted.String() != "wal-persisted" || StepDRAMInstalled.String() != "dram-installed" {
		t.Fatal("step names changed")
	}
	if Step(99).String() != "unknown-hybrid-step" {
		t.Fatal("unknown step name changed")
	}
}

// TestHitRate pins the rate arithmetic including the zero-traffic case.
func TestHitRate(t *testing.T) {
	if (HybridStats{}).HitRate() != 0 {
		t.Fatal("zero-traffic hit rate not 0")
	}
	if got := (HybridStats{DRAMHits: 3, DRAMMisses: 1}).HitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", got)
	}
}

// TestMediaStatsFoldsDRAMEnergy: the merged media stats must include the
// DRAM buffer's energy while keeping Reads/Writes PCM-only (they feed
// wear interpretation).
func TestMediaStatsFoldsDRAMEnergy(t *testing.T) {
	h := testHybrid(t, 8)
	l := line(1)
	h.Write(0, &l, 0)
	h.Write(0, &l, 100) // DRAM install
	st := h.MediaStats()
	pcmOnly := h.PCM().MediaStats()
	if st.MediaEnergy <= pcmOnly.MediaEnergy {
		t.Fatal("DRAM energy not folded into MediaEnergy")
	}
	if st.Writes != pcmOnly.Writes {
		t.Fatal("DRAM writes leaked into the PCM wear counters")
	}
}
