package media

import (
	"fmt"
	"sync/atomic"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/dram"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/nvm"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/sparse"
)

// Step names an intermediate point inside the hybrid write protocol where
// a crash is architecturally possible. The memory controller maps these
// onto its StepPoint crash-injection hook so the checker's crash tables
// can fail the system exactly between the protocol's two halves.
type Step uint8

const (
	// StepWALPersisted fires after the write-ahead PCM persist but before
	// the DRAM install: the write is already durable (the WAL tail carries
	// it) yet no volatile copy exists.
	StepWALPersisted Step = iota
	// StepDRAMInstalled fires after the DRAM install but before the caller
	// resumes (AMT/refcount updates happen after Write returns): the line
	// is dirty volatile-side and durable only through the WAL.
	StepDRAMInstalled
)

// String names the step for failure reports.
func (s Step) String() string {
	switch s {
	case StepWALPersisted:
		return "wal-persisted"
	case StepDRAMInstalled:
		return "dram-installed"
	default:
		return "unknown-hybrid-step"
	}
}

// HybridStats is the hybrid tier's activity snapshot. All fields are
// maintained with atomics, so Snapshot is safe to call from scrape
// goroutines while the simulation thread runs.
type HybridStats struct {
	// DRAMHits / DRAMMisses classify timed data reads by which tier
	// served them.
	DRAMHits   uint64
	DRAMMisses uint64
	// Promotions counts lines installed into DRAM (by write heat, read
	// heat, or a duplicate-reference hint); Demotions counts LRU
	// evictions back out. Writebacks is the dirty subset of demotions —
	// each one cost a PCM home write at eviction time.
	Promotions uint64
	Demotions  uint64
	Writebacks uint64
	// WALAppends counts write-ahead persists; every acknowledged write to
	// a DRAM-resident line did exactly one before installing.
	WALAppends uint64
	// AbsorbedWrites counts data writes served by DRAM instead of a PCM
	// home write — the wear the hot lines were spared.
	AbsorbedWrites uint64
	// CapacityLines / ResidentLines / DirtyLines describe the buffer:
	// capacity, current occupancy, and how many residents hold content
	// newer than their PCM home.
	CapacityLines int64
	ResidentLines int64
	DirtyLines    int64
}

// HitRate returns the DRAM fraction of timed data reads.
func (s HybridStats) HitRate() float64 {
	total := s.DRAMHits + s.DRAMMisses
	if total == 0 {
		return 0
	}
	return float64(s.DRAMHits) / float64(total)
}

// resident is one line's entry in the DRAM residency index, threaded on
// an intrusive LRU list (head = most recent).
type resident struct {
	addr       uint64
	dirty      bool
	prev, next *resident
}

// Hybrid is a content-aware DRAM/PCM tier (CARAM, arxiv 2007.13661): hot
// and duplicate-heavy lines live in a small volatile DRAM buffer, cold
// uniques in PCM. Placement is driven by a per-line heat counter — +1
// per access, +RefBoost per duplicate-reference hint from the dedup
// engine, halved every DecayEvery accesses — and an LRU over the
// resident set for demotion.
//
// Crash consistency: DRAM is volatile, so every write that lands
// volatile-side first appends to a rotating write-ahead log in PCM
// (timed; the caller's acknowledgement comes from this persist), and
// only then installs into DRAM. Dirty residents are therefore always
// recoverable; Crash replays them (and the in-flight WAL tail) into
// their PCM homes before dropping the buffer, so a crash never loses an
// acknowledged write. Clean residents (promoted on read) match their PCM
// home by construction and just vanish.
//
// The wear payoff: a line written N times while resident costs N WAL
// appends spread round-robin over WALLines log lines plus at most one
// home writeback at demotion, instead of N writes concentrated on its
// home line.
type Hybrid struct {
	pcm  *nvm.Device
	dram *dram.Device
	cfg  config.Media

	capacity int
	res      map[uint64]*resident
	head     *resident // MRU
	tail     *resident // LRU

	// heat packs (epoch<<32 | heat) per line; decay is lazy (applied on
	// next touch by right-shifting per elapsed epoch).
	heat     sparse.Map[uint64]
	epoch    uint32
	accesses int

	// Rotating write-ahead log inside the PCM metadata region.
	walBase  uint64
	walLines uint64
	walSeq   uint64

	// pending is the WAL tail: content persisted by the last write-ahead
	// append but possibly not yet installed in DRAM. One entry suffices —
	// the simulation thread runs one write at a time.
	pendingAddr uint64
	pendingLine ecc.Line
	pendingOK   bool

	// OnStep, when non-nil, fires at each crash-injection Step. The hook
	// may crash the whole scheme reentrantly (that is its purpose), so the
	// write path re-resolves all residency state after each call.
	OnStep func(Step)

	hits       atomic.Uint64
	misses     atomic.Uint64
	promos     atomic.Uint64
	demos      atomic.Uint64
	writebacks atomic.Uint64
	walAppends atomic.Uint64
	absorbed   atomic.Uint64
	residentN  atomic.Int64
	dirtyN     atomic.Int64
}

// NewHybrid builds the hybrid tier over pcm with a fresh DRAM buffer.
// The rotating WAL occupies [walBase, walBase+walLines) in pcm's address
// space — callers place it inside the metadata region so it never
// collides with data homes. cfg must be normalized (config.Media with
// all fields positive); memctrl's EnableHybridMedia does that.
func NewHybrid(pcm *nvm.Device, dramDev *dram.Device, cfg config.Media, walBase, walLines uint64) *Hybrid {
	if walLines == 0 {
		panic("media: hybrid needs a non-empty WAL region")
	}
	capacity := int(dramDev.Lines())
	if capacity < 1 {
		capacity = 1
	}
	h := &Hybrid{
		pcm:      pcm,
		dram:     dramDev,
		cfg:      cfg,
		capacity: capacity,
		res:      make(map[uint64]*resident),
		walBase:  walBase,
		walLines: walLines,
	}
	return h
}

// PCM returns the durable device behind the buffer.
func (h *Hybrid) PCM() *nvm.Device { return h.pcm }

// DRAM returns the volatile buffer device.
func (h *Hybrid) DRAM() *dram.Device { return h.dram }

// Snapshot returns the current tier statistics (safe concurrently with
// the simulation thread).
func (h *Hybrid) Snapshot() HybridStats {
	return HybridStats{
		DRAMHits:       h.hits.Load(),
		DRAMMisses:     h.misses.Load(),
		Promotions:     h.promos.Load(),
		Demotions:      h.demos.Load(),
		Writebacks:     h.writebacks.Load(),
		WALAppends:     h.walAppends.Load(),
		AbsorbedWrites: h.absorbed.Load(),
		CapacityLines:  int64(h.capacity),
		ResidentLines:  h.residentN.Load(),
		DirtyLines:     h.dirtyN.Load(),
	}
}

func (h *Hybrid) step(s Step) {
	if h.OnStep != nil {
		h.OnStep(s)
	}
}

// bump adds amt heat to addr after applying lazy epoch decay, advancing
// the epoch every DecayEvery accesses, and returns the effective heat.
func (h *Hybrid) bump(addr uint64, amt int) int {
	h.accesses++
	if h.accesses >= h.cfg.DecayEvery {
		h.accesses = 0
		h.epoch++
	}
	packed := h.heat.Load(addr)
	e, v := uint32(packed>>32), int(uint32(packed))
	if d := h.epoch - e; d > 0 {
		if d > 31 {
			v = 0
		} else {
			v >>= d
		}
	}
	v += amt
	const heatCap = 1 << 20
	if v > heatCap {
		v = heatCap
	}
	h.heat.Set(addr, uint64(h.epoch)<<32|uint64(uint32(v)))
	return v
}

// --- LRU index ---

func (h *Hybrid) unlink(n *resident) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		h.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		h.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (h *Hybrid) pushFront(n *resident) {
	n.next = h.head
	if h.head != nil {
		h.head.prev = n
	}
	h.head = n
	if h.tail == nil {
		h.tail = n
	}
}

func (h *Hybrid) touch(n *resident) {
	if h.head == n {
		return
	}
	h.unlink(n)
	h.pushFront(n)
}

func (h *Hybrid) insert(addr uint64) *resident {
	n := &resident{addr: addr}
	h.res[addr] = n
	h.pushFront(n)
	h.residentN.Add(1)
	h.promos.Add(1)
	return n
}

// ensureRoom demotes LRU victims until addr could be inserted. Dirty
// victims cost a timed PCM home writeback at `now`; clean victims match
// their home already and evict for free.
func (h *Hybrid) ensureRoom(addr uint64, now sim.Time) {
	if h.res[addr] != nil {
		return
	}
	for len(h.res) >= h.capacity && h.tail != nil {
		v := h.tail
		h.unlink(v)
		delete(h.res, v.addr)
		h.residentN.Add(-1)
		if v.dirty {
			h.dirtyN.Add(-1)
			if line, ok := h.dram.Load(v.addr); ok {
				h.pcm.Write(v.addr, &line, now)
			}
			h.writebacks.Add(1)
		}
		h.dram.Evict(v.addr)
		h.demos.Add(1)
	}
}

// installClean promotes addr with content equal to its PCM home: a timed
// DRAM fill, no WAL needed (losing a clean resident loses nothing).
func (h *Hybrid) installClean(addr uint64, line *ecc.Line, now sim.Time) {
	h.ensureRoom(addr, now)
	h.dram.Write(addr, line, now)
	h.insert(addr)
}

// walAddr returns the next rotating write-ahead log line.
func (h *Hybrid) walAddr() uint64 {
	a := h.walBase + h.walSeq%h.walLines
	h.walSeq++
	return a
}

// installWAL is the durable write protocol for a DRAM-bound line:
//
//  1. stage the content as the WAL tail,
//  2. timed write-ahead persist to the rotating PCM log (the caller's
//     acknowledgement — the write is durable from here on),
//  3. timed DRAM install, marking the resident dirty.
//
// Crash-injection steps fire between 2 and 3 and after 3; because a step
// hook may crash the scheme reentrantly (rebuilding every index this
// method was mid-flight through), residency is re-resolved after each.
func (h *Hybrid) installWAL(addr uint64, line *ecc.Line, now sim.Time) nvm.WriteResult {
	h.ensureRoom(addr, now)
	h.pendingAddr, h.pendingLine, h.pendingOK = addr, *line, true
	wr := h.pcm.WriteMeta(h.walAddr(), now)
	h.walAppends.Add(1)
	h.step(StepWALPersisted)
	h.dram.Write(addr, line, now)
	n := h.res[addr]
	if n == nil {
		n = h.insert(addr)
	} else {
		h.touch(n)
	}
	if !n.dirty {
		n.dirty = true
		h.dirtyN.Add(1)
	}
	h.pendingOK = false
	h.step(StepDRAMInstalled)
	return wr
}

// --- Backend implementation ---

// Read serves resident lines from DRAM (fast path) and everything else
// from PCM, heating the line and promoting it once it crosses the
// threshold (a clean fill at the read's completion time).
func (h *Hybrid) Read(addr uint64, now sim.Time) (ecc.Line, bool, nvm.ReadResult) {
	if n := h.res[addr]; n != nil {
		h.touch(n)
		h.hits.Add(1)
		h.bump(addr, 1)
		return h.dram.Read(addr, now)
	}
	h.misses.Add(1)
	line, ok, rr := h.pcm.Read(addr, now)
	if ok && h.bump(addr, 1) >= h.cfg.PromoteThreshold {
		h.installClean(addr, &line, rr.Done)
	}
	return line, ok, rr
}

// ReadMeta delegates to PCM: metadata structures are NVMM-resident by
// design (the AMT backing store, the WAL itself) and never buffer in
// DRAM.
func (h *Hybrid) ReadMeta(addr uint64, now sim.Time) nvm.ReadResult {
	return h.pcm.ReadMeta(addr, now)
}

// Write routes hot lines through the WAL-then-DRAM protocol and cold
// uniques straight to their PCM home.
func (h *Hybrid) Write(addr uint64, line *ecc.Line, now sim.Time) nvm.WriteResult {
	if h.res[addr] != nil {
		h.bump(addr, 1)
		h.absorbed.Add(1)
		return h.installWAL(addr, line, now)
	}
	if h.bump(addr, 1) >= h.cfg.PromoteThreshold {
		h.absorbed.Add(1)
		return h.installWAL(addr, line, now)
	}
	return h.pcm.Write(addr, line, now)
}

// WriteMeta delegates to PCM (see ReadMeta).
func (h *Hybrid) WriteMeta(addr uint64, now sim.Time) nvm.WriteResult {
	return h.pcm.WriteMeta(addr, now)
}

// Load returns the newest functional content of addr: the WAL tail if a
// persist is in flight, the DRAM copy for dirty residents, the PCM home
// otherwise (clean residents match their home by construction).
func (h *Hybrid) Load(addr uint64) (ecc.Line, bool) {
	if h.pendingOK && addr == h.pendingAddr {
		return h.pendingLine, true
	}
	if n := h.res[addr]; n != nil && n.dirty {
		return h.dram.Load(addr)
	}
	return h.pcm.Load(addr)
}

// Store updates the functional content of addr without timing effects,
// keeping both tiers coherent: the PCM home always gets the content, and
// a resident copy is refreshed (and becomes clean — it now matches its
// home).
func (h *Hybrid) Store(addr uint64, line ecc.Line) {
	h.pcm.Store(addr, line)
	if n := h.res[addr]; n != nil {
		h.dram.Store(addr, line)
		if n.dirty {
			n.dirty = false
			h.dirtyN.Add(-1)
		}
	}
}

// Flush drains the PCM write queues and waits out the DRAM banks; dirty
// residents stay resident (their durability is carried by the WAL, not
// by flushing).
func (h *Hybrid) Flush(now sim.Time) sim.Time {
	idle := h.pcm.Flush(now)
	if d := h.dram.Idle(now); d > idle {
		idle = d
	}
	return idle
}

// SyncHealth publishes the PCM health accounting (DRAM has none — it
// does not wear).
func (h *Hybrid) SyncHealth() { h.pcm.SyncHealth() }

// Lines returns the PCM capacity: the hybrid tier does not change the
// addressable space, only where content physically lives.
func (h *Hybrid) Lines() int64 { return h.pcm.Lines() }

// LinesWritten reports distinct lines holding data across both tiers: the
// PCM store plus dirty residents whose home was never written.
func (h *Hybrid) LinesWritten() int {
	n := h.pcm.LinesWritten()
	for addr, r := range h.res {
		if r.dirty {
			if _, ok := h.pcm.Load(addr); !ok {
				n++
			}
		}
	}
	return n
}

// QueuedWrites reports the PCM posted-write backlog (DRAM posts none).
func (h *Hybrid) QueuedWrites() int { return h.pcm.QueuedWrites() }

// Utilization reports the durable device's bank utilization; the DRAM
// buffer's occupancy is reported through Snapshot instead.
func (h *Hybrid) Utilization(horizon sim.Time) float64 { return h.pcm.Utilization(horizon) }

// Wear delegates to PCM — DRAM does not wear, which is the point.
func (h *Hybrid) Wear() nvm.WearSummary { return h.pcm.Wear() }

// WearOf delegates to PCM.
func (h *Hybrid) WearOf(addr uint64) uint64 { return h.pcm.WearOf(addr) }

// HealthSummary delegates to PCM.
func (h *Hybrid) HealthSummary() nvm.HealthSummary { return h.pcm.HealthSummary() }

// HealthSnapshot delegates to PCM.
func (h *Hybrid) HealthSnapshot() nvm.HealthSnapshot { return h.pcm.HealthSnapshot() }

// MediaStats returns the PCM activity counters with the DRAM buffer's
// energy folded into MediaEnergy, so scheme-level energy totals account
// for both tiers. Reads/Writes stay PCM-only: they feed wear and
// endurance interpretation, where DRAM traffic is free by design.
func (h *Hybrid) MediaStats() nvm.Stats {
	st := h.pcm.MediaStats()
	st.MediaEnergy += h.dram.Stats.EnergyNJ
	return st
}

// SetProbe installs the media probe on the durable device: telemetry's
// device read/write rates describe PCM media traffic; DRAM activity is
// scraped from Snapshot.
func (h *Hybrid) SetProbe(p nvm.Probe) { h.pcm.SetProbe(p) }

// Crash models power failure with recovery: replay every dirty resident
// and the in-flight WAL tail into their PCM homes (functionally — the
// recovery pass is offline, outside the timing model), then drop all
// volatile state: the buffer, the residency index, and the heat table.
// Afterwards every acknowledged write is readable from PCM.
func (h *Hybrid) Crash() {
	for addr, n := range h.res {
		if !n.dirty {
			continue
		}
		if line, ok := h.dram.Load(addr); ok {
			h.pcm.Store(addr, line)
		}
	}
	if h.pendingOK {
		h.pcm.Store(h.pendingAddr, h.pendingLine)
		h.pendingOK = false
	}
	h.dram.Crash()
	h.res = make(map[uint64]*resident)
	h.head, h.tail = nil, nil
	h.heat = sparse.Map[uint64]{}
	h.epoch, h.accesses = 0, 0
	h.residentN.Store(0)
	h.dirtyN.Store(0)
}

// RefHint reports that phys gained a duplicate reference (a dedup hit or
// refcount increment) at time `at` — CARAM's content-aware placement
// signal. The line's heat jumps by RefBoost, and a non-resident line
// crossing the promotion threshold is promoted immediately with a clean
// fill from its PCM home.
func (h *Hybrid) RefHint(phys uint64, at sim.Time) {
	if h.bump(phys, h.cfg.RefBoost) < h.cfg.PromoteThreshold {
		return
	}
	if h.res[phys] != nil {
		return
	}
	if line, ok := h.pcm.Load(phys); ok {
		h.installClean(phys, &line, at)
	}
}

// Audit checks the tier's structural invariants, returning a description
// per violation (empty = healthy). The differential checker calls it
// alongside the scheme audits.
func (h *Hybrid) Audit() []string {
	var bad []string
	if len(h.res) > h.capacity {
		bad = append(bad, fmt.Sprintf("hybrid: %d residents exceed capacity %d", len(h.res), h.capacity))
	}
	if h.dram.Resident() != len(h.res) {
		bad = append(bad, fmt.Sprintf("hybrid: DRAM store holds %d lines but residency index holds %d", h.dram.Resident(), len(h.res)))
	}
	listLen, dirty := 0, 0
	for n := h.head; n != nil; n = n.next {
		listLen++
		if h.res[n.addr] != n {
			bad = append(bad, fmt.Sprintf("hybrid: LRU node %d not in residency index", n.addr))
		}
		if n.dirty {
			dirty++
			continue
		}
		// Clean residents must match their PCM home byte for byte —
		// otherwise a free eviction would lose data.
		dline, dok := h.dram.Load(n.addr)
		pline, pok := h.pcm.Load(n.addr)
		if !dok || !pok || dline != pline {
			bad = append(bad, fmt.Sprintf("hybrid: clean resident %d diverges from its PCM home (dram=%v pcm=%v)", n.addr, dok, pok))
		}
	}
	if listLen != len(h.res) {
		bad = append(bad, fmt.Sprintf("hybrid: LRU list length %d != residency index size %d", listLen, len(h.res)))
	}
	if int64(dirty) != h.dirtyN.Load() {
		bad = append(bad, fmt.Sprintf("hybrid: %d dirty residents but counter says %d", dirty, h.dirtyN.Load()))
	}
	if int64(len(h.res)) != h.residentN.Load() {
		bad = append(bad, fmt.Sprintf("hybrid: %d residents but counter says %d", len(h.res), h.residentN.Load()))
	}
	return bad
}

var _ Backend = (*Hybrid)(nil)
