package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/stats"
)

// Hop identifies one attempt-level event on a routed request's cross-node
// path. Where Stage decomposes what a single node's write pipeline did,
// Hop decomposes what the cluster router did to get the request to a node
// at all: which replica it picked, how long the pool checkout took,
// whether it retried, failed over, hedged, or repaired. Together with the
// trace ID propagated on the wire, hop events let one request be followed
// from the router edge through every machine it touched.
type Hop uint8

// Router-side hop events.
const (
	// HopRoute is the whole routed request, recorded once on completion.
	HopRoute Hop = iota
	// HopAttempt is one round trip against one backend node.
	HopAttempt
	// HopCheckout is the connection-pool checkout preceding an attempt
	// (a dial when the pool is empty, ~free when a connection is idle).
	HopCheckout
	// HopRetry is a fresh attempt against the same node after a
	// retryable failure.
	HopRetry
	// HopFailover is a request served by a non-primary replica because
	// the primary was down or failed.
	HopFailover
	// HopHedge is a hedged read fired at the follower because the
	// primary had not answered within the hedge delay.
	HopHedge
	// HopHedgeWin is a hedged read won by the follower.
	HopHedgeWin
	// HopReadRepair is a sampled read-repair reconciliation write.
	HopReadRepair
	// HopMarkDown is a node taken out of rotation on a data-path failure.
	HopMarkDown

	// NumHops is the number of hop kinds.
	NumHops = int(HopMarkDown) + 1
)

// String implements fmt.Stringer; the names double as metric label values
// and /statusz section keys.
func (h Hop) String() string {
	switch h {
	case HopRoute:
		return "route"
	case HopAttempt:
		return "attempt"
	case HopCheckout:
		return "checkout"
	case HopRetry:
		return "retry"
	case HopFailover:
		return "failover"
	case HopHedge:
		return "hedge"
	case HopHedgeWin:
		return "hedge-win"
	case HopReadRepair:
		return "read-repair"
	case HopMarkDown:
		return "mark-down"
	default:
		return "unknown"
	}
}

// wallToSim converts a wall-clock duration to the simulated-time unit the
// shared histogram machinery stores (hop latencies are real network time,
// but reusing stats.Histogram keeps one exposition path).
func wallToSim(d time.Duration) sim.Time {
	return sim.Time(d.Nanoseconds()) * sim.Nanosecond
}

// HopHistograms is a per-hop-kind latency histogram set — the router-side
// sibling of StageHistograms. The zero value is ready to use; Observe and
// Snapshot may run concurrently. All methods are nil-safe no-ops so an
// untraced router carries no instrumentation cost or branches at call
// sites.
type HopHistograms [NumHops]TimeHistogram

// Observe records one hop latency. Nil-safe and allocation-free.
func (h *HopHistograms) Observe(hop Hop, d time.Duration) {
	if h == nil || int(hop) >= NumHops {
		return
	}
	h[hop].Observe(wallToSim(d))
}

// Snapshot copies every hop histogram (zero histograms for nil).
func (h *HopHistograms) Snapshot() [NumHops]stats.Histogram {
	var out [NumHops]stats.Histogram
	if h == nil {
		return out
	}
	for i := range h {
		out[i] = h[i].Snapshot()
	}
	return out
}

// HopRecorder is the router's flight recorder: a fixed-size ring holding
// the last N attempt-level events with their trace IDs, node names and
// wall-clock timing — the cross-node black box that esdrouter's esdtrace
// subcommand joins against each member node's per-shard flight recorder
// to reconstruct one request's full path.
//
// The recording discipline matches FlightRecorder: one atomic add claims
// the next sequence number, the slot publishes under a per-slot try-lock,
// and a writer racing a concurrent Snapshot drops its record rather than
// stall the data path. Recording never allocates (the node name is a
// string header copy, not a new string).
type HopRecorder struct {
	mask  uint64
	seq   atomic.Uint64
	slots []hopSlot
}

// hopSlot is one ring entry; all fields are guarded by mu. seq names the
// record the slot holds (0 = never written).
type hopSlot struct {
	mu      sync.Mutex
	seq     uint64
	trace   uint64
	addr    uint64
	atNs    int64
	latNs   int64
	node    string
	hop     Hop
	op      byte
	attempt int32
	status  byte
}

// DefaultHopSlots is the ring size used when none is given. Routed
// requests emit several events each (route + per-node attempts), so the
// router ring defaults larger than the per-shard recorder.
const DefaultHopSlots = 1024

// NewHopRecorder builds a recorder holding the last `slots` events,
// rounded up to a power of two (<=0 selects DefaultHopSlots).
func NewHopRecorder(slots int) *HopRecorder {
	if slots <= 0 {
		slots = DefaultHopSlots
	}
	n := 1
	for n < slots {
		n <<= 1
	}
	return &HopRecorder{mask: uint64(n - 1), slots: make([]hopSlot, n)}
}

// Cap returns the ring capacity (0 for nil).
func (r *HopRecorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Len returns how many events are currently held (0 for nil).
func (r *HopRecorder) Len() int {
	if r == nil {
		return 0
	}
	n := r.seq.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Record appends one hop event. op is the protocol op byte ('W', 'R',
// 'B', 'b'; 0 for non-data events), status the protocol status byte the
// event resolved to (0 = OK), atNs the wall-clock UnixNano at which the
// hop began. Nil-safe and allocation-free; never blocks (a concurrent
// dump drops the record instead).
func (r *HopRecorder) Record(hop Hop, trace uint64, op byte, node string, addr uint64, attempt int, status byte, atNs int64, lat time.Duration) {
	if r == nil {
		return
	}
	n := r.seq.Add(1)
	s := &r.slots[n&r.mask]
	if !s.mu.TryLock() {
		return // a dump holds this slot; drop rather than stall routing
	}
	s.seq = n
	s.trace = trace
	s.addr = addr
	s.atNs = atNs
	s.latNs = lat.Nanoseconds()
	s.node = node
	s.hop = hop
	s.op = op
	s.attempt = int32(attempt)
	s.status = status
	s.mu.Unlock()
}

// HopRecord is one decoded router flight-recorder event, shaped for JSON
// exposition (the router's /debug/flightrecorder) and esdtrace.
type HopRecord struct {
	// Seq orders events within one recorder (ascending = older to newer).
	Seq uint64 `json:"seq"`
	// Trace is the routed request's trace ID (0 = untraced traffic).
	Trace uint64 `json:"trace,omitempty"`
	// Hop is the event kind (Hop.String()).
	Hop string `json:"hop"`
	// Op is the data op the event served: "write", "read", "write-batch",
	// "read-batch", or "" for non-data events.
	Op string `json:"op,omitempty"`
	// Node is the backend the event touched ("" for router-local events).
	Node string `json:"node,omitempty"`
	Addr uint64 `json:"addr"`
	// Attempt is the 0-based attempt index on the node (batch routes reuse
	// it as the sub-batch fan-out count on the route event).
	Attempt int `json:"attempt,omitempty"`
	// Status is the protocol status byte the event resolved to (0 = OK).
	Status int  `json:"status"`
	OK     bool `json:"ok"`
	// AtUnixNs is the wall-clock UnixNano at which the hop began.
	AtUnixNs int64 `json:"at_unix_ns"`
	// LatNs is the hop's wall-clock duration in nanoseconds.
	LatNs float64 `json:"lat_ns"`
}

// opName maps protocol op bytes onto the names HopRecord exposes.
func opName(op byte) string {
	switch op {
	case 'W':
		return "write"
	case 'R':
		return "read"
	case 'B':
		return "write-batch"
	case 'b':
		return "read-batch"
	case 0:
		return ""
	default:
		return string(rune(op))
	}
}

// Snapshot decodes the ring's current contents, oldest first. It
// allocates (it is the cold dump path) and may run concurrently with
// writers: a slot overwritten between the sequence read and the slot lock
// is skipped rather than returned torn.
func (r *HopRecorder) Snapshot() []HopRecord {
	if r == nil {
		return nil
	}
	end := r.seq.Load()
	n := uint64(len(r.slots))
	start := uint64(1)
	if end > n {
		start = end - n + 1
	}
	out := make([]HopRecord, 0, end-start+1)
	for i := start; i <= end; i++ {
		s := &r.slots[i&r.mask]
		s.mu.Lock()
		if s.seq != i {
			s.mu.Unlock()
			continue
		}
		rec := HopRecord{
			Seq:      i,
			Trace:    s.trace,
			Hop:      s.hop.String(),
			Op:       opName(s.op),
			Node:     s.node,
			Addr:     s.addr,
			Attempt:  int(s.attempt),
			Status:   int(s.status),
			OK:       s.status == 0,
			AtUnixNs: s.atNs,
			LatNs:    float64(s.latNs),
		}
		s.mu.Unlock()
		out = append(out, rec)
	}
	return out
}
