package telemetry

import (
	"sync"
	"time"
)

// Rolling turns a monotonically increasing counter into a rate over
// (approximately) the last window of wall time. It keeps a ring of fixed
// sub-windows; each Observe files the counter value into the sub-window the
// timestamp falls in, and Rate divides the counter delta between the oldest
// and newest in-window samples by their time span. Observations are pulls,
// not pushes: the caller samples the counter whenever convenient (each
// /statusz render, each dashboard poll) and stale sub-windows age out of
// the ring automatically.
//
// A counter that restarts (value goes backwards — process restart, metric
// reset) clears the ring and the rate rebuilds from the new baseline
// instead of reporting a huge negative or wrapped delta.
//
// All methods take explicit timestamps so tests drive a synthetic clock;
// production callers pass time.Now(). Safe for concurrent use.
type Rolling struct {
	mu     sync.Mutex
	width  time.Duration
	slots  []rollSlot
	last   uint64
	seeded bool
}

type rollSlot struct {
	epoch  int64 // absolute sub-window index, -1 when empty
	firstT time.Time
	lastT  time.Time
	firstV uint64
	lastV  uint64
}

// NewRolling builds an aggregator covering `window` with `slots` fixed
// sub-windows (more slots = smoother aging, finer granularity).
func NewRolling(window time.Duration, slots int) *Rolling {
	if slots < 2 {
		slots = 2
	}
	if window <= 0 {
		window = 10 * time.Second
	}
	width := window / time.Duration(slots)
	if width <= 0 {
		width = time.Millisecond
	}
	r := &Rolling{width: width, slots: make([]rollSlot, slots)}
	r.reset()
	return r
}

// Window reports the configured span (slot width times slot count).
func (r *Rolling) Window() time.Duration {
	return r.width * time.Duration(len(r.slots))
}

func (r *Rolling) reset() {
	for i := range r.slots {
		r.slots[i] = rollSlot{epoch: -1}
	}
}

// Observe files one sample of the counter taken at now.
func (r *Rolling) Observe(now time.Time, v uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seeded && v < r.last {
		r.reset() // counter restarted; rebuild from the new baseline
	}
	r.last, r.seeded = v, true
	e := now.UnixNano() / int64(r.width)
	s := &r.slots[((e%int64(len(r.slots)))+int64(len(r.slots)))%int64(len(r.slots))]
	if s.epoch != e {
		*s = rollSlot{epoch: e, firstT: now, lastT: now, firstV: v, lastV: v}
		return
	}
	s.lastT, s.lastV = now, v
}

// Rate returns the counter's per-second rate over the in-window samples.
// With fewer than two samples in the window (fresh aggregator, idle or
// unscraped counter) it returns 0.
func (r *Rolling) Rate(now time.Time) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	minEpoch := now.UnixNano()/int64(r.width) - int64(len(r.slots)) + 1
	var oldest, newest *rollSlot
	for i := range r.slots {
		s := &r.slots[i]
		if s.epoch < minEpoch || s.epoch == -1 {
			continue
		}
		if oldest == nil || s.epoch < oldest.epoch {
			oldest = s
		}
		if newest == nil || s.epoch > newest.epoch {
			newest = s
		}
	}
	if oldest == nil || newest == nil {
		return 0
	}
	dt := newest.lastT.Sub(oldest.firstT).Seconds()
	if dt <= 0 || newest.lastV < oldest.firstV {
		return 0
	}
	return float64(newest.lastV-oldest.firstV) / dt
}

// ObserveRate files a sample and returns the updated rate in one call —
// the natural shape for poll-time use (statusz render, dashboard tick).
func (r *Rolling) ObserveRate(now time.Time, v uint64) float64 {
	if r == nil {
		return 0
	}
	r.Observe(now, v)
	return r.Rate(now)
}
