package telemetry

import (
	"sync"
	"testing"
	"time"
)

// Nil-receiver no-op audit: every HopRecorder and HopHistograms method
// must be a safe no-op on a nil receiver, matching the Sink /
// FlightRecorder / StageHistograms convention — an untraced router passes
// nil and pays nothing.
func TestHopNilReceivers(t *testing.T) {
	var r *HopRecorder
	r.Record(HopAttempt, 1, 'W', "node0", 42, 0, 0, time.Now().UnixNano(), time.Millisecond)
	if got := r.Snapshot(); got != nil {
		t.Errorf("nil recorder Snapshot = %v, want nil", got)
	}
	if r.Len() != 0 || r.Cap() != 0 {
		t.Errorf("nil recorder Len/Cap = %d/%d, want 0/0", r.Len(), r.Cap())
	}

	var h *HopHistograms
	h.Observe(HopRoute, time.Millisecond)
	snap := h.Snapshot()
	for i := range snap {
		if snap[i].Count() != 0 {
			t.Errorf("nil histograms Snapshot[%d].Count = %d, want 0", i, snap[i].Count())
		}
	}
}

func TestHopStrings(t *testing.T) {
	want := map[Hop]string{
		HopRoute:      "route",
		HopAttempt:    "attempt",
		HopCheckout:   "checkout",
		HopRetry:      "retry",
		HopFailover:   "failover",
		HopHedge:      "hedge",
		HopHedgeWin:   "hedge-win",
		HopReadRepair: "read-repair",
		HopMarkDown:   "mark-down",
	}
	if len(want) != NumHops {
		t.Fatalf("test covers %d hops, NumHops = %d", len(want), NumHops)
	}
	seen := map[string]bool{}
	for h, name := range want {
		if got := h.String(); got != name {
			t.Errorf("Hop(%d).String() = %q, want %q", h, got, name)
		}
		if seen[name] {
			t.Errorf("duplicate hop name %q", name)
		}
		seen[name] = true
	}
	if got := Hop(200).String(); got != "unknown" {
		t.Errorf("out-of-range hop String() = %q, want unknown", got)
	}
}

func TestHopRecorderRoundTrip(t *testing.T) {
	r := NewHopRecorder(8)
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", r.Cap())
	}
	at := time.Now().UnixNano()
	r.Record(HopAttempt, 7, 'W', "node1", 42, 1, 0, at, 3*time.Millisecond)
	r.Record(HopFailover, 7, 'R', "node2", 42, 0, 2, at+1, time.Millisecond)
	recs := r.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("Snapshot len = %d, want 2", len(recs))
	}
	a := recs[0]
	if a.Trace != 7 || a.Hop != "attempt" || a.Op != "write" || a.Node != "node1" ||
		a.Addr != 42 || a.Attempt != 1 || !a.OK || a.AtUnixNs != at || a.LatNs != 3e6 {
		t.Errorf("first record decoded wrong: %+v", a)
	}
	b := recs[1]
	if b.Hop != "failover" || b.Op != "read" || b.Status != 2 || b.OK {
		t.Errorf("second record decoded wrong: %+v", b)
	}
	if b.Seq <= a.Seq {
		t.Errorf("sequence not ascending: %d then %d", a.Seq, b.Seq)
	}
}

// The ring must hold exactly the last Cap() records after wraparound.
func TestHopRecorderWraparound(t *testing.T) {
	r := NewHopRecorder(4)
	for i := 0; i < 11; i++ {
		r.Record(HopAttempt, uint64(i+1), 'W', "n", uint64(i), 0, 0, int64(i), 0)
	}
	recs := r.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("Snapshot len = %d, want 4 after wraparound", len(recs))
	}
	for i, rec := range recs {
		if want := uint64(8 + i); rec.Trace != want {
			t.Errorf("record %d trace = %d, want %d (oldest-first tail)", i, rec.Trace, want)
		}
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
}

// Recording and observing must not allocate: they sit on the router's
// data path for every attempt of every routed request.
func TestHopRecordingDoesNotAllocate(t *testing.T) {
	r := NewHopRecorder(64)
	var h HopHistograms
	node := "node0"
	at := time.Now().UnixNano()
	if n := testing.AllocsPerRun(200, func() {
		r.Record(HopAttempt, 9, 'W', node, 7, 0, 0, at, time.Millisecond)
	}); n != 0 {
		t.Errorf("HopRecorder.Record allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		h.Observe(HopAttempt, time.Millisecond)
	}); n != 0 {
		t.Errorf("HopHistograms.Observe allocates %.1f/op, want 0", n)
	}
}

// Concurrent Record vs Snapshot must never tear a record: every decoded
// event's fields are derived from its trace ID, so a mixed record is
// detectable. Run with -race.
func TestHopRecorderConcurrentSnapshot(t *testing.T) {
	r := NewHopRecorder(32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Record(HopAttempt, i, 'W', "n", i*3, int(i%5), byte(i%7), int64(i), time.Duration(i))
		}
	}()
	for k := 0; k < 50; k++ {
		for _, rec := range r.Snapshot() {
			if rec.Trace == 0 {
				continue
			}
			if rec.Addr != rec.Trace*3 || rec.Attempt != int(rec.Trace%5) ||
				rec.Status != int(rec.Trace%7) || rec.AtUnixNs != int64(rec.Trace) {
				t.Fatalf("torn record: %+v", rec)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestHopHistogramsObserve(t *testing.T) {
	var h HopHistograms
	h.Observe(HopAttempt, 2*time.Millisecond)
	h.Observe(HopAttempt, 4*time.Millisecond)
	h.Observe(HopRoute, time.Millisecond)
	h.Observe(Hop(250), time.Second) // out of range: dropped, not a panic
	snap := h.Snapshot()
	if snap[HopAttempt].Count() != 2 {
		t.Errorf("attempt count = %d, want 2", snap[HopAttempt].Count())
	}
	if snap[HopRoute].Count() != 1 {
		t.Errorf("route count = %d, want 1", snap[HopRoute].Count())
	}
	if ns := snap[HopRoute].Mean().Nanoseconds(); ns < 0.9e6 || ns > 1.1e6 {
		t.Errorf("route mean = %v ns, want ~1e6 (wall→sim unit conversion)", ns)
	}
	if snap[HopHedge].Count() != 0 {
		t.Errorf("hedge count = %d, want 0", snap[HopHedge].Count())
	}
}
