package telemetry

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/esdsim/esd/internal/sim"
)

// Event is one structured write-path trace event. Events are flat and
// JSON-friendly so a trace is greppable line by line; a zero field is
// omitted from the encoding.
type Event struct {
	// Seq is the event's sequence number within its tracer.
	Seq uint64 `json:"seq"`
	// At is the simulated timestamp in picoseconds.
	At int64 `json:"at_ps"`
	// Kind classifies the event: "write", "read", "efit-evict",
	// "gap-move", "ctr-overflow", "crash", "run-start", "run-measure",
	// "run-end".
	Kind string `json:"kind"`
	// Trace is the originating request's trace ID (0 when the traffic was
	// not request-scoped, e.g. trace replay without a serving front end).
	Trace uint64 `json:"trace,omitempty"`
	// Scheme is the emitting scheme's name (write/read events).
	Scheme string `json:"scheme,omitempty"`
	// Decision is the write-path verdict (see Decision constants).
	Decision string `json:"decision,omitempty"`
	Logical  uint64 `json:"logical,omitempty"`
	Phys     uint64 `json:"phys,omitempty"`
	// Dedup reports whether the write was eliminated.
	Dedup bool `json:"dedup,omitempty"`
	// Lat is the request's CPU-visible latency in picoseconds.
	Lat int64 `json:"lat_ps,omitempty"`
	// Detail carries event-specific context (e.g. evicted ref count).
	Detail string `json:"detail,omitempty"`
}

// Format selects the tracer's on-disk encoding.
type Format int

// Trace encodings.
const (
	// FormatJSONL writes one JSON object per line; ReadEvents decodes it.
	FormatJSONL Format = iota
	// FormatChrome writes a Chrome trace_event JSON array loadable in
	// chrome://tracing / Perfetto: write and read events become complete
	// ("X") slices on one timeline, everything else becomes an instant
	// ("i") event, with the simulated picosecond clock mapped onto the
	// trace's microsecond axis.
	FormatChrome
)

// ParseFormat resolves a format name ("jsonl" or "chrome").
func ParseFormat(s string) (Format, error) {
	switch s {
	case "jsonl", "":
		return FormatJSONL, nil
	case "chrome":
		return FormatChrome, nil
	default:
		return 0, fmt.Errorf("telemetry: unknown trace format %q (want jsonl or chrome)", s)
	}
}

// Tracer encodes events to a writer. Emit is called by the simulation
// thread only; Close may be called once from any goroutine after the run.
type Tracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	format Format
	seq    uint64
	opened bool
	closed bool
	err    error
}

// NewTracer returns a tracer writing the given format to w. The caller
// owns w; Close flushes but does not close it.
func NewTracer(w io.Writer, format Format) *Tracer {
	return &Tracer{w: bufio.NewWriterSize(w, 1<<16), format: format}
}

// Emit appends one event, assigning its sequence number. Encoding errors
// are sticky and surfaced by Close.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.err != nil {
		return
	}
	t.seq++
	ev.Seq = t.seq
	switch t.format {
	case FormatChrome:
		t.emitChrome(ev)
	default:
		b, err := json.Marshal(ev)
		if err != nil {
			t.err = err
			return
		}
		if _, err := t.w.Write(b); err != nil {
			t.err = err
			return
		}
		t.err = t.w.WriteByte('\n')
	}
}

// chromeEvent is the trace_event JSON shape chrome://tracing loads.
type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"` // microseconds
	Dur  float64                `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Args map[string]interface{} `json:"args"`
}

func (t *Tracer) emitChrome(ev Event) {
	if !t.opened {
		t.opened = true
		if _, err := t.w.WriteString("[\n"); err != nil {
			t.err = err
			return
		}
	} else {
		if _, err := t.w.WriteString(",\n"); err != nil {
			t.err = err
			return
		}
	}
	const psPerUs = float64(sim.Microsecond)
	ce := chromeEvent{
		Name: ev.Kind,
		Ph:   "i",
		Ts:   float64(ev.At) / psPerUs,
		Pid:  1,
		Tid:  1,
		Args: map[string]interface{}{"seq": ev.Seq},
	}
	if ev.Kind == "write" || ev.Kind == "read" {
		ce.Ph = "X"
		ce.Dur = float64(ev.Lat) / psPerUs
	}
	if ev.Trace != 0 {
		ce.Args["trace"] = ev.Trace
	}
	if ev.Scheme != "" {
		ce.Name = ev.Scheme + ":" + ev.Kind
		ce.Args["scheme"] = ev.Scheme
	}
	if ev.Decision != "" {
		ce.Args["decision"] = ev.Decision
	}
	if ev.Kind == "write" || ev.Kind == "read" {
		ce.Args["logical"] = ev.Logical
		ce.Args["phys"] = ev.Phys
		ce.Args["dedup"] = ev.Dedup
	}
	if ev.Detail != "" {
		ce.Args["detail"] = ev.Detail
	}
	b, err := json.Marshal(ce)
	if err != nil {
		t.err = err
		return
	}
	_, t.err = t.w.Write(b)
}

// Events reports how many events have been emitted.
func (t *Tracer) Events() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Close terminates the encoding (for Chrome, the closing bracket) and
// flushes, returning the first error the tracer encountered.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.err != nil {
		return t.err
	}
	if t.format == FormatChrome {
		if !t.opened {
			if _, err := t.w.WriteString("["); err != nil {
				t.err = err
				return t.err
			}
		}
		if _, err := t.w.WriteString("\n]\n"); err != nil {
			t.err = err
			return t.err
		}
	}
	t.err = t.w.Flush()
	return t.err
}

// ReadEvents decodes a JSONL event trace back into events — the round-trip
// counterpart of FormatJSONL. Decoding stops with an error at the first
// malformed line.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return out, fmt.Errorf("telemetry: event %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
}
