// Package telemetry is the simulator's observability substrate: a
// low-overhead metrics registry (atomic counters, gauges and log-bucketed
// latency histograms) with Prometheus text-format and expvar-style JSON
// exposition, a sampled structured event tracer for the write path
// (JSONL and Chrome trace_event export), and an opt-in HTTP server that
// serves the metrics plus net/http/pprof.
//
// The simulator itself is single-threaded, but the HTTP endpoint scrapes
// metrics live while a run is in flight, so every metric primitive is safe
// for concurrent use: counters and gauges are atomics, histograms take a
// mutex per observation. The per-layer hooks are reached through a nil-safe
// *Sink (see sink.go), so with telemetry off the hot path pays exactly one
// predictable branch per instrumentation point.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/stats"
)

// Counter is a monotonically increasing metric. A nil *Counter discards
// increments, so call sites never need their own guard.
type Counter struct {
	name string
	help string
	v    atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is a settable instantaneous value. A nil *Gauge discards updates.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// TimeHistogram is a concurrency-safe latency histogram reusing the
// log-bucketed stats.Histogram underneath: the simulation thread records,
// the scrape goroutine snapshots under the same mutex.
type TimeHistogram struct {
	name string
	help string
	mu   sync.Mutex
	h    stats.Histogram
}

// Observe records one latency sample.
func (t *TimeHistogram) Observe(d sim.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.h.Record(d)
	t.mu.Unlock()
}

// Snapshot returns a copy of the underlying histogram.
func (t *TimeHistogram) Snapshot() stats.Histogram {
	if t == nil {
		return stats.Histogram{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.h
}

// FloatFunc is a float gauge whose value is computed by a callback at
// exposition time. It costs the instrumented code nothing between scrapes,
// is always fresh, and is race-safe as long as the callback reads from
// concurrency-safe sources (atomics, or state behind its own lock). Used
// for derived rates (dedup hit rate) and device-health values (wear skew,
// energy split) that would otherwise need hot-path bookkeeping.
type FloatFunc struct {
	name string
	help string
	fn   func() float64
}

// Value invokes the callback (0 for nil).
func (f *FloatFunc) Value() float64 {
	if f == nil || f.fn == nil {
		return 0
	}
	return f.fn()
}

// Name returns the registered metric name.
func (f *FloatFunc) Name() string { return f.name }

// Registry holds the metric set of one telemetry instance. Metrics are
// registered once (at Sink construction) and then only read or bumped, so
// the registry lock is uncontended in steady state.
type Registry struct {
	mu     sync.RWMutex
	order  []string // registration order of metric names
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*TimeHistogram
	funcs  map[string]*FloatFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*TimeHistogram),
		funcs:  make(map[string]*FloatFunc),
	}
}

// baseName strips a {label="value"} suffix: families share HELP/TYPE lines.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Counter returns the counter registered under name (which may carry a
// {label="value"} suffix), creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.ctrs[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.ctrs[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	r.order = append(r.order, name)
	return g
}

// Histogram returns the latency histogram registered under name, creating
// it on first use. Exposed bucket bounds are in nanoseconds.
func (r *Registry) Histogram(name, help string) *TimeHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &TimeHistogram{name: name, help: help}
	r.hists[name] = h
	r.order = append(r.order, name)
	return h
}

// FloatFunc registers a callback-backed float gauge under name. Re-
// registering an existing name swaps in the new callback (registration is
// setup-time only; the latest wiring wins).
func (r *Registry) FloatFunc(name, help string, fn func() float64) *FloatFunc {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.funcs[name]; ok {
		f.fn = fn
		return f
	}
	f := &FloatFunc{name: name, help: help, fn: fn}
	r.funcs[name] = f
	r.order = append(r.order, name)
	return f
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers per family, counters with a
// _total-style value line, histograms as cumulative le-bucketed series
// with _sum and _count. Latency buckets are exposed in nanoseconds.
//
// Series are emitted grouped by family in first-registration order, even
// when sinks sharing the registry registered them interleaved (the
// sharded engine registers one metric set per shard): the format requires
// all samples of a family to be contiguous.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var famOrder []string
	famSeries := make(map[string][]string)
	for _, name := range r.order {
		fam := baseName(name)
		if _, seen := famSeries[fam]; !seen {
			famOrder = append(famOrder, fam)
		}
		famSeries[fam] = append(famSeries[fam], name)
	}
	for _, fam := range famOrder {
		headed := false
		for _, name := range famSeries[fam] {
			if c, ok := r.ctrs[name]; ok {
				if !headed {
					headed = true
					if err := writeHeader(w, fam, c.help, "counter"); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s %d\n", name, c.Value()); err != nil {
					return err
				}
				continue
			}
			if g, ok := r.gauges[name]; ok {
				if !headed {
					headed = true
					if err := writeHeader(w, fam, g.help, "gauge"); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s %d\n", name, g.Value()); err != nil {
					return err
				}
				continue
			}
			if th, ok := r.hists[name]; ok {
				if !headed {
					headed = true
					if err := writeHeader(w, fam, th.help, "histogram"); err != nil {
						return err
					}
				}
				if err := writePromHistogram(w, name, th); err != nil {
					return err
				}
				continue
			}
			if f, ok := r.funcs[name]; ok {
				if !headed {
					headed = true
					if err := writeHeader(w, fam, f.help, "gauge"); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s %g\n", name, f.Value()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func writeHeader(w io.Writer, fam, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ)
	return err
}

func writePromHistogram(w io.Writer, name string, th *TimeHistogram) error {
	// A labeled histogram name ("esd_write_latency_ns{shard=\"0\"}") must
	// fold its labels into each sample's label block next to "le".
	fam, inner := baseName(name), ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		inner = name[i+1:len(name)-1] + ","
	}
	h := th.Snapshot()
	var cum uint64
	var err error
	h.EachBucket(func(upper sim.Time, count uint64) bool {
		cum += count
		_, err = fmt.Fprintf(w, "%s_bucket{%sle=\"%g\"} %d\n", fam, inner, upper.Nanoseconds(), cum)
		return err == nil
	})
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", fam, inner, h.Count()); err != nil {
		return err
	}
	suffix := ""
	if inner != "" {
		suffix = "{" + strings.TrimSuffix(inner, ",") + "}"
	}
	// The internal sum is in picoseconds; expose nanoseconds to match the
	// bucket bounds.
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", fam, suffix, h.Sum()/float64(sim.Nanosecond)); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s_count%s %d\n", fam, suffix, h.Count())
	return err
}

// WriteJSON renders the metrics as one flat JSON object in the spirit of
// expvar's /debug/vars: metric name -> value, histograms expanded into
// count/mean/p50/p99/max sub-keys, plus runtime memory stats. It is served
// at /debug/vars on the telemetry server without touching the process-wide
// expvar registry (which would collide across Systems).
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	r.mu.RUnlock()
	sort.Strings(names)

	var sb strings.Builder
	sb.WriteString("{\n")
	first := true
	emit := func(key string, format string, args ...interface{}) {
		if !first {
			sb.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(&sb, "%q: ", key)
		fmt.Fprintf(&sb, format, args...)
	}
	r.mu.RLock()
	for _, name := range names {
		switch {
		case r.ctrs[name] != nil:
			emit(name, "%d", r.ctrs[name].Value())
		case r.gauges[name] != nil:
			emit(name, "%d", r.gauges[name].Value())
		case r.hists[name] != nil:
			h := r.hists[name].Snapshot()
			emit(name, `{"count": %d, "mean_ns": %g, "p50_ns": %g, "p99_ns": %g, "max_ns": %g}`,
				h.Count(), h.Mean().Nanoseconds(), h.Percentile(0.5).Nanoseconds(),
				h.Percentile(0.99).Nanoseconds(), h.Max().Nanoseconds())
		case r.funcs[name] != nil:
			v := r.funcs[name].Value()
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0 // keep the JSON valid whatever a callback returns
			}
			emit(name, "%g", v)
		}
	}
	r.mu.RUnlock()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	emit("memstats", `{"alloc": %d, "total_alloc": %d, "sys": %d, "num_gc": %d}`,
		ms.Alloc, ms.TotalAlloc, ms.Sys, ms.NumGC)
	sb.WriteString("\n}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
