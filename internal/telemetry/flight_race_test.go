package telemetry

import (
	"sync"
	"testing"

	"github.com/esdsim/esd/internal/sim"
)

// TestFlightRecorderConcurrentRecordDump hammers record() from several
// writers while dump goroutines Snapshot continuously — the exact
// contention the try-lock protocol exists for. Every field of a record is
// derived from its trace id, so a torn record (fields from two different
// writes in one slot) is detectable in any snapshot. Run under -race this
// is also the recorder's data-race probe.
func TestFlightRecorderConcurrentRecordDump(t *testing.T) {
	const (
		writers   = 4
		perWriter = 5000
		dumpers   = 2
	)
	f := NewFlightRecorder(64)

	checkRecords := func(recs []FlightRecord, stage string) {
		lastSeq := uint64(0)
		for _, r := range recs {
			if r.Seq <= lastSeq {
				t.Errorf("%s: snapshot out of order: seq %d after %d", stage, r.Seq, lastSeq)
			}
			lastSeq = r.Seq
			// Self-consistency: addr, phys, at and lat are all functions of
			// the trace id; any mismatch means the record was torn.
			if r.Addr != r.Trace ||
				r.AtNs != sim.Time(r.Trace).Nanoseconds() ||
				r.LatNs != sim.Time(r.Trace+1).Nanoseconds() {
				t.Errorf("%s: torn record: %+v", stage, r)
			}
			if r.Kind == "write" && r.Phys != r.Trace^0xFFFF {
				t.Errorf("%s: torn write record: %+v", stage, r)
			}
		}
		if len(recs) > f.Cap() {
			t.Errorf("%s: snapshot holds %d records, cap %d", stage, len(recs), f.Cap())
		}
	}

	stop := make(chan struct{})
	var dumpWg sync.WaitGroup
	for d := 0; d < dumpers; d++ {
		dumpWg.Add(1)
		go func() {
			defer dumpWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					checkRecords(f.Snapshot(), "concurrent")
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := uint64(w*perWriter + i + 1)
				tc := TraceCtx{TraceID: id}
				if i%3 == 0 {
					f.RecordRead(w, tc, id, true, sim.Time(id), sim.Time(id+1))
				} else {
					f.RecordWrite(w, tc, id, id^0xFFFF, i%2 == 0, sim.Time(id), sim.Time(id+1), nil)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	dumpWg.Wait()

	// Quiescent: nothing contends the slots now, so the only losses are
	// records dropped while a dump held their slot. Drops must be rare —
	// the ring must still be overwhelmingly populated.
	final := f.Snapshot()
	checkRecords(final, "final")
	if len(final) < f.Cap()/2 {
		t.Fatalf("only %d of %d slots survived concurrent dumping (unbounded drops?)", len(final), f.Cap())
	}
	if f.Len() != f.Cap() {
		t.Fatalf("Len() = %d, want full ring %d", f.Len(), f.Cap())
	}
}
