package telemetry

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServerOptions configures the telemetry HTTP server.
type ServerOptions struct {
	// Addr is the listen address (e.g. ":9090" or "127.0.0.1:0").
	Addr string
	// Pprof mounts net/http/pprof under /debug/pprof/ when true.
	Pprof bool
}

// Server serves the live metrics endpoint:
//
//	/metrics      Prometheus text exposition
//	/debug/vars   expvar-style JSON (registry metrics + memstats)
//	/debug/pprof  net/http/pprof (opt-in)
//
// The server runs on its own mux — never the process-global
// http.DefaultServeMux — so multiple Systems can serve concurrently and
// pprof exposure stays opt-in per server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Handler builds the telemetry mux for reg. Usable standalone (e.g. to
// mount under an existing application server).
func Handler(reg *Registry, enablePprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "esd telemetry\n  /metrics\n  /debug/vars\n")
		if enablePprof {
			fmt.Fprintf(w, "  /debug/pprof/\n")
		}
	})
	return mux
}

// NewServer listens on opts.Addr and starts serving reg in a background
// goroutine. Use Addr to discover the bound address (":0" supported) and
// Close to shut down.
func NewServer(reg *Registry, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", opts.Addr, err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           Handler(reg, opts.Pprof),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server immediately, aborting any in-flight scrapes.
// For a clean drain use Shutdown.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown gracefully stops the server: it stops accepting new
// connections and waits for in-flight scrapes to finish, up to ctx's
// deadline (after which remaining connections are forcibly closed, and
// ctx.Err() is returned). Close remains the immediate, non-draining
// variant.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if err != nil {
		_ = s.srv.Close()
	}
	return err
}
