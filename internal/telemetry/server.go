package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// HandlerOptions configures the telemetry mux beyond the registry: the
// serving-introspection endpoints take callbacks so the telemetry package
// stays free of upward dependencies on the engine it describes.
type HandlerOptions struct {
	// Pprof mounts net/http/pprof under /debug/pprof/ when true.
	Pprof bool
	// Ready reports serving readiness for /readyz; nil means always ready.
	// A draining server returns false and /readyz serves 503.
	Ready func() bool
	// Status builds the /statusz payload (marshaled as JSON); nil serves a
	// minimal {"ready": ...} document.
	Status func() any
	// Flight snapshots the flight recorder for /debug/flightrecorder; nil
	// (or a drained recorder) serves an empty JSON array.
	Flight func() []FlightRecord
	// Device builds the /debug/device payload (the device-health document:
	// wear heatmap rows, energy split, dedup effectiveness); nil leaves the
	// endpoint unmounted.
	Device func() any
}

// ServerOptions configures the telemetry HTTP server.
type ServerOptions struct {
	// Addr is the listen address (e.g. ":9090" or "127.0.0.1:0").
	Addr string
	// Pprof mounts net/http/pprof under /debug/pprof/ when true.
	Pprof bool
	// Ready, Status, Flight and Device feed the introspection endpoints
	// (see HandlerOptions).
	Ready  func() bool
	Status func() any
	Flight func() []FlightRecord
	Device func() any
}

// Server serves the live metrics endpoint:
//
//	/metrics               Prometheus text exposition
//	/debug/vars            expvar-style JSON (registry metrics + memstats)
//	/debug/pprof           net/http/pprof (opt-in)
//	/healthz               liveness (always 200 while the process serves)
//	/readyz                readiness (503 while not ready/draining)
//	/statusz               JSON serving status document
//	/debug/flightrecorder  JSON dump of the flight-recorder ring
//
// The server runs on its own mux — never the process-global
// http.DefaultServeMux — so multiple Systems can serve concurrently and
// pprof exposure stays opt-in per server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Handler builds the plain metrics mux for reg (no introspection
// callbacks). Usable standalone (e.g. to mount under an existing
// application server).
func Handler(reg *Registry, enablePprof bool) http.Handler {
	return NewHandler(reg, HandlerOptions{Pprof: enablePprof})
}

// NewHandler builds the full telemetry mux: metrics exposition plus the
// health/readiness/status/flight-recorder introspection endpoints.
func NewHandler(reg *Registry, opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if opts.Ready != nil && !opts.Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		var doc any
		if opts.Status != nil {
			doc = opts.Status()
		} else {
			ready := opts.Ready == nil || opts.Ready()
			doc = map[string]any{"ready": ready}
		}
		writeJSON(w, doc)
	})
	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
		recs := []FlightRecord{}
		if opts.Flight != nil {
			if got := opts.Flight(); got != nil {
				recs = got
			}
		}
		writeJSON(w, recs)
	})
	if opts.Device != nil {
		mux.HandleFunc("/debug/device", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, opts.Device())
		})
	}
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "esd telemetry\n  /metrics\n  /debug/vars\n  /healthz\n  /readyz\n  /statusz\n  /debug/flightrecorder\n")
		if opts.Device != nil {
			fmt.Fprintf(w, "  /debug/device\n")
		}
		if opts.Pprof {
			fmt.Fprintf(w, "  /debug/pprof/\n")
		}
	})
	return mux
}

// writeJSON marshals doc with a 200 (or a 500 when it cannot marshal —
// which the endpoint tests treat as a bug in the status builder).
func writeJSON(w http.ResponseWriter, doc any) {
	b, err := json.Marshal(doc)
	if err != nil {
		http.Error(w, "marshal status: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = w.Write(append(b, '\n'))
}

// NewServer listens on opts.Addr and starts serving reg in a background
// goroutine. Use Addr to discover the bound address (":0" supported) and
// Close to shut down.
func NewServer(reg *Registry, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", opts.Addr, err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler: NewHandler(reg, HandlerOptions{
				Pprof:  opts.Pprof,
				Ready:  opts.Ready,
				Status: opts.Status,
				Flight: opts.Flight,
				Device: opts.Device,
			}),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server immediately, aborting any in-flight scrapes.
// For a clean drain use Shutdown.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown gracefully stops the server: it stops accepting new
// connections and waits for in-flight scrapes to finish, up to ctx's
// deadline (after which remaining connections are forcibly closed, and
// ctx.Err() is returned). Close remains the immediate, non-draining
// variant.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if err != nil {
		_ = s.srv.Close()
	}
	return err
}
