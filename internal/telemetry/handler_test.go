package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/stats"
)

// TestHandlerIntrospectionEndpoints is the table-driven sweep over the
// telemetry handler's health/status/flight surface, covering the nil-hook
// defaults, the not-ready state, and the drained (empty flight) state.
func TestHandlerIntrospectionEndpoints(t *testing.T) {
	flight := NewFlightRecorder(8)
	st := StageTimes{StageEncrypt: 40}
	flight.RecordWrite(0, TraceCtx{TraceID: 7, Span: 1}, 100, 100, false, 0, 50, &st)

	cases := []struct {
		name     string
		opts     HandlerOptions
		path     string
		wantCode int
		check    func(t *testing.T, body string)
	}{
		{
			name: "healthz always ok", path: "/healthz", wantCode: 200,
			check: func(t *testing.T, body string) {
				if strings.TrimSpace(body) != "ok" {
					t.Errorf("body = %q", body)
				}
			},
		},
		{
			name: "readyz defaults ready without hook", path: "/readyz", wantCode: 200,
			check: func(t *testing.T, body string) {
				if strings.TrimSpace(body) != "ready" {
					t.Errorf("body = %q", body)
				}
			},
		},
		{
			name: "readyz not ready",
			opts: HandlerOptions{Ready: func() bool { return false }},
			path: "/readyz", wantCode: http.StatusServiceUnavailable,
			check: func(t *testing.T, body string) {
				if !strings.Contains(body, "not ready") {
					t.Errorf("body = %q", body)
				}
			},
		},
		{
			name: "statusz without hook reports readiness",
			opts: HandlerOptions{Ready: func() bool { return false }},
			path: "/statusz", wantCode: 200,
			check: func(t *testing.T, body string) {
				var m map[string]any
				if err := json.Unmarshal([]byte(body), &m); err != nil {
					t.Fatalf("not JSON: %v", err)
				}
				if m["ready"] != false {
					t.Errorf("ready = %v, want false", m["ready"])
				}
			},
		},
		{
			name: "statusz serves the hook document",
			opts: HandlerOptions{Status: func() any { return map[string]int{"queue": 3} }},
			path: "/statusz", wantCode: 200,
			check: func(t *testing.T, body string) {
				var m map[string]int
				if err := json.Unmarshal([]byte(body), &m); err != nil {
					t.Fatalf("not JSON: %v", err)
				}
				if m["queue"] != 3 {
					t.Errorf("doc = %v", m)
				}
			},
		},
		{
			name: "flightrecorder without hook is empty array",
			path: "/debug/flightrecorder", wantCode: 200,
			check: func(t *testing.T, body string) {
				var recs []FlightRecord
				if err := json.Unmarshal([]byte(body), &recs); err != nil {
					t.Fatalf("not JSON: %v (%q)", err, body)
				}
				if len(recs) != 0 {
					t.Errorf("records = %v", recs)
				}
			},
		},
		{
			name: "flightrecorder drained recorder is empty array",
			opts: HandlerOptions{Flight: NewFlightRecorder(8).Snapshot},
			path: "/debug/flightrecorder", wantCode: 200,
			check: func(t *testing.T, body string) {
				var recs []FlightRecord
				if err := json.Unmarshal([]byte(body), &recs); err != nil {
					t.Fatalf("not JSON: %v (%q)", err, body)
				}
				if len(recs) != 0 {
					t.Errorf("records = %v", recs)
				}
			},
		},
		{
			name: "flightrecorder serves recorded requests",
			opts: HandlerOptions{Flight: flight.Snapshot},
			path: "/debug/flightrecorder", wantCode: 200,
			check: func(t *testing.T, body string) {
				var recs []FlightRecord
				if err := json.Unmarshal([]byte(body), &recs); err != nil {
					t.Fatalf("not JSON: %v", err)
				}
				if len(recs) != 1 || recs[0].Trace != 7 || recs[0].Kind != "write" {
					t.Fatalf("records = %+v", recs)
				}
				if recs[0].StagesNs["encrypt"] <= 0 {
					t.Errorf("stage breakdown = %v", recs[0].StagesNs)
				}
			},
		},
		{
			name: "index lists endpoints", path: "/", wantCode: 200,
			check: func(t *testing.T, body string) {
				for _, want := range []string{"/healthz", "/readyz", "/statusz", "/debug/flightrecorder", "/metrics"} {
					if !strings.Contains(body, want) {
						t.Errorf("index missing %s:\n%s", want, body)
					}
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHandler(NewRegistry(), tc.opts)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", tc.path, nil))
			if rec.Code != tc.wantCode {
				t.Fatalf("GET %s = %d, want %d\n%s", tc.path, rec.Code, tc.wantCode, rec.Body.String())
			}
			tc.check(t, rec.Body.String())
		})
	}
}

// TestFlightRecorderWraparound fills the ring past capacity and checks the
// snapshot keeps exactly the newest capacity records, oldest first.
func TestFlightRecorderWraparound(t *testing.T) {
	f := NewFlightRecorder(4)
	if f.Cap() != 4 {
		t.Fatalf("cap = %d", f.Cap())
	}
	for i := 1; i <= 10; i++ {
		f.RecordRead(2, TraceCtx{TraceID: uint64(i)}, uint64(i), true, 0, 10)
	}
	recs := f.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("snapshot length = %d, want 4", len(recs))
	}
	for i, r := range recs {
		want := uint64(7 + i) // records 7..10 survive
		if r.Trace != want {
			t.Errorf("record %d trace = %d, want %d", i, r.Trace, want)
		}
		if r.Shard != 2 || r.Kind != "read" {
			t.Errorf("record %d = %+v", i, r)
		}
	}
}

// TestFlightRecorderConcurrentSnapshot hammers the ring from writer
// goroutines while snapshotting: every returned record must be internally
// consistent (torn slots are skipped, never surfaced). Run under -race in
// CI.
func TestFlightRecorderConcurrentSnapshot(t *testing.T) {
	f := NewFlightRecorder(16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := StageTimes{StageMedia: 150}
			for i := 1; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f.RecordWrite(w, TraceCtx{TraceID: uint64(i)}, uint64(w), uint64(w), true, 0, sim.Time(w+1)*sim.Nanosecond, &st)
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		for _, r := range f.Snapshot() {
			// lat encodes the writing shard (+1); a torn read that mixed two
			// writers' slots would break this invariant.
			if r.LatNs != float64(r.Shard+1) {
				t.Fatalf("torn record: shard=%d lat=%v", r.Shard, r.LatNs)
			}
			if r.Kind != "write" || !r.Dedup {
				t.Fatalf("torn record: %+v", r)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestFlightRecorderRoundsToPowerOfTwo pins the sizing contract.
func TestFlightRecorderRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 1}, {3, 4}, {4, 4}, {100, 128}, {0, DefaultFlightSlots}, {-5, DefaultFlightSlots}} {
		if got := NewFlightRecorder(tc.in).Cap(); got != tc.want {
			t.Errorf("NewFlightRecorder(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestStagesFromBreakdown pins the Breakdown -> stage-vector mapping the
// statusz stage names depend on.
func TestStagesFromBreakdown(t *testing.T) {
	bd := stats.Breakdown{
		Queue:        1,
		FPCompute:    2,
		FPLookupSRAM: 3,
		FPLookupNVMM: 4,
		ReadCompare:  5,
		Encrypt:      6,
		Media:        7,
		Metadata:     8,
	}
	st := StagesFromBreakdown(&bd)
	want := map[Stage]int64{
		StageQueue: 1, StageFingerprint: 2, StageEFIT: 3, StageFPNVMM: 4,
		StageNVMVerify: 5, StageEncrypt: 6, StageMedia: 7, StageAMT: 8,
	}
	for stage, v := range want {
		if int64(st[stage]) != v {
			t.Errorf("stage %v = %v, want %v", stage, st[stage], v)
		}
	}
}
