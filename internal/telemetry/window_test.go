package telemetry

import (
	"strings"
	"testing"
	"time"
)

func at(s float64) time.Time {
	return time.Unix(1_700_000_000, 0).Add(time.Duration(s * float64(time.Second)))
}

func TestRollingSteadyRate(t *testing.T) {
	r := NewRolling(10*time.Second, 10)
	// 100 ops/s sampled once a second.
	var v uint64
	for i := 0; i <= 5; i++ {
		r.Observe(at(float64(i)), v)
		v += 100
	}
	got := r.Rate(at(5))
	if got < 99 || got > 101 {
		t.Fatalf("steady rate = %g, want ~100", got)
	}
}

func TestRollingSingleSampleIsZero(t *testing.T) {
	r := NewRolling(10*time.Second, 10)
	if rate := r.Rate(at(0)); rate != 0 {
		t.Fatalf("empty aggregator rate = %g, want 0", rate)
	}
	r.Observe(at(0), 42)
	if rate := r.Rate(at(0)); rate != 0 {
		t.Fatalf("single-sample rate = %g, want 0", rate)
	}
}

func TestRollingWindowRollover(t *testing.T) {
	r := NewRolling(10*time.Second, 10)
	// A burst at t=0..2, then silence; by t=20 every burst slot has aged
	// out of the 10 s window and only fresh (flat) samples remain.
	r.Observe(at(0), 0)
	r.Observe(at(1), 1000)
	r.Observe(at(2), 2000)
	if rate := r.Rate(at(2)); rate < 999 || rate > 1001 {
		t.Fatalf("burst rate = %g, want ~1000", rate)
	}
	r.Observe(at(20), 2000)
	r.Observe(at(21), 2000)
	if rate := r.Rate(at(21)); rate != 0 {
		t.Fatalf("post-rollover rate = %g, want 0 (burst slots aged out)", rate)
	}
	// Rate with no recent observations at all: everything out of window.
	if rate := r.Rate(at(60)); rate != 0 {
		t.Fatalf("stale rate = %g, want 0", rate)
	}
}

func TestRollingZeroTrafficWindows(t *testing.T) {
	r := NewRolling(10*time.Second, 10)
	for i := 0; i <= 8; i++ {
		r.Observe(at(float64(i)), 500) // counter never moves
	}
	if rate := r.Rate(at(8)); rate != 0 {
		t.Fatalf("zero-traffic rate = %g, want 0", rate)
	}
	// Traffic resumes: rate reflects only the new delta.
	r.Observe(at(9), 700)
	got := r.Rate(at(9))
	if got <= 0 || got > 700.0/8 {
		t.Fatalf("resumed rate = %g, want in (0, %g]", got, 700.0/8)
	}
}

func TestRollingCounterReset(t *testing.T) {
	r := NewRolling(10*time.Second, 10)
	r.Observe(at(0), 10000)
	r.Observe(at(1), 11000)
	if rate := r.Rate(at(1)); rate < 999 || rate > 1001 {
		t.Fatalf("pre-reset rate = %g, want ~1000", rate)
	}
	// Counter restarts from zero (process restart): the ring must clear
	// instead of producing a wrapped/negative delta.
	r.Observe(at(2), 0)
	if rate := r.Rate(at(2)); rate != 0 {
		t.Fatalf("rate right after reset = %g, want 0", rate)
	}
	r.Observe(at(3), 50)
	r.Observe(at(4), 100)
	got := r.Rate(at(4))
	if got < 49 || got > 51 {
		t.Fatalf("rebuilt rate = %g, want ~50", got)
	}
}

func TestRollingObserveRate(t *testing.T) {
	r := NewRolling(4*time.Second, 4)
	if got := r.ObserveRate(at(0), 0); got != 0 {
		t.Fatalf("first ObserveRate = %g, want 0", got)
	}
	got := r.ObserveRate(at(2), 500)
	if got < 249 || got > 251 {
		t.Fatalf("ObserveRate = %g, want ~250", got)
	}
	if w := r.Window(); w != 4*time.Second {
		t.Fatalf("Window = %v, want 4s", w)
	}
	// Nil receiver is a no-op, matching the rest of the telemetry layer.
	var nilR *Rolling
	nilR.Observe(at(0), 1)
	if nilR.ObserveRate(at(1), 2) != 0 || nilR.Rate(at(1)) != 0 {
		t.Fatal("nil Rolling must report 0")
	}
}

func TestFloatFuncExposition(t *testing.T) {
	reg := NewRegistry()
	v := 0.25
	reg.FloatFunc("esd_test_ratio", "a derived ratio", func() float64 { return v })
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE esd_test_ratio gauge") {
		t.Fatalf("missing TYPE header:\n%s", out)
	}
	if !strings.Contains(out, "esd_test_ratio 0.25") {
		t.Fatalf("missing value line:\n%s", out)
	}
	v = 0.5 // computed at scrape time, not registration time
	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "esd_test_ratio 0.5") {
		t.Fatalf("FloatFunc not re-evaluated:\n%s", sb.String())
	}
	sb.Reset()
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"esd_test_ratio": 0.5`) {
		t.Fatalf("JSON exposition missing FloatFunc:\n%s", sb.String())
	}
}

func TestDeviceHealthGauges(t *testing.T) {
	s := NewSink(Options{})
	s.RegisterDeviceHealth(func() DeviceHealth {
		return DeviceHealth{MaxWear: 40, P99Wear: 15, MeanWear: 4, WearSkew: 10, ReadEnergyNJ: 1.5, WriteEnergyNJ: 6.0}
	})
	var sb strings.Builder
	if err := s.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"esd_device_wear_max 40",
		"esd_device_wear_p99 15",
		"esd_device_wear_mean 4",
		"esd_device_wear_skew 10",
		"esd_device_energy_read_nj 1.5",
		"esd_device_energy_write_nj 6",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, out)
		}
	}
	// Nil-safety: both receiver and callback.
	var nilSink *Sink
	nilSink.RegisterDeviceHealth(nil)
	nilSink.RegisterDeviceHealth(func() DeviceHealth { return DeviceHealth{} })
	nilSink.OnCompare(true)
	s.RegisterDeviceHealth(nil)
}

func TestHybridHealthGauges(t *testing.T) {
	s := NewSink(Options{})
	s.RegisterHybridHealth(func() HybridHealth {
		return HybridHealth{
			DRAMHits: 10, DRAMMisses: 5, Promotions: 4, Demotions: 2,
			Writebacks: 1, WALAppends: 7, AbsorbedWrites: 7,
			CapacityLines: 1024, ResidentLines: 2, DirtyLines: 1,
		}
	})
	var sb strings.Builder
	if err := s.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"esd_hybrid_dram_hit_total 10",
		"esd_hybrid_dram_miss_total 5",
		"esd_hybrid_promotions_total 4",
		"esd_hybrid_demotions_total 2",
		"esd_hybrid_writebacks_total 1",
		"esd_hybrid_wal_appends_total 7",
		"esd_hybrid_absorbed_writes_total 7",
		"esd_hybrid_capacity_lines 1024",
		"esd_hybrid_resident_lines 2",
		"esd_hybrid_dirty_lines 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, out)
		}
	}
	// Nil-safety: both receiver and callback must be no-ops, not panics.
	var nilSink *Sink
	nilSink.RegisterHybridHealth(nil)
	nilSink.RegisterHybridHealth(func() HybridHealth { return HybridHealth{} })
	s.RegisterHybridHealth(nil)
}

func TestDedupEffectivenessGauges(t *testing.T) {
	s := NewSink(Options{})
	// 3 writes: 2 dedup hits, 1 unique; 2 byte-compares, 1 mismatch.
	s.OnWrite("esd", DecDupFPCache, 1, 1, true, 0, 100, nil)
	s.OnWrite("esd", DecDupFPCache, 2, 1, true, 0, 100, nil)
	s.OnWrite("esd", DecUniqueCollision, 3, 3, false, 0, 100, nil)
	s.OnCompare(false)
	s.OnCompare(true)
	var sb strings.Builder
	if err := s.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"esd_dedup_bytes_saved_total 128",
		"esd_compare_reads_total 2",
		"esd_compare_mismatches_total 1",
		"esd_dedup_hit_rate 0.666666",
		"esd_fp_collision_rate 0.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, out)
		}
	}
}
