package telemetry

import (
	"strings"

	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/stats"
)

// Decision is the write-path verdict a scheme reached for one request. The
// taxonomy covers every branch of the five schemes' Fig. 9/Fig. 4 write
// paths, so per-decision counters explain *why* a run behaved as it did.
type Decision uint8

// Write-path decisions.
const (
	DecNone Decision = iota
	// DecBaseline: no deduplication attempted (Baseline scheme).
	DecBaseline
	// DecDupFPCache: duplicate found via the on-chip fingerprint cache
	// (SHA1/DeWrite) or the EFIT (ESD).
	DecDupFPCache
	// DecDupFPNVMM: duplicate found via the NVMM-resident fingerprint
	// index (full-dedup schemes only).
	DecDupFPNVMM
	// DecUniqueFPMiss: fingerprint probe missed; line written as unique.
	DecUniqueFPMiss
	// DecUniqueCollision: fingerprint matched but the byte comparison
	// found different content (collision caught); written as unique.
	DecUniqueCollision
	// DecUniqueReferH: duplicate found but the EFIT entry's reference
	// count saturated at referH; rewritten as new content (ESD §III-D).
	DecUniqueReferH
	// DecPredDupDup: DeWrite T1 — predicted duplicate, was duplicate.
	DecPredDupDup
	// DecPredDupUnique: DeWrite F2 — predicted duplicate, was unique.
	DecPredDupUnique
	// DecPredUniqueUnique: DeWrite T3 — predicted unique, was unique.
	DecPredUniqueUnique
	// DecPredUniqueDup: DeWrite F4 — predicted unique, was duplicate
	// (speculative encryption wasted).
	DecPredUniqueDup
	// DecDeltaWrite: BCD — stored as a compressed delta against a base.
	DecDeltaWrite
	// DecBaseWrite: BCD — stored as a new base line.
	DecBaseWrite

	numDecisions
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case DecBaseline:
		return "baseline"
	case DecDupFPCache:
		return "dup-fp-cache"
	case DecDupFPNVMM:
		return "dup-fp-nvmm"
	case DecUniqueFPMiss:
		return "unique-fp-miss"
	case DecUniqueCollision:
		return "unique-collision"
	case DecUniqueReferH:
		return "unique-referh-overflow"
	case DecPredDupDup:
		return "pred-dup-dup"
	case DecPredDupUnique:
		return "pred-dup-unique"
	case DecPredUniqueUnique:
		return "pred-unique-unique"
	case DecPredUniqueDup:
		return "pred-unique-dup"
	case DecDeltaWrite:
		return "bcd-delta"
	case DecBaseWrite:
		return "bcd-base"
	default:
		return "none"
	}
}

// Options configures a Sink.
type Options struct {
	// Tracer, when non-nil, receives sampled write/read events and every
	// rare event; nil means counters/histograms only.
	Tracer *Tracer
	// SampleEvery emits one write/read event per N requests (default 1 =
	// every request). Rare events (evictions, gap moves, counter
	// overflows, crashes, run markers) are never sampled out.
	SampleEvery int
	// Registry, when non-nil, is where this sink registers its metrics
	// instead of a fresh private registry. The sharded engine passes one
	// shared registry to every per-shard sink so a single scrape endpoint
	// exposes the whole engine.
	Registry *Registry
	// Labels, when non-empty, is a label set (e.g. `shard="3"`) merged
	// into every metric name this sink registers, distinguishing sinks
	// that share a Registry.
	Labels string
	// Flight, when non-nil, receives one flight record per write/read the
	// sink observes (the single-System wiring; the sharded engine records
	// from its workers instead, so per-shard sinks leave this nil).
	Flight *FlightRecorder
}

// labeled merges a constant label set into a metric name, preserving any
// labels the name already carries:
//
//	labeled(`esd_writes_total`, `shard="0"`)                    → esd_writes_total{shard="0"}
//	labeled(`esd_cache_hits_total{cache="amt"}`, `shard="0"`)   → esd_cache_hits_total{cache="amt",shard="0"}
func labeled(name, labels string) string {
	if labels == "" {
		return name
	}
	if strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + labels + "}"
	}
	return name + "{" + labels + "}"
}

// Sink is the per-System telemetry hub: the layers of the request path
// call its hook methods, which bump registry metrics and (when tracing)
// emit sampled events. A nil *Sink is fully valid and makes every hook a
// single-branch no-op — this is the only cost telemetry-off hot paths pay.
//
// Hook methods are called by the (single) simulation thread; the registry
// they update is safe to scrape concurrently.
type Sink struct {
	reg    *Registry
	tracer *Tracer
	flight *FlightRecorder
	sample uint64
	labels string
	nSeen  uint64   // write/read events considered for sampling (sim thread only)
	cur    TraceCtx // current request's trace context (sim thread only)

	writes    *Counter
	reads     *Counter
	dedup     *Counter
	unique    *Counter
	decisions [numDecisions]*Counter

	compareReads *Counter
	compareMism  *Counter
	bytesSaved   *Counter

	writeLat *TimeHistogram
	readLat  *TimeHistogram
	stageLat [NumStages]*TimeHistogram

	efitInserts *Counter
	efitEvicts  *Counter
	efitEntries *Gauge
	amtHits     *Counter
	amtMisses   *Counter
	amtWB       *Counter

	devReads   *Counter
	devWrites  *Counter
	devRowHits *Counter
	gapMoves   *Counter

	encrypts     *Counter
	decrypts     *Counter
	ctrOverflows *Counter
	reencrypts   *Counter

	crashes    *Counter
	events     *Counter
	simNow     *Gauge
	runReqs    *Counter
	runStalled *Gauge
}

// NewSink builds a live sink. Without Options.Registry it owns a private
// registry; with one, its metrics (suffixed by Options.Labels) join the
// shared registry.
func NewSink(opts Options) *Sink {
	s := &Sink{
		reg:    opts.Registry,
		tracer: opts.Tracer,
		flight: opts.Flight,
		sample: uint64(opts.SampleEvery),
		labels: opts.Labels,
	}
	if s.reg == nil {
		s.reg = NewRegistry()
	}
	if s.sample < 1 {
		s.sample = 1
	}
	ctr := func(name, help string) *Counter { return s.reg.Counter(labeled(name, s.labels), help) }
	gauge := func(name, help string) *Gauge { return s.reg.Gauge(labeled(name, s.labels), help) }
	hist := func(name, help string) *TimeHistogram { return s.reg.Histogram(labeled(name, s.labels), help) }
	s.writes = ctr("esd_writes_total", "dirty-eviction writes handled by the scheme")
	s.reads = ctr("esd_reads_total", "demand reads served")
	s.dedup = ctr("esd_dedup_writes_total", "writes eliminated by deduplication")
	s.unique = ctr("esd_unique_writes_total", "lines written to NVMM as unique content")
	for d := Decision(1); d < numDecisions; d++ {
		s.decisions[d] = ctr(
			`esd_write_decision_total{decision="`+d.String()+`"}`,
			"write-path decisions by verdict")
	}
	s.writeLat = hist("esd_write_latency_ns", "CPU-visible write latency (simulated)")
	s.readLat = hist("esd_read_latency_ns", "CPU-visible read latency (simulated)")
	for st := Stage(0); int(st) < NumStages; st++ {
		s.stageLat[st] = hist(
			`esd_stage_latency_ns{stage="`+st.String()+`"}`,
			"write latency by pipeline stage")
	}

	s.efitInserts = ctr("esd_efit_inserts_total", "fingerprint entries installed in the EFIT")
	s.efitEvicts = ctr("esd_efit_evictions_total", "EFIT entries displaced by the LRCU policy")
	s.efitEntries = gauge("esd_efit_entries", "live EFIT entries")
	s.amtHits = ctr("esd_amt_cache_hits_total", "AMT SRAM cache hits")
	s.amtMisses = ctr("esd_amt_cache_misses_total", "AMT SRAM cache misses (NVMM bucket fetch)")
	s.amtWB = ctr("esd_amt_writebacks_total", "dirty AMT entries written back to NVMM")

	s.devReads = ctr("esd_device_reads_total", "PCM media reads")
	s.devWrites = ctr("esd_device_writes_total", "PCM media writes (data and metadata)")
	s.devRowHits = ctr("esd_device_row_hits_total", "row-buffer hits")
	s.gapMoves = ctr("esd_startgap_moves_total", "Start-Gap wear-leveling rotations")

	s.encrypts = ctr("esd_crypto_encrypts_total", "counter-mode line encryptions")
	s.decrypts = ctr("esd_crypto_decrypts_total", "counter-mode line decryptions")
	s.ctrOverflows = ctr("esd_counter_overflows_total", "minor-counter overflows forcing page re-encryption")
	s.reencrypts = ctr("esd_lines_reencrypted_total", "lines re-encrypted by counter-overflow rekeys")

	s.compareReads = ctr("esd_compare_reads_total", "byte-compare verifications of fingerprint-matched dedup candidates")
	s.compareMism = ctr("esd_compare_mismatches_total", "byte-compares that caught an ECC fingerprint collision")
	s.bytesSaved = ctr("esd_dedup_bytes_saved_total", "bytes of media write traffic eliminated by deduplication")

	// Dedup-effectiveness gauge family: derived from the counters above at
	// scrape time, so the hot path pays nothing for them.
	ff := func(name, help string, fn func() float64) { s.reg.FloatFunc(labeled(name, s.labels), help, fn) }
	ratio := func(num, den *Counter) func() float64 {
		return func() float64 {
			d := den.Value()
			if d == 0 {
				return 0
			}
			return float64(num.Value()) / float64(d)
		}
	}
	ff("esd_dedup_hit_rate", "fraction of scheme writes eliminated by deduplication", ratio(s.dedup, s.writes))
	ff("esd_fp_collision_rate", "fraction of byte-compares that caught an ECC fingerprint collision", ratio(s.compareMism, s.compareReads))
	ff("esd_compare_verify_rate", "byte-compare verifications per scheme write", ratio(s.compareReads, s.writes))
	ff("esd_counter_overflow_pressure", "lines re-encrypted by overflow rekeys per unique line written", ratio(s.reencrypts, s.unique))

	s.crashes = ctr("esd_crashes_total", "simulated power failures")
	s.events = ctr("esd_trace_events_total", "events emitted to the tracer")
	s.simNow = gauge("esd_sim_now_ps", "simulated clock (picoseconds)")
	s.runReqs = ctr("esd_run_requests_total", "trace records replayed (including warm-up)")
	s.runStalled = gauge("esd_run_lag_ps", "accumulated closed-loop back-pressure lag")
	return s
}

// Registry exposes the sink's metric set for exposition (nil-safe).
func (s *Sink) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Tracer returns the attached tracer, if any.
func (s *Sink) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tracer
}

// Flight returns the attached flight recorder, if any (nil-safe).
func (s *Sink) Flight() *FlightRecorder {
	if s == nil {
		return nil
	}
	return s.flight
}

// BeginRequest installs the trace context of the request about to enter
// the scheme; subsequent OnWrite/OnRead events and flight records carry
// its trace ID. Called by the layer that drives the scheme (System, the
// controller's replay loop, a shard worker) on the simulation thread.
func (s *Sink) BeginRequest(tc TraceCtx) {
	if s == nil {
		return
	}
	s.cur = tc
}

// emit forwards a non-sampled (rare) event to the tracer.
func (s *Sink) emit(ev Event) {
	if s.tracer == nil {
		return
	}
	s.events.Inc()
	s.tracer.Emit(ev)
}

// sampled reports whether the next write/read event falls on the sampling
// grid. Called from the simulation thread only.
func (s *Sink) sampledTick() bool {
	s.nSeen++
	return s.nSeen%s.sample == 0
}

// OnWrite records one scheme write: decision counter, latency histogram,
// per-stage attribution from the breakdown (may be nil), a flight record,
// and (sampled) a structured trace event.
func (s *Sink) OnWrite(scheme string, d Decision, logical, phys uint64, dedup bool, at, done sim.Time, bd *stats.Breakdown) {
	if s == nil {
		return
	}
	s.writes.Inc()
	if dedup {
		s.dedup.Inc()
		s.bytesSaved.Add(64)
	} else {
		s.unique.Inc()
	}
	if d > DecNone && d < numDecisions {
		s.decisions[d].Inc()
	}
	s.writeLat.Observe(done - at)
	s.simNow.Set(int64(done))
	if bd != nil {
		st := StagesFromBreakdown(bd)
		for i, dur := range st {
			if dur > 0 {
				s.stageLat[i].Observe(dur)
			}
		}
		s.flight.RecordWrite(0, s.cur, logical, phys, dedup, at, done-at, &st)
	} else {
		s.flight.RecordWrite(0, s.cur, logical, phys, dedup, at, done-at, nil)
	}
	if s.tracer != nil && s.sampledTick() {
		s.events.Inc()
		s.tracer.Emit(Event{
			At: int64(at), Kind: "write", Scheme: scheme, Trace: s.cur.TraceID,
			Decision: d.String(), Logical: logical, Phys: phys,
			Dedup: dedup, Lat: int64(done - at),
		})
	}
}

// OnRead records one demand read.
func (s *Sink) OnRead(scheme string, logical uint64, hit bool, at, done sim.Time) {
	if s == nil {
		return
	}
	s.reads.Inc()
	s.readLat.Observe(done - at)
	s.simNow.Set(int64(done))
	s.flight.RecordRead(0, s.cur, logical, hit, at, done-at)
	if s.tracer != nil && s.sampledTick() {
		s.events.Inc()
		detail := "miss"
		if hit {
			detail = "hit"
		}
		s.tracer.Emit(Event{
			At: int64(at), Kind: "read", Scheme: scheme, Trace: s.cur.TraceID,
			Logical: logical, Lat: int64(done - at), Detail: detail,
		})
	}
}

// OnEFITInsert records a fingerprint installation and the resulting entry
// count.
func (s *Sink) OnEFITInsert(entries int) {
	if s == nil {
		return
	}
	s.efitInserts.Inc()
	s.efitEntries.Set(int64(entries))
}

// OnEFITEvict records an LRCU eviction (fp's entry with the given
// reference count left the controller).
func (s *Sink) OnEFITEvict(fp uint64, ref int, at sim.Time) {
	if s == nil {
		return
	}
	s.efitEvicts.Inc()
	s.emit(Event{At: int64(at), Kind: "efit-evict", Phys: fp,
		Detail: "ref=" + itoa(ref)})
}

// OnAMT records one AMT SRAM cache probe.
func (s *Sink) OnAMT(hit bool) {
	if s == nil {
		return
	}
	if hit {
		s.amtHits.Inc()
	} else {
		s.amtMisses.Inc()
	}
}

// OnAMTWriteback records a dirty-entry write-back to the NVMM table.
func (s *Sink) OnAMTWriteback() {
	if s == nil {
		return
	}
	s.amtWB.Inc()
}

// OnCompare records one byte-compare verification of a fingerprint-matched
// dedup candidate; mismatch means the compare caught an ECC collision that
// the fingerprint alone would have mis-deduplicated.
func (s *Sink) OnCompare(mismatch bool) {
	if s == nil {
		return
	}
	s.compareReads.Inc()
	if mismatch {
		s.compareMism.Inc()
	}
}

// DeviceHealth is the scalar device-health sample exposed as a gauge
// family. The device layer fills it via the callback handed to
// RegisterDeviceHealth, keeping telemetry free of an nvm dependency.
type DeviceHealth struct {
	MaxWear       uint64
	P99Wear       uint64
	MeanWear      float64
	WearSkew      float64
	ReadEnergyNJ  float64
	WriteEnergyNJ float64
}

// RegisterDeviceHealth registers the device-health gauge family (wear
// max/p99/mean/skew, media energy split), each gauge computed by fn at
// scrape time. fn must be safe to call concurrently with the simulation;
// nvm's HealthSummary is. Nil-safe on both receiver and fn.
func (s *Sink) RegisterDeviceHealth(fn func() DeviceHealth) {
	if s == nil || fn == nil {
		return
	}
	ff := func(name, help string, get func(DeviceHealth) float64) {
		s.reg.FloatFunc(labeled(name, s.labels), help, func() float64 { return get(fn()) })
	}
	ff("esd_device_wear_max", "highest per-line write count",
		func(h DeviceHealth) float64 { return float64(h.MaxWear) })
	ff("esd_device_wear_p99", "approximate 99th-percentile per-line write count",
		func(h DeviceHealth) float64 { return float64(h.P99Wear) })
	ff("esd_device_wear_mean", "mean write count over lines ever written",
		func(h DeviceHealth) float64 { return h.MeanWear })
	ff("esd_device_wear_skew", "max/mean wear ratio (wear-leveling early warning; 1.0 is level)",
		func(h DeviceHealth) float64 { return h.WearSkew })
	ff("esd_device_energy_read_nj", "media energy spent on reads (nJ)",
		func(h DeviceHealth) float64 { return h.ReadEnergyNJ })
	ff("esd_device_energy_write_nj", "media energy spent on writes (nJ)",
		func(h DeviceHealth) float64 { return h.WriteEnergyNJ })
}

// HybridHealth is the hybrid DRAM/PCM tier's gauge-family sample. The
// media layer fills it via the callback handed to RegisterHybridHealth,
// keeping telemetry free of a media dependency (same pattern as
// DeviceHealth).
type HybridHealth struct {
	DRAMHits       uint64
	DRAMMisses     uint64
	Promotions     uint64
	Demotions      uint64
	Writebacks     uint64
	WALAppends     uint64
	AbsorbedWrites uint64
	CapacityLines  int64
	ResidentLines  int64
	DirtyLines     int64
}

// RegisterHybridHealth registers the hybrid-tier gauge family (DRAM
// hit/miss totals, migration counters, WAL appends, buffer occupancy),
// each gauge computed by fn at scrape time. fn must be safe to call
// concurrently with the simulation; media.Hybrid's Snapshot is. Nil-safe
// on both receiver and fn.
func (s *Sink) RegisterHybridHealth(fn func() HybridHealth) {
	if s == nil || fn == nil {
		return
	}
	ff := func(name, help string, get func(HybridHealth) float64) {
		s.reg.FloatFunc(labeled(name, s.labels), help, func() float64 { return get(fn()) })
	}
	ff("esd_hybrid_dram_hit_total", "timed data reads served from the DRAM tier",
		func(h HybridHealth) float64 { return float64(h.DRAMHits) })
	ff("esd_hybrid_dram_miss_total", "timed data reads served from PCM",
		func(h HybridHealth) float64 { return float64(h.DRAMMisses) })
	ff("esd_hybrid_promotions_total", "lines promoted into the DRAM tier",
		func(h HybridHealth) float64 { return float64(h.Promotions) })
	ff("esd_hybrid_demotions_total", "lines demoted out of the DRAM tier",
		func(h HybridHealth) float64 { return float64(h.Demotions) })
	ff("esd_hybrid_writebacks_total", "dirty demotions that cost a PCM home write",
		func(h HybridHealth) float64 { return float64(h.Writebacks) })
	ff("esd_hybrid_wal_appends_total", "write-ahead PCM persists for DRAM-bound writes",
		func(h HybridHealth) float64 { return float64(h.WALAppends) })
	ff("esd_hybrid_absorbed_writes_total", "data writes absorbed by DRAM instead of a PCM home write",
		func(h HybridHealth) float64 { return float64(h.AbsorbedWrites) })
	ff("esd_hybrid_capacity_lines", "DRAM tier capacity in lines",
		func(h HybridHealth) float64 { return float64(h.CapacityLines) })
	ff("esd_hybrid_resident_lines", "lines currently resident in DRAM",
		func(h HybridHealth) float64 { return float64(h.ResidentLines) })
	ff("esd_hybrid_dirty_lines", "DRAM residents newer than their PCM home",
		func(h HybridHealth) float64 { return float64(h.DirtyLines) })
}

// OnCrash records a simulated power failure.
func (s *Sink) OnCrash(at sim.Time) {
	if s == nil {
		return
	}
	s.crashes.Inc()
	s.emit(Event{At: int64(at), Kind: "crash"})
}

// OnRunProgress is the controller's per-record hook (warm-up included).
func (s *Sink) OnRunProgress(lag sim.Time) {
	if s == nil {
		return
	}
	s.runReqs.Inc()
	s.runStalled.Set(int64(lag))
}

// OnRunMark emits a run lifecycle marker ("run-start", "run-measure",
// "run-end").
func (s *Sink) OnRunMark(kind string, at sim.Time, detail string) {
	if s == nil {
		return
	}
	s.emit(Event{At: int64(at), Kind: kind, Detail: detail})
}

// DeviceRead implements the nvm.Probe hook for media reads.
func (s *Sink) DeviceRead(rowHit bool) {
	if s == nil {
		return
	}
	s.devReads.Inc()
	if rowHit {
		s.devRowHits.Inc()
	}
}

// DeviceWrite implements the nvm.Probe hook for media writes.
func (s *Sink) DeviceWrite() {
	if s == nil {
		return
	}
	s.devWrites.Inc()
}

// GapMove implements the nvm.Probe hook for Start-Gap rotations.
func (s *Sink) GapMove(from, to uint64, at sim.Time) {
	if s == nil {
		return
	}
	s.gapMoves.Inc()
	s.emit(Event{At: int64(at), Kind: "gap-move", Logical: from, Phys: to})
}

// CryptoEncrypt implements the crypto.Probe hook.
func (s *Sink) CryptoEncrypt() {
	if s == nil {
		return
	}
	s.encrypts.Inc()
}

// CryptoDecrypt implements the crypto.Probe hook.
func (s *Sink) CryptoDecrypt() {
	if s == nil {
		return
	}
	s.decrypts.Inc()
}

// CounterOverflow implements the crypto.Probe hook for a minor-counter
// overflow that re-encrypted linesRekeyed lines.
func (s *Sink) CounterOverflow(linesRekeyed int) {
	if s == nil {
		return
	}
	s.ctrOverflows.Inc()
	s.reencrypts.Add(uint64(linesRekeyed))
	s.emit(Event{Kind: "ctr-overflow", Detail: "lines=" + itoa(linesRekeyed)})
}

// CacheProbe is a per-cache instance of the cache.Probe hook interface,
// labeling hit/miss/eviction counters with the cache's role.
type CacheProbe struct {
	hits, misses, evicts *Counter
}

// CacheProbe returns a probe whose counters carry the given cache label
// (e.g. "efit", "amt"). Returns nil (a valid no-op probe slot) on a nil
// sink; callers assign the result to an interface field only when non-nil.
func (s *Sink) CacheProbe(label string) *CacheProbe {
	if s == nil {
		return nil
	}
	return &CacheProbe{
		hits:   s.reg.Counter(labeled(`esd_cache_hits_total{cache="`+label+`"}`, s.labels), "SRAM cache hits by cache"),
		misses: s.reg.Counter(labeled(`esd_cache_misses_total{cache="`+label+`"}`, s.labels), "SRAM cache misses by cache"),
		evicts: s.reg.Counter(labeled(`esd_cache_evictions_total{cache="`+label+`"}`, s.labels), "SRAM cache evictions by cache"),
	}
}

// Hit implements cache.Probe.
func (p *CacheProbe) Hit() { p.hits.Inc() }

// Miss implements cache.Probe.
func (p *CacheProbe) Miss() { p.misses.Inc() }

// Evict implements cache.Probe.
func (p *CacheProbe) Evict() { p.evicts.Inc() }

// itoa is a tiny strconv.Itoa for small non-negative values on hook paths.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
