package telemetry

import (
	"sync"
	"sync/atomic"

	"github.com/esdsim/esd/internal/sim"
)

// FlightRecorder is a fixed-size ring that always holds the last N
// completed requests with their per-stage latency vectors — a black box
// that can be dumped after the fact (on error, on SIGQUIT, or via the
// /debug/flightrecorder endpoint) to explain what the pipeline was doing
// when something went slow or wrong.
//
// Recording is allocation-free and never blocks: a writer claims the next
// sequence number with one atomic add, then publishes the slot under a
// per-slot try-lock. Only a concurrent Snapshot can hold a slot's lock,
// and then the writer drops that one record instead of stalling the
// pipeline — the dump path pays for the hot path, never the reverse. The
// per-slot mutex (rather than per-field atomics) keeps the record cost at
// three atomic operations regardless of how many fields a record carries.
//
// The intended topology is one recorder per shard worker (single writer);
// multiple concurrent writers remain safe as long as the ring is large
// enough that a writer is not lapped mid-record.
type FlightRecorder struct {
	mask  uint64
	seq   atomic.Uint64
	slots []flightSlot
}

// flightSlot is one ring entry. All fields are plain and guarded by mu;
// seq names the record the slot currently holds (0 = never written), so a
// reader can tell a live record from one overwritten during its scan.
type flightSlot struct {
	mu     sync.Mutex
	seq    uint64
	trace  uint64
	addr   uint64
	phys   uint64
	kind   byte
	shard  int32
	flag   bool // dedup for writes, hit for reads
	at     sim.Time
	lat    sim.Time
	stages StageTimes
}

const (
	flightKindWrite = 0
	flightKindRead  = 1
)

// DefaultFlightSlots is the ring size used when none is given.
const DefaultFlightSlots = 256

// NewFlightRecorder builds a recorder holding the last `slots` records,
// rounded up to a power of two (<=0 selects DefaultFlightSlots).
func NewFlightRecorder(slots int) *FlightRecorder {
	if slots <= 0 {
		slots = DefaultFlightSlots
	}
	n := 1
	for n < slots {
		n <<= 1
	}
	return &FlightRecorder{mask: uint64(n - 1), slots: make([]flightSlot, n)}
}

// Cap returns the ring capacity (0 for nil).
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Len returns how many records are currently held (0 for nil).
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	n := f.seq.Load()
	if n > uint64(len(f.slots)) {
		return len(f.slots)
	}
	return int(n)
}

// RecordWrite appends one completed write. phys is the backing physical
// line the write landed on (it locates the serving bank, which the logical
// address does not after remapping). Nil-safe and allocation-free.
func (f *FlightRecorder) RecordWrite(shard int, tc TraceCtx, addr, phys uint64, dedup bool, at, lat sim.Time, st *StageTimes) {
	f.record(flightKindWrite, shard, tc, addr, phys, dedup, at, lat, st)
}

// RecordRead appends one completed read. Nil-safe and allocation-free.
func (f *FlightRecorder) RecordRead(shard int, tc TraceCtx, addr uint64, hit bool, at, lat sim.Time) {
	f.record(flightKindRead, shard, tc, addr, 0, hit, at, lat, nil)
}

func (f *FlightRecorder) record(kind byte, shard int, tc TraceCtx, addr, phys uint64, flag bool, at, lat sim.Time, st *StageTimes) {
	if f == nil {
		return
	}
	n := f.seq.Add(1)
	s := &f.slots[n&f.mask]
	if !s.mu.TryLock() {
		// A dump holds this slot right now. Drop the record (the sequence
		// number shows up as a gap) rather than stall the write path.
		return
	}
	s.seq = n
	s.trace = tc.TraceID
	s.addr = addr
	s.phys = phys
	s.kind = kind
	s.shard = int32(shard)
	s.flag = flag
	s.at = at
	s.lat = lat
	if st != nil {
		s.stages = *st
	} else {
		s.stages = StageTimes{}
	}
	s.mu.Unlock()
}

// FlightRecord is one decoded flight-recorder entry, shaped for JSON
// exposition (/debug/flightrecorder) and offline analysis. Latencies are
// simulated nanoseconds.
type FlightRecord struct {
	// Seq orders records within one recorder (ascending = older to newer).
	Seq uint64 `json:"seq"`
	// Trace is the originating request's trace ID (0 = untraced traffic).
	Trace uint64 `json:"trace,omitempty"`
	Kind  string `json:"kind"` // "write" or "read"
	Shard int    `json:"shard"`
	Addr  uint64 `json:"addr"`
	// Phys is the physical line backing a write — the freshly written line,
	// or the existing shared line for a deduplicated write. Always 0 for
	// reads.
	Phys uint64 `json:"phys,omitempty"`
	// Dedup (writes) and Hit (reads) carry the outcome flag.
	Dedup bool    `json:"dedup,omitempty"`
	Hit   bool    `json:"hit,omitempty"`
	AtNs  float64 `json:"at_ns"`
	LatNs float64 `json:"lat_ns"`
	// StagesNs is the per-stage latency decomposition (writes only; zero
	// stages are omitted).
	StagesNs map[string]float64 `json:"stages_ns,omitempty"`
}

// Snapshot decodes the ring's current contents, oldest first. It allocates
// (it is the cold dump path) and may be called concurrently with writers:
// a slot overwritten between the sequence read and the slot lock is
// skipped rather than returned torn or duplicated.
func (f *FlightRecorder) Snapshot() []FlightRecord {
	if f == nil {
		return nil
	}
	end := f.seq.Load()
	n := uint64(len(f.slots))
	start := uint64(1)
	if end > n {
		start = end - n + 1
	}
	out := make([]FlightRecord, 0, end-start+1)
	for i := start; i <= end; i++ {
		s := &f.slots[i&f.mask]
		s.mu.Lock()
		if s.seq != i {
			s.mu.Unlock()
			continue // overwritten by a newer record, or never completed
		}
		rec := FlightRecord{
			Seq:   i,
			Trace: s.trace,
			Shard: int(s.shard),
			Addr:  s.addr,
			AtNs:  s.at.Nanoseconds(),
			LatNs: s.lat.Nanoseconds(),
		}
		kind, flag, st, phys := s.kind, s.flag, s.stages, s.phys
		s.mu.Unlock()
		if kind == flightKindRead {
			rec.Kind = "read"
			rec.Hit = flag
		} else {
			rec.Kind = "write"
			rec.Dedup = flag
			rec.Phys = phys
			for j, d := range st {
				if d > 0 {
					if rec.StagesNs == nil {
						rec.StagesNs = make(map[string]float64, NumStages)
					}
					rec.StagesNs[Stage(j).String()] = d.Nanoseconds()
				}
			}
		}
		out = append(out, rec)
	}
	return out
}
