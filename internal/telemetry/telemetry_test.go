package telemetry

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/stats"
)

func TestNilPrimitivesAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(7)
	g.Add(-1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *TimeHistogram
	h.Observe(sim.Microsecond)
	snap := h.Snapshot()
	if snap.Count() != 0 {
		t.Error("nil histogram recorded")
	}
}

// TestNilSinkHooksAreNoOps calls EVERY exported Sink method on a nil
// receiver: the schemes call these unconditionally on the hot path, so a
// forgotten nil guard on any new hook is a panic in every untelemetered
// run. Extend this list whenever a hook is added.
func TestNilSinkHooksAreNoOps(t *testing.T) {
	var s *Sink
	bd := stats.Breakdown{Encrypt: 5}
	s.BeginRequest(TraceCtx{TraceID: 1, Span: 1})
	s.OnWrite("esd", DecDupFPCache, 1, 2, true, 0, 10, nil)
	s.OnWrite("esd", DecDupFPCache, 1, 2, true, 0, 10, &bd)
	s.OnRead("esd", 1, true, 0, 10)
	s.OnEFITInsert(3)
	s.OnEFITEvict(1, 2, 0)
	s.OnAMT(true)
	s.OnAMTWriteback()
	s.OnCrash(0)
	s.OnRunProgress(0)
	s.OnRunMark("run-start", 0, "")
	s.DeviceRead(true)
	s.DeviceWrite()
	s.GapMove(0, 1, 0)
	s.CryptoEncrypt()
	s.CryptoDecrypt()
	s.CounterOverflow(4)
	s.RegisterHybridHealth(func() HybridHealth { return HybridHealth{} })
	if s.Registry() != nil || s.Tracer() != nil || s.Flight() != nil {
		t.Error("nil sink leaked non-nil accessors")
	}
	if p := s.CacheProbe("x"); p != nil {
		t.Error("nil sink returned a probe")
	}
}

// TestNilFlightAndStagesAreNoOps covers the new tracing primitives the
// same way: shard workers call these without checking whether tracing is
// enabled, relying on nil receivers being no-ops.
func TestNilFlightAndStagesAreNoOps(t *testing.T) {
	var f *FlightRecorder
	st := StageTimes{StageEncrypt: 5}
	f.RecordWrite(0, TraceCtx{}, 1, 1, true, 0, 10, &st)
	f.RecordRead(0, TraceCtx{}, 1, true, 0, 10)
	if f.Cap() != 0 || f.Len() != 0 {
		t.Error("nil flight recorder has capacity")
	}
	if recs := f.Snapshot(); recs != nil {
		t.Errorf("nil flight recorder snapshot = %v", recs)
	}

	var h *StageHistograms
	h.Observe(&st)
	snap := h.Snapshot()
	for i := range snap {
		if snap[i].Count() != 0 {
			t.Errorf("nil stage histograms recorded stage %v", Stage(i))
		}
	}
}

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_ops_total", "operations")
	c.Add(3)
	// Two labeled counters in one family: HELP/TYPE must appear once.
	a := r.Counter(`t_hits_total{kind="a"}`, "hits by kind")
	b := r.Counter(`t_hits_total{kind="b"}`, "hits by kind")
	a.Inc()
	b.Add(2)
	g := r.Gauge("t_depth", "queue depth")
	g.Set(-4)
	h := r.Histogram("t_lat_ns", "latency")
	h.Observe(10 * sim.Nanosecond)
	h.Observe(100 * sim.Nanosecond)
	h.Observe(100 * sim.Nanosecond)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP t_ops_total operations",
		"# TYPE t_ops_total counter",
		"t_ops_total 3",
		"# TYPE t_hits_total counter",
		`t_hits_total{kind="a"} 1`,
		`t_hits_total{kind="b"} 2`,
		"# TYPE t_depth gauge",
		"t_depth -4",
		"# TYPE t_lat_ns histogram",
		`t_lat_ns_bucket{le="+Inf"} 3`,
		"t_lat_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE t_hits_total counter") != 1 {
		t.Error("family header repeated for labeled series")
	}
	// Histogram buckets must be cumulative and non-decreasing.
	var last int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "t_lat_ns_bucket") || strings.Contains(line, "+Inf") {
			continue
		}
		var le float64
		var n int64
		if _, err := fmtSscanf(line, &le, &n); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if n < last {
			t.Errorf("bucket counts not cumulative at %q", line)
		}
		last = n
	}
}

// fmtSscanf parses `name_bucket{le="X"} N`.
func fmtSscanf(line string, le *float64, n *int64) (int, error) {
	i := strings.Index(line, `le="`)
	j := strings.Index(line[i+4:], `"`)
	if i < 0 || j < 0 {
		return 0, errors.New("no le label")
	}
	if _, err := jsonNumber(line[i+4:i+4+j], le); err != nil {
		return 0, err
	}
	k := strings.LastIndexByte(line, ' ')
	return 2, json.Unmarshal([]byte(line[k+1:]), n)
}

func jsonNumber(s string, f *float64) (int, error) {
	return 1, json.Unmarshal([]byte(s), f)
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("j_ops_total", "").Add(9)
	r.Gauge("j_depth", "").Set(2)
	r.Histogram("j_lat_ns", "").Observe(50 * sim.Nanosecond)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &m); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if m["j_ops_total"].(float64) != 9 {
		t.Errorf("j_ops_total = %v", m["j_ops_total"])
	}
	if _, ok := m["memstats"]; !ok {
		t.Error("memstats missing")
	}
	hist, ok := m["j_lat_ns"].(map[string]any)
	if !ok || hist["count"].(float64) != 1 {
		t.Errorf("histogram sub-object wrong: %v", m["j_lat_ns"])
	}
}

func TestTracerJSONLRoundTrip(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(&sb, FormatJSONL)
	tr.Emit(Event{At: 100, Kind: "write", Scheme: "esd", Decision: "dup-fp-cache", Logical: 7, Phys: 9, Dedup: true, Lat: 5000})
	tr.Emit(Event{At: 200, Kind: "run-end", Detail: "esd"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Seq != 1 || events[1].Seq != 2 {
		t.Errorf("sequence numbers wrong: %d, %d", events[0].Seq, events[1].Seq)
	}
	want := Event{Seq: 1, At: 100, Kind: "write", Scheme: "esd", Decision: "dup-fp-cache", Logical: 7, Phys: 9, Dedup: true, Lat: 5000}
	if events[0] != want {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", events[0], want)
	}
	if tr.Events() != 2 {
		t.Errorf("Events() = %d", tr.Events())
	}
	// Close is idempotent.
	if err := tr.Close(); err != nil {
		t.Error(err)
	}
}

func TestTracerChromeFormat(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(&sb, FormatChrome)
	tr.Emit(Event{At: int64(2 * sim.Microsecond), Kind: "write", Scheme: "esd", Decision: "unique-fp-miss", Lat: int64(sim.Microsecond)})
	tr.Emit(Event{At: 0, Kind: "efit-evict", Detail: "ref=1"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var evs []chromeEvent
	if err := json.Unmarshal([]byte(sb.String()), &evs); err != nil {
		t.Fatalf("not a JSON array: %v\n%s", err, sb.String())
	}
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Ph != "X" || evs[0].Ts != 2 || evs[0].Dur != 1 {
		t.Errorf("complete event wrong: %+v", evs[0])
	}
	if evs[0].Name != "esd:write" || evs[0].Args["decision"] != "unique-fp-miss" {
		t.Errorf("names/args wrong: %+v", evs[0])
	}
	if evs[1].Ph != "i" || evs[1].Name != "efit-evict" {
		t.Errorf("instant event wrong: %+v", evs[1])
	}
}

func TestTracerChromeEmptyIsValidJSON(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(&sb, FormatChrome)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var evs []chromeEvent
	if err := json.Unmarshal([]byte(sb.String()), &evs); err != nil {
		t.Fatalf("empty chrome trace invalid: %v\n%q", err, sb.String())
	}
	if len(evs) != 0 {
		t.Errorf("got %d events from empty trace", len(evs))
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > 1<<16 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestTracerStickyError(t *testing.T) {
	tr := NewTracer(&failWriter{}, FormatJSONL)
	for i := 0; i < 5000; i++ {
		tr.Emit(Event{At: int64(i), Kind: "write"})
	}
	if err := tr.Close(); err == nil {
		t.Fatal("write error not surfaced by Close")
	}
}

func TestParseFormat(t *testing.T) {
	if f, err := ParseFormat(""); err != nil || f != FormatJSONL {
		t.Errorf("ParseFormat(\"\") = %v, %v", f, err)
	}
	if f, err := ParseFormat("chrome"); err != nil || f != FormatChrome {
		t.Errorf("ParseFormat(chrome) = %v, %v", f, err)
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Error("bogus format accepted")
	}
}

func TestSinkCountersAndSampling(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(&sb, FormatJSONL)
	s := NewSink(Options{Tracer: tr, SampleEvery: 3})
	for i := 0; i < 9; i++ {
		s.OnWrite("esd", DecUniqueFPMiss, uint64(i), uint64(i), false, 0, sim.Time(100*(i+1)), nil)
	}
	s.OnWrite("esd", DecDupFPCache, 9, 0, true, 0, 50, nil)
	s.OnRead("esd", 1, true, 0, 200)
	s.OnEFITEvict(42, 1, 500) // rare: always traced regardless of sampling
	s.OnCrash(1000)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	get := func(name string) uint64 { return s.Registry().Counter(name, "").Value() }
	if got := get("esd_writes_total"); got != 10 {
		t.Errorf("writes = %d", got)
	}
	if got := get("esd_dedup_writes_total"); got != 1 {
		t.Errorf("dedup = %d", got)
	}
	if got := get("esd_unique_writes_total"); got != 9 {
		t.Errorf("unique = %d", got)
	}
	if got := get(`esd_write_decision_total{decision="unique-fp-miss"}`); got != 9 {
		t.Errorf("decision counter = %d", got)
	}
	events, err := ReadEvents(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	var writes, rare int
	for _, ev := range events {
		switch ev.Kind {
		case "write", "read":
			writes++
		case "efit-evict", "crash":
			rare++
		}
	}
	// 11 sampled-class events at 1-in-3 → 3; both rare events always pass.
	if writes != 3 {
		t.Errorf("sampled events = %d, want 3", writes)
	}
	if rare != 2 {
		t.Errorf("rare events = %d, want 2", rare)
	}
}

func TestSinkHistogramExposition(t *testing.T) {
	s := NewSink(Options{})
	s.OnWrite("esd", DecBaseline, 0, 0, false, 0, 150*sim.Nanosecond, nil)
	var sb strings.Builder
	if err := s.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "esd_write_latency_ns_count 1") {
		t.Errorf("write latency histogram not exposed:\n%s", out)
	}
}

func TestCacheProbeLabels(t *testing.T) {
	s := NewSink(Options{})
	p := s.CacheProbe("efit")
	p.Hit()
	p.Hit()
	p.Miss()
	p.Evict()
	r := s.Registry()
	if got := r.Counter(`esd_cache_hits_total{cache="efit"}`, "").Value(); got != 2 {
		t.Errorf("hits = %d", got)
	}
	if got := r.Counter(`esd_cache_misses_total{cache="efit"}`, "").Value(); got != 1 {
		t.Errorf("misses = %d", got)
	}
	if got := r.Counter(`esd_cache_evictions_total{cache="efit"}`, "").Value(); got != 1 {
		t.Errorf("evicts = %d", got)
	}
}

func TestServerEndpoints(t *testing.T) {
	s := NewSink(Options{})
	s.OnWrite("esd", DecBaseline, 1, 1, false, 0, 100, nil)
	srv, err := NewServer(s.Registry(), ServerOptions{Addr: "127.0.0.1:0", Pprof: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("/metrics status=%d content-type=%q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(string(body), "esd_writes_total 1") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	resp, err = http.Get(srv.URL() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Errorf("/debug/vars invalid JSON: %v", err)
	}

	resp, err = http.Get(srv.URL() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/debug/pprof/cmdline status=%d with pprof on", resp.StatusCode)
	}
}

func TestServerPprofOffByDefault(t *testing.T) {
	srv, err := NewServer(NewRegistry(), ServerOptions{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(srv.URL() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/pprof/ status=%d, want 404 when pprof is off", resp.StatusCode)
	}
}

func TestDecisionStrings(t *testing.T) {
	seen := map[string]bool{}
	for d := Decision(1); d < numDecisions; d++ {
		s := d.String()
		if s == "none" || s == "" {
			t.Errorf("decision %d has no name", d)
		}
		if seen[s] {
			t.Errorf("duplicate decision name %q", s)
		}
		seen[s] = true
	}
}
