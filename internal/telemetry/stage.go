package telemetry

import (
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/stats"
)

// Stage identifies one stage of the write pipeline for per-request latency
// attribution. The taxonomy is the serving-side view of stats.Breakdown
// (Fig. 17): every simulated picosecond of a write's latency lands in
// exactly one stage, so the per-stage histograms sum to the write-latency
// histogram.
type Stage uint8

// Write-pipeline stages.
const (
	// StageQueue is bank queueing and write-buffer stalls.
	StageQueue Stage = iota
	// StageFingerprint is fingerprint computation (free for ESD's ECC
	// fingerprint, a SHA-1 latency for the hash schemes).
	StageFingerprint
	// StageEFIT is the on-chip fingerprint table probe (the EFIT for ESD,
	// the fingerprint cache for the hash schemes).
	StageEFIT
	// StageFPNVMM is a fingerprint fetch from the NVMM-resident index
	// (full-dedup schemes only).
	StageFPNVMM
	// StageNVMVerify is the NVM read-and-compare verification of a
	// fingerprint match (§III-C).
	StageNVMVerify
	// StageEncrypt is non-overlapped counter-mode encryption time.
	StageEncrypt
	// StageMedia is the NVM media write itself.
	StageMedia
	// StageAMT is AMT lookup/update and other metadata maintenance.
	StageAMT

	// NumStages is the number of pipeline stages.
	NumStages = int(StageAMT) + 1
)

// String implements fmt.Stringer; the names double as metric label values.
func (st Stage) String() string {
	switch st {
	case StageQueue:
		return "queue"
	case StageFingerprint:
		return "fingerprint"
	case StageEFIT:
		return "efit"
	case StageFPNVMM:
		return "fp-nvmm"
	case StageNVMVerify:
		return "nvm-verify"
	case StageEncrypt:
		return "encrypt"
	case StageMedia:
		return "media"
	case StageAMT:
		return "amt"
	default:
		return "unknown"
	}
}

// StageTimes is one request's per-stage latency vector.
type StageTimes [NumStages]sim.Time

// StagesFromBreakdown maps a scheme write's latency breakdown onto the
// stage vector. It is allocation-free (value return).
func StagesFromBreakdown(bd *stats.Breakdown) StageTimes {
	return StageTimes{
		StageQueue:       bd.Queue,
		StageFingerprint: bd.FPCompute,
		StageEFIT:        bd.FPLookupSRAM,
		StageFPNVMM:      bd.FPLookupNVMM,
		StageNVMVerify:   bd.ReadCompare,
		StageEncrypt:     bd.Encrypt,
		StageMedia:       bd.Media,
		StageAMT:         bd.Metadata,
	}
}

// StageHistograms is a per-stage latency histogram set. The zero value is
// ready to use; Observe and Snapshot may run concurrently (each underlying
// TimeHistogram takes its own mutex), so a scrape never needs to stop the
// pipeline.
type StageHistograms [NumStages]TimeHistogram

// Observe records every non-zero stage of one request. Zero stages are
// skipped: a scheme that never touches the NVMM fingerprint index should
// show an empty fp-nvmm histogram, not a spike at zero.
func (h *StageHistograms) Observe(st *StageTimes) {
	if h == nil {
		return
	}
	for i, d := range st {
		if d > 0 {
			h[i].Observe(d)
		}
	}
}

// Snapshot copies every stage histogram.
func (h *StageHistograms) Snapshot() [NumStages]stats.Histogram {
	var out [NumStages]stats.Histogram
	if h == nil {
		return out
	}
	for i := range h {
		out[i] = h[i].Snapshot()
	}
	return out
}

// TraceCtx is the request-scoped trace context threaded from the serving
// front end (internal/server assigns the trace ID as the request enters,
// HTTP or TCP) through the shard worker into the scheme's telemetry hooks,
// so trace events and flight-recorder entries produced deep in the write
// path can be joined back to the network request that caused them.
//
// It is a small value (no pointers, no allocation) carried by value through
// the queues. A zero TraceCtx means "untraced" — internal traffic such as
// trace replay or flushes.
type TraceCtx struct {
	// TraceID is the request's identity, unique per engine (monotonic).
	TraceID uint64
	// Span and Parent identify a span within the trace. The serving front
	// end opens span 1 with parent 0; a layer that fans out (e.g. a future
	// cross-shard operation) would allocate child spans.
	Span   uint32
	Parent uint32
	// StartNs is the wall-clock UnixNano at which the front end accepted
	// the request (0 for internally generated traffic). The simulated
	// clock lives in the events themselves; StartNs anchors them to wall
	// time for slow-request logs.
	StartNs int64
}
