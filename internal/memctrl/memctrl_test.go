package memctrl

import (
	"errors"
	"strings"
	"testing"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/stats"
	"github.com/esdsim/esd/internal/trace"
)

func testEnv() *Env {
	cfg := config.Default()
	cfg.PCM.CapacityBytes = 1 << 26 // 64 MiB keeps maps small in tests
	return NewEnv(cfg)
}

func TestAllocatorReuseAndExhaustion(t *testing.T) {
	a := NewAllocator(3)
	x := a.Alloc()
	y := a.Alloc()
	if x == y {
		t.Fatal("allocator returned duplicate lines")
	}
	a.Free(x)
	if got := a.Alloc(); got != x {
		t.Fatalf("freed line not reused: got %d, want %d", got, x)
	}
	a.Alloc() // third distinct line
	if a.Live() != 3 {
		t.Fatalf("live = %d, want 3", a.Live())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted allocator did not panic")
		}
	}()
	a.Alloc()
}

func TestAllocatorFreeWithoutAllocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Free without Alloc did not panic")
		}
	}()
	NewAllocator(10).Free(0)
}

func TestRefStore(t *testing.T) {
	r := NewRefStore()
	if r.Inc(5) != 1 || r.Inc(5) != 2 {
		t.Fatal("Inc sequence wrong")
	}
	if r.Dec(5) {
		t.Fatal("Dec from 2 reported freed")
	}
	if !r.Dec(5) {
		t.Fatal("Dec from 1 did not report freed")
	}
	if r.Count(5) != 0 || r.Lines() != 0 {
		t.Fatal("freed line still tracked")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Dec of untracked line did not panic")
		}
	}()
	r.Dec(99)
}

func TestMetaLineForStaysInMetadataRegion(t *testing.T) {
	env := testEnv()
	total := uint64(env.Cfg.PCM.Lines())
	for key := uint64(0); key < 10000; key += 7 {
		line := env.MetaLineFor(key)
		if line < env.DataLines || line >= total {
			t.Fatalf("MetaLineFor(%d) = %d outside [%d, %d)", key, line, env.DataLines, total)
		}
	}
}

func TestAMTLookupMissThenHit(t *testing.T) {
	env := testEnv()
	amt := NewAMT(env, 1<<16)
	// Unmapped lookup: miss, costs an NVMM read.
	_, ok, lat := amt.Lookup(42, 0)
	if ok {
		t.Fatal("unmapped logical resolved")
	}
	if lat < env.Cfg.PCM.ReadLatency {
		t.Fatalf("miss latency %v < one NVMM read", lat)
	}
	if amt.NVMMReads != 1 {
		t.Fatalf("NVMMReads = %d", amt.NVMMReads)
	}
	// Map and look up: the update caches the entry, so the hit is SRAM-fast.
	if _, had, _ := amt.Update(42, 1000, 1000*sim.Nanosecond); had {
		t.Fatal("fresh mapping reported a previous value")
	}
	phys, ok, lat := amt.Lookup(42, 2000*sim.Nanosecond)
	if !ok || phys != 1000 {
		t.Fatalf("lookup after update = %d, %v", phys, ok)
	}
	if lat != env.Cfg.Meta.SRAMLatency {
		t.Fatalf("cached lookup latency %v, want SRAM %v", lat, env.Cfg.Meta.SRAMLatency)
	}
}

func TestAMTUpdateReturnsPrevMapping(t *testing.T) {
	env := testEnv()
	amt := NewAMT(env, 1<<16)
	amt.Update(7, 100, 0)
	prev, had, _ := amt.Update(7, 200, 0)
	if !had || prev != 100 {
		t.Fatalf("prev = %d, had=%v", prev, had)
	}
	if amt.Entries() != 1 {
		t.Fatalf("entries = %d", amt.Entries())
	}
	if amt.NVMMBytes() != int64(env.Cfg.Meta.AMTEntryBytes) {
		t.Fatalf("NVMM bytes = %d", amt.NVMMBytes())
	}
}

func TestAMTDirtyWriteBackOnEviction(t *testing.T) {
	env := testEnv()
	amt := NewAMT(env, 16*env.Cfg.Meta.AMTEntryBytes) // 16 entries only
	for i := uint64(0); i < 200; i++ {
		amt.Update(i, i+1000, sim.Time(i)*sim.Microsecond)
	}
	if amt.NVMMWrites == 0 {
		t.Fatal("dirty evictions produced no NVMM write-backs")
	}
	// Backing store remains authoritative for evicted entries.
	phys, ok, _ := amt.Lookup(0, sim.Time(1)*sim.Millisecond)
	if !ok || phys != 1000 {
		t.Fatalf("evicted mapping lost: %d, %v", phys, ok)
	}
}

func TestAMTCacheMissAfterEvictionCostsNVMMRead(t *testing.T) {
	env := testEnv()
	amt := NewAMT(env, 8*env.Cfg.Meta.AMTEntryBytes)
	for i := uint64(0); i < 100; i++ {
		amt.Update(i, i, sim.Time(i)*sim.Microsecond)
	}
	before := amt.NVMMReads
	_, ok, lat := amt.Lookup(0, sim.Millisecond)
	if !ok {
		t.Fatal("mapping lost")
	}
	if amt.NVMMReads != before+1 {
		t.Fatal("evicted-entry lookup did not read NVMM")
	}
	if lat < env.Cfg.PCM.ReadLatency {
		t.Fatalf("miss latency %v too small", lat)
	}
}

// fakeScheme is a controller test double: identity mapping, fixed latency.
type fakeScheme struct {
	env  *Env
	st   SchemeStats
	tick int
	data map[uint64]ecc.Line
}

func (f *fakeScheme) Name() string { return "fake" }
func (f *fakeScheme) Write(logical uint64, data *ecc.Line, at sim.Time) WriteOutcome {
	f.st.Writes++
	f.st.UniqueWrites++
	f.data[logical] = *data
	return WriteOutcome{Done: at + 100*sim.Nanosecond, Breakdown: stats.Breakdown{Media: 100 * sim.Nanosecond}}
}
func (f *fakeScheme) Read(logical uint64, at sim.Time) ReadOutcome {
	f.st.Reads++
	d, ok := f.data[logical]
	return ReadOutcome{Done: at + 75*sim.Nanosecond, Data: d, Hit: ok}
}
func (f *fakeScheme) Tick(sim.Time)          { f.tick++ }
func (f *fakeScheme) TickInterval() sim.Time { return sim.Microsecond }
func (f *fakeScheme) MetadataNVMM() int64    { return 123 }
func (f *fakeScheme) MetadataSRAM() int64    { return 456 }
func (f *fakeScheme) Stats() SchemeStats     { return f.st }

func TestControllerRunAggregates(t *testing.T) {
	env := testEnv()
	fs := &fakeScheme{env: env, data: map[uint64]ecc.Line{}}
	c := NewController(env, fs)
	c.VerifyReads = true
	recs := []trace.Record{
		{Op: trace.OpWrite, Addr: 1, At: 0, Data: ecc.Line{1}},
		{Op: trace.OpRead, Addr: 1, At: 500 * sim.Nanosecond},
		{Op: trace.OpWrite, Addr: 2, At: 3 * sim.Microsecond, Data: ecc.Line{2}},
		{Op: trace.OpRead, Addr: 2, At: 4 * sim.Microsecond},
	}
	res, err := c.Run(trace.NewSliceStream(recs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 4 || res.Writes != 2 || res.Reads != 2 {
		t.Fatalf("counts: %+v", res)
	}
	if res.WriteHist.Count() != 2 || res.ReadHist.Count() != 2 {
		t.Fatal("histograms not populated")
	}
	if res.WriteHist.Mean() != 100*sim.Nanosecond {
		t.Fatalf("write mean %v", res.WriteHist.Mean())
	}
	if fs.tick < 3 {
		t.Fatalf("tick ran %d times, want >= 3 (1us interval over 4us)", fs.tick)
	}
	if res.MetadataNVMM != 123 || res.MetadataSRAM != 456 {
		t.Fatal("metadata sizes not propagated")
	}
	if res.SumReadLatency != 150*sim.Nanosecond {
		t.Fatalf("SumReadLatency = %v", res.SumReadLatency)
	}
}

func TestControllerVerifyCatchesCorruption(t *testing.T) {
	env := testEnv()
	fs := &fakeScheme{env: env, data: map[uint64]ecc.Line{}}
	c := NewController(env, fs)
	c.VerifyReads = true
	recs := []trace.Record{
		{Op: trace.OpWrite, Addr: 1, At: 0, Data: ecc.Line{1}},
		{Op: trace.OpWrite, Addr: 1, At: 100, Data: ecc.Line{9}},
		{Op: trace.OpRead, Addr: 1, At: 200},
	}
	// Sabotage the scheme's store between write and read.
	fs.data[1] = ecc.Line{1} // stale value
	recs2 := recs[:2]
	if _, err := c.Run(trace.NewSliceStream(recs2)); err != nil {
		t.Fatal(err)
	}
	fs.data[1] = ecc.Line{1}
	_, err := c.Run(trace.NewSliceStream([]trace.Record{{Op: trace.OpRead, Addr: 1, At: 300}}))
	if !errors.Is(err, ErrReadCorruption) {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestControllerRejectsRegressedTime(t *testing.T) {
	env := testEnv()
	fs := &fakeScheme{env: env, data: map[uint64]ecc.Line{}}
	c := NewController(env, fs)
	recs := []trace.Record{
		{Op: trace.OpWrite, Addr: 1, At: 1000},
		{Op: trace.OpWrite, Addr: 2, At: 500},
	}
	if _, err := c.Run(trace.NewSliceStream(recs)); err == nil ||
		!strings.Contains(err.Error(), "regressed") {
		t.Fatalf("time regression not rejected: %v", err)
	}
}

func TestIPCModel(t *testing.T) {
	cpu := config.Default().CPU
	r := &RunResult{Requests: 10000, SumReadLatency: 10000 * 300 * sim.Nanosecond}
	ipc := r.IPC(cpu, 10)
	if ipc <= 0 {
		t.Fatalf("IPC = %v", ipc)
	}
	// Fewer stalls must give higher IPC.
	r2 := &RunResult{Requests: 10000, SumReadLatency: 10000 * 100 * sim.Nanosecond}
	if r2.IPC(cpu, 10) <= ipc {
		t.Fatal("IPC not monotone in read latency")
	}
	// Write stalls reduce IPC.
	r3 := &RunResult{Requests: 10000, SumReadLatency: r.SumReadLatency, SumWriteStall: 10000 * 100 * sim.Nanosecond}
	if r3.IPC(cpu, 10) >= ipc {
		t.Fatal("IPC ignores write stalls")
	}
	if (&RunResult{}).IPC(cpu, 10) != 0 {
		t.Fatal("empty result IPC != 0")
	}
}

func TestWriteReductionVs(t *testing.T) {
	base := &RunResult{DataWrites: 1000}
	r := &RunResult{DataWrites: 500}
	if wr := r.WriteReductionVs(base); wr != 0.5 {
		t.Fatalf("write reduction = %v", wr)
	}
	if (&RunResult{}).WriteReductionVs(&RunResult{}) != 0 {
		t.Fatal("zero baseline not handled")
	}
}

func TestSchemeStatsDedupRate(t *testing.T) {
	s := SchemeStats{Writes: 100, DedupWrites: 25}
	if s.DedupRate() != 0.25 {
		t.Fatalf("dedup rate = %v", s.DedupRate())
	}
	if (SchemeStats{}).DedupRate() != 0 {
		t.Fatal("empty dedup rate != 0")
	}
}
