package memctrl

import (
	"errors"
	"fmt"
	"io"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/media"
	"github.com/esdsim/esd/internal/nvm"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/stats"
	"github.com/esdsim/esd/internal/telemetry"
	"github.com/esdsim/esd/internal/trace"
)

// RunResult aggregates everything a trace replay measures.
type RunResult struct {
	SchemeName string

	Requests uint64
	Reads    uint64
	Writes   uint64

	// WriteHist and ReadHist hold CPU-visible request latencies.
	WriteHist stats.Histogram
	ReadHist  stats.Histogram

	// Breakdown accumulates the Fig. 17 write-path decomposition.
	Breakdown stats.Breakdown

	// SumReadLatency / SumWriteStall feed the IPC model.
	SumReadLatency sim.Time
	SumWriteStall  sim.Time
	// Stall is the total back-pressure lag accumulated by the closed-loop
	// arrival model: how much the scheme slowed the application down.
	Stall sim.Time

	// Energy combines scheme-side energy with NVM media energy.
	Energy stats.EnergyLedger

	// DataWrites counts unique data lines written to NVMM (Fig. 11);
	// DeviceWrites counts all media writes including metadata.
	DataWrites   uint64
	DeviceWrites uint64

	Scheme SchemeStats
	Wear   nvm.WearSummary

	// Hybrid holds the DRAM/PCM tier snapshot when the Env ran with
	// hybrid media enabled (scheme esd+caram); nil on plain PCM.
	Hybrid *media.HybridStats

	// Elapsed is the simulated time from first arrival to device idle.
	Elapsed sim.Time

	MetadataNVMM int64
	MetadataSRAM int64
}

// WriteReductionVs returns the fraction of data writes eliminated relative
// to a baseline result.
func (r *RunResult) WriteReductionVs(base *RunResult) float64 {
	if base.DataWrites == 0 {
		return 0
	}
	return 1 - float64(r.DataWrites)/float64(base.DataWrites)
}

// IPC estimates instructions per cycle using a simple in-order stall
// model: the application executes Requests*1000/MPKI instructions at
// BaseCPI, and memory adds read stalls (divided by the sustained MLP) plus
// write back-pressure stalls.
func (r *RunResult) IPC(cpu config.CPU, mpki float64) float64 {
	if r.Requests == 0 || mpki <= 0 {
		return 0
	}
	instr := float64(r.Requests) * 1000 / mpki
	cycleTime := float64(cpu.CycleTime())
	stallCycles := (float64(r.SumReadLatency)/cpu.ReadMLP +
		float64(r.SumWriteStall)*cpu.WriteBufferStallPenalty +
		float64(r.Stall)) / cycleTime
	cycles := instr*cpu.BaseCPI/float64(cpu.Cores) + stallCycles
	if cycles <= 0 {
		return 0
	}
	return instr / cycles
}

// Controller replays traces through a scheme.
type Controller struct {
	env    *Env
	scheme Scheme

	// VerifyReads enables the functional oracle: every read's plaintext is
	// checked against the latest written content for that logical address.
	VerifyReads bool
	// Warmup is the number of leading trace records that exercise the
	// system without being measured, mirroring the paper's initialization
	// phase: caches, predictors and metadata fill before statistics start.
	Warmup int

	// SlowThreshold enables slow-request logging during replay: any record
	// whose simulated service latency is at or above the threshold is
	// printed to SlowLog with its trace id and stage breakdown, so a tail
	// outlier in a long replay can be tied back to a specific request.
	SlowThreshold sim.Time
	SlowLog       io.Writer
	// SlowMax caps how many slow requests are logged (0 = unlimited), so a
	// mis-set threshold cannot flood gigabytes of log from one replay.
	SlowMax int

	oracle  map[uint64]ecc.Line
	reqSeq  uint64
	slowHit int
}

// NewController pairs a scheme with its environment.
func NewController(env *Env, scheme Scheme) *Controller {
	return &Controller{env: env, scheme: scheme, oracle: make(map[uint64]ecc.Line)}
}

// ErrReadCorruption is returned when VerifyReads catches a data mismatch —
// it means a scheme deduplicated two different lines.
var ErrReadCorruption = errors.New("memctrl: read returned wrong data")

// Run replays the stream to exhaustion and returns the aggregated result.
func (c *Controller) Run(s trace.Stream) (*RunResult, error) {
	res := &RunResult{SchemeName: c.scheme.Name()}
	interval := c.scheme.TickInterval()
	var nextTick sim.Time
	if interval > 0 {
		nextTick = interval
	}

	// Closed-loop back-pressure: at most MaxOutstanding requests may be in
	// flight. When the scheme falls behind the trace's arrival rate, later
	// arrivals are pushed back (lag), modelling the core stalling on full
	// MSHRs/write buffers — the application slows down instead of queueing
	// unboundedly.
	maxOut := c.env.Cfg.CPU.MaxOutstanding
	if maxOut < 1 {
		maxOut = 1
	}
	doneRing := make([]sim.Time, maxOut)
	ringIdx := 0
	var lag sim.Time
	var last sim.Time
	var prevArrival sim.Time
	warmLeft := c.Warmup
	var schemeBase SchemeStats
	var deviceWritesBase uint64
	var mediaEnergyBase float64
	var energyBase stats.EnergyLedger
	var lagBase sim.Time
	c.env.Tel.OnRunMark("run-start", 0, c.scheme.Name())
	if warmLeft == 0 {
		c.env.Tel.OnRunMark("run-measure", 0, "no warmup")
	}
	for {
		rec, err := s.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return res, err
		}
		if rec.At < last {
			return res, fmt.Errorf("memctrl: trace time regressed at request %d", res.Requests)
		}
		last = rec.At

		arrival := rec.At + lag
		if slotFree := doneRing[ringIdx]; slotFree > arrival {
			lag += slotFree - arrival
			arrival = slotFree
		}
		if arrival < prevArrival {
			arrival = prevArrival
		}
		prevArrival = arrival

		for interval > 0 && nextTick <= arrival {
			c.scheme.Tick(nextTick)
			nextTick += interval
		}
		measuring := warmLeft == 0
		if measuring {
			res.Requests++
		}
		c.reqSeq++
		c.env.Tel.BeginRequest(telemetry.TraceCtx{TraceID: c.reqSeq, Span: 1, StartNs: int64(arrival)})
		var done sim.Time
		var slowBD stats.Breakdown
		switch rec.Op {
		case trace.OpWrite:
			out := c.scheme.Write(rec.Addr, &rec.Data, arrival)
			if out.Done < arrival {
				return res, fmt.Errorf("memctrl: write completed before arrival at request %d", res.Requests)
			}
			done = out.Done
			slowBD = out.Breakdown
			if measuring {
				res.Writes++
				res.WriteHist.Record(out.Done - arrival)
				res.Breakdown.Add(out.Breakdown)
				res.SumWriteStall += out.Breakdown.Queue
			}
			if c.VerifyReads {
				c.oracle[rec.Addr] = rec.Data
			}
		case trace.OpRead:
			out := c.scheme.Read(rec.Addr, arrival)
			if out.Done < arrival {
				return res, fmt.Errorf("memctrl: read completed before arrival at request %d", res.Requests)
			}
			done = out.Done
			if measuring {
				res.Reads++
				res.ReadHist.Record(out.Done - arrival)
				res.SumReadLatency += out.Done - arrival
			}
			if c.VerifyReads {
				if want, ok := c.oracle[rec.Addr]; ok {
					if !out.Hit || out.Data != want {
						return res, fmt.Errorf("%w: logical line %d", ErrReadCorruption, rec.Addr)
					}
				}
			}
		default:
			return res, fmt.Errorf("memctrl: unknown op %v", rec.Op)
		}
		if c.SlowThreshold > 0 && c.SlowLog != nil && done-arrival >= c.SlowThreshold {
			c.logSlow(rec.Op, rec.Addr, arrival, done, &slowBD)
		}
		doneRing[ringIdx] = done
		ringIdx = (ringIdx + 1) % maxOut
		c.env.Tel.OnRunProgress(lag)
		if !measuring {
			warmLeft--
			if warmLeft == 0 {
				schemeBase = c.scheme.Stats()
				mst := c.env.Device.MediaStats()
				deviceWritesBase = mst.Writes
				mediaEnergyBase = mst.MediaEnergy
				energyBase = c.env.Energy
				lagBase = lag
				c.env.Tel.OnRunMark("run-measure", arrival, "warmup complete")
			}
		}
	}
	idle := c.env.Device.Flush(last + lag)
	c.env.Tel.OnRunMark("run-end", idle, c.scheme.Name())
	res.Elapsed = idle
	res.Stall = lag - lagBase

	res.Scheme = c.scheme.Stats().Sub(schemeBase)
	res.DataWrites = res.Scheme.UniqueWrites
	mst := c.env.Device.MediaStats()
	res.DeviceWrites = mst.Writes - deviceWritesBase
	res.Wear = c.env.Device.Wear()
	res.Energy = c.env.Energy.Sub(energyBase)
	res.Energy.Media += mst.MediaEnergy - mediaEnergyBase
	res.MetadataNVMM = c.scheme.MetadataNVMM()
	res.MetadataSRAM = c.scheme.MetadataSRAM()
	if h := c.env.Hybrid(); h != nil {
		snap := h.Snapshot()
		res.Hybrid = &snap
	}
	return res, nil
}

// logSlow prints one slow-request line: trace id, simulated arrival and
// latency, plus (for writes) the non-zero stage decomposition, matching
// the stage names the live /statusz endpoint reports.
func (c *Controller) logSlow(op trace.Op, addr uint64, arrival, done sim.Time, bd *stats.Breakdown) {
	if c.SlowMax > 0 && c.slowHit >= c.SlowMax {
		return
	}
	c.slowHit++
	kind := "read"
	if op == trace.OpWrite {
		kind = "write"
	}
	fmt.Fprintf(c.SlowLog, "memctrl: slow %s trace=%d addr=%d at=%s lat=%s",
		kind, c.reqSeq, addr, arrival, done-arrival)
	if op == trace.OpWrite {
		st := telemetry.StagesFromBreakdown(bd)
		for i := range st {
			if st[i] > 0 {
				fmt.Fprintf(c.SlowLog, " %s=%s", telemetry.Stage(i), st[i])
			}
		}
	}
	fmt.Fprintln(c.SlowLog)
}

// SlowLogged reports how many slow requests were printed so far.
func (c *Controller) SlowLogged() int { return c.slowHit }

// Env returns the controller's environment (for inspection in tests and
// experiments).
func (c *Controller) Env() *Env { return c.env }
