// Package memctrl models the CPU-side memory controller in which every
// deduplication scheme lives (§III-A: ESD "locates inside the memory
// controller on the CPU-side"). It provides:
//
//   - the Scheme interface implemented by Baseline, Dedup_SHA1, DeWrite
//     (package dedup) and ESD (package core);
//   - the shared machinery those schemes compose: the Address Mapping
//     Table (AMT) with an SRAM hot-entry cache backed by NVMM, a physical
//     line allocator with reference counting, and the controller front-end
//     pipeline whose occupancy creates the cascade blocking the paper
//     attributes to expensive fingerprints;
//   - the Controller that replays a trace through a scheme and collects
//     the latency, energy, endurance and breakdown metrics behind the
//     paper's figures.
package memctrl

import (
	"fmt"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/crypto"
	"github.com/esdsim/esd/internal/dram"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/integrity"
	"github.com/esdsim/esd/internal/media"
	"github.com/esdsim/esd/internal/nvm"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/stats"
	"github.com/esdsim/esd/internal/telemetry"
)

// MediaBackend is the media layer a scheme writes through — nvm.Device
// (plain PCM) or media.Hybrid (DRAM buffer in front of PCM). See package
// media for the contract.
type MediaBackend = media.Backend

// WriteOutcome reports how a scheme handled one dirty-eviction write.
type WriteOutcome struct {
	// Done is the CPU-visible completion time of the write path.
	Done sim.Time
	// Breakdown decomposes the write latency (Fig. 17 components).
	Breakdown stats.Breakdown
	// Deduplicated reports whether the line was eliminated.
	Deduplicated bool
	// PhysAddr is the physical line that now backs the logical address.
	PhysAddr uint64
}

// ReadOutcome reports how a scheme served one demand read.
type ReadOutcome struct {
	// Done is when decrypted data is available.
	Done sim.Time
	// Data is the plaintext line content (zero line for cold reads).
	Data ecc.Line
	// Hit reports whether the logical address had ever been written.
	Hit bool
}

// SchemeStats counts scheme-level events; not every field is meaningful
// for every scheme.
type SchemeStats struct {
	Writes       uint64
	Reads        uint64
	UniqueWrites uint64 // lines actually written to NVMM
	DedupWrites  uint64 // lines eliminated by deduplication

	FPCacheHits   uint64
	FPCacheMisses uint64
	FPNVMMLookups uint64 // fingerprint fetches from NVMM (full dedup only)
	DupByCache    uint64 // duplicates detected via the on-chip FP cache
	DupByNVMM     uint64 // duplicates detected via NVMM-resident fingerprints

	CompareReads      uint64 // candidate-line reads for byte comparison
	CompareMismatches uint64 // fingerprint collisions caught by comparison

	PredDup           uint64 // DeWrite: predicted-duplicate writes
	PredUnique        uint64 // DeWrite: predicted-unique writes
	Mispredicts       uint64 // DeWrite: wrong predictions
	WastedEncryptions uint64 // DeWrite: speculative encryptions discarded

	ReferHOverflows uint64 // ESD: reference counts that exceeded referH
}

// Sub returns s minus base, field-wise; used to discard warm-up activity.
func (s SchemeStats) Sub(base SchemeStats) SchemeStats {
	return SchemeStats{
		Writes:            s.Writes - base.Writes,
		Reads:             s.Reads - base.Reads,
		UniqueWrites:      s.UniqueWrites - base.UniqueWrites,
		DedupWrites:       s.DedupWrites - base.DedupWrites,
		FPCacheHits:       s.FPCacheHits - base.FPCacheHits,
		FPCacheMisses:     s.FPCacheMisses - base.FPCacheMisses,
		FPNVMMLookups:     s.FPNVMMLookups - base.FPNVMMLookups,
		DupByCache:        s.DupByCache - base.DupByCache,
		DupByNVMM:         s.DupByNVMM - base.DupByNVMM,
		CompareReads:      s.CompareReads - base.CompareReads,
		CompareMismatches: s.CompareMismatches - base.CompareMismatches,
		PredDup:           s.PredDup - base.PredDup,
		PredUnique:        s.PredUnique - base.PredUnique,
		Mispredicts:       s.Mispredicts - base.Mispredicts,
		WastedEncryptions: s.WastedEncryptions - base.WastedEncryptions,
		ReferHOverflows:   s.ReferHOverflows - base.ReferHOverflows,
	}
}

// Add returns s plus other, field-wise; used by the sharded engine to
// aggregate per-shard counters into one system-wide view.
func (s SchemeStats) Add(other SchemeStats) SchemeStats {
	return SchemeStats{
		Writes:            s.Writes + other.Writes,
		Reads:             s.Reads + other.Reads,
		UniqueWrites:      s.UniqueWrites + other.UniqueWrites,
		DedupWrites:       s.DedupWrites + other.DedupWrites,
		FPCacheHits:       s.FPCacheHits + other.FPCacheHits,
		FPCacheMisses:     s.FPCacheMisses + other.FPCacheMisses,
		FPNVMMLookups:     s.FPNVMMLookups + other.FPNVMMLookups,
		DupByCache:        s.DupByCache + other.DupByCache,
		DupByNVMM:         s.DupByNVMM + other.DupByNVMM,
		CompareReads:      s.CompareReads + other.CompareReads,
		CompareMismatches: s.CompareMismatches + other.CompareMismatches,
		PredDup:           s.PredDup + other.PredDup,
		PredUnique:        s.PredUnique + other.PredUnique,
		Mispredicts:       s.Mispredicts + other.Mispredicts,
		WastedEncryptions: s.WastedEncryptions + other.WastedEncryptions,
		ReferHOverflows:   s.ReferHOverflows + other.ReferHOverflows,
	}
}

// DedupRate returns the fraction of writes eliminated.
func (s SchemeStats) DedupRate() float64 {
	if s.Writes == 0 {
		return 0
	}
	return float64(s.DedupWrites) / float64(s.Writes)
}

// Scheme is a write-path deduplication/encryption policy living in the
// memory controller.
type Scheme interface {
	// Name identifies the scheme ("baseline", "dedup-sha1", "dewrite",
	// "esd").
	Name() string
	// Write handles a dirty LLC eviction arriving at `at`.
	Write(logical uint64, data *ecc.Line, at sim.Time) WriteOutcome
	// Read serves a demand read arriving at `at`.
	Read(logical uint64, at sim.Time) ReadOutcome
	// Tick performs periodic maintenance (e.g. ESD's LRCU refresh);
	// the controller calls it on the scheme's TickInterval.
	Tick(now sim.Time)
	// TickInterval returns the maintenance period (0 = no maintenance).
	TickInterval() sim.Time
	// MetadataNVMM returns the bytes of scheme metadata resident in NVMM
	// (fingerprint stores, AMT backing); used by Fig. 19.
	MetadataNVMM() int64
	// MetadataSRAM returns the bytes of on-chip metadata cache in use.
	MetadataSRAM() int64
	// Stats returns the scheme's event counters.
	Stats() SchemeStats
}

// Crasher is implemented by schemes that support simulated power failure:
// Crash drains eADR-protected dirty metadata to NVMM and discards all
// volatile SRAM state (fingerprint caches, predictors, hot-entry caches).
// Data must remain fully readable afterwards — the property §III-E argues
// for ESD, which keeps no fingerprint state that needs recovery at all.
type Crasher interface {
	Crash(now sim.Time)
}

// Env bundles the shared hardware a scheme operates on. One Env must be
// used by exactly one scheme instance.
type Env struct {
	Cfg config.Config
	// Device is the media the scheme's lines live on. NewEnv installs the
	// plain PCM device; EnableHybridMedia wraps it with the DRAM/PCM
	// hybrid tier (scheme ESD+CARAM) before any traffic flows.
	Device MediaBackend
	Crypto *crypto.Engine
	// Frontend is the controller's processing pipeline. Serial compute
	// (hashing, probes) reserves it, so an expensive fingerprint on one
	// write delays every queued request behind it (cascade blocking).
	Frontend sim.Resource
	// Energy accumulates scheme-side energy; media energy is accounted by
	// the device.
	Energy stats.EnergyLedger

	// Integrity, when non-nil, is the Merkle counter tree authenticating
	// encryption counters (config.Crypto.IntegrityEnabled).
	Integrity *integrity.Tree

	// Tel is the telemetry sink every layer reports into. It is nil when
	// telemetry is off — all Sink hooks are nil-safe, so instrumented hot
	// paths pay only one predictable branch per hook. Set it (via
	// AttachTelemetry) before constructing a scheme so cache probes attach.
	Tel *telemetry.Sink

	// StepHook, when non-nil, is invoked at named intermediate points
	// inside scheme write paths (see StepPoint). It exists for crash-point
	// testing: a hook may call the scheme's Crash from inside a write to
	// model power failure between two metadata updates, and the recovered
	// state must still satisfy every checker invariant. Nil in production;
	// the hot path pays one predictable branch per point.
	StepHook func(StepPoint)

	// Address space layout: data lines occupy [0, DataLines); metadata
	// structures hash into [DataLines, total lines).
	DataLines uint64
	metaLines uint64

	// hybrid is non-nil once EnableHybridMedia wrapped Device with the
	// DRAM/PCM tier; the dedup plumbing feeds placement hints through it.
	hybrid *media.Hybrid
}

// StepPoint names an intermediate point inside a scheme's write path where
// a crash is architecturally possible: after one metadata structure was
// updated but before the dependent one. The checker's crash tables inject
// failures exactly here.
type StepPoint uint8

const (
	// StepAMTUpdated fires after the AMT mapping was installed but before
	// the reference counts were adjusted (inside MapWrite).
	StepAMTUpdated StepPoint = iota
	// StepCounterBumped fires after the encryption counter was advanced
	// but before the ciphertext reached the media write queue.
	StepCounterBumped
	// StepWALPersisted fires (hybrid media only) after a DRAM-bound
	// write's write-ahead PCM persist but before the DRAM install.
	StepWALPersisted
	// StepDRAMInstalled fires (hybrid media only) after the DRAM install
	// but before the caller's dependent metadata updates.
	StepDRAMInstalled
)

// String names the step point for failure reports.
func (p StepPoint) String() string {
	switch p {
	case StepAMTUpdated:
		return "amt-updated"
	case StepCounterBumped:
		return "counter-bumped"
	case StepWALPersisted:
		return "wal-persisted"
	case StepDRAMInstalled:
		return "dram-installed"
	default:
		return "unknown-step"
	}
}

// Step invokes the test hook, if any. Schemes call it at each StepPoint.
func (e *Env) Step(p StepPoint) {
	if e.StepHook != nil {
		e.StepHook(p)
	}
}

// NewEnv builds an Env from a validated config. A quarter of the device is
// reserved for metadata structures, mirroring the generous worst case of
// full-dedup schemes (§II-B: up to 25% overhead).
func NewEnv(cfg config.Config) *Env {
	total := uint64(cfg.PCM.Lines())
	meta := total / 4
	e := &Env{
		Cfg:       cfg,
		Device:    nvm.New(cfg.PCM),
		Crypto:    crypto.NewEngineFromSeed(cfg.Seed),
		DataLines: total - meta,
		metaLines: meta,
	}
	if cfg.Crypto.IntegrityEnabled {
		e.Integrity = integrity.New(integrity.DefaultConfig(e.DataLines))
	}
	return e
}

// EnableHybridMedia wraps the plain PCM device with the content-aware
// DRAM/PCM hybrid tier (scheme ESD+CARAM). It must run before any
// traffic flows — NewScheme calls it while building a hybrid scheme —
// and is idempotent. The rotating write-ahead log lives at the base of
// the metadata region: its appends are timing-only metadata writes, so
// sharing addresses with hashed metadata lines is harmless, and its wear
// lands where metadata wear already does.
func (e *Env) EnableHybridMedia() error {
	if e.hybrid != nil {
		return nil
	}
	pcm, ok := e.Device.(*nvm.Device)
	if !ok {
		return fmt.Errorf("memctrl: hybrid media needs the raw PCM device, have %T", e.Device)
	}
	mcfg := e.Cfg.Media.Normalized(e.Cfg.PCM)
	walLines := uint64(mcfg.WALLines)
	if e.metaLines > 0 && walLines > e.metaLines {
		walLines = e.metaLines
	}
	if walLines == 0 {
		walLines = 1
	}
	h := media.NewHybrid(pcm, dram.New(mcfg.DRAM), mcfg, e.DataLines, walLines)
	h.OnStep = func(s media.Step) {
		switch s {
		case media.StepWALPersisted:
			e.Step(StepWALPersisted)
		case media.StepDRAMInstalled:
			e.Step(StepDRAMInstalled)
		}
	}
	e.Device = h
	e.hybrid = h
	e.registerHybridTelemetry()
	return nil
}

// Hybrid returns the DRAM/PCM tier, or nil when the media is plain PCM.
func (e *Env) Hybrid() *media.Hybrid { return e.hybrid }

// NoteDupRef feeds the dedup engine's duplicate-reference signal (an
// EFIT hit / refcount increment on phys) to the hybrid tier's placement
// policy. One predictable branch when the media is plain PCM.
func (e *Env) NoteDupRef(phys uint64, at sim.Time) {
	if e.hybrid != nil {
		e.hybrid.RefHint(phys, at)
	}
}

// CrashMedia drops the volatile side of the media across a simulated
// power failure (after recovery replay); a no-op on plain PCM, which has
// no volatile side.
func (e *Env) CrashMedia() {
	if e.hybrid != nil {
		e.hybrid.Crash()
	}
}

// AttachTelemetry wires tel into the environment and the hardware it owns:
// the device's media probe, the crypto engine's probe, and the
// device-health gauge family (wear shape and energy split, computed from
// the device's race-safe health summary at scrape time).
func (e *Env) AttachTelemetry(tel *telemetry.Sink) {
	e.Tel = tel
	if tel != nil {
		e.Device.SetProbe(tel)
		e.Crypto.Probe = tel
		dev := e.Device
		tel.RegisterDeviceHealth(func() telemetry.DeviceHealth {
			h := dev.HealthSummary()
			return telemetry.DeviceHealth{
				MaxWear:       h.MaxWear,
				P99Wear:       h.P99Wear,
				MeanWear:      h.MeanWear(),
				WearSkew:      h.WearSkew(),
				ReadEnergyNJ:  h.ReadEnergyNJ,
				WriteEnergyNJ: h.WriteEnergyNJ,
			}
		})
		e.registerHybridTelemetry()
	}
}

// registerHybridTelemetry exports the hybrid tier's gauge family. Both
// AttachTelemetry and EnableHybridMedia call it, so the gauges appear
// regardless of which wiring order a front end uses.
func (e *Env) registerHybridTelemetry() {
	if e.Tel == nil || e.hybrid == nil {
		return
	}
	h := e.hybrid
	e.Tel.RegisterHybridHealth(func() telemetry.HybridHealth {
		s := h.Snapshot()
		return telemetry.HybridHealth{
			DRAMHits:       s.DRAMHits,
			DRAMMisses:     s.DRAMMisses,
			Promotions:     s.Promotions,
			Demotions:      s.Demotions,
			Writebacks:     s.Writebacks,
			WALAppends:     s.WALAppends,
			AbsorbedWrites: s.AbsorbedWrites,
			CapacityLines:  s.CapacityLines,
			ResidentLines:  s.ResidentLines,
			DirtyLines:     s.DirtyLines,
		}
	})
}

// IntegrityUpdate refreshes the counter tree after a write to phys (no-op
// without integrity). The returned latency is off the critical write path
// (eADR-protected), but is reported so schemes can account it as metadata
// work.
func (e *Env) IntegrityUpdate(phys, counter uint64, at sim.Time) sim.Time {
	if e.Integrity == nil {
		return 0
	}
	before := e.Integrity.Stats.HashOps
	lat := e.Integrity.Update(phys, counter, at)
	e.Energy.Fingerprint += float64(e.Integrity.Stats.HashOps-before) * 0.9
	return lat
}

// IntegrityVerify authenticates phys's counter before a read's plaintext
// may be released (no-op without integrity). Tampering is a model
// invariant violation and panics.
func (e *Env) IntegrityVerify(phys uint64, at sim.Time) sim.Time {
	if e.Integrity == nil {
		return 0
	}
	before := e.Integrity.Stats.HashOps
	lat, err := e.Integrity.Verify(phys, at)
	if err != nil {
		panic(fmt.Sprintf("memctrl: %v at line %d", err, phys))
	}
	e.Energy.Fingerprint += float64(e.Integrity.Stats.HashOps-before) * 0.9
	return lat
}

// MetaLineFor maps a metadata key (e.g. a fingerprint or an AMT bucket) to
// a line address inside the metadata region.
func (e *Env) MetaLineFor(key uint64) uint64 {
	if e.metaLines == 0 {
		return e.DataLines
	}
	key = (key ^ (key >> 33)) * 0xFF51AFD7ED558CCD
	key ^= key >> 33
	return e.DataLines + key%e.metaLines
}

// ChargeSRAM charges one metadata-SRAM probe (latency is composed by the
// caller; energy lands in the ledger).
func (e *Env) ChargeSRAM() { e.Energy.SRAM += e.Cfg.Meta.SRAMEnergy }

// ChargeCompare charges one byte-by-byte line comparison.
func (e *Env) ChargeCompare() { e.Energy.Compare += e.Cfg.FP.CompareEnery }
