package memctrl

import (
	"testing"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/sim"
)

// FuzzAMTRemap drives the AMT with fuzzer-chosen update/lookup/crash
// sequences against a plain map model. The AMT's SRAM cache is shrunk to a
// handful of entries so evictions, negative caching and post-crash refills
// all happen within a short input.
func FuzzAMTRemap(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x02, 0x01, 0x01, 0x02, 0x03, 0x00})
	f.Add([]byte{0x00, 0x10, 0x03, 0x00, 0x00, 0x10, 0x02, 0x10})
	f.Add([]byte{0x01, 0x01, 0x01, 0x02, 0x01, 0x03, 0x01, 0x04, 0x03, 0x00, 0x02, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := config.Default()
		cfg.PCM.CapacityBytes = 1 << 22
		env := NewEnv(cfg)
		amt := NewAMT(env, 8*cfg.Meta.AMTEntryBytes) // 8 cached entries
		model := make(map[uint64]uint64)
		now := sim.Time(0)
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			logical := uint64(arg) & 0x3F
			now += 10 * sim.Nanosecond
			switch op % 4 {
			case 0, 1: // remap
				phys := uint64(op)*31 + uint64(arg)&0x0F
				prev, had, _ := amt.Update(logical, phys, now)
				wantPrev, wantHad := model[logical]
				if had != wantHad || (had && prev != wantPrev) {
					t.Fatalf("op %d: Update(%d) returned prev=(%d,%v), model says (%d,%v)",
						i, logical, prev, had, wantPrev, wantHad)
				}
				model[logical] = phys
			case 2: // lookup
				phys, ok, _ := amt.Lookup(logical, now)
				want, wantOK := model[logical]
				if ok != wantOK || (ok && phys != want) {
					t.Fatalf("op %d: Lookup(%d) = (%d,%v), model says (%d,%v)",
						i, logical, phys, ok, want, wantOK)
				}
			case 3: // power failure: dirty entries drain, cache drops
				amt.CrashFlush(now)
			}
		}

		// The backing table must be exactly the model, both directions.
		if amt.Entries() != len(model) {
			t.Fatalf("AMT holds %d entries, model %d", amt.Entries(), len(model))
		}
		amt.Range(func(logical, phys uint64) bool {
			if want, ok := model[logical]; !ok || want != phys {
				t.Fatalf("AMT maps %d -> %d, model says (%d,%v)", logical, phys, want, ok)
			}
			return true
		})
		for logical, want := range model {
			phys, ok, _ := amt.Lookup(logical, now)
			if !ok || phys != want {
				t.Fatalf("final Lookup(%d) = (%d,%v), want %d", logical, phys, ok, want)
			}
		}
	})
}
