package memctrl

import (
	"github.com/esdsim/esd/internal/cache"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/sparse"
)

// amtEntry is the cached mapping value packed into one word: the physical
// line backing a logical line in the low bits, plus mapped and dirty flags
// in the top two (device capacities stay far below 2^62 lines). mapped=0 is
// a negative entry: the bucket was fetched and the logical line is known to
// be unmapped, so repeated cold reads stay on-chip. dirty marks entries
// owed a write-back to the NVMM-resident table. Packing halves the cache's
// value array — the AMT cache is probed and updated on every single write,
// so its host-cache footprint is throughput.
type amtEntry = uint64

const (
	amtMapped amtEntry = 1 << 62
	amtDirty  amtEntry = 1 << 63
	amtPhys   amtEntry = amtMapped - 1
)

// AMT is the Address Mapping Table (§III-B): a many-to-one map from logical
// line addresses to physical line addresses. The full table lives in NVMM;
// hot entries are buffered in an SRAM cache inside the memory controller.
// The cache is write-back: updates dirty the cached entry and only
// evictions of dirty entries cost an NVMM metadata write, so steady-state
// remapping traffic is amortized exactly as an on-chip buffer would.
type AMT struct {
	env   *Env
	cache *cache.Cache[amtEntry]
	// backing is the NVMM-resident table, keyed by dense logical line
	// addresses — a paged sparse array so cache misses and updates stay
	// off the map hash path.
	backing sparse.Map[uint64]

	// NVMMReads and NVMMWrites count metadata traffic to the NVMM-resident
	// table (cache misses and dirty write-backs).
	NVMMReads  uint64
	NVMMWrites uint64
}

// NewAMT builds an AMT whose SRAM cache holds cacheBytes of entries.
func NewAMT(env *Env, cacheBytes int) *AMT {
	entries := cacheBytes / env.Cfg.Meta.AMTEntryBytes
	if entries < 1 {
		entries = 1
	}
	return &AMT{
		env:   env,
		cache: cache.New[amtEntry](entries, 8, cache.LRU),
	}
}

// evict handles a displaced cache entry, writing it back if dirty.
func (a *AMT) evict(ev cache.Evicted[amtEntry], now sim.Time) {
	if ev.Value&amtDirty == 0 {
		return
	}
	a.NVMMWrites++
	a.env.Tel.OnAMTWriteback()
	a.env.Device.WriteMeta(a.env.MetaLineFor(ev.Key), now)
}

// Lookup resolves a logical address, returning the physical address (ok
// reports whether a mapping exists) and the latency incurred on the
// critical path: one SRAM probe, plus one NVMM read when the entry is not
// cached.
func (a *AMT) Lookup(logical uint64, at sim.Time) (phys uint64, ok bool, lat sim.Time) {
	lat = a.env.Cfg.Meta.SRAMLatency
	a.env.ChargeSRAM()
	if e, hit := a.cache.Get(logical); hit {
		a.env.Tel.OnAMT(true)
		return e & amtPhys, e&amtMapped != 0, lat
	}
	a.env.Tel.OnAMT(false)
	phys, ok = a.backing.Get(logical)
	// The miss costs an NVMM metadata read whether or not the entry
	// exists: the table bucket must be fetched to know. The fetched state
	// is cached either way (negative caching for unmapped lines).
	rr := a.env.Device.ReadMeta(a.env.MetaLineFor(logical), at+lat)
	a.NVMMReads++
	lat = rr.Done - at
	e := phys
	if ok {
		e |= amtMapped
	}
	if ev, evicted := a.cache.Put(logical, e); evicted {
		a.evict(ev, at+lat)
	}
	return phys, ok, lat
}

// Update installs or replaces the mapping logical -> phys. The visible
// latency is one SRAM probe; persistence is deferred to dirty write-back.
// It returns the previous physical mapping, if any, so the caller can
// maintain reference counts.
func (a *AMT) Update(logical, phys uint64, at sim.Time) (prevPhys uint64, hadPrev bool, lat sim.Time) {
	lat = a.env.Cfg.Meta.SRAMLatency
	a.env.ChargeSRAM()
	prevPhys, hadPrev = a.backing.Get(logical)
	if hadPrev && prevPhys == phys {
		// The mapping is unchanged — a duplicate write re-resolving to the
		// same physical line. The table entry (and any cached copy, which
		// by construction always mirrors the current mapping) is already
		// correct, so the controller touches no mapping state: no dirty
		// bit, no cache allocation displacing a useful entry, and zero
		// metadata write-backs for steady-state duplicate traffic.
		return prevPhys, hadPrev, lat
	}
	a.backing.Set(logical, phys)
	if ev, evicted := a.cache.Put(logical, phys|amtMapped|amtDirty); evicted {
		a.evict(ev, at+lat)
	}
	return prevPhys, hadPrev, lat
}

// CrashFlush models an eADR-backed power-failure drain (§III-E): every
// dirty cached entry is written back to the NVMM-resident table, then the
// volatile cache is dropped. Mappings are never lost because the backing
// table plus the drained entries are complete.
func (a *AMT) CrashFlush(now sim.Time) {
	a.cache.Range(func(key uint64, e amtEntry, _ int) bool {
		if e&amtDirty != 0 {
			a.NVMMWrites++
			a.env.Tel.OnAMTWriteback()
			a.env.Device.WriteMeta(a.env.MetaLineFor(key), now)
		}
		return true
	})
	a.cache.Clear()
}

// Entries reports the number of mappings in the NVMM-resident table.
func (a *AMT) Entries() int { return a.backing.Len() }

// Range calls fn for every logical -> physical mapping in the
// NVMM-resident table until fn returns false. The backing table is
// authoritative (the SRAM cache is write-through to it), so this is the
// complete mapping; iteration order is unspecified. Used by the checker's
// refcount-conservation and dangling-line audits.
func (a *AMT) Range(fn func(logical, phys uint64) bool) {
	a.backing.Range(fn)
}

// CacheStats exposes the SRAM cache statistics.
func (a *AMT) CacheStats() cache.Stats { return a.cache.Stats }

// NVMMBytes reports the NVMM footprint of the table.
func (a *AMT) NVMMBytes() int64 {
	return int64(a.backing.Len()) * int64(a.env.Cfg.Meta.AMTEntryBytes)
}
