package memctrl

import (
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/sim"
)

// BatchWrite is one write of a batched write call. Out is filled in by the
// scheme: batch writes report the same WriteOutcome the scalar path would.
type BatchWrite struct {
	Logical uint64
	Data    *ecc.Line
	At      sim.Time
	Out     WriteOutcome
}

// BatchWriter is implemented by schemes with a batched write path that
// amortizes the fixed per-line kernel costs (ECC fingerprinting, AES pad
// generation) across all lines of a batch. A batched call must be
// observably identical to issuing the same writes through Write in order:
// same data, same mappings, same counters, same statistics.
type BatchWriter interface {
	WriteBatch(ops []BatchWrite)
}

// WriteBatch drives ops through the scheme's batched write path when it
// has one, falling back to the scalar path otherwise (DeWrite's
// speculative pipeline has no batch form).
func WriteBatch(s Scheme, ops []BatchWrite) {
	if bw, ok := s.(BatchWriter); ok {
		bw.WriteBatch(ops)
		return
	}
	WriteBatchFallback(s, ops)
}

// WriteBatchFallback loops ops through the scalar write path.
func WriteBatchFallback(s Scheme, ops []BatchWrite) {
	for i := range ops {
		ops[i].Out = s.Write(ops[i].Logical, ops[i].Data, ops[i].At)
	}
}
