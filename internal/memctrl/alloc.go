package memctrl

import (
	"fmt"

	"github.com/esdsim/esd/internal/sparse"
)

// Allocator hands out physical data lines for unique content. Freed lines
// are recycled in LIFO order.
type Allocator struct {
	next  uint64
	limit uint64
	free  []uint64
	live  uint64
}

// NewAllocator creates an allocator over [0, limit) physical lines.
func NewAllocator(limit uint64) *Allocator {
	return &Allocator{limit: limit}
}

// Alloc returns a free physical line. It panics when the device is truly
// full, which indicates a capacity-planning bug in the experiment.
func (a *Allocator) Alloc() uint64 {
	a.live++
	if n := len(a.free); n > 0 {
		addr := a.free[n-1]
		a.free = a.free[:n-1]
		return addr
	}
	if a.next >= a.limit {
		panic(fmt.Sprintf("memctrl: physical space exhausted (%d lines)", a.limit))
	}
	addr := a.next
	a.next++
	return addr
}

// Free returns a line to the pool.
func (a *Allocator) Free(addr uint64) {
	if a.live == 0 {
		panic("memctrl: Free without matching Alloc")
	}
	a.live--
	a.free = append(a.free, addr)
}

// Live reports the number of allocated lines.
func (a *Allocator) Live() uint64 { return a.live }

// HighWater reports how many distinct lines have ever been allocated.
func (a *Allocator) HighWater() uint64 { return a.next }

// RefStore tracks per-physical-line reference counts for deduplicating
// schemes: how many logical addresses currently map to each physical line.
type RefStore struct {
	// refs is keyed by dense physical line addresses; every dedup write
	// touches it at least once, so it is a paged sparse array, not a map.
	refs sparse.Map[uint32]
}

// NewRefStore returns an empty reference store.
func NewRefStore() *RefStore {
	return &RefStore{}
}

// Inc increments the reference count of phys and returns the new count.
func (r *RefStore) Inc(phys uint64) uint32 {
	c := r.refs.Load(phys) + 1
	r.refs.Set(phys, c)
	return c
}

// Dec decrements the reference count of phys and reports whether the line
// became unreferenced (and was removed from the store).
func (r *RefStore) Dec(phys uint64) bool {
	c, ok := r.refs.Get(phys)
	if !ok {
		panic("memctrl: Dec of untracked physical line")
	}
	if c <= 1 {
		r.refs.Delete(phys)
		return true
	}
	r.refs.Set(phys, c-1)
	return false
}

// Count returns the current reference count of phys.
func (r *RefStore) Count(phys uint64) uint32 { return r.refs.Load(phys) }

// Lines returns the number of referenced physical lines.
func (r *RefStore) Lines() int { return r.refs.Len() }

// Range calls fn for every (physical line, reference count) pair until fn
// returns false. Dense addresses are visited in ascending order. Used by
// the checker's refcount-conservation audit.
func (r *RefStore) Range(fn func(phys uint64, count uint32) bool) {
	r.refs.Range(fn)
}
