package memctrl

import (
	"testing"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/trace"
)

func TestWarmupExcludesLeadingRequests(t *testing.T) {
	env := testEnv()
	fs := &fakeScheme{env: env, data: map[uint64]ecc.Line{}}
	c := NewController(env, fs)
	c.Warmup = 3
	var recs []trace.Record
	for i := 0; i < 10; i++ {
		recs = append(recs, trace.Record{
			Op: trace.OpWrite, Addr: uint64(i), At: sim.Time(i) * sim.Microsecond,
		})
	}
	res, err := c.Run(trace.NewSliceStream(recs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 7 || res.Writes != 7 {
		t.Fatalf("measured %d requests, want 7", res.Requests)
	}
	if res.WriteHist.Count() != 7 {
		t.Fatalf("histogram holds %d samples", res.WriteHist.Count())
	}
	// Scheme stats are warm-up-subtracted: the fake counts every write.
	if res.Scheme.Writes != 7 || res.Scheme.UniqueWrites != 7 {
		t.Fatalf("scheme stats %+v", res.Scheme)
	}
}

func TestWarmupLongerThanTraceMeasuresNothing(t *testing.T) {
	env := testEnv()
	fs := &fakeScheme{env: env, data: map[uint64]ecc.Line{}}
	c := NewController(env, fs)
	c.Warmup = 100
	recs := []trace.Record{{Op: trace.OpWrite, Addr: 1}}
	res, err := c.Run(trace.NewSliceStream(recs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 0 || res.WriteHist.Count() != 0 {
		t.Fatalf("warm-up-only run measured %d requests", res.Requests)
	}
}

// slowScheme completes every request a fixed delay after arrival,
// exercising the closed-loop back-pressure path.
type slowScheme struct {
	delay sim.Time
	st    SchemeStats
}

func (f *slowScheme) Name() string { return "slow" }
func (f *slowScheme) Write(_ uint64, _ *ecc.Line, at sim.Time) WriteOutcome {
	f.st.Writes++
	return WriteOutcome{Done: at + f.delay}
}
func (f *slowScheme) Read(_ uint64, at sim.Time) ReadOutcome {
	f.st.Reads++
	return ReadOutcome{Done: at + f.delay}
}
func (f *slowScheme) Tick(sim.Time)          {}
func (f *slowScheme) TickInterval() sim.Time { return 0 }
func (f *slowScheme) MetadataNVMM() int64    { return 0 }
func (f *slowScheme) MetadataSRAM() int64    { return 0 }
func (f *slowScheme) Stats() SchemeStats     { return f.st }

func TestClosedLoopBoundsLatencyAndAccumulatesStall(t *testing.T) {
	cfg := testEnv().Cfg
	cfg.CPU.MaxOutstanding = 4
	env := NewEnv(cfg)
	slow := &slowScheme{delay: 1000 * sim.Nanosecond}
	c := NewController(env, slow)
	// Arrivals every 10 ns, service 1000 ns: a 100x overload. Without the
	// closed loop, queueing would grow without bound; with MaxOutstanding
	// = 4 the per-request latency stays at the service time and the lag
	// (application slowdown) absorbs the overload.
	var recs []trace.Record
	for i := 0; i < 200; i++ {
		recs = append(recs, trace.Record{
			Op: trace.OpWrite, Addr: uint64(i), At: sim.Time(i) * 10 * sim.Nanosecond,
		})
	}
	res, err := c.Run(trace.NewSliceStream(recs))
	if err != nil {
		t.Fatal(err)
	}
	if max := res.WriteHist.Max(); max > 1100*sim.Nanosecond {
		t.Fatalf("closed loop failed: max latency %v", max)
	}
	if res.Stall <= 0 {
		t.Fatal("no back-pressure lag recorded under 100x overload")
	}
	// 200 requests at 1000 ns service, 4 at a time, arrivals nearly
	// instant: total time ~ 50 us, trace span 2 us => lag ~ 48 us.
	if res.Stall < 40*sim.Microsecond {
		t.Fatalf("lag %v implausibly small", res.Stall)
	}
}

func TestClosedLoopIdleWorkloadHasNoStall(t *testing.T) {
	cfg := testEnv().Cfg
	env := NewEnv(cfg)
	slow := &slowScheme{delay: 10 * sim.Nanosecond}
	c := NewController(env, slow)
	var recs []trace.Record
	for i := 0; i < 100; i++ {
		recs = append(recs, trace.Record{
			Op: trace.OpRead, Addr: uint64(i), At: sim.Time(i) * sim.Microsecond,
		})
	}
	res, err := c.Run(trace.NewSliceStream(recs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stall != 0 {
		t.Fatalf("idle workload accumulated %v lag", res.Stall)
	}
	if res.ReadHist.Mean() != 10*sim.Nanosecond {
		t.Fatalf("read mean %v", res.ReadHist.Mean())
	}
}

func TestBaseRefcountingFreesLines(t *testing.T) {
	// Covered at scheme level too, but exercise the AMT+RefStore contract
	// directly: remapping the last reference frees the physical line and
	// fires the OnFree hook.
	env := testEnv()
	amt := NewAMT(env, 1<<16)
	refs := NewRefStore()
	alloc := NewAllocator(1024)

	a := alloc.Alloc()
	b := alloc.Alloc()
	// logical 1 and 2 -> a; logical 3 -> b.
	for _, logical := range []uint64{1, 2} {
		prev, had, _ := amt.Update(logical, a, 0)
		refs.Inc(a)
		_ = prev
		_ = had
	}
	amt.Update(3, b, 0)
	refs.Inc(b)

	// Remap logical 1 to b: a still referenced by 2.
	prev, had, _ := amt.Update(1, b, 0)
	if !had || prev != a {
		t.Fatalf("prev = %d", prev)
	}
	refs.Inc(b)
	if refs.Dec(a) {
		t.Fatal("a freed while logical 2 still points at it")
	}
	// Remap logical 2 away: now a frees.
	amt.Update(2, b, 0)
	refs.Inc(b)
	if !refs.Dec(a) {
		t.Fatal("a not freed after last reference left")
	}
	if refs.Count(b) != 3 {
		t.Fatalf("refs(b) = %d", refs.Count(b))
	}
}
