package cpucache

import (
	"testing"
	"testing/quick"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/trace"
	"github.com/esdsim/esd/internal/workload"
	"github.com/esdsim/esd/internal/xrand"
	"github.com/esdsim/esd/internal/xrand/quicktest"
)

// tiny returns a small hierarchy (8 / 16 / 32 lines) so evictions happen
// quickly in tests.
func tiny() *Hierarchy {
	mk := func(lines int, lat sim.Time) config.CacheLevel {
		return config.CacheLevel{Size: lines * config.CacheLineSize, Ways: 2, Latency: lat}
	}
	return New(mk(8, 1*sim.Nanosecond), mk(16, 4*sim.Nanosecond), mk(32, 12*sim.Nanosecond))
}

func line(b byte) ecc.Line {
	var l ecc.Line
	for i := range l {
		l[i] = b
	}
	return l
}

func TestColdMissProducesDemandRead(t *testing.T) {
	h := tiny()
	res := h.Access(5, false, nil, 100)
	if res.HitLevel != 0 {
		t.Fatalf("cold access hit level %d", res.HitLevel)
	}
	if len(res.Events) != 1 || res.Events[0].Op != trace.OpRead || res.Events[0].Addr != 5 {
		t.Fatalf("events = %+v", res.Events)
	}
	if h.Stats.LLCMisses != 1 {
		t.Fatalf("stats %+v", h.Stats)
	}
}

func TestHitLevelsAndLatency(t *testing.T) {
	h := tiny()
	h.Access(5, false, nil, 0)
	res := h.Access(5, false, nil, 10)
	if res.HitLevel != 1 {
		t.Fatalf("second access hit level %d, want 1 (L1)", res.HitLevel)
	}
	if res.Latency != 1*sim.Nanosecond {
		t.Fatalf("L1 hit latency %v", res.Latency)
	}
	if len(res.Events) != 0 {
		t.Fatalf("L1 hit produced events: %+v", res.Events)
	}
	if h.Stats.L1Hits != 1 {
		t.Fatalf("stats %+v", h.Stats)
	}
}

func TestDirtyEvictionCarriesContent(t *testing.T) {
	h := tiny()
	payload := line(0xAB)
	h.Access(1, true, &payload, 0)
	// Fill far past total capacity (8+16+32 = 56 lines) to force line 1
	// out of the LLC.
	var events []trace.Record
	for i := uint64(100); i < 100+200; i++ {
		res := h.Access(i, false, nil, sim.Time(i)*sim.Nanosecond)
		events = append(events, res.Events...)
	}
	var wb *trace.Record
	for i := range events {
		if events[i].Op == trace.OpWrite && events[i].Addr == 1 {
			wb = &events[i]
			break
		}
	}
	if wb == nil {
		t.Fatal("dirty line 1 never written back")
	}
	if wb.Data != payload {
		t.Fatal("write-back lost the stored content")
	}
	if h.Stats.WriteBacks == 0 {
		t.Fatal("no write-backs counted")
	}
}

func TestCleanLinesNeverWrittenBack(t *testing.T) {
	h := tiny()
	for i := uint64(0); i < 300; i++ {
		res := h.Access(i, false, nil, sim.Time(i)*sim.Nanosecond)
		for _, e := range res.Events {
			if e.Op == trace.OpWrite {
				t.Fatalf("read-only stream produced write-back of %d", e.Addr)
			}
		}
	}
	if h.Stats.CleanEvicts == 0 {
		t.Fatal("no clean evictions despite capacity pressure")
	}
}

func TestPromotionToL1(t *testing.T) {
	h := tiny()
	h.Access(1, false, nil, 0)
	// Push line 1 out of L1 (L1 = 8 lines, 2-way: fill enough).
	for i := uint64(10); i < 30; i++ {
		h.Access(i, false, nil, sim.Time(i))
	}
	res := h.Access(1, false, nil, 1000)
	if res.HitLevel <= 1 {
		// It may have been pushed to L2 or L3 — it must NOT be a miss.
		if res.HitLevel == 0 {
			t.Fatal("line fell out of a 56-line hierarchy after 21 accesses")
		}
	}
	// After the lower-level hit, the next access must hit L1.
	res = h.Access(1, false, nil, 2000)
	if res.HitLevel != 1 {
		t.Fatalf("no promotion: hit level %d", res.HitLevel)
	}
}

func TestStoreUpdatesContentOnHit(t *testing.T) {
	h := tiny()
	v1, v2 := line(1), line(2)
	h.Access(7, true, &v1, 0)
	h.Access(7, true, &v2, 10)
	got, ok := h.Content(7)
	if !ok || got != v2 {
		t.Fatal("store on hit did not update content")
	}
}

func TestFlushDrainsAllDirtyLines(t *testing.T) {
	h := tiny()
	dirty := map[uint64]ecc.Line{}
	for i := uint64(0); i < 40; i++ {
		payload := line(byte(i))
		h.Access(i, true, &payload, sim.Time(i))
		dirty[i] = payload
	}
	var all []trace.Record
	// Some may already have been written back under pressure; collect the
	// flush output and earlier implicit write-backs.
	events := h.Flush(1000)
	all = append(all, events...)
	for _, e := range all {
		if e.Op != trace.OpWrite {
			t.Fatalf("flush produced a read: %+v", e)
		}
	}
	if h.Contains(0) || h.Contains(39) {
		t.Fatal("flush left lines cached")
	}
	// Flushing twice is a no-op.
	if extra := h.Flush(2000); len(extra) != 0 {
		t.Fatalf("second flush produced %d events", len(extra))
	}
}

func TestExclusiveHierarchyNoDuplicates(t *testing.T) {
	// Property: after any access sequence, each address lives in at most
	// one level.
	check := func(seed uint64) bool {
		h := tiny()
		r := xrand.New(seed)
		var payload ecc.Line
		for i := 0; i < 500; i++ {
			addr := r.Uint64n(64)
			if r.Bool(0.4) {
				payload.SetWord(0, r.Uint64())
				h.Access(addr, true, &payload, sim.Time(i))
			} else {
				h.Access(addr, false, nil, sim.Time(i))
			}
		}
		for addr := uint64(0); addr < 64; addr++ {
			count := 0
			for _, lv := range h.levels {
				if lv.c.Contains(addr) {
					count++
				}
			}
			if count > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, quicktest.Config(t, 30)); err != nil {
		t.Fatal(err)
	}
}

func TestNoLostDirtyData(t *testing.T) {
	// Property: the freshest value of every written address is either
	// still on chip or appeared in a write-back event.
	check := func(seed uint64) bool {
		h := tiny()
		r := xrand.New(seed)
		latest := map[uint64]ecc.Line{}
		written := map[uint64]ecc.Line{} // last value seen in a write-back
		var payload ecc.Line
		record := func(evs []trace.Record) {
			for _, e := range evs {
				if e.Op == trace.OpWrite {
					written[e.Addr] = e.Data
				}
			}
		}
		for i := 0; i < 400; i++ {
			addr := r.Uint64n(96)
			if r.Bool(0.5) {
				payload.SetWord(0, r.Uint64())
				payload.SetWord(1, addr)
				record(h.Access(addr, true, &payload, sim.Time(i)).Events)
				latest[addr] = payload
			} else {
				record(h.Access(addr, false, nil, sim.Time(i)).Events)
			}
		}
		record(h.Flush(10000))
		for addr, want := range latest {
			if got, ok := written[addr]; !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, quicktest.Config(t, 30)); err != nil {
		t.Fatal(err)
	}
}

func TestTableIGeometry(t *testing.T) {
	cfg := config.Default()
	h := New(cfg.L1, cfg.L2, cfg.L3)
	want := "L1 512 lines / L2 4096 lines / L3 262144 lines"
	if h.String() != want {
		t.Fatalf("geometry %q, want %q", h.String(), want)
	}
}

func TestCPUTraceProducesDedupableLLCStream(t *testing.T) {
	p, _ := workload.ByName("x264")
	cfg := config.Default()
	// Shrink the LLC so a modest access count produces plenty of traffic.
	cfg.L3.Size = 1 << 20
	records, st := CPUTrace(p, cfg.L1, cfg.L2, cfg.L3, 3, 60000)
	if len(records) == 0 {
		t.Fatal("no LLC traffic generated")
	}
	if st.Accesses != 60000 {
		t.Fatalf("accesses = %d", st.Accesses)
	}
	if st.MissRate() <= 0 || st.MissRate() >= 1 {
		t.Fatalf("miss rate = %v", st.MissRate())
	}
	// Timestamps must be non-decreasing (flush events run last).
	for i := 1; i < len(records); i++ {
		if records[i].At < records[i-1].At {
			t.Fatal("trace timestamps regressed")
		}
	}
	// The write-back stream should still show substantial content
	// duplication (that is the point of the whole paper).
	ds, err := workload.MeasureDup(trace.NewSliceStream(records))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Writes == 0 {
		t.Fatal("no write-backs in CPU trace")
	}
	if ds.DupRate < 0.3 {
		t.Errorf("LLC write-back dup rate %.3f, want substantial duplication", ds.DupRate)
	}
}

func TestCPUTraceDeterministic(t *testing.T) {
	p, _ := workload.ByName("leela")
	cfg := config.Default()
	cfg.L3.Size = 1 << 19
	a, _ := CPUTrace(p, cfg.L1, cfg.L2, cfg.L3, 9, 5000)
	b, _ := CPUTrace(p, cfg.L1, cfg.L2, cfg.L3, 9, 5000)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	b.ReportAllocs()
	cfg := config.Default()
	h := New(cfg.L1, cfg.L2, cfg.L3)
	r := xrand.New(1)
	var payload ecc.Line
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := r.Uint64n(1 << 16)
		if i%3 == 0 {
			payload.SetWord(0, uint64(i))
			h.Access(addr, true, &payload, sim.Time(i))
		} else {
			h.Access(addr, false, nil, sim.Time(i))
		}
	}
}
