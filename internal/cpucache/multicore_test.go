package cpucache

import (
	"testing"
	"testing/quick"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/trace"
	"github.com/esdsim/esd/internal/workload"
	"github.com/esdsim/esd/internal/xrand"
	"github.com/esdsim/esd/internal/xrand/quicktest"
)

func tinyMC(cores int) *MultiCore {
	mk := func(lines int, lat sim.Time) config.CacheLevel {
		return config.CacheLevel{Size: lines * config.CacheLineSize, Ways: 2, Latency: lat}
	}
	return NewMultiCore(cores, mk(4, 1), mk(8, 4), mk(32, 12))
}

func TestMultiCorePrivateHit(t *testing.T) {
	m := tinyMC(2)
	m.Access(0, 5, false, nil, 0)
	res := m.Access(0, 5, false, nil, 10)
	if res.HitLevel != 1 {
		t.Fatalf("second access hit level %d, want L1", res.HitLevel)
	}
	if m.Stats.L1Hits != 1 || m.Stats.LLCMisses != 1 {
		t.Fatalf("stats %+v", m.Stats)
	}
}

func TestMultiCoreCoherenceMigration(t *testing.T) {
	m := tinyMC(2)
	payload := ecc.Line{7}
	m.Access(0, 5, true, &payload, 0)
	// Core 1 reads the line: it must find core 0's dirty copy (not memory)
	// and the content must travel with it.
	res := m.Access(1, 5, false, nil, 10)
	if res.HitLevel == 0 {
		t.Fatal("coherence miss: line re-fetched from memory")
	}
	if m.Migrations != 1 {
		t.Fatalf("migrations = %d", m.Migrations)
	}
	got, ok := m.contentOf(5)
	if !ok || got != payload {
		t.Fatal("content lost in migration")
	}
	// Exactly one on-chip copy exists.
	if n := m.copiesOf(5); n != 1 {
		t.Fatalf("%d copies on chip", n)
	}
}

func TestMultiCoreSingleCopyInvariant(t *testing.T) {
	check := func(seed uint64) bool {
		m := tinyMC(4)
		r := xrand.New(seed)
		var payload ecc.Line
		for i := 0; i < 600; i++ {
			core := r.Intn(4)
			addr := r.Uint64n(64)
			if r.Bool(0.4) {
				payload.SetWord(0, r.Uint64())
				m.Access(core, addr, true, &payload, sim.Time(i))
			} else {
				m.Access(core, addr, false, nil, sim.Time(i))
			}
		}
		for addr := uint64(0); addr < 64; addr++ {
			if m.copiesOf(addr) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, quicktest.Config(t, 25)); err != nil {
		t.Fatal(err)
	}
}

func TestMultiCoreNoLostDirtyData(t *testing.T) {
	check := func(seed uint64) bool {
		m := tinyMC(2)
		r := xrand.New(seed)
		latest := map[uint64]ecc.Line{}
		written := map[uint64]ecc.Line{}
		record := func(evs []trace.Record) {
			for _, e := range evs {
				if e.Op == trace.OpWrite {
					written[e.Addr] = e.Data
				}
			}
		}
		var payload ecc.Line
		for i := 0; i < 400; i++ {
			core := r.Intn(2)
			addr := r.Uint64n(96)
			if r.Bool(0.5) {
				payload.SetWord(0, r.Uint64())
				payload.SetWord(1, addr)
				record(m.Access(core, addr, true, &payload, sim.Time(i)).Events)
				latest[addr] = payload
			} else {
				record(m.Access(core, addr, false, nil, sim.Time(i)).Events)
			}
		}
		record(m.Flush(10000))
		for addr, want := range latest {
			if got, ok := written[addr]; !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, quicktest.Config(t, 25)); err != nil {
		t.Fatal(err)
	}
}

func TestMultiCoreTableIGeometry(t *testing.T) {
	cfg := config.Default()
	m := NewMultiCore(cfg.CPU.Cores, cfg.L1, cfg.L2, cfg.L3)
	if m.Cores() != 8 {
		t.Fatalf("cores = %d", m.Cores())
	}
	// Shared L3 capacity: 16 MB / 64 B.
	if m.l3.c.Capacity() != (16<<20)/64 {
		t.Fatalf("L3 capacity %d lines", m.l3.c.Capacity())
	}
}

// contentOf finds the on-chip copy of addr, if any.
func (m *MultiCore) contentOf(addr uint64) (ecc.Line, bool) {
	for _, pair := range m.priv {
		for _, lv := range pair {
			if st, ok := lv.c.Peek(addr); ok {
				return st.data, true
			}
		}
	}
	if st, ok := m.l3.c.Peek(addr); ok {
		return st.data, true
	}
	return ecc.Line{}, false
}

// copiesOf counts on-chip copies of addr.
func (m *MultiCore) copiesOf(addr uint64) int {
	n := 0
	for _, pair := range m.priv {
		for _, lv := range pair {
			if lv.c.Contains(addr) {
				n++
			}
		}
	}
	if m.l3.c.Contains(addr) {
		n++
	}
	return n
}

func TestMultiCoreTraceProducesLLCStream(t *testing.T) {
	p, _ := workload.ByName("mcf")
	cfg := config.Default()
	cfg.L3.Size = 1 << 20
	records, st, migrations := MultiCoreTrace(p, 4, cfg.L1, cfg.L2, cfg.L3, 7, 40000)
	if len(records) == 0 {
		t.Fatal("no LLC traffic")
	}
	if st.Accesses != 40000 {
		t.Fatalf("accesses = %d", st.Accesses)
	}
	if migrations == 0 {
		t.Fatal("no cross-core sharing observed despite 5% sharing traffic")
	}
	for i := 1; i < len(records); i++ {
		if records[i].At < records[i-1].At {
			t.Fatal("timestamps regressed")
		}
	}
	// The LLC write-back stream still carries dedupable content.
	ds, err := workload.MeasureDup(trace.NewSliceStream(records))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Writes == 0 || ds.DupRate < 0.3 {
		t.Fatalf("write-backs=%d dup=%.2f", ds.Writes, ds.DupRate)
	}
}

func TestMultiCoreTraceDeterministic(t *testing.T) {
	p, _ := workload.ByName("leela")
	cfg := config.Default()
	cfg.L3.Size = 1 << 19
	a, _, _ := MultiCoreTrace(p, 2, cfg.L1, cfg.L2, cfg.L3, 9, 5000)
	b, _, _ := MultiCoreTrace(p, 2, cfg.L1, cfg.L2, cfg.L3, 9, 5000)
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}
