package cpucache

import (
	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/trace"
	"github.com/esdsim/esd/internal/workload"
	"github.com/esdsim/esd/internal/xrand"
)

// CPUTrace drives the cache hierarchy with a synthetic CPU-level access
// stream derived from an application profile and returns the resulting
// LLC-level memory trace (demand reads + dirty write-backs), the way the
// paper's artifact derives its traces from gem5 runs of the real
// applications.
//
// nAccesses is the number of CPU accesses; the returned trace is shorter
// by roughly the hierarchy's hit rate. The dirty lines remaining on chip
// at the end are flushed so the trace is self-contained.
func CPUTrace(p workload.Profile, l1, l2, l3 config.CacheLevel, seed uint64, nAccesses int) ([]trace.Record, Stats) {
	h := New(l1, l2, l3)
	// Content statistics come from the same pool construction as the
	// direct LLC-level generator; sizing it by expected store count keeps
	// the duplicate-rate target meaningful at the LLC.
	expectedStores := int(float64(nAccesses) * p.WriteRatio)
	g := workload.NewGenerator(p, seed, expectedStores+1)
	rng := xrand.New(seed ^ 0xC9C4E)

	// CPU-side accesses arrive faster than LLC misses by construction;
	// scale the profile's memory-level inter-arrival by a nominal hit
	// rate so the produced LLC trace has a similar intensity.
	cpuGap := p.MeanInterarrival / 4
	if cpuGap < sim.Nanosecond {
		cpuGap = sim.Nanosecond
	}

	var out []trace.Record
	now := sim.Time(0)
	for i := 0; i < nAccesses; i++ {
		now += sim.Time(rng.ExpFloat64() * float64(cpuGap))
		addr := g.SampleAddr()
		if rng.Bool(p.WriteRatio) {
			content := g.Content(g.SampleWriteContent())
			res := h.Access(addr, true, &content, now)
			out = append(out, res.Events...)
		} else {
			res := h.Access(addr, false, nil, now)
			out = append(out, res.Events...)
		}
	}
	out = append(out, h.Flush(now)...)
	return out, h.Stats
}

// MultiCoreTrace is CPUTrace over Table I's real topology: `cores` private
// L1/L2 pairs sharing one L3, with accesses spread over the cores (each
// address has a home core plus occasional cross-core sharing, which
// exercises the coherence path).
func MultiCoreTrace(p workload.Profile, cores int, l1, l2, l3 config.CacheLevel, seed uint64, nAccesses int) ([]trace.Record, Stats, uint64) {
	h := NewMultiCore(cores, l1, l2, l3)
	expectedStores := int(float64(nAccesses) * p.WriteRatio)
	g := workload.NewGenerator(p, seed, expectedStores+1)
	rng := xrand.New(seed ^ 0x3C0_4E5)

	cpuGap := p.MeanInterarrival / 4
	if cpuGap < sim.Nanosecond {
		cpuGap = sim.Nanosecond
	}

	var out []trace.Record
	now := sim.Time(0)
	for i := 0; i < nAccesses; i++ {
		now += sim.Time(rng.ExpFloat64() * float64(cpuGap))
		addr := g.SampleAddr()
		core := int(addr) % h.Cores() // home core by address
		if rng.Bool(0.05) {           // occasional sharing
			core = rng.Intn(h.Cores())
		}
		if rng.Bool(p.WriteRatio) {
			content := g.Content(g.SampleWriteContent())
			out = append(out, h.Access(core, addr, true, &content, now).Events...)
		} else {
			out = append(out, h.Access(core, addr, false, nil, now).Events...)
		}
	}
	out = append(out, h.Flush(now)...)
	return out, h.Stats, h.Migrations
}
