package cpucache

import (
	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/trace"
)

// MultiCore models Table I's actual topology: per-core private L1 and L2
// caches in front of one shared L3 (the LLC). Each private hierarchy is
// exclusive and content-carrying like Hierarchy; victims leaving a private
// L2 drop into the shared L3, and only L3 victims become memory traffic.
//
// Coherence is modeled at the only granularity the memory system cares
// about: a core's access checks the other cores' private caches and steals
// (migrates) the line if found, so exactly one copy of a line exists
// on-chip — a simple MI protocol, sufficient for single-writer streams.
type MultiCore struct {
	priv  [][2]*level // [core][L1, L2]
	l3    *level
	Stats Stats
	// Migrations counts cross-core line transfers.
	Migrations uint64
}

// NewMultiCore builds cores private L1/L2 hierarchies over a shared L3.
func NewMultiCore(cores int, l1, l2, l3 config.CacheLevel) *MultiCore {
	if cores < 1 {
		cores = 1
	}
	m := &MultiCore{l3: newLevel("L3", l3)}
	for c := 0; c < cores; c++ {
		m.priv = append(m.priv, [2]*level{newLevel("L1", l1), newLevel("L2", l2)})
	}
	return m
}

// Cores returns the core count.
func (m *MultiCore) Cores() int { return len(m.priv) }

// insertPrivate places a line into core's L1; victims cascade to L2 and
// then into the shared L3, whose victims become memory events.
func (m *MultiCore) insertPrivate(core int, addr uint64, st lineState, at sim.Time, events *[]trace.Record) {
	ev, evicted := m.priv[core][0].c.Put(addr, st)
	if !evicted {
		return
	}
	ev2, evicted2 := m.priv[core][1].c.Put(ev.Key, ev.Value)
	if !evicted2 {
		return
	}
	m.insertL3(ev2.Key, ev2.Value, at, events)
}

func (m *MultiCore) insertL3(addr uint64, st lineState, at sim.Time, events *[]trace.Record) {
	ev, evicted := m.l3.c.Put(addr, st)
	if !evicted {
		return
	}
	if ev.Value.dirty {
		m.Stats.WriteBacks++
		*events = append(*events, trace.Record{Op: trace.OpWrite, Addr: ev.Key, At: at, Data: ev.Value.data})
	} else {
		m.Stats.CleanEvicts++
	}
}

// lookup searches core's private caches, the shared L3, then the other
// cores' private caches (coherence steal). It removes the line from where
// it was found and returns it.
func (m *MultiCore) lookup(core int, addr uint64) (lineState, int, bool) {
	for i, lv := range m.priv[core] {
		if st, ok := lv.c.Get(addr); ok {
			lv.c.Delete(addr)
			if i == 0 {
				m.Stats.L1Hits++
			} else {
				m.Stats.L2Hits++
			}
			return st, i + 1, true
		}
	}
	if st, ok := m.l3.c.Get(addr); ok {
		m.l3.c.Delete(addr)
		m.Stats.L3Hits++
		return st, 3, true
	}
	for other := range m.priv {
		if other == core {
			continue
		}
		for _, lv := range m.priv[other] {
			if st, ok := lv.c.Get(addr); ok {
				lv.c.Delete(addr)
				m.Migrations++
				m.Stats.L3Hits++ // steals cost about an L3 round trip
				return st, 3, true
			}
		}
	}
	return lineState{}, 0, false
}

// Access performs one access by core to a line address. The returned
// events are the memory requests it caused.
func (m *MultiCore) Access(core int, addr uint64, write bool, data *ecc.Line, at sim.Time) Result {
	m.Stats.Accesses++
	var res Result
	st, hitLevel, ok := m.lookup(core%len(m.priv), addr)
	res.HitLevel = hitLevel
	lat := m.priv[core%len(m.priv)][0].latency
	switch hitLevel {
	case 2:
		lat += m.priv[core%len(m.priv)][1].latency
	case 3:
		lat += m.priv[core%len(m.priv)][1].latency + m.l3.latency
	}
	res.Latency = lat
	if !ok {
		m.Stats.LLCMisses++
		res.Latency += m.l3.latency
		res.Events = append(res.Events, trace.Record{Op: trace.OpRead, Addr: addr, At: at})
	}
	if write {
		st.data = *data
		st.dirty = true
	}
	m.insertPrivate(core%len(m.priv), addr, st, at, &res.Events)
	return res
}

// Flush drains every dirty line from all cores and the L3.
func (m *MultiCore) Flush(at sim.Time) []trace.Record {
	var events []trace.Record
	drain := func(lv *level) {
		lv.c.Range(func(key uint64, st lineState, _ int) bool {
			if st.dirty {
				m.Stats.WriteBacks++
				events = append(events, trace.Record{Op: trace.OpWrite, Addr: key, At: at, Data: st.data})
			}
			return true
		})
		lv.c.Clear()
	}
	for _, pair := range m.priv {
		drain(pair[0])
		drain(pair[1])
	}
	drain(m.l3)
	return events
}
