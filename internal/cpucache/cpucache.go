// Package cpucache models the CPU-side cache hierarchy of Table I: private
// L1 and L2 plus a shared L3 (the last-level cache), all write-back,
// write-allocate, LRU, with 64-byte lines. Its job in this reproduction is
// the same as gem5's cache model in the paper's artifact: converting a
// CPU-level access stream into the stream the memory controller actually
// sees — demand reads on LLC misses and dirty-line write-backs on LLC
// evictions.
//
// The hierarchy is exclusive (victim-caching) and content-carrying: each
// line lives at exactly one level, stores deposit full 64-byte lines, hits
// in lower levels promote the line back to L1, victims percolate down
// level by level, and only lines leaving the LLC become memory traffic.
// This is what makes the "duplicate rate of cache lines evicted from the
// LLC" (Fig. 1) a well-defined, measurable quantity rather than an
// assumption.
package cpucache

import (
	"fmt"

	"github.com/esdsim/esd/internal/cache"
	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/trace"
)

// lineState is the per-line cache payload: content plus a dirty bit.
type lineState struct {
	data  ecc.Line
	dirty bool
}

// level is one cache level.
type level struct {
	name    string
	c       *cache.Cache[lineState]
	latency sim.Time
}

func newLevel(name string, cfg config.CacheLevel) *level {
	entries := cfg.Size / config.CacheLineSize
	if entries < 1 {
		entries = 1
	}
	return &level{
		name:    name,
		c:       cache.New[lineState](entries, cfg.Ways, cache.LRU),
		latency: cfg.Latency,
	}
}

// Stats aggregates hierarchy activity.
type Stats struct {
	Accesses    uint64
	L1Hits      uint64
	L2Hits      uint64
	L3Hits      uint64
	LLCMisses   uint64
	WriteBacks  uint64 // dirty lines evicted from the LLC
	CleanEvicts uint64 // clean lines dropped from the LLC
}

// MissRate returns LLC misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.LLCMisses) / float64(s.Accesses)
}

// Hierarchy is a 3-level inclusive cache hierarchy.
type Hierarchy struct {
	levels []*level
	Stats  Stats
}

// New builds the hierarchy from the three Table I cache levels.
func New(l1, l2, l3 config.CacheLevel) *Hierarchy {
	return &Hierarchy{levels: []*level{
		newLevel("L1", l1),
		newLevel("L2", l2),
		newLevel("L3", l3),
	}}
}

// Result reports one access: the latency to the hit level (or through to
// memory) and the memory-controller events it generated, in issue order.
type Result struct {
	// HitLevel is 1..3 for cache hits, 0 for an LLC miss served by memory.
	HitLevel int
	// Latency is the on-chip lookup latency (memory latency is the memory
	// controller's business).
	Latency sim.Time
	// Events are the resulting memory requests: at most one OpRead (the
	// demand fill on an LLC miss) and any number of OpWrite write-backs.
	Events []trace.Record
}

// llc returns the last-level cache.
func (h *Hierarchy) llc() *level { return h.levels[len(h.levels)-1] }

// insert places a line into level i, percolating the victim downwards;
// a dirty victim leaving the LLC becomes an OpWrite event.
func (h *Hierarchy) insert(i int, addr uint64, st lineState, at sim.Time, events *[]trace.Record) {
	ev, evicted := h.levels[i].c.Put(addr, st)
	if !evicted {
		return
	}
	if i+1 < len(h.levels) {
		// Victim moves down one level (exclusive hierarchy: it cannot
		// already be present below).
		h.insert(i+1, ev.Key, ev.Value, at, events)
		return
	}
	// Leaving the LLC.
	if ev.Value.dirty {
		h.Stats.WriteBacks++
		*events = append(*events, trace.Record{
			Op:   trace.OpWrite,
			Addr: ev.Key,
			At:   at,
			Data: ev.Value.data,
		})
	} else {
		h.Stats.CleanEvicts++
	}
}

// Access performs one CPU access to a line address. For stores, data is
// the full new line content (the CPU merges its bytes before the access
// reaches the hierarchy). Loads return the current content when the line
// is on chip.
func (h *Hierarchy) Access(addr uint64, write bool, data *ecc.Line, at sim.Time) Result {
	h.Stats.Accesses++
	var res Result
	var lat sim.Time

	for i, lv := range h.levels {
		lat += lv.latency
		if st, ok := lv.c.Get(addr); ok {
			switch i {
			case 0:
				h.Stats.L1Hits++
			case 1:
				h.Stats.L2Hits++
			default:
				h.Stats.L3Hits++
			}
			res.HitLevel = i + 1
			res.Latency = lat
			if write {
				st.data = *data
				st.dirty = true
			}
			if i > 0 {
				// Promote to L1; the displaced victims cascade downwards.
				lv.c.Delete(addr)
				h.insert(0, addr, st, at, &res.Events)
			} else {
				lv.c.Put(addr, st)
			}
			return res
		}
	}

	// LLC miss: demand read from memory, then fill.
	h.Stats.LLCMisses++
	res.HitLevel = 0
	res.Latency = lat
	res.Events = append(res.Events, trace.Record{Op: trace.OpRead, Addr: addr, At: at})
	st := lineState{}
	if write {
		st.data = *data
		st.dirty = true
	}
	h.insert(0, addr, st, at, &res.Events)
	return res
}

// Flush drains every dirty line from the hierarchy as OpWrite events (in
// unspecified but deterministic order), leaving all levels clean.
func (h *Hierarchy) Flush(at sim.Time) []trace.Record {
	var events []trace.Record
	seen := map[uint64]bool{}
	// Upper levels hold the freshest copies; walk top-down.
	for _, lv := range h.levels {
		lv.c.Range(func(key uint64, st lineState, _ int) bool {
			if st.dirty && !seen[key] {
				seen[key] = true
				h.Stats.WriteBacks++
				events = append(events, trace.Record{Op: trace.OpWrite, Addr: key, At: at, Data: st.data})
			}
			return true
		})
	}
	for _, lv := range h.levels {
		lv.c.Clear()
	}
	return events
}

// Contains reports whether addr is present at any level.
func (h *Hierarchy) Contains(addr uint64) bool {
	for _, lv := range h.levels {
		if lv.c.Contains(addr) {
			return true
		}
	}
	return false
}

// Content returns the freshest on-chip copy of addr, if cached.
func (h *Hierarchy) Content(addr uint64) (ecc.Line, bool) {
	for _, lv := range h.levels {
		if st, ok := lv.c.Peek(addr); ok {
			return st.data, true
		}
	}
	return ecc.Line{}, false
}

// String summarizes the hierarchy geometry.
func (h *Hierarchy) String() string {
	s := ""
	for i, lv := range h.levels {
		if i > 0 {
			s += " / "
		}
		s += fmt.Sprintf("%s %d lines", lv.name, lv.c.Capacity())
	}
	return s
}
