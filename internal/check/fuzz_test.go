package check

import "testing"

// FuzzDifferential fuzzes the workload-shape space: whatever mix of
// duplicates, zero bursts, crafted collisions, crashes and skew the fuzzer
// invents, ESD (single and sharded+coalescing) must stay observationally
// equal to the oracle and pass every audit. This is the fuzz-shaped face of
// the differential checker; `esdcheck` runs the big sweeps.
func FuzzDifferential(f *testing.F) {
	f.Add(uint64(1), byte(128), byte(110), byte(5), byte(0))
	f.Add(uint64(2), byte(0), byte(0), byte(0), byte(255))
	f.Add(uint64(3), byte(255), byte(255), byte(255), byte(64))
	f.Fuzz(func(t *testing.T, seed uint64, dup, readFrac, collide, zero byte) {
		gen := GenConfig{
			Ops:           300,
			Addrs:         1 << 9,
			ReadFrac:      float64(readFrac) / 255,
			DupRatio:      float64(dup) / 255,
			ZeroBurst:     float64(zero) / 1024,
			ZeroBurstLen:  8,
			HotSkew:       0.9,
			CollisionRate: float64(collide) / 255,
			CrashRate:     0.002,
			PoolSize:      16,
		}
		res, err := Run(Config{
			Gen:        gen,
			Seed:       seed,
			Schemes:    []string{"esd"},
			Shards:     []int{2},
			Coalesce:   []bool{true},
			AuditEvery: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Violations {
			t.Errorf("seed %d: %v", seed, v)
		}
	})
}
