package check

import (
	"fmt"
	"sync"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/shard"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/xrand"
)

// ConcurrentConfig parameterizes one adversarial concurrent schedule.
type ConcurrentConfig struct {
	// Scheme is the scheme every shard runs.
	Scheme string
	// Shards and Coalesce configure the engine under test.
	Shards   int
	Coalesce bool
	// Workers is the number of concurrent client goroutines.
	Workers int
	// OpsPerWorker is each worker's op count.
	OpsPerWorker int
	// Addrs is the shared logical address space (small, to maximize
	// same-address contention).
	Addrs uint64
	// Seed derives every worker's private generator (seed + worker index).
	Seed uint64
	// FaultBank, when >= 0, injects extra latency into that bank of every
	// shard's device — a timing adversary that skews worker interleavings
	// without changing functional behavior.
	FaultBank int
}

// DefaultConcurrent returns a contention-heavy schedule.
func DefaultConcurrent(scheme string) ConcurrentConfig {
	return ConcurrentConfig{
		Scheme:       scheme,
		Shards:       4,
		Coalesce:     true,
		Workers:      8,
		OpsPerWorker: 2000,
		Addrs:        256,
		Seed:         1,
		FaultBank:    -1,
	}
}

// stripeCount is the number of address-stripe locks (power of two).
const stripeCount = 64

// RunConcurrent hammers one sharded engine from Workers goroutines with a
// mixed read/write workload and checks per-address linearizability: a
// striped lock is held across {engine op, model update}, so within one
// address ops are serialized and every read must return exactly the model's
// current value, while across addresses the engine sees genuinely
// concurrent traffic (run it under -race). Async writes ride WriteAsync so
// the coalescing path engages under contention.
//
// It returns harness violations; an error reports engine construction
// failure.
func RunConcurrent(cfg ConcurrentConfig) ([]Violation, error) {
	sys := checkConfig()
	if cfg.FaultBank >= 0 {
		sys.PCM.FaultBank = cfg.FaultBank
		sys.PCM.FaultExtraLatency = 30 * sim.Nanosecond
	}
	return runConcurrentOn(sys, cfg)
}

func runConcurrentOn(sys config.Config, cfg ConcurrentConfig) ([]Violation, error) {
	eng, err := shard.New(sys, cfg.Scheme, shard.Options{Shards: cfg.Shards, Coalesce: cfg.Coalesce})
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	defer eng.Close()

	label := fmt.Sprintf("%s/concurrent shards=%d", cfg.Scheme, cfg.Shards)
	type stripe struct {
		mu  sync.Mutex
		mem map[uint64]ecc.Line
	}
	var stripes [stripeCount]stripe
	for i := range stripes {
		stripes[i].mem = make(map[uint64]ecc.Line)
	}

	var (
		vioMu sync.Mutex
		vios  []Violation
	)
	fail := func(op int, msg string) {
		vioMu.Lock()
		if len(vios) < 32 {
			vios = append(vios, Violation{Engine: label, Op: op, Msg: msg})
		}
		vioMu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := xrand.New(cfg.Seed + uint64(w)*0x9E37)
			var line ecc.Line
			for i := 0; i < cfg.OpsPerWorker; i++ {
				addr := r.Uint64n(cfg.Addrs)
				st := &stripes[addr&(stripeCount-1)]
				opIdx := w*cfg.OpsPerWorker + i
				switch {
				case r.Bool(0.5): // write
					fillLine(&line, r)
					st.mu.Lock()
					var err error
					if r.Bool(0.5) {
						err = eng.WriteAsync(addr, line)
					} else {
						_, err = eng.Write(addr, line)
					}
					if err != nil {
						fail(opIdx, fmt.Sprintf("write addr=%d: %v", addr, err))
					} else {
						st.mem[addr] = line
					}
					st.mu.Unlock()
				default: // read
					st.mu.Lock()
					res, err := eng.Read(addr)
					want, wantHit := st.mem[addr]
					st.mu.Unlock()
					switch {
					case err != nil:
						fail(opIdx, fmt.Sprintf("read addr=%d: %v", addr, err))
					case res.Hit != wantHit:
						fail(opIdx, fmt.Sprintf("read addr=%d: hit=%v, model says %v", addr, res.Hit, wantHit))
					case res.Hit && res.Data != want:
						fail(opIdx, fmt.Sprintf("read addr=%d: data diverges from model", addr))
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := eng.Flush(); err != nil {
		return nil, fmt.Errorf("check: flush: %w", err)
	}

	// Post-quiescence sweep: with the workers gone, every model entry must
	// read back exactly.
	lastOp := cfg.Workers * cfg.OpsPerWorker
	for i := range stripes {
		for addr, want := range stripes[i].mem {
			res, err := eng.Read(addr)
			switch {
			case err != nil:
				fail(lastOp, fmt.Sprintf("sweep addr=%d: %v", addr, err))
			case !res.Hit:
				fail(lastOp, fmt.Sprintf("sweep addr=%d: written line lost", addr))
			case res.Data != want:
				fail(lastOp, fmt.Sprintf("sweep addr=%d: data diverges from model", addr))
			}
		}
	}
	return vios, nil
}
