package check

import (
	"strings"
	"testing"

	"github.com/esdsim/esd/internal/core"
	"github.com/esdsim/esd/internal/dedup"
	"github.com/esdsim/esd/internal/ecc"
)

func TestCollisionDelta(t *testing.T) {
	d := CollisionDelta()
	if d == 0 {
		t.Fatal("collision delta is zero")
	}
	if got := ecc.EncodeWord(d); got != 0 {
		t.Fatalf("EncodeWord(delta) = %#x, want 0", got)
	}
	// XORing the delta into any word preserves the full line fingerprint
	// while changing the content.
	var a ecc.Line
	for w := 0; w < ecc.WordsPerLine; w++ {
		a.SetWord(w, uint64(w)*0x0123456789ABCDEF+1)
	}
	b := a
	b.SetWord(3, b.Word(3)^d)
	if a == b {
		t.Fatal("delta did not change the line")
	}
	if ecc.EncodeLine(&a) != ecc.EncodeLine(&b) {
		t.Fatal("crafted sibling has a different fingerprint")
	}
}

func TestGenDeterministic(t *testing.T) {
	cfg := DefaultGen()
	cfg.Ops = 5000
	g1, g2 := NewGen(cfg, 42), NewGen(cfg, 42)
	for i := 0; i < cfg.Ops; i++ {
		a, ok1 := g1.Next()
		b, ok2 := g2.Next()
		if !ok1 || !ok2 {
			t.Fatalf("op %d: generator ended early", i)
		}
		if a != b {
			t.Fatalf("op %d: same seed diverged: %v vs %v", i, a, b)
		}
	}
	if _, ok := g1.Next(); ok {
		t.Fatal("generator exceeded Ops")
	}

	// A different seed must diverge somewhere.
	g3 := NewGen(cfg, 43)
	g4 := NewGen(cfg, 42)
	same := true
	for i := 0; i < cfg.Ops; i++ {
		a, _ := g3.Next()
		b, _ := g4.Next()
		if a != b {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 generated identical streams")
	}
}

// TestRunSmall is the tier-1 face of the differential checker: every scheme,
// single and sharded, coalescing on and off, against the oracle.
func TestRunSmall(t *testing.T) {
	gen := DefaultGen()
	gen.Ops = 4000
	res, err := Run(Config{Gen: gen, Seed: 7, Shards: []int{1, 2}, AuditEvery: 500})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %v", v)
	}
	if res.Ops != 4000 {
		t.Fatalf("ran %d ops, want 4000", res.Ops)
	}
	// Five schemes (canonical four + esd+caram), each single plus
	// 2 shard counts x 2 coalescing settings.
	if want := 5 * (1 + 2*2); len(res.Engines) != want {
		t.Fatalf("%d engine variants, want %d", len(res.Engines), want)
	}
}

// TestRunMigrateGen runs the migration-heavy profile: the Zipf hot set
// relocates every eighth of the run, so the hybrid tier's promotion, LRU
// demotion and dirty-writeback paths all churn while the oracle watches.
func TestRunMigrateGen(t *testing.T) {
	gen := MigrateGen()
	gen.Ops = 6000
	gen.PhaseEvery = gen.Ops / 8
	res, err := Run(Config{Gen: gen, Seed: 17, Shards: []int{2}, AuditEvery: 500})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %v", v)
	}
	// The profile must actually exercise migration on the hybrid variant —
	// probed with an even smaller buffer (256 lines) so a short run already
	// saturates capacity.
	cfg := checkConfig()
	cfg.Media.DRAM.CapacityBytes = 16 << 10
	se, err := newSingleEngine(cfg, "esd+caram")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGen(gen, 17)
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		switch op.Kind {
		case OpWrite:
			se.write(op.Addr, op.Line)
		case OpRead:
			se.read(op.Addr)
		}
	}
	st := se.env.Hybrid().Snapshot()
	if st.Promotions == 0 || st.Demotions == 0 || st.Writebacks == 0 {
		t.Fatalf("migration profile left the tier idle: %+v", st)
	}
}

// TestRunBatchFraction routes most write runs through the batched APIs
// on every variant — single engines via memctrl.WriteBatch, sharded via
// Engine.WriteBatch — and must stay divergence-free against the oracle.
func TestRunBatchFraction(t *testing.T) {
	gen := DefaultGen()
	gen.Ops = 4000
	res, err := Run(Config{Gen: gen, Seed: 9, Shards: []int{1, 2}, AuditEvery: 500, BatchFraction: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %v", v)
	}
	if res.Ops != 4000 {
		t.Fatalf("ran %d ops, want 4000", res.Ops)
	}
}

// TestRunBatchDeterministic pins the seed-derived batching coin: two
// identical batched runs must agree op for op.
func TestRunBatchDeterministic(t *testing.T) {
	gen := DefaultGen()
	gen.Ops = 2000
	cfg := Config{Gen: gen, Seed: 13, Shards: []int{2}, Coalesce: []bool{false}, AuditEvery: 500, BatchFraction: 0.5}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Writes != r2.Writes || r1.Reads != r2.Reads || len(r1.Violations) != len(r2.Violations) {
		t.Fatalf("batched runs diverged: %+v vs %+v", r1, r2)
	}
	if len(r1.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", r1.Violations)
	}
}

// TestBatchInjectedBugCaught is the batch checker's own acceptance test:
// corrupt one batched write before the engines see it (the oracle keeps
// the original) and the very next differential read or final sweep must
// flag the divergence. If the batch plumbing silently dropped, reordered
// or rewrote ops, this is the test that would not fail.
func TestBatchInjectedBugCaught(t *testing.T) {
	gen := DefaultGen()
	gen.Ops = 3000
	corrupted := 0
	cfg := Config{
		Gen: gen, Seed: 21, Shards: []int{2}, Coalesce: []bool{false},
		AuditEvery: -1, BatchFraction: 1.0,
		mutateBatch: func(items []batchItem) []batchItem {
			// Flip one word of the middle op of every batched run.
			if len(items) < 2 {
				return items
			}
			corrupted++
			out := append([]batchItem(nil), items...)
			mid := len(out) / 2
			out[mid].line.SetWord(0, out[mid].line.Word(0)^0xDEAD)
			return out
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if corrupted == 0 {
		t.Fatal("mutation hook never fired — no batched run formed")
	}
	if res.Ok() {
		t.Fatal("injected batch corruption went undetected by the differential checker")
	}
}

func TestRunUptoReplaysPrefix(t *testing.T) {
	gen := DefaultGen()
	gen.Ops = 3000
	res, err := Run(Config{Gen: gen, Seed: 3, Upto: 500, Shards: []int{}, Schemes: []string{"esd"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 500 {
		t.Fatalf("Upto=500 executed %d ops", res.Ops)
	}
}

func TestRunDeterministic(t *testing.T) {
	gen := DefaultGen()
	gen.Ops = 2000
	cfg := Config{Gen: gen, Seed: 11, Shards: []int{2}, Coalesce: []bool{true}, AuditEvery: 500}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Writes != r2.Writes || r1.Reads != r2.Reads || r1.Crashes != r2.Crashes {
		t.Fatalf("same seed produced different op mixes: %+v vs %+v", r1, r2)
	}
	if len(r1.Violations) != 0 || len(r2.Violations) != 0 {
		t.Fatalf("unexpected violations: %v / %v", r1.Violations, r2.Violations)
	}
}

// TestCollisionLinesExerciseCompare verifies the adversarial generator does
// what it claims: the crafted same-fingerprint lines must actually reach
// ESD's byte-by-byte comparison and be rejected there (otherwise the
// dedup-safety probe would be testing nothing).
func TestCollisionLinesExerciseCompare(t *testing.T) {
	gen := DefaultGen()
	gen.Ops = 20000
	gen.CollisionRate = 0.05
	se, err := newSingleEngine(checkConfig(), "esd")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGen(gen, 5)
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		switch op.Kind {
		case OpWrite:
			if bad := se.write(op.Addr, op.Line); len(bad) != 0 {
				t.Fatalf("dedup safety: %v", bad)
			}
		case OpRead:
			se.read(op.Addr)
		}
	}
	if st := se.sch.Stats(); st.CompareMismatches == 0 {
		t.Fatalf("no fingerprint collisions reached the byte compare (CompareReads=%d)", st.CompareReads)
	}
}

// TestInjectedRefcountBugCaught is the checker's own acceptance test: a
// deliberately corrupted reference count must be detected by the next
// audit, with a violation that pins the failure for replay.
func TestInjectedRefcountBugCaught(t *testing.T) {
	for _, scheme := range DefaultSchemes() {
		if scheme == "baseline" {
			continue // no refcounts to corrupt
		}
		t.Run(scheme, func(t *testing.T) {
			se, err := newSingleEngine(checkConfig(), scheme)
			if err != nil {
				t.Fatal(err)
			}
			gen := DefaultGen()
			gen.Ops = 2000
			g := NewGen(gen, 1)
			for {
				op, ok := g.Next()
				if !ok {
					break
				}
				if op.Kind == OpWrite {
					se.write(op.Addr, op.Line)
				}
			}
			if bad := se.audit(); len(bad) != 0 {
				t.Fatalf("audit dirty before injection: %v", bad)
			}
			var victim uint64
			found := false
			switch s := se.sch.(type) {
			case *core.ESD:
				s.AMT.Range(func(_, phys uint64) bool { victim, found = phys, true; return false })
				s.Refs.Inc(victim)
			case *dedup.SHA1:
				s.AMT.Range(func(_, phys uint64) bool { victim, found = phys, true; return false })
				s.Refs.Inc(victim)
			case *dedup.DeWrite:
				s.AMT.Range(func(_, phys uint64) bool { victim, found = phys, true; return false })
				s.Refs.Inc(victim)
			default:
				t.Fatalf("no injection surface for %T", se.sch)
			}
			if !found {
				t.Fatal("no mapped physical line to corrupt")
			}
			bad := se.audit()
			if len(bad) == 0 {
				t.Fatalf("injected refcount corruption on phys %d went undetected", victim)
			}
			if !strings.Contains(strings.Join(bad, "\n"), "refcount") {
				t.Fatalf("audit caught something, but not the refcount: %v", bad)
			}
		})
	}
}

// TestConcurrentSmall drives the adversarial concurrent schedule; under
// `go test -race` this is the data-race probe for the sharded engine.
func TestConcurrentSmall(t *testing.T) {
	for _, scheme := range DefaultSchemes() {
		t.Run(scheme, func(t *testing.T) {
			cfg := DefaultConcurrent(scheme)
			cfg.Workers = 4
			cfg.OpsPerWorker = 500
			cfg.FaultBank = 2
			vios, err := RunConcurrent(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range vios {
				t.Errorf("violation: %v", v)
			}
		})
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Engine: "esd/single", Op: 41, Msg: "boom"}
	if got := v.String(); got != "op 41: esd/single: boom" {
		t.Fatalf("Violation.String() = %q", got)
	}
}
