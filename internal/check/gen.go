package check

import (
	"fmt"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/xrand"
)

// OpKind discriminates generated operations.
type OpKind uint8

// Operation kinds.
const (
	OpWrite OpKind = iota
	OpRead
	OpCrash
)

// Op is one generated operation. Line is meaningful for writes only.
type Op struct {
	Kind OpKind
	Addr uint64
	Line ecc.Line
}

// GenConfig shapes the synthetic adversarial workload. The zero value is
// not useful; start from DefaultGen.
type GenConfig struct {
	// Ops is the number of operations to generate.
	Ops int
	// Addrs is the logical line-address space size.
	Addrs uint64
	// ReadFrac is the probability an op is a read (the rest are writes,
	// minus the rare crash ops).
	ReadFrac float64
	// DupRatio is the probability a written line is drawn from the shared
	// content pool (duplicate-heavy traffic) rather than fresh random.
	DupRatio float64
	// DupSweep, when set, overrides DupRatio with a ramp across the run —
	// quarters at 0.1/0.4/0.7/0.9 — so one run exercises dedup-cold,
	// mixed and dedup-hot regimes.
	DupSweep bool
	// ZeroBurst is the probability a write starts a burst of ZeroBurstLen
	// all-zero lines (the most duplicated content in real traces).
	ZeroBurst    float64
	ZeroBurstLen int
	// HotSkew is the Zipf exponent of the address distribution (0 =
	// uniform). Skewed addresses force AMT remaps and refcount churn on a
	// hot set.
	HotSkew float64
	// CollisionRate is the probability a written line is an ECC-collision
	// sibling of a pool line: same ECC fingerprint, different content,
	// crafted from the code's linearity (see CollisionDelta). These lines
	// force ESD's byte-by-byte compare to actually decide.
	CollisionRate float64
	// CrashRate is the probability of a crash op (honored by single-System
	// engines; sharded engines have no crash surface and skip it, which is
	// itself a differential test of crash transparency).
	CrashRate float64
	// PoolSize is the shared content-pool size.
	PoolSize int
	// PhaseEvery, when > 0, rotates the address space by 5/8 of its size
	// every PhaseEvery ops, so the Zipf hot set migrates to a fresh region
	// each phase. On hybrid-media variants every phase shift forces the
	// DRAM tier to demote the cooled set (dirty writebacks included) while
	// promoting the new one — the migration-heavy adversary.
	PhaseEvery int
}

// DefaultGen returns the standard adversarial mix.
func DefaultGen() GenConfig {
	return GenConfig{
		Ops:           200_000,
		Addrs:         1 << 13,
		ReadFrac:      0.45,
		DupRatio:      0.5,
		DupSweep:      true,
		ZeroBurst:     0.01,
		ZeroBurstLen:  16,
		HotSkew:       0.9,
		CollisionRate: 0.02,
		CrashRate:     0.0005,
		PoolSize:      64,
	}
}

// MigrateGen returns the migration-heavy mix: the default adversarial
// shape with the hot set relocating eight times per run (PhaseEvery), a
// higher write fraction and a stronger skew, sized so each phase's hot set
// overflows the checker's shrunken DRAM tier.
func MigrateGen() GenConfig {
	cfg := DefaultGen()
	cfg.ReadFrac = 0.3
	cfg.HotSkew = 1.1
	cfg.PhaseEvery = cfg.Ops / 8
	return cfg
}

// Gen is a deterministic, seed-reproducible operation generator: the same
// (GenConfig, seed) pair always yields the same op sequence, which is what
// makes `esdcheck -seed N -upto M` an exact replay.
type Gen struct {
	cfg  GenConfig
	r    *xrand.Rand
	zipf *xrand.Zipf
	pool []ecc.Line
	i    int
	zero int // remaining ops of an active zero burst
}

// NewGen builds a generator for cfg seeded with seed.
func NewGen(cfg GenConfig, seed uint64) *Gen {
	if cfg.PoolSize < 1 {
		cfg.PoolSize = 1
	}
	if cfg.Addrs == 0 {
		cfg.Addrs = 1 << 13
	}
	g := &Gen{cfg: cfg, r: xrand.New(seed)}
	if cfg.HotSkew > 0 {
		g.zipf = xrand.NewZipf(g.r, cfg.HotSkew, int(cfg.Addrs))
	}
	g.pool = make([]ecc.Line, cfg.PoolSize)
	for i := range g.pool {
		fillLine(&g.pool[i], g.r)
	}
	return g
}

func fillLine(l *ecc.Line, r *xrand.Rand) {
	for w := 0; w < ecc.WordsPerLine; w++ {
		l.SetWord(w, r.Uint64())
	}
}

func (g *Gen) addr() uint64 {
	var a uint64
	if g.zipf != nil {
		a = uint64(g.zipf.Next())
	} else {
		a = g.r.Uint64n(g.cfg.Addrs)
	}
	if g.cfg.PhaseEvery > 0 {
		// Rotate the whole space by a coprime-ish stride each phase: the
		// Zipf head (the hot set) lands on a fresh region while the old one
		// cools off.
		phase := uint64(g.i / g.cfg.PhaseEvery)
		a = (a + phase*(g.cfg.Addrs*5/8+1)) % g.cfg.Addrs
	}
	return a
}

// dupRatio is the effective duplicate ratio at the current op index.
func (g *Gen) dupRatio() float64 {
	if !g.cfg.DupSweep {
		return g.cfg.DupRatio
	}
	ramp := [4]float64{0.1, 0.4, 0.7, 0.9}
	q := g.i * 4 / max(g.cfg.Ops, 1)
	if q > 3 {
		q = 3
	}
	return ramp[q]
}

// Next returns the next operation; ok is false once Ops were generated.
func (g *Gen) Next() (op Op, ok bool) {
	if g.i >= g.cfg.Ops {
		return Op{}, false
	}
	g.i++
	if g.zero > 0 {
		g.zero--
		return Op{Kind: OpWrite, Addr: g.addr()}, true // zero line
	}
	switch {
	case g.r.Bool(g.cfg.CrashRate):
		return Op{Kind: OpCrash}, true
	case g.r.Bool(g.cfg.ReadFrac):
		return Op{Kind: OpRead, Addr: g.addr()}, true
	}
	op = Op{Kind: OpWrite, Addr: g.addr()}
	switch {
	case g.r.Bool(g.cfg.ZeroBurst):
		g.zero = g.cfg.ZeroBurstLen - 1
		// op.Line stays zero.
	case g.r.Bool(g.cfg.CollisionRate):
		op.Line = g.pool[g.r.Intn(len(g.pool))]
		w := g.r.Intn(ecc.WordsPerLine)
		op.Line.SetWord(w, op.Line.Word(w)^CollisionDelta())
	case g.r.Bool(g.dupRatio()):
		op.Line = g.pool[g.r.Intn(len(g.pool))]
	default:
		fillLine(&op.Line, g.r)
	}
	return op, true
}

// collisionDelta is the crafted nonzero 64-bit word whose (72,64) SEC-DED
// code word is all-zero. The code is linear over GF(2), so XORing this
// delta into any word of a line changes the content while leaving the
// line's ECC fingerprint untouched — the exact adversary §III-D's
// byte-by-byte comparison exists to defeat.
var collisionDelta = findCollisionDelta()

// CollisionDelta returns the crafted fingerprint-preserving word delta.
func CollisionDelta() uint64 { return collisionDelta }

func findCollisionDelta() uint64 {
	// A uniformly random word hits the 8-bit-zero-syndrome subspace with
	// probability 2^-8, so a short deterministic scan always succeeds.
	sm := xrand.NewSplitMix64(0xECC0)
	for i := 0; i < 1_000_000; i++ {
		d := sm.Uint64()
		if d != 0 && ecc.EncodeWord(d) == 0 {
			return d
		}
	}
	panic("check: no ECC-collision delta found (code is no longer linear?)")
}

// String renders an op for failure reports.
func (o Op) String() string {
	switch o.Kind {
	case OpWrite:
		return fmt.Sprintf("write addr=%d word0=%#x", o.Addr, o.Line.Word(0))
	case OpRead:
		return fmt.Sprintf("read addr=%d", o.Addr)
	default:
		return "crash"
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
