// Package check is the model-based verification harness behind cmd/esdcheck:
// it runs one deterministic, seed-reproducible workload against a trivial
// map-based oracle memory and every scheme variant simultaneously, and fails
// loudly on the first divergence.
//
// Three engines cooperate (DESIGN.md §10):
//
//   - the differential checker: every Read must match the oracle exactly
//     (same hit/miss, same 64 bytes), for every scheme, in both the
//     single-threaded System form and the sharded form (1/2/8 shards,
//     coalescing on and off) — so every scheme also implicitly agrees with
//     every other scheme;
//   - the invariant checker: every AuditEvery ops the single engines'
//     white-box audits run — dedup refcount conservation, AMT
//     well-formedness, counter monotonicity/pad-uniqueness, EFIT
//     consistency (see the Audit methods in internal/dedup and
//     internal/core);
//   - the adversarial schedules (RunConcurrent): mixed concurrent
//     workloads under the race detector with per-bank fault injection and
//     mid-run crash/recovery.
//
// Every failure carries the seed and the op index at which it fired, so
// `esdcheck -seed N -upto M` replays the exact prefix.
package check

import (
	"fmt"

	"github.com/esdsim/esd/internal/core"
	"github.com/esdsim/esd/internal/dedup"
	"github.com/esdsim/esd/internal/experiments"
	"github.com/esdsim/esd/internal/memctrl"
)

// DefaultSchemes returns the scheme names the checker covers by default:
// the four canonical schemes plus ESD on the hybrid DRAM/PCM media tier,
// whose placement, migration and write-ahead-log machinery must stay
// observably identical to plain-PCM ESD.
func DefaultSchemes() []string {
	return append(experiments.Schemes(), experiments.SchemeESDCaram)
}

// Violation is one checker failure, pinned to the op index (into the
// generated stream) after which it was detected.
type Violation struct {
	// Engine names the engine variant that diverged (e.g. "esd/single",
	// "dewrite/shards=8,coalesce").
	Engine string
	// Op is the 0-based index of the last generated op before detection.
	Op int
	// Msg is the human-readable description.
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("op %d: %s: %s", v.Op, v.Engine, v.Msg)
}

// auditor is the optional white-box audit surface a scheme may expose on
// top of the shared Base audit.
type auditor interface {
	AuditBase() []string
}

// AuditScheme runs every white-box invariant audit the scheme supports and
// returns the violations (empty = consistent). It recognizes the shared
// dedup.Base audit plus the per-scheme fingerprint-index audits; schemes
// without audit surfaces (the baseline) trivially pass.
func AuditScheme(sch memctrl.Scheme) []string {
	var bad []string
	if a, ok := sch.(auditor); ok {
		bad = append(bad, a.AuditBase()...)
	}
	switch s := sch.(type) {
	case *core.ESD:
		bad = append(bad, s.AuditEFIT()...)
	case *dedup.SHA1:
		bad = append(bad, s.AuditIndex()...)
	case *dedup.DeWrite:
		bad = append(bad, s.AuditIndex()...)
	}
	return bad
}
