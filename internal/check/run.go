package check

import (
	"fmt"
	"math/rand"

	"github.com/esdsim/esd/internal/config"
)

// Config parameterizes one differential run.
type Config struct {
	// Gen shapes the workload (DefaultGen if zero Ops).
	Gen GenConfig
	// Seed drives the generator; the same (Gen, Seed) pair replays the
	// exact same op stream.
	Seed uint64
	// Schemes lists the schemes to check (default: the four canonical).
	Schemes []string
	// Shards lists the sharded variants per scheme (default 1, 2, 8; nil
	// keeps the default, an explicit empty slice disables sharded
	// variants).
	Shards []int
	// Coalesce lists the coalescing settings per sharded variant
	// (default off and on).
	Coalesce []bool
	// AuditEvery runs the invariant audits every K ops on the single
	// engines (default 2000; <0 disables).
	AuditEvery int
	// Upto stops after this many ops (0 = the full Gen.Ops), replaying the
	// failing prefix of an earlier run.
	Upto int
	// MaxViolations stops the run early once this many violations
	// accumulated (default 10).
	MaxViolations int
	// BatchFraction, in (0,1], routes that fraction of consecutive-write
	// runs through the engines' batched write APIs (memctrl.WriteBatch on
	// the single engines, Engine.WriteBatch on the sharded ones) instead
	// of scalar writes. The choice is drawn from a seed-derived RNG so
	// runs replay exactly. 0 disables batching (the default).
	BatchFraction float64
	// mutateBatch, when non-nil, rewrites each batched run before the
	// engines see it while the oracle keeps the originals — a test-only
	// hook proving batch/scalar divergence is caught.
	mutateBatch func(items []batchItem) []batchItem
	// SysCfg overrides the system configuration (zero = checkConfig()).
	SysCfg *config.Config
	// Progress, when non-nil, is called every few thousand ops.
	Progress func(done, total int)
}

// Result reports one differential run.
type Result struct {
	// Ops is the number of ops executed.
	Ops int
	// Writes/Reads/Crashes decompose the executed ops.
	Writes, Reads, Crashes int
	// Engines lists the engine variants checked.
	Engines []string
	// Violations are the failures, each pinned to an op index.
	Violations []Violation
}

// Ok reports whether the run found no violations.
func (r *Result) Ok() bool { return len(r.Violations) == 0 }

// checkConfig returns the system configuration the checker runs under: the
// Table I defaults shrunk to a 64 MiB device so 28 engine variants fit in
// memory, with SRAM caches shrunk too so eviction/refill paths actually
// exercise under a small address footprint.
func checkConfig() config.Config {
	cfg := config.Default()
	cfg.PCM.CapacityBytes = 1 << 26
	cfg.Meta.EFITCacheBytes = 16 << 10
	cfg.Meta.AMTCacheBytes = 16 << 10
	cfg.SHA1.FPCacheBytes = 16 << 10
	cfg.DeWrite.FPCacheBytes = 16 << 10
	// Hybrid-media variants: a DRAM buffer far smaller than the generator's
	// address footprint (1024 lines vs 8192 hot-skewed addresses), an eager
	// promotion threshold and a short WAL, so promotion, LRU demotion,
	// dirty writeback and log rotation all churn constantly instead of the
	// buffer swallowing the working set.
	cfg.Media.DRAM.CapacityBytes = 64 << 10
	cfg.Media.PromoteThreshold = 2
	cfg.Media.DecayEvery = 2048
	cfg.Media.WALLines = 64
	return cfg
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Gen.Ops == 0 {
		out.Gen = DefaultGen()
	}
	if len(out.Schemes) == 0 {
		out.Schemes = DefaultSchemes()
	}
	if out.Shards == nil {
		out.Shards = []int{1, 2, 8}
	}
	if len(out.Coalesce) == 0 {
		out.Coalesce = []bool{false, true}
	}
	if out.AuditEvery == 0 {
		out.AuditEvery = 2000
	}
	if out.MaxViolations == 0 {
		out.MaxViolations = 10
	}
	return out
}

// Run executes one differential + invariant checking pass: a single
// generated op stream applied to the oracle and every engine variant, with
// periodic white-box audits. It returns an error only for harness-level
// failures (bad scheme name, engine construction); divergences and
// invariant violations land in Result.Violations.
func Run(cfg Config) (*Result, error) {
	rc := cfg.withDefaults()
	sys := checkConfig()
	if rc.SysCfg != nil {
		sys = *rc.SysCfg
	}

	var engines []engine
	defer func() {
		for _, e := range engines {
			e.close()
		}
	}()
	for _, scheme := range rc.Schemes {
		se, err := newSingleEngine(sys, scheme)
		if err != nil {
			return nil, fmt.Errorf("check: %w", err)
		}
		engines = append(engines, se)
		for _, n := range rc.Shards {
			for _, co := range rc.Coalesce {
				sh, err := newShardEngine(sys, scheme, n, co)
				if err != nil {
					return nil, fmt.Errorf("check: %w", err)
				}
				engines = append(engines, sh)
			}
		}
	}

	res := &Result{}
	for _, e := range engines {
		res.Engines = append(res.Engines, e.label())
	}

	oracle := NewOracle()
	gen := NewGen(rc.Gen, rc.Seed)
	limit := rc.Gen.Ops
	if rc.Upto > 0 && rc.Upto < limit {
		limit = rc.Upto
	}

	fail := func(eng string, op int, msg string) {
		res.Violations = append(res.Violations, Violation{Engine: eng, Op: op, Msg: msg})
	}

	// Batched-write buffering: with BatchFraction set, consecutive writes
	// accumulate and flush — as one batched call or a scalar run, chosen
	// by a seed-derived coin — at the next read/crash/audit boundary.
	// Buffering only ever delays engine writes past other writes in the
	// same run, so the op order every engine observes stays exactly the
	// order the oracle applied.
	batchRng := rand.New(rand.NewSource(int64(rc.Seed)*2654435761 + 97))
	var pending []batchItem
	const maxPendingBatch = 16
	flushPending := func() {
		if len(pending) == 0 {
			return
		}
		items := pending
		if rc.mutateBatch != nil {
			items = rc.mutateBatch(items)
		}
		if len(items) > 1 && batchRng.Float64() < rc.BatchFraction {
			for _, e := range engines {
				for _, m := range e.writeBatch(items) {
					fail(e.label(), m.op, m.msg)
				}
			}
		} else {
			for _, it := range items {
				for _, e := range engines {
					for _, msg := range e.write(it.addr, it.line) {
						fail(e.label(), it.op, msg)
					}
				}
			}
		}
		pending = pending[:0]
	}

	for i := 0; i < limit; i++ {
		op, ok := gen.Next()
		if !ok {
			break
		}
		res.Ops++
		switch op.Kind {
		case OpWrite:
			res.Writes++
			oracle.Write(op.Addr, op.Line)
			if rc.BatchFraction > 0 {
				pending = append(pending, batchItem{op: i, addr: op.Addr, line: op.Line})
				if len(pending) >= maxPendingBatch {
					flushPending()
				}
				break
			}
			for _, e := range engines {
				for _, msg := range e.write(op.Addr, op.Line) {
					fail(e.label(), i, msg)
				}
			}
		case OpRead:
			flushPending()
			res.Reads++
			want, wantHit := oracle.Read(op.Addr)
			for _, e := range engines {
				got, hit, err := e.read(op.Addr)
				switch {
				case err != nil:
					fail(e.label(), i, fmt.Sprintf("read addr=%d: %v", op.Addr, err))
				case hit != wantHit:
					fail(e.label(), i, fmt.Sprintf("read addr=%d: hit=%v, oracle says %v", op.Addr, hit, wantHit))
				case hit && got != want:
					fail(e.label(), i, fmt.Sprintf("read addr=%d: data diverges from oracle (got word0=%#x want %#x)", op.Addr, got.Word(0), want.Word(0)))
				}
			}
		case OpCrash:
			flushPending()
			res.Crashes++
			for _, e := range engines {
				e.crash()
			}
		}
		if rc.AuditEvery > 0 && (i+1)%rc.AuditEvery == 0 {
			flushPending()
			for _, e := range engines {
				for _, msg := range e.audit() {
					fail(e.label(), i, msg)
				}
			}
		}
		if len(res.Violations) >= rc.MaxViolations {
			return res, nil
		}
		if rc.Progress != nil && (i+1)%10000 == 0 {
			rc.Progress(i+1, limit)
		}
	}

	// Final sweep: every address the oracle ever saw must read back
	// identically on every engine, then one last audit.
	flushPending()
	lastOp := res.Ops - 1
	for addr := uint64(0); addr < rc.Gen.Addrs; addr++ {
		want, wantHit := oracle.Read(addr)
		if !wantHit {
			continue
		}
		for _, e := range engines {
			got, hit, err := e.read(addr)
			switch {
			case err != nil:
				fail(e.label(), lastOp, fmt.Sprintf("final sweep addr=%d: %v", addr, err))
			case !hit:
				fail(e.label(), lastOp, fmt.Sprintf("final sweep addr=%d: written line lost", addr))
			case got != want:
				fail(e.label(), lastOp, fmt.Sprintf("final sweep addr=%d: data diverges from oracle", addr))
			}
			if len(res.Violations) >= rc.MaxViolations {
				return res, nil
			}
		}
	}
	if rc.AuditEvery >= 0 {
		for _, e := range engines {
			for _, msg := range e.audit() {
				fail(e.label(), lastOp, msg)
			}
		}
	}
	return res, nil
}
