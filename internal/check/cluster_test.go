package check

import "testing"

// A modest routed run with both fault injections live: reshard at 40%,
// node kill at 70%. Any divergence from the oracle fails.
func TestRunClusterDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("routed differential run is TCP-heavy")
	}
	cfg := ClusterConfig{Gen: DefaultGen(), Seed: 1}
	cfg.Gen.Ops = 20_000
	cfg.Gen.Addrs = 1 << 11
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		for _, v := range res.Violations {
			t.Errorf("%v", v)
		}
		t.Fatalf("cluster differential run found %d violation(s)", len(res.Violations))
	}
	if res.Ops != 20_000 {
		t.Fatalf("executed %d ops, want 20000", res.Ops)
	}
	if res.Writes == 0 || res.Reads == 0 {
		t.Fatalf("degenerate op mix: writes=%d reads=%d", res.Writes, res.Reads)
	}
}

// The same routed run with most write runs going through the batched
// wire frames — batches buffered across the reshard and kill injection
// points, so batched frames cross a live migration and a node loss.
func TestRunClusterDifferentialBatched(t *testing.T) {
	if testing.Short() {
		t.Skip("routed differential run is TCP-heavy")
	}
	cfg := ClusterConfig{Gen: DefaultGen(), Seed: 2, BatchFraction: 0.9}
	cfg.Gen.Ops = 20_000
	cfg.Gen.Addrs = 1 << 11
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		for _, v := range res.Violations {
			t.Errorf("%v", v)
		}
		t.Fatalf("batched cluster differential run found %d violation(s)", len(res.Violations))
	}
	if res.Writes == 0 || res.Reads == 0 {
		t.Fatalf("degenerate op mix: writes=%d reads=%d", res.Writes, res.Reads)
	}
}

// The guard that keeps the kill injection honest: with R=1 a node kill
// loses data, so the checker refuses the configuration outright.
func TestRunClusterRejectsUnreplicatedKill(t *testing.T) {
	cfg := ClusterConfig{Gen: DefaultGen(), Seed: 1, Replication: 1}
	cfg.Gen.Ops = 100
	if _, err := RunCluster(cfg); err == nil {
		t.Fatal("kill injection with replication=1 accepted")
	}
}

// Prefix replay: -upto stops before the injections without error.
func TestRunClusterUptoPrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("routed differential run is TCP-heavy")
	}
	cfg := ClusterConfig{Gen: DefaultGen(), Seed: 7, Upto: 500}
	cfg.Gen.Ops = 20_000
	cfg.Gen.Addrs = 1 << 10
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("prefix run violations: %v", res.Violations)
	}
	if res.Ops != 500 {
		t.Fatalf("prefix executed %d ops, want 500", res.Ops)
	}
}
