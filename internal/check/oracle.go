package check

import "github.com/esdsim/esd/internal/ecc"

// Oracle is the trivially-correct reference memory: a map from logical line
// address to the last line written there. Everything the schemes do —
// fingerprints, dedup, encryption, sharding, coalescing — must be
// observationally equivalent to this.
type Oracle struct {
	mem map[uint64]ecc.Line
}

// NewOracle returns an empty oracle memory.
func NewOracle() *Oracle {
	return &Oracle{mem: make(map[uint64]ecc.Line)}
}

// Write records the line as addr's current content.
func (o *Oracle) Write(addr uint64, line ecc.Line) { o.mem[addr] = line }

// Read returns addr's current content and whether it was ever written.
func (o *Oracle) Read(addr uint64) (ecc.Line, bool) {
	l, ok := o.mem[addr]
	return l, ok
}

// Len returns the number of distinct addresses written.
func (o *Oracle) Len() int { return len(o.mem) }
