package check

import (
	"fmt"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/experiments"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/shard"
	"github.com/esdsim/esd/internal/sim"
)

// engine is one system variant under differential test. write and audit
// return violation messages (empty = fine); read returns what the variant
// observes so the runner can compare it against the oracle.
type engine interface {
	label() string
	write(addr uint64, line ecc.Line) []string
	read(addr uint64) (ecc.Line, bool, error)
	// crash simulates a power failure; it reports false when the variant
	// has no crash surface (sharded engines).
	crash() bool
	audit() []string
	close() error
}

// issueGap is the simulated time between self-clocked requests, matching
// the root System's default.
const issueGap = 10 * sim.Nanosecond

// singleEngine drives one raw memctrl.Scheme the way the single-threaded
// System does (self-clocked, periodic Tick), with two extra checker-only
// surfaces: the per-write dedup-safety probe and the white-box audits.
type singleEngine struct {
	name string
	env  *memctrl.Env
	sch  memctrl.Scheme

	now      sim.Time
	nextTick sim.Time
	buf      ecc.Line

	// dedupIdentical reports whether a Deduplicated outcome promises the
	// stored line is byte-identical to the written one. True for every
	// scheme except BCD, whose delta writes report the base line as their
	// physical backing while storing a compressed difference elsewhere.
	dedupIdentical bool

	// Counter-audit shadow state (pad-uniqueness): per-line counters must
	// never decrease between audits, and the total counter mass must move
	// in lockstep with the crypto engine's encryption count minus the
	// scheme's discarded speculative encryptions.
	shadow     map[uint64]uint64
	prevSum    uint64
	prevEnc    uint64
	prevWasted uint64
}

func newSingleEngine(cfg config.Config, scheme string) (*singleEngine, error) {
	env := memctrl.NewEnv(cfg)
	sch, err := experiments.NewScheme(env, scheme)
	if err != nil {
		return nil, err
	}
	return &singleEngine{
		name:           scheme + "/single",
		env:            env,
		sch:            sch,
		dedupIdentical: scheme != experiments.SchemeBCD,
		shadow:         make(map[uint64]uint64),
	}, nil
}

func (e *singleEngine) label() string { return e.name }

// step advances the self-clock and drives due maintenance ticks.
func (e *singleEngine) step() sim.Time {
	e.now += issueGap
	if iv := e.sch.TickInterval(); iv > 0 {
		if e.nextTick == 0 {
			e.nextTick = iv
		}
		for e.nextTick <= e.now {
			e.sch.Tick(e.nextTick)
			e.nextTick += iv
		}
	}
	return e.now
}

func (e *singleEngine) write(addr uint64, line ecc.Line) []string {
	at := e.step()
	e.buf = line
	out := e.sch.Write(addr, &e.buf, at)
	if out.Done > e.now {
		e.now = out.Done
	}
	if !out.Deduplicated || !e.dedupIdentical {
		return nil
	}
	// Dedup safety: the scheme claims an existing physical line already
	// holds exactly these bytes. Decrypt what is actually stored there and
	// call the bluff — this is where an unchecked fingerprint collision
	// (the crafted CollisionDelta lines) would silently corrupt data.
	ct, ok := e.env.Device.Load(out.PhysAddr)
	if !ok {
		return []string{fmt.Sprintf("dedup write addr=%d: phys %d has no stored line", addr, out.PhysAddr)}
	}
	pt := e.env.Crypto.DecryptAt(out.PhysAddr, e.env.Crypto.Counter(out.PhysAddr), &ct)
	if pt != line {
		return []string{fmt.Sprintf("dedup write addr=%d: phys %d stores different content (fingerprint collision accepted)", addr, out.PhysAddr)}
	}
	return nil
}

func (e *singleEngine) read(addr uint64) (ecc.Line, bool, error) {
	at := e.step()
	out := e.sch.Read(addr, at)
	if out.Done > e.now {
		e.now = out.Done
	}
	return out.Data, out.Hit, nil
}

func (e *singleEngine) crash() bool {
	c, ok := e.sch.(memctrl.Crasher)
	if !ok {
		return false
	}
	c.Crash(e.now)
	return true
}

func (e *singleEngine) audit() []string {
	bad := AuditScheme(e.sch)
	bad = append(bad, e.auditCounters()...)
	return bad
}

// auditCounters checks counter-mode pad uniqueness: a per-line counter that
// ever decreases (or a counter bump unaccounted by an encryption) would
// reuse a one-time pad.
func (e *singleEngine) auditCounters() []string {
	var bad []string
	var sum uint64
	e.env.Crypto.RangeCounters(func(addr, c uint64) bool {
		if prev, ok := e.shadow[addr]; ok && c < prev {
			bad = append(bad, fmt.Sprintf("counter: line %d went backwards %d -> %d (pad reuse)", addr, prev, c))
		}
		e.shadow[addr] = c
		sum += c
		return true
	})
	enc, wasted := e.env.Crypto.Encryptions, e.sch.Stats().WastedEncryptions
	dSum, dEnc, dWasted := sum-e.prevSum, enc-e.prevEnc, wasted-e.prevWasted
	if dSum != dEnc-dWasted {
		bad = append(bad, fmt.Sprintf("counter: counters advanced by %d but engine performed %d encryptions (%d discarded)", dSum, dEnc, dWasted))
	}
	e.prevSum, e.prevEnc, e.prevWasted = sum, enc, wasted
	return bad
}

func (e *singleEngine) close() error { return nil }

// shardEngine drives a sharded engine variant. Writes go through
// WriteAsync (fire-and-forget), which both exercises the coalescing path
// (synchronous writes never batch up) and still guarantees a later read of
// the same address observes the write: same address means same shard, and
// a shard executes its queue in submission order.
type shardEngine struct {
	name string
	eng  *shard.Engine
}

func newShardEngine(cfg config.Config, scheme string, shards int, coalesce bool) (*shardEngine, error) {
	eng, err := shard.New(cfg, scheme, shard.Options{Shards: shards, Coalesce: coalesce})
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("%s/shards=%d", scheme, shards)
	if coalesce {
		name += "+coalesce"
	}
	return &shardEngine{name: name, eng: eng}, nil
}

func (e *shardEngine) label() string { return e.name }

func (e *shardEngine) write(addr uint64, line ecc.Line) []string {
	if err := e.eng.WriteAsync(addr, line); err != nil {
		return []string{fmt.Sprintf("write addr=%d: %v", addr, err)}
	}
	return nil
}

func (e *shardEngine) read(addr uint64) (ecc.Line, bool, error) {
	res, err := e.eng.Read(addr)
	if err != nil {
		return ecc.Line{}, false, err
	}
	return res.Data, res.Hit, nil
}

func (e *shardEngine) crash() bool { return false }

func (e *shardEngine) audit() []string { return nil }

func (e *shardEngine) close() error { return e.eng.Close() }
