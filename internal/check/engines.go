package check

import (
	"fmt"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/experiments"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/shard"
	"github.com/esdsim/esd/internal/sim"
)

// engine is one system variant under differential test. write and audit
// return violation messages (empty = fine); read returns what the variant
// observes so the runner can compare it against the oracle.
type engine interface {
	label() string
	write(addr uint64, line ecc.Line) []string
	// writeBatch applies a run of consecutive writes through the
	// variant's batched path. It must be observably identical to calling
	// write for each item in order; violations carry the item's op index.
	writeBatch(items []batchItem) []opMsg
	read(addr uint64) (ecc.Line, bool, error)
	// crash simulates a power failure; it reports false when the variant
	// has no crash surface (sharded engines).
	crash() bool
	audit() []string
	close() error
}

// batchItem is one buffered write op awaiting a batched flush. op is its
// index in the generated stream, kept so violations pin to the precise
// op for replay.
type batchItem struct {
	op   int
	addr uint64
	line ecc.Line
}

// opMsg is a violation message pinned to an op index.
type opMsg struct {
	op  int
	msg string
}

// issueGap is the simulated time between self-clocked requests, matching
// the root System's default.
const issueGap = 10 * sim.Nanosecond

// singleEngine drives one raw memctrl.Scheme the way the single-threaded
// System does (self-clocked, periodic Tick), with two extra checker-only
// surfaces: the per-write dedup-safety probe and the white-box audits.
type singleEngine struct {
	name string
	env  *memctrl.Env
	sch  memctrl.Scheme

	now      sim.Time
	nextTick sim.Time
	buf      ecc.Line

	// dedupIdentical reports whether a Deduplicated outcome promises the
	// stored line is byte-identical to the written one. True for every
	// scheme except BCD, whose delta writes report the base line as their
	// physical backing while storing a compressed difference elsewhere.
	dedupIdentical bool

	// Counter-audit shadow state (pad-uniqueness): per-line counters must
	// never decrease between audits, and the total counter mass must move
	// in lockstep with the crypto engine's encryption count minus the
	// scheme's discarded speculative encryptions.
	shadow     map[uint64]uint64
	prevSum    uint64
	prevEnc    uint64
	prevWasted uint64
}

func newSingleEngine(cfg config.Config, scheme string) (*singleEngine, error) {
	env := memctrl.NewEnv(cfg)
	sch, err := experiments.NewScheme(env, scheme)
	if err != nil {
		return nil, err
	}
	return &singleEngine{
		name:           scheme + "/single",
		env:            env,
		sch:            sch,
		dedupIdentical: scheme != experiments.SchemeBCD,
		shadow:         make(map[uint64]uint64),
	}, nil
}

func (e *singleEngine) label() string { return e.name }

// step advances the self-clock and drives due maintenance ticks.
func (e *singleEngine) step() sim.Time {
	e.now += issueGap
	if iv := e.sch.TickInterval(); iv > 0 {
		if e.nextTick == 0 {
			e.nextTick = iv
		}
		for e.nextTick <= e.now {
			e.sch.Tick(e.nextTick)
			e.nextTick += iv
		}
	}
	return e.now
}

func (e *singleEngine) write(addr uint64, line ecc.Line) []string {
	at := e.step()
	e.buf = line
	out := e.sch.Write(addr, &e.buf, at)
	if out.Done > e.now {
		e.now = out.Done
	}
	if !out.Deduplicated || !e.dedupIdentical {
		return nil
	}
	// Dedup safety: the scheme claims an existing physical line already
	// holds exactly these bytes. Decrypt what is actually stored there and
	// call the bluff — this is where an unchecked fingerprint collision
	// (the crafted CollisionDelta lines) would silently corrupt data.
	ct, ok := e.env.Device.Load(out.PhysAddr)
	if !ok {
		return []string{fmt.Sprintf("dedup write addr=%d: phys %d has no stored line", addr, out.PhysAddr)}
	}
	pt := e.env.Crypto.DecryptAt(out.PhysAddr, e.env.Crypto.Counter(out.PhysAddr), &ct)
	if pt != line {
		return []string{fmt.Sprintf("dedup write addr=%d: phys %d stores different content (fingerprint collision accepted)", addr, out.PhysAddr)}
	}
	return nil
}

// writeBatch drives a run of writes through memctrl.WriteBatch — the
// same batched kernel path System.WriteBatch uses — with the
// self-clock advanced per op exactly like the scalar path.
func (e *singleEngine) writeBatch(items []batchItem) []opMsg {
	lines := make([]ecc.Line, len(items))
	batch := make([]memctrl.BatchWrite, len(items))
	for i, it := range items {
		lines[i] = it.line
		batch[i] = memctrl.BatchWrite{Logical: it.addr, Data: &lines[i], At: e.step()}
	}
	memctrl.WriteBatch(e.sch, batch)
	for i := range batch {
		if batch[i].Out.Done > e.now {
			e.now = batch[i].Out.Done
		}
	}
	if !e.dedupIdentical {
		return nil
	}
	// Dedup safety, batched: probe each deduplicated outcome unless a
	// later op in the same batch wrote to that physical line — then the
	// store legitimately holds newer bytes and the scalar-equivalent
	// probe moment has passed.
	var bad []opMsg
	overwrittenLater := make(map[uint64]bool)
	for i := len(batch) - 1; i >= 0; i-- {
		out := batch[i].Out
		if out.Deduplicated && !overwrittenLater[out.PhysAddr] {
			ct, ok := e.env.Device.Load(out.PhysAddr)
			if !ok {
				bad = append(bad, opMsg{items[i].op, fmt.Sprintf("batch dedup write addr=%d: phys %d has no stored line", items[i].addr, out.PhysAddr)})
			} else {
				pt := e.env.Crypto.DecryptAt(out.PhysAddr, e.env.Crypto.Counter(out.PhysAddr), &ct)
				if pt != items[i].line {
					bad = append(bad, opMsg{items[i].op, fmt.Sprintf("batch dedup write addr=%d: phys %d stores different content (fingerprint collision accepted)", items[i].addr, out.PhysAddr)})
				}
			}
		}
		if !out.Deduplicated {
			overwrittenLater[out.PhysAddr] = true
		}
	}
	// Reverse iteration built bad back-to-front; restore op order.
	for l, r := 0, len(bad)-1; l < r; l, r = l+1, r-1 {
		bad[l], bad[r] = bad[r], bad[l]
	}
	return bad
}

func (e *singleEngine) read(addr uint64) (ecc.Line, bool, error) {
	at := e.step()
	out := e.sch.Read(addr, at)
	if out.Done > e.now {
		e.now = out.Done
	}
	return out.Data, out.Hit, nil
}

func (e *singleEngine) crash() bool {
	c, ok := e.sch.(memctrl.Crasher)
	if !ok {
		return false
	}
	c.Crash(e.now)
	return true
}

func (e *singleEngine) audit() []string {
	bad := AuditScheme(e.sch)
	bad = append(bad, e.auditCounters()...)
	// Hybrid-media variants also audit the tier itself: LRU/index
	// consistency, capacity bounds, and clean residents byte-identical to
	// their PCM homes.
	if h := e.env.Hybrid(); h != nil {
		bad = append(bad, h.Audit()...)
	}
	return bad
}

// auditCounters checks counter-mode pad uniqueness: a per-line counter that
// ever decreases (or a counter bump unaccounted by an encryption) would
// reuse a one-time pad.
func (e *singleEngine) auditCounters() []string {
	var bad []string
	var sum uint64
	e.env.Crypto.RangeCounters(func(addr, c uint64) bool {
		if prev, ok := e.shadow[addr]; ok && c < prev {
			bad = append(bad, fmt.Sprintf("counter: line %d went backwards %d -> %d (pad reuse)", addr, prev, c))
		}
		e.shadow[addr] = c
		sum += c
		return true
	})
	enc, wasted := e.env.Crypto.Encryptions, e.sch.Stats().WastedEncryptions
	dSum, dEnc, dWasted := sum-e.prevSum, enc-e.prevEnc, wasted-e.prevWasted
	if dSum != dEnc-dWasted {
		bad = append(bad, fmt.Sprintf("counter: counters advanced by %d but engine performed %d encryptions (%d discarded)", dSum, dEnc, dWasted))
	}
	e.prevSum, e.prevEnc, e.prevWasted = sum, enc, wasted
	return bad
}

func (e *singleEngine) close() error { return nil }

// shardEngine drives a sharded engine variant. Writes go through
// WriteAsync (fire-and-forget), which both exercises the coalescing path
// (synchronous writes never batch up) and still guarantees a later read of
// the same address observes the write: same address means same shard, and
// a shard executes its queue in submission order.
type shardEngine struct {
	name string
	eng  *shard.Engine
}

func newShardEngine(cfg config.Config, scheme string, shards int, coalesce bool) (*shardEngine, error) {
	eng, err := shard.New(cfg, scheme, shard.Options{Shards: shards, Coalesce: coalesce})
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("%s/shards=%d", scheme, shards)
	if coalesce {
		name += "+coalesce"
	}
	return &shardEngine{name: name, eng: eng}, nil
}

func (e *shardEngine) label() string { return e.name }

func (e *shardEngine) write(addr uint64, line ecc.Line) []string {
	if err := e.eng.WriteAsync(addr, line); err != nil {
		return []string{fmt.Sprintf("write addr=%d: %v", addr, err)}
	}
	return nil
}

// writeBatch submits a run of writes through the sharded engine's
// batched path (one grouped channel round trip per touched shard).
func (e *shardEngine) writeBatch(items []batchItem) []opMsg {
	ops := make([]shard.WriteBatchOp, len(items))
	for i, it := range items {
		ops[i] = shard.WriteBatchOp{Addr: it.addr, Line: it.line}
	}
	if err := e.eng.WriteBatch(ops); err != nil {
		return []opMsg{{items[0].op, fmt.Sprintf("batch write: %v", err)}}
	}
	var bad []opMsg
	for i := range ops {
		if ops[i].Err != nil {
			bad = append(bad, opMsg{items[i].op, fmt.Sprintf("batch write addr=%d: %v", items[i].addr, ops[i].Err)})
		}
	}
	return bad
}

func (e *shardEngine) read(addr uint64) (ecc.Line, bool, error) {
	res, err := e.eng.Read(addr)
	if err != nil {
		return ecc.Line{}, false, err
	}
	return res.Data, res.Hit, nil
}

func (e *shardEngine) crash() bool { return false }

func (e *shardEngine) audit() []string { return nil }

func (e *shardEngine) close() error { return e.eng.Close() }
