package check

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"github.com/esdsim/esd/internal/cluster"
	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/server"
	"github.com/esdsim/esd/internal/shard"
)

// ClusterConfig parameterizes one routed differential run: the oracle
// compares against a consistent-hash Router fronting N real in-process
// esdserve nodes over TCP, with a node kill and a reshard cutover
// injected at fixed op indices so the whole schedule replays from the
// seed.
type ClusterConfig struct {
	// Gen shapes the workload (DefaultGen if zero Ops). Crash ops have no
	// cluster surface (the nodes are remote) and are skipped — a no-op on
	// every engine, so determinism is preserved.
	Gen GenConfig
	// Seed drives the generator.
	Seed uint64
	// Scheme is the backend scheme (default "esd").
	Scheme string
	// Nodes is the initial backend count (default 3).
	Nodes int
	// Replication is the router's replica factor (default 2; must be >= 2
	// when KillAt is enabled, or the kill genuinely loses data and the
	// checker would report that loss as a divergence).
	Replication int
	// KillAt shuts one node down (gracefully, as SIGTERM would) after op
	// index KillAt. 0 picks 70% of Ops; < 0 disables.
	KillAt int
	// ReshardAt grows the ring by one node after op index ReshardAt,
	// migrating live. 0 picks 40% of Ops; < 0 disables.
	ReshardAt int
	// Upto stops after this many ops (0 = full run), replaying a prefix.
	Upto int
	// MaxViolations stops the run early (default 10).
	MaxViolations int
	// BatchFraction, in (0,1], routes that fraction of consecutive-write
	// runs through the router's batched frames (Router.WriteBatch — one
	// wire round trip per touched node) instead of scalar writes, drawn
	// from a seed-derived RNG so runs replay exactly. Batches buffered
	// across the reshard/kill injection points exercise batched frames
	// mid-migration. 0 disables (the default).
	BatchFraction float64
	// Progress, when non-nil, is called every few thousand ops.
	Progress func(done, total int)
}

func (c *ClusterConfig) withDefaults() ClusterConfig {
	out := *c
	if out.Gen.Ops == 0 {
		out.Gen = DefaultGen()
	}
	if out.Scheme == "" {
		out.Scheme = "esd"
	}
	if out.Nodes <= 0 {
		out.Nodes = 3
	}
	if out.Replication <= 0 {
		out.Replication = 2
	}
	if out.KillAt == 0 {
		out.KillAt = out.Gen.Ops * 7 / 10
	}
	if out.ReshardAt == 0 {
		out.ReshardAt = out.Gen.Ops * 4 / 10
	}
	if out.MaxViolations == 0 {
		out.MaxViolations = 10
	}
	return out
}

// clusterNode is one in-process backend under the checker.
type clusterNode struct {
	name string
	eng  *shard.Engine
	srv  *server.Server
}

func (n *clusterNode) kill() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = n.srv.Shutdown(ctx)
	_ = n.eng.Close()
}

func bootClusterNode(sys config.Config, scheme, name string) (*clusterNode, error) {
	eng, err := shard.New(sys, scheme, shard.Options{Shards: 2})
	if err != nil {
		return nil, err
	}
	srv, err := server.New(eng, server.Config{Addr: "127.0.0.1:0", TCPAddr: "127.0.0.1:0"})
	if err != nil {
		_ = eng.Close()
		return nil, err
	}
	return &clusterNode{name: name, eng: eng, srv: srv}, nil
}

// RunCluster executes one routed differential pass: the generated op
// stream is applied to the map oracle and, over real TCP, to a Router
// fronting Nodes backends, with a mid-stream reshard (adding one node)
// and a mid-stream node kill at deterministic op indices. Reads must
// match the oracle exactly through every phase — before, during and
// after both fault injections.
func RunCluster(cfg ClusterConfig) (*Result, error) {
	rc := cfg.withDefaults()
	if rc.KillAt >= 0 && rc.Replication < 2 {
		return nil, fmt.Errorf("check: cluster kill injection needs replication >= 2 (got %d)", rc.Replication)
	}
	sys := checkConfig()

	var nodes []*clusterNode
	defer func() {
		for _, n := range nodes {
			n.kill()
		}
	}()
	for i := 0; i < rc.Nodes; i++ {
		n, err := bootClusterNode(sys, rc.Scheme, fmt.Sprintf("node%d", i))
		if err != nil {
			return nil, fmt.Errorf("check: cluster node %d: %w", i, err)
		}
		nodes = append(nodes, n)
	}
	// The standby joins the ring at ReshardAt.
	var standby *clusterNode
	if rc.ReshardAt >= 0 {
		n, err := bootClusterNode(sys, rc.Scheme, "standby")
		if err != nil {
			return nil, fmt.Errorf("check: cluster standby: %w", err)
		}
		nodes = append(nodes, n)
		standby = n
	}

	var members []cluster.Node
	for _, n := range nodes {
		if n == standby {
			continue
		}
		members = append(members, cluster.Node{
			Name:     n.name,
			TCPAddr:  n.srv.TCPAddr(),
			HTTPAddr: n.srv.Addr(),
		})
	}
	router, err := cluster.NewRouter(cluster.Config{
		Nodes:         members,
		Replication:   rc.Replication,
		ProbeInterval: 100 * time.Millisecond,
	})
	if err != nil {
		return nil, fmt.Errorf("check: cluster router: %w", err)
	}
	defer router.Close()

	label := fmt.Sprintf("cluster/%s/nodes=%d,r=%d", rc.Scheme, rc.Nodes, rc.Replication)
	res := &Result{Engines: []string{label}}
	fail := func(op int, msg string) {
		res.Violations = append(res.Violations, Violation{Engine: label, Op: op, Msg: msg})
	}

	oracle := NewOracle()
	gen := NewGen(rc.Gen, rc.Seed)
	limit := rc.Gen.Ops
	if rc.Upto > 0 && rc.Upto < limit {
		limit = rc.Upto
	}

	// Batched-frame buffering, mirroring Run: consecutive writes
	// accumulate and flush at the next read boundary (or when full), as
	// one Router.WriteBatch or a scalar run by a seed-derived coin. The
	// buffer deliberately survives the fault-injection points so batches
	// land mid-reshard and mid-kill.
	batchRng := rand.New(rand.NewSource(int64(rc.Seed)*2654435761 + 97))
	var pending []batchItem
	const maxPendingBatch = 16
	var batchOps []server.BatchWriteOp
	var batchRes []server.BatchWriteResult
	flushPending := func() {
		if len(pending) == 0 {
			return
		}
		if len(pending) > 1 && batchRng.Float64() < rc.BatchFraction {
			batchOps = batchOps[:0]
			for _, it := range pending {
				batchOps = append(batchOps, server.BatchWriteOp{Addr: it.addr, Line: it.line})
			}
			batchRes = append(batchRes[:0], make([]server.BatchWriteResult, len(batchOps))...)
			if err := router.WriteBatch(batchOps, batchRes); err != nil {
				fail(pending[0].op, fmt.Sprintf("batch write: %v", err))
			} else {
				for j, it := range pending {
					if batchRes[j].Err != nil {
						fail(it.op, fmt.Sprintf("batch write addr=%d: %v", it.addr, batchRes[j].Err))
					}
				}
			}
		} else {
			for _, it := range pending {
				if _, err := router.Write(it.addr, it.line); err != nil {
					fail(it.op, fmt.Sprintf("write addr=%d: %v", it.addr, err))
				}
			}
		}
		pending = pending[:0]
	}

	for i := 0; i < limit; i++ {
		// Fault injections fire at fixed indices so `esdcheck -cluster
		// -seed N -upto M` replays the identical schedule.
		if rc.ReshardAt >= 0 && i == rc.ReshardAt {
			grown := append(append([]cluster.Node{}, router.Ring().Nodes()...), cluster.Node{
				Name:     standby.name,
				TCPAddr:  standby.srv.TCPAddr(),
				HTTPAddr: standby.srv.Addr(),
			})
			rep, err := router.Reshard(grown, rc.Gen.Addrs)
			if err != nil {
				fail(i, fmt.Sprintf("reshard: %v", err))
				return res, nil
			}
			if rep.Unreadable > 0 {
				fail(i, fmt.Sprintf("reshard left %d addresses unreadable with all nodes up", rep.Unreadable))
			}
		}
		if rc.KillAt >= 0 && i == rc.KillAt {
			nodes[1].kill()
		}

		op, ok := gen.Next()
		if !ok {
			break
		}
		res.Ops++
		switch op.Kind {
		case OpWrite:
			res.Writes++
			oracle.Write(op.Addr, op.Line)
			if rc.BatchFraction > 0 {
				pending = append(pending, batchItem{op: i, addr: op.Addr, line: op.Line})
				if len(pending) >= maxPendingBatch {
					flushPending()
				}
				break
			}
			if _, err := router.Write(op.Addr, op.Line); err != nil {
				fail(i, fmt.Sprintf("write addr=%d: %v", op.Addr, err))
			}
		case OpRead:
			flushPending()
			res.Reads++
			want, wantHit := oracle.Read(op.Addr)
			resp, err := router.Read(op.Addr)
			switch {
			case err != nil:
				fail(i, fmt.Sprintf("read addr=%d: %v", op.Addr, err))
			case resp.Hit != wantHit:
				fail(i, fmt.Sprintf("read addr=%d: hit=%v, oracle says %v", op.Addr, resp.Hit, wantHit))
			case resp.Hit && string(resp.Data) != string(want[:]):
				fail(i, fmt.Sprintf("read addr=%d: data diverges from oracle", op.Addr))
			}
		case OpCrash:
			res.Crashes++ // no cluster surface; skipped
		}
		if len(res.Violations) >= rc.MaxViolations {
			return res, nil
		}
		if rc.Progress != nil && (i+1)%10000 == 0 {
			rc.Progress(i+1, limit)
		}
	}

	// Final sweep: every address the oracle holds must read back through
	// the post-fault ring.
	flushPending()
	lastOp := res.Ops - 1
	for addr := uint64(0); addr < rc.Gen.Addrs; addr++ {
		want, wantHit := oracle.Read(addr)
		if !wantHit {
			continue
		}
		resp, err := router.Read(addr)
		switch {
		case err != nil:
			fail(lastOp, fmt.Sprintf("final sweep addr=%d: %v", addr, err))
		case !resp.Hit:
			fail(lastOp, fmt.Sprintf("final sweep addr=%d: written line lost", addr))
		case string(resp.Data) != string(want[:]):
			fail(lastOp, fmt.Sprintf("final sweep addr=%d: data diverges from oracle", addr))
		}
		if len(res.Violations) >= rc.MaxViolations {
			return res, nil
		}
	}
	return res, nil
}
