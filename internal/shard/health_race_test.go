package shard

import (
	"sync"
	"testing"
)

// TestWearReadsRaceWithEngine exercises every barrier-free health accessor
// against a running sharded engine. Run under -race it proves wear and
// health reads are safe while shard workers drive their devices — the
// guarantee the serving endpoints (/statusz, /debug/device) depend on.
func TestWearReadsRaceWithEngine(t *testing.T) {
	eng, err := New(testConfig(), "esd", Options{Shards: 4, QueueDepth: 64, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, ws := range eng.WearSummaries() {
					_ = ws.MaxWear
				}
				for _, hs := range eng.DeviceHealths() {
					_ = hs.MaxWear
				}
				_ = eng.DeviceHealth()
				_, _, _ = eng.LiveOps()
				_ = eng.LiveSchemeStats()
			}
		}()
	}
	const n = 8000
	for i := 0; i < n; i++ {
		addr := uint64(i % 1024)
		if err := eng.WriteAsync(addr, lineWith(uint64(i%37))); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			if _, err := eng.Read(addr); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	writes, reads, _ := eng.LiveOps()
	if writes != n || reads != n/5 {
		t.Fatalf("LiveOps = %d writes / %d reads, want %d/%d", writes, reads, n, n/5)
	}
	// The live merged health must agree with the exact wear summaries.
	var exactTotal uint64
	for _, ws := range eng.WearSummaries() {
		exactTotal += ws.TotalWrites
	}
	h := eng.DeviceHealth()
	if h.Writes < exactTotal {
		// Health writes include metadata-region media writes too, so it can
		// only be >= the data wear total.
		t.Fatalf("merged health writes=%d < exact wear total %d", h.Writes, exactTotal)
	}
	st := eng.LiveSchemeStats()
	if st.Writes == 0 {
		t.Fatalf("published scheme stats empty after %d writes: %+v", n, st)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}
