package shard

import (
	"sync"
	"sync/atomic"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/stats"
	"github.com/esdsim/esd/internal/telemetry"
)

// kind is the request discriminator on the shard queues.
type kind uint8

const (
	kWrite kind = iota
	kRead
	kFlush      // drain the shard's device write queue
	kSnap       // snapshot the shard's counters
	kWriteBatch // a pre-grouped sub-batch of writes (Engine.WriteBatch)
)

// request is one unit of work on a shard queue. done (buffered, capacity
// 1) receives the response; a nil done is fire-and-forget (used by trace
// replay, which only needs the aggregate counters).
type request struct {
	kind kind
	addr uint64 // shard-local line address
	line ecc.Line
	tc   telemetry.TraceCtx // request-scoped trace context (zero = untraced)
	done chan response

	// batch carries a kWriteBatch sub-batch; the worker writes outcomes
	// into it in place (the done send publishes them to the caller).
	batch *subBatch
}

type response struct {
	write memctrl.WriteOutcome
	read  memctrl.ReadOutcome
	lat   sim.Time // simulated service latency (write/read)
	snap  *Snapshot
}

// shard is one independent partition: a scheme instance plus its private
// environment (EFIT, AMT, counter cache, bank group), owned exclusively
// by its worker goroutine. Fields below the queue are worker-private
// except flight, stages and coalesced, which are concurrency-safe and
// read live by the introspection endpoints (no barrier required).
type shard struct {
	id   int
	reqs chan request

	env      *memctrl.Env
	sch      memctrl.Scheme
	gap      sim.Time
	batch    int
	coalesce bool
	// batchKernels routes runs of consecutive drained writes through the
	// scheme's batched write path (Options.BatchKernels).
	batchKernels bool

	now      sim.Time
	interval sim.Time
	nextTick sim.Time

	// runIdx/runOps are execBatched's reusable scratch: the request
	// indices of the pending write run and the memctrl batch built from
	// them.
	runIdx []int
	runOps []memctrl.BatchWrite

	writeHist stats.Histogram
	readHist  stats.Histogram
	coalesced atomic.Uint64

	// Live op counters, bumped per executed request: the barrier-free
	// throughput view behind /statusz rates (a wedged shard must not make
	// the serving endpoints hang on a snapshot barrier).
	opWrites atomic.Uint64
	opReads  atomic.Uint64
	opDedup  atomic.Uint64
	// pubStats is a copy of the scheme's counter block, republished after
	// every drained batch; /debug/device reads dedup effectiveness from it
	// without a barrier.
	statsMu  sync.Mutex
	pubStats memctrl.SchemeStats

	// flight is the shard's always-on black box: the last N requests with
	// their stage vectors, recorded wait-free by the worker and snapshotted
	// by dump endpoints at any time.
	flight *telemetry.FlightRecorder
	// stages holds the per-stage latency histograms behind /statusz's
	// p50/p99 columns (nil unless Options.Tracing).
	stages *telemetry.StageHistograms
}

// run is the worker loop: it blocks for one request, then drains up to
// batch-1 more without blocking, optionally coalesces writes, and
// executes the batch in order. It exits when the queue is closed and
// fully drained.
func (s *shard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	buf := make([]request, 0, s.batch)
	var superseded []bool
	lastWrite := make(map[uint64]int)
	for {
		req, ok := <-s.reqs
		if !ok {
			return
		}
		buf = append(buf[:0], req)
		open := true
	drain:
		for len(buf) < s.batch {
			select {
			case r, ok := <-s.reqs:
				if !ok {
					open = false
					break drain
				}
				buf = append(buf, r)
			default:
				break drain
			}
		}
		switch {
		case s.coalesce && len(buf) > 1:
			superseded = s.markSuperseded(buf, superseded, lastWrite)
			if s.batchKernels {
				s.execBatched(buf, superseded)
			} else {
				s.execCoalesced(buf, superseded)
			}
		case s.batchKernels && len(buf) > 1:
			s.execBatched(buf, nil)
		default:
			for i := range buf {
				resp := s.exec(&buf[i])
				if buf[i].done != nil {
					buf[i].done <- resp
				}
			}
		}
		s.publishStats()
		if !open {
			// Queue closed mid-drain: finish anything still buffered in
			// the channel, then exit.
			for r := range s.reqs {
				resp := s.exec(&r)
				if r.done != nil {
					r.done <- resp
				}
			}
			s.publishStats()
			return
		}
	}
}

// markSuperseded flags every write that a newer same-address write in the
// same batch makes redundant. Scanning backwards: lastWrite[a] set means
// a later write to a exists with no intervening read of a (reads pin
// older writes; flush/snapshot barriers pin everything before them).
func (s *shard) markSuperseded(buf []request, superseded []bool, lastWrite map[uint64]int) []bool {
	superseded = append(superseded[:0], make([]bool, len(buf))...)
	clear(lastWrite)
	for i := len(buf) - 1; i >= 0; i-- {
		switch buf[i].kind {
		case kWrite:
			if _, ok := lastWrite[buf[i].addr]; ok {
				superseded[i] = true
			}
			lastWrite[buf[i].addr] = i
		case kRead:
			delete(lastWrite, buf[i].addr)
		default: // kFlush, kSnap, kWriteBatch: barriers
			clear(lastWrite)
		}
	}
	return superseded
}

// execCoalesced executes a batch honoring superseded marks: a skipped
// write completes with the outcome of the surviving (newer) write to its
// address, which always appears later in the same batch.
func (s *shard) execCoalesced(buf []request, superseded []bool) {
	var waiters map[uint64][]chan response
	for i := range buf {
		if superseded[i] {
			s.coalesced.Add(1)
			if buf[i].done != nil {
				if waiters == nil {
					waiters = make(map[uint64][]chan response)
				}
				waiters[buf[i].addr] = append(waiters[buf[i].addr], buf[i].done)
			}
			continue
		}
		resp := s.exec(&buf[i])
		if buf[i].kind == kWrite && waiters != nil {
			for _, ch := range waiters[buf[i].addr] {
				ch <- resp
			}
			delete(waiters, buf[i].addr)
		}
		if buf[i].done != nil {
			buf[i].done <- resp
		}
	}
}

// exec runs one request on the shard's scheme, advancing the shard clock
// exactly like System: self-clocked arrivals IssueGap apart, with the
// clock catching up to each completion.
func (s *shard) exec(r *request) response {
	switch r.kind {
	case kWrite:
		at := s.tick()
		s.env.Tel.BeginRequest(r.tc)
		out := s.sch.Write(r.addr, &r.line, at)
		if out.Done > s.now {
			s.now = out.Done
		}
		lat := out.Done - at
		s.opWrites.Add(1)
		if out.Deduplicated {
			s.opDedup.Add(1)
		}
		s.writeHist.Record(lat)
		st := telemetry.StagesFromBreakdown(&out.Breakdown)
		s.stages.Observe(&st)
		s.flight.RecordWrite(s.id, r.tc, r.addr, out.PhysAddr, out.Deduplicated, at, lat, &st)
		return response{write: out, lat: lat}
	case kRead:
		at := s.tick()
		s.env.Tel.BeginRequest(r.tc)
		out := s.sch.Read(r.addr, at)
		if out.Done > s.now {
			s.now = out.Done
		}
		lat := out.Done - at
		s.opReads.Add(1)
		s.readHist.Record(lat)
		s.flight.RecordRead(s.id, r.tc, r.addr, out.Hit, at, lat)
		return response{read: out, lat: lat}
	case kWriteBatch:
		// A sub-batch is one arrival group: every op ticks an arrival
		// before the scheme runs the batch, then the clock catches up to
		// the completions — the batched analogue of exec's self-clocking.
		b := r.batch
		s.env.Tel.BeginRequest(r.tc)
		for i := range b.ops {
			b.ops[i].At = s.tick()
		}
		memctrl.WriteBatch(s.sch, b.ops)
		for i := range b.ops {
			op := &b.ops[i]
			if op.Out.Done > s.now {
				s.now = op.Out.Done
			}
			lat := op.Out.Done - op.At
			b.lats[i] = lat
			s.opWrites.Add(1)
			if op.Out.Deduplicated {
				s.opDedup.Add(1)
			}
			s.writeHist.Record(lat)
			st := telemetry.StagesFromBreakdown(&op.Out.Breakdown)
			s.stages.Observe(&st)
			s.flight.RecordWrite(s.id, r.tc, op.Logical, op.Out.PhysAddr, op.Out.Deduplicated, op.At, lat, &st)
		}
		// Outcomes travel in the sub-batch itself; the done send is the
		// publication barrier.
		return response{}
	case kFlush:
		if idle := s.env.Device.Flush(s.now); idle > s.now {
			s.now = idle
		}
		return response{}
	default: // kSnap
		return response{snap: s.snapshot()}
	}
}

// execBatched executes a drained batch with runs of consecutive writes
// going through the scheme's batched write path (one batched AES pass
// per run) instead of the scalar loop. Reads, barriers and pre-grouped
// sub-batches flush the pending run first, preserving per-shard FIFO
// semantics. With a superseded mask (coalescing), a skipped write
// completes with the outcome of the surviving newer write to its
// address, exactly as in execCoalesced.
func (s *shard) execBatched(buf []request, superseded []bool) {
	var waiters map[uint64][]chan response
	run := s.runIdx[:0]
	flushRun := func() {
		if len(run) == 0 {
			return
		}
		ops := s.runOps[:0]
		for _, i := range run {
			s.env.Tel.BeginRequest(buf[i].tc)
			ops = append(ops, memctrl.BatchWrite{Logical: buf[i].addr, Data: &buf[i].line, At: s.tick()})
		}
		memctrl.WriteBatch(s.sch, ops)
		for k, i := range run {
			op := &ops[k]
			if op.Out.Done > s.now {
				s.now = op.Out.Done
			}
			lat := op.Out.Done - op.At
			s.opWrites.Add(1)
			if op.Out.Deduplicated {
				s.opDedup.Add(1)
			}
			s.writeHist.Record(lat)
			st := telemetry.StagesFromBreakdown(&op.Out.Breakdown)
			s.stages.Observe(&st)
			s.flight.RecordWrite(s.id, buf[i].tc, buf[i].addr, op.Out.PhysAddr, op.Out.Deduplicated, op.At, lat, &st)
			resp := response{write: op.Out, lat: lat}
			if waiters != nil {
				for _, ch := range waiters[buf[i].addr] {
					ch <- resp
				}
				delete(waiters, buf[i].addr)
			}
			if buf[i].done != nil {
				buf[i].done <- resp
			}
		}
		s.runOps = ops[:0]
		run = run[:0]
	}
	for i := range buf {
		if superseded != nil && superseded[i] {
			s.coalesced.Add(1)
			if buf[i].done != nil {
				if waiters == nil {
					waiters = make(map[uint64][]chan response)
				}
				waiters[buf[i].addr] = append(waiters[buf[i].addr], buf[i].done)
			}
			continue
		}
		if buf[i].kind == kWrite {
			run = append(run, i)
			continue
		}
		flushRun()
		resp := s.exec(&buf[i])
		if buf[i].done != nil {
			buf[i].done <- resp
		}
	}
	flushRun()
	s.runIdx = run[:0]
}

// publishStats republishes the scheme's counter block for the barrier-free
// readers (a struct copy under a short mutex; the scheme itself stays
// worker-private).
func (s *shard) publishStats() {
	// Publish the device's staged health accounting at the same batch
	// boundary, so the barrier-free health surface is at most one batch
	// stale — same doctrine as the live scheme stats below.
	s.env.Device.SyncHealth()
	st := s.sch.Stats()
	s.statsMu.Lock()
	s.pubStats = st
	s.statsMu.Unlock()
}

func (s *shard) tick() sim.Time {
	s.now += s.gap
	for s.interval > 0 && s.nextTick <= s.now {
		s.sch.Tick(s.nextTick)
		s.nextTick += s.interval
	}
	return s.now
}

func (s *shard) snapshot() *Snapshot {
	s.env.Device.SyncHealth()
	mst := s.env.Device.MediaStats()
	return &Snapshot{
		Shard:        s.id,
		Scheme:       s.sch.Stats(),
		WriteHist:    s.writeHist,
		ReadHist:     s.readHist,
		Energy:       s.env.Energy,
		MediaEnergy:  mst.MediaEnergy,
		DeviceWrites: mst.Writes,
		DeviceReads:  mst.Reads,
		Wear:         s.env.Device.Wear(),
		MetadataNVMM: s.sch.MetadataNVMM(),
		MetadataSRAM: s.sch.MetadataSRAM(),
		Now:          s.now,
		Coalesced:    s.coalesced.Load(),
		QueueLen:     len(s.reqs),
	}
}
