package shard

import (
	"errors"
	"io"

	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/nvm"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/stats"
	"github.com/esdsim/esd/internal/trace"
)

// Snapshot is one shard's consistent view of its counters, taken by the
// shard worker itself (so it reflects exactly the requests executed
// before the snapshot request in queue order).
type Snapshot struct {
	Shard        int
	Scheme       memctrl.SchemeStats
	WriteHist    stats.Histogram
	ReadHist     stats.Histogram
	Energy       stats.EnergyLedger
	MediaEnergy  float64 // nJ, accounted by the device
	DeviceWrites uint64
	DeviceReads  uint64
	Wear         nvm.WearSummary
	MetadataNVMM int64
	MetadataSRAM int64
	Now          sim.Time
	Coalesced    uint64
	QueueLen     int
}

// Summary aggregates per-shard snapshots into the same shapes the
// single-shard System reports, so experiment figures and the JSON stats
// endpoint read identically regardless of shard count.
type Summary struct {
	Shards int
	// Scheme is the field-wise sum of every shard's event counters; its
	// DedupRate therefore is the aggregate dedup rate.
	Scheme memctrl.SchemeStats
	// WriteHist and ReadHist merge the per-shard simulated service-time
	// histograms.
	WriteHist stats.Histogram
	ReadHist  stats.Histogram
	// Energy is the summed ledger including media energy.
	Energy       stats.EnergyLedger
	DeviceWrites uint64
	DeviceReads  uint64
	MetadataNVMM int64
	MetadataSRAM int64
	// MaxWear is the hottest line across all shards; MeanWear averages
	// over touched lines (write-volume weighted).
	MaxWear  uint64
	MeanWear float64
	// Now is the furthest shard clock.
	Now sim.Time
	// Coalesced counts writes absorbed by batch coalescing; Shed counts
	// Try* requests rejected with ErrOverloaded.
	Coalesced uint64
	Shed      uint64
}

func merge(e *Engine, snaps []Snapshot) Summary {
	sum := Summary{Shards: len(snaps), Shed: e.shed.Load()}
	var wearWrites, wearLines uint64
	for i := range snaps {
		sn := &snaps[i]
		sum.Scheme = sum.Scheme.Add(sn.Scheme)
		sum.WriteHist.Merge(&sn.WriteHist)
		sum.ReadHist.Merge(&sn.ReadHist)
		sum.Energy.Add(sn.Energy)
		sum.Energy.Media += sn.MediaEnergy
		sum.DeviceWrites += sn.DeviceWrites
		sum.DeviceReads += sn.DeviceReads
		sum.MetadataNVMM += sn.MetadataNVMM
		sum.MetadataSRAM += sn.MetadataSRAM
		if sn.Wear.MaxWear > sum.MaxWear {
			sum.MaxWear = sn.Wear.MaxWear
		}
		wearWrites += sn.Wear.TotalWrites
		wearLines += uint64(sn.Wear.LinesTouched)
		if sn.Now > sum.Now {
			sum.Now = sn.Now
		}
		sum.Coalesced += sn.Coalesced
	}
	if wearLines > 0 {
		sum.MeanWear = float64(wearWrites) / float64(wearLines)
	}
	return sum
}

// ReplayResult reports a sharded trace replay.
type ReplayResult struct {
	Summary
	Requests uint64
	Reads    uint64
	Writes   uint64
}

// Replay routes every record of the stream to its owning shard in stream
// order and waits for all of them to complete (full barrier), then
// returns the merged summary. Routing is fire-and-forget with bounded
// queues, so shards run concurrently while intra-shard order follows the
// stream; record arrival timestamps are ignored (each shard self-clocks),
// which makes a sharded replay a throughput-oriented reproduction rather
// than a timing-accurate one — see DESIGN.md §7 for the determinism
// contract that holds regardless.
func (e *Engine) Replay(stream trace.Stream) (*ReplayResult, error) {
	res := &ReplayResult{}
	for {
		rec, err := stream.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		res.Requests++
		var k kind
		switch rec.Op {
		case trace.OpWrite:
			k = kWrite
			res.Writes++
		case trace.OpRead:
			k = kRead
			res.Reads++
		default:
			return nil, errors.New("shard: unknown trace op")
		}
		sh := e.ShardOf(rec.Addr)
		if err := e.submit(sh, request{kind: k, addr: e.localAddr(rec.Addr), line: rec.Data}, true); err != nil {
			return nil, err
		}
	}
	if err := e.Flush(); err != nil {
		return nil, err
	}
	sum, err := e.Summary()
	if err != nil {
		return nil, err
	}
	res.Summary = sum
	return res, nil
}
