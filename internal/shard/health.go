package shard

import (
	"github.com/esdsim/esd/internal/media"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/nvm"
)

// This file is the engine's barrier-free device-health surface: everything
// here reads worker-concurrency-safe state (atomics, the devices' health
// locks, per-batch published counter blocks) and therefore stays
// responsive even when a shard is wedged mid-request — the property the
// serving endpoints rely on (see QueueLens). For exact, barrier-ordered
// views use Summary/Snapshots instead.

// LiveOps returns the engine-wide totals of executed requests: writes,
// reads, and writes eliminated by deduplication.
func (e *Engine) LiveOps() (writes, reads, dedup uint64) {
	for _, s := range e.shards {
		writes += s.opWrites.Load()
		reads += s.opReads.Load()
		dedup += s.opDedup.Load()
	}
	return writes, reads, dedup
}

// LiveSchemeStats merges the per-shard scheme counter blocks that workers
// republish after every drained batch. The result trails the live state by
// at most one batch per shard.
func (e *Engine) LiveSchemeStats() memctrl.SchemeStats {
	var out memctrl.SchemeStats
	for _, s := range e.shards {
		s.statsMu.Lock()
		st := s.pubStats
		s.statsMu.Unlock()
		out = out.Add(st)
	}
	return out
}

// DeviceHealths returns each shard device's health snapshot (bank/region
// counters, wear histogram, energy split), in shard order.
func (e *Engine) DeviceHealths() []nvm.HealthSnapshot {
	out := make([]nvm.HealthSnapshot, len(e.shards))
	for i, s := range e.shards {
		out[i] = s.env.Device.HealthSnapshot()
	}
	return out
}

// DeviceHealth merges the per-shard snapshots into one device-wide view
// (banks and regions renumbered in shard order).
func (e *Engine) DeviceHealth() nvm.HealthSnapshot {
	return nvm.MergeHealth(e.DeviceHealths())
}

// HybridStats sums the per-shard hybrid DRAM/PCM tier statistics; ok is
// false when the engine's media is plain PCM. Safe to call while the
// workers run (each shard's snapshot is atomics-based; the set is not a
// cross-shard barrier).
func (e *Engine) HybridStats() (media.HybridStats, bool) {
	var out media.HybridStats
	any := false
	for _, s := range e.shards {
		h := s.env.Hybrid()
		if h == nil {
			continue
		}
		any = true
		st := h.Snapshot()
		out.DRAMHits += st.DRAMHits
		out.DRAMMisses += st.DRAMMisses
		out.Promotions += st.Promotions
		out.Demotions += st.Demotions
		out.Writebacks += st.Writebacks
		out.WALAppends += st.WALAppends
		out.AbsorbedWrites += st.AbsorbedWrites
		out.CapacityLines += st.CapacityLines
		out.ResidentLines += st.ResidentLines
		out.DirtyLines += st.DirtyLines
	}
	return out, any
}

// WearSummaries returns each shard device's exact wear summary. Each
// summary is consistent per shard (taken under that device's health lock)
// but the set is not a cross-shard barrier.
func (e *Engine) WearSummaries() []nvm.WearSummary {
	out := make([]nvm.WearSummary, len(e.shards))
	for i, s := range e.shards {
		out[i] = s.env.Device.Wear()
	}
	return out
}
