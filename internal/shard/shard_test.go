package shard

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/trace"
)

func testConfig() config.Config {
	cfg := config.Default()
	cfg.PCM.CapacityBytes = 1 << 28 // 256 MB keeps per-test setup fast
	return cfg
}

func lineWith(words ...uint64) ecc.Line {
	var l ecc.Line
	for i, w := range words {
		l.SetWord(i, w)
	}
	return l
}

// disjointStream builds an interleaved stream over `shards` address
// regions where region r owns every address with addr % shards == r and
// all content embeds r, so regions are disjoint in both address and
// content. Within each region a small content pool produces duplicates.
func disjointStream(shards, n int) []trace.Record {
	recs := make([]trace.Record, 0, n)
	var t sim.Time
	for i := 0; i < n; i++ {
		region := uint64(i % shards)
		addr := region + uint64(shards)*uint64(i%97)    // 97 addresses per region
		content := lineWith(region, uint64(i%13), 1234) // 13 contents per region
		t += 10 * sim.Nanosecond
		recs = append(recs, trace.Record{Op: trace.OpWrite, Addr: addr, At: t, Data: content})
	}
	return recs
}

// TestShardedMatchesSingleShard is the determinism contract: on streams
// whose address regions are content-disjoint, an N-shard replay must
// reproduce the exact aggregate dedup-rate and write-reduction counters
// of the 1-shard replay — sharding partitions the work without changing
// what any region's scheme observes.
func TestShardedMatchesSingleShard(t *testing.T) {
	for _, scheme := range []string{"esd", "dedup-sha1", "dewrite"} {
		t.Run(scheme, func(t *testing.T) {
			recs := disjointStream(4, 8000)
			run := func(shards int) Summary {
				e, err := New(testConfig(), scheme, Options{Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				defer e.Close()
				res, err := e.Replay(trace.NewSliceStream(recs))
				if err != nil {
					t.Fatal(err)
				}
				return res.Summary
			}
			single, sharded := run(1), run(4)
			if single.Scheme.Writes != sharded.Scheme.Writes ||
				single.Scheme.DedupWrites != sharded.Scheme.DedupWrites ||
				single.Scheme.UniqueWrites != sharded.Scheme.UniqueWrites {
				t.Fatalf("aggregate dedup stats diverged:\n single:  W=%d dedup=%d unique=%d\n sharded: W=%d dedup=%d unique=%d",
					single.Scheme.Writes, single.Scheme.DedupWrites, single.Scheme.UniqueWrites,
					sharded.Scheme.Writes, sharded.Scheme.DedupWrites, sharded.Scheme.UniqueWrites)
			}
			if single.Scheme.DedupRate() != sharded.Scheme.DedupRate() {
				t.Fatalf("dedup rate diverged: %v vs %v", single.Scheme.DedupRate(), sharded.Scheme.DedupRate())
			}
			if single.Scheme.DedupWrites == 0 {
				t.Fatal("stream produced no duplicates; test is vacuous")
			}
		})
	}
}

// TestConcurrentEngineRace drives the sharded engine from 8 goroutines
// under the race detector (CI runs go test -race): the regression guard
// for the documented contract that a single-shard System is NOT
// goroutine-safe and concurrent callers must go through the Engine.
func TestConcurrentEngineRace(t *testing.T) {
	e, err := New(testConfig(), "esd", Options{Shards: 4, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 500; i++ {
				addr := uint64(g*1000 + i%50)
				switch i % 3 {
				case 0:
					if _, err := e.Write(addr, lineWith(uint64(g), uint64(i%7))); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := e.Read(addr); err != nil {
						t.Error(err)
						return
					}
				default:
					_, err := e.TryWrite(ctx, addr, lineWith(uint64(g), uint64(i%7)))
					if err != nil && !errors.Is(err, ErrOverloaded) {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	sum, err := e.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Scheme.Writes == 0 || sum.Scheme.Reads == 0 {
		t.Fatalf("no traffic recorded: %+v", sum.Scheme)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Write(1, ecc.Line{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write after Close: got %v, want ErrClosed", err)
	}
}

// stall blocks shard 0's worker by handing it a request whose done
// channel is unbuffered and unread; calling the returned release function
// (idempotent, also registered as a cleanup so failures can't deadlock
// Close) lets the worker proceed. It returns only once the worker has
// dequeued the request, so the queue is verifiably empty afterwards.
func stall(t *testing.T, e *Engine) (release func()) {
	t.Helper()
	blocked := make(chan response) // unbuffered: worker blocks delivering
	if err := e.submit(0, request{kind: kRead, done: blocked}, true); err != nil {
		t.Fatal(err)
	}
	for len(e.shards[0].reqs) != 0 {
		runtime.Gosched()
	}
	var once sync.Once
	release = func() { once.Do(func() { <-blocked }) }
	t.Cleanup(release)
	return release
}

func TestTryWriteShedsWhenQueueFull(t *testing.T) {
	e, err := New(testConfig(), "esd", Options{Shards: 1, QueueDepth: 2, Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() }) // runs after stall's release
	release := stall(t, e)
	// Fill the queue with fire-and-forget writes; the worker is stalled so
	// nothing drains.
	for i := 0; i < 2; i++ {
		if err := e.submit(0, request{kind: kWrite, addr: uint64(i)}, false); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if _, err := e.TryWrite(context.Background(), 9, ecc.Line{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("TryWrite on full queue: got %v, want ErrOverloaded", err)
	}
	if e.Shed() != 1 {
		t.Fatalf("Shed() = %d, want 1", e.Shed())
	}
	release() // let the worker drain
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	sum, err := e.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Shed != 1 {
		t.Fatalf("Summary.Shed = %d, want 1", sum.Shed)
	}
}

func TestCoalescingKeepsNewestAndRespectsReadBarrier(t *testing.T) {
	e, err := New(testConfig(), "esd", Options{Shards: 1, QueueDepth: 16, Batch: 16, Coalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() }) // runs after stall's release
	release := stall(t, e)
	resps := make([]chan response, 0, 4)
	sub := func(k kind, addr uint64, line ecc.Line) chan response {
		t.Helper()
		ch := make(chan response, 1)
		if err := e.submit(0, request{kind: k, addr: addr, line: line, done: ch}, true); err != nil {
			t.Fatal(err)
		}
		resps = append(resps, ch)
		return ch
	}
	// w(5)=old, w(5)=new   -> first coalesces into second
	// w(9)=a, r(9), w(9)=b -> the read pins w(9)=a; nothing coalesces
	first := sub(kWrite, 5, lineWith(1))
	second := sub(kWrite, 5, lineWith(2))
	sub(kWrite, 9, lineWith(7))
	readCh := sub(kRead, 9, ecc.Line{})
	sub(kWrite, 9, lineWith(8))
	release()
	r1, r2 := <-first, <-second
	if r1.write.PhysAddr != r2.write.PhysAddr || r1.write.Done != r2.write.Done {
		t.Fatalf("coalesced write outcome differs from survivor: %+v vs %+v", r1.write, r2.write)
	}
	if got := (<-readCh).read; !got.Hit || got.Data != lineWith(7) {
		t.Fatalf("read between writes saw %v (hit=%v), want the older content 7", got.Data.Word(0), got.Hit)
	}
	for _, ch := range resps[4:] {
		<-ch
	}
	sum, err := e.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Coalesced != 1 {
		t.Fatalf("Coalesced = %d, want exactly 1 (read barrier must pin w(9)=a)", sum.Coalesced)
	}
	got, err := e.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data != lineWith(2) {
		t.Fatalf("addr 5 = %v, want newest content 2", got.Data.Word(0))
	}
	got, err = e.Read(9)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data != lineWith(8) {
		t.Fatalf("addr 9 = %v, want newest content 8", got.Data.Word(0))
	}
}

func TestRouterBijection(t *testing.T) {
	e, err := New(testConfig(), "baseline", Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	seen := make(map[[2]uint64]uint64)
	for addr := uint64(0); addr < 4096; addr++ {
		key := [2]uint64{uint64(e.ShardOf(addr)), e.localAddr(addr)}
		if prev, dup := seen[key]; dup {
			t.Fatalf("addresses %d and %d collide on shard %d local %d", prev, addr, key[0], key[1])
		}
		seen[key] = addr
	}
}

func TestPerShardMetricsLabels(t *testing.T) {
	e, err := New(testConfig(), "esd", Options{Shards: 2, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for addr := uint64(0); addr < 10; addr++ {
		if _, err := e.Write(addr, lineWith(addr%3)); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := e.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`esd_writes_total{shard="0"}`,
		`esd_writes_total{shard="1"}`,
		`esd_cache_hits_total{cache="efit",shard="0"}`,
		`esd_write_latency_ns_bucket{shard="1",le="`,
		`esd_write_latency_ns_count{shard="0"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
	// The format requires all series of a family to be contiguous even
	// though two sinks registered them interleaved.
	if i0, i1 := strings.Index(out, `esd_writes_total{shard="0"}`), strings.Index(out, `esd_writes_total{shard="1"}`); i1-i0 > 40 {
		t.Errorf("family series not contiguous: offsets %d and %d", i0, i1)
	}
}

func TestSummaryBarrierSeesAllPriorWrites(t *testing.T) {
	e, err := New(testConfig(), "esd", Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const n = 300
	for i := 0; i < n; i++ {
		if _, err := e.Write(uint64(i), lineWith(uint64(i%5))); err != nil {
			t.Fatal(err)
		}
	}
	sum, err := e.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Scheme.Writes != n {
		t.Fatalf("Summary sees %d writes, want %d", sum.Scheme.Writes, n)
	}
	if sum.Scheme.DedupWrites+sum.Scheme.UniqueWrites != n {
		t.Fatalf("dedup+unique = %d, want %d", sum.Scheme.DedupWrites+sum.Scheme.UniqueWrites, n)
	}
}
