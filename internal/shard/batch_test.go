package shard

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/esdsim/esd/internal/xrand"
)

// batchStream builds a mixed dup/unique op stream across a global
// address space.
func batchStream(n int, seed uint64) []WriteBatchOp {
	rng := xrand.New(seed)
	ops := make([]WriteBatchOp, n)
	for i := range ops {
		ops[i].Addr = rng.Uint64n(1024)
		if rng.Bool(0.5) {
			ops[i].Line = lineWith(rng.Uint64n(16), 7)
		} else {
			ops[i].Line = lineWith(rng.Uint64(), rng.Uint64())
		}
	}
	return ops
}

// TestWriteBatchMatchesScalarEngine drives the same op stream through a
// scalar-write engine and a WriteBatch engine (same config, scheme and
// shard count) and requires identical dedup decisions, placements,
// aggregate statistics and read-back data. Each sub-batch lands on its
// shard in slice order, so per-shard op streams are identical to the
// scalar engine's.
func TestWriteBatchMatchesScalarEngine(t *testing.T) {
	for _, scheme := range []string{"esd", "dedup-sha1", "baseline"} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", scheme, shards), func(t *testing.T) {
				es, err := New(testConfig(), scheme, Options{Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				defer es.Close()
				eb, err := New(testConfig(), scheme, Options{Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				defer eb.Close()

				ops := batchStream(3000, 11)
				const batch = 64
				for lo := 0; lo < len(ops); lo += batch {
					hi := min(lo+batch, len(ops))
					chunk := ops[lo:hi]
					if err := eb.WriteBatch(chunk); err != nil {
						t.Fatal(err)
					}
					for i := range chunk {
						if chunk[i].Err != nil {
							t.Fatal(chunk[i].Err)
						}
						out, err := es.Write(chunk[i].Addr, chunk[i].Line)
						if err != nil {
							t.Fatal(err)
						}
						if out.Deduplicated != chunk[i].Out.Deduplicated || out.PhysAddr != chunk[i].Out.PhysAddr {
							t.Fatalf("op %d (addr %d) diverged: scalar dedup=%v phys=%d, batch dedup=%v phys=%d",
								lo+i, chunk[i].Addr, out.Deduplicated, out.PhysAddr,
								chunk[i].Out.Deduplicated, chunk[i].Out.PhysAddr)
						}
					}
				}

				ss, err := es.Summary()
				if err != nil {
					t.Fatal(err)
				}
				sb, err := eb.Summary()
				if err != nil {
					t.Fatal(err)
				}
				if ss.Scheme != sb.Scheme {
					t.Fatalf("scheme stats diverged:\nscalar %+v\nbatch  %+v", ss.Scheme, sb.Scheme)
				}

				for addr := uint64(0); addr < 1024; addr++ {
					rs, err := es.Read(addr)
					if err != nil {
						t.Fatal(err)
					}
					rb, err := eb.Read(addr)
					if err != nil {
						t.Fatal(err)
					}
					if rs.Hit != rb.Hit || rs.Data != rb.Data {
						t.Fatalf("read-back of %d diverged (hit %v/%v)", addr, rs.Hit, rb.Hit)
					}
				}
			})
		}
	}
}

// TestBatchKernelsMatchesScalar replays the same async write stream
// through a default engine and a BatchKernels engine: the drained-run
// batched execution must preserve every dedup decision and statistic.
func TestBatchKernelsMatchesScalar(t *testing.T) {
	run := func(batchKernels bool) (Summary, []ReadResult) {
		e, err := New(testConfig(), "esd", Options{Shards: 4, BatchKernels: batchKernels})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		ops := batchStream(4000, 23)
		// Async writes keep the queues deep enough that the workers drain
		// multi-request batches, which is what routes runs through the
		// batch kernels.
		for i := range ops {
			if err := e.WriteAsync(ops[i].Addr, ops[i].Line); err != nil {
				t.Fatal(err)
			}
		}
		sum, err := e.Summary()
		if err != nil {
			t.Fatal(err)
		}
		reads := make([]ReadResult, 256)
		for a := range reads {
			r, err := e.Read(uint64(a))
			if err != nil {
				t.Fatal(err)
			}
			reads[a] = r
		}
		return sum, reads
	}
	ss, rs := run(false)
	sb, rb := run(true)
	if ss.Scheme != sb.Scheme {
		t.Fatalf("scheme stats diverged:\nscalar %+v\nbatch  %+v", ss.Scheme, sb.Scheme)
	}
	for a := range rs {
		if rs[a].Hit != rb[a].Hit || rs[a].Data != rb[a].Data {
			t.Fatalf("read-back of %d diverged", a)
		}
	}
}

// TestWriteBatchAfterClose verifies the error contract: every op reports
// ErrClosed and the call returns it.
func TestWriteBatchAfterClose(t *testing.T) {
	e, err := New(testConfig(), "esd", Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	ops := batchStream(8, 3)
	if err := e.WriteBatch(ops); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteBatch after Close: err=%v, want ErrClosed", err)
	}
	for i := range ops {
		if !errors.Is(ops[i].Err, ErrClosed) {
			t.Fatalf("op %d: err=%v, want ErrClosed", i, ops[i].Err)
		}
	}
}

// TestTryWriteBatchSheds fills one shard's queue and verifies that only
// that shard's ops shed with ErrOverloaded while the rest complete.
func TestTryWriteBatchSheds(t *testing.T) {
	e, err := New(testConfig(), "baseline", Options{Shards: 2, QueueDepth: 1, Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Wedge shard 0 behind a slow request stream: occupy the worker and
	// fill the depth-1 queue. A write to an even address blocks the
	// worker only momentarily, so instead saturate by submitting async
	// writes until the queue reports full via TryWrite.
	ctx := context.Background()
	sawShed := false
	for try := 0; try < 200 && !sawShed; try++ {
		for i := 0; i < 64; i++ {
			e.WriteAsync(0, lineWith(uint64(i))) //nolint:errcheck
		}
		ops := batchStream(32, uint64(try))
		if err := e.TryWriteBatch(ctx, ops); err != nil {
			t.Fatal(err)
		}
		for i := range ops {
			switch {
			case ops[i].Err == nil:
			case errors.Is(ops[i].Err, ErrOverloaded):
				sawShed = true
			default:
				t.Fatalf("op %d: unexpected error %v", i, ops[i].Err)
			}
		}
	}
	if !sawShed {
		t.Skip("queues never filled; shedding not exercised on this machine")
	}
}
