// Batched submission: one queue round trip per touched shard instead of
// one per op, with each sub-batch executed through the scheme's batched
// write path (memctrl.WriteBatch) so unique stores share one batched AES
// pass. This is the engine-level half of the batch-throughput path; the
// wire half (batched TCP frames) sits on top of it in internal/server.
package shard

import (
	"context"
	"sync"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/telemetry"
)

// WriteBatchOp is one write in an Engine.WriteBatch call. The caller
// fills Addr and Line; the engine fills Out, Lat and Err.
type WriteBatchOp struct {
	// Addr is the global logical line address.
	Addr uint64
	// Line is the 64-byte payload.
	Line ecc.Line
	// Out is the scheme's outcome, valid when Err is nil.
	Out memctrl.WriteOutcome
	// Lat is the simulated service latency, valid when Err is nil.
	Lat sim.Time
	// Err is nil on success, ErrOverloaded when the owning shard's queue
	// was full (Try variant), ErrClosed after Close, or the context error
	// when the call was abandoned before this op's sub-batch completed.
	Err error
}

// subBatch is the per-shard slice of one batched write call: shard-local
// ops, plus the caller slots to scatter outcomes back to. For Try calls
// the lines are private copies rather than aliases, because a Try caller
// that abandons the wait returns while the worker is still executing —
// the worker must never touch caller-owned memory. A blocking WriteBatch
// cannot return before every sub-batch completes, so its sub-batches
// alias the caller's lines directly (schemes treat the line as read-only
// and encrypt into scheme-owned scratch), saving a 64-byte copy per op.
type subBatch struct {
	ops   []memctrl.BatchWrite
	lines []ecc.Line
	slots []int
	lats  []sim.Time
}

func (b *subBatch) reset() {
	b.ops = b.ops[:0]
	b.lines = b.lines[:0]
	b.slots = b.slots[:0]
	b.lats = b.lats[:0]
}

// subBatchPool recycles sub-batch buffers so steady-state batched writes
// stay allocation-light. Like respChanPool, an abandoned sub-batch must
// NOT be recycled: the worker still writes outcomes into it.
var subBatchPool = sync.Pool{New: func() any { return new(subBatch) }}

// batchPlan is the per-call grouping scratch: one sub-batch slot per
// shard plus the touched shards in submission order.
type batchPlan struct {
	subs  []*subBatch
	used  []int
	chans []chan response
}

var batchPlanPool = sync.Pool{New: func() any { return new(batchPlan) }}

// WriteBatch stores every op in one call. Ops are grouped by owning
// shard and each touched shard receives one queue request, so N ops cost
// one channel round trip per touched shard instead of N; each sub-batch
// runs through the scheme's batched write path, amortizing the AES pad
// generation across the batch. Ops land on their shard in slice order
// (per-shard FIFO holds against surrounding scalar requests). Blocks
// while any touched shard's queue is full and until every sub-batch has
// executed. Per-op results are written into ops; ErrClosed is reflected
// both per op and as the return value.
func (e *Engine) WriteBatch(ops []WriteBatchOp) error {
	return e.writeBatch(nil, ops, telemetry.TraceCtx{})
}

// TryWriteBatch is WriteBatch with load shedding and a deadline (see
// TryWriteBatchTraced).
func (e *Engine) TryWriteBatch(ctx context.Context, ops []WriteBatchOp) error {
	return e.writeBatch(ctx, ops, telemetry.TraceCtx{})
}

// TryWriteBatchTraced is WriteBatch with shedding and a deadline: ops
// owned by a shard whose queue is full fail individually with
// ErrOverloaded (the rest proceed), and ctx expiring while sub-batches
// are in flight abandons the wait — the shards still execute the writes;
// the abandoned ops report the context error. tc tags every op of the
// batch with one shared trace context.
func (e *Engine) TryWriteBatchTraced(ctx context.Context, ops []WriteBatchOp, tc telemetry.TraceCtx) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return e.writeBatch(ctx, ops, tc)
}

// writeBatch is the shared implementation; a nil ctx means block.
func (e *Engine) writeBatch(ctx context.Context, ops []WriteBatchOp, tc telemetry.TraceCtx) error {
	if len(ops) == 0 {
		return nil
	}
	p := batchPlanPool.Get().(*batchPlan)
	if cap(p.subs) < len(e.shards) {
		p.subs = make([]*subBatch, len(e.shards))
	}
	p.subs = p.subs[:len(e.shards)]

	blocking := ctx == nil
	for i := range ops {
		sh := e.ShardOf(ops[i].Addr)
		sb := p.subs[sh]
		if sb == nil {
			sb = subBatchPool.Get().(*subBatch)
			p.subs[sh] = sb
			p.used = append(p.used, sh)
		}
		sb.ops = append(sb.ops, memctrl.BatchWrite{Logical: e.localAddr(ops[i].Addr)})
		if !blocking {
			sb.lines = append(sb.lines, ops[i].Line)
		}
		sb.slots = append(sb.slots, i)
		sb.lats = append(sb.lats, 0)
		ops[i].Err = nil
	}

	// Data pointers are installed only once a sub-batch stops growing
	// (append may move the lines backing array). Blocking calls alias the
	// caller's lines instead — see subBatch.
	var firstErr error
	nsub := 0
	for _, sh := range p.used {
		sb := p.subs[sh]
		for k := range sb.ops {
			if blocking {
				sb.ops[k].Data = &ops[sb.slots[k]].Line
			} else {
				sb.ops[k].Data = &sb.lines[k]
			}
		}
		ch := getRespChan()
		if err := e.submit(sh, request{kind: kWriteBatch, tc: tc, batch: sb, done: ch}, ctx == nil); err != nil {
			putRespChan(ch)
			for _, slot := range sb.slots {
				ops[slot].Err = err
			}
			sb.reset()
			subBatchPool.Put(sb)
			p.subs[sh] = nil
			if err == ErrClosed && firstErr == nil {
				firstErr = err
			}
			continue
		}
		p.used[nsub] = sh
		p.chans = append(p.chans, ch)
		nsub++
	}

	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	abandoned := false
	for j := 0; j < nsub; j++ {
		sh, ch := p.used[j], p.chans[j]
		sb := p.subs[sh]
		p.subs[sh] = nil
		if !abandoned {
			select {
			case <-ch:
				for k, slot := range sb.slots {
					ops[slot].Out = sb.ops[k].Out
					ops[slot].Lat = sb.lats[k]
				}
				putRespChan(ch)
				sb.reset()
				subBatchPool.Put(sb)
				continue
			case <-ctxDone:
				abandoned = true
				if firstErr == nil {
					firstErr = ctx.Err()
				}
			}
		}
		// Abandoned: the worker still executes this sub-batch and sends
		// into ch later, so neither the channel nor the buffer may be
		// recycled.
		for _, slot := range sb.slots {
			ops[slot].Err = firstErr
		}
	}

	p.used = p.used[:0]
	p.chans = p.chans[:0]
	batchPlanPool.Put(p)
	return firstErr
}
