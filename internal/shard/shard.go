// Package shard implements the sharded concurrent engine: it partitions
// the physical line-address space across N independent single-threaded
// scheme instances ("shards"), each owning its own EFIT, AMT, counter
// cache and NVM bank group, and drives them through per-shard bounded
// request queues served by one worker goroutine per shard.
//
// The design mirrors the hardware's inherent parallelism (independent PCM
// bank groups and address regions) while keeping every shard exactly as
// deterministic as the single-threaded System it replaces: a shard is the
// unit of ordering, and requests to one shard execute in submission
// order. Deduplication is intentionally *not* attempted across shards —
// like the paper's per-region selective dedup, content is deduplicated
// only within the region (shard) it maps to, which removes all cross-shard
// synchronization from the write path (see DESIGN.md §7).
//
// Address routing is deterministic: logical line address a maps to shard
// a mod N and shard-local address a div N, so adjacent lines stripe
// round-robin across shards for load balance and the mapping is a
// bijection per shard.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/experiments"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/stats"
	"github.com/esdsim/esd/internal/telemetry"
)

// Engine lifecycle and flow-control errors.
var (
	// ErrClosed is returned by requests submitted after Close.
	ErrClosed = errors.New("shard: engine closed")
	// ErrOverloaded is returned by Try* calls when the target shard's
	// queue is full; callers shed load (the server maps it to HTTP 429).
	ErrOverloaded = errors.New("shard: shard queue full")
)

// Options configures an Engine.
type Options struct {
	// Shards is the number of independent shards (default 1). Each shard
	// owns 1/Shards of the device capacity as its private bank group.
	Shards int
	// QueueDepth bounds each shard's request queue (default 128). A full
	// queue blocks Write/Read and fails TryWrite/TryRead with
	// ErrOverloaded.
	QueueDepth int
	// Batch is the maximum number of queued requests a shard worker
	// drains per wakeup (default 32); batching amortizes scheduling and
	// enables write coalescing.
	Batch int
	// Coalesce collapses same-address writes within one drained batch:
	// only the newest survives (older ones complete with its outcome) —
	// never across an intervening read of that address, which pins every
	// older write. Off by default because it changes dedup statistics.
	Coalesce bool
	// BatchKernels executes runs of consecutive writes in a drained batch
	// through the scheme's batched write path (memctrl.WriteBatch):
	// identical dedup decisions, placements, counters and statistics, but
	// the pads of unique stores come from one batched AES pass and the
	// device writes issue after the decisions, so per-op latencies can
	// differ from the scalar path (deferred writes observe different
	// bank-queue states). Off by default for exact scalar-path latencies.
	BatchKernels bool
	// IssueGap is the simulated time each shard's clock advances per
	// request (default 10 ns), matching System.IssueGap.
	IssueGap sim.Time
	// Metrics enables per-shard telemetry sinks on one shared registry;
	// every metric carries a shard="i" label.
	Metrics bool
	// Tracing enables request-scoped stage tracing: per-shard per-stage
	// latency histograms (the /statusz p50/p99 source) and trace-context
	// propagation into the telemetry hooks. Off by default; the flight
	// recorder runs regardless.
	Tracing bool
	// FlightSlots sizes each shard's always-on flight-recorder ring
	// (rounded up to a power of two; <=0 selects
	// telemetry.DefaultFlightSlots). The recorder cannot be disabled —
	// it is the post-hoc debugging black box — only sized.
	FlightSlots int
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 128
	}
	if o.Batch <= 0 {
		o.Batch = 32
	}
	if o.IssueGap <= 0 {
		o.IssueGap = 10 * sim.Nanosecond
	}
	if o.FlightSlots <= 0 {
		o.FlightSlots = telemetry.DefaultFlightSlots
	}
	return o
}

// Engine is the sharded concurrent front of the simulator: N independent
// scheme instances behind bounded queues, safe for concurrent use by any
// number of goroutines.
type Engine struct {
	cfg    config.Config
	opts   Options
	scheme string
	shards []*shard
	reg    *telemetry.Registry

	mu     sync.RWMutex // guards closed against in-flight submits
	closed bool
	wg     sync.WaitGroup
	shed   atomic.Uint64
	trace  atomic.Uint64 // trace-ID allocator (see NewTrace)
}

// New builds an Engine running the named scheme on every shard. The
// configuration is validated once; each shard receives a copy whose PCM
// capacity is its 1/Shards slice of the device (its bank group), while
// metadata SRAM caches stay full-sized per shard (each shard is its own
// memory controller slice).
func New(cfg config.Config, scheme string, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if msg := cfg.Validate(); msg != "" {
		return nil, fmt.Errorf("shard: %s", msg)
	}
	if opts.Shards > 1024 {
		return nil, fmt.Errorf("shard: %d shards (max 1024)", opts.Shards)
	}
	shardCfg := cfg
	shardCfg.PCM.CapacityBytes = cfg.PCM.CapacityBytes / int64(opts.Shards)
	shardCfg.PCM.CapacityBytes -= shardCfg.PCM.CapacityBytes % config.CacheLineSize
	if shardCfg.Media.DRAM.CapacityBytes > 0 {
		// The hybrid tier's DRAM buffer is partitioned like the PCM it
		// fronts, so an N-shard engine has the same total DRAM as one.
		shardCfg.Media.DRAM.CapacityBytes = cfg.Media.DRAM.CapacityBytes / int64(opts.Shards)
		shardCfg.Media.DRAM.CapacityBytes -= shardCfg.Media.DRAM.CapacityBytes % config.CacheLineSize
	}
	if msg := shardCfg.Validate(); msg != "" {
		return nil, fmt.Errorf("shard: per-shard config: %s", msg)
	}
	e := &Engine{cfg: cfg, opts: opts, scheme: scheme}
	if opts.Metrics {
		e.reg = telemetry.NewRegistry()
	}
	for i := 0; i < opts.Shards; i++ {
		env := memctrl.NewEnv(shardCfg)
		if e.reg != nil {
			env.AttachTelemetry(telemetry.NewSink(telemetry.Options{
				Registry: e.reg,
				Labels:   fmt.Sprintf("shard=%q", fmt.Sprint(i)),
			}))
		}
		sch, err := experiments.NewScheme(env, scheme)
		if err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
		s := &shard{
			id:           i,
			env:          env,
			sch:          sch,
			reqs:         make(chan request, opts.QueueDepth),
			gap:          opts.IssueGap,
			batch:        opts.Batch,
			coalesce:     opts.Coalesce,
			batchKernels: opts.BatchKernels,
			interval:     sch.TickInterval(),
			flight:       telemetry.NewFlightRecorder(opts.FlightSlots),
		}
		if opts.Tracing {
			s.stages = new(telemetry.StageHistograms)
		}
		s.nextTick = s.interval
		e.shards = append(e.shards, s)
		e.wg.Add(1)
		go s.run(&e.wg)
	}
	return e, nil
}

// NumShards returns the shard count.
func (e *Engine) NumShards() int { return len(e.shards) }

// SchemeName returns the scheme every shard runs.
func (e *Engine) SchemeName() string { return e.scheme }

// Config returns the engine-level (whole device) configuration.
func (e *Engine) Config() config.Config { return e.cfg }

// Registry returns the shared telemetry registry (nil without
// Options.Metrics). Metric names carry shard="i" labels.
func (e *Engine) Registry() *telemetry.Registry { return e.reg }

// ShardOf returns the shard that owns logical line address addr.
func (e *Engine) ShardOf(addr uint64) int { return int(addr % uint64(len(e.shards))) }

// localAddr translates a global logical address to the owning shard's
// address space (the router's bijection: addr = local*N + shard).
func (e *Engine) localAddr(addr uint64) uint64 { return addr / uint64(len(e.shards)) }

// Shed returns the number of Try* requests rejected with ErrOverloaded.
func (e *Engine) Shed() uint64 { return e.shed.Load() }

// NewTrace allocates the next request trace context (monotonic trace IDs,
// span 1). The serving front end stamps every incoming request with one and
// threads it through the Traced request variants.
func (e *Engine) NewTrace() telemetry.TraceCtx {
	return telemetry.TraceCtx{TraceID: e.trace.Add(1), Span: 1}
}

// AdoptTrace builds a trace context for a request whose ID was minted
// elsewhere and propagated here on the wire (the cluster router is the
// originator). Span 2 under parent span 1 marks the node-local leg of the
// routed request, so flight-recorder slots and slow-log lines on this node
// carry the fleet-wide ID instead of a fresh local one.
func (e *Engine) AdoptTrace(id uint64) telemetry.TraceCtx {
	return telemetry.TraceCtx{TraceID: id, Span: 2, Parent: 1}
}

// TracingEnabled reports whether stage tracing is on (Options.Tracing).
func (e *Engine) TracingEnabled() bool { return e.opts.Tracing }

// CoalesceEnabled reports whether write coalescing is on.
func (e *Engine) CoalesceEnabled() bool { return e.opts.Coalesce }

// BatchKernelsEnabled reports whether drained write runs execute through
// the schemes' batched write path (Options.BatchKernels).
func (e *Engine) BatchKernelsEnabled() bool { return e.opts.BatchKernels }

// QueueCap returns the per-shard queue bound.
func (e *Engine) QueueCap() int { return e.opts.QueueDepth }

// QueueLens returns each shard's current queue depth. Unlike Snapshots it
// is not a barrier — it reads the live channel lengths, so it stays
// responsive even when a shard is wedged (which is exactly when /statusz
// matters most).
func (e *Engine) QueueLens() []int {
	out := make([]int, len(e.shards))
	for i, s := range e.shards {
		out[i] = len(s.reqs)
	}
	return out
}

// Coalesced returns the live total of writes absorbed by coalescing
// (barrier-free, unlike Summary).
func (e *Engine) Coalesced() uint64 {
	var n uint64
	for _, s := range e.shards {
		n += s.coalesced.Load()
	}
	return n
}

// FlightRecords snapshots every shard's flight recorder, ordered by shard
// then by record age. It is safe to call at any time — including with
// shards wedged mid-request — because recording is wait-free and the dump
// only reads published slots.
func (e *Engine) FlightRecords() []telemetry.FlightRecord {
	var out []telemetry.FlightRecord
	for _, s := range e.shards {
		out = append(out, s.flight.Snapshot()...)
	}
	return out
}

// StageSnapshot merges every shard's per-stage write-latency histograms;
// ok is false when stage tracing is disabled. Like QueueLens it takes no
// barrier: each histogram is snapshotted under its own mutex while the
// workers keep running.
func (e *Engine) StageSnapshot() ([telemetry.NumStages]stats.Histogram, bool) {
	var out [telemetry.NumStages]stats.Histogram
	if !e.opts.Tracing {
		return out, false
	}
	for _, s := range e.shards {
		snap := s.stages.Snapshot()
		for i := range out {
			out[i].Merge(&snap[i])
		}
	}
	return out, true
}

// respChanPool recycles the buffered (capacity 1) response channels a
// request borrows for its reply, so the steady-state blocking Write/Read
// path allocates nothing. A channel is returned to the pool only after its
// single response has been received (or when it was never submitted); a
// Try* caller that abandons a queued request must NOT recycle its channel,
// because the worker will still send into it later.
var respChanPool = sync.Pool{
	New: func() any { return make(chan response, 1) },
}

func getRespChan() chan response  { return respChanPool.Get().(chan response) }
func putRespChan(c chan response) { respChanPool.Put(c) }

// submit enqueues r on shard sh. When block is false a full queue fails
// with ErrOverloaded instead of waiting.
func (e *Engine) submit(sh int, r request, block bool) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	if block {
		e.shards[sh].reqs <- r
		return nil
	}
	select {
	case e.shards[sh].reqs <- r:
		return nil
	default:
		e.shed.Add(1)
		return ErrOverloaded
	}
}

// Write stores a 64-byte line at a logical line address, blocking while
// the owning shard's queue is full (backpressure) and until the shard has
// processed it.
func (e *Engine) Write(addr uint64, line ecc.Line) (memctrl.WriteOutcome, error) {
	done := getRespChan()
	sh := e.ShardOf(addr)
	if err := e.submit(sh, request{kind: kWrite, addr: e.localAddr(addr), line: line, done: done}, true); err != nil {
		putRespChan(done)
		return memctrl.WriteOutcome{}, err
	}
	resp := <-done
	putRespChan(done)
	return resp.write, nil
}

// WriteAsync enqueues a write without waiting for its outcome (blocking
// only while the owning shard's queue is full). Per-shard FIFO ordering
// still holds: a later Read of the same address observes the write. The
// checker uses it to keep shard queues deep enough that batch draining and
// write coalescing actually engage — blocking per-op writes never batch.
func (e *Engine) WriteAsync(addr uint64, line ecc.Line) error {
	sh := e.ShardOf(addr)
	return e.submit(sh, request{kind: kWrite, addr: e.localAddr(addr), line: line}, true)
}

// TryWrite is Write with shedding and a deadline: a full shard queue
// fails immediately with ErrOverloaded, and a ctx expiring while the
// request waits in queue abandons the wait (the shard still executes the
// write; only the caller stops waiting).
func (e *Engine) TryWrite(ctx context.Context, addr uint64, line ecc.Line) (memctrl.WriteOutcome, error) {
	return e.TryWriteTraced(ctx, addr, line, telemetry.TraceCtx{})
}

// TryWriteTraced is TryWrite carrying a request trace context (from
// NewTrace): the shard worker threads it into the scheme's telemetry hooks
// and the flight recorder, so the write's stage events can be joined back
// to the network request.
func (e *Engine) TryWriteTraced(ctx context.Context, addr uint64, line ecc.Line, tc telemetry.TraceCtx) (memctrl.WriteOutcome, error) {
	done := getRespChan()
	sh := e.ShardOf(addr)
	if err := e.submit(sh, request{kind: kWrite, addr: e.localAddr(addr), line: line, tc: tc, done: done}, false); err != nil {
		putRespChan(done)
		return memctrl.WriteOutcome{}, err
	}
	select {
	case resp := <-done:
		putRespChan(done)
		return resp.write, nil
	case <-ctx.Done():
		// Abandoned: the shard still executes the write and sends into
		// done, so the channel cannot be recycled.
		return memctrl.WriteOutcome{}, ctx.Err()
	}
}

// ReadResult is a completed read: the plaintext line, whether the
// address was ever written, and the simulated service latency.
type ReadResult struct {
	Data ecc.Line
	Hit  bool
	Lat  sim.Time
}

// Read fetches the plaintext line at a logical address (blocking).
func (e *Engine) Read(addr uint64) (ReadResult, error) {
	done := getRespChan()
	sh := e.ShardOf(addr)
	if err := e.submit(sh, request{kind: kRead, addr: e.localAddr(addr), done: done}, true); err != nil {
		putRespChan(done)
		return ReadResult{}, err
	}
	resp := <-done
	putRespChan(done)
	return ReadResult{Data: resp.read.Data, Hit: resp.read.Hit, Lat: resp.lat}, nil
}

// TryRead is Read with shedding and a deadline (see TryWrite).
func (e *Engine) TryRead(ctx context.Context, addr uint64) (ReadResult, error) {
	return e.TryReadTraced(ctx, addr, telemetry.TraceCtx{})
}

// TryReadTraced is TryRead carrying a request trace context (see
// TryWriteTraced).
func (e *Engine) TryReadTraced(ctx context.Context, addr uint64, tc telemetry.TraceCtx) (ReadResult, error) {
	done := getRespChan()
	sh := e.ShardOf(addr)
	if err := e.submit(sh, request{kind: kRead, addr: e.localAddr(addr), tc: tc, done: done}, false); err != nil {
		putRespChan(done)
		return ReadResult{}, err
	}
	select {
	case resp := <-done:
		putRespChan(done)
		return ReadResult{Data: resp.read.Data, Hit: resp.read.Hit, Lat: resp.lat}, nil
	case <-ctx.Done():
		// Abandoned: the worker still sends into done (see TryWrite).
		return ReadResult{}, ctx.Err()
	}
}

// Flush is a full barrier: it waits until every request enqueued before
// the call has executed and every shard's device write queue has drained.
func (e *Engine) Flush() error {
	return e.fanout(kFlush, nil)
}

// Summary snapshots and merges every shard's counters. It is a barrier
// like Flush: the snapshot is taken in queue order, so it covers every
// request enqueued before the call.
func (e *Engine) Summary() (Summary, error) {
	snaps := make([]Snapshot, len(e.shards))
	if err := e.fanout(kSnap, snaps); err != nil {
		return Summary{}, err
	}
	return merge(e, snaps), nil
}

// Snapshots returns the per-shard views behind Summary.
func (e *Engine) Snapshots() ([]Snapshot, error) {
	snaps := make([]Snapshot, len(e.shards))
	if err := e.fanout(kSnap, snaps); err != nil {
		return nil, err
	}
	return snaps, nil
}

// fanout sends one request of the given kind to every shard concurrently
// and waits for all responses; snaps (when non-nil) receives shard i's
// snapshot at index i.
func (e *Engine) fanout(k kind, snaps []Snapshot) error {
	chans := make([]chan response, len(e.shards))
	for i := range e.shards {
		chans[i] = getRespChan()
		if err := e.submit(i, request{kind: k, done: chans[i]}, true); err != nil {
			// Collect responses already in flight before bailing.
			for j := 0; j < i; j++ {
				<-chans[j]
				putRespChan(chans[j])
			}
			putRespChan(chans[i])
			return err
		}
	}
	for i, ch := range chans {
		resp := <-ch
		if snaps != nil && resp.snap != nil {
			snaps[i] = *resp.snap
		}
		putRespChan(ch)
	}
	return nil
}

// Close drains every shard queue, flushes the devices and stops the
// workers. Requests submitted after Close fail with ErrClosed; Close is
// idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	for _, s := range e.shards {
		close(s.reqs)
	}
	e.mu.Unlock()
	e.wg.Wait()
	return nil
}
