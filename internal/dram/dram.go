// Package dram models the volatile DRAM buffer of a hybrid DRAM/PCM
// memory system (CARAM, arxiv 2007.13661): a small, fast, wear-free tier
// the hybrid media backend places hot and duplicate-heavy lines in, with
// PCM behind it holding the cold uniques and the durable truth.
//
// The timing model is deliberately simpler than the PCM one in package
// nvm: DRAM read and write latencies are symmetric and an order of
// magnitude below PCM's, there is no posted-write queue worth modelling
// at this granularity (writes retire at media speed), no row-buffer
// faults are injected, and — the property the hybrid tier exists for —
// there are no wear counters, because DRAM does not wear out.
//
// Everything in DRAM is volatile. Crash drops the functional store; it
// is the hybrid backend's job to have write-ahead-persisted anything an
// application was told is durable.
package dram

import (
	"fmt"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/nvm"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/sparse"
)

// bank tracks the timing state of one DRAM bank.
type bank struct {
	busyUntil sim.Time
	busy      sim.Time // accumulated service time
}

// Stats aggregates DRAM activity. Unlike PCM there is no wear to track;
// energy still matters for the hybrid tier's energy accounting.
type Stats struct {
	Reads    uint64
	Writes   uint64
	EnergyNJ float64
}

// Device is the DRAM buffer. Like nvm.Device it is driven by a single
// simulation thread; the hybrid backend provides any cross-goroutine
// visibility its telemetry needs.
type Device struct {
	cfg   config.DRAM
	banks []bank
	// data is the functional store for resident lines. The resident set is
	// small (DRAM is a fraction of PCM) and dense-ish, so the same paged
	// sparse array the PCM store uses fits.
	data sparse.Map[ecc.Line]

	Stats Stats
}

// New constructs a DRAM device from cfg. Like nvm.New it panics on an
// invalid configuration; validation belongs to config.Config.Validate.
func New(cfg config.DRAM) *Device {
	if cfg.Banks <= 0 {
		panic("dram: need at least one bank")
	}
	if cfg.ReadLatency <= 0 || cfg.WriteLatency <= 0 {
		panic("dram: latencies must be positive")
	}
	return &Device{cfg: cfg, banks: make([]bank, cfg.Banks)}
}

// Lines returns the buffer capacity in cache lines.
func (d *Device) Lines() int64 { return d.cfg.Lines() }

func (d *Device) checkAddr(addr uint64) {
	// The hybrid backend addresses DRAM by *physical PCM line*, not by a
	// DRAM-local slot, so any line address the PCM accepts is valid here;
	// capacity is enforced by the backend's resident-set bound, not by the
	// address range. Only obvious corruption (the sparse map's dense-key
	// ceiling) is worth rejecting.
	if addr >= sparse.MaxDenseKey {
		panic(fmt.Sprintf("dram: implausible line address %d", addr))
	}
}

// Read performs a timed read of line addr, returning the current content
// (ok reports whether the line is resident).
func (d *Device) Read(addr uint64, now sim.Time) (ecc.Line, bool, nvm.ReadResult) {
	res := d.access(addr, now, d.cfg.ReadLatency, d.cfg.ReadEnergy)
	d.Stats.Reads++
	line, ok := d.data.Get(addr)
	return line, ok, res
}

// Write performs a timed write of line to addr. DRAM writes retire at
// media speed; there is no posted-write queue to stall on, so Stall is
// always zero.
func (d *Device) Write(addr uint64, line *ecc.Line, now sim.Time) nvm.WriteResult {
	res := d.access(addr, now, d.cfg.WriteLatency, d.cfg.WriteEnergy)
	d.Stats.Writes++
	d.data.Set(addr, *line)
	return nvm.WriteResult{AcceptedAt: now, Stall: 0, ServiceLatency: res.Done - res.Start}
}

// access runs the shared bank-timing step and returns read-shaped timing.
func (d *Device) access(addr uint64, now sim.Time, lat sim.Time, energy float64) nvm.ReadResult {
	d.checkAddr(addr)
	b := &d.banks[addr%uint64(len(d.banks))]
	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	b.busyUntil = start + lat
	b.busy += lat
	d.Stats.EnergyNJ += energy
	return nvm.ReadResult{Start: start, Done: b.busyUntil + d.cfg.BusLatency, QueueDelay: start - now}
}

// Idle returns when every bank goes idle (at least now).
func (d *Device) Idle(now sim.Time) sim.Time {
	idle := now
	for i := range d.banks {
		if d.banks[i].busyUntil > idle {
			idle = d.banks[i].busyUntil
		}
	}
	return idle
}

// Load returns the functional content of addr without timing side effects.
func (d *Device) Load(addr uint64) (ecc.Line, bool) {
	d.checkAddr(addr)
	return d.data.Get(addr)
}

// Store updates the functional content of addr without timing side
// effects (warm-up and recovery plumbing).
func (d *Device) Store(addr uint64, line ecc.Line) {
	d.checkAddr(addr)
	d.data.Set(addr, line)
}

// Evict drops addr from the store (demotion); reports whether it was
// resident.
func (d *Device) Evict(addr uint64) bool {
	d.checkAddr(addr)
	return d.data.Delete(addr)
}

// Resident reports how many lines the store currently holds.
func (d *Device) Resident() int { return d.data.Len() }

// Crash models power failure: everything in DRAM vanishes. Timing state
// is reset too — the post-recovery simulation restarts the banks cold.
func (d *Device) Crash() {
	d.data = sparse.Map[ecc.Line]{}
	for i := range d.banks {
		d.banks[i] = bank{}
	}
}
