package dram

import (
	"testing"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/sim"
)

func testCfg() config.DRAM {
	return config.DRAM{
		CapacityBytes: 64 * config.CacheLineSize,
		Banks:         2,
		ReadLatency:   15 * sim.Nanosecond,
		WriteLatency:  15 * sim.Nanosecond,
		BusLatency:    4 * sim.Nanosecond,
		ReadEnergy:    0.17,
		WriteEnergy:   0.39,
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	for name, mutate := range map[string]func(*config.DRAM){
		"no banks":   func(c *config.DRAM) { c.Banks = 0 },
		"zero read":  func(c *config.DRAM) { c.ReadLatency = 0 },
		"zero write": func(c *config.DRAM) { c.WriteLatency = 0 },
	} {
		cfg := testCfg()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New did not panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestReadWriteTiming(t *testing.T) {
	d := New(testCfg())
	var l ecc.Line
	l.SetWord(0, 42)
	wr := d.Write(0, &l, 0)
	if wr.AcceptedAt != 0 || wr.Stall != 0 {
		t.Fatalf("write accepted late or stalled: %+v", wr)
	}
	if wr.ServiceLatency != 15*sim.Nanosecond+4*sim.Nanosecond {
		t.Fatalf("service latency = %v", wr.ServiceLatency)
	}
	got, ok, rr := d.Read(0, 100*sim.Nanosecond)
	if !ok || got != l {
		t.Fatal("written line not readable")
	}
	if rr.QueueDelay != 0 {
		t.Fatalf("idle bank queued a read: %+v", rr)
	}
}

// TestBankConflictSerializes: two back-to-back accesses to the same bank
// must serialize on the bank's busy window.
func TestBankConflictSerializes(t *testing.T) {
	d := New(testCfg())
	var l ecc.Line
	d.Write(0, &l, 0) // bank 0 busy until 15ns
	_, _, rr := d.Read(2, 0)
	if rr.Start != 15*sim.Nanosecond || rr.QueueDelay != 15*sim.Nanosecond {
		t.Fatalf("same-bank access did not queue: %+v", rr)
	}
	// The other bank is idle and must not queue.
	_, _, rr = d.Read(1, 0)
	if rr.QueueDelay != 0 {
		t.Fatalf("idle bank queued: %+v", rr)
	}
	if idle := d.Idle(0); idle != 30*sim.Nanosecond {
		t.Fatalf("Idle = %v, want 30ns", idle)
	}
}

func TestLoadStoreEvictResident(t *testing.T) {
	d := New(testCfg())
	var l ecc.Line
	l.SetWord(0, 7)
	d.Store(3, l)
	if got, ok := d.Load(3); !ok || got != l {
		t.Fatal("Store/Load round trip failed")
	}
	if d.Resident() != 1 {
		t.Fatalf("Resident = %d", d.Resident())
	}
	if !d.Evict(3) {
		t.Fatal("Evict missed a resident line")
	}
	if d.Evict(3) {
		t.Fatal("double Evict reported resident")
	}
	if d.Resident() != 0 {
		t.Fatal("evicted line still resident")
	}
}

// TestCrashDropsEverything: DRAM is volatile — crash clears the store and
// resets the bank timing.
func TestCrashDropsEverything(t *testing.T) {
	d := New(testCfg())
	var l ecc.Line
	d.Write(0, &l, 0)
	d.Store(1, l)
	d.Crash()
	if d.Resident() != 0 {
		t.Fatal("crash left lines resident")
	}
	if _, ok := d.Load(0); ok {
		t.Fatal("crash left content readable")
	}
	if d.Idle(0) != 0 {
		t.Fatal("crash did not reset bank timing")
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := New(testCfg())
	var l ecc.Line
	d.Write(0, &l, 0)
	d.Read(0, 0)
	if d.Stats.Reads != 1 || d.Stats.Writes != 1 {
		t.Fatalf("stats = %+v", d.Stats)
	}
	want := testCfg().ReadEnergy + testCfg().WriteEnergy
	if d.Stats.EnergyNJ != want {
		t.Fatalf("energy = %v, want %v", d.Stats.EnergyNJ, want)
	}
}
