// Package sparse provides a paged sparse array keyed by dense uint64
// addresses: line addresses, physical frame numbers, metadata slots —
// anything that is an index into a bounded address space rather than a
// hash-distributed value.
//
// Every per-line structure on the simulator's write path (the device's
// functional store, the encryption counters, the reference counts, the
// address mapping table) used to live in a Go map. A map pays a hash,
// a control-group probe and — on growth — incremental rehashes for
// every access; with four such structures touched per simulated write,
// map overhead dominated the CPU profile of the throughput benchmarks.
// For dense keys a two-level paged array does the same job with two
// dependent loads and a bit test, so this package is what the hot paths
// use instead.
//
// Layout: a directory of fixed-size pages (4096 entries each),
// allocated on first touch, with a presence bitmap per page so absence
// is distinguished from a zero value. Keys at or beyond MaxDenseKey
// (2^32) fall back to an overflow Go map, so a hostile or buggy caller
// writing astronomical addresses degrades to the old map behaviour
// instead of allocating an absurd directory.
//
// A Map is not safe for concurrent use, matching the single-threaded
// simulation structures it backs.
package sparse

import "math/bits"

const (
	pageShift = 12
	// PageLen is the number of entries per page.
	PageLen  = 1 << pageShift
	pageMask = PageLen - 1

	// MaxDenseKey is the first key stored in the overflow map rather
	// than the paged directory. 2^32 keys = 2^20 directory slots at
	// most (8 MiB of pointers), and only as far as the largest key
	// actually touched.
	MaxDenseKey = 1 << 32
)

type page[V any] struct {
	bits [PageLen / 64]uint64
	vals [PageLen]V
}

// Map is a paged sparse array from uint64 keys to values of type V.
// The zero value is ready to use.
type Map[V any] struct {
	pages    []*page[V]
	overflow map[uint64]V
	n        int // live entries in pages (overflow tracked by len)
}

// New returns an empty map. (&Map[V]{} works too; New reads better at
// construction sites that used to say make(map[...]...).)
func New[V any]() *Map[V] { return &Map[V]{} }

// Get returns the value stored at key and whether one is present.
func (m *Map[V]) Get(key uint64) (V, bool) {
	if key >= MaxDenseKey {
		v, ok := m.overflow[key]
		return v, ok
	}
	pi := key >> pageShift
	if pi >= uint64(len(m.pages)) || m.pages[pi] == nil {
		var zero V
		return zero, false
	}
	p := m.pages[pi]
	i := key & pageMask
	if p.bits[i>>6]&(1<<(i&63)) == 0 {
		var zero V
		return zero, false
	}
	return p.vals[i], true
}

// Load returns the value stored at key, or the zero value when absent —
// the map-read idiom v := m[k] for callers that treat zero as "unset".
func (m *Map[V]) Load(key uint64) V {
	v, _ := m.Get(key)
	return v
}

// Set stores value at key, inserting or overwriting.
func (m *Map[V]) Set(key uint64, value V) {
	if key >= MaxDenseKey {
		if m.overflow == nil {
			m.overflow = make(map[uint64]V)
		}
		m.overflow[key] = value
		return
	}
	p := m.pageFor(key)
	i := key & pageMask
	w, b := i>>6, uint64(1)<<(i&63)
	if p.bits[w]&b == 0 {
		p.bits[w] |= b
		m.n++
	}
	p.vals[i] = value
}

// Delete removes key, reporting whether it was present.
func (m *Map[V]) Delete(key uint64) bool {
	if key >= MaxDenseKey {
		if _, ok := m.overflow[key]; ok {
			delete(m.overflow, key)
			return true
		}
		return false
	}
	pi := key >> pageShift
	if pi >= uint64(len(m.pages)) || m.pages[pi] == nil {
		return false
	}
	p := m.pages[pi]
	i := key & pageMask
	w, b := i>>6, uint64(1)<<(i&63)
	if p.bits[w]&b == 0 {
		return false
	}
	p.bits[w] &^= b
	var zero V
	p.vals[i] = zero
	m.n--
	return true
}

// Len returns the number of live entries.
func (m *Map[V]) Len() int { return m.n + len(m.overflow) }

// Range calls fn for every (key, value) pair until fn returns false.
// Dense keys are visited in ascending order, then overflow keys in
// unspecified order. Mutating the map during Range is unsupported
// except for deleting the key currently visited.
func (m *Map[V]) Range(fn func(key uint64, value V) bool) {
	for pi, p := range m.pages {
		if p == nil {
			continue
		}
		base := uint64(pi) << pageShift
		for w, set := range p.bits {
			for set != 0 {
				tz := bits.TrailingZeros64(set)
				set &= set - 1
				i := uint64(w*64 + tz)
				if !fn(base+i, p.vals[i]) {
					return
				}
			}
		}
	}
	for k, v := range m.overflow {
		if !fn(k, v) {
			return
		}
	}
}

func (m *Map[V]) pageFor(key uint64) *page[V] {
	pi := key >> pageShift
	if pi >= uint64(len(m.pages)) {
		grown := make([]*page[V], pi+1)
		copy(grown, m.pages)
		m.pages = grown
	}
	if m.pages[pi] == nil {
		m.pages[pi] = new(page[V])
	}
	return m.pages[pi]
}
