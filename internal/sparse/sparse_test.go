package sparse

import (
	"math/rand"
	"testing"
)

// TestMapDifferential drives a Map and a reference Go map through the
// same randomized schedule of sets, deletes and lookups, including keys
// straddling the dense/overflow boundary.
func TestMapDifferential(t *testing.T) {
	m := New[uint64]()
	ref := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(1))
	keys := func() uint64 {
		switch rng.Intn(4) {
		case 0:
			return uint64(rng.Intn(64)) // page 0, heavy collisions
		case 1:
			return uint64(rng.Intn(1 << 20)) // a few hundred pages
		case 2:
			return MaxDenseKey - 8 + uint64(rng.Intn(16)) // boundary
		default:
			return MaxDenseKey + uint64(rng.Intn(1<<16)) // overflow
		}
	}
	for i := 0; i < 200_000; i++ {
		k := keys()
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64()
			m.Set(k, v)
			ref[k] = v
		case 1:
			got := m.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
			delete(ref, k)
		default:
			gv, gok := m.Get(k)
			wv, wok := ref[k]
			if gok != wok || gv != wv {
				t.Fatalf("op %d: Get(%d) = (%d, %v), want (%d, %v)", i, k, gv, gok, wv, wok)
			}
			if lv := m.Load(k); lv != wv {
				t.Fatalf("op %d: Load(%d) = %d, want %d", i, k, lv, wv)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len() = %d, want %d", i, m.Len(), len(ref))
		}
	}
	// Full sweep: Range must visit exactly the reference contents.
	seen := map[uint64]uint64{}
	m.Range(func(k, v uint64) bool {
		if _, dup := seen[k]; dup {
			t.Fatalf("Range visited key %d twice", k)
		}
		seen[k] = v
		return true
	})
	if len(seen) != len(ref) {
		t.Fatalf("Range visited %d keys, want %d", len(seen), len(ref))
	}
	for k, v := range ref {
		if seen[k] != v {
			t.Fatalf("Range: key %d = %d, want %d", k, seen[k], v)
		}
	}
}

// TestMapZeroValueDistinct pins the presence bitmap: a stored zero value
// must be distinguishable from an absent key.
func TestMapZeroValueDistinct(t *testing.T) {
	var m Map[uint64]
	if _, ok := m.Get(7); ok {
		t.Fatal("empty map reports key 7 present")
	}
	m.Set(7, 0)
	if v, ok := m.Get(7); !ok || v != 0 {
		t.Fatalf("Get(7) = (%d, %v), want (0, true)", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", m.Len())
	}
	if !m.Delete(7) {
		t.Fatal("Delete(7) found nothing")
	}
	if _, ok := m.Get(7); ok {
		t.Fatal("key 7 survived Delete")
	}
}

// TestMapRangeOrder pins the documented ascending order over dense keys.
func TestMapRangeOrder(t *testing.T) {
	m := New[int]()
	for _, k := range []uint64{500_000, 3, 4095, 4096, 0, 77} {
		m.Set(k, int(k))
	}
	var got []uint64
	m.Range(func(k uint64, v int) bool {
		if int(k) != v {
			t.Fatalf("key %d carries value %d", k, v)
		}
		got = append(got, k)
		return true
	})
	want := []uint64{0, 3, 77, 4095, 4096, 500_000}
	if len(got) != len(want) {
		t.Fatalf("Range visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range order %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	m.Range(func(uint64, int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("Range continued after fn returned false (%d visits)", n)
	}
}

// TestMapSetAllocs pins the steady state: once a page exists, Set and
// Get must not allocate (the property the hot paths buy this package
// for).
func TestMapSetAllocs(t *testing.T) {
	m := New[uint64]()
	m.Set(123, 1)
	if avg := testing.AllocsPerRun(1000, func() {
		m.Set(123, 2)
		m.Get(123)
	}); avg != 0 {
		t.Errorf("steady-state Set+Get: %v allocs/op, want 0", avg)
	}
}
