package cluster

import (
	"errors"
	"sync/atomic"
	"time"

	"github.com/esdsim/esd/internal/server"
	"github.com/esdsim/esd/internal/stats"
	"github.com/esdsim/esd/internal/telemetry"
)

// Router-side distributed tracing.
//
// The router is the trace originator for the cluster: every routed request
// gets one fleet-wide trace ID — minted here for untraced client frames,
// adopted from the wire for version-1 traced frames — and the ID is
// propagated to every backend the request touches via the traced protocol
// ops. Backends adopt it (shard.Engine.AdoptTrace), so the same ID shows
// up in the router's hop recorder, each node's slow-request log and
// per-shard flight recorder, and the client response.
//
// Router trace IDs are offset by a boot-time base so they are visually
// distinct from node-local IDs (small monotonic integers): a 20-bit-
// shifted UnixNano base makes collisions with node-minted IDs practically
// impossible, which is what lets esdtrace grep all machines for one ID.

// NewTraceID mints the next fleet-wide trace ID (0 when tracing is off).
func (r *Router) NewTraceID() uint64 {
	if r.hops == nil {
		return 0
	}
	return r.traceBase + r.traceSeq.Add(1)
}

// TracingEnabled reports whether the router records hops and propagates
// trace IDs (Config.NoTrace unset).
func (r *Router) TracingEnabled() bool { return r.hops != nil }

// HopSnapshot copies the per-hop latency histograms; ok is false when
// tracing is off.
func (r *Router) HopSnapshot() ([telemetry.NumHops]stats.Histogram, bool) {
	return r.hops.Snapshot(), r.hops != nil
}

// HopRecords snapshots the router flight recorder (nil when tracing is
// off), oldest first.
func (r *Router) HopRecords() []telemetry.HopRecord {
	return r.flight.Snapshot()
}

// hopClock samples the wall clock for a duration hop, or zero when
// tracing is off (the matching hop() then drops the event, so the
// untraced hot path pays one nil check and no clock reads).
func (r *Router) hopClock() time.Time {
	if r.hops == nil {
		return time.Time{}
	}
	return time.Now()
}

// hop records one duration event that began at `began` (from hopClock).
func (r *Router) hop(h telemetry.Hop, trace uint64, op byte, node string, addr uint64, attempt int, status byte, began time.Time) {
	if r.hops == nil || began.IsZero() {
		return
	}
	d := time.Since(began)
	r.hops.Observe(h, d)
	r.flight.Record(h, trace, op, node, addr, attempt, status, began.UnixNano(), d)
}

// hopNow records one point event (retry decision, markDown, hedge fire).
func (r *Router) hopNow(h telemetry.Hop, trace uint64, op byte, node string, addr uint64, attempt int, status byte) {
	if r.hops == nil {
		return
	}
	r.hops.Observe(h, 0)
	r.flight.Record(h, trace, op, node, addr, attempt, status, time.Now().UnixNano(), 0)
}

// hopStatus maps a routing error onto the protocol status byte recorded
// in hop events (0 = OK).
func hopStatus(err error) byte {
	if err == nil {
		return server.StatusOK
	}
	return errStatus(err)
}

// Per-node protocol capability cache values (nodeState.traced).
const (
	capUnknown int32 = 0  // not yet probed; send untraced frames
	capTraced  int32 = 1  // hello succeeded; traced frames OK
	capLegacy  int32 = -1 // hello answered BadRequest; version-0 peer
)

// tracedCap reports whether st accepts version-1 traced frames, probing
// with one 'H' hello round trip on first use. The probe is safe against
// version-0 peers — see the protocol comment in internal/server/proto.go
// — but leaves the probed connection misaligned (a junk status byte is
// queued), so a legacy verdict discards it. A transport failure leaves
// the capability unknown: the request proceeds untraced and a later
// request re-probes.
func (r *Router) tracedCap(st *nodeState) bool {
	if r.hops == nil {
		return false
	}
	switch st.traced.Load() {
	case capTraced:
		return true
	case capLegacy:
		return false
	}
	c, err := st.pool.Get()
	if err != nil {
		return false
	}
	_ = c.SetDeadline(time.Now().Add(r.cfg.RequestTimeout))
	ver, herr := c.Hello()
	switch {
	case herr == nil && ver >= 1:
		st.traced.Store(capTraced)
		st.pool.Put(c)
		return true
	case errors.Is(herr, server.ErrLegacyProto):
		st.traced.Store(capLegacy)
		st.pool.Discard(c)
		r.logf("cluster: node %s speaks protocol v0; sending untraced frames", st.node.Name)
		return false
	default:
		st.pool.Discard(c)
		return false
	}
}

// doNodeCtx is doNode with trace context: it runs one operation against
// one node under the per-node retry budget, recording checkout, attempt,
// retry and markDown hops as it goes. op is the protocol op byte the
// caller is routing ('W', 'R', 'B', 'b'; 0 for control traffic).
func (r *Router) doNodeCtx(st *nodeState, trace uint64, op byte, addr uint64, f func(c *server.TCPClient) error) error {
	attempts := 1 + r.cfg.RetriesPerNode
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			r.retries.Add(1)
			r.hopNow(telemetry.HopRetry, trace, op, st.node.Name, addr, a, hopStatus(lastErr))
		}
		t0 := r.hopClock()
		c, err := st.pool.Get()
		if err != nil {
			lastErr = err
			st.errs.Add(1)
			continue // dial failed; retry re-dials
		}
		r.hop(telemetry.HopCheckout, trace, op, st.node.Name, addr, a, 0, t0)
		_ = c.SetDeadline(time.Now().Add(r.cfg.RequestTimeout))
		t1 := r.hopClock()
		err = f(c)
		r.hop(telemetry.HopAttempt, trace, op, st.node.Name, addr, a, hopStatus(err), t1)
		if err == nil {
			st.pool.Put(c)
			return nil
		}
		lastErr = err
		st.errs.Add(1)
		if isStatusErr(err) {
			st.pool.Put(c) // frame completed; connection still clean
		} else {
			st.pool.Discard(c)
		}
		if errors.Is(err, server.ErrClosing) {
			r.markDownTr(st, err, trace, op, addr)
			return err
		}
		if !retryable(err) && isStatusErr(err) {
			return err
		}
	}
	r.markDownTr(st, lastErr, trace, op, addr)
	return lastErr
}

// markDownTr is markDown carrying the trace context of the failure that
// triggered it, so the mark-down lands in the hop recorder under the
// request's ID.
func (r *Router) markDownTr(st *nodeState, err error, trace uint64, op byte, addr uint64) {
	if st.up.Swap(false) {
		r.logf("cluster: node %s marked down (trace=%d): %v", st.node.Name, trace, err)
		r.hopNow(telemetry.HopMarkDown, trace, op, st.node.Name, addr, 0, hopStatus(err))
	}
}

// hopSeq is the process-wide source of router trace-base uniqueness when
// several routers share one process (tests): each router's base is offset
// by its boot order so two routers never mint overlapping IDs.
var hopSeq atomic.Uint64
