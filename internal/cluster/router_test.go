package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/server"
	"github.com/esdsim/esd/internal/shard"
)

// testBackend is one in-process esdserve node.
type testBackend struct {
	node Node
	eng  *shard.Engine
	srv  *server.Server
}

func (b *testBackend) kill(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = b.srv.Shutdown(ctx)
	_ = b.eng.Close()
}

// startBackend boots a real server.Server (HTTP + TCP) over a small
// 2-shard engine.
func startBackend(t *testing.T, name string) *testBackend {
	t.Helper()
	cfg := config.Default()
	cfg.PCM.CapacityBytes = 1 << 26
	cfg.Meta.EFITCacheBytes = 16 << 10
	cfg.Meta.AMTCacheBytes = 16 << 10
	eng, err := shard.New(cfg, "esd", shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(eng, server.Config{Addr: "127.0.0.1:0", TCPAddr: "127.0.0.1:0"})
	if err != nil {
		_ = eng.Close()
		t.Fatal(err)
	}
	b := &testBackend{
		node: Node{Name: name, TCPAddr: srv.TCPAddr(), HTTPAddr: srv.Addr()},
		eng:  eng,
		srv:  srv,
	}
	t.Cleanup(func() { b.kill(t) })
	return b
}

func startCluster(t *testing.T, n int, cfg Config) ([]*testBackend, *Router) {
	t.Helper()
	var backends []*testBackend
	for i := 0; i < n; i++ {
		backends = append(backends, startBackend(t, fmt.Sprintf("node%d", i)))
	}
	for _, b := range backends {
		cfg.Nodes = append(cfg.Nodes, b.node)
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 20 * time.Millisecond
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return backends, r
}

func lineFor(v uint64) ecc.Line {
	var l ecc.Line
	l.SetWord(0, v)
	l.SetWord(1, ^v)
	return l
}

func TestRouterRoutesWritesAndReads(t *testing.T) {
	backends, r := startCluster(t, 3, Config{})
	const addrs = 256
	for a := uint64(0); a < addrs; a++ {
		if _, err := r.Write(a, lineFor(a)); err != nil {
			t.Fatalf("write %d: %v", a, err)
		}
	}
	for a := uint64(0); a < addrs; a++ {
		resp, err := r.Read(a)
		if err != nil {
			t.Fatalf("read %d: %v", a, err)
		}
		if !resp.Hit {
			t.Fatalf("read %d: miss after write", a)
		}
		want := lineFor(a)
		if string(resp.Data) != string(want[:]) {
			t.Fatalf("read %d: wrong bytes", a)
		}
	}
	// Every node must have seen traffic (the ring spreads 256 addresses
	// over 3 nodes).
	for _, b := range backends {
		st := r.state[b.node.Name]
		if st.writes.Load() == 0 {
			t.Errorf("node %s received no writes — ring not spreading", b.node.Name)
		}
	}
	// A miss for a never-written address is a clean non-hit, not an error.
	resp, err := r.Read(addrs + 100)
	if err != nil {
		t.Fatalf("miss read: %v", err)
	}
	if resp.Hit {
		t.Fatal("read of never-written address reported a hit")
	}
}

func TestRouterReplicatedSurvivesNodeLoss(t *testing.T) {
	backends, r := startCluster(t, 3, Config{Replication: 2})
	const addrs = 192
	for a := uint64(0); a < addrs; a++ {
		if _, err := r.Write(a, lineFor(a)); err != nil {
			t.Fatalf("write %d: %v", a, err)
		}
	}
	// Kill one node outright: every address still has a live replica.
	backends[1].kill(t)
	for a := uint64(0); a < addrs; a++ {
		resp, err := r.Read(a)
		if err != nil {
			t.Fatalf("read %d after node loss: %v", a, err)
		}
		if !resp.Hit {
			t.Fatalf("read %d after node loss: data lost", a)
		}
		want := lineFor(a)
		if string(resp.Data) != string(want[:]) {
			t.Fatalf("read %d after node loss: wrong bytes", a)
		}
	}
	// Writes keep landing too (on the surviving replicas).
	for a := uint64(0); a < addrs; a++ {
		if _, err := r.Write(a, lineFor(a+1000)); err != nil {
			t.Fatalf("write %d after node loss: %v", a, err)
		}
	}
	if r.Healthy(backends[1].node.Name) {
		t.Fatal("dead node still marked healthy after data-path errors")
	}
	if r.failovers.Load() == 0 {
		t.Error("no failovers recorded despite a dead primary")
	}
}

// Satellite: the health prober must observe a draining node's /readyz
// flip and pull it from rotation within one probe interval.
func TestProberStopsRoutingToDrainingNode(t *testing.T) {
	backends, r := startCluster(t, 2, Config{Replication: 2})
	r.ProbeOnce()
	for _, b := range backends {
		if !r.Healthy(b.node.Name) {
			t.Fatalf("node %s unhealthy before drain", b.node.Name)
		}
	}

	// BeginDrain flips /readyz to 503 while listeners stay open — the
	// advance announcement a load balancer keys off.
	backends[0].srv.BeginDrain()
	r.ProbeOnce() // one probe interval later...
	if r.Healthy(backends[0].node.Name) {
		t.Fatal("draining node still in rotation after a probe")
	}
	if !r.Healthy(backends[1].node.Name) {
		t.Fatal("healthy node wrongly marked down")
	}

	// All traffic must now route to the survivor without client-visible
	// errors.
	for a := uint64(0); a < 64; a++ {
		if _, err := r.Write(a, lineFor(a)); err != nil {
			t.Fatalf("write %d during drain: %v", a, err)
		}
		if _, err := r.Read(a); err != nil {
			t.Fatalf("read %d during drain: %v", a, err)
		}
	}
	if w := r.state[backends[0].node.Name].writes.Load(); w != 0 {
		t.Fatalf("draining node received %d writes after being pulled", w)
	}
}

func TestRouterReadRepairHealsDivergence(t *testing.T) {
	_, r := startCluster(t, 2, Config{Replication: 2, ReadRepairEvery: 1})
	const addr = 42
	if _, err := r.Write(addr, lineFor(7)); err != nil {
		t.Fatal(err)
	}

	// Corrupt the follower copy by writing a different line directly to
	// that node, bypassing the router.
	var idx [2]int
	ring := r.Ring()
	if n := ring.ReplicasInto(addr, 2, idx[:]); n != 2 {
		t.Fatalf("replicas = %d, want 2", n)
	}
	follower := ring.Node(idx[1])
	c, err := server.DialTCP(follower.TCPAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(addr, lineFor(666)); err != nil {
		t.Fatal(err)
	}

	// Every read is sampled (ReadRepairEvery=1): the first read must
	// return the primary's copy and rewrite the follower.
	resp, err := r.Read(addr)
	if err != nil {
		t.Fatal(err)
	}
	want := lineFor(7)
	if string(resp.Data) != string(want[:]) {
		t.Fatalf("read returned diverged bytes")
	}
	if r.repairs.Load() == 0 {
		t.Fatal("no read repair recorded for a diverged follower")
	}
	// The follower now holds the primary's copy.
	got, err := c.Read(addr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data) != string(want[:]) {
		t.Fatal("follower still diverged after read repair")
	}
}

func TestRouterHedgedRead(t *testing.T) {
	_, r := startCluster(t, 2, Config{Replication: 2, HedgeAfter: time.Nanosecond, ReadRepairEvery: -1})
	const addrs = 32
	for a := uint64(0); a < addrs; a++ {
		if _, err := r.Write(a, lineFor(a)); err != nil {
			t.Fatal(err)
		}
	}
	for a := uint64(0); a < addrs; a++ {
		resp, err := r.Read(a)
		if err != nil {
			t.Fatalf("hedged read %d: %v", a, err)
		}
		if !resp.Hit {
			t.Fatalf("hedged read %d: miss", a)
		}
		want := lineFor(a)
		if string(resp.Data) != string(want[:]) {
			t.Fatalf("hedged read %d: wrong bytes", a)
		}
	}
	// With a 1ns trigger, hedges must have fired at least once.
	if r.hedges.Load() == 0 {
		t.Error("no hedged reads fired despite a 1ns hedge threshold")
	}
}
