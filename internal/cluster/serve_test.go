package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"github.com/esdsim/esd/internal/server"
)

func startClusterServer(t *testing.T, n int, cfg Config) ([]*testBackend, *Router, *Server) {
	t.Helper()
	backends, r := startCluster(t, n, cfg)
	s, err := NewServer(r, ServeConfig{TCPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return backends, r, s
}

// The cluster front-end speaks the exact same wire protocol as a single
// esdserve node: a stock TCPClient must work against it unmodified.
func TestClusterServerProxiesProtocol(t *testing.T) {
	_, _, s := startClusterServer(t, 2, Config{Replication: 2})
	c, err := server.DialTCP(s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const addrs = 64
	for a := uint64(0); a < addrs; a++ {
		if _, err := c.Write(a, lineFor(a)); err != nil {
			t.Fatalf("write %d through cluster server: %v", a, err)
		}
	}
	for a := uint64(0); a < addrs; a++ {
		resp, err := c.Read(a)
		if err != nil {
			t.Fatalf("read %d through cluster server: %v", a, err)
		}
		if !resp.Hit {
			t.Fatalf("read %d: miss after write", a)
		}
		want := lineFor(a)
		if string(resp.Data) != string(want[:]) {
			t.Fatalf("read %d: wrong bytes", a)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush through cluster server: %v", err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("stats through cluster server: %v", err)
	}
	// R=2 on a 2-node ring: every write lands on both nodes.
	if stats.Writes < addrs {
		t.Fatalf("aggregated stats report %d writes, want >= %d", stats.Writes, addrs)
	}
	if stats.Shards == 0 {
		t.Fatal("aggregated stats report zero shards")
	}
}

func TestClusterServerStatuszAndReadyz(t *testing.T) {
	backends, r, s := startClusterServer(t, 2, Config{Replication: 2})

	resp, err := http.Get("http://" + s.HTTPAddr() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d with healthy backends, want 200", resp.StatusCode)
	}

	var st Status
	getJSON(t, "http://"+s.HTTPAddr()+"/statusz", &st)
	if st.Epoch != 1 {
		t.Fatalf("statusz epoch = %d, want 1", st.Epoch)
	}
	if st.Replication != 2 {
		t.Fatalf("statusz replication = %d, want 2", st.Replication)
	}
	if len(st.Nodes) != 2 || st.Healthy != 2 {
		t.Fatalf("statusz nodes=%d healthy=%d, want 2/2", len(st.Nodes), st.Healthy)
	}

	// Kill every backend: the prober marks them down and /readyz flips.
	for _, b := range backends {
		b.kill(t)
	}
	for _, b := range backends {
		name := b.node.Name
		deadline := time.Now().Add(5 * time.Second)
		for r.Healthy(name) {
			if time.Now().After(deadline) {
				t.Fatalf("node %s still healthy long after being killed", name)
			}
			r.ProbeOnce()
			time.Sleep(5 * time.Millisecond)
		}
	}
	resp, err = http.Get("http://" + s.HTTPAddr() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d with all backends down, want 503", resp.StatusCode)
	}
}

func TestClusterServerAdminReshard(t *testing.T) {
	_, r, s := startClusterServer(t, 2, Config{})
	const space = 256
	for a := uint64(0); a < space; a++ {
		if _, err := r.Write(a, lineFor(a)); err != nil {
			t.Fatal(err)
		}
	}

	url := "http://" + s.HTTPAddr() + "/admin/reshard"

	// GET is rejected; malformed and empty requests are 400s.
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/reshard = %d, want 405", resp.StatusCode)
	}
	for _, bad := range []string{"{not json", `{"space":0,"add":[{"tcp_addr":"x"}]}`, `{"space":10}`} {
		resp, err = http.Post(url, "application/json", bytes.NewBufferString(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %q = %d, want 400", bad, resp.StatusCode)
		}
	}

	// A real grow: add a third node, verify the report and the epoch flip.
	added := startBackend(t, "grown")
	body, _ := json.Marshal(ReshardRequest{
		Add:   []Node{added.node},
		Space: space,
	})
	resp, err = http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rep ReshardReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reshard POST = %d, want 200", resp.StatusCode)
	}
	if rep.ToEpoch != 2 || rep.Moved == 0 {
		t.Fatalf("reshard report epoch=%d moved=%d, want epoch 2 and moved > 0", rep.ToEpoch, rep.Moved)
	}

	var st Status
	getJSON(t, "http://"+s.HTTPAddr()+"/statusz", &st)
	if st.Epoch != 2 || len(st.Nodes) != 3 {
		t.Fatalf("post-reshard statusz epoch=%d nodes=%d, want 2/3", st.Epoch, len(st.Nodes))
	}
	if st.LastReshard == nil {
		t.Fatal("statusz missing last_reshard after a reshard")
	}
	for a := uint64(0); a < space; a++ {
		got, err := r.Read(a)
		if err != nil || !got.Hit {
			t.Fatalf("read %d after admin reshard: err=%v hit=%v", a, err, got.Hit)
		}
	}
}

func getJSON(t *testing.T, url string, v interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(fmt.Errorf("decode %s: %w", url, err))
	}
}
