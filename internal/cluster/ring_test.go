package cluster

import (
	"testing"
)

func testNodes(n int) []Node {
	var out []Node
	for i := 0; i < n; i++ {
		out = append(out, Node{Name: string(rune('a' + i)), TCPAddr: "127.0.0.1:0"})
	}
	return out
}

func TestRingDeterministicOwnership(t *testing.T) {
	r1, err := NewRing(testNodes(3), 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing(testNodes(3), 64, 1)
	for addr := uint64(0); addr < 4096; addr++ {
		if r1.Owner(addr).Name != r2.Owner(addr).Name {
			t.Fatalf("addr %d: ownership differs between identical rings", addr)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r, err := NewRing(testNodes(4), DefaultVNodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const addrs = 1 << 14
	for addr := uint64(0); addr < addrs; addr++ {
		counts[r.Owner(addr).Name]++
	}
	want := addrs / 4
	for name, got := range counts {
		// Virtual nodes keep the split within a 2x envelope of even; in
		// practice it is far tighter, but the test should not flake on a
		// hash nudge.
		if got < want/2 || got > want*2 {
			t.Fatalf("node %s owns %d of %d addresses (even share %d)", name, got, addrs, want)
		}
	}
}

func TestRingReplicasDistinct(t *testing.T) {
	r, err := NewRing(testNodes(3), 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf [3]int
	for addr := uint64(0); addr < 4096; addr++ {
		n := r.ReplicasInto(addr, 2, buf[:])
		if n != 2 {
			t.Fatalf("addr %d: got %d replicas, want 2", addr, n)
		}
		if buf[0] == buf[1] {
			t.Fatalf("addr %d: duplicate replica node %d", addr, buf[0])
		}
	}
}

func TestRingReplicasCappedByMembership(t *testing.T) {
	r, err := NewRing(testNodes(2), 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf [4]int
	if n := r.ReplicasInto(7, 4, buf[:]); n != 2 {
		t.Fatalf("2-node ring yielded %d replicas, want 2", n)
	}
}

// Consistent hashing's point: adding a node moves only ~1/N of the
// address space, not everything.
func TestRingIncrementalMovement(t *testing.T) {
	old, err := NewRing(testNodes(3), DefaultVNodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := NewRing(testNodes(4), DefaultVNodes, 2)
	if err != nil {
		t.Fatal(err)
	}
	const addrs = 1 << 14
	moved := 0
	for addr := uint64(0); addr < addrs; addr++ {
		if old.Owner(addr).Name != grown.Owner(addr).Name {
			moved++
		}
	}
	// Ideal movement is 1/4 of addresses; fail above 1/2.
	if moved > addrs/2 {
		t.Fatalf("adding one node to three moved %d/%d addresses (want about 1/4)", moved, addrs)
	}
	if moved == 0 {
		t.Fatal("adding a node moved nothing — ring ignores membership?")
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 8, 1); err == nil {
		t.Fatal("empty ring accepted")
	}
	dup := []Node{{Name: "x", TCPAddr: "a:1"}, {Name: "x", TCPAddr: "b:1"}}
	if _, err := NewRing(dup, 8, 1); err == nil {
		t.Fatal("duplicate node name accepted")
	}
	if _, err := NewRing([]Node{{Name: "x"}}, 8, 1); err == nil {
		t.Fatal("node without TCP address accepted")
	}
}
