package cluster

import (
	"fmt"
	"net/http"
	"time"
)

// ProbeOnce probes every tracked node's health right now and updates the
// router's routing view: a node with an HTTP address is healthy iff
// GET /readyz answers 200 (a draining server answers 503 and is pulled
// from rotation before its listeners close — see server.BeginDrain);
// nodes without one fall back to a TCP dial probe. The probe loop calls
// this every ProbeInterval; tests call it directly to advance health
// deterministically.
func (r *Router) ProbeOnce() {
	states := r.allStates()
	timeout := r.cfg.ProbeInterval
	if timeout > time.Second {
		timeout = time.Second
	}
	client := &http.Client{Timeout: timeout}
	for _, st := range states {
		err := probeNode(client, st.node, timeout)
		up := err == nil
		if !up {
			st.probeErrs.Add(1)
		}
		was := st.up.Swap(up)
		if was != up {
			if up {
				r.logf("cluster: node %s back in rotation", st.node.Name)
			} else {
				r.logf("cluster: node %s failed probe: %v", st.node.Name, err)
			}
		}
	}
}

// probeNode checks one node: /readyz over HTTP when possible, TCP dial
// otherwise.
func probeNode(client *http.Client, n Node, timeout time.Duration) error {
	if n.HTTPAddr == "" {
		return dialProbe(n.TCPAddr, timeout)
	}
	resp, err := client.Get("http://" + n.HTTPAddr + "/readyz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz: HTTP %d", resp.StatusCode)
	}
	return nil
}
