package cluster

import (
	"context"
	"testing"
	"time"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/server"
	"github.com/esdsim/esd/internal/shard"
)

// benchCluster boots one real backend and a router over it for the
// tracing-overhead benchmark (startBackend needs *testing.T).
func benchCluster(b *testing.B, noTrace bool) *Router {
	b.Helper()
	cfg := config.Default()
	cfg.PCM.CapacityBytes = 1 << 26
	cfg.Meta.EFITCacheBytes = 16 << 10
	cfg.Meta.AMTCacheBytes = 16 << 10
	eng, err := shard.New(cfg, "esd", shard.Options{Shards: 2})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(eng, server.Config{Addr: "127.0.0.1:0", TCPAddr: "127.0.0.1:0"})
	if err != nil {
		_ = eng.Close()
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		_ = eng.Close()
	})
	r, err := NewRouter(Config{
		Nodes:         []Node{{Name: "bench0", TCPAddr: srv.TCPAddr(), HTTPAddr: srv.Addr()}},
		ProbeInterval: time.Hour,
		NoTrace:       noTrace,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(r.Close)
	return r
}

// BenchmarkRouterTracingOverhead measures a routed write through a real
// TCP backend with distributed tracing off vs on. The "on" path adds the
// trace preamble + echo on the wire (16 bytes), two clock reads and ring
// writes per attempt, and one hello probe amortized over the run; the
// allocation count must not move (hop recording is alloc-free — enforced
// by TestHopRecorderRecordDoesNotAllocate at the telemetry layer).
func BenchmarkRouterTracingOverhead(b *testing.B) {
	for _, mode := range []struct {
		name    string
		noTrace bool
	}{{"off", true}, {"on", false}} {
		b.Run(mode.name, func(b *testing.B) {
			r := benchCluster(b, mode.noTrace)
			line := lineFor(1)
			if _, err := r.Write(0, line); err != nil {
				b.Fatal(err) // warm the pool + capability cache
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Write(uint64(i)%4096, line); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
