package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/server"
	"github.com/esdsim/esd/internal/shard"
	"github.com/esdsim/esd/internal/telemetry"
)

// lockedBuf is a goroutine-safe log sink (the prober and the test both
// write through Router.logf).
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// hopKinds collects the hop-kind names recorded under one trace ID.
func hopKinds(recs []telemetry.HopRecord, trace uint64) map[string]int {
	out := make(map[string]int)
	for _, rec := range recs {
		if rec.Trace == trace {
			out[rec.Hop]++
		}
	}
	return out
}

// backendHasTrace reports whether any shard flight record on b carries
// the trace ID.
func backendHasTrace(b *testBackend, trace uint64) bool {
	for _, rec := range b.eng.FlightRecords() {
		if rec.Trace == trace {
			return true
		}
	}
	return false
}

// waitForTrace polls b's flight recorder for the trace ID (hedged losers
// finish in the background after the router has already answered).
func waitForTrace(t *testing.T, b *testBackend, trace uint64) bool {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if backendHasTrace(b, trace) {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

// One trace ID, minted at the router, must surface at every layer: the
// client-visible response, the router's hop recorder, and the backend
// node's per-shard flight recorder.
func TestRouterTracePropagation(t *testing.T) {
	backends, r := startCluster(t, 2, Config{})
	if !r.TracingEnabled() {
		t.Fatal("tracing should default on")
	}
	trace := r.NewTraceID()
	if trace == 0 {
		t.Fatal("NewTraceID returned 0 with tracing on")
	}

	const addr = 7
	wout, err := r.WriteTraced(trace, addr, lineFor(addr))
	if err != nil {
		t.Fatal(err)
	}
	if wout.Trace != trace {
		t.Fatalf("write response trace = %#x, want %#x", wout.Trace, trace)
	}
	rout, err := r.ReadTraced(trace, addr)
	if err != nil {
		t.Fatal(err)
	}
	if rout.Trace != trace {
		t.Fatalf("read response trace = %#x, want %#x", rout.Trace, trace)
	}

	// The owning node's flight recorder carries the fleet ID.
	found := false
	for _, b := range backends {
		if backendHasTrace(b, trace) {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %#x missing from every backend flight recorder", trace)
	}

	// The router's own recorder has the request's hop decomposition.
	kinds := hopKinds(r.HopRecords(), trace)
	for _, want := range []string{"route", "checkout", "attempt"} {
		if kinds[want] == 0 {
			t.Errorf("router flight recorder has no %q hop for trace %#x (got %v)", want, trace, kinds)
		}
	}
}

// NoTrace must zero the whole subsystem: no IDs minted, no recorders,
// and the data path still works.
func TestRouterTracingDisabled(t *testing.T) {
	_, r := startCluster(t, 1, Config{NoTrace: true})
	if r.TracingEnabled() {
		t.Fatal("TracingEnabled with NoTrace set")
	}
	if id := r.NewTraceID(); id != 0 {
		t.Fatalf("NewTraceID = %#x with tracing off, want 0", id)
	}
	if recs := r.HopRecords(); recs != nil {
		t.Fatalf("HopRecords = %d records with tracing off, want nil", len(recs))
	}
	if _, ok := r.HopSnapshot(); ok {
		t.Fatal("HopSnapshot ok with tracing off")
	}
	if _, err := r.Write(3, lineFor(3)); err != nil {
		t.Fatal(err)
	}
	resp, err := r.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace != 0 {
		t.Fatalf("untraced read echoed trace %#x", resp.Trace)
	}
}

// A version-0 peer (esdserve -legacy-frames) must keep working behind a
// tracing router: the hello probe detects it once, the router falls back
// to untraced frames for that node, and traffic flows.
func TestRouterLegacyNodeFallback(t *testing.T) {
	cfg := config.Default()
	cfg.PCM.CapacityBytes = 1 << 26
	cfg.Meta.EFITCacheBytes = 16 << 10
	cfg.Meta.AMTCacheBytes = 16 << 10
	eng, err := shard.New(cfg, "esd", shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(eng, server.Config{
		Addr: "127.0.0.1:0", TCPAddr: "127.0.0.1:0", DisableTracedFrames: true,
	})
	if err != nil {
		_ = eng.Close()
		t.Fatal(err)
	}
	b := &testBackend{
		node: Node{Name: "legacy", TCPAddr: srv.TCPAddr(), HTTPAddr: srv.Addr()},
		eng:  eng,
		srv:  srv,
	}
	t.Cleanup(func() { b.kill(t) })

	var logs lockedBuf
	r, err := NewRouter(Config{Nodes: []Node{b.node}, ProbeInterval: time.Hour, Log: &logs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)

	trace := r.NewTraceID()
	wout, err := r.WriteTraced(trace, 11, lineFor(11))
	if err != nil {
		t.Fatalf("traced write against legacy node: %v", err)
	}
	// The router still owns the fleet ID even when the peer can't echo it.
	if wout.Trace != trace {
		t.Fatalf("write response trace = %#x, want %#x", wout.Trace, trace)
	}
	rout, err := r.ReadTraced(trace, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !rout.Hit || rout.Trace != trace {
		t.Fatalf("read after legacy write: hit=%v trace=%#x", rout.Hit, rout.Trace)
	}

	st := r.state["legacy"]
	if got := st.traced.Load(); got != capLegacy {
		t.Fatalf("capability cache = %d, want capLegacy", got)
	}
	if !strings.Contains(logs.String(), "speaks protocol v0") {
		t.Fatalf("router log missing legacy-detection line:\n%s", logs.String())
	}
	// The router-side hops still record the request.
	if kinds := hopKinds(r.HopRecords(), trace); kinds["route"] == 0 || kinds["attempt"] == 0 {
		t.Fatalf("hop records incomplete for legacy-node trace: %v", kinds)
	}
}

// The router HTTP surface: /statusz carries the hops section, /debug/
// flightrecorder dumps hop records, /statusz/cluster aggregates the
// fleet (members, shards, merged device health).
func TestClusterServerTraceEndpoints(t *testing.T) {
	backends, r := startCluster(t, 2, Config{})
	srv, err := NewServer(r, ServeConfig{TCPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})

	for a := uint64(0); a < 64; a++ {
		if _, err := r.Write(a, lineFor(a)); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Read(a); err != nil {
			t.Fatal(err)
		}
	}

	base := "http://" + srv.HTTPAddr()
	var st Status
	getTestJSON(t, base+"/statusz", &st)
	if !st.Tracing {
		t.Fatal("/statusz tracing=false on a tracing router")
	}
	if st.Hops["route"].Count == 0 || st.Hops["attempt"].Count == 0 {
		t.Fatalf("/statusz hops section incomplete: %+v", st.Hops)
	}
	if st.FlightRecords == 0 {
		t.Fatal("/statusz flight_records = 0 after traffic")
	}

	var recs []telemetry.HopRecord
	getTestJSON(t, base+"/debug/flightrecorder", &recs)
	if len(recs) == 0 {
		t.Fatal("/debug/flightrecorder empty after traffic")
	}
	seenRoute := false
	for _, rec := range recs {
		if rec.Hop == "route" && rec.Trace != 0 {
			seenRoute = true
		}
	}
	if !seenRoute {
		t.Fatal("/debug/flightrecorder has no traced route events")
	}

	var cs ClusterStatus
	getTestJSON(t, base+"/statusz/cluster", &cs)
	if cs.Reachable != len(backends) {
		t.Fatalf("/statusz/cluster reachable = %d, want %d", cs.Reachable, len(backends))
	}
	wantShards := 0
	for _, b := range backends {
		wantShards += b.eng.NumShards()
	}
	if cs.Shards != wantShards {
		t.Fatalf("/statusz/cluster shards = %d, want %d", cs.Shards, wantShards)
	}
	if cs.Device == nil || cs.Device.MediaWrites == 0 {
		t.Fatalf("/statusz/cluster device merge missing: %+v", cs.Device)
	}
	for _, m := range cs.Members {
		if !m.Reachable || m.Status == nil {
			t.Fatalf("member %s not scraped: %+v", m.Name, m)
		}
	}
}

// The end-to-end tracing contract: one trace ID appears at the router,
// the winning node AND the losing hedge node; and across a
// retry-after-markDown failover the same ID follows the request to the
// surviving replica.
func TestTraceAcrossHedgeAndFailover(t *testing.T) {
	t.Run("hedge", func(t *testing.T) {
		backends, r := startCluster(t, 2, Config{
			Replication: 2, HedgeAfter: time.Nanosecond, ReadRepairEvery: -1,
		})
		const addr = 42
		if _, err := r.Write(addr, lineFor(addr)); err != nil {
			t.Fatal(err)
		}
		trace := r.NewTraceID()
		resp, err := r.ReadTraced(trace, addr)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Trace != trace {
			t.Fatalf("read response trace = %#x, want %#x", resp.Trace, trace)
		}
		// With a 1ns hedge delay the follower always launches; the loser
		// finishes in the background. Both replicas must end up holding the
		// same fleet ID — winner and loser alike.
		for _, b := range backends {
			if !waitForTrace(t, b, trace) {
				t.Fatalf("trace %#x never reached node %s (hedge loser must record it too)", trace, b.node.Name)
			}
		}
		// The losing attempt's hop event lands when the loser finishes in
		// the background; poll for both attempts.
		deadline := time.Now().Add(5 * time.Second)
		kinds := hopKinds(r.HopRecords(), trace)
		for kinds["attempt"] < 2 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			kinds = hopKinds(r.HopRecords(), trace)
		}
		if kinds["hedge"] == 0 {
			t.Fatalf("router recorded no hedge hop for trace %#x: %v", trace, kinds)
		}
		if kinds["attempt"] < 2 {
			t.Fatalf("expected attempts on both replicas, got %v", kinds)
		}
	})

	t.Run("failover", func(t *testing.T) {
		// ProbeInterval is an hour: only the traced request itself may
		// discover the dead primary, so the markDown carries our ID.
		backends, r := startCluster(t, 2, Config{
			Replication: 2, RetriesPerNode: 1, ReadRepairEvery: -1, ProbeInterval: time.Hour,
		})
		const addr = 42
		if _, err := r.Write(addr, lineFor(addr)); err != nil {
			t.Fatal(err)
		}

		var set [2 * maxReplicas]*nodeState
		n := r.routeSet(addr, false, set[:])
		if n < 2 {
			t.Fatalf("replica set size %d, want >= 2", n)
		}
		primary, follower := set[0], set[1]
		for _, b := range backends {
			if b.node.Name == primary.node.Name {
				b.kill(t)
			}
		}

		trace := r.NewTraceID()
		resp, err := r.ReadTraced(trace, addr)
		if err != nil {
			t.Fatalf("read after primary loss: %v", err)
		}
		if !resp.Hit || resp.Trace != trace {
			t.Fatalf("failover read: hit=%v trace=%#x want %#x", resp.Hit, resp.Trace, trace)
		}
		if primary.up.Load() {
			t.Fatal("dead primary still marked up after traced request")
		}

		kinds := hopKinds(r.HopRecords(), trace)
		for _, want := range []string{"retry", "mark-down", "failover", "attempt", "route"} {
			if kinds[want] == 0 {
				t.Errorf("router hop records missing %q for failover trace %#x: %v", want, trace, kinds)
			}
		}
		// The surviving replica served the read under the same ID.
		for _, b := range backends {
			if b.node.Name == follower.node.Name && !waitForTrace(t, b, trace) {
				t.Fatalf("trace %#x never reached surviving replica %s", trace, b.node.Name)
			}
		}
		// The mark-down event is attributed to the primary by name.
		for _, rec := range r.HopRecords() {
			if rec.Trace == trace && rec.Hop == "mark-down" && rec.Node != primary.node.Name {
				t.Errorf("mark-down attributed to %q, want %q", rec.Node, primary.node.Name)
			}
		}
	})
}

func getTestJSON(t *testing.T, url string, into interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}
